# check runs the full CI pipeline: vet, build, race-enabled tests, and
# the observability disabled-path overhead benchmark.
check:
	sh ci.sh

# bench-obs additionally regenerates the committed BENCH_obs.json and
# BENCH_parallel.json perf baselines (instrumented paper-scale
# `table -n 9` run, then `benchpar` with its identical-output and
# speedup gates).
bench-obs:
	sh ci.sh bench

# bench-parallel regenerates only BENCH_parallel.json: tables 3-8 at one
# worker vs eight, byte-compared and speedup-gated.
bench-parallel:
	go run ./cmd/spmvselect benchpar -workers 8 -out BENCH_parallel.json

.PHONY: check bench-obs bench-parallel
