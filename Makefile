# check runs the full CI pipeline: vet, build, race-enabled tests, and
# the observability disabled-path overhead benchmark.
check:
	sh ci.sh

# bench-obs additionally regenerates the committed BENCH_obs.json and
# BENCH_parallel.json perf baselines (instrumented paper-scale
# `table -n 9` run, then `benchpar` with its identical-output and
# speedup gates).
bench-obs:
	sh ci.sh bench

# bench-parallel regenerates only BENCH_parallel.json: tables 3-8 at one
# worker vs eight, byte-compared and speedup-gated.
bench-parallel:
	go run ./cmd/spmvselect benchpar -workers 8 -out BENCH_parallel.json

# bench-serve regenerates BENCH_serve.json: the same matrices served
# one request at a time vs through /v1/predict/batch, gated so the
# batch path never regresses below sequential serving (and must beat it
# 2x on hosts with >= 4 CPUs), plus the cascade-on/off columns — the
# cheap-first stage's hit rate, mix agreement, calibrated threshold,
# and p50 on above-threshold traffic (agreement gate always enforced;
# the 2x latency gate only on hosts with >= 4 CPUs) — and the
# feature-memo on/off columns (repeat-body p50 and hit rate).
bench-serve:
	go run ./cmd/spmvselect benchserve -out BENCH_serve.json

# bench-parse regenerates BENCH_parse.json: the streaming MatrixMarket
# reader vs the byte-slice fast path over the same bodies, hard-failing
# on any bitwise CSR difference and gated at 3x speedup and <= 10% of
# the streaming reader's allocations.
bench-parse:
	go run ./cmd/spmvselect benchparse -out BENCH_parse.json

# bench-fleet regenerates BENCH_fleet.json: the same request mix through
# the consistent-hash proxy over one serial replica vs the full fleet,
# hard-failing when any proxied answer differs byte-for-byte from a
# direct replica answer, gated at 0.5x-per-replica scaling on hosts with
# more cores than replicas (not-pathologically-slower elsewhere).
bench-fleet:
	go run ./cmd/spmvselect benchfleet -out BENCH_fleet.json

.PHONY: check bench-obs bench-parallel bench-serve bench-parse bench-fleet
