# check runs the full CI pipeline: vet, build, race-enabled tests, and
# the observability disabled-path overhead benchmark.
check:
	sh ci.sh

# bench-obs additionally regenerates the committed BENCH_obs.json perf
# baseline from an instrumented paper-scale `table -n 9` run.
bench-obs:
	sh ci.sh bench

.PHONY: check bench-obs
