// Package dataset builds the synthetic sparse-matrix collection that
// substitutes for the SuiteSparse Matrix Collection, and assembles the
// labelled per-architecture benchmark datasets the learning experiments
// consume.
//
// The generator families are chosen to span the structural regimes found
// in SuiteSparse — uniformly random graphs, scale-free (power-law)
// graphs, banded PDE matrices, stencil meshes, block-structured systems
// and heavy-tailed hybrids — so that the extracted features exhibit the
// same wide dynamic ranges and power-law distributions that motivate the
// paper's logarithmic feature transforms. Everything is deterministic in
// the configured seed.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/sparse"
)

// Family identifies a generator family.
type Family int

// Generator families. See the gen* functions for each family's structure.
const (
	FamilyUniform Family = iota
	FamilyPowerLaw
	FamilyBanded
	FamilyMesh
	FamilyBlock
	FamilyRMAT
	FamilyHeavyRow
	FamilyStencil3D
	FamilyCircuit
	FamilyBipartite
	numFamilies
)

// String returns the family name used in matrix identifiers.
func (f Family) String() string {
	switch f {
	case FamilyUniform:
		return "uniform"
	case FamilyPowerLaw:
		return "powerlaw"
	case FamilyBanded:
		return "banded"
	case FamilyMesh:
		return "mesh"
	case FamilyBlock:
		return "block"
	case FamilyRMAT:
		return "rmat"
	case FamilyHeavyRow:
		return "heavyrow"
	case FamilyStencil3D:
		return "stencil3d"
	case FamilyCircuit:
		return "circuit"
	case FamilyBipartite:
		return "bipartite"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Generate produces one matrix of the family. The scale parameter in
// (0, 1] controls the size: rows grow roughly geometrically with scale.
func (f Family) Generate(rng *rand.Rand, scale float64) *sparse.CSR {
	// Log-uniform row count between ~200 and ~40000.
	rows := int(200 * math.Pow(200, scale*rng.Float64()))
	if rows < 8 {
		rows = 8
	}
	switch f {
	case FamilyUniform:
		return genUniform(rng, rows)
	case FamilyPowerLaw:
		return genPowerLaw(rng, rows)
	case FamilyBanded:
		return genBanded(rng, rows)
	case FamilyMesh:
		return genMesh(rng, rows)
	case FamilyBlock:
		return genBlock(rng, rows)
	case FamilyRMAT:
		return genRMAT(rng, rows)
	case FamilyHeavyRow:
		return genHeavyRow(rng, rows)
	case FamilyStencil3D:
		return genStencil3D(rng, rows)
	case FamilyCircuit:
		return genCircuit(rng, rows)
	case FamilyBipartite:
		return genBipartite(rng, rows)
	default:
		panic(fmt.Sprintf("dataset: unknown family %d", int(f)))
	}
}

// addRowEntries inserts n distinct random columns into row i.
func addRowEntries(rng *rand.Rand, t *sparse.Triplet, i, cols, n int) {
	if n > cols {
		n = cols
	}
	if n <= 0 {
		return
	}
	if n*4 >= cols {
		// Dense-ish row: sample without replacement via partial shuffle.
		perm := rng.Perm(cols)[:n]
		for _, j := range perm {
			mustAdd(t, i, j, 1+rng.Float64())
		}
		return
	}
	// Sparse row: sample with replacement; the rare collision is summed
	// by the Triplet and costs one nonzero, which is immaterial here.
	for k := 0; k < n; k++ {
		mustAdd(t, i, rng.Intn(cols), 1+rng.Float64())
	}
}

// mustAdd panics on a Triplet.Add failure; generators only produce
// in-range coordinates, so a failure is a bug rather than a data error.
func mustAdd(t *sparse.Triplet, i, j int, v float64) {
	if err := t.Add(i, j, v); err != nil {
		panic(fmt.Sprintf("dataset: generator produced bad coordinate: %v", err))
	}
}

// genUniform is an Erdős–Rényi-style matrix: every row draws a
// near-Poisson number of uniformly random columns. Moderate imbalance
// and full scatter; the regime where CSR usually wins.
func genUniform(rng *rand.Rand, rows int) *sparse.CSR {
	cols := rows
	mean := 3 + rng.Float64()*25
	t := sparse.NewTriplet(rows, cols)
	for i := 0; i < rows; i++ {
		n := poisson(rng, mean)
		addRowEntries(rng, t, i, cols, n)
	}
	return t.ToCSR()
}

// genPowerLaw draws row lengths from a discrete Pareto distribution,
// producing the scale-free degree profiles of web and social graphs:
// a few enormous rows, many tiny ones. The regime where scalar CSR
// collapses and HYB or COO wins.
func genPowerLaw(rng *rand.Rand, rows int) *sparse.CSR {
	cols := rows
	alpha := 1.6 + rng.Float64()*1.2 // tail exponent
	maxLen := cols / 2
	t := sparse.NewTriplet(rows, cols)
	for i := 0; i < rows; i++ {
		n := int(math.Pow(rng.Float64(), -1/alpha)) // Pareto(alpha), min 1
		if n > maxLen {
			n = maxLen
		}
		addRowEntries(rng, t, i, cols, n)
	}
	return t.ToCSR()
}

// genBanded scatters entries inside a diagonal band, the profile of 1-D
// PDE discretisations: near-uniform rows and excellent column locality.
// The regime where ELL wins.
func genBanded(rng *rand.Rand, rows int) *sparse.CSR {
	cols := rows
	band := 2 + rng.Intn(30)
	fill := 0.15 + 0.8*rng.Float64()
	t := sparse.NewTriplet(rows, cols)
	for i := 0; i < rows; i++ {
		lo := i - band
		if lo < 0 {
			lo = 0
		}
		hi := i + band
		if hi >= cols {
			hi = cols - 1
		}
		mustAdd(t, i, i, 2+rng.Float64())
		for j := lo; j <= hi; j++ {
			if j != i && rng.Float64() < fill {
				mustAdd(t, i, j, rng.Float64())
			}
		}
	}
	return t.ToCSR()
}

// genMesh is the 5-point (or 9-point) stencil of a 2-D structured grid:
// constant-length rows, perfect for ELL.
func genMesh(rng *rand.Rand, rows int) *sparse.CSR {
	side := int(math.Sqrt(float64(rows)))
	if side < 3 {
		side = 3
	}
	n := side * side
	nine := rng.Intn(2) == 1
	t := sparse.NewTriplet(n, n)
	for x := 0; x < side; x++ {
		for y := 0; y < side; y++ {
			i := x*side + y
			mustAdd(t, i, i, 4+rng.Float64())
			for _, d := range [][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
				nx, ny := x+d[0], y+d[1]
				if nx >= 0 && nx < side && ny >= 0 && ny < side {
					mustAdd(t, i, nx*side+ny, -1)
				}
			}
			if nine {
				for _, d := range [][2]int{{-1, -1}, {-1, 1}, {1, -1}, {1, 1}} {
					nx, ny := x+d[0], y+d[1]
					if nx >= 0 && nx < side && ny >= 0 && ny < side {
						mustAdd(t, i, nx*side+ny, -0.5)
					}
				}
			}
		}
	}
	return t.ToCSR()
}

// genBlock builds a block-diagonal matrix with dense blocks plus sparse
// coupling entries, the profile of multi-physics systems: uniform rows
// within blocks, mild scatter.
func genBlock(rng *rand.Rand, rows int) *sparse.CSR {
	bs := 4 + rng.Intn(12) // block size
	nb := rows / bs
	if nb < 1 {
		nb = 1
	}
	n := nb * bs
	t := sparse.NewTriplet(n, n)
	for b := 0; b < nb; b++ {
		base := b * bs
		for i := 0; i < bs; i++ {
			for j := 0; j < bs; j++ {
				if i == j || rng.Float64() < 0.7 {
					mustAdd(t, base+i, base+j, 1+rng.Float64())
				}
			}
		}
	}
	// Sparse off-block coupling.
	couplings := n / 4
	for k := 0; k < couplings; k++ {
		mustAdd(t, rng.Intn(n), rng.Intn(n), rng.Float64())
	}
	return t.ToCSR()
}

// genRMAT is a recursive-matrix (Kronecker) graph in the style of
// Chakrabarti et al.: skewed degrees and community structure. The regime
// where CSR, HYB and COO compete.
func genRMAT(rng *rand.Rand, rows int) *sparse.CSR {
	levels := int(math.Ceil(math.Log2(float64(rows))))
	n := 1 << levels
	edges := n * (4 + rng.Intn(12))
	a, b, c := 0.57, 0.19, 0.19 // standard RMAT corner probabilities
	t := sparse.NewTriplet(n, n)
	for e := 0; e < edges; e++ {
		i, j := 0, 0
		for l := 0; l < levels; l++ {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: nothing to add
			case r < a+b:
				j |= 1 << l
			case r < a+b+c:
				i |= 1 << l
			default:
				i |= 1 << l
				j |= 1 << l
			}
		}
		mustAdd(t, i, j, 1)
	}
	return t.ToCSR()
}

// genHeavyRow is a mostly-uniform matrix with a handful of near-dense
// rows, the shape of bipartite incidence data (and of the paper's
// mawi example): catastrophic for scalar CSR, ideal for HYB.
func genHeavyRow(rng *rand.Rand, rows int) *sparse.CSR {
	cols := rows
	if rng.Float64() < 0.08 {
		// Occasional wide "spike" matrix in the spirit of the paper's
		// mawi example: a short-and-wide incidence structure whose one
		// near-dense row is most of the matrix, the worst case for the
		// scalar CSR kernel.
		cols = rows * 8
	}
	mean := 2 + rng.Float64()*8
	t := sparse.NewTriplet(rows, cols)
	for i := 0; i < rows; i++ {
		addRowEntries(rng, t, i, cols, poisson(rng, mean))
	}
	heavy := 1 + rng.Intn(4)
	for h := 0; h < heavy; h++ {
		i := rng.Intn(rows)
		// Squaring the uniform draw skews spikes mild: many matrices get
		// modest heavy rows (which stay CSR-friendly), a few get
		// monsters.
		u := rng.Float64()
		n := int(float64(cols) * (0.03 + 0.6*u*u))
		addRowEntries(rng, t, i, cols, n)
	}
	return t.ToCSR()
}

// poisson draws a Poisson variate by inversion for small means and a
// normal approximation for large ones.
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(mean + math.Sqrt(mean)*rng.NormFloat64() + 0.5)
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// genStencil3D is the 7-point stencil of a 3-D structured grid, the
// profile of finite-difference volume solvers: constant-length interior
// rows (ideal for ELL) but with three distinct diagonal distances, so
// its locality differs from the 2-D mesh.
func genStencil3D(rng *rand.Rand, rows int) *sparse.CSR {
	side := int(math.Cbrt(float64(rows)))
	if side < 3 {
		side = 3
	}
	n := side * side * side
	t := sparse.NewTriplet(n, n)
	at := func(x, y, z int) int { return (x*side+y)*side + z }
	for x := 0; x < side; x++ {
		for y := 0; y < side; y++ {
			for z := 0; z < side; z++ {
				i := at(x, y, z)
				mustAdd(t, i, i, 6+rng.Float64())
				for _, d := range [][3]int{{-1, 0, 0}, {1, 0, 0}, {0, -1, 0}, {0, 1, 0}, {0, 0, -1}, {0, 0, 1}} {
					nx, ny, nz := x+d[0], y+d[1], z+d[2]
					if nx >= 0 && nx < side && ny >= 0 && ny < side && nz >= 0 && nz < side {
						mustAdd(t, i, at(nx, ny, nz), -1)
					}
				}
			}
		}
	}
	return t.ToCSR()
}

// genCircuit mimics circuit-simulation matrices: very sparse rows
// (2-4 entries, local neighbours) plus a few dense rows AND columns from
// power/ground nets touching a large share of the nodes. The dense
// columns scatter the x-vector access pattern without inflating any
// single row, a regime none of the other families covers.
func genCircuit(rng *rand.Rand, rows int) *sparse.CSR {
	cols := rows
	t := sparse.NewTriplet(rows, cols)
	for i := 0; i < rows; i++ {
		mustAdd(t, i, i, 4+rng.Float64())
		deg := 1 + rng.Intn(3)
		for e := 0; e < deg; e++ {
			// Mostly local wiring with occasional long connections.
			off := 1 + rng.Intn(16)
			if rng.Float64() < 0.1 {
				off = rng.Intn(cols)
			}
			j := (i + off) % cols
			if j != i {
				mustAdd(t, i, j, -rng.Float64())
			}
		}
	}
	// Power/ground nets: a handful of near-dense columns (and their
	// transposed rows).
	nets := 1 + rng.Intn(3)
	for k := 0; k < nets; k++ {
		net := rng.Intn(cols)
		fan := rows / 8
		for e := 0; e < fan; e++ {
			i := rng.Intn(rows)
			if i != net {
				mustAdd(t, i, net, rng.Float64())
				mustAdd(t, net, i, rng.Float64())
			}
		}
	}
	return t.ToCSR()
}

// genBipartite is a rectangular term-document-style incidence matrix:
// many more columns than rows (or vice versa), Zipf-ish column
// popularity, uniform row lengths. Rectangularity exercises the
// nrows/ncols features no square family touches.
func genBipartite(rng *rand.Rand, rows int) *sparse.CSR {
	cols := rows * (2 + rng.Intn(6))
	if rng.Intn(2) == 0 {
		rows, cols = cols, rows/2+1
	}
	mean := 4 + rng.Float64()*12
	t := sparse.NewTriplet(rows, cols)
	for i := 0; i < rows; i++ {
		n := poisson(rng, mean)
		for e := 0; e < n; e++ {
			// Zipf-ish column popularity via squaring.
			u := rng.Float64()
			j := int(u * u * float64(cols))
			if j >= cols {
				j = cols - 1
			}
			mustAdd(t, i, j, 1)
		}
	}
	return t.ToCSR()
}
