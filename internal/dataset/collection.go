package dataset

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/features"
	"repro/internal/gpusim"
	"repro/internal/obs"
	"repro/internal/sparse"
)

// Item is one named matrix of the collection.
type Item struct {
	// Name identifies the matrix: family, sequence number and variant.
	Name string
	// Matrix is the canonical CSR form.
	Matrix *sparse.CSR
}

// Config controls collection generation.
type Config struct {
	// Seed makes the collection reproducible.
	Seed int64
	// BaseCount is the number of base matrices drawn round-robin from
	// the generator families.
	BaseCount int
	// AugmentPerBase is the number of permuted variants derived from
	// each base matrix (the paper's augmented dataset); 0 disables
	// augmentation.
	AugmentPerBase int
	// Scale in (0, 1] controls matrix sizes; 1 spans the full range of
	// roughly 200-40000 rows. Smaller values keep the collection small
	// for tests.
	Scale float64
	// DropELLFailures removes matrices whose ELL conversion exceeds
	// ELLLimit, as the paper does for matrices where CUSP failed to
	// generate the ELL variant.
	DropELLFailures bool
	// ELLLimit is the slab-to-nnz ratio above which ELL conversion is
	// deemed failed; 0 selects a permissive default that keeps the
	// heavy-tailed matrices (whose ELL kernels are slow but valid) in
	// the collection, as SuiteSparse's mawi matrices are in the paper's.
	ELLLimit int
}

// defaultDatasetELLLimit keeps heavy-tailed matrices in the collection;
// only truly degenerate slabs are dropped.
const defaultDatasetELLLimit = 4096

// DefaultConfig is the configuration used by the paper-scale experiments:
// with augmentation it yields a collection of the same order as the
// paper's 1929 SuiteSparse matrices plus permuted variants.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		BaseCount:       640,
		AugmentPerBase:  2,
		Scale:           0.75,
		DropELLFailures: true,
	}
}

// Generate builds the collection: BaseCount base matrices cycled through
// the generator families plus AugmentPerBase permuted variants of each.
func Generate(cfg Config) ([]Item, error) {
	if cfg.BaseCount <= 0 {
		return nil, fmt.Errorf("dataset: BaseCount must be positive, got %d", cfg.BaseCount)
	}
	if cfg.Scale <= 0 || cfg.Scale > 1 {
		return nil, fmt.Errorf("dataset: Scale must be in (0, 1], got %v", cfg.Scale)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	limit := cfg.ELLLimit
	if limit <= 0 {
		limit = defaultDatasetELLLimit
	}
	items := make([]Item, 0, cfg.BaseCount*(1+cfg.AugmentPerBase))
	for n := 0; n < cfg.BaseCount; n++ {
		fam := Family(n % int(numFamilies))
		m := fam.Generate(rng, cfg.Scale)
		if cfg.DropELLFailures {
			if !ellConvertible(m, limit) {
				// The paper omits matrices whose ELL variant cannot be
				// generated; so do we, keeping the count by retrying
				// with a fresh draw (bounded).
				ok := false
				for retry := 0; retry < 8; retry++ {
					m = fam.Generate(rng, cfg.Scale)
					if ellConvertible(m, limit) {
						ok = true
						break
					}
				}
				if !ok {
					continue
				}
			}
		}
		base := fmt.Sprintf("%s_%04d", fam, n)
		items = append(items, Item{Name: base, Matrix: m})
		if cfg.AugmentPerBase > 0 {
			vars, err := Augment(rng, m, cfg.AugmentPerBase)
			if err != nil {
				return nil, err
			}
			for v, pm := range vars {
				items = append(items, Item{Name: fmt.Sprintf("%s_p%d", base, v+1), Matrix: pm})
			}
		}
	}
	return items, nil
}

// ellConvertible reports whether the ELL slab stays under limit*nnz
// without materialising it.
func ellConvertible(m *sparse.CSR, limit int) bool {
	rows, _ := m.Dims()
	maxRow := 0
	for i := 0; i < rows; i++ {
		if n := m.RowNNZ(i); n > maxRow {
			maxRow = n
		}
	}
	nnz := m.NNZ()
	return nnz == 0 || rows*maxRow <= limit*nnz
}

// ArchData is the labelled dataset of one architecture: the matrices
// whose four kernels all ran, with their features, simulated kernel
// times and best-format labels.
type ArchData struct {
	// Arch is the architecture the labels belong to.
	Arch gpusim.Arch
	// Index maps each row to its position in the parent Corpus.
	Index []int
	// Names are the matrix identifiers.
	Names []string
	// Feats are the raw Table 1 feature vectors (one per row).
	Feats [][]float64
	// Times are per-format kernel seconds in sparse.KernelFormats order.
	Times [][]float64
	// Labels are best-format indices into sparse.KernelFormats().
	Labels []int
}

// Len returns the number of matrices in the dataset.
func (d *ArchData) Len() int { return len(d.Labels) }

// ClassCounts returns how many matrices prefer each format, the rows of
// the paper's Table 3.
func (d *ArchData) ClassCounts() [sparse.NumKernelFormats]int {
	var c [sparse.NumKernelFormats]int
	for _, l := range d.Labels {
		c[l]++
	}
	return c
}

// Corpus couples the collection with its features, profiles and the
// per-architecture labelled datasets.
type Corpus struct {
	// Items is the full collection.
	Items []Item
	// Feats[i] is the Table 1 feature vector of Items[i].
	Feats [][]float64
	// Profiles[i] is the kernel-model profile of Items[i].
	Profiles []gpusim.Profile
	// PerArch holds one labelled dataset per architecture name.
	PerArch map[string]*ArchData
}

// Build extracts features and profiles for every item in parallel and
// simulates the benchmark on every architecture, producing the labelled
// per-architecture datasets. The ctx parents the obs spans of the two
// stages ("features", "label/<arch>"); pass context.Background() when
// not tracing.
func Build(ctx context.Context, items []Item, archs []gpusim.Arch) *Corpus {
	c := &Corpus{
		Items:    items,
		Feats:    make([][]float64, len(items)),
		Profiles: make([]gpusim.Profile, len(items)),
		PerArch:  make(map[string]*ArchData, len(archs)),
	}
	_, sp := obs.Start(ctx, "features")
	obs.ParallelChunks(len(items), obs.Workers(len(items)), func(w, lo, hi int) {
		// One reusable extraction scratch per worker.
		var s features.Scratch
		for i := lo; i < hi; i++ {
			c.Feats[i] = s.Extract(items[i].Matrix).Slice()
			c.Profiles[i] = gpusim.NewProfile(items[i].Matrix)
		}
	})
	sp.SetMetric("items", float64(len(items)))
	sp.End()
	for _, a := range archs {
		_, sp := obs.Start(ctx, "label/"+a.Name)
		d := &ArchData{Arch: a}
		for i, it := range items {
			m := a.Measure(it.Name, c.Profiles[i])
			if !m.Feasible() {
				continue
			}
			times := make([]float64, sparse.NumKernelFormats)
			copy(times, m.Times[:])
			d.Index = append(d.Index, i)
			d.Names = append(d.Names, it.Name)
			d.Feats = append(d.Feats, c.Feats[i])
			d.Times = append(d.Times, times)
			d.Labels = append(d.Labels, m.Best)
		}
		c.PerArch[a.Name] = d
		sp.SetMetric("feasible", float64(len(d.Index)))
		sp.End()
	}
	return c
}

// CommonSubset returns, for each architecture, the restriction of its
// dataset to the matrices feasible on all of them — the paper's "Common
// Subset" used by every transfer experiment. Rows are aligned: row k of
// each returned dataset refers to the same matrix.
func (c *Corpus) CommonSubset(archs []gpusim.Arch) (map[string]*ArchData, error) {
	if len(archs) == 0 {
		return nil, fmt.Errorf("dataset: CommonSubset of zero architectures")
	}
	inAll := make([]bool, len(c.Items))
	for i := range inAll {
		inAll[i] = true
	}
	for _, a := range archs {
		d, ok := c.PerArch[a.Name]
		if !ok {
			return nil, fmt.Errorf("dataset: architecture %q not in corpus", a.Name)
		}
		has := make([]bool, len(c.Items))
		for _, idx := range d.Index {
			has[idx] = true
		}
		for i := range inAll {
			inAll[i] = inAll[i] && has[i]
		}
	}
	out := make(map[string]*ArchData, len(archs))
	for _, a := range archs {
		full := c.PerArch[a.Name]
		pos := make(map[int]int, len(full.Index))
		for row, idx := range full.Index {
			pos[idx] = row
		}
		sub := &ArchData{Arch: a}
		for i := range c.Items {
			if !inAll[i] {
				continue
			}
			row := pos[i]
			sub.Index = append(sub.Index, i)
			sub.Names = append(sub.Names, full.Names[row])
			sub.Feats = append(sub.Feats, full.Feats[row])
			sub.Times = append(sub.Times, full.Times[row])
			sub.Labels = append(sub.Labels, full.Labels[row])
		}
		out[a.Name] = sub
	}
	return out, nil
}
