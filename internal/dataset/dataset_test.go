package dataset

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/features"
	"repro/internal/gpusim"
	"repro/internal/sparse"
)

// smallConfig keeps unit tests fast.
func smallConfig() Config {
	return Config{
		Seed:            7,
		BaseCount:       28,
		AugmentPerBase:  1,
		Scale:           0.25,
		DropELLFailures: true,
	}
}

func TestFamilyString(t *testing.T) {
	seen := map[string]bool{}
	for f := Family(0); f < numFamilies; f++ {
		s := f.String()
		if s == "" || strings.HasPrefix(s, "Family(") {
			t.Errorf("family %d has no name", int(f))
		}
		if seen[s] {
			t.Errorf("duplicate family name %q", s)
		}
		seen[s] = true
	}
	if !strings.HasPrefix(Family(99).String(), "Family(") {
		t.Error("unknown family should format as Family(n)")
	}
}

func TestGeneratorsProduceValidMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for f := Family(0); f < numFamilies; f++ {
		for trial := 0; trial < 3; trial++ {
			m := f.Generate(rng, 0.3)
			if err := m.Validate(); err != nil {
				t.Errorf("%v trial %d: invalid matrix: %v", f, trial, err)
			}
			if m.NNZ() == 0 {
				t.Errorf("%v trial %d: empty matrix", f, trial)
			}
			rows, cols := m.Dims()
			if rows < 8 || cols < 8 {
				t.Errorf("%v trial %d: degenerate dims %dx%d", f, trial, rows, cols)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := smallConfig()
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || !sparse.Equal(a[i].Matrix, b[i].Matrix) {
			t.Fatalf("item %d differs between runs", i)
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(Config{BaseCount: 0, Scale: 0.5}); err == nil {
		t.Error("BaseCount 0 accepted")
	}
	if _, err := Generate(Config{BaseCount: 5, Scale: 0}); err == nil {
		t.Error("Scale 0 accepted")
	}
	if _, err := Generate(Config{BaseCount: 5, Scale: 1.5}); err == nil {
		t.Error("Scale > 1 accepted")
	}
}

func TestGenerateAugmentationNaming(t *testing.T) {
	items, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	bases, variants := 0, 0
	for _, it := range items {
		if strings.Contains(it.Name, "_p") {
			variants++
		} else {
			bases++
		}
	}
	if bases == 0 || variants == 0 {
		t.Fatalf("bases %d variants %d; want both > 0", bases, variants)
	}
	if variants != bases {
		t.Errorf("AugmentPerBase=1: want variants == bases, got %d vs %d", variants, bases)
	}
}

func TestAugmentPreservesNNZAndDims(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := FamilyBanded.Generate(rng, 0.2)
	vs, err := Augment(rng, m, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 {
		t.Fatalf("got %d variants, want 3", len(vs))
	}
	r0, c0 := m.Dims()
	for i, v := range vs {
		r, c := v.Dims()
		if r != r0 || c != c0 || v.NNZ() != m.NNZ() {
			t.Errorf("variant %d changed shape or nnz", i)
		}
		if sparse.Equal(m, v) {
			t.Errorf("variant %d is identical to the base", i)
		}
	}
}

func TestWindowedPermIsBijection(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{1, 2, 5, 64, 101} {
		p := windowedPerm(rng, n, 8)
		seen := make([]bool, n)
		for i, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("n=%d: not a bijection at %d", n, i)
			}
			seen[v] = true
			// Windowed: nothing moves further than one window.
			if d := v - i; d > 8 || d < -8 {
				t.Fatalf("n=%d: index %d moved %d, beyond the window", n, i, d)
			}
		}
	}
}

func TestBuildCorpus(t *testing.T) {
	items, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	archs := gpusim.Archs()
	c := Build(context.Background(), items, archs)
	if len(c.Feats) != len(items) || len(c.Profiles) != len(items) {
		t.Fatal("corpus arrays not aligned with items")
	}
	for i := range items {
		if len(c.Feats[i]) != features.Count {
			t.Fatalf("item %d: feature vector has %d entries", i, len(c.Feats[i]))
		}
	}
	for _, a := range archs {
		d := c.PerArch[a.Name]
		if d == nil {
			t.Fatalf("missing ArchData for %s", a.Name)
		}
		if d.Len() == 0 {
			t.Fatalf("%s dataset empty", a.Name)
		}
		if d.Len() > len(items) {
			t.Fatalf("%s dataset larger than the collection", a.Name)
		}
		counts := d.ClassCounts()
		sum := 0
		for _, n := range counts {
			sum += n
		}
		if sum != d.Len() {
			t.Errorf("%s class counts sum to %d, want %d", a.Name, sum, d.Len())
		}
		for row, idx := range d.Index {
			if d.Names[row] != items[idx].Name {
				t.Fatalf("%s: row %d name mismatch", a.Name, row)
			}
			if len(d.Times[row]) != sparse.NumKernelFormats {
				t.Fatalf("%s: row %d has %d times", a.Name, row, len(d.Times[row]))
			}
			if l := d.Labels[row]; l < 0 || l >= sparse.NumKernelFormats {
				t.Fatalf("%s: row %d label %d out of range", a.Name, row, l)
			}
		}
	}
}

func TestCommonSubsetAligned(t *testing.T) {
	items, err := Generate(Config{
		Seed: 9, BaseCount: 35, AugmentPerBase: 0, Scale: 0.45,
		DropELLFailures: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	archs := gpusim.Archs()
	c := Build(context.Background(), items, archs)
	sub, err := c.CommonSubset(archs)
	if err != nil {
		t.Fatal(err)
	}
	var ref *ArchData
	for _, a := range archs {
		d := sub[a.Name]
		if d == nil {
			t.Fatalf("missing common subset for %s", a.Name)
		}
		if d.Len() > c.PerArch[a.Name].Len() {
			t.Fatalf("%s: common subset larger than the per-arch dataset", a.Name)
		}
		if ref == nil {
			ref = d
			continue
		}
		if d.Len() != ref.Len() {
			t.Fatalf("common subsets not equal length: %d vs %d", d.Len(), ref.Len())
		}
		for k := range d.Index {
			if d.Index[k] != ref.Index[k] {
				t.Fatalf("common subset row %d refers to different matrices", k)
			}
		}
	}
	if ref.Len() == 0 {
		t.Fatal("common subset empty; transfer experiments would be vacuous")
	}
}

func TestCommonSubsetErrors(t *testing.T) {
	c := &Corpus{PerArch: map[string]*ArchData{}}
	if _, err := c.CommonSubset(nil); err == nil {
		t.Error("empty arch list accepted")
	}
	if _, err := c.CommonSubset([]gpusim.Arch{gpusim.Pascal}); err == nil {
		t.Error("unknown architecture accepted")
	}
}

func TestLabelDistributionShape(t *testing.T) {
	// The headline property the simulator must reproduce (Table 3):
	// unbalanced classes with CSR the clear majority on every GPU.
	items, err := Generate(Config{
		Seed: 21, BaseCount: 140, AugmentPerBase: 0, Scale: 0.5,
		DropELLFailures: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := Build(context.Background(), items, gpusim.Archs())
	for _, a := range gpusim.Archs() {
		d := c.PerArch[a.Name]
		counts := d.ClassCounts()
		csr := counts[1] // KernelFormats order: COO, CSR, ELL, HYB
		for i, n := range counts {
			if i != 1 && n >= csr {
				t.Errorf("%s: class %v (%d) >= CSR (%d); distribution shape wrong",
					a.Name, sparse.KernelFormats()[i], n, csr)
			}
		}
		if frac := float64(csr) / float64(d.Len()); frac < 0.40 || frac > 0.95 {
			t.Errorf("%s: CSR fraction %.2f outside the plausible Table 3 range", a.Name, frac)
		}
	}
}
