package dataset

import (
	"fmt"
	"math/rand"

	"repro/internal/sparse"
)

// Augment derives variants of a matrix by windowed row and column
// permutations, the augmentation strategy the paper borrows from the
// CNN-based prior work (Zhao et al., Pichel et al.). Permutations are
// windowed rather than global so the variants keep the coarse structure
// (bandedness, blocks) that determines their best format, while the fine
// layout — and therefore the exact feature values such as csr_max and
// the scatter — changes.
//
// It returns n new matrices; the input is not modified.
func Augment(rng *rand.Rand, m *sparse.CSR, n int) ([]*sparse.CSR, error) {
	rows, cols := m.Dims()
	out := make([]*sparse.CSR, 0, n)
	for v := 0; v < n; v++ {
		rp := windowedPerm(rng, rows, 1+rows/8)
		cp := windowedPerm(rng, cols, 1+cols/8)
		p, err := m.Permute(rp, cp)
		if err != nil {
			return nil, fmt.Errorf("dataset: augmenting variant %d: %w", v, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// windowedPerm builds a permutation of [0, n) that shuffles indices only
// within consecutive windows of the given size, bounding how far any
// entry can move.
func windowedPerm(rng *rand.Rand, n, window int) []int {
	if window < 2 {
		window = 2
	}
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for base := 0; base < n; base += window {
		hi := base + window
		if hi > n {
			hi = n
		}
		// Fisher-Yates within the window.
		for i := hi - 1; i > base; i-- {
			j := base + rng.Intn(i-base+1)
			p[i], p[j] = p[j], p[i]
		}
	}
	return p
}
