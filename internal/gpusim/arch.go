// Package gpusim is an analytical performance model of the four CUSP SpMV
// kernels (CSR, COO, ELL, HYB) on the three NVIDIA GPUs of the paper's
// Table 2. It substitutes for the physical GPUs and the CUSP library:
// given a matrix profile and an architecture, it predicts kernel execution
// time, and the fastest format becomes the matrix's ground-truth label.
//
// The model is not cycle-accurate; it reproduces the first-order
// mechanisms that decide which format wins, which is what the paper's
// labels depend on:
//
//   - CSR's scalar kernel assigns one thread per row, so a warp finishes
//     only when its longest row does (row-imbalance serialisation), and a
//     single very long row becomes a serial dependent-load chain — the
//     source of the paper's 194.85X worst-case CSR slowdown.
//   - ELL trades padding traffic (rows x max-row slab) for perfectly
//     coalesced accesses; its dense slab may exceed device memory on
//     small-memory GPUs, which is why ELL feasibility differs per GPU.
//   - COO's segmented reduction is perfectly load-balanced but moves more
//     bytes per nonzero and pays reduction overhead.
//   - HYB splits the matrix at a width chosen by CUSP's heuristic,
//     pairing a low-padding ELL slab with a COO tail.
//   - The x-vector gather hits or misses L2 depending on the vector size
//     relative to the cache and on the column scatter of the matrix.
//
// Per-architecture efficiency constants (gather penalty, atomic/reduction
// throughput, latency-hiding capacity) are calibrated so that the
// resulting label distributions have the shape of the paper's Table 3:
// highly unbalanced, CSR majority, ELL a strong second, COO and HYB rare
// and strongly architecture-dependent.
package gpusim

// Arch describes a GPU architecture: the public specification columns of
// the paper's Table 2 plus the calibrated kernel-efficiency constants of
// the analytical model.
type Arch struct {
	// Name is the short architecture name used throughout the paper
	// ("Pascal", "Volta", "Turing").
	Name string
	// Model is the marketing name of the card.
	Model string
	// SMs is the number of streaming multiprocessors.
	SMs int
	// L1PerSMKiB is the per-SM L1 cache size in KiB.
	L1PerSMKiB int
	// L2KiB is the shared L2 cache size in KiB.
	L2KiB int
	// MemoryGB is the device memory size.
	MemoryGB float64
	// MemoryType is the DRAM technology (GDDR5, HBM2, GDDR6).
	MemoryType string
	// BandwidthGBs is the peak memory bandwidth in GB/s.
	BandwidthGBs float64
	// ClockGHz is the SM clock used for serial-chain latency.
	ClockGHz float64

	// GatherPenalty inflates CSR value/index traffic to model the
	// uncoalesced per-thread row walks of the scalar CSR kernel. HBM2
	// tolerates scattered access better than GDDR.
	GatherPenalty float64
	// COOEfficiency scales COO traffic: <1 models fast L2 atomics
	// (Turing), >1 models expensive reduction passes.
	COOEfficiency float64
	// ELLEfficiency scales ELL slab traffic; close to 1 since the slab
	// walk is perfectly coalesced.
	ELLEfficiency float64
	// HYBEfficiency scales the ELL part of the HYB kernel: the split
	// kernel runs at lower occupancy than a pure ELL sweep.
	HYBEfficiency float64
	// ImbalanceWeight in [0,1] is the fraction of warp-serialisation
	// overhead not hidden by other resident warps; architectures with
	// few SMs hide less.
	ImbalanceWeight float64
	// HYBOverhead is the fixed extra cost (seconds) of HYB's two-phase
	// kernel dispatch and result merge.
	HYBOverhead float64
	// MaxKernelSeconds is the per-kernel timeout of the benchmarking
	// harness: a matrix whose slowest kernel exceeds it fails to
	// benchmark on this architecture and leaves its dataset, emulating
	// the job limits that shrank the paper's per-GPU totals in Table 3
	// (Volta ran under the strictest quota). Zero means no timeout.
	MaxKernelSeconds float64
}

// The three GPUs of Table 2. Specification columns are the paper's; the
// efficiency constants are this model's calibration.
var (
	// Pascal is the NVIDIA GeForce GTX 1080, a desktop gaming card:
	// few SMs, small L2, 8 GB of GDDR5.
	Pascal = Arch{
		Name: "Pascal", Model: "GTX 1080",
		SMs: 20, L1PerSMKiB: 48, L2KiB: 2048,
		MemoryGB: 8, MemoryType: "GDDR5", BandwidthGBs: 320, ClockGHz: 1.61,
		GatherPenalty:    1.75,
		COOEfficiency:    1.35,
		ELLEfficiency:    0.95,
		HYBEfficiency:    1.10,
		ImbalanceWeight:  0.06,
		HYBOverhead:      1.0e-6,
		MaxKernelSeconds: 20e-3,
	}
	// Volta is the NVIDIA V100 SXM3, an HPC accelerator: many SMs, large
	// L2, HBM2 that tolerates scattered access.
	Volta = Arch{
		Name: "Volta", Model: "V100 SXM3",
		SMs: 80, L1PerSMKiB: 128, L2KiB: 6144,
		MemoryGB: 32, MemoryType: "HBM2", BandwidthGBs: 897, ClockGHz: 1.37,
		GatherPenalty:    1.55,
		COOEfficiency:    1.90,
		ELLEfficiency:    0.85,
		HYBEfficiency:    1.80,
		ImbalanceWeight:  0.02,
		HYBOverhead:      8.0e-6,
		MaxKernelSeconds: 14e-6,
	}
	// Turing is the NVIDIA Quadro RTX 8000, a workstation card with fast
	// L2 atomics that make the COO segmented reduction competitive.
	Turing = Arch{
		Name: "Turing", Model: "RTX 8000",
		SMs: 72, L1PerSMKiB: 64, L2KiB: 6144,
		MemoryGB: 48, MemoryType: "GDDR6", BandwidthGBs: 672, ClockGHz: 1.44,
		GatherPenalty:    1.55,
		COOEfficiency:    1.10,
		ELLEfficiency:    1.00,
		HYBEfficiency:    1.40,
		ImbalanceWeight:  0.03,
		HYBOverhead:      3.5e-6,
		MaxKernelSeconds: 10e-3,
	}
)

// Archs returns the three modelled GPUs in the paper's order.
func Archs() []Arch { return []Arch{Pascal, Volta, Turing} }

// ArchByName returns the architecture with the given Name, or false.
func ArchByName(name string) (Arch, bool) {
	for _, a := range Archs() {
		if a.Name == name {
			return a, true
		}
	}
	return Arch{}, false
}

// memoryBytes returns the usable device memory in bytes, reserving a
// tenth for the runtime as real allocators do.
func (a Arch) memoryBytes() float64 { return a.MemoryGB * 1e9 * 0.9 }

// cooLaunches is the number of kernel launches of the COO segmented
// reduction: two (block reduction + carry fix-up) on older parts, one on
// Turing whose L2 atomics let the carry propagation fuse into the main
// kernel — the reason COO is competitive on small matrices there.
func (a Arch) cooLaunches() int {
	if a.Name == "Turing" {
		return 1
	}
	return 2
}
