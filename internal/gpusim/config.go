package gpusim

import (
	"encoding/json"
	"fmt"
	"io"
)

// LoadArch reads an architecture description from JSON, so downstream
// users can model GPUs beyond the paper's three. Unset efficiency
// constants receive neutral defaults; the hardware fields (SMs, caches,
// memory, bandwidth, clock) are required.
//
// Example document:
//
//	{
//	  "Name": "Ampere", "Model": "A100",
//	  "SMs": 108, "L1PerSMKiB": 192, "L2KiB": 40960,
//	  "MemoryGB": 40, "MemoryType": "HBM2e", "BandwidthGBs": 1555,
//	  "ClockGHz": 1.41
//	}
func LoadArch(r io.Reader) (Arch, error) {
	var a Arch
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&a); err != nil {
		return Arch{}, fmt.Errorf("gpusim: decoding architecture: %w", err)
	}
	a.applyDefaults()
	if err := a.Validate(); err != nil {
		return Arch{}, err
	}
	return a, nil
}

// applyDefaults fills neutral values for unset efficiency constants.
func (a *Arch) applyDefaults() {
	if a.GatherPenalty == 0 {
		a.GatherPenalty = 1.5
	}
	if a.COOEfficiency == 0 {
		a.COOEfficiency = 1.2
	}
	if a.ELLEfficiency == 0 {
		a.ELLEfficiency = 1.0
	}
	if a.HYBEfficiency == 0 {
		a.HYBEfficiency = 1.3
	}
	if a.ImbalanceWeight == 0 {
		a.ImbalanceWeight = 0.05
	}
	if a.HYBOverhead == 0 {
		a.HYBOverhead = 3e-6
	}
	if a.MaxKernelSeconds == 0 {
		a.MaxKernelSeconds = 20e-3
	}
}

// Validate checks the architecture description for physical plausibility.
func (a Arch) Validate() error {
	switch {
	case a.Name == "":
		return fmt.Errorf("gpusim: architecture needs a Name")
	case a.SMs <= 0:
		return fmt.Errorf("gpusim: %s: SMs must be positive, got %d", a.Name, a.SMs)
	case a.L2KiB <= 0:
		return fmt.Errorf("gpusim: %s: L2KiB must be positive, got %d", a.Name, a.L2KiB)
	case a.MemoryGB <= 0:
		return fmt.Errorf("gpusim: %s: MemoryGB must be positive, got %v", a.Name, a.MemoryGB)
	case a.BandwidthGBs <= 0:
		return fmt.Errorf("gpusim: %s: BandwidthGBs must be positive, got %v", a.Name, a.BandwidthGBs)
	case a.ClockGHz <= 0:
		return fmt.Errorf("gpusim: %s: ClockGHz must be positive, got %v", a.Name, a.ClockGHz)
	case a.GatherPenalty < 1:
		return fmt.Errorf("gpusim: %s: GatherPenalty must be >= 1, got %v", a.Name, a.GatherPenalty)
	case a.COOEfficiency <= 0 || a.ELLEfficiency <= 0 || a.HYBEfficiency <= 0:
		return fmt.Errorf("gpusim: %s: kernel efficiencies must be positive", a.Name)
	case a.ImbalanceWeight < 0 || a.ImbalanceWeight > 1:
		return fmt.Errorf("gpusim: %s: ImbalanceWeight must be in [0, 1], got %v", a.Name, a.ImbalanceWeight)
	case a.HYBOverhead < 0 || a.MaxKernelSeconds < 0:
		return fmt.Errorf("gpusim: %s: overheads must be non-negative", a.Name)
	}
	return nil
}

// SaveArch writes an architecture description as indented JSON, the
// inverse of LoadArch.
func SaveArch(w io.Writer, a Arch) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(a); err != nil {
		return fmt.Errorf("gpusim: encoding architecture: %w", err)
	}
	return nil
}
