package gpusim

import (
	"fmt"
	"math"

	"repro/internal/sparse"
)

// Overhead-conscious format selection, after Zhao et al. (IPDPS 2018 /
// IEEE TPDS 2020), which the paper's related-work section singles out:
// converting a matrix out of CSR costs many SpMV-equivalents (Table 8),
// so the best format depends on how many multiplications will amortise
// the conversion. These helpers extend the qualitative selector with
// that quantitative decision.

// AmortizedTime returns the modelled total cost in seconds of running
// `iterations` SpMV operations in the given format, including the
// one-time conversion from CSR priced by ConversionCost.
func (a Arch) AmortizedTime(p Profile, f sparse.Format, iterations int) (float64, error) {
	if iterations <= 0 {
		return 0, fmt.Errorf("gpusim: AmortizedTime with %d iterations", iterations)
	}
	t, err := a.KernelTime(p, f)
	if err != nil {
		return 0, err
	}
	csrT, err := a.KernelTime(p, sparse.FormatCSR)
	if err != nil {
		return 0, err
	}
	return ConversionCost(f)*csrT + float64(iterations)*t, nil
}

// AmortizedSelect returns the format with the lowest total cost for the
// given SpMV iteration count. For small counts it returns CSR (no
// conversion to pay); as the count grows the asymptotically fastest
// feasible format takes over.
func (a Arch) AmortizedSelect(p Profile, iterations int) (sparse.Format, error) {
	best := sparse.FormatCSR
	bestT := math.Inf(1)
	for _, f := range sparse.KernelFormats() {
		t, err := a.AmortizedTime(p, f, iterations)
		if err != nil {
			continue // infeasible format
		}
		if t < bestT {
			bestT = t
			best = f
		}
	}
	if math.IsInf(bestT, 1) {
		return sparse.FormatCSR, fmt.Errorf("gpusim: no feasible format")
	}
	return best, nil
}

// BreakEvenIterations returns the smallest SpMV count at which
// converting to the format beats staying in CSR, and false when the
// format never wins (it is infeasible or not faster per iteration).
func (a Arch) BreakEvenIterations(p Profile, to sparse.Format) (int, bool) {
	if to == sparse.FormatCSR {
		return 0, true
	}
	t, err := a.KernelTime(p, to)
	if err != nil {
		return 0, false
	}
	csrT, err := a.KernelTime(p, sparse.FormatCSR)
	if err != nil {
		return 0, false
	}
	perIter := csrT - t
	if perIter <= 0 {
		return 0, false
	}
	return int(math.Ceil(ConversionCost(to) * csrT / perIter)), true
}
