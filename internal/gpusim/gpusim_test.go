package gpusim

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

func mustCSR(tb testing.TB, rows, cols int, fill func(t *sparse.Triplet)) *sparse.CSR {
	tb.Helper()
	t := sparse.NewTriplet(rows, cols)
	fill(t)
	return t.ToCSR()
}

func add(tb testing.TB, t *sparse.Triplet, i, j int) {
	tb.Helper()
	if err := t.Add(i, j, 1); err != nil {
		tb.Fatal(err)
	}
}

func TestArchByName(t *testing.T) {
	for _, a := range Archs() {
		got, ok := ArchByName(a.Name)
		if !ok || got.Model != a.Model {
			t.Errorf("ArchByName(%q) = %+v, %v", a.Name, got, ok)
		}
	}
	if _, ok := ArchByName("Ampere"); ok {
		t.Error("ArchByName accepted unknown architecture")
	}
}

func TestTable2Specs(t *testing.T) {
	// The specification columns must match the paper's Table 2 exactly.
	cases := []struct {
		a      Arch
		sms    int
		l1     int
		l2     int
		mem    float64
		bw     float64
		memTyp string
	}{
		{Pascal, 20, 48, 2048, 8, 320, "GDDR5"},
		{Volta, 80, 128, 6144, 32, 897, "HBM2"},
		{Turing, 72, 64, 6144, 48, 672, "GDDR6"},
	}
	for _, c := range cases {
		if c.a.SMs != c.sms || c.a.L1PerSMKiB != c.l1 || c.a.L2KiB != c.l2 ||
			c.a.MemoryGB != c.mem || c.a.BandwidthGBs != c.bw || c.a.MemoryType != c.memTyp {
			t.Errorf("%s specs do not match Table 2: %+v", c.a.Name, c.a)
		}
	}
}

func TestProfileHandComputed(t *testing.T) {
	// 3 rows: lengths 2, 1, 3 in a 3x4 matrix.
	m := mustCSR(t, 3, 4, func(tr *sparse.Triplet) {
		add(t, tr, 0, 0)
		add(t, tr, 0, 3)
		add(t, tr, 1, 1)
		add(t, tr, 2, 0)
		add(t, tr, 2, 1)
		add(t, tr, 2, 2)
	})
	p := NewProfile(m)
	if p.Rows != 3 || p.Cols != 4 || p.NNZ != 6 {
		t.Fatalf("dims: %+v", p)
	}
	if p.MaxRow != 3 {
		t.Errorf("MaxRow = %d, want 3", p.MaxRow)
	}
	if p.MeanRow != 2 {
		t.Errorf("MeanRow = %v, want 2", p.MeanRow)
	}
	// One warp of 3 rows, longest row 3: serialised work = 3*3 = 9.
	if p.WarpSerialNNZ != 9 {
		t.Errorf("WarpSerialNNZ = %v, want 9", p.WarpSerialNNZ)
	}
	if got := p.Imbalance(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Imbalance = %v, want 1.5", got)
	}
	if p.EllSlab != 9 {
		t.Errorf("EllSlab = %d, want 9", p.EllSlab)
	}
	// Spans: row0 = 4 (cols 0..3), row1 = 1, row2 = 3; mean span 8/3;
	// scatter = (8/3)/4 = 2/3.
	if math.Abs(p.Scatter-2.0/3) > 1e-12 {
		t.Errorf("Scatter = %v, want 2/3", p.Scatter)
	}
	if p.HybEllNNZ+p.HybCooNNZ != p.NNZ {
		t.Errorf("HYB split loses entries: %d + %d != %d", p.HybEllNNZ, p.HybCooNNZ, p.NNZ)
	}
}

func TestKernelTimePositiveAndFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := mustCSR(t, 200, 200, func(tr *sparse.Triplet) {
		for n := 0; n < 2000; n++ {
			add(t, tr, rng.Intn(200), rng.Intn(200))
		}
	})
	p := NewProfile(m)
	for _, a := range Archs() {
		for _, f := range sparse.KernelFormats() {
			tm, err := a.KernelTime(p, f)
			if err != nil {
				t.Fatalf("%s/%v: %v", a.Name, f, err)
			}
			if tm <= 0 || math.IsNaN(tm) || math.IsInf(tm, 0) {
				t.Errorf("%s/%v: non-positive or non-finite time %v", a.Name, f, tm)
			}
		}
	}
}

func TestKernelTimeScalesWithWork(t *testing.T) {
	// A 10x larger matrix of the same shape must take longer in every
	// format on every architecture.
	build := func(n int) Profile {
		rng := rand.New(rand.NewSource(2))
		m := mustCSR(t, n, n, func(tr *sparse.Triplet) {
			for k := 0; k < 20*n; k++ {
				add(t, tr, rng.Intn(n), rng.Intn(n))
			}
		})
		return NewProfile(m)
	}
	small, large := build(500), build(5000)
	for _, a := range Archs() {
		for _, f := range sparse.KernelFormats() {
			ts, err1 := a.KernelTime(small, f)
			tl, err2 := a.KernelTime(large, f)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s/%v: %v %v", a.Name, f, err1, err2)
			}
			if tl <= ts {
				t.Errorf("%s/%v: 10x matrix not slower (%v <= %v)", a.Name, f, tl, ts)
			}
		}
	}
}

func TestELLInfeasibleWhenSlabExceedsMemory(t *testing.T) {
	// A synthetic profile whose ELL slab exceeds 8 GB but not 48 GB:
	// infeasible on Pascal, feasible on Turing.
	p := Profile{
		Rows: 2_000_000, Cols: 2_000_000, NNZ: 10_000_000,
		MaxRow: 500, MeanRow: 5, WarpSerialNNZ: 20_000_000,
		EllSlab:  1_000_000_000, // 12 GB at 12 bytes/entry
		HybWidth: 5, HybEllNNZ: 9_000_000, HybCooNNZ: 1_000_000,
		HybSlab: 10_000_000, Scatter: 0.5,
	}
	if _, err := Pascal.KernelTime(p, sparse.FormatELL); err == nil {
		t.Error("Pascal accepted a 12 GB ELL slab")
	}
	if _, err := Turing.KernelTime(p, sparse.FormatELL); err != nil {
		t.Errorf("Turing rejected a 12 GB ELL slab: %v", err)
	}
	// CSR stays feasible on Pascal.
	if _, err := Pascal.KernelTime(p, sparse.FormatCSR); err != nil {
		t.Errorf("Pascal rejected CSR: %v", err)
	}
}

func TestMeasureDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := mustCSR(t, 300, 300, func(tr *sparse.Triplet) {
		for n := 0; n < 3000; n++ {
			add(t, tr, rng.Intn(300), rng.Intn(300))
		}
	})
	p := NewProfile(m)
	a := Turing
	m1 := a.Measure("matrix_x", p)
	m2 := a.Measure("matrix_x", p)
	if m1 != m2 {
		t.Error("Measure is not deterministic")
	}
	m3 := a.Measure("matrix_y", p)
	same := true
	for i := range m1.Times {
		if m1.Times[i] != m3.Times[i] {
			same = false
		}
	}
	if same {
		t.Error("noise does not vary with matrix id")
	}
	if _, ok := m1.BestFormat(); !ok {
		t.Error("no best format for a feasible matrix")
	}
}

func TestMeasureTimeout(t *testing.T) {
	// A profile with a gigantic serial chain must fail Volta's timeout
	// but stay feasible on Turing (whose quota is 10 ms).
	p := Profile{
		Rows: 2_000, Cols: 100_000, NNZ: 200_000,
		MaxRow: 80_000, MeanRow: 100, WarpSerialNNZ: 5_000_000,
		EllSlab:  2_000 * 80_000,
		HybWidth: 100, HybEllNNZ: 120_000, HybCooNNZ: 80_000,
		HybSlab: 200_000, Scatter: 1,
	}
	mv := Volta.Measure("spike", p)
	if mv.Feasible() {
		t.Error("Volta accepted a chain-dominated spike matrix")
	}
	mt := Turing.Measure("spike", p)
	if !mt.Feasible() {
		t.Error("Turing rejected the spike matrix")
	}
	// And CSR must be far slower than the best format there: this is the
	// paper's two-orders-of-magnitude slowdown mechanism.
	best := math.Inf(1)
	for _, tm := range mt.Times {
		best = math.Min(best, tm)
	}
	if ratio := mt.Times[1] / best; ratio < 10 {
		t.Errorf("spike CSR slowdown on Turing only %.1fx, want >= 10x", ratio)
	}
}

func TestConversionCostTable8(t *testing.T) {
	want := map[sparse.Format]float64{
		sparse.FormatCOO: 9, sparse.FormatCSR: 0,
		sparse.FormatELL: 102, sparse.FormatHYB: 147,
	}
	for f, w := range want {
		if got := ConversionCost(f); got != w {
			t.Errorf("ConversionCost(%v) = %v, want %v", f, got, w)
		}
	}
	if ConversionCost(sparse.FormatDIA) != 0 {
		t.Error("DIA has no conversion cost entry")
	}
}

func TestBenchmarkingCost(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var ps []Profile
	for k := 0; k < 10; k++ {
		m := mustCSR(t, 100, 100, func(tr *sparse.Triplet) {
			for n := 0; n < 1000; n++ {
				add(t, tr, rng.Intn(100), rng.Intn(100))
			}
		})
		ps = append(ps, NewProfile(m))
	}
	c := Pascal.BenchmarkingCost(ps)
	// At minimum: 5 s of file reads per matrix.
	if c < 10*MTXReadSeconds {
		t.Errorf("BenchmarkingCost = %v, below the read floor", c)
	}
}

// TestQuickProfileInvariants property-tests structural bounds on random
// matrices: imbalance >= 1, hyb split conserves nnz, slab >= nnz.
func TestQuickProfileInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(60), 1+rng.Intn(60)
		tr := sparse.NewTriplet(rows, cols)
		for n := 0; n < 1+rng.Intn(4*rows); n++ {
			if tr.Add(rng.Intn(rows), rng.Intn(cols), 1) != nil {
				return false
			}
		}
		m := tr.ToCSR()
		if m.NNZ() == 0 {
			return true
		}
		p := NewProfile(m)
		if p.Imbalance() < 1 {
			return false
		}
		if p.HybEllNNZ+p.HybCooNNZ != p.NNZ {
			return false
		}
		if p.EllSlab < p.NNZ {
			return false
		}
		if p.Scatter < 0 || p.Scatter > 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestLabelsDifferAcrossArchs verifies the premise of the transfer
// experiments: the same matrices receive different labels on different
// GPUs.
func TestLabelsDifferAcrossArchs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	differ := 0
	for k := 0; k < 60; k++ {
		rows := 200 + rng.Intn(2000)
		tr := sparse.NewTriplet(rows, rows)
		mean := 2 + rng.Intn(12)
		for i := 0; i < rows; i++ {
			for e := 0; e < mean; e++ {
				add(t, tr, i, rng.Intn(rows))
			}
		}
		// A heavy row on some matrices.
		if k%2 == 0 {
			i := rng.Intn(rows)
			for e := 0; e < rows/3; e++ {
				add(t, tr, i, rng.Intn(rows))
			}
		}
		p := NewProfile(tr.ToCSR())
		var labels []int
		for _, a := range Archs() {
			m := a.Measure("m", p)
			if m.Feasible() {
				labels = append(labels, m.Best)
			}
		}
		for i := 1; i < len(labels); i++ {
			if labels[i] != labels[0] {
				differ++
				break
			}
		}
	}
	if differ == 0 {
		t.Error("labels never differ across architectures; transfer experiments would be vacuous")
	}
}

func TestAmortizedSelection(t *testing.T) {
	// A mesh-like profile where ELL is the fastest steady-state kernel.
	rng := rand.New(rand.NewSource(6))
	tr := sparse.NewTriplet(4000, 4000)
	for i := 0; i < 4000; i++ {
		for d := 0; d < 5; d++ {
			j := i + d - 2
			if j >= 0 && j < 4000 {
				add(t, tr, i, j)
			}
		}
	}
	_ = rng
	p := NewProfile(tr.ToCSR())
	a := Pascal
	ellT, err := a.KernelTime(p, sparse.FormatELL)
	if err != nil {
		t.Fatal(err)
	}
	csrT, err := a.KernelTime(p, sparse.FormatCSR)
	if err != nil {
		t.Fatal(err)
	}
	if ellT >= csrT {
		t.Skipf("model prefers CSR for this profile (%v vs %v); amortization untestable", ellT, csrT)
	}
	// One iteration: conversion cost dominates, CSR must win.
	f, err := a.AmortizedSelect(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f != sparse.FormatCSR {
		t.Errorf("1 iteration: selected %v, want CSR", f)
	}
	// Far past break-even: the steady-state winner takes over.
	be, ok := a.BreakEvenIterations(p, sparse.FormatELL)
	if !ok {
		t.Fatal("no break-even for a faster format")
	}
	if be <= 0 {
		t.Fatalf("break-even %d", be)
	}
	f, err = a.AmortizedSelect(p, be*4)
	if err != nil {
		t.Fatal(err)
	}
	if f == sparse.FormatCSR {
		t.Errorf("%d iterations: still CSR despite break-even %d", be*4, be)
	}
	// Consistency: at the break-even count, ELL's amortized time is at
	// most CSR's.
	ellA, err := a.AmortizedTime(p, sparse.FormatELL, be)
	if err != nil {
		t.Fatal(err)
	}
	csrA, err := a.AmortizedTime(p, sparse.FormatCSR, be)
	if err != nil {
		t.Fatal(err)
	}
	if ellA > csrA*1.0001 {
		t.Errorf("at break-even %d: ELL %v > CSR %v", be, ellA, csrA)
	}
	// CSR itself breaks even immediately; a slower format never does.
	if n, ok := a.BreakEvenIterations(p, sparse.FormatCSR); !ok || n != 0 {
		t.Errorf("CSR break-even = %d, %v", n, ok)
	}
	if _, err := a.AmortizedTime(p, sparse.FormatELL, 0); err == nil {
		t.Error("0 iterations accepted")
	}
}

func TestLoadArchJSON(t *testing.T) {
	doc := `{
	  "Name": "Ampere", "Model": "A100",
	  "SMs": 108, "L1PerSMKiB": 192, "L2KiB": 40960,
	  "MemoryGB": 40, "MemoryType": "HBM2e", "BandwidthGBs": 1555,
	  "ClockGHz": 1.41
	}`
	a, err := LoadArch(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "Ampere" || a.SMs != 108 {
		t.Errorf("decoded %+v", a)
	}
	// Defaults filled in and usable for prediction.
	if a.GatherPenalty < 1 || a.COOEfficiency <= 0 {
		t.Errorf("defaults missing: %+v", a)
	}
	m := mustCSR(t, 100, 100, func(tr *sparse.Triplet) {
		for i := 0; i < 100; i++ {
			add(t, tr, i, i)
		}
	})
	p := NewProfile(m)
	for _, f := range sparse.KernelFormats() {
		if _, err := a.KernelTime(p, f); err != nil {
			t.Errorf("loaded arch cannot model %v: %v", f, err)
		}
	}
	// Round trip through SaveArch.
	var buf bytes.Buffer
	if err := SaveArch(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := LoadArch(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b != a {
		t.Error("SaveArch/LoadArch round trip changed the architecture")
	}
}

func TestLoadArchRejectsBadDocuments(t *testing.T) {
	cases := map[string]string{
		"not json":       `{`,
		"unknown field":  `{"Name":"X","SMs":1,"L2KiB":1,"MemoryGB":1,"BandwidthGBs":1,"ClockGHz":1,"Bogus":2}`,
		"no name":        `{"SMs":1,"L2KiB":1,"MemoryGB":1,"BandwidthGBs":1,"ClockGHz":1}`,
		"zero SMs":       `{"Name":"X","L2KiB":1,"MemoryGB":1,"BandwidthGBs":1,"ClockGHz":1}`,
		"bad gather":     `{"Name":"X","SMs":1,"L2KiB":1,"MemoryGB":1,"BandwidthGBs":1,"ClockGHz":1,"GatherPenalty":0.5}`,
		"bad imbalance":  `{"Name":"X","SMs":1,"L2KiB":1,"MemoryGB":1,"BandwidthGBs":1,"ClockGHz":1,"ImbalanceWeight":2}`,
		"negative clock": `{"Name":"X","SMs":1,"L2KiB":1,"MemoryGB":1,"BandwidthGBs":1,"ClockGHz":-1}`,
	}
	for name, doc := range cases {
		if _, err := LoadArch(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestBuiltinArchsValidate(t *testing.T) {
	for _, a := range Archs() {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}
