package gpusim

import (
	"hash/fnv"
	"math"

	"repro/internal/obs"
	"repro/internal/sparse"
)

// noiseAmplitude is the residual relative measurement noise after the
// 100-trial averaging the paper performs.
const noiseAmplitude = 0.02

// Measurement holds the simulated kernel times of one matrix on one
// architecture. Times follows sparse.KernelFormats() order (COO, CSR,
// ELL, HYB); an infeasible kernel is +Inf.
type Measurement struct {
	// Times are the per-format SpMV times in seconds.
	Times [sparse.NumKernelFormats]float64
	// Best is the index into sparse.KernelFormats() of the fastest
	// format, or -1 when no kernel is feasible.
	Best int
	// OK records whether every kernel ran within the architecture's
	// timeout; only OK matrices enter that architecture's dataset.
	OK bool
}

// BestFormat returns the fastest format, or false when nothing ran.
func (m Measurement) BestFormat() (sparse.Format, bool) {
	if m.Best < 0 {
		return 0, false
	}
	return sparse.KernelFormats()[m.Best], true
}

// Feasible reports whether every kernel ran within the architecture's
// timeout, the condition for a matrix to enter an architecture's
// benchmark dataset (the paper drops matrices that fail on a GPU, which
// is why the per-GPU totals in Table 3 differ).
func (m Measurement) Feasible() bool { return m.OK }

// Benchmark-runner progress counters, live on /debug/vars while a long
// corpus labelling runs: matrices measured, and how many fell outside
// the architecture's feasibility window.
var (
	measureCount    = obs.Default.Counter("gpusim/measurements")
	infeasibleCount = obs.Default.Counter("gpusim/infeasible")
)

// Measure simulates benchmarking one matrix on the architecture: it
// evaluates the kernel model for each format and applies a small
// deterministic pseudo-random noise keyed on (id, format, architecture),
// standing in for the residual noise of the paper's 100-trial averages.
func (a Arch) Measure(id string, p Profile) Measurement {
	var m Measurement
	m.Best = -1
	m.OK = true
	best := math.Inf(1)
	for i, f := range sparse.KernelFormats() {
		t, err := a.KernelTime(p, f)
		if err != nil {
			m.Times[i] = math.Inf(1)
			m.OK = false
			continue
		}
		t *= 1 + noiseAmplitude*(2*hashUnit(id, f.String(), a.Name)-1)
		m.Times[i] = t
		if a.MaxKernelSeconds > 0 && t > a.MaxKernelSeconds {
			m.OK = false
		}
		if t < best {
			best = t
			m.Best = i
		}
	}
	if obs.Enabled() {
		measureCount.Inc()
		if !m.OK {
			infeasibleCount.Inc()
		}
	}
	return m
}

// hashUnit maps the key strings to a deterministic uniform value in
// [0, 1) via FNV-1a followed by a splitmix64 finaliser.
func hashUnit(parts ...string) float64 {
	h := fnv.New64a()
	for _, p := range parts {
		// Hash.Write never returns an error.
		_, _ = h.Write([]byte(p))
		_, _ = h.Write([]byte{0})
	}
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// ConversionCost is the cost of converting a CSR matrix to the format,
// expressed as a multiple of one CSR SpMV on the same matrix. The values
// are the paper's Table 8, adapted there from Zhao et al. (IPDPS 2018).
// CSR costs nothing: the benchmark already holds the matrix in CSR.
func ConversionCost(f sparse.Format) float64 {
	switch f {
	case sparse.FormatCOO:
		return 9
	case sparse.FormatCSR:
		return 0
	case sparse.FormatELL:
		return 102
	case sparse.FormatHYB:
		return 147
	default:
		return 0
	}
}

// MTXReadSeconds is the paper's assumed average time to read one .mtx
// file from disk when estimating total benchmarking cost.
const MTXReadSeconds = 5.0

// BenchmarkTrials is the number of SpMV repetitions the paper averages.
const BenchmarkTrials = 100

// BenchmarkingCost returns the estimated wall-clock seconds to benchmark
// the given matrices on the architecture: file reading, format
// conversions priced per ConversionCost, and BenchmarkTrials timed SpMV
// runs per feasible format. This regenerates the lower half of Table 8.
func (a Arch) BenchmarkingCost(profiles []Profile) float64 {
	total := 0.0
	for _, p := range profiles {
		total += MTXReadSeconds
		csrT, err := a.KernelTime(p, sparse.FormatCSR)
		if err != nil {
			continue
		}
		for _, f := range sparse.KernelFormats() {
			t, err := a.KernelTime(p, f)
			if err != nil {
				continue
			}
			total += ConversionCost(f)*csrT + BenchmarkTrials*t
		}
	}
	return total
}
