package gpusim

import (
	"fmt"
	"math"

	"repro/internal/sparse"
)

// Sizes in bytes of the data elements the kernels move.
const (
	bytesVal = 8 // float64 value
	bytesIdx = 4 // int32 index
)

// launchOverhead is the fixed kernel launch latency in seconds.
const launchOverhead = 1.5e-6

// chainCycles is the dependent-load latency per nonzero for a single
// thread walking a row serially; it is what makes one enormous row a
// disaster for the scalar CSR kernel.
const chainCycles = 18.0

// bwEfficiency is the fraction of peak bandwidth a streaming SpMV kernel
// sustains in practice.
const bwEfficiency = 0.72

// csrStreamFraction is the share of the gather penalty that also applies
// to the CSR value/index streams: per-thread row walks are only partially
// coalesced, unlike ELL's column-major slab or COO's flat arrays.
const csrStreamFraction = 0.35

// cooReductionBytes is the extra per-entry traffic of the segmented
// reduction's carry/flag processing.
const cooReductionBytes = 8.0

// chainHideRowsPerSM scales how many average rows' worth of work the
// resident warps hide before a long row's serial chain becomes visible:
// short chains overlap with the rest of the matrix, only the excess
// stalls the kernel. More SMs resident means more hiding.
const chainHideRowsPerSM = 1.6

// ErrInfeasible reports that a kernel cannot run at all on the given
// architecture (structure exceeds device memory), the analogue of the
// out-of-memory failures that shrink the paper's per-GPU datasets.
var ErrInfeasible = fmt.Errorf("gpusim: kernel infeasible on this architecture")

// KernelTime predicts the execution time in seconds of one SpMV in the
// given format on the given architecture. It returns ErrInfeasible when
// the format's storage does not fit in device memory. The prediction is
// deterministic.
func (a Arch) KernelTime(p Profile, f sparse.Format) (float64, error) {
	if p.NNZ == 0 || p.Rows == 0 || p.Cols == 0 {
		return launchOverhead, nil
	}
	vectors := float64(p.Rows+p.Cols) * bytesVal
	bw := a.BandwidthGBs * 1e9 * bwEfficiency
	xc := a.xCostBytes(p)
	nnz := float64(p.NNZ)

	switch f {
	case sparse.FormatCSR:
		if nnz*(bytesVal+bytesIdx)+float64(p.Rows+1)*bytesIdx+vectors > a.memoryBytes() {
			return 0, ErrInfeasible
		}
		stream := 1 + csrStreamFraction*(a.GatherPenalty-1)
		traffic := nnz*((bytesVal+bytesIdx)*stream+xc*a.GatherPenalty) +
			float64(p.Rows)*(bytesVal+bytesIdx)
		// Warp serialisation: the un-hidden fraction of the imbalance
		// inflates effective time.
		imb := 1 + a.ImbalanceWeight*(p.Imbalance()-1)
		tMem := traffic / bw * imb
		// The serial chain of the longest row, minus the part hidden by
		// concurrently resident warps.
		chainLen := float64(p.MaxRow) - chainHideRowsPerSM*float64(a.SMs)*p.MeanRow
		if chainLen < 0 {
			chainLen = 0
		}
		tChain := chainLen * chainCycles / (a.ClockGHz * 1e9)
		return launchOverhead + math.Max(tMem, tChain), nil

	case sparse.FormatCOO:
		if nnz*(bytesVal+2*bytesIdx)+vectors > a.memoryBytes() {
			return 0, ErrInfeasible
		}
		// Value + two indices per entry, plus the carry/flag traffic of
		// the segmented reduction, plus the x gather.
		traffic := nnz*((bytesVal+2*bytesIdx)+xc+cooReductionBytes) +
			float64(p.Rows)*bytesVal
		tMem := traffic / bw * a.COOEfficiency
		// Block-local reduction plus (on most architectures) a separate
		// carry fix-up launch.
		return float64(a.cooLaunches())*launchOverhead + tMem, nil

	case sparse.FormatELL:
		slabBytes := float64(p.EllSlab) * (bytesVal + bytesIdx)
		if slabBytes+vectors > a.memoryBytes() {
			return 0, ErrInfeasible
		}
		// The whole slab is streamed (padding included) but the x gather
		// happens only for true nonzeros; the column-major walk is
		// perfectly coalesced.
		traffic := slabBytes*a.ELLEfficiency + nnz*xc + float64(p.Rows)*bytesVal
		tMem := traffic / bw
		// Each thread walks MaxRow slots, fully overlapped across rows:
		// only a fraction of the chain is exposed.
		tChain := 0.25 * float64(p.MaxRow) * chainCycles / (a.ClockGHz * 1e9)
		return launchOverhead + math.Max(tMem, tChain), nil

	case sparse.FormatSELL:
		// Sliced ELLPACK (extension format): coalesced like ELL but the
		// padding is bounded per slice, at the cost of slice-descriptor
		// lookups. Modelled like ELL over the smaller SELL slab with a
		// small per-slice overhead.
		slabBytes := float64(p.SellSlab) * (bytesVal + bytesIdx)
		slices := float64((p.Rows + warpSize - 1) / warpSize)
		if slabBytes+vectors > a.memoryBytes() {
			return 0, ErrInfeasible
		}
		traffic := slabBytes*a.ELLEfficiency + nnz*xc +
			float64(p.Rows)*bytesVal + slices*2*bytesIdx
		tMem := traffic / bw * 1.02 // slice indirection
		chainLen := float64(p.MaxRow) - chainHideRowsPerSM*float64(a.SMs)*p.MeanRow
		if chainLen < 0 {
			chainLen = 0
		}
		tChain := 0.25 * chainLen * chainCycles / (a.ClockGHz * 1e9)
		return launchOverhead + math.Max(tMem, tChain), nil

	case sparse.FormatHYB:
		slabBytes := float64(p.HybSlab) * (bytesVal + bytesIdx)
		cooBytes := float64(p.HybCooNNZ) * (bytesVal + 2*bytesIdx)
		if slabBytes+cooBytes+vectors > a.memoryBytes() {
			return 0, ErrInfeasible
		}
		// The split kernel runs at lower occupancy than pure ELL
		// (HYBEfficiency) and its tail pays the COO reduction costs.
		ellTraffic := (slabBytes*a.ELLEfficiency + float64(p.HybEllNNZ)*xc +
			float64(p.Rows)*bytesVal) * a.HYBEfficiency
		cooTraffic := (float64(p.HybCooNNZ)*((bytesVal+2*bytesIdx)+xc+cooReductionBytes) +
			0.25*float64(p.Rows)*bytesVal) * a.COOEfficiency
		tMem := (ellTraffic + cooTraffic) / bw
		tChain := 0.25 * float64(p.HybWidth) * chainCycles / (a.ClockGHz * 1e9)
		return 2*launchOverhead + a.HYBOverhead + math.Max(tMem, tChain), nil

	default:
		return 0, fmt.Errorf("gpusim: no kernel model for format %v", f)
	}
}

// xCostBytes returns the effective bytes charged per x-vector gather.
// When the vector fits the L2 with room for reuse and the matrix has
// good column locality, most gathers hit cache (2 bytes effective);
// scattered access to a large vector pays the full miss (8 bytes).
func (a Arch) xCostBytes(p Profile) float64 {
	vecBytes := float64(p.Cols) * bytesVal
	l2 := float64(a.L2KiB) * 1024
	pressure := vecBytes / l2
	if pressure > 1 {
		pressure = 1
	}
	miss := pressure * (0.15 + 0.85*p.Scatter)
	return 2 + 6*miss
}
