package gpusim

import (
	"math"

	"repro/internal/sparse"
)

// Profile summarises the structural properties of a sparse matrix that
// the kernel time model depends on. Profiles are architecture-invariant
// and computed once per matrix in O(nnz).
type Profile struct {
	// Rows, Cols, NNZ are the basic dimensions.
	Rows, Cols, NNZ int
	// MaxRow and MeanRow describe the row-length distribution.
	MaxRow  int
	MeanRow float64
	// WarpSerialNNZ is the total scalar-CSR work after warp
	// serialisation: the sum over aligned 32-row warps of
	// 32 * (longest row in the warp). WarpSerialNNZ/NNZ >= 1 measures the
	// load imbalance of the one-thread-per-row kernel.
	WarpSerialNNZ float64
	// EllSlab is rows*MaxRow, the ELL structure size in entries.
	EllSlab int
	// HybWidth is the ELL width CUSP's HYB heuristic picks, and
	// HybEllNNZ/HybCooNNZ split the nonzeros between the two parts.
	// HybSlab is rows*HybWidth.
	HybWidth  int
	HybEllNNZ int
	HybCooNNZ int
	HybSlab   int
	// SellSlab is the total padded entry count of the SELL format at
	// the default slice height, used by the five-format extension
	// experiment; always between NNZ and EllSlab.
	SellSlab int
	// Scatter in [0,1] measures column locality: the mean per-row column
	// span divided by the column count. Near-diagonal matrices have
	// Scatter close to 0 and reuse the x vector from cache; uniformly
	// random matrices approach 1.
	Scatter float64
}

const warpSize = 32

// NewProfile computes the profile of a CSR matrix.
func NewProfile(m *sparse.CSR) Profile {
	rows, cols := m.Dims()
	p := Profile{Rows: rows, Cols: cols, NNZ: m.NNZ()}

	rowPtr, colIdx := m.RowPtr(), m.ColIdx()
	spanSum := 0.0
	spanRows := 0
	maxRow := 0
	for i := 0; i < rows; i++ {
		n := int(rowPtr[i+1] - rowPtr[i])
		if n > maxRow {
			maxRow = n
		}
		if n > 0 {
			lo := colIdx[rowPtr[i]]
			hi := colIdx[rowPtr[i+1]-1]
			spanSum += float64(hi-lo) + 1
			spanRows++
		}
	}
	p.MaxRow = maxRow
	p.MeanRow = float64(p.NNZ) / float64(rows)
	if spanRows > 0 && cols > 0 {
		p.Scatter = spanSum / float64(spanRows) / float64(cols)
		if p.Scatter > 1 {
			p.Scatter = 1
		}
	}

	for base := 0; base < rows; base += warpSize {
		w := 0
		lim := base + warpSize
		if lim > rows {
			lim = rows
		}
		for i := base; i < lim; i++ {
			if n := int(rowPtr[i+1] - rowPtr[i]); n > w {
				w = n
			}
		}
		p.WarpSerialNNZ += float64(w * (lim - base))
		// The default SELL slice height equals the warp size, so the
		// per-warp maxima double as per-slice widths.
		p.SellSlab += w * (lim - base)
	}

	p.EllSlab = rows * maxRow

	hist := make([]int, maxRow+1)
	for i := 0; i < rows; i++ {
		hist[int(rowPtr[i+1]-rowPtr[i])]++
	}
	p.HybWidth = sparse.HybWidthFromHistogram(hist, rows)
	for i := 0; i < rows; i++ {
		n := int(rowPtr[i+1] - rowPtr[i])
		if n < p.HybWidth {
			p.HybEllNNZ += n
		} else {
			p.HybEllNNZ += p.HybWidth
		}
	}
	p.HybCooNNZ = p.NNZ - p.HybEllNNZ
	p.HybSlab = rows * p.HybWidth
	return p
}

// Imbalance returns WarpSerialNNZ/NNZ, the CSR warp-serialisation factor
// (>= 1; 1 means perfectly uniform rows).
func (p Profile) Imbalance() float64 {
	if p.NNZ == 0 {
		return 1
	}
	f := p.WarpSerialNNZ / float64(p.NNZ)
	return math.Max(1, f)
}
