// Package obs is the observability layer of the repository: a
// goroutine-safe metrics registry (counters, gauges, fixed-bucket
// histograms with snapshot and merge), hierarchical span tracing that
// captures wall time, heap-allocation deltas and goroutine counts, a
// pluggable span sink (text tree or streaming JSON lines), an
// expvar/pprof debug endpoint, and a machine-readable JSON run-report.
//
// The package is stdlib-only and sits below every other internal
// package, so the sparse kernels, the feature extractor, the clustering
// algorithms and the evaluation harness can all report into one place.
//
// Everything is designed to be no-op-cheap when disabled: until a Sink
// is registered with SetSink, Start returns a nil span, Now returns the
// zero time, and all recording helpers return after a single atomic
// load (see BenchmarkObsOverhead).
package obs

import (
	"context"
	"runtime"
	rtmetrics "runtime/metrics"
	"sync"
	"sync/atomic"
	"time"
)

// sink holds the registered Sink. A nil pointer means observability is
// disabled; the extra box keeps the atomic.Pointer type concrete while
// the Sink itself is an interface. enabled32 mirrors "sinkPtr != nil" as
// a raw word because atomic.LoadUint32 is cheap enough for the compiler
// to inline the gate into every instrumented call site (the shape of
// Start and Enabled is tuned against the inliner's cost budget — see
// BenchmarkObsOverhead before changing them).
var (
	sinkPtr   atomic.Pointer[sinkBox]
	enabled32 uint32
)

type sinkBox struct{ s Sink }

// Enabled reports whether a sink is registered. Hot paths check this
// (one atomic load) before doing any real work.
func Enabled() bool { return atomic.LoadUint32(&enabled32) != 0 }

// SetSink registers the span sink and enables instrumentation; a nil
// sink disables it again. Metric recording, span tracing and timer
// histograms are all gated on a sink being present.
func SetSink(s Sink) {
	if s == nil {
		atomic.StoreUint32(&enabled32, 0)
		sinkPtr.Store(nil)
		return
	}
	sinkPtr.Store(&sinkBox{s: s})
	atomic.StoreUint32(&enabled32, 1)
}

// currentSink returns the registered sink or nil.
func currentSink() Sink {
	if b := sinkPtr.Load(); b != nil {
		return b.s
	}
	return nil
}

// Now returns the current wall clock when observability is enabled and
// the zero time otherwise. Instrumented hot paths pair it with a
// recording helper that treats the zero time as "do nothing", keeping
// the disabled cost to one atomic load:
//
//	start := obs.Now()
//	...kernel...
//	observeKernel(fmt, rows, nnz, start) // no-op when start.IsZero()
func Now() time.Time {
	if atomic.LoadUint32(&enabled32) == 0 {
		return time.Time{}
	}
	return time.Now()
}

// ---------------------------------------------------------------------
// Span tracing.

// SpanData is the immutable record of a completed span, the unit every
// Sink consumes and the node type of the run-report's span trees.
type SpanData struct {
	// Name is the span's own label ("cluster/kmeans").
	Name string `json:"name"`
	// Path is the slash-joined chain of ancestor names ("table/corpus/features").
	Path string `json:"path"`
	// TraceID correlates the span with the request that started it (set
	// when the span's context carried obs.WithTraceID) and with the
	// request's access-log line.
	TraceID string `json:"trace_id,omitempty"`
	// Start is the wall-clock start time.
	Start time.Time `json:"start"`
	// Duration is the span's wall time in nanoseconds.
	Duration time.Duration `json:"duration_ns"`
	// AllocBytes and AllocObjects are process-wide heap-allocation
	// deltas over the span (runtime/metrics /gc/heap/allocs). They are
	// attribution hints, not exact per-span costs: concurrent work is
	// included.
	AllocBytes   uint64 `json:"alloc_bytes"`
	AllocObjects uint64 `json:"alloc_objects"`
	// Goroutines is the goroutine count when the span ended.
	Goroutines int `json:"goroutines"`
	// Metrics carries values attached with SetMetric (iteration counts,
	// row counts, scores).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Children are the completed child spans, in end order.
	Children []*SpanData `json:"children,omitempty"`
	// Root marks a span with no parent; sinks that collect whole trees
	// keep only roots (children arrive attached).
	Root bool `json:"root,omitempty"`
}

// Span is an in-flight traced region. A nil *Span is valid and inert,
// which is how the disabled path stays free.
type Span struct {
	name   string
	path   string
	trace  string
	start  time.Time
	parent *Span
	// ctx is the derived context carrying this span; startSpan stores it
	// here so the Start wrapper stays single-result and under the inline
	// budget.
	ctx context.Context

	allocB0 uint64
	allocO0 uint64

	mu       sync.Mutex
	metrics  map[string]float64
	children []*SpanData
	ended    bool
}

type spanCtxKey struct{}

// traceCtxKey carries a request-scoped trace ID through context, so
// every span started under an HTTP request (and the request's access
// log line) share one correlation ID.
type traceCtxKey struct{}

// WithTraceID returns a context carrying the trace ID. An empty id
// returns ctx unchanged.
func WithTraceID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, id)
}

// TraceID returns the trace ID carried by ctx, or "".
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceCtxKey{}).(string)
	return id
}

// Start begins a span named name, parented to the span carried by ctx
// (if any), and returns a derived context carrying the new span. When
// observability is disabled it returns ctx unchanged and a nil span; all
// Span methods are nil-safe. The wrapper is small enough to inline, so
// the disabled cost is one atomic load and a branch.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if atomic.LoadUint32(&enabled32) == 0 {
		return ctx, nil
	}
	s := startSpan(ctx, name)
	return s.ctx, s
}

// StartAlways begins a span regardless of whether a sink is registered.
// Request owners (the serve/proxy front doors) use it to build per-request
// trace trees that are offered to a tail-sampling TraceStore even when no
// global sink is active; the finished tree is retrieved with EndData.
// Unlike Start it is never free, so it belongs on request roots, not on
// library hot paths.
func StartAlways(ctx context.Context, name string) (context.Context, *Span) {
	s := startSpan(ctx, name)
	return s.ctx, s
}

// StartChild begins a span when ctx already carries a parent span (a
// request root made with StartAlways) or when a sink is registered;
// otherwise it returns ctx unchanged and a nil span. It is the
// instrumentation point for request-stage code: stages join always-on
// request trees at the cost of one context lookup, while code running
// outside a request keeps the plain Start semantics. Start itself stays
// lookup-free so its disabled path remains a single atomic load.
func StartChild(ctx context.Context, name string) (context.Context, *Span) {
	if atomic.LoadUint32(&enabled32) == 0 {
		if p, _ := ctx.Value(spanCtxKey{}).(*Span); p == nil {
			return ctx, nil
		}
	}
	s := startSpan(ctx, name)
	return s.ctx, s
}

func startSpan(ctx context.Context, name string) *Span {
	parent, _ := ctx.Value(spanCtxKey{}).(*Span)
	s := &Span{name: name, parent: parent, start: time.Now()}
	if parent != nil {
		s.path = parent.path + "/" + name
		s.trace = parent.trace
	} else {
		s.path = name
		s.trace = TraceID(ctx)
	}
	s.allocB0, s.allocO0 = heapAllocs()
	s.ctx = context.WithValue(ctx, spanCtxKey{}, s)
	return s
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// SetMetric attaches a named value to the span (an iteration count, a
// convergence flag, a score). Nil-safe.
func (s *Span) SetMetric(name string, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.metrics == nil {
		s.metrics = make(map[string]float64, 4)
	}
	s.metrics[name] = v
	s.mu.Unlock()
}

// addChild records a completed child span.
func (s *Span) addChild(sd *SpanData) {
	s.mu.Lock()
	s.children = append(s.children, sd)
	s.mu.Unlock()
}

// End completes the span, snapshots its measurements, attaches it to its
// parent and delivers it to the sink. Ending a span twice is a no-op, as
// is ending a nil span (the wrapper inlines, so the disabled path is a
// single nil check).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.end()
}

// EndData completes the span like End and returns the completed record
// (nil for a nil or already-ended span). Request owners use it to hand
// the finished tree to a TraceStore without requiring a global sink.
func (s *Span) EndData() *SpanData {
	if s == nil {
		return nil
	}
	return s.end()
}

func (s *Span) end() *SpanData {
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return nil
	}
	s.ended = true
	metrics := s.metrics
	children := s.children
	s.mu.Unlock()

	b1, o1 := heapAllocs()
	sd := &SpanData{
		Name:         s.name,
		Path:         s.path,
		TraceID:      s.trace,
		Start:        s.start,
		Duration:     time.Since(s.start),
		AllocBytes:   b1 - s.allocB0,
		AllocObjects: o1 - s.allocO0,
		Goroutines:   runtime.NumGoroutine(),
		Metrics:      metrics,
		Children:     children,
		Root:         s.parent == nil,
	}
	if s.parent != nil {
		s.parent.addChild(sd)
	}
	if sk := currentSink(); sk != nil {
		sk.SpanEnded(sd)
	}
	return sd
}

// heapAllocs returns the cumulative heap allocation counters from
// runtime/metrics (cheap; no stop-the-world, unlike ReadMemStats).
func heapAllocs() (bytes, objects uint64) {
	samples := [2]rtmetrics.Sample{
		{Name: "/gc/heap/allocs:bytes"},
		{Name: "/gc/heap/allocs:objects"},
	}
	rtmetrics.Read(samples[:])
	if samples[0].Value.Kind() == rtmetrics.KindUint64 {
		bytes = samples[0].Value.Uint64()
	}
	if samples[1].Value.Kind() == rtmetrics.KindUint64 {
		objects = samples[1].Value.Uint64()
	}
	return bytes, objects
}

// ---------------------------------------------------------------------
// Timers: the single code path for every reported wall-clock duration.

// Timer measures one wall-clock interval. Unlike spans it always
// measures (reported durations must not depend on whether a sink is
// registered); only the histogram recording is gated.
type Timer struct {
	name  string
	start time.Time
}

// StartTimer starts a named timer.
func StartTimer(name string) Timer {
	return Timer{name: name, start: time.Now()}
}

// Stop returns the elapsed duration and, when observability is enabled,
// records it (in seconds) into the histogram "<name>/seconds" of the
// default registry.
func (t Timer) Stop() time.Duration {
	d := time.Since(t.start)
	if Enabled() {
		Default.Histogram(t.name+"/seconds", DurationBuckets).Observe(d.Seconds())
	}
	return d
}
