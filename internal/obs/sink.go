package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Sink consumes completed spans. SpanEnded is called for every span as
// it ends (children end before parents, and arrive attached to their
// parent's Children); implementations must be goroutine-safe.
type Sink interface {
	SpanEnded(sd *SpanData)
}

// Collector accumulates root span trees in memory, the sink behind the
// run-report: register it with SetSink, run the workload, then call
// Roots (or build a RunReport) at the end.
type Collector struct {
	mu    sync.Mutex
	roots []*SpanData
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// SpanEnded keeps root spans (children arrive attached to them).
func (c *Collector) SpanEnded(sd *SpanData) {
	if !sd.Root {
		return
	}
	c.mu.Lock()
	c.roots = append(c.roots, sd)
	c.mu.Unlock()
}

// Roots returns the collected root span trees in end order.
func (c *Collector) Roots() []*SpanData {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*SpanData(nil), c.roots...)
}

// JSONLSink streams every completed span as one JSON line (children
// elided — each child was already streamed on its own line). Suitable
// for tailing a long run or shipping spans to a log pipeline.
type JSONLSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewJSONLSink returns a sink writing JSON lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// SpanEnded writes the span as a single JSON line.
func (j *JSONLSink) SpanEnded(sd *SpanData) {
	flat := *sd
	flat.Children = nil
	line, err := json.Marshal(&flat)
	if err != nil {
		return
	}
	j.mu.Lock()
	_, _ = j.w.Write(append(line, '\n'))
	j.mu.Unlock()
}

// TeeSink fans one span stream out to several sinks.
type TeeSink []Sink

// SpanEnded forwards to every sink.
func (t TeeSink) SpanEnded(sd *SpanData) {
	for _, s := range t {
		s.SpanEnded(sd)
	}
}

// WriteTree renders span trees as an indented text outline with wall
// time, allocation deltas and attached metrics — the human-readable
// view of a run-report.
func WriteTree(w io.Writer, spans []*SpanData) error {
	for _, sd := range spans {
		if err := writeTreeNode(w, sd, 0); err != nil {
			return err
		}
	}
	return nil
}

func writeTreeNode(w io.Writer, sd *SpanData, depth int) error {
	indent := ""
	for i := 0; i < depth; i++ {
		indent += "  "
	}
	line := fmt.Sprintf("%s%-*s %12v  %10s  %d goroutines",
		indent, 32-2*depth, sd.Name, sd.Duration.Round(time.Microsecond),
		byteCount(sd.AllocBytes), sd.Goroutines)
	if len(sd.Metrics) > 0 {
		keys := make([]string, 0, len(sd.Metrics))
		for k := range sd.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			line += fmt.Sprintf("  %s=%.4g", k, sd.Metrics[k])
		}
	}
	if _, err := fmt.Fprintln(w, line); err != nil {
		return err
	}
	for _, ch := range sd.Children {
		if err := writeTreeNode(w, ch, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// byteCount formats a byte count with a binary unit suffix.
func byteCount(b uint64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%d B", b)
	}
	div, exp := uint64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(b)/float64(div), "KMGTPE"[exp])
}
