package obs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestSetMaxWorkers(t *testing.T) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	if got := MaxWorkers(); got != 1 {
		t.Fatalf("MaxWorkers() = %d after SetMaxWorkers(1)", got)
	}
	if got := Workers(100); got != 1 {
		t.Fatalf("Workers(100) = %d under cap 1", got)
	}
	SetMaxWorkers(0)
	if got := MaxWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("MaxWorkers() = %d uncapped, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(0); got != 1 {
		t.Fatalf("Workers(0) = %d, want 1", got)
	}
}

func TestParallelForCoversAllBatched(t *testing.T) {
	// Force real worker goroutines even on a single-core machine so the
	// batched dispatch path is exercised.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	for _, n := range []int{1, 7, 1000} {
		var seen sync32
		seen.init(n)
		ParallelFor(n, func(i int) { seen.inc(i) })
		seen.checkOnce(t, n)
	}
}

func TestParallelForErrCoversAll(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const n = 500
	var seen sync32
	seen.init(n)
	err := ParallelForErr(context.Background(), n, 0, func(ctx context.Context, i int) error {
		seen.inc(i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	seen.checkOnce(t, n)
}

func TestParallelForErrPropagatesLowestCompletedFailure(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	// Every odd job fails; the reported error must be from the lowest
	// failing index that actually ran, which job 1 always does (job
	// dispatch is in index order and cancellation only stops later jobs).
	for _, workers := range []int{1, 4} {
		err := ParallelForErr(context.Background(), 100, workers, func(ctx context.Context, i int) error {
			if i%2 == 1 {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 1 failed" {
			t.Fatalf("workers=%d: err = %v, want job 1's error", workers, err)
		}
	}
}

func TestParallelForErrStopsAfterFailure(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	err := ParallelForErr(context.Background(), 1000, 1, func(ctx context.Context, i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := ran.Load(); got != 4 {
		t.Fatalf("ran %d jobs after failure at job 3, want 4", got)
	}
}

func TestParallelForErrHonoursContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ParallelForErr(ctx, 10, 2, func(ctx context.Context, i int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestParallelForErrRespectsWorkerCap(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	var active, peak atomic.Int64
	err := ParallelForErr(context.Background(), 64, 2, func(ctx context.Context, i int) error {
		a := active.Add(1)
		for {
			p := peak.Load()
			if a <= p || peak.CompareAndSwap(p, a) {
				break
			}
		}
		runtime.Gosched()
		active.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 2 {
		t.Fatalf("peak concurrency %d with workers=2", p)
	}
}

// sync32 is a tiny helper tracking per-index visit counts atomically.
type sync32 struct{ v []int32 }

func (s *sync32) init(n int) { s.v = make([]int32, n) }
func (s *sync32) inc(i int)  { atomic.AddInt32(&s.v[i], 1) }
func (s *sync32) checkOnce(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if c := atomic.LoadInt32(&s.v[i]); c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

// BenchmarkParallelForDispatch measures the per-item dispatch overhead of
// ParallelFor on a trivial body. The batched atomic-counter hand-off
// amortises the shared-counter touch over ~n/(workers*8) items, replacing
// the one unbuffered channel send per item (~100ns each) the helper used
// before; ns/op here is the per-item cost.
func BenchmarkParallelForDispatch(b *testing.B) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const n = 1 << 16
	var sink atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var local int64
		_ = local
		ParallelFor(n, func(j int) {
			// A body cheap enough that dispatch dominates.
			if j == n-1 {
				sink.Add(1)
			}
		})
	}
	b.StopTimer()
	perItem := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(n)
	b.ReportMetric(perItem, "ns/item")
}

// BenchmarkParallelForErrDispatch measures the scheduler primitive's
// per-job cost (one atomic claim and a context check per job).
func BenchmarkParallelForErrDispatch(b *testing.B) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const n = 1 << 12
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ParallelForErr(ctx, n, 0, func(ctx context.Context, j int) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perItem := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(n)
	b.ReportMetric(perItem, "ns/job")
}
