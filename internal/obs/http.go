package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// publishOnce guards the expvar registration: expvar.Publish panics on
// duplicate names, and Serve may be called more than once per process
// (tests, repeated subcommands).
var publishOnce sync.Once

// Serve starts a debug HTTP server on addr (":6060", ":0" for an
// ephemeral port) exposing
//
//	/metrics            Prometheus text exposition of the default registry
//	/debug/vars         expvar, including the default registry under "spmvselect_obs"
//	/debug/pprof/...    net/http/pprof profiles (heap, cpu, trace, ...)
//
// It returns the bound address and a stop function. The server uses its
// own mux, so nothing leaks onto http.DefaultServeMux. The stop
// function is idempotent and safe to call from several goroutines:
// every call returns the close error of the single underlying Close.
func Serve(addr string) (bound string, stop func() error, err error) {
	publishOnce.Do(func() {
		expvar.Publish("spmvselect_obs", expvar.Func(func() any {
			return Default.Snapshot()
		}))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", PromHandler(Default))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		// Serve returns ErrServerClosed on Close; nothing to report.
		_ = srv.Serve(ln)
	}()
	var stopOnce sync.Once
	var stopErr error
	stop = func() error {
		stopOnce.Do(func() { stopErr = srv.Close() })
		return stopErr
	}
	return ln.Addr().String(), stop, nil
}
