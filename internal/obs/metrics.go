package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a goroutine-safe collection of named counters, gauges and
// histograms. Instruments are get-or-create: the first caller of a name
// determines the instrument (and, for histograms, its buckets).
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	cvecs    map[string]*CounterVec
	gvecs    map[string]*GaugeVec
	hvecs    map[string]*HistogramVec
}

// Default is the process-wide registry used by all instrumentation in
// this repository and published on the expvar endpoint.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		cvecs:    map[string]*CounterVec{},
		gvecs:    map[string]*GaugeVec{},
		hvecs:    map[string]*HistogramVec{},
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds if needed (bounds must be sorted ascending; they
// are ignored when the histogram already exists).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Reset drops every instrument and vector. Intended for tests.
func (r *Registry) Reset() {
	r.mu.Lock()
	r.counters = map[string]*Counter{}
	r.gauges = map[string]*Gauge{}
	r.hists = map[string]*Histogram{}
	r.cvecs = map[string]*CounterVec{}
	r.gvecs = map[string]*GaugeVec{}
	r.hvecs = map[string]*HistogramVec{}
	r.mu.Unlock()
}

// Snapshot returns a consistent-enough copy of every instrument's state
// (each instrument is read atomically; the set is read under the
// registry lock). The result is JSON-serialisable.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.hists {
		s.Histograms[n] = h.Snapshot()
	}
	return s
}

// ---------------------------------------------------------------------
// Instruments.

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic float64 value that can be set or adjusted.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d (CAS loop; safe under concurrency).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: bucket i counts observations v
// with bounds[i-1] < v <= bounds[i], plus one overflow bucket. All
// updates are atomic; Observe never allocates.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1, last is overflow
	count   atomic.Int64
	sumBits atomic.Uint64
	minBits atomic.Uint64
	maxBits atomic.Uint64
	// exemplars holds the last exemplar stored per bucket (nil until
	// ObserveExemplar is used, so plain Observe stays allocation-free).
	exemplars []atomic.Pointer[exemplar]
}

// exemplar links one observed value to the trace that produced it.
type exemplar struct {
	traceID string
	value   float64
}

func newHistogram(bounds []float64) *Histogram {
	h := &Histogram{
		bounds:    append([]float64(nil), bounds...),
		counts:    make([]atomic.Int64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[exemplar], len(bounds)+1),
	}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if v >= math.Float64frombits(old) || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveExemplar records one value like Observe and remembers traceID
// as the bucket's last exemplar, linking the latency distribution back
// to a concrete request whose trace can be fetched from the trace
// store. An empty traceID degrades to a plain Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.exemplars[i].Store(&exemplar{traceID: traceID, value: v})
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Snapshot copies the histogram state. Min and Max are zero when the
// histogram is empty (keeping the snapshot JSON-serialisable: the
// encoding/json package rejects infinities).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	if s.Count > 0 {
		s.Min = math.Float64frombits(h.minBits.Load())
		s.Max = math.Float64frombits(h.maxBits.Load())
	}
	for i := range h.exemplars {
		if e := h.exemplars[i].Load(); e != nil {
			s.Exemplars = append(s.Exemplars, BucketExemplar{
				Bucket:  i,
				TraceID: e.traceID,
				Value:   e.value,
			})
		}
	}
	return s
}

// ---------------------------------------------------------------------
// Snapshots.

// HistogramSnapshot is the frozen state of one histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has one extra overflow
	// bucket at the end.
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	// DroppedMerges counts merges whose bucket counts had to be
	// discarded because the bucket bounds disagreed (Count/Sum/Min/Max
	// still merged). Non-zero means the bucket distribution undercounts.
	DroppedMerges int64 `json:"dropped_merges,omitempty"`
	// Exemplars lists the last trace ID seen per populated bucket
	// (only buckets that recorded one), sorted by bucket index.
	Exemplars []BucketExemplar `json:"exemplars,omitempty"`
}

// BucketExemplar is one histogram bucket's last exemplar: the trace ID
// and value of the most recent observation that landed in the bucket.
// Bucket indexes into Counts (len(Bounds) is the overflow bucket).
type BucketExemplar struct {
	Bucket  int     `json:"bucket"`
	TraceID string  `json:"trace_id"`
	Value   float64 `json:"value"`
}

// Mean returns the average observation, or 0 when empty.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (q in [0, 1]) from the buckets,
// attributing each bucket's mass to its upper bound. It returns Max for
// the overflow bucket and 0 when the histogram is empty. Out-of-range
// q is clamped into [0, 1]; a NaN q returns NaN rather than a
// plausible-looking latency.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if math.IsNaN(q) {
		return math.NaN()
	}
	if h.Count == 0 {
		return 0
	}
	q = math.Min(math.Max(q, 0), 1)
	target := int64(math.Ceil(q * float64(h.Count)))
	if target < 1 {
		target = 1
	}
	acc := int64(0)
	for i, c := range h.Counts {
		acc += c
		if acc >= target {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			return h.Max
		}
	}
	return h.Max
}

// merge adds another snapshot of the same histogram. Bucket counts are
// only combined when the bounds match; on a mismatch the receiver's
// buckets win, only Count/Sum/Min/Max are merged, and the drop is
// recorded in DroppedMerges — quantiles computed from such a merge
// undercount, and the field makes that visible instead of silent.
func (h HistogramSnapshot) merge(o HistogramSnapshot) HistogramSnapshot {
	out := h
	out.Counts = append([]int64(nil), h.Counts...)
	same := len(h.Bounds) == len(o.Bounds) && len(h.Counts) == len(o.Counts)
	if same {
		for i := range h.Bounds {
			if h.Bounds[i] != o.Bounds[i] {
				same = false
				break
			}
		}
	}
	if same {
		for i := range out.Counts {
			out.Counts[i] += o.Counts[i]
		}
	}
	out.DroppedMerges = h.DroppedMerges + o.DroppedMerges
	if !same {
		out.DroppedMerges++
	}
	switch {
	case h.Count == 0:
		out.Min, out.Max = o.Min, o.Max
	case o.Count > 0:
		out.Min = math.Min(h.Min, o.Min)
		out.Max = math.Max(h.Max, o.Max)
	}
	out.Count += o.Count
	out.Sum += o.Sum
	if same && len(o.Exemplars) > 0 {
		have := make(map[int]bool, len(h.Exemplars))
		for _, e := range h.Exemplars {
			have[e.Bucket] = true
		}
		out.Exemplars = append([]BucketExemplar(nil), h.Exemplars...)
		for _, e := range o.Exemplars {
			if !have[e.Bucket] {
				out.Exemplars = append(out.Exemplars, e)
			}
		}
		sort.Slice(out.Exemplars, func(i, j int) bool {
			return out.Exemplars[i].Bucket < out.Exemplars[j].Bucket
		})
	}
	return out
}

// Snapshot is a frozen registry: counters, gauges and histograms by
// name. It serialises to JSON and merges with other snapshots, the
// building block for aggregating per-shard or per-run metrics.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Merge returns the combination of two snapshots: counters and
// histogram counts add, gauges keep the other snapshot's value when it
// has one (last writer wins, matching gauge semantics).
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)+len(o.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)+len(o.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)+len(o.Histograms)),
	}
	for n, v := range s.Counters {
		out.Counters[n] = v
	}
	for n, v := range o.Counters {
		out.Counters[n] += v
	}
	for n, v := range s.Gauges {
		out.Gauges[n] = v
	}
	for n, v := range o.Gauges {
		out.Gauges[n] = v
	}
	for n, h := range s.Histograms {
		if oh, ok := o.Histograms[n]; ok {
			out.Histograms[n] = h.merge(oh)
		} else {
			out.Histograms[n] = h
		}
	}
	for n, h := range o.Histograms {
		if _, ok := s.Histograms[n]; !ok {
			out.Histograms[n] = h
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Bucket helpers.

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start and multiplying by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets spans 1 microsecond to ~17 minutes in powers of two,
// the default for latency histograms recorded in seconds.
var DurationBuckets = ExpBuckets(1e-6, 2, 30)

// RateBuckets spans 1 to ~5*10^11 per second in powers of two, the
// default for throughput histograms (rows/s, nnz/s).
var RateBuckets = ExpBuckets(1, 2, 40)

// CountBuckets spans 1 to ~32k in powers of two, the default for small
// cardinalities such as iteration counts or cluster counts.
var CountBuckets = ExpBuckets(1, 2, 16)

// SizeBuckets spans 64 bytes to ~64 GiB in powers of four, the default
// for byte-size histograms.
var SizeBuckets = ExpBuckets(64, 4, 16)
