//go:build race

package obs

// RaceEnabled reports whether the binary was built with -race. Tests
// use it to skip allocation-count assertions, which the race runtime
// inflates with its own bookkeeping allocations.
const RaceEnabled = true
