package obs

import (
	"context"
	"math"
	"sync"
	"testing"
)

func TestTraceIDFlowsThroughSpanTree(t *testing.T) {
	c := withSink(t)
	ctx := WithTraceID(context.Background(), "req-abc123")
	ctx, root := Start(ctx, "serve/predict")
	_, child := Start(ctx, "features/extract")
	child.End()
	root.End()

	roots := c.Roots()
	if len(roots) != 1 {
		t.Fatalf("got %d roots", len(roots))
	}
	if roots[0].TraceID != "req-abc123" {
		t.Errorf("root trace id = %q", roots[0].TraceID)
	}
	if len(roots[0].Children) != 1 || roots[0].Children[0].TraceID != "req-abc123" {
		t.Errorf("child did not inherit trace id: %+v", roots[0].Children)
	}
}

func TestTraceIDHelpers(t *testing.T) {
	ctx := context.Background()
	if TraceID(ctx) != "" {
		t.Error("empty context has a trace id")
	}
	if WithTraceID(ctx, "") != ctx {
		t.Error("empty id should leave ctx unchanged")
	}
	if got := TraceID(WithTraceID(ctx, "x")); got != "x" {
		t.Errorf("TraceID = %q", got)
	}
}

func TestSpanWithoutTraceIDStaysClean(t *testing.T) {
	c := withSink(t)
	_, sp := Start(context.Background(), "bare")
	sp.End()
	if id := c.Roots()[0].TraceID; id != "" {
		t.Errorf("unexpected trace id %q", id)
	}
}

// TestServeStopIdempotent: the stop func returned by Serve must be safe
// to call repeatedly and from several goroutines at once.
func TestServeStopIdempotent(t *testing.T) {
	_, stop, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = stop()
		}()
	}
	wg.Wait()
	for i, e := range errs {
		if e != errs[0] {
			t.Errorf("stop call %d returned %v, first returned %v", i, e, errs[0])
		}
	}
	if err := stop(); err != errs[0] {
		t.Errorf("late stop returned %v, want %v", err, errs[0])
	}
}

// TestHistogramMergeMismatchedBounds: a merge across disagreeing bucket
// layouts must keep the totals and surface the drop, not silently
// undercount.
func TestHistogramMergeMismatchedBounds(t *testing.T) {
	a := HistogramSnapshot{Bounds: []float64{1, 10}, Counts: []int64{3, 2, 1}, Count: 6, Sum: 30, Min: 0.5, Max: 40}
	b := HistogramSnapshot{Bounds: []float64{1, 100}, Counts: []int64{1, 1, 1}, Count: 3, Sum: 150, Min: 0.1, Max: 120}
	out := a.merge(b)
	if out.DroppedMerges != 1 {
		t.Errorf("DroppedMerges = %d, want 1", out.DroppedMerges)
	}
	// The receiver's buckets survive untouched; totals still combine.
	for i, want := range []int64{3, 2, 1} {
		if out.Counts[i] != want {
			t.Errorf("counts[%d] = %d, want %d", i, out.Counts[i], want)
		}
	}
	if out.Count != 9 || out.Sum != 180 || out.Min != 0.1 || out.Max != 120 {
		t.Errorf("totals not merged: %+v", out)
	}
	// Drops accumulate across chained merges.
	if out2 := out.merge(b); out2.DroppedMerges != 2 {
		t.Errorf("chained DroppedMerges = %d, want 2", out2.DroppedMerges)
	}
	// Matching bounds merge cleanly and record nothing.
	if clean := a.merge(a); clean.DroppedMerges != 0 || clean.Counts[0] != 6 {
		t.Errorf("clean merge: %+v", clean)
	}
}

func TestSnapshotMergeSurfacesDrops(t *testing.T) {
	s1 := Snapshot{Histograms: map[string]HistogramSnapshot{
		"h": {Bounds: []float64{1}, Counts: []int64{1, 0}, Count: 1, Sum: 1, Min: 1, Max: 1},
	}}
	s2 := Snapshot{Histograms: map[string]HistogramSnapshot{
		"h": {Bounds: []float64{2}, Counts: []int64{1, 0}, Count: 1, Sum: 2, Min: 2, Max: 2},
	}}
	m := s1.Merge(s2)
	if m.Histograms["h"].DroppedMerges != 1 {
		t.Errorf("snapshot merge lost the drop record: %+v", m.Histograms["h"])
	}
	if m.Histograms["h"].Count != 2 {
		t.Errorf("count = %d", m.Histograms["h"].Count)
	}
}

func TestQuantileGuards(t *testing.T) {
	h := HistogramSnapshot{Bounds: []float64{1, 10}, Counts: []int64{5, 4, 1}, Count: 10, Min: 0.5, Max: 50}
	if got := h.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Errorf("Quantile(NaN) = %v, want NaN", got)
	}
	// Out-of-range q clamps instead of under/overflowing the target rank.
	if got := h.Quantile(-3); got != 1 {
		t.Errorf("Quantile(-3) = %v, want 1 (clamped to q=0)", got)
	}
	if got := h.Quantile(7); got != 50 {
		t.Errorf("Quantile(7) = %v, want Max (clamped to q=1)", got)
	}
	empty := HistogramSnapshot{}
	if got := empty.Quantile(math.NaN()); !math.IsNaN(got) {
		t.Errorf("empty Quantile(NaN) = %v, want NaN", got)
	}
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
}
