package obs

import (
	"sync"
	"time"
)

// Rolling-window SLO tracking. Cumulative counters and histograms
// answer "what happened since the process started"; an operator paging
// on an SLO needs "what happened in the last minute/five minutes/hour".
// SLOWindows keeps a fixed-size ring of per-slot histogram deltas
// (default: 10-second slots covering one hour) and derives, for each
// reporting window, the latency quantiles, the availability and the
// error-budget burn rate — how many times faster than sustainable the
// budget is being spent (1.0 = exactly on target, >1 = burning).

// Default SLO geometry: 10s slots, one hour of history (+1 slot so the
// newest partial slot never evicts a slot still inside the window).
const (
	defaultSLOSlot  = 10 * time.Second
	defaultSLOSlots = 361
)

// sloWindowSpecs are the reported trailing windows.
var sloWindowSpecs = []struct {
	name string
	d    time.Duration
}{
	{"1m", time.Minute},
	{"5m", 5 * time.Minute},
	{"1h", time.Hour},
}

// SLOConfig tunes an SLOWindows tracker. The zero value selects
// defaults.
type SLOConfig struct {
	// Objective is the availability target (fraction of requests that
	// must succeed). Default 0.999.
	Objective float64
	// SlotDuration and Slots fix the ring geometry; the covered history
	// is SlotDuration*(Slots-1). Defaults: 10s and 361 (one hour).
	SlotDuration time.Duration
	Slots        int
	// Bounds are the latency bucket upper bounds (seconds). Default
	// DurationBuckets.
	Bounds []float64
	// Now overrides the clock, for tests. Default time.Now.
	Now func() time.Time
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Objective <= 0 || c.Objective >= 1 {
		c.Objective = 0.999
	}
	if c.SlotDuration <= 0 {
		c.SlotDuration = defaultSLOSlot
	}
	if c.Slots <= 1 {
		c.Slots = defaultSLOSlots
	}
	if c.Bounds == nil {
		c.Bounds = DurationBuckets
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// sloSlot is one time slot's worth of observations.
type sloSlot struct {
	counts []int64 // len(bounds)+1, last is overflow
	total  int64
	errors int64
	sum    float64
}

// SLOWindows is a goroutine-safe rolling-window latency/availability
// tracker. Observe is cheap (one mutex, a bucket search and a handful
// of adds); reports walk at most Slots slots.
type SLOWindows struct {
	cfg SLOConfig

	mu       sync.Mutex
	ring     []sloSlot
	head     int       // index of the slot covering headTime
	headTime time.Time // start of the head slot (truncated to SlotDuration)
}

// NewSLOWindows returns a tracker with the given configuration.
func NewSLOWindows(cfg SLOConfig) *SLOWindows {
	cfg = cfg.withDefaults()
	s := &SLOWindows{cfg: cfg, ring: make([]sloSlot, cfg.Slots)}
	for i := range s.ring {
		s.ring[i].counts = make([]int64, len(cfg.Bounds)+1)
	}
	s.headTime = cfg.Now().Truncate(cfg.SlotDuration)
	return s
}

// advanceLocked rotates the ring forward until the head slot covers
// now, clearing every slot it passes. A gap longer than the whole ring
// clears everything in one pass instead of spinning per slot.
func (s *SLOWindows) advanceLocked(now time.Time) {
	gap := now.Sub(s.headTime)
	if gap < s.cfg.SlotDuration {
		return
	}
	steps := int(gap / s.cfg.SlotDuration)
	if steps >= len(s.ring) {
		for i := range s.ring {
			s.clearSlot(i)
		}
		s.headTime = now.Truncate(s.cfg.SlotDuration)
		return
	}
	for i := 0; i < steps; i++ {
		s.head = (s.head + 1) % len(s.ring)
		s.clearSlot(s.head)
		s.headTime = s.headTime.Add(s.cfg.SlotDuration)
	}
}

func (s *SLOWindows) clearSlot(i int) {
	sl := &s.ring[i]
	for j := range sl.counts {
		sl.counts[j] = 0
	}
	sl.total, sl.errors, sl.sum = 0, 0, 0
}

// Observe records one request: its latency in seconds and whether it
// counts against availability (5xx answers, sheds).
func (s *SLOWindows) Observe(latencySeconds float64, isError bool) {
	s.mu.Lock()
	s.advanceLocked(s.cfg.Now())
	sl := &s.ring[s.head]
	i := searchBounds(s.cfg.Bounds, latencySeconds)
	sl.counts[i]++
	sl.total++
	sl.sum += latencySeconds
	if isError {
		sl.errors++
	}
	s.mu.Unlock()
}

// searchBounds is sort.SearchFloat64s inlined for the hot path: the
// first i with v <= bounds[i], or len(bounds) for overflow.
func searchBounds(bounds []float64, v float64) int {
	lo, hi := 0, len(bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// SLOWindowReport is the derived state of one trailing window.
type SLOWindowReport struct {
	Window  string  `json:"window"`
	Seconds float64 `json:"seconds"`
	// Requests and Errors are totals inside the window.
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// Availability is 1 - Errors/Requests (1 when the window is empty:
	// no traffic has not violated the objective).
	Availability float64 `json:"availability"`
	// P50/P95/P99 are latency quantiles in seconds, estimated from the
	// window's bucket counts.
	P50 float64 `json:"p50_seconds"`
	P95 float64 `json:"p95_seconds"`
	P99 float64 `json:"p99_seconds"`
	// MeanSeconds is the window's average latency.
	MeanSeconds float64 `json:"mean_seconds"`
	// BurnRate is the error-budget burn: (error rate) / (1 - objective).
	// 1.0 spends the budget exactly on schedule; 10 exhausts a 30-day
	// budget in 3 days.
	BurnRate float64 `json:"burn_rate"`
}

// SLOReport is the full /v1/admin/slo answer.
type SLOReport struct {
	Objective float64           `json:"objective"`
	Windows   []SLOWindowReport `json:"windows"`
}

// Report derives every configured trailing window from the ring.
func (s *SLOWindows) Report() SLOReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceLocked(s.cfg.Now())

	rep := SLOReport{Objective: s.cfg.Objective}
	for _, spec := range sloWindowSpecs {
		slots := int(spec.d / s.cfg.SlotDuration)
		if slots > len(s.ring)-1 {
			slots = len(s.ring) - 1
		}
		agg := HistogramSnapshot{
			Bounds: s.cfg.Bounds,
			Counts: make([]int64, len(s.cfg.Bounds)+1),
		}
		var errors int64
		// The head slot is still filling; include it plus the previous
		// slots-1 full slots, approximating the trailing window.
		for k := 0; k < slots; k++ {
			sl := &s.ring[(s.head-k+len(s.ring))%len(s.ring)]
			for j, c := range sl.counts {
				agg.Counts[j] += c
			}
			agg.Count += sl.total
			agg.Sum += sl.sum
			errors += sl.errors
		}
		// Quantile attributes overflow mass to Max, which a slot ring
		// does not track; the largest finite bound stands in for it.
		if n := len(agg.Bounds); n > 0 {
			agg.Max = agg.Bounds[n-1]
		}
		wr := SLOWindowReport{
			Window:       spec.name,
			Seconds:      spec.d.Seconds(),
			Requests:     agg.Count,
			Errors:       errors,
			Availability: 1,
			P50:          agg.Quantile(0.50),
			P95:          agg.Quantile(0.95),
			P99:          agg.Quantile(0.99),
			MeanSeconds:  agg.Mean(),
		}
		if agg.Count > 0 {
			errRate := float64(errors) / float64(agg.Count)
			wr.Availability = 1 - errRate
			wr.BurnRate = errRate / (1 - s.cfg.Objective)
		}
		rep.Windows = append(rep.Windows, wr)
	}
	return rep
}

// Export writes the current window state into r as gauges, labeled by
// window (and quantile for the latency series):
//
//	slo/latency/seconds{window,quantile}  gauge
//	slo/availability{window}              gauge
//	slo/burn_rate{window}                 gauge
//	slo/requests{window}                  gauge
//	slo/errors{window}                    gauge
//
// Call it from a /metrics refresh hook so scrapes always see current
// windows without a background ticker.
func (s *SLOWindows) Export(r *Registry) {
	lat := r.GaugeVec("slo/latency/seconds", "window", "quantile")
	avail := r.GaugeVec("slo/availability", "window")
	burn := r.GaugeVec("slo/burn_rate", "window")
	reqs := r.GaugeVec("slo/requests", "window")
	errs := r.GaugeVec("slo/errors", "window")
	for _, w := range s.Report().Windows {
		lat.With(w.Window, "p50").Set(w.P50)
		lat.With(w.Window, "p95").Set(w.P95)
		lat.With(w.Window, "p99").Set(w.P99)
		avail.With(w.Window).Set(w.Availability)
		burn.With(w.Window).Set(w.BurnRate)
		reqs.With(w.Window).Set(float64(w.Requests))
		errs.With(w.Window).Set(float64(w.Errors))
	}
}
