package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format exposition (version 0.0.4) of a registry
// snapshot. Counters render as `<name>_total`, histograms as cumulative
// `_bucket{le="..."}` series plus `_sum` and `_count`, and labeled
// series (vectors) carry their label sets. Every metric name is
// prefixed with "spmvselect_" and sanitised (the registry's '/'
// separators become '_'), families and series are emitted in sorted
// order, so the output is deterministic and golden-testable.

// PromPrefix is prepended to every exposed metric name, namespacing the
// process on shared scrape targets.
const PromPrefix = "spmvselect_"

// promContentType is the Prometheus text exposition content type.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitises a registry metric name into a valid Prometheus
// metric name: every byte outside [a-zA-Z0-9_:] becomes '_'.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(PromPrefix) + len(name))
	b.WriteString(PromPrefix)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat formats a float64 for the text format, using the spellings
// Prometheus parsers expect for the non-finite values.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promSeries is one series of a family: its raw label text (already in
// `k="v"` form, empty for unlabeled) plus the writer that renders its
// sample lines.
type promSeries struct {
	labels string
	write  func(w io.Writer, fam, labels string)
}

// promFamily groups the series sharing one exposed family name.
type promFamily struct {
	typ    string // "counter", "gauge", "histogram"
	series []promSeries
}

// WritePrometheus renders a registry snapshot in the Prometheus text
// exposition format.
func WritePrometheus(w io.Writer, s Snapshot) error {
	fams := map[string]*promFamily{}
	add := func(key, typ string, wr func(io.Writer, string, string)) {
		name, labels := SplitSeries(key)
		fam := promName(name)
		if typ == "counter" {
			fam += "_total"
		}
		f := fams[fam]
		if f == nil {
			f = &promFamily{typ: typ}
			fams[fam] = f
		}
		f.series = append(f.series, promSeries{labels: labels, write: wr})
	}

	for key, v := range s.Counters {
		v := v
		add(key, "counter", func(w io.Writer, fam, labels string) {
			fmt.Fprintf(w, "%s%s %d\n", fam, wrapLabels(labels), v)
		})
	}
	for key, v := range s.Gauges {
		v := v
		add(key, "gauge", func(w io.Writer, fam, labels string) {
			fmt.Fprintf(w, "%s%s %s\n", fam, wrapLabels(labels), promFloat(v))
		})
	}
	for key, h := range s.Histograms {
		h := h
		// Exemplars expose as a sibling gauge family <fam>_exemplar with
		// le + trace_id labels: the value is the exemplar observation and
		// the trace_id points at a fetchable trace. The family only
		// exists when a histogram recorded exemplars, so expositions
		// without them are byte-identical to before.
		for _, e := range h.Exemplars {
			e := e
			le := "+Inf"
			if e.Bucket < len(h.Bounds) {
				le = promFloat(h.Bounds[e.Bucket])
			}
			name, labels := SplitSeries(key)
			exLabels := joinLabels(labels,
				`le="`+le+`",trace_id="`+labelEscaper.Replace(e.TraceID)+`"`)
			add(name+"_exemplar"+wrapLabels(exLabels), "gauge",
				func(w io.Writer, fam, labels string) {
					fmt.Fprintf(w, "%s%s %s\n", fam, wrapLabels(labels), promFloat(e.Value))
				})
		}
		add(key, "histogram", func(w io.Writer, fam, labels string) {
			cum := int64(0)
			for i, bound := range h.Bounds {
				if i < len(h.Counts) {
					cum += h.Counts[i]
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", fam,
					wrapLabels(joinLabels(labels, `le="`+promFloat(bound)+`"`)), cum)
			}
			fmt.Fprintf(w, "%s_bucket%s %d\n", fam,
				wrapLabels(joinLabels(labels, `le="+Inf"`)), h.Count)
			fmt.Fprintf(w, "%s_sum%s %s\n", fam, wrapLabels(labels), promFloat(h.Sum))
			fmt.Fprintf(w, "%s_count%s %d\n", fam, wrapLabels(labels), h.Count)
		})
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	bw := bufio.NewWriter(w)
	for _, n := range names {
		f := fams[n]
		fmt.Fprintf(bw, "# TYPE %s %s\n", n, f.typ)
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		for _, sr := range f.series {
			sr.write(bw, n, sr.labels)
		}
	}
	return bw.Flush()
}

// wrapLabels renders non-empty label text as `{...}`.
func wrapLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// joinLabels appends one more `k="v"` pair to possibly-empty label text.
func joinLabels(labels, pair string) string {
	if labels == "" {
		return pair
	}
	return labels + "," + pair
}

// PromHandler serves the registry in the Prometheus text format — the
// /metrics endpoint. refresh functions (optional) run before every
// scrape, the hook by which derived gauges (SLO windows, drift scores)
// are brought up to date lazily instead of on a timer.
func PromHandler(r *Registry, refresh ...func()) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		for _, fn := range refresh {
			fn()
		}
		w.Header().Set("Content-Type", promContentType)
		_ = WritePrometheus(w, r.Snapshot())
	})
}

// ---------------------------------------------------------------------
// Parsing. A deliberately small parser for the subset WritePrometheus
// emits — enough for the monitor subcommand and for round-trip tests to
// prove every emitted line is well-formed. It rejects malformed lines
// instead of skipping them.

// PromSample is one parsed sample line.
type PromSample struct {
	// Name is the full sample name as exposed (including _total /
	// _bucket / _sum / _count suffixes).
	Name   string
	Labels map[string]string
	Value  float64
}

// PromMetrics is a parsed exposition: samples in input order plus the
// declared family types.
type PromMetrics struct {
	Samples []PromSample
	// Types maps family name -> "counter" | "gauge" | "histogram".
	Types map[string]string
}

// Value returns the value of the first sample matching name and the
// given label pairs (k, v, k, v, ...); ok is false when none matches.
// Samples may carry more labels than asked for.
func (m *PromMetrics) Value(name string, kv ...string) (float64, bool) {
	for _, s := range m.Samples {
		if s.Name != name {
			continue
		}
		match := true
		for i := 0; i+1 < len(kv); i += 2 {
			if s.Labels[kv[i]] != kv[i+1] {
				match = false
				break
			}
		}
		if match {
			return s.Value, true
		}
	}
	return 0, false
}

// Sum adds every sample of name that matches the given label pairs.
func (m *PromMetrics) Sum(name string, kv ...string) float64 {
	total := 0.0
	for _, s := range m.Samples {
		if s.Name != name {
			continue
		}
		match := true
		for i := 0; i+1 < len(kv); i += 2 {
			if s.Labels[kv[i]] != kv[i+1] {
				match = false
				break
			}
		}
		if match {
			total += s.Value
		}
	}
	return total
}

// ParsePrometheus parses a text-format exposition, returning an error
// on the first malformed line.
func ParsePrometheus(r io.Reader) (*PromMetrics, error) {
	out := &PromMetrics{Types: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				out.Types[fields[2]] = fields[3]
			}
			continue
		}
		sample, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: metrics line %d: %w", lineNo, err)
		}
		out.Samples = append(out.Samples, sample)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading metrics: %w", err)
	}
	return out, nil
}

// parsePromSample parses `name{k="v",...} value` or `name value`.
func parsePromSample(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i <= 0 {
		return s, fmt.Errorf("no metric name in %q", line)
	}
	s.Name = line[:i]
	if !validPromName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		labels, tail, err := parsePromLabels(rest[1:])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = tail
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return s, fmt.Errorf("no value in %q", line)
	}
	// The text format allows an optional timestamp after the value; this
	// exposition never emits one, so a second field is an error here.
	if strings.ContainsAny(rest, " \t") {
		return s, fmt.Errorf("unexpected trailing fields in %q", line)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", rest, err)
	}
	s.Value = v
	return s, nil
}

// parsePromLabels parses `k="v",...}` (the text after the opening
// brace), returning the labels and the remaining tail after '}'.
func parsePromLabels(text string) (map[string]string, string, error) {
	labels := map[string]string{}
	for {
		text = strings.TrimLeft(text, " ,")
		if text == "" {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		if text[0] == '}' {
			return labels, text[1:], nil
		}
		eq := strings.IndexByte(text, '=')
		if eq <= 0 {
			return nil, "", fmt.Errorf("malformed label in %q", text)
		}
		key := strings.TrimSpace(text[:eq])
		if !validPromName(key) {
			return nil, "", fmt.Errorf("invalid label name %q", key)
		}
		text = text[eq+1:]
		if text == "" || text[0] != '"' {
			return nil, "", fmt.Errorf("unquoted label value for %q", key)
		}
		var val strings.Builder
		j := 1
		for ; j < len(text); j++ {
			c := text[j]
			if c == '\\' && j+1 < len(text) {
				j++
				switch text[j] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(text[j])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if j >= len(text) {
			return nil, "", fmt.Errorf("unterminated label value for %q", key)
		}
		labels[key] = val.String()
		text = text[j+1:]
	}
}

// validPromName reports whether s is a valid Prometheus metric or label
// name ([a-zA-Z_:][a-zA-Z0-9_:]*; labels don't use ':' but accepting it
// here is harmless).
func validPromName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
