package obs

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// The shared bounded-parallel helpers. Before this package existed the
// repository carried four near-identical worker pools (meanshift.go,
// collection.go, and the inline pools in csr.go and kmeans.go); they all
// route through here now, which also gives the metrics registry a live
// view of parallel activity:
//
//	parallel/regions  counter  parallel sections entered
//	parallel/workers  gauge    currently active workers across sections
var (
	parallelRegions = Default.Counter("parallel/regions")
	parallelWorkers = Default.Gauge("parallel/workers")
)

// maxWorkers caps the worker count of every helper in this file; 0 means
// "no cap beyond GOMAXPROCS". cmd/spmvselect's -workers flag sets it so
// that -workers 1 yields a genuinely sequential run all the way down the
// stack (scheduler cells, K-Means assignment, feature extraction, forest
// training), which is the baseline the parallel speedup is measured
// against.
var maxWorkers atomic.Int32

// SetMaxWorkers caps the parallelism of every obs helper at n workers;
// n <= 0 removes the cap (GOMAXPROCS applies). It returns the previous
// cap so callers can restore it.
func SetMaxWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(maxWorkers.Swap(int32(n)))
}

// MaxWorkers returns the current global worker budget: the SetMaxWorkers
// cap when one is set, GOMAXPROCS otherwise.
func MaxWorkers() int {
	if c := int(maxWorkers.Load()); c > 0 {
		return c
	}
	return runtime.GOMAXPROCS(0)
}

// Workers returns the worker count a parallel helper would use for n
// items: min(MaxWorkers, n), at least 1.
func Workers(n int) int {
	w := MaxWorkers()
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// enterRegion records a region start and returns the matching leave
// function (both no-ops when disabled).
func enterRegion(workers int) func() {
	if !Enabled() {
		return nil
	}
	parallelRegions.Inc()
	parallelWorkers.Add(float64(workers))
	return func() { parallelWorkers.Add(-float64(workers)) }
}

// dispatchBatch sizes the index batches handed to workers: small enough
// that uneven items still balance (each worker gets ~batchesPerWorker
// grabs), large enough that the shared atomic counter is touched rarely.
const batchesPerWorker = 8

func dispatchBatch(n, workers int) int {
	b := n / (workers * batchesPerWorker)
	if b < 1 {
		b = 1
	}
	return b
}

// ParallelFor runs fn(i) for every i in [0, n), distributing iterations
// dynamically over Workers(n) goroutines. Work is handed out as index
// batches claimed from a shared atomic counter, so the per-item dispatch
// cost is a fraction of an atomic add (see BenchmarkParallelForDispatch)
// rather than the ~100ns channel hand-off this helper used before; items
// doing even sub-microsecond work parallelise profitably.
func ParallelFor(n int, fn func(i int)) {
	workers := Workers(n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	leave := enterRegion(workers)
	batch := dispatchBatch(n, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(batch))) - batch
				if lo >= n {
					return
				}
				hi := lo + batch
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
	if leave != nil {
		leave()
	}
}

// ParallelForErr runs fn(ctx, i) for every i in [0, n) on up to workers
// goroutines (workers <= 0 selects Workers(n); the SetMaxWorkers cap
// always applies). It is the primitive behind the experiment scheduler
// and forest training: jobs are claimed one at a time from a shared
// counter, the derived context is cancelled on the first failure so
// in-flight jobs can bail early, and no new jobs start after a failure
// or outer cancellation.
//
// The returned error is the failure with the lowest job index among the
// jobs that ran, so a run where job i deterministically fails reports
// job i's error regardless of worker count or interleaving. When the
// outer ctx is cancelled first, ctx.Err() is returned.
func ParallelForErr(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	w := Workers(n)
	if workers > 0 && workers < w {
		w = workers
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := cctx.Err(); err != nil {
				return err
			}
			if err := fn(cctx, i); err != nil {
				return err
			}
		}
		return nil
	}
	leave := enterRegion(w)
	var (
		next     atomic.Int64
		mu       sync.Mutex
		firstErr error
		firstIdx int
		wg       sync.WaitGroup
	)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || cctx.Err() != nil {
					return
				}
				if err := fn(cctx, i); err != nil {
					mu.Lock()
					if firstErr == nil || i < firstIdx {
						firstErr, firstIdx = err, i
					}
					mu.Unlock()
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	if leave != nil {
		leave()
	}
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// ParallelWorkers runs fn(w) once per worker w in [0, workers)
// concurrently and waits for all of them. It is the primitive for pools
// that precompute their own per-worker partition (e.g. CSR's
// nnz-balanced row chunks).
func ParallelWorkers(workers int, fn func(w int)) {
	if workers <= 1 {
		if workers == 1 {
			fn(0)
		}
		return
	}
	leave := enterRegion(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
	if leave != nil {
		leave()
	}
}

// ParallelChunks splits [0, n) into contiguous chunks, one per worker,
// and runs fn(w, lo, hi) concurrently. Use Workers(n) for the worker
// count when sizing per-worker scratch space.
func ParallelChunks(n, workers int, fn func(w, lo, hi int)) {
	if workers <= 1 {
		if n > 0 {
			fn(0, 0, n)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	ParallelWorkers(workers, func(w int) {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo < hi {
			fn(w, lo, hi)
		}
	})
}
