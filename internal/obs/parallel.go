package obs

import (
	"runtime"
	"sync"
)

// The shared bounded-parallel helpers. Before this package existed the
// repository carried four near-identical worker pools (meanshift.go,
// collection.go, and the inline pools in csr.go and kmeans.go); they all
// route through here now, which also gives the metrics registry a live
// view of parallel activity:
//
//	parallel/regions  counter  parallel sections entered
//	parallel/workers  gauge    currently active workers across sections
var (
	parallelRegions = Default.Counter("parallel/regions")
	parallelWorkers = Default.Gauge("parallel/workers")
)

// Workers returns the worker count a parallel helper would use for n
// items: min(GOMAXPROCS, n), at least 1.
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// enterRegion records a region start and returns the matching leave
// function (both no-ops when disabled).
func enterRegion(workers int) func() {
	if !Enabled() {
		return nil
	}
	parallelRegions.Inc()
	parallelWorkers.Add(float64(workers))
	return func() { parallelWorkers.Add(-float64(workers)) }
}

// ParallelFor runs fn(i) for every i in [0, n), distributing iterations
// dynamically over Workers(n) goroutines. Use it when per-item cost is
// uneven; the channel hand-off costs ~100ns per item, so items should do
// at least microseconds of work.
func ParallelFor(n int, fn func(i int)) {
	workers := Workers(n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	leave := enterRegion(workers)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if leave != nil {
		leave()
	}
}

// ParallelWorkers runs fn(w) once per worker w in [0, workers)
// concurrently and waits for all of them. It is the primitive for pools
// that precompute their own per-worker partition (e.g. CSR's
// nnz-balanced row chunks).
func ParallelWorkers(workers int, fn func(w int)) {
	if workers <= 1 {
		if workers == 1 {
			fn(0)
		}
		return
	}
	leave := enterRegion(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
	if leave != nil {
		leave()
	}
}

// ParallelChunks splits [0, n) into contiguous chunks, one per worker,
// and runs fn(w, lo, hi) concurrently. Use Workers(n) for the worker
// count when sizing per-worker scratch space.
func ParallelChunks(n, workers int, fn func(w, lo, hi int)) {
	if workers <= 1 {
		if n > 0 {
			fn(0, 0, n)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	ParallelWorkers(workers, func(w int) {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo < hi {
			fn(w, lo, hi)
		}
	})
}
