package obs

import (
	"sort"
	"sync"
	"time"
)

// TraceStore is a bounded, tail-sampling ring of completed request span
// trees. Every request offers its root span; the store keeps the full
// tree when the request is interesting after the fact — slow (above a
// static threshold or a dynamic SLO-window p99), errored, or force-kept
// by the caller (hedged, failover, memo-then-miss, requested) — plus a
// small deterministic sample of ordinary traffic so the store is never
// empty. When full, eviction drops sampled-only entries first, then
// force-kept ones, and touches slow/error traces last.
type TraceStore struct {
	cfg TraceConfig

	mu      sync.Mutex
	entries []*TraceEntry // insertion order, oldest first
	byID    map[string]*TraceEntry
	offers  uint64

	kept    *Counter
	dropped *Counter
	evicted *Counter
}

// TraceConfig configures a TraceStore. The zero value is usable:
// defaults are applied by NewTraceStore.
type TraceConfig struct {
	// Capacity bounds the number of retained traces (default 128).
	Capacity int
	// SlowThreshold marks a request slow regardless of SLO state
	// (default 250ms; negative disables the static threshold).
	SlowThreshold time.Duration
	// SampleEvery keeps one in N otherwise-uninteresting traces
	// (default 100; 0 or negative disables random sampling). The
	// sample is a deterministic offer counter, not a PRNG, so tests
	// and replays are reproducible.
	SampleEvery int
	// DynamicSlow, when set, supplies an additional slow threshold per
	// offer — typically the current SLO-window p99 — so "slow" tracks
	// the tail as the fleet speeds up or degrades. A non-positive
	// return is ignored.
	DynamicSlow func() time.Duration
	// Metrics, when set, receives kept/dropped/evicted counters under
	// Prefix (default "trace").
	Metrics *Registry
	// Prefix names the store's counters (default "trace").
	Prefix string
}

// TraceEntry is one retained request trace.
type TraceEntry struct {
	TraceID string    `json:"trace_id"`
	Root    *SpanData `json:"root"`
	Reasons []string  `json:"reasons"`
	Status  int       `json:"status"`
	At      time.Time `json:"at"`
}

// TraceSummary is the list-view projection of a retained trace.
type TraceSummary struct {
	TraceID  string        `json:"trace_id"`
	Name     string        `json:"name"`
	Duration time.Duration `json:"duration_ns"`
	Status   int           `json:"status"`
	Reasons  []string      `json:"reasons"`
	At       time.Time     `json:"at"`
}

// Trace-propagation headers shared by the serve and proxy tiers.
// X-Request-ID (the trace ID itself) predates these; the hop header
// counts proxy hops so a replica's root span records how it was
// reached, and the keep header force-retains the trace at every hop —
// the proxy stamps it on hedge attempts, and clients set it to
// guarantee a fetchable trace for a request they are about to debug.
const (
	TraceHopHeader  = "X-Trace-Hop"
	TraceKeepHeader = "X-Trace-Keep"
)

// Reasons a trace can be retained for. Callers pass the forced ones to
// Offer; "slow", "error" and "sampled" are computed by the store.
const (
	KeepSlow      = "slow"
	KeepError     = "error"
	KeepSampled   = "sampled"
	KeepHedged    = "hedged"
	KeepFailover  = "failover"
	KeepMemoMiss  = "memo-then-miss"
	KeepRequested = "requested"
)

// NewTraceStore builds a store from cfg, applying defaults.
func NewTraceStore(cfg TraceConfig) *TraceStore {
	if cfg.Capacity <= 0 {
		cfg.Capacity = 128
	}
	if cfg.SlowThreshold == 0 {
		cfg.SlowThreshold = 250 * time.Millisecond
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = 100
	}
	if cfg.Prefix == "" {
		cfg.Prefix = "trace"
	}
	if cfg.Metrics == nil {
		cfg.Metrics = NewRegistry() // private, unexported registry
	}
	ts := &TraceStore{
		cfg:     cfg,
		byID:    make(map[string]*TraceEntry, cfg.Capacity),
		kept:    cfg.Metrics.Counter(cfg.Prefix + "/kept"),
		dropped: cfg.Metrics.Counter(cfg.Prefix + "/dropped"),
		evicted: cfg.Metrics.Counter(cfg.Prefix + "/evicted"),
	}
	return ts
}

// Offer considers a completed request tree for retention and reports
// whether it was kept. status is the HTTP status served; forced lists
// caller-observed keep reasons (KeepHedged, KeepRequested, ...). A nil
// root or a root without a trace ID is never kept.
func (ts *TraceStore) Offer(root *SpanData, status int, forced ...string) bool {
	if ts == nil || root == nil || root.TraceID == "" {
		return false
	}
	reasons := make([]string, 0, len(forced)+2)
	reasons = append(reasons, forced...)
	slow := ts.cfg.SlowThreshold > 0 && root.Duration >= ts.cfg.SlowThreshold
	if !slow && ts.cfg.DynamicSlow != nil {
		if dyn := ts.cfg.DynamicSlow(); dyn > 0 && root.Duration >= dyn {
			slow = true
		}
	}
	if slow {
		reasons = append(reasons, KeepSlow)
	}
	if status >= 400 {
		reasons = append(reasons, KeepError)
	}

	ts.mu.Lock()
	ts.offers++
	if len(reasons) == 0 {
		if ts.cfg.SampleEvery > 0 && (ts.offers-1)%uint64(ts.cfg.SampleEvery) == 0 {
			reasons = append(reasons, KeepSampled)
		} else {
			ts.mu.Unlock()
			ts.dropped.Add(1)
			return false
		}
	}
	e := &TraceEntry{
		TraceID: root.TraceID,
		Root:    root,
		Reasons: reasons,
		Status:  status,
		At:      root.Start.Add(root.Duration),
	}
	if old, ok := ts.byID[e.TraceID]; ok {
		// A re-used request ID replaces the older trace in place.
		*old = *e
		ts.mu.Unlock()
		ts.kept.Add(1)
		return true
	}
	if len(ts.entries) >= ts.cfg.Capacity {
		ts.evictLocked()
	}
	ts.entries = append(ts.entries, e)
	ts.byID[e.TraceID] = e
	ts.mu.Unlock()
	ts.kept.Add(1)
	return true
}

// keepRank orders entries for eviction: sampled-only traces go first,
// then force-kept ones (requested/hedged/...), and slow/error traces
// survive longest.
func keepRank(reasons []string) int {
	rank := 0
	for _, r := range reasons {
		switch r {
		case KeepSlow, KeepError:
			return 2
		case KeepSampled:
		default:
			rank = 1
		}
	}
	return rank
}

// evictLocked removes the oldest entry of the lowest keep rank.
func (ts *TraceStore) evictLocked() {
	victim, rank := -1, 3
	for i, e := range ts.entries {
		if r := keepRank(e.Reasons); r < rank {
			victim, rank = i, r
			if rank == 0 {
				break
			}
		}
	}
	if victim < 0 {
		victim = 0
	}
	delete(ts.byID, ts.entries[victim].TraceID)
	ts.entries = append(ts.entries[:victim], ts.entries[victim+1:]...)
	ts.evicted.Add(1)
}

// Get returns the retained trace for id, or nil.
func (ts *TraceStore) Get(id string) *TraceEntry {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.byID[id]
}

// List returns summaries of every retained trace, newest first.
func (ts *TraceStore) List() []TraceSummary {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	out := make([]TraceSummary, 0, len(ts.entries))
	for _, e := range ts.entries {
		out = append(out, TraceSummary{
			TraceID:  e.TraceID,
			Name:     e.Root.Name,
			Duration: e.Root.Duration,
			Status:   e.Status,
			Reasons:  e.Reasons,
			At:       e.At,
		})
	}
	ts.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].At.After(out[j].At) })
	return out
}

// Snapshot returns every retained trace, oldest first — the payload the
// burn-triggered debug capture writes next to its CPU profile.
func (ts *TraceStore) Snapshot() []*TraceEntry {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]*TraceEntry, len(ts.entries))
	copy(out, ts.entries)
	return out
}

// Len returns the number of retained traces.
func (ts *TraceStore) Len() int {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.entries)
}

// SlowThreshold exposes the configured static slow threshold so the
// access logger and the trace store share one definition of "slow".
func (ts *TraceStore) SlowThreshold() time.Duration {
	if ts == nil {
		return 0
	}
	return ts.cfg.SlowThreshold
}
