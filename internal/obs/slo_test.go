package obs

import (
	"math"
	"testing"
	"time"
)

// sloClock is a fake clock for driving SLOWindows deterministically.
type sloClock struct{ now time.Time }

func (c *sloClock) Now() time.Time          { return c.now }
func (c *sloClock) advance(d time.Duration) { c.now = c.now.Add(d) }
func newSLOClock() *sloClock                { return &sloClock{now: time.Unix(1_000_000, 0)} }

func testSLO(clk *sloClock) *SLOWindows {
	return NewSLOWindows(SLOConfig{
		Objective:    0.99,
		SlotDuration: time.Second,
		Slots:        301, // 5m of history at 1s slots
		Bounds:       []float64{0.01, 0.1, 1},
		Now:          clk.Now,
	})
}

func windowByName(t *testing.T, rep SLOReport, name string) SLOWindowReport {
	t.Helper()
	for _, w := range rep.Windows {
		if w.Window == name {
			return w
		}
	}
	t.Fatalf("window %q missing from report %+v", name, rep)
	return SLOWindowReport{}
}

func TestSLOAvailabilityAndBurn(t *testing.T) {
	clk := newSLOClock()
	s := testSLO(clk)
	for i := 0; i < 90; i++ {
		s.Observe(0.005, false)
	}
	for i := 0; i < 10; i++ {
		s.Observe(0.005, true)
	}
	w := windowByName(t, s.Report(), "1m")
	if w.Requests != 100 || w.Errors != 10 {
		t.Fatalf("requests/errors = %d/%d, want 100/10", w.Requests, w.Errors)
	}
	if math.Abs(w.Availability-0.9) > 1e-12 {
		t.Errorf("availability = %v, want 0.9", w.Availability)
	}
	// Error rate 0.1 against a 0.99 objective burns the budget 10x.
	if math.Abs(w.BurnRate-10) > 1e-9 {
		t.Errorf("burn rate = %v, want 10", w.BurnRate)
	}
}

func TestSLOQuantilesFromBuckets(t *testing.T) {
	clk := newSLOClock()
	s := testSLO(clk)
	for i := 0; i < 60; i++ {
		s.Observe(0.005, false) // <= 0.01
	}
	for i := 0; i < 35; i++ {
		s.Observe(0.05, false) // <= 0.1
	}
	for i := 0; i < 5; i++ {
		s.Observe(0.5, false) // <= 1
	}
	w := windowByName(t, s.Report(), "1m")
	if w.P50 != 0.01 {
		t.Errorf("p50 = %v, want 0.01", w.P50)
	}
	if w.P95 != 0.1 {
		t.Errorf("p95 = %v, want 0.1", w.P95)
	}
	if w.P99 != 1 {
		t.Errorf("p99 = %v, want 1", w.P99)
	}
	if math.Abs(w.MeanSeconds-(60*0.005+35*0.05+5*0.5)/100) > 1e-12 {
		t.Errorf("mean = %v", w.MeanSeconds)
	}
}

// TestSLOWindowsAge: observations fall out of the 1m window but stay in
// the 5m window as the clock advances.
func TestSLOWindowsAge(t *testing.T) {
	clk := newSLOClock()
	s := testSLO(clk)
	for i := 0; i < 50; i++ {
		s.Observe(0.005, true)
	}
	clk.advance(2 * time.Minute)
	rep := s.Report()
	w1 := windowByName(t, rep, "1m")
	if w1.Requests != 0 {
		t.Errorf("1m window still sees %d aged-out requests", w1.Requests)
	}
	if w1.Availability != 1 || w1.BurnRate != 0 {
		t.Errorf("empty 1m window: availability=%v burn=%v, want 1 and 0", w1.Availability, w1.BurnRate)
	}
	w5 := windowByName(t, rep, "5m")
	if w5.Requests != 50 || w5.Errors != 50 {
		t.Errorf("5m window = %d/%d, want 50/50", w5.Requests, w5.Errors)
	}
}

// TestSLOGapClears: a silence longer than the whole ring resets every
// slot in one pass rather than replaying stale data.
func TestSLOGapClears(t *testing.T) {
	clk := newSLOClock()
	s := testSLO(clk)
	for i := 0; i < 50; i++ {
		s.Observe(0.005, true)
	}
	clk.advance(time.Hour) // far beyond the 301-slot ring
	rep := s.Report()
	for _, w := range rep.Windows {
		if w.Requests != 0 || w.Errors != 0 {
			t.Errorf("window %s retained %d/%d after full gap", w.Window, w.Requests, w.Errors)
		}
	}
	// The tracker still works after the reset.
	s.Observe(0.005, false)
	if w := windowByName(t, s.Report(), "1m"); w.Requests != 1 {
		t.Errorf("post-gap observe lost: %d", w.Requests)
	}
}

func TestSLOExportGauges(t *testing.T) {
	clk := newSLOClock()
	s := testSLO(clk)
	for i := 0; i < 99; i++ {
		s.Observe(0.005, false)
	}
	s.Observe(0.005, true)
	r := NewRegistry()
	s.Export(r)
	snap := r.Snapshot()
	if got := snap.Gauges[`slo/availability{window="1m"}`]; math.Abs(got-0.99) > 1e-12 {
		t.Errorf(`slo/availability{window="1m"} = %v, want 0.99`, got)
	}
	if got := snap.Gauges[`slo/burn_rate{window="1m"}`]; math.Abs(got-1) > 1e-9 {
		t.Errorf("burn gauge = %v, want 1", got)
	}
	if got := snap.Gauges[`slo/latency/seconds{window="1m",quantile="p99"}`]; got != 0.01 {
		t.Errorf("p99 gauge = %v, want 0.01", got)
	}
	if got := snap.Gauges[`slo/requests{window="1h"}`]; got != 100 {
		t.Errorf("1h requests gauge = %v, want 100", got)
	}
}

func TestSLODefaults(t *testing.T) {
	cfg := SLOConfig{}.withDefaults()
	if cfg.Objective != 0.999 || cfg.SlotDuration != defaultSLOSlot || cfg.Slots != defaultSLOSlots {
		t.Errorf("defaults = %+v", cfg)
	}
	if cfg.Now == nil || cfg.Bounds == nil {
		t.Error("defaults left Now/Bounds nil")
	}
	// An out-of-range objective falls back rather than dividing by zero.
	if got := (SLOConfig{Objective: 1.5}).withDefaults().Objective; got != 0.999 {
		t.Errorf("objective sanitising: %v", got)
	}
}
