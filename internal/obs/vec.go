package obs

import (
	"sort"
	"strings"
	"sync"
)

// Labeled metric vectors. A vector is a family of instruments of one
// name distinguished by a small, fixed set of label keys — request
// counts by {endpoint, status}, latency by {endpoint, arch}, drift
// scores by {arch, signal}. Before vectors existed, callers encoded
// labels into the metric name itself ("spmv/CSR/calls"); vectors keep
// the name clean and let the Prometheus exposition render real label
// sets.
//
// Every child instrument is registered in the owning Registry under its
// full series key — `name{k1="v1",k2="v2"}` with sorted keys fixed at
// vector creation — so Snapshot, Merge and the JSON/expvar views pick
// labeled series up with no extra plumbing, and the exposition layer
// recovers name and labels by splitting the key at the first '{'.

// labelEscaper escapes label values for the series key, matching the
// Prometheus text-format escaping rules for label values.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// SeriesKey builds the registry key of one labeled series:
// `name{k1="v1",k2="v2"}`. Keys appear in the order given (vectors fix
// an order at creation, so one series always maps to one key).
func SeriesKey(name string, keys, values []string) string {
	var b strings.Builder
	b.Grow(len(name) + 16*len(keys))
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// SplitSeries splits a registry key into the bare metric name and the
// raw label text (`k1="v1",k2="v2"`, empty for unlabeled series).
func SplitSeries(key string) (name, labels string) {
	i := strings.IndexByte(key, '{')
	if i < 0 {
		return key, ""
	}
	return key[:i], strings.TrimSuffix(key[i+1:], "}")
}

// vecCore is the shared shape of the three vector types: the label-key
// schema plus a cache from joined label values to the child's series
// key, so the steady state costs one read-locked map lookup.
type vecCore struct {
	name string
	keys []string

	mu    sync.RWMutex
	cache map[string]string // joined values -> series key
}

func newVecCore(name string, keys []string) vecCore {
	return vecCore{name: name, keys: append([]string(nil), keys...), cache: map[string]string{}}
}

// seriesFor resolves the series key for values, building and caching it
// on first use. It panics on arity mismatch — label schemas are fixed
// at vector creation and a wrong count is a programming error no
// request should be able to trigger.
func (v *vecCore) seriesFor(values []string) string {
	if len(values) != len(v.keys) {
		panic("obs: vector " + v.name + " expects " + strings.Join(v.keys, ",") + " label values")
	}
	ck := strings.Join(values, "\xff")
	v.mu.RLock()
	key, ok := v.cache[ck]
	v.mu.RUnlock()
	if ok {
		return key
	}
	key = SeriesKey(v.name, v.keys, values)
	v.mu.Lock()
	v.cache[ck] = key
	v.mu.Unlock()
	return key
}

// Series lists the registered series keys of the vector, sorted.
func (v *vecCore) Series() []string {
	v.mu.RLock()
	out := make([]string, 0, len(v.cache))
	for _, key := range v.cache {
		out = append(out, key)
	}
	v.mu.RUnlock()
	sort.Strings(out)
	return out
}

// CounterVec is a family of counters sharing one name, keyed by label
// values. Obtain children with With; children are ordinary *Counter
// instruments living in the owning registry, so hot paths should
// resolve them once and hold the pointer.
type CounterVec struct {
	vecCore
	r *Registry
}

// CounterVec returns the named counter vector with the given label
// keys, creating it if needed. Like all registry instruments it is
// get-or-create: the first caller fixes the label schema.
func (r *Registry) CounterVec(name string, keys ...string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v := r.cvecs[name]; v != nil {
		return v
	}
	v := &CounterVec{vecCore: newVecCore(name, keys), r: r}
	r.cvecs[name] = v
	return v
}

// With returns the child counter for the given label values (one per
// label key, in schema order).
func (v *CounterVec) With(values ...string) *Counter {
	return v.r.Counter(v.seriesFor(values))
}

// GaugeVec is a family of gauges sharing one name, keyed by label
// values.
type GaugeVec struct {
	vecCore
	r *Registry
}

// GaugeVec returns the named gauge vector, creating it if needed.
func (r *Registry) GaugeVec(name string, keys ...string) *GaugeVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v := r.gvecs[name]; v != nil {
		return v
	}
	v := &GaugeVec{vecCore: newVecCore(name, keys), r: r}
	r.gvecs[name] = v
	return v
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.r.Gauge(v.seriesFor(values))
}

// HistogramVec is a family of histograms sharing one name and bucket
// bounds, keyed by label values.
type HistogramVec struct {
	vecCore
	r      *Registry
	bounds []float64
}

// HistogramVec returns the named histogram vector with the given bucket
// bounds, creating it if needed (bounds are fixed by the first caller,
// like Histogram).
func (r *Registry) HistogramVec(name string, bounds []float64, keys ...string) *HistogramVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v := r.hvecs[name]; v != nil {
		return v
	}
	v := &HistogramVec{vecCore: newVecCore(name, keys), r: r, bounds: append([]float64(nil), bounds...)}
	r.hvecs[name] = v
	return v
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.r.Histogram(v.seriesFor(values), v.bounds)
}
