package obs

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCaptureRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := NewCaptureWriter(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 20; i++ {
		rec := []byte(fmt.Sprintf("record-%02d:%s", i, strings.Repeat("x", i*7)))
		want = append(want, rec)
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Records(); got != 20 {
		t.Errorf("Records() = %d, want 20", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if err := w.Append([]byte("late")); err == nil {
		t.Error("Append after Close succeeded")
	}

	var got [][]byte
	if err := ReadCaptureDir(dir, func(rec []byte) error {
		got = append(got, append([]byte(nil), rec...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestCaptureRotationAndResume(t *testing.T) {
	dir := t.TempDir()
	// Tiny threshold: every ~50-byte record forces a rotation.
	w, err := NewCaptureWriter(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	rec := bytes.Repeat([]byte("r"), 50)
	for i := 0; i < 5; i++ {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	files, err := CaptureFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("rotation produced %d files, want >= 3", len(files))
	}

	// A new writer in the same directory must not clobber old files.
	w2, err := NewCaptureWriter(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append([]byte("resumed")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	count := 0
	var last []byte
	if err := ReadCaptureDir(dir, func(rec []byte) error {
		count++
		last = append([]byte(nil), rec...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 6 || string(last) != "resumed" {
		t.Errorf("after resume: %d records, last %q; want 6, \"resumed\"", count, last)
	}
}

func TestCaptureTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	w, err := NewCaptureWriter(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("whole")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("will-be-torn")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	files, err := CaptureFiles(dir)
	if err != nil || len(files) != 1 {
		t.Fatalf("files = %v, %v", files, err)
	}
	// Tear the final record: drop its last 3 bytes.
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	err = ReadCaptureDir(dir, func(rec []byte) error {
		got = append(got, append([]byte(nil), rec...))
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Errorf("torn tail: err = %v, want truncated-record error", err)
	}
	if len(got) != 1 || string(got[0]) != "whole" {
		t.Errorf("intact records before the tear = %q, want [whole]", got)
	}
}

func TestCaptureEmptyDirAndBadRecords(t *testing.T) {
	dir := t.TempDir()
	if err := ReadCaptureDir(dir, func([]byte) error { return nil }); err == nil {
		t.Error("empty dir: want an error")
	}
	w, err := NewCaptureWriter(filepath.Join(dir, "sub"), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(nil); err == nil {
		t.Error("empty record accepted")
	}
}
