package obs

import (
	"bytes"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// promTestSnapshot builds a small fixed registry covering every
// instrument kind, labeled and unlabeled.
func promTestRegistry() *Registry {
	r := NewRegistry()
	r.Counter("serve/requests").Add(7)
	r.Gauge("serve/inflight").Set(2.5)
	// Exact binary fractions so the golden _sum line is stable.
	r.Histogram("serve/request/seconds", []float64{0.001, 0.01, 0.1}).Observe(0.0078125)
	r.Histogram("serve/request/seconds", nil).Observe(0.0625)
	r.Histogram("serve/request/seconds", nil).Observe(3)
	cv := r.CounterVec("serve/predictions", "arch", "format")
	cv.With("turing", "CSR").Add(4)
	cv.With("pascal", "HYB").Add(1)
	r.GaugeVec("registry/drift/psi", "arch", "signal").With("turing", "format").Set(0.25)
	hv := r.HistogramVec("serve/http/seconds", []float64{0.01, 0.1}, "endpoint", "arch")
	hv.With("/v1/predict/matrix", "turing").Observe(0.02)
	return r
}

// promGolden is the exact exposition of promTestRegistry: families
// sorted, series sorted by label text, cumulative buckets, counters
// suffixed _total.
const promGolden = `# TYPE spmvselect_registry_drift_psi gauge
spmvselect_registry_drift_psi{arch="turing",signal="format"} 0.25
# TYPE spmvselect_serve_http_seconds histogram
spmvselect_serve_http_seconds_bucket{endpoint="/v1/predict/matrix",arch="turing",le="0.01"} 0
spmvselect_serve_http_seconds_bucket{endpoint="/v1/predict/matrix",arch="turing",le="0.1"} 1
spmvselect_serve_http_seconds_bucket{endpoint="/v1/predict/matrix",arch="turing",le="+Inf"} 1
spmvselect_serve_http_seconds_sum{endpoint="/v1/predict/matrix",arch="turing"} 0.02
spmvselect_serve_http_seconds_count{endpoint="/v1/predict/matrix",arch="turing"} 1
# TYPE spmvselect_serve_inflight gauge
spmvselect_serve_inflight 2.5
# TYPE spmvselect_serve_predictions_total counter
spmvselect_serve_predictions_total{arch="pascal",format="HYB"} 1
spmvselect_serve_predictions_total{arch="turing",format="CSR"} 4
# TYPE spmvselect_serve_request_seconds histogram
spmvselect_serve_request_seconds_bucket{le="0.001"} 0
spmvselect_serve_request_seconds_bucket{le="0.01"} 1
spmvselect_serve_request_seconds_bucket{le="0.1"} 2
spmvselect_serve_request_seconds_bucket{le="+Inf"} 3
spmvselect_serve_request_seconds_sum 3.0703125
spmvselect_serve_request_seconds_count 3
# TYPE spmvselect_serve_requests_total counter
spmvselect_serve_requests_total 7
`

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, promTestRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != promGolden {
		t.Errorf("exposition differs from golden:\n--- got ---\n%s--- want ---\n%s", got, promGolden)
	}
}

// TestPrometheusRoundTrip proves every emitted line is valid text
// format: the parser accepts the full exposition and recovers the
// sample values.
func TestPrometheusRoundTrip(t *testing.T) {
	r := promTestRegistry()
	// A label value exercising the escaping rules.
	r.CounterVec("serve/predictions", "arch", "format").With(`we"ird\arch`, "x\ny").Inc()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	m, err := ParsePrometheus(&buf)
	if err != nil {
		t.Fatalf("round trip: emitted exposition failed to parse: %v", err)
	}
	if len(m.Samples) == 0 {
		t.Fatal("no samples parsed")
	}
	if v, ok := m.Value("spmvselect_serve_requests_total"); !ok || v != 7 {
		t.Errorf("counter lost: got %v %v", v, ok)
	}
	if v, ok := m.Value("spmvselect_serve_predictions_total", "arch", "turing", "format", "CSR"); !ok || v != 4 {
		t.Errorf("labeled counter lost: got %v %v", v, ok)
	}
	if v, ok := m.Value("spmvselect_serve_predictions_total", "arch", `we"ird\arch`, "format", "x\ny"); !ok || v != 1 {
		t.Errorf("escaped labels lost: got %v %v", v, ok)
	}
	if v, ok := m.Value("spmvselect_serve_request_seconds_bucket", "le", "+Inf"); !ok || v != 3 {
		t.Errorf("+Inf bucket lost: got %v %v", v, ok)
	}
	if typ := m.Types["spmvselect_serve_http_seconds"]; typ != "histogram" {
		t.Errorf("TYPE line lost: %q", typ)
	}
	if got := m.Sum("spmvselect_serve_predictions_total"); got != 6 {
		t.Errorf("Sum over family = %v, want 6", got)
	}
}

func TestParsePrometheusRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"metric_without_value\n",
		"1leading_digit 3\n",
		`unterminated{a="b 3` + "\n",
		"name 3 extra junk\n",
		`name{a=b} 3` + "\n",
	} {
		if _, err := ParsePrometheus(strings.NewReader(bad)); err == nil {
			t.Errorf("ParsePrometheus accepted %q", bad)
		}
	}
}

func TestPromHandlerServesAndRefreshes(t *testing.T) {
	r := promTestRegistry()
	refreshed := 0
	h := PromHandler(r, func() { refreshed++ })
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if refreshed != 1 {
		t.Errorf("refresh hook ran %d times, want 1", refreshed)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	if _, err := ParsePrometheus(rec.Body); err != nil {
		t.Errorf("handler output does not parse: %v", err)
	}
}

func TestPromFloatSpellings(t *testing.T) {
	for v, want := range map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		0.25:         "0.25",
	} {
		if got := promFloat(v); got != want {
			t.Errorf("promFloat(%v) = %q, want %q", v, got, want)
		}
	}
	if got := promFloat(math.NaN()); got != "NaN" {
		t.Errorf("promFloat(NaN) = %q", got)
	}
}

func TestVecSchemaAndReuse(t *testing.T) {
	r := NewRegistry()
	v1 := r.CounterVec("x", "a", "b")
	v2 := r.CounterVec("x", "ignored")
	if v1 != v2 {
		t.Error("CounterVec is not get-or-create")
	}
	c := v1.With("1", "2")
	v1.With("1", "2").Inc()
	c.Inc()
	if got := r.Snapshot().Counters[`x{a="1",b="2"}`]; got != 2 {
		t.Errorf("series count = %d, want 2", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch did not panic")
		}
	}()
	v1.With("only-one")
}

// TestVecConcurrentScrapes hammers labeled vectors from many writers
// while concurrent scrapes render the exposition — the -race test the
// serving stack relies on (scrapes during a registry promote touch the
// same maps).
func TestVecConcurrentScrapes(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("stress/requests", "endpoint", "status")
	hv := r.HistogramVec("stress/seconds", []float64{0.01, 0.1, 1}, "endpoint")
	gv := r.GaugeVec("stress/drift", "arch")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				ep := fmt.Sprintf("/ep/%d", i%5)
				cv.With(ep, "200").Inc()
				hv.With(ep).Observe(float64(i%7) / 50)
				gv.With(fmt.Sprintf("arch%d", w%3)).Set(float64(i))
			}
		}()
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var buf bytes.Buffer
				if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
				if _, err := ParsePrometheus(&buf); err != nil {
					t.Errorf("scrape parse: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	snap := r.Snapshot()
	var total int64
	for key, v := range snap.Counters {
		if strings.HasPrefix(key, "stress/requests{") {
			total += v
		}
	}
	if total != 8*500 {
		t.Errorf("lost increments: %d, want %d", total, 8*500)
	}
}
