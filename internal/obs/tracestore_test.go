package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func mkRoot(id string, d time.Duration) *SpanData {
	return &SpanData{
		Name:     "serve/predict",
		Path:     "serve/predict",
		TraceID:  id,
		Start:    time.Unix(0, 0),
		Duration: d,
		Root:     true,
	}
}

func TestTraceStoreKeepReasons(t *testing.T) {
	ts := NewTraceStore(TraceConfig{Capacity: 8, SlowThreshold: 100 * time.Millisecond, SampleEvery: -1})

	if ts.Offer(nil, 200) {
		t.Fatal("kept nil root")
	}
	if ts.Offer(&SpanData{Name: "x"}, 200) {
		t.Fatal("kept root without trace ID")
	}
	if ts.Offer(mkRoot("fast", time.Millisecond), 200) {
		t.Fatal("kept fast, ok request with sampling disabled")
	}
	if !ts.Offer(mkRoot("slow", 150*time.Millisecond), 200) {
		t.Fatal("dropped slow request")
	}
	if !ts.Offer(mkRoot("err", time.Millisecond), 500) {
		t.Fatal("dropped errored request")
	}
	if !ts.Offer(mkRoot("hedge", time.Millisecond), 200, KeepHedged) {
		t.Fatal("dropped hedged request")
	}
	e := ts.Get("slow")
	if e == nil || len(e.Reasons) != 1 || e.Reasons[0] != KeepSlow {
		t.Fatalf("slow entry = %+v", e)
	}
	if got := ts.Get("err"); got == nil || got.Reasons[0] != KeepError {
		t.Fatalf("err entry = %+v", got)
	}
	if got := ts.Get("fast"); got != nil {
		t.Fatalf("fast entry unexpectedly kept: %+v", got)
	}
	list := ts.List()
	if len(list) != 3 {
		t.Fatalf("List() = %d entries, want 3", len(list))
	}
}

func TestTraceStoreDynamicSlow(t *testing.T) {
	dyn := 50 * time.Millisecond
	ts := NewTraceStore(TraceConfig{
		Capacity:      8,
		SlowThreshold: time.Hour, // static threshold unreachable
		SampleEvery:   -1,
		DynamicSlow:   func() time.Duration { return dyn },
	})
	if !ts.Offer(mkRoot("p99", 60*time.Millisecond), 200) {
		t.Fatal("dropped request above dynamic p99")
	}
	if ts.Offer(mkRoot("ok", 40*time.Millisecond), 200) {
		t.Fatal("kept request below both thresholds")
	}
}

func TestTraceStoreSampling(t *testing.T) {
	ts := NewTraceStore(TraceConfig{Capacity: 64, SlowThreshold: time.Hour, SampleEvery: 10})
	kept := 0
	for i := 0; i < 100; i++ {
		if ts.Offer(mkRoot(fmt.Sprintf("r%d", i), time.Millisecond), 200) {
			kept++
		}
	}
	if kept != 10 {
		t.Fatalf("kept %d of 100 at SampleEvery=10, want 10", kept)
	}
	for _, s := range ts.List() {
		if len(s.Reasons) != 1 || s.Reasons[0] != KeepSampled {
			t.Fatalf("sampled entry reasons = %v", s.Reasons)
		}
	}
}

// TestTraceStoreEvictionPriority proves the tail-sampling contract: when
// the ring is full, randomly sampled traces are evicted before force-kept
// ones, and slow/error traces survive longest.
func TestTraceStoreEvictionPriority(t *testing.T) {
	ts := NewTraceStore(TraceConfig{Capacity: 4, SlowThreshold: 100 * time.Millisecond, SampleEvery: 1})

	// Fill with: two sampled, one slow, one error.
	ts.Offer(mkRoot("sampled-1", time.Millisecond), 200)
	ts.Offer(mkRoot("slow-1", 200*time.Millisecond), 200)
	ts.Offer(mkRoot("sampled-2", time.Millisecond), 200)
	ts.Offer(mkRoot("error-1", time.Millisecond), 503)
	if ts.Len() != 4 {
		t.Fatalf("Len() = %d, want 4", ts.Len())
	}

	// Overflow with two more slow traces: the sampled pair must go first.
	ts.Offer(mkRoot("slow-2", 300*time.Millisecond), 200)
	ts.Offer(mkRoot("slow-3", 300*time.Millisecond), 200)
	for _, id := range []string{"slow-1", "error-1", "slow-2", "slow-3"} {
		if ts.Get(id) == nil {
			t.Fatalf("%s evicted while sampled entries existed", id)
		}
	}
	for _, id := range []string{"sampled-1", "sampled-2"} {
		if ts.Get(id) != nil {
			t.Fatalf("%s survived over slow/error traces", id)
		}
	}

	// A force-kept (hedged) trace outranks sampled but not slow/error:
	// overflowing with it evicts the oldest slow entry only once no
	// sampled entries remain — here everything is rank 2, so the oldest
	// overall goes.
	ts.Offer(mkRoot("hedged-1", time.Millisecond), 200, KeepHedged)
	if ts.Get("slow-1") != nil {
		t.Fatal("oldest slow entry should be evicted when all ranks are >= 1")
	}
	// Now a new slow offer evicts the hedged entry (rank 1) before any
	// remaining slow/error entry.
	ts.Offer(mkRoot("slow-4", 300*time.Millisecond), 200)
	if ts.Get("hedged-1") != nil {
		t.Fatal("hedged entry survived over a new slow trace")
	}
	for _, id := range []string{"error-1", "slow-2", "slow-3", "slow-4"} {
		if ts.Get(id) == nil {
			t.Fatalf("%s missing after hedged eviction", id)
		}
	}
}

func TestTraceStoreDuplicateIDReplaces(t *testing.T) {
	ts := NewTraceStore(TraceConfig{Capacity: 4, SampleEvery: -1})
	ts.Offer(mkRoot("dup", 300*time.Millisecond), 200)
	ts.Offer(mkRoot("dup", 400*time.Millisecond), 500)
	if ts.Len() != 1 {
		t.Fatalf("Len() = %d after duplicate offer, want 1", ts.Len())
	}
	e := ts.Get("dup")
	if e == nil || e.Status != 500 || e.Root.Duration != 400*time.Millisecond {
		t.Fatalf("duplicate offer did not replace: %+v", e)
	}
}

// TestConcurrentRequestSpanIsolation is the -race stress for the span
// collector: many interleaved "requests" each build a root with
// StartAlways plus stage children via StartChild, concurrently and with
// no sink registered. Every finished tree must contain exactly its own
// stages with its own trace ID — no node may leak across requests.
func TestConcurrentRequestSpanIsolation(t *testing.T) {
	SetSink(nil) // always-on trees must work without a global sink

	const workers = 16
	const perWorker = 50
	stages := []string{"parse", "features", "cascade", "model"}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	store := NewTraceStore(TraceConfig{Capacity: workers * perWorker, SlowThreshold: -1, SampleEvery: 1})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := fmt.Sprintf("w%d-r%d", w, i)
				ctx := WithTraceID(t.Context(), id)
				ctx, root := StartAlways(ctx, "request")
				for _, st := range stages {
					sctx, sp := StartChild(ctx, st)
					_, inner := StartChild(sctx, st+"/inner")
					inner.SetMetric("i", float64(i))
					inner.End()
					sp.End()
				}
				sd := root.EndData()
				if sd == nil {
					errs <- fmt.Errorf("%s: EndData returned nil", id)
					return
				}
				if sd.TraceID != id {
					errs <- fmt.Errorf("%s: trace ID %q", id, sd.TraceID)
					return
				}
				if len(sd.Children) != len(stages) {
					errs <- fmt.Errorf("%s: %d children, want %d", id, len(sd.Children), len(stages))
					return
				}
				for j, c := range sd.Children {
					if c.Name != stages[j] || c.TraceID != id {
						errs <- fmt.Errorf("%s: child %d = %s/%s", id, j, c.Name, c.TraceID)
						return
					}
					if len(c.Children) != 1 || c.Children[0].Metrics["i"] != float64(i) {
						errs <- fmt.Errorf("%s: child %d inner leaked: %+v", id, j, c.Children)
						return
					}
				}
				store.Offer(sd, 200)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if store.Len() != workers*perWorker {
		t.Fatalf("store kept %d of %d", store.Len(), workers*perWorker)
	}
	// Spot-check retained trees are still intact after concurrent offers.
	e := store.Get("w0-r0")
	if e == nil || len(e.Root.Children) != len(stages) {
		t.Fatalf("retained tree corrupted: %+v", e)
	}
}
