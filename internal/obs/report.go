package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// DefaultReportPath is where instrumented commands write their run
// report and where `spmvselect report` looks for it.
const DefaultReportPath = "obs-run.json"

// RunReport is the machine-readable record of one instrumented run:
// the span trees of every pipeline stage plus a snapshot of the metrics
// registry. Committed reports (BENCH_obs.json) seed the repository's
// perf trajectory: future PRs diff their per-stage timings and kernel
// throughput histograms against it.
type RunReport struct {
	// Command and Args identify the invocation ("table", ["-n", "9"]).
	Command string   `json:"command"`
	Args    []string `json:"args,omitempty"`
	// Start and Duration cover the instrumented window.
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	// Host fingerprint, so reports from different machines are not
	// compared naively.
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// Spans are the collected root span trees (per-stage timings).
	Spans []*SpanData `json:"spans"`
	// Metrics is the registry snapshot (counters, gauges, histograms —
	// including the spmv/<format> kernel-throughput histograms).
	Metrics Snapshot `json:"metrics"`
}

// Report builds a RunReport from the collector's spans and the default
// registry's current state.
func (c *Collector) Report(command string, args []string) *RunReport {
	spans := c.Roots()
	r := &RunReport{
		Command:   command,
		Args:      append([]string(nil), args...),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Spans:     spans,
		Metrics:   Default.Snapshot(),
	}
	var end time.Time
	for _, sd := range spans {
		if r.Start.IsZero() || sd.Start.Before(r.Start) {
			r.Start = sd.Start
		}
		if e := sd.Start.Add(sd.Duration); e.After(end) {
			end = e
		}
	}
	if !r.Start.IsZero() {
		r.Duration = end.Sub(r.Start)
	}
	return r
}

// FindSpan returns the first span (depth-first over all trees) whose
// path ends with suffix, or nil. Convenience for tests and report
// consumers ("corpus/features", "cluster/kmeans", ...).
func (r *RunReport) FindSpan(suffix string) *SpanData {
	var walk func(sd *SpanData) *SpanData
	walk = func(sd *SpanData) *SpanData {
		if hasPathSuffix(sd.Path, suffix) {
			return sd
		}
		for _, ch := range sd.Children {
			if m := walk(ch); m != nil {
				return m
			}
		}
		return nil
	}
	for _, sd := range r.Spans {
		if m := walk(sd); m != nil {
			return m
		}
	}
	return nil
}

// hasPathSuffix reports whether path equals suffix or ends with
// "/"+suffix.
func hasPathSuffix(path, suffix string) bool {
	if path == suffix {
		return true
	}
	n := len(path) - len(suffix)
	return n > 0 && path[n-1] == '/' && path[n:] == suffix
}

// WriteReport writes the report as indented JSON to path.
func WriteReport(path string, r *RunReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: encoding run report: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("obs: writing run report: %w", err)
	}
	return nil
}

// ReadReport reads a report written by WriteReport.
func ReadReport(path string) (*RunReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: reading run report: %w", err)
	}
	var r RunReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("obs: parsing run report %s: %w", path, err)
	}
	return &r, nil
}
