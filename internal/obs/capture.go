package obs

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Traffic capture files: an append-only log of opaque records, each
// prefixed by a 4-byte big-endian length, rotated across numbered
// files so a long-running capture never grows one unbounded file. The
// format is deliberately free of any schema — the serve layer stores
// its own envelope inside each record — which keeps this package free
// of serving types and makes the reader reusable for any
// record-per-event capture.
//
// Durability model: every Append is one write(2) of the framed record
// to an O_APPEND file, so records written before a crash are intact
// and a torn final record (the crash mid-write) is detected by the
// reader as a short frame and reported, not silently absorbed.

// captureExt and capturePrefix name capture files: capture-000000.cap,
// capture-000001.cap, ... in the capture directory, ordered by
// sequence number.
const (
	capturePrefix = "capture-"
	captureExt    = ".cap"
)

// maxCaptureRecord bounds one record on read and write (64 MiB — the
// serve layer's own request-body ceiling), so a corrupt length prefix
// cannot ask the reader for a multi-gigabyte allocation.
const maxCaptureRecord = 64 << 20

// DefaultCaptureFileBytes is the rotation threshold when
// NewCaptureWriter is given none.
const DefaultCaptureFileBytes = 64 << 20

// CaptureWriter appends length-prefixed records to rotating files in
// one directory. Safe for concurrent use.
type CaptureWriter struct {
	mu       sync.Mutex
	dir      string
	maxBytes int64
	f        *os.File
	seq      int
	written  int64
	records  int64
	closed   bool
}

// NewCaptureWriter opens (creating if needed) dir for appending.
// Existing capture files are never overwritten: writing resumes on a
// fresh file after the highest existing sequence number. maxFileBytes
// is the rotation threshold (0 selects DefaultCaptureFileBytes).
func NewCaptureWriter(dir string, maxFileBytes int64) (*CaptureWriter, error) {
	if maxFileBytes <= 0 {
		maxFileBytes = DefaultCaptureFileBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: creating capture dir: %w", err)
	}
	existing, err := CaptureFiles(dir)
	if err != nil {
		return nil, err
	}
	seq := 0
	if n := len(existing); n > 0 {
		last := existing[n-1]
		fmt.Sscanf(filepath.Base(last), capturePrefix+"%d"+captureExt, &seq)
		seq++
	}
	w := &CaptureWriter{dir: dir, maxBytes: maxFileBytes, seq: seq}
	if err := w.openLocked(); err != nil {
		return nil, err
	}
	return w, nil
}

// openLocked starts the next numbered capture file.
func (w *CaptureWriter) openLocked() error {
	name := filepath.Join(w.dir, fmt.Sprintf("%s%06d%s", capturePrefix, w.seq, captureExt))
	f, err := os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("obs: opening capture file: %w", err)
	}
	w.f = f
	w.written = 0
	return nil
}

// Append writes one record. The frame (prefix + payload) lands in a
// single write call; when the current file would exceed the rotation
// threshold, a new one is started first.
func (w *CaptureWriter) Append(rec []byte) error {
	if len(rec) == 0 {
		return fmt.Errorf("obs: empty capture record")
	}
	if len(rec) > maxCaptureRecord {
		return fmt.Errorf("obs: capture record of %d bytes exceeds the %d limit", len(rec), maxCaptureRecord)
	}
	framed := make([]byte, 4+len(rec))
	binary.BigEndian.PutUint32(framed, uint32(len(rec)))
	copy(framed[4:], rec)

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("obs: capture writer is closed")
	}
	if w.written > 0 && w.written+int64(len(framed)) > w.maxBytes {
		if err := w.f.Close(); err != nil {
			return fmt.Errorf("obs: rotating capture file: %w", err)
		}
		w.seq++
		if err := w.openLocked(); err != nil {
			return err
		}
	}
	if _, err := w.f.Write(framed); err != nil {
		return fmt.Errorf("obs: writing capture record: %w", err)
	}
	w.written += int64(len(framed))
	w.records++
	return nil
}

// Records reports how many records this writer has appended.
func (w *CaptureWriter) Records() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// Dir returns the capture directory.
func (w *CaptureWriter) Dir() string { return w.dir }

// Close flushes and closes the current file. Further Appends fail.
func (w *CaptureWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("obs: closing capture file: %w", err)
	}
	return nil
}

// CaptureFiles lists dir's capture files in write (sequence) order.
func CaptureFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("obs: reading capture dir: %w", err)
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || len(name) < len(capturePrefix)+len(captureExt) {
			continue
		}
		if name[:len(capturePrefix)] == capturePrefix && filepath.Ext(name) == captureExt {
			files = append(files, filepath.Join(dir, name))
		}
	}
	sort.Strings(files) // zero-padded sequence numbers sort lexically
	return files, nil
}

// ReadCaptureFile streams every record of one capture file through fn,
// stopping at fn's first error. A truncated final frame (a writer
// crashed mid-record) is an error naming the file and offset.
func ReadCaptureFile(path string, fn func(rec []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("obs: opening capture file: %w", err)
	}
	defer f.Close()
	var prefix [4]byte
	offset := int64(0)
	for {
		if _, err := io.ReadFull(f, prefix[:]); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("obs: %s: truncated record prefix at offset %d", path, offset)
		}
		n := binary.BigEndian.Uint32(prefix[:])
		if n == 0 || n > maxCaptureRecord {
			return fmt.Errorf("obs: %s: implausible record length %d at offset %d (corrupt file?)", path, n, offset)
		}
		rec := make([]byte, n)
		if _, err := io.ReadFull(f, rec); err != nil {
			return fmt.Errorf("obs: %s: truncated record at offset %d (%d of %d bytes)", path, offset, len(rec), n)
		}
		if err := fn(rec); err != nil {
			return err
		}
		offset += int64(4 + n)
	}
}

// ReadCaptureDir streams every record of every capture file in dir, in
// write order.
func ReadCaptureDir(dir string, fn func(rec []byte) error) error {
	files, err := CaptureFiles(dir)
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return fmt.Errorf("obs: no capture files (%s*%s) in %s", capturePrefix, captureExt, dir)
	}
	for _, path := range files {
		if err := ReadCaptureFile(path, fn); err != nil {
			return err
		}
	}
	return nil
}
