package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// withSink installs a collector for the duration of a test and resets
// the default registry afterwards so tests stay independent.
func withSink(t *testing.T) *Collector {
	t.Helper()
	c := NewCollector()
	SetSink(c)
	t.Cleanup(func() {
		SetSink(nil)
		Default.Reset()
	})
	return c
}

func TestDisabledPathIsInert(t *testing.T) {
	SetSink(nil)
	if Enabled() {
		t.Fatal("Enabled with no sink")
	}
	ctx := context.Background()
	ctx2, sp := Start(ctx, "x")
	if sp != nil {
		t.Fatal("disabled Start returned a span")
	}
	if ctx2 != ctx {
		t.Fatal("disabled Start derived a new context")
	}
	sp.End()             // must not panic
	sp.SetMetric("k", 1) // must not panic
	if !Now().IsZero() {
		t.Fatal("disabled Now not zero")
	}
}

func TestCounterGaugeHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []float64{1, 10, 100})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 200))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Errorf("gauge = %v, want 8000", g.Value())
	}
	s := h.Snapshot()
	if s.Count != 8000 {
		t.Errorf("histogram count = %d, want 8000", s.Count)
	}
	var bucketSum int64
	for _, n := range s.Counts {
		bucketSum += n
	}
	if bucketSum != s.Count {
		t.Errorf("bucket sum %d != count %d", bucketSum, s.Count)
	}
	if s.Min != 0 || s.Max != 199 {
		t.Errorf("min/max = %v/%v, want 0/199", s.Min, s.Max)
	}
	// Same name returns the same instrument.
	if r.Counter("c") != c || r.Gauge("g") != g || r.Histogram("h", nil) != h {
		t.Error("get-or-create returned a different instrument")
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	h.Observe(1)   // bucket 0 (v <= 1)
	h.Observe(1.5) // bucket 1
	h.Observe(10)  // bucket 1
	h.Observe(11)  // overflow
	s := h.Snapshot()
	want := []int64{1, 2, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if q := s.Quantile(0.5); q != 10 {
		t.Errorf("median = %v, want 10", q)
	}
	if m := s.Mean(); m != (1+1.5+10+11)/4 {
		t.Errorf("mean = %v", m)
	}
}

func TestSnapshotMergeAndJSON(t *testing.T) {
	a := NewRegistry()
	a.Counter("n").Add(3)
	a.Gauge("w").Set(2)
	a.Histogram("h", []float64{1, 2}).Observe(1.5)
	b := NewRegistry()
	b.Counter("n").Add(4)
	b.Counter("only_b").Add(1)
	b.Gauge("w").Set(5)
	b.Histogram("h", []float64{1, 2}).Observe(0.5)

	m := a.Snapshot().Merge(b.Snapshot())
	if m.Counters["n"] != 7 || m.Counters["only_b"] != 1 {
		t.Errorf("merged counters = %v", m.Counters)
	}
	if m.Gauges["w"] != 5 {
		t.Errorf("merged gauge = %v, want 5 (last writer)", m.Gauges["w"])
	}
	h := m.Histograms["h"]
	if h.Count != 2 || h.Counts[0] != 1 || h.Counts[1] != 1 {
		t.Errorf("merged histogram = %+v", h)
	}
	if h.Min != 0.5 || h.Max != 1.5 {
		t.Errorf("merged min/max = %v/%v", h.Min, h.Max)
	}
	// Empty histograms must serialise (no Inf min/max).
	empty := NewRegistry()
	empty.Histogram("e", []float64{1})
	if _, err := json.Marshal(empty.Snapshot()); err != nil {
		t.Fatalf("marshalling snapshot with empty histogram: %v", err)
	}
}

func TestSpanTreeNesting(t *testing.T) {
	col := withSink(t)
	ctx, root := Start(context.Background(), "run")
	ctx2, child := Start(ctx, "stage")
	_, grand := Start(ctx2, "substage")
	grand.SetMetric("items", 42)
	grand.End()
	child.End()
	// A sibling started from the root context.
	_, sib := Start(ctx, "render")
	sib.End()
	root.End()

	roots := col.Roots()
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(roots))
	}
	r := roots[0]
	if !r.Root || r.Path != "run" || len(r.Children) != 2 {
		t.Fatalf("root = %+v", r)
	}
	st := r.Children[0]
	if st.Path != "run/stage" || len(st.Children) != 1 {
		t.Fatalf("stage = %+v", st)
	}
	if g := st.Children[0]; g.Path != "run/stage/substage" || g.Metrics["items"] != 42 {
		t.Fatalf("substage = %+v", g)
	}
	if r.Children[1].Path != "run/render" {
		t.Fatalf("sibling path = %q", r.Children[1].Path)
	}
	// Double End is a no-op.
	root.End()
	if len(col.Roots()) != 1 {
		t.Error("double End delivered the root twice")
	}
}

func TestTimerRecordsWhenEnabled(t *testing.T) {
	withSink(t)
	tm := StartTimer("unit/test")
	time.Sleep(time.Millisecond)
	if d := tm.Stop(); d < time.Millisecond {
		t.Errorf("timer measured %v", d)
	}
	s := Default.Snapshot()
	h, ok := s.Histograms["unit/test/seconds"]
	if !ok || h.Count != 1 {
		t.Fatalf("timer histogram missing or empty: %+v", s.Histograms)
	}
}

func TestJSONLSinkStreamsSpans(t *testing.T) {
	var buf bytes.Buffer
	SetSink(NewJSONLSink(&buf))
	t.Cleanup(func() { SetSink(nil); Default.Reset() })
	ctx, root := Start(context.Background(), "a")
	_, ch := Start(ctx, "b")
	ch.End()
	root.End()
	sc := bufio.NewScanner(&buf)
	var lines []SpanData
	for sc.Scan() {
		var sd SpanData
		if err := json.Unmarshal(sc.Bytes(), &sd); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, sd)
	}
	if len(lines) != 2 || lines[0].Path != "a/b" || lines[1].Path != "a" {
		t.Fatalf("lines = %+v", lines)
	}
	if lines[1].Children != nil {
		t.Error("JSONL line carried children")
	}
}

func TestParallelHelpers(t *testing.T) {
	withSink(t)
	const n = 1000
	seen := make([]int32, n)
	var mu sync.Mutex
	ParallelFor(n, func(i int) {
		mu.Lock()
		seen[i]++
		mu.Unlock()
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("ParallelFor visited %d %d times", i, c)
		}
	}
	workers := Workers(n)
	hits := make([]int, workers)
	ParallelChunks(n, workers, func(w, lo, hi int) {
		hits[w] = hi - lo
	})
	total := 0
	for _, h := range hits {
		total += h
	}
	if total != n {
		t.Fatalf("ParallelChunks covered %d of %d items", total, n)
	}
	ran := 0
	ParallelWorkers(1, func(w int) { ran++ })
	if ran != 1 {
		t.Fatalf("ParallelWorkers(1) ran %d times", ran)
	}
	if Default.Counter("parallel/regions").Value() == 0 && workers > 1 {
		t.Error("parallel regions not counted")
	}
	if g := Default.Gauge("parallel/workers").Value(); g != 0 {
		t.Errorf("workers gauge = %v after all regions ended, want 0", g)
	}
}

func TestReportRoundTripAndFindSpan(t *testing.T) {
	col := withSink(t)
	Default.Counter("spmv/CSR/calls").Add(5)
	Default.Histogram("spmv/CSR/rows_per_s", RateBuckets).Observe(1e6)
	ctx, root := Start(context.Background(), "table")
	_, f := Start(ctx, "corpus/features")
	f.End()
	root.End()

	rep := col.Report("table", []string{"-n", "9"})
	if rep.NumCPU < 1 || rep.GoVersion == "" {
		t.Errorf("host fingerprint incomplete: %+v", rep)
	}
	path := filepath.Join(t.TempDir(), "r.json")
	if err := WriteReport(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Command != "table" || len(got.Spans) != 1 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.FindSpan("corpus/features") == nil {
		t.Error("FindSpan failed to locate corpus/features")
	}
	if got.FindSpan("nope") != nil {
		t.Error("FindSpan matched a missing path")
	}
	if got.Metrics.Counters["spmv/CSR/calls"] != 5 {
		t.Errorf("metrics lost in round trip: %+v", got.Metrics.Counters)
	}
	if h := got.Metrics.Histograms["spmv/CSR/rows_per_s"]; h.Count != 1 {
		t.Errorf("histogram lost in round trip: %+v", h)
	}
	if _, err := ReadReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("reading a missing report succeeded")
	}
}

func TestWriteTree(t *testing.T) {
	col := withSink(t)
	ctx, root := Start(context.Background(), "run")
	_, ch := Start(ctx, "stage")
	ch.SetMetric("rows", 10)
	ch.End()
	root.End()
	var buf bytes.Buffer
	if err := WriteTree(&buf, col.Roots()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "run") || !strings.Contains(out, "  stage") ||
		!strings.Contains(out, "rows=10") {
		t.Errorf("tree rendering missing content:\n%s", out)
	}
}

func TestServeExposesExpvarAndPprof(t *testing.T) {
	withSink(t)
	Default.Counter("served/metric").Add(3)
	addr, stop, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen in this environment: %v", err)
	}
	defer func() {
		if err := stop(); err != nil {
			t.Errorf("stop: %v", err)
		}
	}()
	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	vars := get("/debug/vars")
	if !strings.Contains(vars, "spmvselect_obs") || !strings.Contains(vars, "served/metric") {
		t.Errorf("/debug/vars missing registry: %.200s", vars)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Errorf("/debug/pprof/ unexpected: %.200s", idx)
	}
}

// BenchmarkObsOverhead measures the disabled-path cost of the span API —
// the price every instrumented call site pays when no sink is
// registered. The acceptance bar is < 2 ns/op.
func BenchmarkObsOverhead(b *testing.B) {
	SetSink(nil)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "bench")
		sp.End()
	}
}

// BenchmarkObsOverheadNow measures the disabled kernel-observation
// pattern (Now + zero-time check).
func BenchmarkObsOverheadNow(b *testing.B) {
	SetSink(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ts := Now(); !ts.IsZero() {
			b.Fatal("enabled during benchmark")
		}
	}
}

// BenchmarkSpanEnabled is the enabled-path cost, for the record.
func BenchmarkSpanEnabled(b *testing.B) {
	SetSink(NewCollector())
	defer func() { SetSink(nil); Default.Reset() }()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "bench")
		sp.End()
	}
}

// BenchmarkHistogramObserve is the enabled histogram hot path.
func BenchmarkHistogramObserve(b *testing.B) {
	h := newHistogram(RateBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i))
	}
}
