package classify

import (
	"math/rand"
	"sort"
)

// Tree is a CART decision-tree classifier: binary splits chosen by Gini
// impurity reduction, grown depth-first to MaxDepth.
type Tree struct {
	// MaxDepth bounds tree depth (default 10).
	MaxDepth int
	// MinSamplesSplit is the smallest node that may split (default 2).
	MinSamplesSplit int
	// MaxFeatures, when positive, samples that many candidate features
	// per split — the randomisation used by the forest. 0 considers all.
	MaxFeatures int
	// Seed drives feature subsampling when MaxFeatures > 0.
	Seed int64

	root       *treeNode
	classes    int
	fitted     bool
	importance []float64
	nTrain     int
}

type treeNode struct {
	feature     int
	threshold   float64
	left, right *treeNode
	class       int // leaf prediction
	leaf        bool
	counts      []int // class histogram at the node, for explainability
}

// NewTree returns a CART classifier with the given depth bound.
func NewTree(maxDepth int) *Tree {
	return &Tree{MaxDepth: maxDepth, MinSamplesSplit: 2}
}

// Fit grows the tree.
func (m *Tree) Fit(x [][]float64, y []int, classes int) error {
	if err := checkTrainingInput(x, y, classes); err != nil {
		return err
	}
	if m.MaxDepth <= 0 {
		m.MaxDepth = 10
	}
	if m.MinSamplesSplit < 2 {
		m.MinSamplesSplit = 2
	}
	m.classes = classes
	m.importance = make([]float64, len(x[0]))
	m.nTrain = len(x)
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(m.Seed))
	m.root = m.grow(x, y, idx, 0, rng)
	normalize(m.importance)
	m.fitted = true
	return nil
}

// normalize scales a non-negative vector to sum to 1 (no-op when all
// zero).
func normalize(v []float64) {
	s := 0.0
	for _, x := range v {
		s += x
	}
	if s == 0 {
		return
	}
	for i := range v {
		v[i] /= s
	}
}

// grow builds the subtree over the sample indices idx.
func (m *Tree) grow(x [][]float64, y []int, idx []int, depth int, rng *rand.Rand) *treeNode {
	counts := make([]int, m.classes)
	for _, i := range idx {
		counts[y[i]]++
	}
	node := &treeNode{counts: counts, class: argmax1(counts), leaf: true}
	if depth >= m.MaxDepth || len(idx) < m.MinSamplesSplit || pure(counts) {
		return node
	}
	feat, thr, gain, ok := m.bestSplit(x, y, idx, counts, rng)
	if !ok {
		return node
	}
	// Gini importance: impurity decrease weighted by the node's share of
	// the training set.
	m.importance[feat] += gain * float64(len(idx)) / float64(m.nTrain)
	var left, right []int
	for _, i := range idx {
		if x[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return node
	}
	node.leaf = false
	node.feature = feat
	node.threshold = thr
	node.left = m.grow(x, y, left, depth+1, rng)
	node.right = m.grow(x, y, right, depth+1, rng)
	return node
}

func pure(counts []int) bool {
	nz := 0
	for _, c := range counts {
		if c > 0 {
			nz++
		}
	}
	return nz <= 1
}

// bestSplit scans candidate features for the threshold with the lowest
// weighted Gini impurity, using the sorted-scan incremental update.
func (m *Tree) bestSplit(x [][]float64, y []int, idx []int, parentCounts []int, rng *rand.Rand) (feat int, thr, gain float64, ok bool) {
	d := len(x[0])
	features := make([]int, d)
	for i := range features {
		features[i] = i
	}
	if m.MaxFeatures > 0 && m.MaxFeatures < d {
		rng.Shuffle(d, func(i, j int) { features[i], features[j] = features[j], features[i] })
		features = features[:m.MaxFeatures]
	}

	n := float64(len(idx))
	bestGain := 1e-12
	parentGini := giniFromCounts(parentCounts, len(idx))

	type fv struct {
		v float64
		y int
	}
	vals := make([]fv, len(idx))
	leftCounts := make([]int, m.classes)
	rightCounts := make([]int, m.classes)

	for _, f := range features {
		for k, i := range idx {
			vals[k] = fv{x[i][f], y[i]}
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })
		if vals[0].v == vals[len(vals)-1].v {
			continue
		}
		copy(rightCounts, parentCounts)
		for c := range leftCounts {
			leftCounts[c] = 0
		}
		for k := 0; k < len(vals)-1; k++ {
			leftCounts[vals[k].y]++
			rightCounts[vals[k].y]--
			if vals[k].v == vals[k+1].v {
				continue
			}
			nl, nr := k+1, len(vals)-k-1
			g := (float64(nl)*giniFromCounts(leftCounts, nl) +
				float64(nr)*giniFromCounts(rightCounts, nr)) / n
			if gn := parentGini - g; gn > bestGain {
				bestGain = gn
				feat = f
				thr = (vals[k].v + vals[k+1].v) / 2
				ok = true
			}
		}
	}
	return feat, thr, bestGain, ok
}

// giniFromCounts returns 1 - sum p_i^2 over a class histogram of total n.
func giniFromCounts(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	s := 0.0
	for _, c := range counts {
		p := float64(c) / float64(n)
		s += p * p
	}
	return 1 - s
}

// Predict walks the tree.
func (m *Tree) Predict(x []float64) int {
	if !m.fitted {
		return 0
	}
	n := m.root
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.class
}

// Importances returns the normalised Gini feature importances (summing
// to 1 unless the tree is a single leaf). Callers must not modify the
// slice.
func (m *Tree) Importances() []float64 { return m.importance }

// Depth returns the height of the fitted tree (leaf-only tree is 0).
func (m *Tree) Depth() int { return depthOf(m.root) }

func depthOf(n *treeNode) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

var _ Classifier = (*Tree)(nil)
