package classify

import (
	"math"
)

// LogReg is multinomial (softmax) logistic regression trained by
// full-batch gradient descent with momentum and L2 regularisation. It is
// both a supervised baseline and the "LR" cluster-labelling rule of the
// semi-supervised pipeline.
type LogReg struct {
	// Epochs is the number of full-batch descent steps (default 300).
	Epochs int
	// LR is the learning rate (default 0.5; features are scaled to
	// [0, 1] upstream, so a large rate is stable).
	LR float64
	// L2 is the ridge penalty (default 1e-4).
	L2 float64

	w       [][]float64 // classes x (features+1); last column is bias
	classes int
	fitted  bool
}

// NewLogReg returns a model with the defaults above.
func NewLogReg() *LogReg { return &LogReg{} }

// Fit minimises the softmax cross-entropy.
func (m *LogReg) Fit(x [][]float64, y []int, classes int) error {
	if err := checkTrainingInput(x, y, classes); err != nil {
		return err
	}
	if m.Epochs <= 0 {
		m.Epochs = 300
	}
	if m.LR <= 0 {
		m.LR = 0.5
	}
	if m.L2 < 0 {
		m.L2 = 1e-4
	}
	d := len(x[0])
	m.classes = classes
	m.w = make([][]float64, classes)
	vel := make([][]float64, classes)
	grad := make([][]float64, classes)
	for c := range m.w {
		m.w[c] = make([]float64, d+1)
		vel[c] = make([]float64, d+1)
		grad[c] = make([]float64, d+1)
	}

	const momentum = 0.9
	n := float64(len(x))
	probs := make([]float64, classes)
	for epoch := 0; epoch < m.Epochs; epoch++ {
		for c := range grad {
			for j := range grad[c] {
				grad[c][j] = 0
			}
		}
		for i, row := range x {
			m.softmax(row, probs)
			for c := 0; c < classes; c++ {
				g := probs[c]
				if c == y[i] {
					g -= 1
				}
				gc := grad[c]
				for j, v := range row {
					gc[j] += g * v
				}
				gc[d] += g
			}
		}
		for c := 0; c < classes; c++ {
			for j := 0; j <= d; j++ {
				g := grad[c][j]/n + m.L2*m.w[c][j]
				vel[c][j] = momentum*vel[c][j] - m.LR*g
				m.w[c][j] += vel[c][j]
			}
		}
	}
	m.fitted = true
	return nil
}

// softmax fills out with class probabilities for row.
func (m *LogReg) softmax(row []float64, out []float64) {
	maxZ := math.Inf(-1)
	d := len(row)
	for c := 0; c < m.classes; c++ {
		z := m.w[c][d]
		for j, v := range row {
			z += m.w[c][j] * v
		}
		out[c] = z
		if z > maxZ {
			maxZ = z
		}
	}
	sum := 0.0
	for c := range out[:m.classes] {
		out[c] = math.Exp(out[c] - maxZ)
		sum += out[c]
	}
	for c := range out[:m.classes] {
		out[c] /= sum
	}
}

// Predict returns the argmax class.
func (m *LogReg) Predict(x []float64) int {
	if !m.fitted {
		return 0
	}
	probs := make([]float64, m.classes)
	m.softmax(x, probs)
	return argmax(probs)
}

// Proba returns the class-probability vector for x, used by the
// explainability tooling.
func (m *LogReg) Proba(x []float64) []float64 {
	probs := make([]float64, m.classes)
	if m.fitted {
		m.softmax(x, probs)
	}
	return probs
}

var _ Classifier = (*LogReg)(nil)
