package classify

import (
	"fmt"
	"math"
	"math/rand"
)

// CNN is a small convolutional network over DensityImage encodings,
// re-implementing in miniature the CNN format classifier of Zhao et al.
// that the paper benchmarks: two conv+ReLU+maxpool stages followed by a
// softmax layer, trained with minibatch SGD and momentum.
//
// Architecture (for ImageSize 16):
//
//	input 1x16x16 -> conv 3x3 (C1 filters) -> ReLU -> maxpool 2
//	             -> conv 3x3 (C2 filters) -> ReLU -> maxpool 2
//	             -> fully connected -> softmax
//
// As in the paper, the model is markedly more expensive to train than
// the classical baselines and suffers on unbalanced training sets.
type CNN struct {
	// Epochs over the training set (default 30).
	Epochs int
	// Batch is the minibatch size (default 32).
	Batch int
	// LR is the learning rate (default 0.05).
	LR float64
	// Seed drives weight init and shuffling.
	Seed int64

	c1, c2  int       // filter counts
	conv1   []float64 // c1 x 1 x 3 x 3
	bias1   []float64
	conv2   []float64 // c2 x c1 x 3 x 3
	bias2   []float64
	fc      []float64 // classes x fcIn
	biasFC  []float64
	classes int
	fitted  bool
}

// Layer geometry for ImageSize 16 with 3x3 valid convolutions and 2x2
// pooling: 16 -> 14 -> 7 -> 5 -> 2.
const (
	cnnIn    = ImageSize    // 16
	cnnC1Out = cnnIn - 2    // 14
	cnnP1Out = cnnC1Out / 2 // 7
	cnnC2Out = cnnP1Out - 2 // 5
	cnnP2Out = cnnC2Out / 2 // 2
)

// NewCNN returns a CNN with the defaults above.
func NewCNN(seed int64) *CNN { return &CNN{Epochs: 30, Batch: 32, LR: 0.05, Seed: seed, c1: 6, c2: 12} }

// cnnState holds one sample's forward activations, reused across passes.
type cnnState struct {
	a1   []float64 // c1 x 14 x 14 post-ReLU
	p1   []float64 // c1 x 7 x 7
	arg1 []int     // argmax index within the input of each pooled cell
	a2   []float64 // c2 x 5 x 5 post-ReLU
	p2   []float64 // c2 x 2 x 2
	arg2 []int
	out  []float64 // class scores -> probabilities
}

func (m *CNN) newState() *cnnState {
	return &cnnState{
		a1:   make([]float64, m.c1*cnnC1Out*cnnC1Out),
		p1:   make([]float64, m.c1*cnnP1Out*cnnP1Out),
		arg1: make([]int, m.c1*cnnP1Out*cnnP1Out),
		a2:   make([]float64, m.c2*cnnC2Out*cnnC2Out),
		p2:   make([]float64, m.c2*cnnP2Out*cnnP2Out),
		arg2: make([]int, m.c2*cnnP2Out*cnnP2Out),
		out:  make([]float64, m.classes),
	}
}

func (m *CNN) fcIn() int { return m.c2 * cnnP2Out * cnnP2Out }

// Fit trains the network. Input rows must be DensityImage vectors of
// length ImageSize*ImageSize.
func (m *CNN) Fit(x [][]float64, y []int, classes int) error {
	if err := checkTrainingInput(x, y, classes); err != nil {
		return err
	}
	if len(x[0]) != cnnIn*cnnIn {
		return fmt.Errorf("classify: CNN expects %d-pixel images, got %d features", cnnIn*cnnIn, len(x[0]))
	}
	if m.Epochs <= 0 {
		m.Epochs = 30
	}
	if m.Batch <= 0 {
		m.Batch = 32
	}
	if m.LR <= 0 {
		m.LR = 0.05
	}
	if m.c1 == 0 {
		m.c1 = 6
	}
	if m.c2 == 0 {
		m.c2 = 12
	}
	m.classes = classes
	rng := rand.New(rand.NewSource(m.Seed))

	// He initialisation.
	initN := func(n int, fanIn float64) []float64 {
		w := make([]float64, n)
		s := math.Sqrt(2 / fanIn)
		for i := range w {
			w[i] = rng.NormFloat64() * s
		}
		return w
	}
	m.conv1 = initN(m.c1*9, 9)
	m.bias1 = make([]float64, m.c1)
	m.conv2 = initN(m.c2*m.c1*9, float64(m.c1*9))
	m.bias2 = make([]float64, m.c2)
	m.fc = initN(classes*m.fcIn(), float64(m.fcIn()))
	m.biasFC = make([]float64, classes)

	// Momentum buffers.
	vConv1 := make([]float64, len(m.conv1))
	vBias1 := make([]float64, len(m.bias1))
	vConv2 := make([]float64, len(m.conv2))
	vBias2 := make([]float64, len(m.bias2))
	vFC := make([]float64, len(m.fc))
	vBiasFC := make([]float64, len(m.biasFC))

	gConv1 := make([]float64, len(m.conv1))
	gBias1 := make([]float64, len(m.bias1))
	gConv2 := make([]float64, len(m.conv2))
	gBias2 := make([]float64, len(m.bias2))
	gFC := make([]float64, len(m.fc))
	gBiasFC := make([]float64, len(m.biasFC))

	st := m.newState()
	dP2 := make([]float64, m.fcIn())
	dA2 := make([]float64, len(st.a2))
	dP1 := make([]float64, len(st.p1))
	dA1 := make([]float64, len(st.a1))

	perm := make([]int, len(x))
	for i := range perm {
		perm[i] = i
	}
	const momentum = 0.9
	for epoch := 0; epoch < m.Epochs; epoch++ {
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for start := 0; start < len(perm); start += m.Batch {
			end := start + m.Batch
			if end > len(perm) {
				end = len(perm)
			}
			zero(gConv1)
			zero(gBias1)
			zero(gConv2)
			zero(gBias2)
			zero(gFC)
			zero(gBiasFC)
			for _, pi := range perm[start:end] {
				img := x[pi]
				m.forward(img, st)
				// Softmax gradient at the output.
				for c := 0; c < classes; c++ {
					d := st.out[c]
					if c == y[pi] {
						d -= 1
					}
					gBiasFC[c] += d
					base := c * m.fcIn()
					for j := 0; j < m.fcIn(); j++ {
						gFC[base+j] += d * st.p2[j]
					}
				}
				// Backprop into the pooled features.
				zero(dP2)
				for c := 0; c < classes; c++ {
					d := st.out[c]
					if c == y[pi] {
						d -= 1
					}
					base := c * m.fcIn()
					for j := 0; j < m.fcIn(); j++ {
						dP2[j] += d * m.fc[base+j]
					}
				}
				// Unpool 2 and ReLU.
				zero(dA2)
				for j, src := range st.arg2 {
					if st.a2[src] > 0 {
						dA2[src] += dP2[j]
					}
				}
				// Conv2 gradients and input gradient.
				zero(dP1)
				m.backConv2(st.p1, dA2, gConv2, gBias2, dP1)
				// Unpool 1 and ReLU.
				zero(dA1)
				for j, src := range st.arg1 {
					if st.a1[src] > 0 {
						dA1[src] += dP1[j]
					}
				}
				// Conv1 gradients.
				m.backConv1(img, dA1, gConv1, gBias1)
			}
			lr := m.LR / float64(end-start)
			sgd(m.conv1, gConv1, vConv1, lr, momentum)
			sgd(m.bias1, gBias1, vBias1, lr, momentum)
			sgd(m.conv2, gConv2, vConv2, lr, momentum)
			sgd(m.bias2, gBias2, vBias2, lr, momentum)
			sgd(m.fc, gFC, vFC, lr, momentum)
			sgd(m.biasFC, gBiasFC, vBiasFC, lr, momentum)
		}
	}
	m.fitted = true
	return nil
}

func zero(v []float64) {
	for i := range v {
		v[i] = 0
	}
}

func sgd(w, g, v []float64, lr, momentum float64) {
	for i := range w {
		v[i] = momentum*v[i] - lr*g[i]
		w[i] += v[i]
	}
}

// forward runs one sample through the network, filling st.
func (m *CNN) forward(img []float64, st *cnnState) {
	// Conv1 + ReLU.
	for f := 0; f < m.c1; f++ {
		w := m.conv1[f*9 : f*9+9]
		b := m.bias1[f]
		for i := 0; i < cnnC1Out; i++ {
			for j := 0; j < cnnC1Out; j++ {
				s := b
				for ki := 0; ki < 3; ki++ {
					row := (i + ki) * cnnIn
					wr := ki * 3
					s += w[wr]*img[row+j] + w[wr+1]*img[row+j+1] + w[wr+2]*img[row+j+2]
				}
				if s < 0 {
					s = 0
				}
				st.a1[(f*cnnC1Out+i)*cnnC1Out+j] = s
			}
		}
	}
	maxPool(st.a1, st.p1, st.arg1, m.c1, cnnC1Out, cnnP1Out)

	// Conv2 + ReLU over c1 channels.
	for f := 0; f < m.c2; f++ {
		b := m.bias2[f]
		for i := 0; i < cnnC2Out; i++ {
			for j := 0; j < cnnC2Out; j++ {
				s := b
				for ch := 0; ch < m.c1; ch++ {
					w := m.conv2[(f*m.c1+ch)*9:]
					base := ch * cnnP1Out * cnnP1Out
					for ki := 0; ki < 3; ki++ {
						row := base + (i+ki)*cnnP1Out
						wr := ki * 3
						s += w[wr]*st.p1[row+j] + w[wr+1]*st.p1[row+j+1] + w[wr+2]*st.p1[row+j+2]
					}
				}
				if s < 0 {
					s = 0
				}
				st.a2[(f*cnnC2Out+i)*cnnC2Out+j] = s
			}
		}
	}
	maxPool(st.a2, st.p2, st.arg2, m.c2, cnnC2Out, cnnP2Out)

	// FC + softmax.
	maxZ := math.Inf(-1)
	for c := 0; c < m.classes; c++ {
		z := m.biasFC[c]
		base := c * m.fcIn()
		for j := 0; j < m.fcIn(); j++ {
			z += m.fc[base+j] * st.p2[j]
		}
		st.out[c] = z
		if z > maxZ {
			maxZ = z
		}
	}
	sum := 0.0
	for c := 0; c < m.classes; c++ {
		st.out[c] = math.Exp(st.out[c] - maxZ)
		sum += st.out[c]
	}
	for c := 0; c < m.classes; c++ {
		st.out[c] /= sum
	}
}

// maxPool performs 2x2 max pooling per channel, recording argmax source
// indices for the backward pass.
func maxPool(in, out []float64, arg []int, channels, inSide, outSide int) {
	for ch := 0; ch < channels; ch++ {
		for i := 0; i < outSide; i++ {
			for j := 0; j < outSide; j++ {
				best := math.Inf(-1)
				bestIdx := 0
				for di := 0; di < 2; di++ {
					for dj := 0; dj < 2; dj++ {
						idx := (ch*inSide+(2*i+di))*inSide + (2*j + dj)
						if in[idx] > best {
							best = in[idx]
							bestIdx = idx
						}
					}
				}
				o := (ch*outSide+i)*outSide + j
				out[o] = best
				arg[o] = bestIdx
			}
		}
	}
}

// backConv2 accumulates conv2 weight/bias gradients from upstream dA2
// and propagates the gradient into dP1.
func (m *CNN) backConv2(p1, dA2, gW, gB, dP1 []float64) {
	for f := 0; f < m.c2; f++ {
		for i := 0; i < cnnC2Out; i++ {
			for j := 0; j < cnnC2Out; j++ {
				d := dA2[(f*cnnC2Out+i)*cnnC2Out+j]
				if d == 0 {
					continue
				}
				gB[f] += d
				for ch := 0; ch < m.c1; ch++ {
					wBase := (f*m.c1 + ch) * 9
					pBase := ch * cnnP1Out * cnnP1Out
					for ki := 0; ki < 3; ki++ {
						row := pBase + (i+ki)*cnnP1Out
						wr := wBase + ki*3
						gW[wr] += d * p1[row+j]
						gW[wr+1] += d * p1[row+j+1]
						gW[wr+2] += d * p1[row+j+2]
						dP1[row+j] += d * m.conv2[wr]
						dP1[row+j+1] += d * m.conv2[wr+1]
						dP1[row+j+2] += d * m.conv2[wr+2]
					}
				}
			}
		}
	}
}

// backConv1 accumulates conv1 weight/bias gradients from upstream dA1.
func (m *CNN) backConv1(img, dA1, gW, gB []float64) {
	for f := 0; f < m.c1; f++ {
		wBase := f * 9
		for i := 0; i < cnnC1Out; i++ {
			for j := 0; j < cnnC1Out; j++ {
				d := dA1[(f*cnnC1Out+i)*cnnC1Out+j]
				if d == 0 {
					continue
				}
				gB[f] += d
				for ki := 0; ki < 3; ki++ {
					row := (i + ki) * cnnIn
					wr := wBase + ki*3
					gW[wr] += d * img[row+j]
					gW[wr+1] += d * img[row+j+1]
					gW[wr+2] += d * img[row+j+2]
				}
			}
		}
	}
}

// Predict returns the argmax class for one image vector.
func (m *CNN) Predict(x []float64) int {
	if !m.fitted || len(x) != cnnIn*cnnIn {
		return 0
	}
	st := m.newState()
	m.forward(x, st)
	return argmax(st.out)
}

var _ Classifier = (*CNN)(nil)
