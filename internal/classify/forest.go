package classify

import (
	"context"
	"math"
	"math/rand"

	"repro/internal/obs"
)

// Forest is a random forest: bootstrap-sampled CART trees with per-split
// feature subsampling, majority-voted. The paper's configuration is 100
// estimators with maximum depth 6.
type Forest struct {
	// Trees is the number of estimators (default 100, the paper's
	// setting).
	Trees int
	// MaxDepth bounds each tree (default 6, the paper's setting).
	MaxDepth int
	// MaxFeatures per split; 0 selects sqrt(d), the standard heuristic.
	MaxFeatures int
	// Seed drives bootstrapping and feature subsampling.
	Seed int64

	trees   []*Tree
	classes int
	fitted  bool
}

// NewForest returns a forest with the paper's hyperparameters.
func NewForest(seed int64) *Forest {
	return &Forest{Trees: 100, MaxDepth: 6, Seed: seed}
}

// Fit trains the estimators in parallel.
func (m *Forest) Fit(x [][]float64, y []int, classes int) error {
	if err := checkTrainingInput(x, y, classes); err != nil {
		return err
	}
	if m.Trees <= 0 {
		m.Trees = 100
	}
	if m.MaxDepth <= 0 {
		m.MaxDepth = 6
	}
	mf := m.MaxFeatures
	if mf <= 0 {
		mf = int(math.Sqrt(float64(len(x[0]))))
		if mf < 1 {
			mf = 1
		}
	}
	m.classes = classes
	m.trees = make([]*Tree, m.Trees)

	// Pre-draw bootstrap samples sequentially for determinism, then
	// train trees in parallel through the shared obs pool (so forest
	// training shows up in the parallel/regions and parallel/workers
	// metrics like every other parallel section). Each tree's seed is
	// fixed before the fan-out and each goroutine writes only its own
	// slot, so the fitted forest is identical at any worker count.
	rng := rand.New(rand.NewSource(m.Seed))
	boots := make([][][]float64, m.Trees)
	bootY := make([][]int, m.Trees)
	seeds := make([]int64, m.Trees)
	for t := 0; t < m.Trees; t++ {
		bx := make([][]float64, len(x))
		by := make([]int, len(x))
		for i := range bx {
			j := rng.Intn(len(x))
			bx[i] = x[j]
			by[i] = y[j]
		}
		boots[t], bootY[t] = bx, by
		seeds[t] = rng.Int63()
	}

	err := obs.ParallelForErr(context.Background(), m.Trees, 0, func(_ context.Context, t int) error {
		tree := NewTree(m.MaxDepth)
		tree.MaxFeatures = mf
		tree.Seed = seeds[t]
		if err := tree.Fit(boots[t], bootY[t], classes); err != nil {
			return err
		}
		m.trees[t] = tree
		return nil
	})
	if err != nil {
		return err
	}
	m.fitted = true
	return nil
}

// Predict majority-votes the estimators.
func (m *Forest) Predict(x []float64) int {
	if !m.fitted {
		return 0
	}
	votes := make([]int, m.classes)
	for _, t := range m.trees {
		votes[t.Predict(x)]++
	}
	return argmax1(votes)
}

// PredictAll classifies every row, fanning the rows out over the shared
// obs worker pool; each row walks all estimators, so per-item work is
// far above the dispatch cost. The trees are read-only after Fit.
func (m *Forest) PredictAll(x [][]float64) []int {
	out := make([]int, len(x))
	obs.ParallelFor(len(x), func(i int) {
		out[i] = m.Predict(x[i])
	})
	return out
}

// Proba returns the per-class vote shares, the forest's probability
// estimate.
func (m *Forest) Proba(x []float64) []float64 {
	p := make([]float64, m.classes)
	if !m.fitted {
		return p
	}
	for _, t := range m.trees {
		p[t.Predict(x)]++
	}
	for i := range p {
		p[i] /= float64(len(m.trees))
	}
	return p
}

// Importances returns the mean normalised Gini importances of the
// estimators — which Table 1 features actually drive format selection.
func (m *Forest) Importances() []float64 {
	if !m.fitted || len(m.trees) == 0 {
		return nil
	}
	imp := make([]float64, len(m.trees[0].Importances()))
	for _, t := range m.trees {
		for j, v := range t.Importances() {
			imp[j] += v
		}
	}
	normalize(imp)
	return imp
}

var _ Classifier = (*Forest)(nil)
