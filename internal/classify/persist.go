package classify

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Gob persistence for the classical models, so a fitted supervised
// classifier can ship inside a saved model artifact (see internal/serve)
// the same way the semi-supervised model does. Each supported model
// implements GobEncoder/GobDecoder over an exported wire struct, keeping
// the in-memory representations (unexported fields, pointer-linked
// trees) free to change without breaking saved artifacts.
//
// Supported: KNN, Tree, Forest, LogReg — the models the paper's
// pipeline actually deploys (KNN as the supervised counterpart of
// centroid clustering, LR/RF also being the cluster-labelling rules).

func init() {
	// Register the concrete types so a Classifier interface field
	// round-trips through gob.
	gob.Register(&KNN{})
	gob.Register(&Tree{})
	gob.Register(&Forest{})
	gob.Register(&LogReg{})
}

// Persistable reports whether a classifier can be gob-serialised (and
// therefore embedded in a saved model artifact).
func Persistable(c Classifier) bool {
	switch c.(type) {
	case *KNN, *Tree, *Forest, *LogReg:
		return true
	}
	return false
}

// ---------------------------------------------------------------------
// KNN

type knnGob struct {
	K        int
	Weighted bool
	X        [][]float64
	Y        []int
	Classes  int
	Fitted   bool
}

// GobEncode serialises the memorised training set and hyperparameters.
func (m *KNN) GobEncode() ([]byte, error) {
	return encodeWire(knnGob{
		K: m.K, Weighted: m.Weighted,
		X: m.x, Y: m.y, Classes: m.classes, Fitted: m.fitted,
	})
}

// GobDecode restores a KNN written by GobEncode.
func (m *KNN) GobDecode(data []byte) error {
	var w knnGob
	if err := decodeWire(data, &w); err != nil {
		return fmt.Errorf("classify: decoding KNN: %w", err)
	}
	if w.Fitted && len(w.X) != len(w.Y) {
		return fmt.Errorf("classify: decoded KNN has %d rows but %d labels", len(w.X), len(w.Y))
	}
	*m = KNN{K: w.K, Weighted: w.Weighted, x: w.X, y: w.Y, classes: w.Classes, fitted: w.Fitted}
	return nil
}

// ---------------------------------------------------------------------
// Tree

// treeNodeGob is one node of the flattened tree; children are indices
// into the node slice (-1 for none).
type treeNodeGob struct {
	Feature     int
	Threshold   float64
	Left, Right int
	Class       int
	Leaf        bool
	Counts      []int
}

type treeGob struct {
	MaxDepth        int
	MinSamplesSplit int
	MaxFeatures     int
	Seed            int64
	Nodes           []treeNodeGob // preorder; empty when unfitted
	Classes         int
	Fitted          bool
	Importance      []float64
	NTrain          int
}

// flatten appends the subtree rooted at n and returns its index.
func flatten(n *treeNode, out *[]treeNodeGob) int {
	idx := len(*out)
	*out = append(*out, treeNodeGob{
		Feature: n.feature, Threshold: n.threshold,
		Left: -1, Right: -1,
		Class: n.class, Leaf: n.leaf, Counts: n.counts,
	})
	if !n.leaf {
		(*out)[idx].Left = flatten(n.left, out)
		(*out)[idx].Right = flatten(n.right, out)
	}
	return idx
}

// unflatten rebuilds the subtree rooted at index i.
func unflatten(nodes []treeNodeGob, i int) (*treeNode, error) {
	if i < 0 || i >= len(nodes) {
		return nil, fmt.Errorf("classify: decoded tree node index %d outside [0, %d)", i, len(nodes))
	}
	w := nodes[i]
	n := &treeNode{
		feature: w.Feature, threshold: w.Threshold,
		class: w.Class, leaf: w.Leaf, counts: w.Counts,
	}
	if !n.leaf {
		var err error
		if n.left, err = unflatten(nodes, w.Left); err != nil {
			return nil, err
		}
		if n.right, err = unflatten(nodes, w.Right); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// GobEncode serialises the fitted tree as a flattened node array.
func (m *Tree) GobEncode() ([]byte, error) {
	w := treeGob{
		MaxDepth: m.MaxDepth, MinSamplesSplit: m.MinSamplesSplit,
		MaxFeatures: m.MaxFeatures, Seed: m.Seed,
		Classes: m.classes, Fitted: m.fitted,
		Importance: m.importance, NTrain: m.nTrain,
	}
	if m.root != nil {
		flatten(m.root, &w.Nodes)
	}
	return encodeWire(w)
}

// GobDecode restores a Tree written by GobEncode.
func (m *Tree) GobDecode(data []byte) error {
	var w treeGob
	if err := decodeWire(data, &w); err != nil {
		return fmt.Errorf("classify: decoding tree: %w", err)
	}
	t := Tree{
		MaxDepth: w.MaxDepth, MinSamplesSplit: w.MinSamplesSplit,
		MaxFeatures: w.MaxFeatures, Seed: w.Seed,
		classes: w.Classes, fitted: w.Fitted,
		importance: w.Importance, nTrain: w.NTrain,
	}
	if len(w.Nodes) > 0 {
		root, err := unflatten(w.Nodes, 0)
		if err != nil {
			return err
		}
		t.root = root
	} else if w.Fitted {
		return fmt.Errorf("classify: decoded tree is fitted but has no nodes")
	}
	*m = t
	return nil
}

// ---------------------------------------------------------------------
// Forest

type forestGob struct {
	Trees       int
	MaxDepth    int
	MaxFeatures int
	Seed        int64
	Estimators  []*Tree // each serialises through Tree's GobEncode
	Classes     int
	Fitted      bool
}

// GobEncode serialises the forest and its estimators.
func (m *Forest) GobEncode() ([]byte, error) {
	return encodeWire(forestGob{
		Trees: m.Trees, MaxDepth: m.MaxDepth, MaxFeatures: m.MaxFeatures,
		Seed: m.Seed, Estimators: m.trees, Classes: m.classes, Fitted: m.fitted,
	})
}

// GobDecode restores a Forest written by GobEncode.
func (m *Forest) GobDecode(data []byte) error {
	var w forestGob
	if err := decodeWire(data, &w); err != nil {
		return fmt.Errorf("classify: decoding forest: %w", err)
	}
	if w.Fitted && len(w.Estimators) == 0 {
		return fmt.Errorf("classify: decoded forest is fitted but has no estimators")
	}
	*m = Forest{
		Trees: w.Trees, MaxDepth: w.MaxDepth, MaxFeatures: w.MaxFeatures,
		Seed: w.Seed, trees: w.Estimators, classes: w.Classes, fitted: w.Fitted,
	}
	return nil
}

// ---------------------------------------------------------------------
// LogReg

type logRegGob struct {
	Epochs  int
	LR      float64
	L2      float64
	W       [][]float64
	Classes int
	Fitted  bool
}

// GobEncode serialises the weight matrix and hyperparameters.
func (m *LogReg) GobEncode() ([]byte, error) {
	return encodeWire(logRegGob{
		Epochs: m.Epochs, LR: m.LR, L2: m.L2,
		W: m.w, Classes: m.classes, Fitted: m.fitted,
	})
}

// GobDecode restores a LogReg written by GobEncode.
func (m *LogReg) GobDecode(data []byte) error {
	var w logRegGob
	if err := decodeWire(data, &w); err != nil {
		return fmt.Errorf("classify: decoding logreg: %w", err)
	}
	if w.Fitted && len(w.W) != w.Classes {
		return fmt.Errorf("classify: decoded logreg has %d weight rows for %d classes", len(w.W), w.Classes)
	}
	*m = LogReg{Epochs: w.Epochs, LR: w.LR, L2: w.L2, w: w.W, classes: w.Classes, fitted: w.Fitted}
	return nil
}

// ---------------------------------------------------------------------

func encodeWire(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeWire(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}
