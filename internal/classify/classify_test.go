package classify

import (
	"container/heap"
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/obs"
	"repro/internal/sparse"
)

// gaussianTask builds a linearly separable 3-class problem.
func gaussianTask(rng *rand.Rand, n int) (x [][]float64, y []int) {
	centres := [][]float64{{0, 0, 0}, {4, 4, 0}, {0, 4, 4}}
	for i := 0; i < n; i++ {
		c := rng.Intn(3)
		p := make([]float64, 3)
		for j := range p {
			p[j] = centres[c][j] + rng.NormFloat64()*0.6
		}
		x = append(x, p)
		y = append(y, c)
	}
	return x, y
}

// xorTask builds a nonlinearly separable 2-class problem (XOR layout)
// that linear models cannot solve but trees must.
func xorTask(rng *rand.Rand, n int) (x [][]float64, y []int) {
	for i := 0; i < n; i++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		cls := 0
		if (a > 0) != (b > 0) {
			cls = 1
		}
		x = append(x, []float64{a, b})
		y = append(y, cls)
	}
	return x, y
}

func accuracy(pred, want []int) float64 {
	hit := 0
	for i := range pred {
		if pred[i] == want[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(pred))
}

// fitAndScore trains on the first 70% and scores on the rest.
func fitAndScore(t *testing.T, m Classifier, x [][]float64, y []int, classes int) float64 {
	t.Helper()
	cut := len(x) * 7 / 10
	if err := m.Fit(x[:cut], y[:cut], classes); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	return accuracy(PredictAll(m, x[cut:]), y[cut:])
}

func TestAllModelsLearnGaussianTask(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := gaussianTask(rng, 600)
	models := map[string]Classifier{
		"knn":    NewKNN(5),
		"tree":   NewTree(8),
		"forest": NewForest(1),
		"logreg": NewLogReg(),
		"svm":    NewSVM(1),
		"gboost": func() *GBoost { g := NewGBoost(); g.Rounds = 30; return g }(),
	}
	for name, m := range models {
		if acc := fitAndScore(t, m, x, y, 3); acc < 0.9 {
			t.Errorf("%s: accuracy %.3f on separable gaussians, want >= 0.9", name, acc)
		}
	}
}

func TestTreesSolveXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := xorTask(rng, 600)
	for name, m := range map[string]Classifier{
		"tree":   NewTree(8),
		"forest": NewForest(2),
		"gboost": func() *GBoost { g := NewGBoost(); g.Rounds = 30; return g }(),
		"knn":    NewKNN(5),
	} {
		if acc := fitAndScore(t, m, x, y, 2); acc < 0.9 {
			t.Errorf("%s: accuracy %.3f on XOR, want >= 0.9", name, acc)
		}
	}
	// A linear model must fail XOR — this guards against the tree tests
	// passing for trivial reasons.
	lin := NewSVM(3)
	if acc := fitAndScore(t, lin, x, y, 2); acc > 0.75 {
		t.Errorf("linear SVM solved XOR (%.3f); the task generator is broken", acc)
	}
}

func TestFitInputValidation(t *testing.T) {
	good := [][]float64{{1, 2}, {3, 4}}
	models := []Classifier{NewKNN(3), NewTree(3), NewForest(1), NewLogReg(), NewSVM(1), NewGBoost()}
	for _, m := range models {
		if err := m.Fit(nil, nil, 2); err == nil {
			t.Errorf("%T: empty input accepted", m)
		}
	}
	models = []Classifier{NewKNN(3), NewTree(3), NewForest(1), NewLogReg(), NewSVM(1), NewGBoost()}
	for _, m := range models {
		if err := m.Fit(good, []int{0}, 2); err == nil {
			t.Errorf("%T: length mismatch accepted", m)
		}
	}
	models = []Classifier{NewKNN(3), NewTree(3), NewForest(1), NewLogReg(), NewSVM(1), NewGBoost()}
	for _, m := range models {
		if err := m.Fit(good, []int{0, 5}, 2); err == nil {
			t.Errorf("%T: out-of-range label accepted", m)
		}
	}
	models = []Classifier{NewKNN(3), NewTree(3), NewForest(1), NewLogReg(), NewSVM(1), NewGBoost()}
	for _, m := range models {
		if err := m.Fit([][]float64{{1}, {1, 2}}, []int{0, 1}, 2); err == nil {
			t.Errorf("%T: ragged input accepted", m)
		}
	}
}

func TestTreeDepthBound(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := gaussianTask(rng, 300)
	tr := NewTree(3)
	if err := tr.Fit(x, y, 3); err != nil {
		t.Fatal(err)
	}
	if d := tr.Depth(); d > 3 {
		t.Errorf("tree depth %d exceeds bound 3", d)
	}
}

func TestTreePureLeafShortCircuit(t *testing.T) {
	// Single-class data must yield a single leaf.
	x := [][]float64{{1}, {2}, {3}}
	y := []int{1, 1, 1}
	tr := NewTree(5)
	if err := tr.Fit(x, y, 2); err != nil {
		t.Fatal(err)
	}
	if tr.Depth() != 0 {
		t.Errorf("pure data grew depth %d", tr.Depth())
	}
	if tr.Predict([]float64{0}) != 1 {
		t.Error("pure tree mispredicts")
	}
}

func TestForestDeterministicGivenSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := gaussianTask(rng, 200)
	a, b := NewForest(9), NewForest(9)
	a.Trees, b.Trees = 10, 10
	if err := a.Fit(x, y, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(x, y, 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		p := []float64{rng.Float64() * 5, rng.Float64() * 5, rng.Float64() * 5}
		if a.Predict(p) != b.Predict(p) {
			t.Fatal("same-seed forests disagree")
		}
	}
}

func TestKNNExactNeighbours(t *testing.T) {
	x := [][]float64{{0}, {1}, {10}, {11}, {12}}
	y := []int{0, 0, 1, 1, 1}
	m := NewKNN(3)
	if err := m.Fit(x, y, 2); err != nil {
		t.Fatal(err)
	}
	if m.Predict([]float64{0.4}) != 0 {
		t.Error("query near class 0 misclassified")
	}
	if m.Predict([]float64{10.6}) != 1 {
		t.Error("query near class 1 misclassified")
	}
}

func TestKNNWeighted(t *testing.T) {
	// Two class-0 points far away, one class-1 point exactly at the
	// query: inverse-distance weighting must prefer class 1 while
	// uniform voting picks class 0.
	x := [][]float64{{0}, {5.2}, {5.4}}
	y := []int{1, 0, 0}
	uni := NewKNN(3)
	if err := uni.Fit(x, y, 2); err != nil {
		t.Fatal(err)
	}
	wgt := &KNN{K: 3, Weighted: true}
	if err := wgt.Fit(x, y, 2); err != nil {
		t.Fatal(err)
	}
	q := []float64{0.01}
	if uni.Predict(q) != 0 {
		t.Error("uniform KNN should be fooled by the far majority")
	}
	if wgt.Predict(q) != 1 {
		t.Error("weighted KNN should favour the near neighbour")
	}
}

func TestLogRegProbabilitiesSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, y := gaussianTask(rng, 200)
	m := NewLogReg()
	if err := m.Fit(x, y, 3); err != nil {
		t.Fatal(err)
	}
	p := m.Proba(x[0])
	sum := 0.0
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("probability %v outside [0,1]", v)
		}
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestUnbalancedDataMajorityPull(t *testing.T) {
	// 95% of labels are class 0: every model should still beat the
	// majority-class baseline on the minority when it is separable.
	rng := rand.New(rand.NewSource(7))
	var x [][]float64
	var y []int
	for i := 0; i < 500; i++ {
		if i%20 == 0 {
			x = append(x, []float64{10 + rng.NormFloat64()*0.2})
			y = append(y, 1)
		} else {
			x = append(x, []float64{rng.NormFloat64()})
			y = append(y, 0)
		}
	}
	for name, m := range map[string]Classifier{
		"tree": NewTree(4), "knn": NewKNN(3),
	} {
		if err := m.Fit(x, y, 2); err != nil {
			t.Fatal(err)
		}
		if m.Predict([]float64{10}) != 1 {
			t.Errorf("%s: minority class unlearnable even when separable", name)
		}
	}
}

func TestDensityImageProperties(t *testing.T) {
	// 96 divides evenly into 16 cells (6 entries each), so all diagonal
	// cells carry the same count and normalise to exactly 1.
	tr := sparse.NewTriplet(96, 96)
	for i := 0; i < 96; i++ {
		if err := tr.Add(i, i, 1); err != nil {
			t.Fatal(err)
		}
	}
	img := DensityImage(tr.ToCSR())
	if len(img) != ImageSize*ImageSize {
		t.Fatalf("image length %d", len(img))
	}
	// A diagonal matrix fills exactly the diagonal cells with the same
	// normalised intensity 1, everything else 0.
	for i := 0; i < ImageSize; i++ {
		for j := 0; j < ImageSize; j++ {
			v := img[i*ImageSize+j]
			if i == j && v != 1 {
				t.Errorf("diagonal cell (%d,%d) = %v, want 1", i, j, v)
			}
			if i != j && v != 0 {
				t.Errorf("off-diagonal cell (%d,%d) = %v, want 0", i, j, v)
			}
		}
	}
	if n := len(DensityImages([]*sparse.CSR{tr.ToCSR(), tr.ToCSR()})); n != 2 {
		t.Error("DensityImages batch wrong")
	}
}

func TestCNNLearnsImageTask(t *testing.T) {
	if testing.Short() {
		t.Skip("CNN training in -short mode")
	}
	// Distinguish diagonal-band images from top-row-heavy images, a
	// caricature of the ELL vs HYB distinction.
	rng := rand.New(rand.NewSource(8))
	var x [][]float64
	var y []int
	for n := 0; n < 240; n++ {
		img := make([]float64, ImageSize*ImageSize)
		if n%2 == 0 {
			for i := 0; i < ImageSize; i++ {
				img[i*ImageSize+i] = 0.8 + rng.Float64()*0.2
			}
			y = append(y, 0)
		} else {
			for j := 0; j < ImageSize; j++ {
				img[j] = 0.8 + rng.Float64()*0.2
			}
			y = append(y, 1)
		}
		// Noise.
		for k := 0; k < 20; k++ {
			img[rng.Intn(len(img))] += rng.Float64() * 0.3
		}
		x = append(x, img)
	}
	m := NewCNN(1)
	m.Epochs = 15
	if acc := fitAndScore(t, m, x, y, 2); acc < 0.9 {
		t.Errorf("CNN accuracy %.3f on trivial image task", acc)
	}
}

func TestCNNRejectsWrongInputSize(t *testing.T) {
	m := NewCNN(1)
	if err := m.Fit([][]float64{{1, 2, 3}}, []int{0}, 2); err == nil {
		t.Error("CNN accepted non-image input")
	}
}

// TestQuickPredictionInRange property-tests that all models predict
// in-range classes for arbitrary inputs after training on random data.
func TestQuickPredictionInRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d, classes := 30+rng.Intn(40), 2+rng.Intn(4), 2+rng.Intn(3)
		x := make([][]float64, n)
		y := make([]int, n)
		for i := range x {
			x[i] = make([]float64, d)
			for j := range x[i] {
				x[i][j] = rng.NormFloat64()
			}
			y[i] = rng.Intn(classes)
		}
		models := []Classifier{
			NewKNN(3), NewTree(4),
			func() *Forest { f := NewForest(seed); f.Trees = 5; return f }(),
			func() *GBoost { g := NewGBoost(); g.Rounds = 5; return g }(),
			func() *SVM { s := NewSVM(seed); s.Epochs = 3; return s }(),
			func() *LogReg { l := NewLogReg(); l.Epochs = 20; return l }(),
		}
		for _, m := range models {
			if err := m.Fit(x, y, classes); err != nil {
				return false
			}
			for trial := 0; trial < 5; trial++ {
				q := make([]float64, d)
				for j := range q {
					q[j] = rng.NormFloat64() * 3
				}
				if p := m.Predict(q); p < 0 || p >= classes {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestTreeImportances(t *testing.T) {
	// Feature 1 fully determines the label; feature 0 is noise. The
	// importance mass must concentrate on feature 1.
	rng := rand.New(rand.NewSource(9))
	var x [][]float64
	var y []int
	for i := 0; i < 300; i++ {
		sig := rng.Float64()
		cls := 0
		if sig > 0.5 {
			cls = 1
		}
		x = append(x, []float64{rng.Float64(), sig})
		y = append(y, cls)
	}
	tr := NewTree(6)
	if err := tr.Fit(x, y, 2); err != nil {
		t.Fatal(err)
	}
	imp := tr.Importances()
	if len(imp) != 2 {
		t.Fatalf("importances length %d", len(imp))
	}
	sum := imp[0] + imp[1]
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("importances sum to %v", sum)
	}
	if imp[1] < 0.9 {
		t.Errorf("informative feature importance %v, want > 0.9", imp[1])
	}

	f := NewForest(1)
	f.Trees = 10
	if err := f.Fit(x, y, 2); err != nil {
		t.Fatal(err)
	}
	fimp := f.Importances()
	if fimp[1] < 0.8 {
		t.Errorf("forest informative importance %v", fimp[1])
	}
	p := f.Proba(x[0])
	total := 0.0
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Errorf("vote share %v", v)
		}
		total += v
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("vote shares sum to %v", total)
	}
}

func TestPureTreeImportancesZero(t *testing.T) {
	tr := NewTree(4)
	if err := tr.Fit([][]float64{{1}, {2}}, []int{0, 0}, 2); err != nil {
		t.Fatal(err)
	}
	for _, v := range tr.Importances() {
		if v != 0 {
			t.Errorf("pure tree has nonzero importance %v", v)
		}
	}
}

// TestKNNTopKMatchesBruteForce compares the fixed-size insertion top-k
// against a brute-force reference (sort every distance, vote over the k
// smallest) on random data, for several k including k > len(x).
func TestKNNTopKMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	x, y := gaussianTask(rng, 150)
	for _, k := range []int{1, 3, 5, 31, 200} {
		m := NewKNN(k)
		if err := m.Fit(x, y, 3); err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 50; trial++ {
			q := []float64{rng.Float64() * 6, rng.Float64() * 6, rng.Float64() * 6}
			if got, want := m.Predict(q), bruteKNN(x, y, 3, k, q); got != want {
				t.Fatalf("k=%d trial %d: Predict %d, brute force %d", k, trial, got, want)
			}
		}
	}
}

// bruteKNN is the obviously-correct reference: full sort by distance.
func bruteKNN(x [][]float64, y []int, classes, k int, q []float64) int {
	type cand struct {
		d   float64
		idx int
	}
	cands := make([]cand, len(x))
	for i, p := range x {
		var d float64
		for j := range p {
			d += (p[j] - q[j]) * (p[j] - q[j])
		}
		cands[i] = cand{d, i}
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
	if k > len(cands) {
		k = len(cands)
	}
	votes := make([]float64, classes)
	for _, c := range cands[:k] {
		votes[y[c.idx]]++
	}
	return argmax(votes)
}

// TestPredictAllMatchesSequential checks the batched (parallel) paths of
// KNN, Forest, semisup-style dispatch and the Timed wrapper against a
// plain Predict loop.
func TestPredictAllMatchesSequential(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	rng := rand.New(rand.NewSource(23))
	x, y := gaussianTask(rng, 120)
	var queries [][]float64
	for i := 0; i < 90; i++ {
		queries = append(queries, []float64{rng.Float64() * 6, rng.Float64() * 6, rng.Float64() * 6})
	}
	models := []Classifier{NewKNN(5), NewForest(3), NewTree(6), NewLogReg()}
	for _, m := range models {
		if err := m.Fit(x, y, 3); err != nil {
			t.Fatal(err)
		}
		got := PredictAll(m, queries)
		timed := NewTimed("test", m).PredictAll(queries)
		for i, q := range queries {
			want := m.Predict(q)
			if got[i] != want {
				t.Fatalf("%T: PredictAll[%d] = %d, Predict = %d", m, i, got[i], want)
			}
			if timed[i] != want {
				t.Fatalf("%T: Timed.PredictAll[%d] = %d, Predict = %d", m, i, timed[i], want)
			}
		}
	}
}

// TestForestFitDeterministicAcrossWorkerCaps re-fits the same seeded
// forest under worker caps 1 and 4 and requires identical predictions:
// the pre-drawn per-tree seeds must make training independent of the
// obs pool's parallelism.
func TestForestFitDeterministicAcrossWorkerCaps(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	rng := rand.New(rand.NewSource(29))
	x, y := gaussianTask(rng, 200)
	fit := func(cap int) *Forest {
		prev := obs.SetMaxWorkers(cap)
		defer obs.SetMaxWorkers(prev)
		f := NewForest(9)
		f.Trees = 12
		if err := f.Fit(x, y, 3); err != nil {
			t.Fatal(err)
		}
		return f
	}
	seq, par := fit(1), fit(4)
	for i := 0; i < 100; i++ {
		p := []float64{rng.Float64() * 5, rng.Float64() * 5, rng.Float64() * 5}
		if seq.Predict(p) != par.Predict(p) {
			t.Fatal("forest differs between worker caps 1 and 4")
		}
	}
}

// BenchmarkKNNPredict measures single-vector KNN prediction: the
// fixed-size insertion top-k versus the container/heap implementation it
// replaced (kept inline here as the baseline).
func BenchmarkKNNPredict(b *testing.B) {
	rng := rand.New(rand.NewSource(41))
	x, y := gaussianTask(rng, 2000)
	q := []float64{2, 2, 2}
	m := NewKNN(5)
	if err := m.Fit(x, y, 3); err != nil {
		b.Fatal(err)
	}
	b.Run("topk", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = m.Predict(q)
		}
	})
	b.Run("heap-baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = heapKNNPredict(m, q)
		}
	})
}

// heapKNNPredict is the previous container/heap implementation, kept
// only as the benchmark baseline for BenchmarkKNNPredict.
func heapKNNPredict(m *KNN, x []float64) int {
	k := m.K
	if k > len(m.x) {
		k = len(m.x)
	}
	h := make(oldNeighbourHeap, 0, k+1)
	for i, p := range m.x {
		var d float64
		for j := range p {
			d += (p[j] - x[j]) * (p[j] - x[j])
		}
		if len(h) < k {
			heap.Push(&h, oldNeighbour{d, i})
		} else if d < h[0].d {
			h[0] = oldNeighbour{d, i}
			heap.Fix(&h, 0)
		}
	}
	votes := make([]float64, m.classes)
	for _, nb := range h {
		votes[m.y[nb.idx]]++
	}
	return argmax(votes)
}

type oldNeighbour struct {
	d   float64
	idx int
}

type oldNeighbourHeap []oldNeighbour

func (h oldNeighbourHeap) Len() int            { return len(h) }
func (h oldNeighbourHeap) Less(i, j int) bool  { return h[i].d > h[j].d }
func (h oldNeighbourHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *oldNeighbourHeap) Push(x interface{}) { *h = append(*h, x.(oldNeighbour)) }
func (h *oldNeighbourHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}
