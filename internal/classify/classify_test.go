package classify

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

// gaussianTask builds a linearly separable 3-class problem.
func gaussianTask(rng *rand.Rand, n int) (x [][]float64, y []int) {
	centres := [][]float64{{0, 0, 0}, {4, 4, 0}, {0, 4, 4}}
	for i := 0; i < n; i++ {
		c := rng.Intn(3)
		p := make([]float64, 3)
		for j := range p {
			p[j] = centres[c][j] + rng.NormFloat64()*0.6
		}
		x = append(x, p)
		y = append(y, c)
	}
	return x, y
}

// xorTask builds a nonlinearly separable 2-class problem (XOR layout)
// that linear models cannot solve but trees must.
func xorTask(rng *rand.Rand, n int) (x [][]float64, y []int) {
	for i := 0; i < n; i++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		cls := 0
		if (a > 0) != (b > 0) {
			cls = 1
		}
		x = append(x, []float64{a, b})
		y = append(y, cls)
	}
	return x, y
}

func accuracy(pred, want []int) float64 {
	hit := 0
	for i := range pred {
		if pred[i] == want[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(pred))
}

// fitAndScore trains on the first 70% and scores on the rest.
func fitAndScore(t *testing.T, m Classifier, x [][]float64, y []int, classes int) float64 {
	t.Helper()
	cut := len(x) * 7 / 10
	if err := m.Fit(x[:cut], y[:cut], classes); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	return accuracy(PredictAll(m, x[cut:]), y[cut:])
}

func TestAllModelsLearnGaussianTask(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := gaussianTask(rng, 600)
	models := map[string]Classifier{
		"knn":    NewKNN(5),
		"tree":   NewTree(8),
		"forest": NewForest(1),
		"logreg": NewLogReg(),
		"svm":    NewSVM(1),
		"gboost": func() *GBoost { g := NewGBoost(); g.Rounds = 30; return g }(),
	}
	for name, m := range models {
		if acc := fitAndScore(t, m, x, y, 3); acc < 0.9 {
			t.Errorf("%s: accuracy %.3f on separable gaussians, want >= 0.9", name, acc)
		}
	}
}

func TestTreesSolveXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := xorTask(rng, 600)
	for name, m := range map[string]Classifier{
		"tree":   NewTree(8),
		"forest": NewForest(2),
		"gboost": func() *GBoost { g := NewGBoost(); g.Rounds = 30; return g }(),
		"knn":    NewKNN(5),
	} {
		if acc := fitAndScore(t, m, x, y, 2); acc < 0.9 {
			t.Errorf("%s: accuracy %.3f on XOR, want >= 0.9", name, acc)
		}
	}
	// A linear model must fail XOR — this guards against the tree tests
	// passing for trivial reasons.
	lin := NewSVM(3)
	if acc := fitAndScore(t, lin, x, y, 2); acc > 0.75 {
		t.Errorf("linear SVM solved XOR (%.3f); the task generator is broken", acc)
	}
}

func TestFitInputValidation(t *testing.T) {
	good := [][]float64{{1, 2}, {3, 4}}
	models := []Classifier{NewKNN(3), NewTree(3), NewForest(1), NewLogReg(), NewSVM(1), NewGBoost()}
	for _, m := range models {
		if err := m.Fit(nil, nil, 2); err == nil {
			t.Errorf("%T: empty input accepted", m)
		}
	}
	models = []Classifier{NewKNN(3), NewTree(3), NewForest(1), NewLogReg(), NewSVM(1), NewGBoost()}
	for _, m := range models {
		if err := m.Fit(good, []int{0}, 2); err == nil {
			t.Errorf("%T: length mismatch accepted", m)
		}
	}
	models = []Classifier{NewKNN(3), NewTree(3), NewForest(1), NewLogReg(), NewSVM(1), NewGBoost()}
	for _, m := range models {
		if err := m.Fit(good, []int{0, 5}, 2); err == nil {
			t.Errorf("%T: out-of-range label accepted", m)
		}
	}
	models = []Classifier{NewKNN(3), NewTree(3), NewForest(1), NewLogReg(), NewSVM(1), NewGBoost()}
	for _, m := range models {
		if err := m.Fit([][]float64{{1}, {1, 2}}, []int{0, 1}, 2); err == nil {
			t.Errorf("%T: ragged input accepted", m)
		}
	}
}

func TestTreeDepthBound(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := gaussianTask(rng, 300)
	tr := NewTree(3)
	if err := tr.Fit(x, y, 3); err != nil {
		t.Fatal(err)
	}
	if d := tr.Depth(); d > 3 {
		t.Errorf("tree depth %d exceeds bound 3", d)
	}
}

func TestTreePureLeafShortCircuit(t *testing.T) {
	// Single-class data must yield a single leaf.
	x := [][]float64{{1}, {2}, {3}}
	y := []int{1, 1, 1}
	tr := NewTree(5)
	if err := tr.Fit(x, y, 2); err != nil {
		t.Fatal(err)
	}
	if tr.Depth() != 0 {
		t.Errorf("pure data grew depth %d", tr.Depth())
	}
	if tr.Predict([]float64{0}) != 1 {
		t.Error("pure tree mispredicts")
	}
}

func TestForestDeterministicGivenSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := gaussianTask(rng, 200)
	a, b := NewForest(9), NewForest(9)
	a.Trees, b.Trees = 10, 10
	if err := a.Fit(x, y, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(x, y, 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		p := []float64{rng.Float64() * 5, rng.Float64() * 5, rng.Float64() * 5}
		if a.Predict(p) != b.Predict(p) {
			t.Fatal("same-seed forests disagree")
		}
	}
}

func TestKNNExactNeighbours(t *testing.T) {
	x := [][]float64{{0}, {1}, {10}, {11}, {12}}
	y := []int{0, 0, 1, 1, 1}
	m := NewKNN(3)
	if err := m.Fit(x, y, 2); err != nil {
		t.Fatal(err)
	}
	if m.Predict([]float64{0.4}) != 0 {
		t.Error("query near class 0 misclassified")
	}
	if m.Predict([]float64{10.6}) != 1 {
		t.Error("query near class 1 misclassified")
	}
}

func TestKNNWeighted(t *testing.T) {
	// Two class-0 points far away, one class-1 point exactly at the
	// query: inverse-distance weighting must prefer class 1 while
	// uniform voting picks class 0.
	x := [][]float64{{0}, {5.2}, {5.4}}
	y := []int{1, 0, 0}
	uni := NewKNN(3)
	if err := uni.Fit(x, y, 2); err != nil {
		t.Fatal(err)
	}
	wgt := &KNN{K: 3, Weighted: true}
	if err := wgt.Fit(x, y, 2); err != nil {
		t.Fatal(err)
	}
	q := []float64{0.01}
	if uni.Predict(q) != 0 {
		t.Error("uniform KNN should be fooled by the far majority")
	}
	if wgt.Predict(q) != 1 {
		t.Error("weighted KNN should favour the near neighbour")
	}
}

func TestLogRegProbabilitiesSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, y := gaussianTask(rng, 200)
	m := NewLogReg()
	if err := m.Fit(x, y, 3); err != nil {
		t.Fatal(err)
	}
	p := m.Proba(x[0])
	sum := 0.0
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("probability %v outside [0,1]", v)
		}
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestUnbalancedDataMajorityPull(t *testing.T) {
	// 95% of labels are class 0: every model should still beat the
	// majority-class baseline on the minority when it is separable.
	rng := rand.New(rand.NewSource(7))
	var x [][]float64
	var y []int
	for i := 0; i < 500; i++ {
		if i%20 == 0 {
			x = append(x, []float64{10 + rng.NormFloat64()*0.2})
			y = append(y, 1)
		} else {
			x = append(x, []float64{rng.NormFloat64()})
			y = append(y, 0)
		}
	}
	for name, m := range map[string]Classifier{
		"tree": NewTree(4), "knn": NewKNN(3),
	} {
		if err := m.Fit(x, y, 2); err != nil {
			t.Fatal(err)
		}
		if m.Predict([]float64{10}) != 1 {
			t.Errorf("%s: minority class unlearnable even when separable", name)
		}
	}
}

func TestDensityImageProperties(t *testing.T) {
	// 96 divides evenly into 16 cells (6 entries each), so all diagonal
	// cells carry the same count and normalise to exactly 1.
	tr := sparse.NewTriplet(96, 96)
	for i := 0; i < 96; i++ {
		if err := tr.Add(i, i, 1); err != nil {
			t.Fatal(err)
		}
	}
	img := DensityImage(tr.ToCSR())
	if len(img) != ImageSize*ImageSize {
		t.Fatalf("image length %d", len(img))
	}
	// A diagonal matrix fills exactly the diagonal cells with the same
	// normalised intensity 1, everything else 0.
	for i := 0; i < ImageSize; i++ {
		for j := 0; j < ImageSize; j++ {
			v := img[i*ImageSize+j]
			if i == j && v != 1 {
				t.Errorf("diagonal cell (%d,%d) = %v, want 1", i, j, v)
			}
			if i != j && v != 0 {
				t.Errorf("off-diagonal cell (%d,%d) = %v, want 0", i, j, v)
			}
		}
	}
	if n := len(DensityImages([]*sparse.CSR{tr.ToCSR(), tr.ToCSR()})); n != 2 {
		t.Error("DensityImages batch wrong")
	}
}

func TestCNNLearnsImageTask(t *testing.T) {
	if testing.Short() {
		t.Skip("CNN training in -short mode")
	}
	// Distinguish diagonal-band images from top-row-heavy images, a
	// caricature of the ELL vs HYB distinction.
	rng := rand.New(rand.NewSource(8))
	var x [][]float64
	var y []int
	for n := 0; n < 240; n++ {
		img := make([]float64, ImageSize*ImageSize)
		if n%2 == 0 {
			for i := 0; i < ImageSize; i++ {
				img[i*ImageSize+i] = 0.8 + rng.Float64()*0.2
			}
			y = append(y, 0)
		} else {
			for j := 0; j < ImageSize; j++ {
				img[j] = 0.8 + rng.Float64()*0.2
			}
			y = append(y, 1)
		}
		// Noise.
		for k := 0; k < 20; k++ {
			img[rng.Intn(len(img))] += rng.Float64() * 0.3
		}
		x = append(x, img)
	}
	m := NewCNN(1)
	m.Epochs = 15
	if acc := fitAndScore(t, m, x, y, 2); acc < 0.9 {
		t.Errorf("CNN accuracy %.3f on trivial image task", acc)
	}
}

func TestCNNRejectsWrongInputSize(t *testing.T) {
	m := NewCNN(1)
	if err := m.Fit([][]float64{{1, 2, 3}}, []int{0}, 2); err == nil {
		t.Error("CNN accepted non-image input")
	}
}

// TestQuickPredictionInRange property-tests that all models predict
// in-range classes for arbitrary inputs after training on random data.
func TestQuickPredictionInRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d, classes := 30+rng.Intn(40), 2+rng.Intn(4), 2+rng.Intn(3)
		x := make([][]float64, n)
		y := make([]int, n)
		for i := range x {
			x[i] = make([]float64, d)
			for j := range x[i] {
				x[i][j] = rng.NormFloat64()
			}
			y[i] = rng.Intn(classes)
		}
		models := []Classifier{
			NewKNN(3), NewTree(4),
			func() *Forest { f := NewForest(seed); f.Trees = 5; return f }(),
			func() *GBoost { g := NewGBoost(); g.Rounds = 5; return g }(),
			func() *SVM { s := NewSVM(seed); s.Epochs = 3; return s }(),
			func() *LogReg { l := NewLogReg(); l.Epochs = 20; return l }(),
		}
		for _, m := range models {
			if err := m.Fit(x, y, classes); err != nil {
				return false
			}
			for trial := 0; trial < 5; trial++ {
				q := make([]float64, d)
				for j := range q {
					q[j] = rng.NormFloat64() * 3
				}
				if p := m.Predict(q); p < 0 || p >= classes {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestTreeImportances(t *testing.T) {
	// Feature 1 fully determines the label; feature 0 is noise. The
	// importance mass must concentrate on feature 1.
	rng := rand.New(rand.NewSource(9))
	var x [][]float64
	var y []int
	for i := 0; i < 300; i++ {
		sig := rng.Float64()
		cls := 0
		if sig > 0.5 {
			cls = 1
		}
		x = append(x, []float64{rng.Float64(), sig})
		y = append(y, cls)
	}
	tr := NewTree(6)
	if err := tr.Fit(x, y, 2); err != nil {
		t.Fatal(err)
	}
	imp := tr.Importances()
	if len(imp) != 2 {
		t.Fatalf("importances length %d", len(imp))
	}
	sum := imp[0] + imp[1]
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("importances sum to %v", sum)
	}
	if imp[1] < 0.9 {
		t.Errorf("informative feature importance %v, want > 0.9", imp[1])
	}

	f := NewForest(1)
	f.Trees = 10
	if err := f.Fit(x, y, 2); err != nil {
		t.Fatal(err)
	}
	fimp := f.Importances()
	if fimp[1] < 0.8 {
		t.Errorf("forest informative importance %v", fimp[1])
	}
	p := f.Proba(x[0])
	total := 0.0
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Errorf("vote share %v", v)
		}
		total += v
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("vote shares sum to %v", total)
	}
}

func TestPureTreeImportancesZero(t *testing.T) {
	tr := NewTree(4)
	if err := tr.Fit([][]float64{{1}, {2}}, []int{0, 0}, 2); err != nil {
		t.Fatal(err)
	}
	for _, v := range tr.Importances() {
		if v != 0 {
			t.Errorf("pure tree has nonzero importance %v", v)
		}
	}
}
