// Package classify implements from scratch the supervised models the
// paper compares against (Section 5.1): K-Nearest Neighbors, a CART
// Decision Tree, a Random Forest, a multinomial Logistic Regression, a
// linear one-vs-rest SVM trained with Pegasos, gradient-boosted trees in
// the XGBoost style, and a small convolutional neural network over
// density-image encodings of the sparsity pattern.
//
// Hyperparameters follow the paper where it states them: the forest uses
// 100 estimators of depth 6, the boosted model a 0.1 learning rate and
// 100 rounds.
package classify

import (
	"errors"
	"fmt"

	"repro/internal/obs"
)

// Classifier is a multiclass model over dense feature vectors.
type Classifier interface {
	// Fit trains on rows X with labels y in [0, classes). It must be
	// called exactly once.
	Fit(x [][]float64, y []int, classes int) error
	// Predict returns the predicted class of one feature vector.
	Predict(x []float64) int
}

// ErrNotFitted is returned when predicting with an untrained model.
var ErrNotFitted = errors.New("classify: model not fitted")

// BatchPredictor is implemented by classifiers with their own batched
// (typically parallel) prediction path.
type BatchPredictor interface {
	PredictAll(x [][]float64) []int
}

// PredictAll predicts every row, dispatching to the classifier's own
// batched path when it has one and otherwise fanning the rows out over
// the shared obs worker pool. Every classifier in this package is
// read-only during Predict (per-call state only), so row-parallel
// prediction is safe, and the positional output makes the result
// identical to a sequential loop.
func PredictAll(c Classifier, x [][]float64) []int {
	if b, ok := c.(BatchPredictor); ok {
		return b.PredictAll(x)
	}
	out := make([]int, len(x))
	obs.ParallelFor(len(x), func(i int) {
		out[i] = c.Predict(x[i])
	})
	return out
}

// checkTrainingInput validates the common Fit preconditions.
func checkTrainingInput(x [][]float64, y []int, classes int) error {
	if len(x) == 0 {
		return fmt.Errorf("classify: empty training set")
	}
	if len(x) != len(y) {
		return fmt.Errorf("classify: %d rows but %d labels", len(x), len(y))
	}
	if classes < 2 {
		return fmt.Errorf("classify: need >= 2 classes, got %d", classes)
	}
	d := len(x[0])
	for i, r := range x {
		if len(r) != d {
			return fmt.Errorf("classify: row %d has %d features, want %d", i, len(r), d)
		}
	}
	for i, l := range y {
		if l < 0 || l >= classes {
			return fmt.Errorf("classify: label %d at row %d outside [0, %d)", l, i, classes)
		}
	}
	return nil
}

// argmax returns the index of the largest value (first on ties).
func argmax(v []float64) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// majority returns the most frequent class among labels, lowest class on
// ties; counts must have length classes.
func majority(y []int, counts []int) int {
	for i := range counts {
		counts[i] = 0
	}
	for _, l := range y {
		counts[l]++
	}
	return argmax1(counts)
}

func argmax1(v []int) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}
