package classify

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
)

// persistTask generates a well-separated 3-class problem.
func persistTask(rng *rand.Rand, n, d int) (x [][]float64, y []int) {
	x = make([][]float64, n)
	y = make([]int, n)
	for i := range x {
		c := i % 3
		row := make([]float64, d)
		for j := range row {
			row[j] = float64(c) + 0.2*rng.NormFloat64()
		}
		x[i] = row
		y[i] = c
	}
	return x, y
}

// TestClassifierGobRoundTrip checks that every persistable model
// predicts identically after a save/load through a Classifier interface
// value, which is how the serve artifact stores it.
func TestClassifierGobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x, y := persistTask(rng, 240, 6)
	models := map[string]Classifier{
		"knn":    NewKNN(5),
		"tree":   NewTree(8),
		"forest": &Forest{Trees: 12, MaxDepth: 5, Seed: 3},
		"logreg": NewLogReg(),
	}
	for name, clf := range models {
		if !Persistable(clf) {
			t.Errorf("%s: Persistable = false", name)
		}
		if err := clf.Fit(x, y, 3); err != nil {
			t.Fatalf("%s fit: %v", name, err)
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&clf); err != nil {
			t.Fatalf("%s encode: %v", name, err)
		}
		var loaded Classifier
		if err := gob.NewDecoder(&buf).Decode(&loaded); err != nil {
			t.Fatalf("%s decode: %v", name, err)
		}
		for i, row := range x {
			if got, want := loaded.Predict(row), clf.Predict(row); got != want {
				t.Fatalf("%s: prediction diverges at row %d: %d != %d", name, i, got, want)
			}
		}
	}
}

// TestTreeRoundTripPreservesStructure checks depth and importances
// survive the flatten/unflatten cycle.
func TestTreeRoundTripPreservesStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := persistTask(rng, 150, 4)
	tree := NewTree(7)
	if err := tree.Fit(x, y, 3); err != nil {
		t.Fatal(err)
	}
	data, err := tree.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var loaded Tree
	if err := loaded.GobDecode(data); err != nil {
		t.Fatal(err)
	}
	if loaded.Depth() != tree.Depth() {
		t.Errorf("depth %d != %d", loaded.Depth(), tree.Depth())
	}
	imp, limp := tree.Importances(), loaded.Importances()
	if len(imp) != len(limp) {
		t.Fatalf("importances length %d != %d", len(limp), len(imp))
	}
	for j := range imp {
		if imp[j] != limp[j] {
			t.Errorf("importance %d: %v != %v", j, limp[j], imp[j])
		}
	}
}

// TestClassifierGobRejectsGarbage checks decoders fail loudly on
// corrupt and inconsistent payloads.
func TestClassifierGobRejectsGarbage(t *testing.T) {
	var tree Tree
	if err := tree.GobDecode([]byte("junk")); err == nil {
		t.Error("tree accepted garbage")
	}
	var knn KNN
	if err := knn.GobDecode([]byte{0x01}); err == nil {
		t.Error("knn accepted garbage")
	}
	// A fitted tree without nodes is inconsistent.
	data, err := encodeWire(treeGob{Fitted: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.GobDecode(data); err == nil {
		t.Error("fitted node-less tree accepted")
	}
}

// TestUnfittedClassifierRoundTrips checks an unfitted model survives
// persistence (and still refuses to predict meaningfully).
func TestUnfittedClassifierRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(NewKNN(3)); err != nil {
		t.Fatal(err)
	}
	var loaded KNN
	if err := gob.NewDecoder(&buf).Decode(&loaded); err != nil {
		t.Fatal(err)
	}
	if loaded.K != 3 {
		t.Errorf("K = %d, want 3", loaded.K)
	}
}
