package classify

import (
	"time"

	"repro/internal/obs"
)

// Timed wraps a Classifier so every Fit and Predict feeds the metrics
// registry:
//
//	classify/<name>/fits         counter
//	classify/<name>/fit_seconds  histogram
//	classify/<name>/predictions  counter
//
// Histograms rather than spans, because the evaluation harness trains
// each model dozens of times inside cross-validation sweeps; the eval
// layer opens one span per model family and the per-Fit distribution
// lives here.
type Timed struct {
	// Name labels the metrics ("RF", "CNN", ...).
	Name string
	// Model is the wrapped classifier.
	Model Classifier
}

// NewTimed wraps model under name.
func NewTimed(name string, model Classifier) *Timed {
	return &Timed{Name: name, Model: model}
}

// Fit trains the wrapped model, recording the wall time.
func (t *Timed) Fit(x [][]float64, y []int, classes int) error {
	start := obs.Now()
	err := t.Model.Fit(x, y, classes)
	if !start.IsZero() {
		obs.Default.Counter("classify/" + t.Name + "/fits").Inc()
		obs.Default.Histogram("classify/"+t.Name+"/fit_seconds", obs.DurationBuckets).
			Observe(time.Since(start).Seconds())
	}
	return err
}

// Predict classifies one vector, counting the call.
func (t *Timed) Predict(x []float64) int {
	if obs.Enabled() {
		obs.Default.Counter("classify/" + t.Name + "/predictions").Inc()
	}
	return t.Model.Predict(x)
}

// PredictAll classifies a batch through the wrapped model's batched
// (parallel) path, counting every prediction.
func (t *Timed) PredictAll(x [][]float64) []int {
	if obs.Enabled() {
		obs.Default.Counter("classify/" + t.Name + "/predictions").Add(int64(len(x)))
	}
	return PredictAll(t.Model, x)
}

var _ Classifier = (*Timed)(nil)
