package classify

import (
	"math"
	"sort"
)

// GBoost is gradient-boosted decision trees in the XGBoost style:
// second-order (gradient/hessian) softmax boosting with one regression
// tree per class per round, histogram-based split finding (features are
// quantile-binned once, splits scan at most maxBins buckets per feature)
// and the standard XGBoost split-gain formula. The paper's configuration
// is a 0.1 learning rate and 100 rounds.
type GBoost struct {
	// Rounds is the number of boosting rounds (default 100, the paper's
	// setting).
	Rounds int
	// LR is the shrinkage (default 0.1, the paper's setting).
	LR float64
	// MaxDepth bounds each regression tree (default 4).
	MaxDepth int
	// Lambda is the L2 leaf regularisation (default 1).
	Lambda float64
	// MinChildWeight is the smallest hessian sum a leaf may have
	// (default 1).
	MinChildWeight float64

	trees   [][]*regTree // [round][class]
	classes int
	fitted  bool
}

// maxBins is the histogram resolution; 256 quantile bins is XGBoost's
// own default and indistinguishable from exact splits at this data size.
const maxBins = 256

// NewGBoost returns a model with the paper's hyperparameters.
func NewGBoost() *GBoost {
	return &GBoost{Rounds: 100, LR: 0.1, MaxDepth: 4, Lambda: 1, MinChildWeight: 1}
}

// regTree is a regression tree over (gradient, hessian) targets. Split
// thresholds are stored as real feature values so prediction needs no
// binning.
type regTree struct {
	feature     int
	threshold   float64
	left, right *regTree
	value       float64
	leaf        bool
}

func (t *regTree) eval(x []float64) float64 {
	for !t.leaf {
		if x[t.feature] <= t.threshold {
			t = t.left
		} else {
			t = t.right
		}
	}
	return t.value
}

// binning holds the quantile discretisation shared by every tree.
type binning struct {
	// cuts[f] are ascending bin upper edges; value v falls in the first
	// bin with v <= cuts[f][b], and in bin len(cuts[f]) when above all.
	cuts [][]float64
	// idx[i][f] is row i's bin for feature f.
	idx [][]uint8
}

// buildBinning computes per-feature quantile cut points and bins every
// row.
func buildBinning(x [][]float64) *binning {
	n, d := len(x), len(x[0])
	b := &binning{cuts: make([][]float64, d), idx: make([][]uint8, n)}
	for i := range b.idx {
		b.idx[i] = make([]uint8, d)
	}
	vals := make([]float64, n)
	for f := 0; f < d; f++ {
		for i, row := range x {
			vals[i] = row[f]
		}
		sort.Float64s(vals)
		// Distinct quantile edges.
		var cuts []float64
		for q := 1; q < maxBins; q++ {
			v := vals[q*(n-1)/maxBins]
			if len(cuts) == 0 || v > cuts[len(cuts)-1] {
				cuts = append(cuts, v)
			}
		}
		b.cuts[f] = cuts
		for i, row := range x {
			b.idx[i][f] = uint8(sort.SearchFloat64s(cuts, row[f]))
		}
	}
	return b
}

// Fit runs softmax gradient boosting.
func (m *GBoost) Fit(x [][]float64, y []int, classes int) error {
	if err := checkTrainingInput(x, y, classes); err != nil {
		return err
	}
	if m.Rounds <= 0 {
		m.Rounds = 100
	}
	if m.LR <= 0 {
		m.LR = 0.1
	}
	if m.MaxDepth <= 0 {
		m.MaxDepth = 4
	}
	if m.Lambda <= 0 {
		m.Lambda = 1
	}
	if m.MinChildWeight <= 0 {
		m.MinChildWeight = 1
	}
	m.classes = classes
	n := len(x)
	bins := buildBinning(x)

	// Raw scores per sample per class.
	scores := make([][]float64, n)
	for i := range scores {
		scores[i] = make([]float64, classes)
	}
	probs := make([]float64, classes)
	grad := make([][]float64, classes)
	hess := make([][]float64, classes)
	for c := range grad {
		grad[c] = make([]float64, n)
		hess[c] = make([]float64, n)
	}

	m.trees = make([][]*regTree, 0, m.Rounds)
	for round := 0; round < m.Rounds; round++ {
		// Softmax gradients and hessians.
		for i := 0; i < n; i++ {
			maxZ := math.Inf(-1)
			for c := 0; c < classes; c++ {
				if scores[i][c] > maxZ {
					maxZ = scores[i][c]
				}
			}
			sum := 0.0
			for c := 0; c < classes; c++ {
				probs[c] = math.Exp(scores[i][c] - maxZ)
				sum += probs[c]
			}
			for c := 0; c < classes; c++ {
				p := probs[c] / sum
				g := p
				if y[i] == c {
					g -= 1
				}
				grad[c][i] = g
				hess[c][i] = p * (1 - p)
			}
		}
		roundTrees := make([]*regTree, classes)
		for c := 0; c < classes; c++ {
			idx := make([]int, n)
			for i := range idx {
				idx[i] = i
			}
			tree := m.growReg(bins, grad[c], hess[c], idx, 0)
			roundTrees[c] = tree
			for i := 0; i < n; i++ {
				scores[i][c] += m.LR * tree.eval(x[i])
			}
		}
		m.trees = append(m.trees, roundTrees)
	}
	m.fitted = true
	return nil
}

// growReg builds a regression tree on the gradient/hessian targets of
// the samples in idx using histogram split finding.
func (m *GBoost) growReg(bins *binning, g, h []float64, idx []int, depth int) *regTree {
	var gSum, hSum float64
	for _, i := range idx {
		gSum += g[i]
		hSum += h[i]
	}
	node := &regTree{leaf: true, value: -gSum / (hSum + m.Lambda)}
	if depth >= m.MaxDepth || len(idx) < 2 {
		return node
	}

	parentScore := gSum * gSum / (hSum + m.Lambda)
	bestGain := 1e-9
	bestFeat, bestBin := -1, 0

	d := len(bins.cuts)
	var histG, histH [maxBins]float64
	for f := 0; f < d; f++ {
		nCuts := len(bins.cuts[f])
		if nCuts == 0 {
			continue // constant feature
		}
		for b := 0; b <= nCuts; b++ {
			histG[b] = 0
			histH[b] = 0
		}
		for _, i := range idx {
			b := bins.idx[i][f]
			histG[b] += g[i]
			histH[b] += h[i]
		}
		var gl, hl float64
		for b := 0; b < nCuts; b++ { // split after bin b: left = bins <= b
			gl += histG[b]
			hl += histH[b]
			gr, hr := gSum-gl, hSum-hl
			if hl < m.MinChildWeight || hr < m.MinChildWeight {
				continue
			}
			gain := gl*gl/(hl+m.Lambda) + gr*gr/(hr+m.Lambda) - parentScore
			if gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestBin = b
			}
		}
	}
	if bestFeat < 0 {
		return node
	}
	var left, right []int
	for _, i := range idx {
		if int(bins.idx[i][bestFeat]) <= bestBin {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return node
	}
	node.leaf = false
	node.feature = bestFeat
	node.threshold = bins.cuts[bestFeat][bestBin]
	node.left = m.growReg(bins, g, h, left, depth+1)
	node.right = m.growReg(bins, g, h, right, depth+1)
	return node
}

// Predict sums the per-class tree outputs and returns the argmax.
func (m *GBoost) Predict(x []float64) int {
	if !m.fitted {
		return 0
	}
	scores := make([]float64, m.classes)
	for _, round := range m.trees {
		for c, t := range round {
			scores[c] += t.eval(x)
		}
	}
	return argmax(scores)
}

var _ Classifier = (*GBoost)(nil)
