package classify

import (
	"repro/internal/linalg"
	"repro/internal/obs"
)

// KNN is the k-nearest-neighbours classifier. The paper points out that
// KNN over the same preprocessed feature space is the natural supervised
// counterpart of centroid-based clustering, and evaluates it in Table 6.
type KNN struct {
	// K is the neighbourhood size (default 5, scikit-learn's default).
	K int
	// Weighted votes neighbours by inverse distance instead of uniformly.
	Weighted bool

	x       [][]float64
	y       []int
	classes int
	fitted  bool
}

// NewKNN returns a KNN classifier with k neighbours.
func NewKNN(k int) *KNN { return &KNN{K: k} }

// Fit memorises the training set.
func (m *KNN) Fit(x [][]float64, y []int, classes int) error {
	if err := checkTrainingInput(x, y, classes); err != nil {
		return err
	}
	if m.K <= 0 {
		m.K = 5
	}
	m.x, m.y, m.classes = x, y, classes
	m.fitted = true
	return nil
}

// neighbour is one (distance, training index) candidate.
type neighbour struct {
	d   float64
	idx int
}

// topKMax is the largest K served by the stack-allocated neighbour
// buffer; larger K (unused anywhere in the paper's configurations) falls
// back to one heap allocation per call.
const topKMax = 32

// topK maintains the k nearest neighbours as a slice sorted ascending by
// distance: the current worst is the last element, so the common case
// (candidate farther than everything kept) is a single compare, and an
// insertion is a short memmove. For the small k of every KNN in this
// repository (k=5) this beats container/heap, which boxes every Push
// through interface{} — one allocation per pushed candidate — and pays
// sift-down calls through the sort.Interface methods. See
// BenchmarkKNNPredict.
type topK struct {
	buf []neighbour
	k   int
}

// insert offers a candidate, keeping only the k nearest.
func (t *topK) insert(d float64, idx int) {
	n := len(t.buf)
	if n == t.k {
		if d >= t.buf[n-1].d {
			return
		}
		n-- // drop the current worst, shift into its slot
	} else {
		t.buf = t.buf[:n+1]
	}
	i := n
	for i > 0 && t.buf[i-1].d > d {
		t.buf[i] = t.buf[i-1]
		i--
	}
	t.buf[i] = neighbour{d, idx}
}

// Predict votes among the k nearest training points.
func (m *KNN) Predict(x []float64) int {
	if !m.fitted {
		return 0
	}
	k := m.K
	if k > len(m.x) {
		k = len(m.x)
	}
	var stack [topKMax]neighbour
	t := topK{k: k}
	if k <= topKMax {
		t.buf = stack[:0]
	} else {
		t.buf = make([]neighbour, 0, k)
	}
	for i, p := range m.x {
		t.insert(linalg.SqDist(p, x), i)
	}
	votes := make([]float64, m.classes)
	for _, nb := range t.buf {
		w := 1.0
		if m.Weighted {
			w = 1 / (nb.d + 1e-12)
		}
		votes[m.y[nb.idx]] += w
	}
	return argmax(votes)
}

// PredictAll classifies every row, fanning the rows out over the shared
// obs worker pool. Each prediction scans the whole training set, so the
// per-item work dwarfs the dispatch cost; results are positional and the
// model is read-only during prediction.
func (m *KNN) PredictAll(x [][]float64) []int {
	out := make([]int, len(x))
	obs.ParallelFor(len(x), func(i int) {
		out[i] = m.Predict(x[i])
	})
	return out
}

var _ Classifier = (*KNN)(nil)
