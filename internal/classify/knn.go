package classify

import (
	"container/heap"

	"repro/internal/linalg"
)

// KNN is the k-nearest-neighbours classifier. The paper points out that
// KNN over the same preprocessed feature space is the natural supervised
// counterpart of centroid-based clustering, and evaluates it in Table 6.
type KNN struct {
	// K is the neighbourhood size (default 5, scikit-learn's default).
	K int
	// Weighted votes neighbours by inverse distance instead of uniformly.
	Weighted bool

	x       [][]float64
	y       []int
	classes int
	fitted  bool
}

// NewKNN returns a KNN classifier with k neighbours.
func NewKNN(k int) *KNN { return &KNN{K: k} }

// Fit memorises the training set.
func (m *KNN) Fit(x [][]float64, y []int, classes int) error {
	if err := checkTrainingInput(x, y, classes); err != nil {
		return err
	}
	if m.K <= 0 {
		m.K = 5
	}
	m.x, m.y, m.classes = x, y, classes
	m.fitted = true
	return nil
}

// neighbourHeap is a max-heap of (distance, index) keeping the k nearest.
type neighbourHeap []struct {
	d   float64
	idx int
}

func (h neighbourHeap) Len() int           { return len(h) }
func (h neighbourHeap) Less(i, j int) bool { return h[i].d > h[j].d } // max-heap
func (h neighbourHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *neighbourHeap) Push(x interface{}) {
	*h = append(*h, x.(struct {
		d   float64
		idx int
	}))
}
func (h *neighbourHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// Predict votes among the k nearest training points.
func (m *KNN) Predict(x []float64) int {
	if !m.fitted {
		return 0
	}
	k := m.K
	if k > len(m.x) {
		k = len(m.x)
	}
	h := make(neighbourHeap, 0, k+1)
	for i, p := range m.x {
		d := linalg.SqDist(p, x)
		if len(h) < k {
			heap.Push(&h, struct {
				d   float64
				idx int
			}{d, i})
		} else if d < h[0].d {
			h[0] = struct {
				d   float64
				idx int
			}{d, i}
			heap.Fix(&h, 0)
		}
	}
	votes := make([]float64, m.classes)
	for _, nb := range h {
		w := 1.0
		if m.Weighted {
			w = 1 / (nb.d + 1e-12)
		}
		votes[m.y[nb.idx]] += w
	}
	return argmax(votes)
}

var _ Classifier = (*KNN)(nil)
