package classify

import (
	"math"

	"repro/internal/sparse"
)

// ImageSize is the side of the density-image encoding consumed by the
// CNN: the sparsity pattern is histogrammed into ImageSize x ImageSize
// cells, following the matrix-as-image encoding of the CNN prior work
// the paper reimplements (Zhao et al., PPoPP 2018).
const ImageSize = 16

// DensityImage renders a matrix's sparsity pattern as a flattened
// ImageSize x ImageSize density map. Cell values are log-scaled counts
// normalised to [0, 1], which preserves structure across the enormous
// dynamic range of nonzero densities.
func DensityImage(m *sparse.CSR) []float64 {
	rows, cols := m.Dims()
	img := make([]float64, ImageSize*ImageSize)
	rowPtr, colIdx := m.RowPtr(), m.ColIdx()
	for i := 0; i < rows; i++ {
		pi := i * ImageSize / rows
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			pj := int(colIdx[k]) * ImageSize / cols
			img[pi*ImageSize+pj]++
		}
	}
	maxV := 0.0
	for _, v := range img {
		if v > maxV {
			maxV = v
		}
	}
	if maxV > 0 {
		norm := math.Log1p(maxV)
		for i, v := range img {
			img[i] = math.Log1p(v) / norm
		}
	}
	return img
}

// DensityImages encodes a batch of matrices.
func DensityImages(ms []*sparse.CSR) [][]float64 {
	out := make([][]float64, len(ms))
	for i, m := range ms {
		out[i] = DensityImage(m)
	}
	return out
}
