package classify

import (
	"math/rand"
)

// SVM is a linear support-vector machine trained with the Pegasos
// stochastic sub-gradient algorithm (Shalev-Shwartz et al., 2007),
// extended to multiclass by one-vs-rest, the standard reduction used by
// LinearSVC-style baselines.
type SVM struct {
	// Lambda is the regularisation strength (default 1e-4).
	Lambda float64
	// Epochs is the number of passes over the data (default 20).
	Epochs int
	// Seed drives the stochastic sampling.
	Seed int64

	w       [][]float64 // one weight vector (plus bias) per class
	classes int
	fitted  bool
}

// NewSVM returns an SVM with the defaults above.
func NewSVM(seed int64) *SVM { return &SVM{Seed: seed} }

// Fit trains one Pegasos binary separator per class.
func (m *SVM) Fit(x [][]float64, y []int, classes int) error {
	if err := checkTrainingInput(x, y, classes); err != nil {
		return err
	}
	if m.Lambda <= 0 {
		m.Lambda = 1e-4
	}
	if m.Epochs <= 0 {
		m.Epochs = 20
	}
	d := len(x[0])
	m.classes = classes
	m.w = make([][]float64, classes)
	for c := 0; c < classes; c++ {
		m.w[c] = m.pegasos(x, y, c, d)
	}
	m.fitted = true
	return nil
}

// pegasos trains class c against the rest and returns w (bias last).
func (m *SVM) pegasos(x [][]float64, y []int, c, d int) []float64 {
	rng := rand.New(rand.NewSource(m.Seed + int64(c)*7919))
	w := make([]float64, d+1)
	t := 0
	steps := m.Epochs * len(x)
	for t < steps {
		t++
		i := rng.Intn(len(x))
		label := -1.0
		if y[i] == c {
			label = 1.0
		}
		eta := 1 / (m.Lambda * float64(t))
		// Margin.
		z := w[d]
		for j, v := range x[i] {
			z += w[j] * v
		}
		// Shrink (sub-gradient of the L2 term; bias unregularised).
		scale := 1 - eta*m.Lambda
		for j := 0; j < d; j++ {
			w[j] *= scale
		}
		if label*z < 1 {
			for j, v := range x[i] {
				w[j] += eta * label * v
			}
			w[d] += eta * label
		}
	}
	return w
}

// Predict returns the class with the largest one-vs-rest margin.
func (m *SVM) Predict(x []float64) int {
	if !m.fitted {
		return 0
	}
	scores := make([]float64, m.classes)
	d := len(x)
	for c, w := range m.w {
		z := w[d]
		for j, v := range x {
			z += w[j] * v
		}
		scores[c] = z
	}
	return argmax(scores)
}

var _ Classifier = (*SVM)(nil)
