package cpubench

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/sparse"
)

func testMatrix(t *testing.T, seed int64) *sparse.CSR {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	return dataset.FamilyBanded.Generate(rng, 0.3)
}

func TestMeasureBasics(t *testing.T) {
	m := testMatrix(t, 1)
	r, err := Measure(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Times) != sparse.NumKernelFormats {
		t.Fatalf("%d times", len(r.Times))
	}
	if !r.Feasible() {
		t.Fatal("banded matrix should run in every format")
	}
	best, ok := r.BestFormat()
	if !ok {
		t.Fatal("no best format")
	}
	bestT := r.Times[r.Best]
	for i, tm := range r.Times {
		if tm <= 0 || math.IsNaN(tm) {
			t.Errorf("format %d: time %v", i, tm)
		}
		if tm < bestT {
			t.Errorf("Best (%v) is not the minimum", best)
		}
	}
}

func TestMeasureInfeasibleELL(t *testing.T) {
	// One near-dense row in a tall matrix: ELL conversion exceeds the
	// library limit, so ELL must report +Inf and the result infeasible.
	tr := sparse.NewTriplet(3000, 600)
	for j := 0; j < 600; j++ {
		if err := tr.Add(0, j, 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < 3000; i++ {
		if err := tr.Add(i, i%600, 1); err != nil {
			t.Fatal(err)
		}
	}
	r, err := Measure(tr.ToCSR(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Feasible() {
		t.Error("expected ELL infeasibility")
	}
	if !math.IsInf(r.Times[2], 1) { // ELL index in kernel order
		t.Errorf("ELL time = %v, want +Inf", r.Times[2])
	}
	// Some format still wins.
	if r.Best < 0 {
		t.Error("no best format despite feasible kernels")
	}
}

func TestMeasureAll(t *testing.T) {
	ms := []*sparse.CSR{testMatrix(t, 2), testMatrix(t, 3)}
	names := []string{"a", "b"}
	lab, dropped, err := MeasureAll(names, ms, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(lab.Names)+dropped != 2 {
		t.Fatalf("names %d + dropped %d != 2", len(lab.Names), dropped)
	}
	for i, l := range lab.Labels {
		if l < 0 || l >= sparse.NumKernelFormats {
			t.Errorf("row %d: label %d", i, l)
		}
	}
	if _, _, err := MeasureAll([]string{"x"}, ms, 1); err == nil {
		t.Error("length mismatch accepted")
	}
}
