// Package cpubench measures real wall-clock SpMV times of this
// library's Go kernels on the host CPU, producing a genuinely measured
// (non-simulated) labelled dataset for format selection.
//
// The paper motivates architecture-portable selection with the spread of
// numerical workloads to "a wide variety of low-power devices"; the host
// CPU here plays the role of exactly such an extra architecture. The
// same features, clustering and labelling pipeline apply unchanged — the
// demonstration that the approach is not tied to the GPU simulator.
package cpubench

import (
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/sparse"
)

// Result holds one matrix's measured kernel times in
// sparse.KernelFormats order (COO, CSR, ELL, HYB); formats whose
// conversion failed are +Inf.
type Result struct {
	// Times are the per-format best-of-trials seconds.
	Times []float64
	// Best is the index of the fastest format, or -1 if none ran.
	Best int
}

// Feasible reports whether every kernel ran.
func (r Result) Feasible() bool {
	for _, t := range r.Times {
		if math.IsInf(t, 1) {
			return false
		}
	}
	return true
}

// BestFormat returns the fastest format, or false when nothing ran.
func (r Result) BestFormat() (sparse.Format, bool) {
	if r.Best < 0 {
		return 0, false
	}
	return sparse.KernelFormats()[r.Best], true
}

// DefaultTrials is the default repetition count. The paper averages 100
// trials; the minimum over a handful is a robust cheap estimator for
// the CPU case.
const DefaultTrials = 7

// Measure times every kernel format on the matrix and returns the
// per-format best-of-trials. Trials <= 0 selects DefaultTrials.
func Measure(m *sparse.CSR, trials int) (Result, error) {
	if trials <= 0 {
		trials = DefaultTrials
	}
	rows, cols := m.Dims()
	x := make([]float64, cols)
	for i := range x {
		x[i] = 1.0 / float64(i+1)
	}
	y := make([]float64, rows)

	r := Result{Times: make([]float64, sparse.NumKernelFormats), Best: -1}
	best := math.Inf(1)
	for i, f := range sparse.KernelFormats() {
		conv, err := sparse.Convert(m, f)
		if err != nil {
			// ELL (or another slab format) can exceed its size limit;
			// that format simply is not available for this matrix, as
			// with CUSP's conversion failures in the paper.
			r.Times[i] = math.Inf(1)
			continue
		}
		t, err := timeKernel(conv, y, x, trials)
		if err != nil {
			return Result{}, fmt.Errorf("cpubench: timing %v: %w", f, err)
		}
		r.Times[i] = t
		if t < best {
			best = t
			r.Best = i
		}
	}
	return r, nil
}

// timeKernel returns the minimum seconds over trials, with one warm-up
// run to populate caches and page in the structure.
func timeKernel(m sparse.Matrix, y, x []float64, trials int) (float64, error) {
	if err := m.SpMV(y, x); err != nil {
		return 0, err
	}
	best := math.Inf(1)
	for t := 0; t < trials; t++ {
		tm := obs.StartTimer("cpubench/spmv")
		if err := m.SpMV(y, x); err != nil {
			return 0, err
		}
		if d := tm.Stop().Seconds(); d < best {
			best = d
		}
	}
	return best, nil
}

// Labeled is a measured dataset: features must be attached by the
// caller (they come from the features package and are the same vectors
// used for the simulated architectures).
type Labeled struct {
	Names  []string
	Times  [][]float64
	Labels []int
}

// MeasureAll measures a batch of named matrices, dropping infeasible
// ones, and reports how many were dropped.
func MeasureAll(names []string, ms []*sparse.CSR, trials int) (Labeled, int, error) {
	if len(names) != len(ms) {
		return Labeled{}, 0, fmt.Errorf("cpubench: %d names but %d matrices", len(names), len(ms))
	}
	var out Labeled
	dropped := 0
	for i, m := range ms {
		r, err := Measure(m, trials)
		if err != nil {
			return Labeled{}, 0, err
		}
		if obs.Enabled() {
			obs.Default.Counter("cpubench/measured").Inc()
			if !r.Feasible() {
				obs.Default.Counter("cpubench/dropped").Inc()
			}
		}
		if !r.Feasible() {
			dropped++
			continue
		}
		out.Names = append(out.Names, names[i])
		out.Times = append(out.Times, r.Times)
		out.Labels = append(out.Labels, r.Best)
	}
	return out, dropped, nil
}
