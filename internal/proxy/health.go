package proxy

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/serve"
)

// Replica health. Each replica is probed actively via its /readyz (the
// same endpoint orchestrators gate on, so "ready" means every
// configured artifact is loaded, not just that the port answers) and
// passively by the request path: a transport-level failure ejects the
// replica immediately, before the next health tick, so routing stops
// offering a dead shard as a hedge target. Ejected replicas are
// re-probed on an exponential backoff and readmitted on the first
// passing probe.

// replica is the proxy's view of one serve instance.
type replica struct {
	addr string

	mu      sync.Mutex
	healthy bool
	lastErr string
	// fails counts consecutive failed probes since the last success.
	fails int64
	// backoff is the current readmit-probe spacing; nextProbe is when
	// the next probe of an ejected replica is due.
	backoff   time.Duration
	nextProbe time.Time
	// Last good /readyz body, surfaced in the fleet status so one GET
	// shows every replica's uptime and per-arch artifact hashes.
	uptime float64
	arches []serve.ArchStatus
}

// ReplicaStatus is one replica's row in the /v1/fleet answer.
type ReplicaStatus struct {
	Addr    string `json:"addr"`
	Healthy bool   `json:"healthy"`
	// ConsecutiveFailures counts failed probes since the last success;
	// Ejections counts healthy->ejected transitions over the proxy's
	// lifetime.
	ConsecutiveFailures int64              `json:"consecutive_failures,omitempty"`
	Ejections           int64              `json:"ejections,omitempty"`
	LastError           string             `json:"last_error,omitempty"`
	UptimeSeconds       float64            `json:"uptime_seconds,omitempty"`
	Arches              []serve.ArchStatus `json:"arches,omitempty"`
}

// healthLoop probes the fleet every HealthInterval until ctx ends.
func (p *Proxy) healthLoop(ctx context.Context) {
	t := time.NewTicker(p.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			p.CheckAll(ctx)
		}
	}
}

// CheckAll probes every replica once (respecting ejected replicas'
// backoff windows) and updates the ring. Exported so tests and the
// serve loop can force a converged view without waiting out a tick.
func (p *Proxy) CheckAll(ctx context.Context) {
	now := time.Now()
	var wg sync.WaitGroup
	for _, rep := range p.replicas {
		rep.mu.Lock()
		due := rep.healthy || !now.Before(rep.nextProbe)
		rep.mu.Unlock()
		if !due {
			continue
		}
		wg.Add(1)
		go func(rep *replica) {
			defer wg.Done()
			p.probe(ctx, rep)
		}(rep)
	}
	wg.Wait()
}

// probe fetches one replica's /readyz and applies the verdict.
func (p *Proxy) probe(ctx context.Context, rep *replica) {
	ctx, cancel := context.WithTimeout(ctx, p.probeTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+rep.addr+"/readyz", nil)
	if err != nil {
		p.noteProbeResult(rep, serve.ReadyResponse{}, err)
		return
	}
	resp, err := p.client.Do(req)
	if err != nil {
		p.noteProbeResult(rep, serve.ReadyResponse{}, err)
		return
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	var ready serve.ReadyResponse
	if derr := json.Unmarshal(body, &ready); derr != nil {
		ready = serve.ReadyResponse{}
	}
	if resp.StatusCode != http.StatusOK {
		msg := ready.Error
		if msg == "" {
			msg = fmt.Sprintf("readyz answered %d", resp.StatusCode)
		}
		p.noteProbeResult(rep, ready, fmt.Errorf("%s", msg))
		return
	}
	p.noteProbeResult(rep, ready, nil)
}

func (p *Proxy) probeTimeout() time.Duration {
	if t := p.cfg.HealthInterval; t > 2*time.Second {
		return t
	}
	return 2 * time.Second
}

// noteProbeResult applies one probe verdict: a pass readmits (or keeps)
// the replica; a failure ejects it and doubles the readmit backoff.
func (p *Proxy) noteProbeResult(rep *replica, ready serve.ReadyResponse, err error) {
	rep.mu.Lock()
	if err == nil {
		wasEjected := !rep.healthy
		rep.healthy = true
		rep.lastErr = ""
		rep.fails = 0
		rep.backoff = 0
		rep.uptime = ready.UptimeSeconds
		rep.arches = ready.Arches
		rep.mu.Unlock()
		p.ring.Add(rep.addr)
		p.replicaHealthy.With(rep.addr).Set(1)
		if wasEjected {
			p.readmits.Inc()
		}
		p.ringSize.Set(float64(p.ring.Size()))
		return
	}
	rep.fails++
	rep.lastErr = err.Error()
	wasHealthy := rep.healthy
	rep.healthy = false
	if rep.backoff == 0 {
		rep.backoff = p.cfg.HealthInterval
	} else if rep.backoff < p.cfg.MaxBackoff {
		rep.backoff *= 2
	}
	if rep.backoff > p.cfg.MaxBackoff {
		rep.backoff = p.cfg.MaxBackoff
	}
	rep.nextProbe = time.Now().Add(rep.backoff)
	rep.mu.Unlock()
	p.ring.Remove(rep.addr)
	p.replicaHealthy.With(rep.addr).Set(0)
	if wasHealthy {
		p.ejections.Inc()
		p.replicaEject.With(rep.addr).Inc()
	}
	p.ringSize.Set(float64(p.ring.Size()))
}

// noteTransportFailure is the passive path: a request-forwarding
// attempt that failed at the transport level (connection refused or
// reset, not an HTTP status) ejects the replica immediately — the next
// key routed to it would hit the same dead socket, and the hedge
// budget is better spent on live shards. The health loop readmits it.
func (p *Proxy) noteTransportFailure(addr string, err error) {
	rep := p.replicas[addr]
	if rep == nil {
		return
	}
	p.noteProbeResult(rep, serve.ReadyResponse{}, err)
}

// replicaStatus snapshots one replica for /v1/fleet.
func (p *Proxy) replicaStatus(rep *replica) ReplicaStatus {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	return ReplicaStatus{
		Addr:                rep.addr,
		Healthy:             rep.healthy,
		ConsecutiveFailures: rep.fails,
		Ejections:           p.ejectedCount(rep.addr),
		LastError:           rep.lastErr,
		UptimeSeconds:       rep.uptime,
		Arches:              rep.arches,
	}
}

// ejectedCount reads the per-replica ejection tally back out of the
// labeled gauge-free world: the proxy keeps it on the counter vector so
// /metrics and /v1/fleet agree by construction.
func (p *Proxy) ejectedCount(addr string) int64 {
	return p.replicaEject.With(addr).Value()
}
