package proxy

import (
	"bytes"
	"context"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/registry"
)

// Config tunes the fleet front door. The zero value (plus Replicas)
// selects production defaults.
type Config struct {
	// Replicas are the serve instances behind the proxy (host:port).
	Replicas []string
	// Vnodes is the consistent-hash virtual-node count per replica
	// (default 64).
	Vnodes int
	// Timeout bounds one client request end to end, every hedge and
	// retry included (default 30s).
	Timeout time.Duration
	// HedgeAfter is how long the primary replica may sit on a
	// prediction before the proxy races a second attempt against the
	// next replica on the ring (default 250ms; <= 0 keeps the default —
	// hedging is the point of the tier). One hedge per request.
	HedgeAfter time.Duration
	// HealthInterval spaces the active /readyz probes (default 1s).
	HealthInterval time.Duration
	// MaxBackoff caps the readmit-probe backoff for ejected replicas
	// (default 15s).
	MaxBackoff time.Duration
	// MaxBodyBytes bounds the request body the proxy will buffer for
	// hedging (default 64 MiB, matching serve).
	MaxBodyBytes int64
	// PendingFeedback bounds the request-ID -> replica table that
	// routes /v1/feedback to the replica that answered the prediction
	// (default 8192 entries, FIFO eviction).
	PendingFeedback int
	// AdminToken gates the proxy's own admin surface (/v1/admin/trace).
	// Empty disables it; the replica fan-out endpoints are unaffected —
	// they forward the client's Authorization to the replicas, which
	// hold their own tokens.
	AdminToken string
	// TraceCapacity bounds the proxy's tail-sampled trace store
	// (default 128; negative disables proxy-side tracing).
	TraceCapacity int
	// SlowRequest marks a proxied request slow for the trace store
	// (default 250ms via the store; negative disables the threshold).
	SlowRequest time.Duration
	// TraceSample keeps one in N otherwise-uninteresting traces
	// (default 100; negative disables sampling).
	TraceSample int
	// Client overrides the forwarding HTTP client (tests); nil builds
	// one with sane connection pooling.
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Vnodes <= 0 {
		c.Vnodes = defaultVnodes
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.HedgeAfter <= 0 {
		c.HedgeAfter = 250 * time.Millisecond
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = time.Second
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 15 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.PendingFeedback <= 0 {
		c.PendingFeedback = 8192
	}
	return c
}

// Proxy is the HTTP front door over a fleet of serve replicas:
//
//	GET  /healthz              the proxy's own liveness
//	GET  /readyz               fleet readiness: 200 while >= 1 replica
//	                           is healthy, body is the fleet status
//	GET  /v1/fleet             fleet status (replicas, ring, hedges)
//	GET  /metrics              the proxy's own Prometheus exposition
//	GET  /v1/model             forwarded to the arch's ring owner
//	POST /v1/predict/matrix    consistent-hashed on the body, hedged
//	POST /v1/predict/features  consistent-hashed on the body, hedged
//	POST /v1/predict/batch     consistent-hashed on the body, hedged
//	POST /v1/feedback          routed to the replica that served the
//	                           prediction (by X-Request-ID), never
//	                           hedged — outcomes are consume-once
//	GET  /v1/admin/slo         per-replica reports + fleet totals
//	GET  /v1/admin/quality     per-replica reports + fleet totals
//	GET  /v1/admin/shadow      per-replica reports + fleet agreement
//	GET  /v1/admin/trace       retained proxy traces (own -admin-token)
//	GET  /v1/admin/trace/{id}  one trace, replica spans stitched in
//
// Prediction requests hash on the request body's content (the same
// identity serve's prediction LRU and feature memo key on), so a
// repeated matrix always lands on the replica whose caches are hot for
// it; requests with no body route by arch. The admin fan-outs forward
// the client's Authorization header verbatim — the proxy holds no
// tokens of its own.
//
// Metrics, in the shared obs registry:
//
//	proxy/requests            counter    client requests accepted
//	proxy/errors              counter    client requests answered >= 500
//	proxy/hedges              counter    hedge attempts launched
//	proxy/hedge_wins          counter    requests answered by the hedge
//	proxy/retries             counter    failover retries after a failed attempt
//	proxy/ejections           counter    healthy -> ejected transitions
//	proxy/readmits            counter    ejected -> healthy transitions
//	proxy/ring/size           gauge      replicas currently in the ring
//	proxy/request/seconds     histogram  end-to-end proxied latency
//	proxy/replica/requests{replica}  counter  attempts forwarded per replica
//	proxy/replica/errors{replica}    counter  failed attempts per replica
//	proxy/replica/healthy{replica}   gauge    1 while the replica is in the ring
//	proxy/replica/ejections{replica} counter  ejections per replica
//	proxy/trace/kept          counter    traces retained by the tail sampler
//	proxy/trace/dropped       counter    traces offered but not retained
//	proxy/trace/evicted       counter    retained traces evicted under pressure
type Proxy struct {
	cfg      Config
	ring     *Ring
	replicas map[string]*replica
	order    []string // fleet in configured order, for stable listings
	client   *http.Client
	routes   *routeTable
	traces   *obs.TraceStore // nil when TraceCapacity < 0
	started  time.Time

	requests  *obs.Counter
	errors    *obs.Counter
	hedges    *obs.Counter
	hedgeWins *obs.Counter
	retries   *obs.Counter
	ejections *obs.Counter
	readmits  *obs.Counter
	ringSize  *obs.Gauge
	latency   *obs.Histogram

	replicaReqs    *obs.CounterVec
	replicaErrs    *obs.CounterVec
	replicaHealthy *obs.GaugeVec
	replicaEject   *obs.CounterVec
}

// New builds the front door. Replicas start outside the ring and join
// on their first passing health probe, so a proxy started before its
// fleet converges on its own.
func New(cfg Config) (*Proxy, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("proxy: no replicas configured")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	p := &Proxy{
		cfg:      cfg,
		ring:     NewRing(cfg.Vnodes),
		replicas: map[string]*replica{},
		client:   client,
		routes:   newRouteTable(cfg.PendingFeedback),
		started:  time.Now(),

		requests:  obs.Default.Counter("proxy/requests"),
		errors:    obs.Default.Counter("proxy/errors"),
		hedges:    obs.Default.Counter("proxy/hedges"),
		hedgeWins: obs.Default.Counter("proxy/hedge_wins"),
		retries:   obs.Default.Counter("proxy/retries"),
		ejections: obs.Default.Counter("proxy/ejections"),
		readmits:  obs.Default.Counter("proxy/readmits"),
		ringSize:  obs.Default.Gauge("proxy/ring/size"),
		latency:   obs.Default.Histogram("proxy/request/seconds", obs.DurationBuckets),

		replicaReqs:    obs.Default.CounterVec("proxy/replica/requests", "replica"),
		replicaErrs:    obs.Default.CounterVec("proxy/replica/errors", "replica"),
		replicaHealthy: obs.Default.GaugeVec("proxy/replica/healthy", "replica"),
		replicaEject:   obs.Default.CounterVec("proxy/replica/ejections", "replica"),
	}
	if cfg.TraceCapacity >= 0 {
		p.traces = obs.NewTraceStore(obs.TraceConfig{
			Capacity:      cfg.TraceCapacity,
			SlowThreshold: cfg.SlowRequest,
			SampleEvery:   cfg.TraceSample,
			Metrics:       obs.Default,
			Prefix:        "proxy/trace",
		})
	}
	for _, addr := range cfg.Replicas {
		if addr == "" {
			return nil, fmt.Errorf("proxy: empty replica address")
		}
		if _, dup := p.replicas[addr]; dup {
			return nil, fmt.Errorf("proxy: replica %s configured twice", addr)
		}
		p.replicas[addr] = &replica{addr: addr}
		p.order = append(p.order, addr)
		p.replicaHealthy.With(addr).Set(0)
	}
	return p, nil
}

// FleetStatus is the /v1/fleet (and /readyz) body.
type FleetStatus struct {
	// Ready is true while at least one replica is healthy.
	Ready         bool    `json:"ready"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	ReplicaCount  int     `json:"replica_count"`
	HealthyCount  int     `json:"healthy_count"`
	RingSize      int     `json:"ring_size"`
	Requests      int64   `json:"requests"`
	Errors        int64   `json:"errors"`
	Hedges        int64   `json:"hedges"`
	HedgeWins     int64   `json:"hedge_wins"`
	Retries       int64   `json:"retries"`
	Ejections     int64   `json:"ejections"`
	Readmits      int64   `json:"readmits"`
	// HedgeRate is Hedges/Requests (0 on no traffic).
	HedgeRate float64         `json:"hedge_rate"`
	Replicas  []ReplicaStatus `json:"replicas"`
}

// Fleet snapshots the fleet view.
func (p *Proxy) Fleet() FleetStatus {
	st := FleetStatus{
		UptimeSeconds: time.Since(p.started).Seconds(),
		ReplicaCount:  len(p.order),
		RingSize:      p.ring.Size(),
		Requests:      p.requests.Value(),
		Errors:        p.errors.Value(),
		Hedges:        p.hedges.Value(),
		HedgeWins:     p.hedgeWins.Value(),
		Retries:       p.retries.Value(),
		Ejections:     p.ejections.Value(),
		Readmits:      p.readmits.Value(),
	}
	if st.Requests > 0 {
		st.HedgeRate = float64(st.Hedges) / float64(st.Requests)
	}
	for _, addr := range p.order {
		rs := p.replicaStatus(p.replicas[addr])
		if rs.Healthy {
			st.HealthyCount++
		}
		st.Replicas = append(st.Replicas, rs)
	}
	st.Ready = st.HealthyCount > 0
	return st
}

// Handler returns the proxy's HTTP handler.
func (p *Proxy) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		st := p.Fleet()
		status := http.StatusOK
		if !st.Ready {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, st)
	})
	mux.HandleFunc("/v1/fleet", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, p.Fleet())
	})
	mux.Handle("/metrics", obs.PromHandler(obs.Default))
	mux.HandleFunc("/v1/model", p.handleByArch)
	mux.HandleFunc("/v1/predict/matrix", p.handlePredict)
	mux.HandleFunc("/v1/predict/features", p.handlePredict)
	mux.HandleFunc("/v1/predict/batch", p.handlePredict)
	mux.HandleFunc("/v1/feedback", p.handleFeedback)
	mux.HandleFunc("/v1/admin/slo", p.handleFanout)
	mux.HandleFunc("/v1/admin/quality", p.handleFanout)
	mux.HandleFunc("/v1/admin/shadow", p.handleFanout)
	mux.HandleFunc("/v1/admin/trace", p.adminOnly(p.handleTraceList))
	mux.HandleFunc("/v1/admin/trace/", p.adminOnly(p.handleTraceGet))
	return mux
}

// Run serves the front door on addr until ctx is cancelled, starting
// the health loop and blocking until shutdown. ready, when non-nil,
// receives the bound address (how callers learn the port of ":0"). An
// initial synchronous CheckAll seeds the ring before the listener
// accepts, so the first request never races an empty ring against
// healthy replicas.
func (p *Proxy) Run(ctx context.Context, addr string, ready func(bound string)) error {
	p.CheckAll(ctx)
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	go p.healthLoop(hctx)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("proxy: listening on %s: %w", addr, err)
	}
	if ready != nil {
		ready(ln.Addr().String())
	}
	srv := &http.Server{
		Handler:           p.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       p.cfg.Timeout,
		WriteTimeout:      p.cfg.Timeout + p.cfg.HedgeAfter,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return fmt.Errorf("proxy: %w", err)
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("proxy: shutdown: %w", err)
	}
	return nil
}

// proxied is one fully buffered upstream response. Responses are small
// JSON documents (predictions, reports), so buffering them decouples
// hedge cancellation from the client copy.
type proxied struct {
	status int
	header http.Header
	body   []byte
	addr   string
	hedged bool
}

// attemptResult is one upstream attempt's outcome.
type attemptResult struct {
	proxied
	err error
}

// maxTraceIDLen bounds an attacker-supplied X-Request-ID, matching the
// serve tier's bound.
const maxTraceIDLen = 128

// newTraceID mints a 16-hex-digit random trace ID (the proxy mints the
// fleet-wide request ID when the client did not supply one, so every
// hop — proxy spans, replica spans, logs — shares the same key).
func newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// handlePredict routes one prediction request: consistent-hash on the
// body content (the identity the replica caches key on), forward to
// the ring owner, hedge onto the next distinct replica when the owner
// is slow, fail over when an attempt dies.
//
// The proxy is the trace root for fleet requests: it mints (or adopts)
// the X-Request-ID, opens an always-on root span, and every upstream
// attempt — owner, hedge, failover — becomes a sibling child span, so
// a retained trace shows the full race, abandoned attempts included.
func (p *Proxy) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "use POST"})
		return
	}
	p.requests.Inc()
	trace := r.Header.Get("X-Request-ID")
	if trace == "" {
		trace = newTraceID()
	} else if len(trace) > maxTraceIDLen {
		trace = trace[:maxTraceIDLen]
	}
	// Write the (possibly minted) ID back onto the request so every
	// attempt forwards it and the replicas adopt it as their trace ID.
	r.Header.Set("X-Request-ID", trace)
	start := time.Now()
	defer func() { p.latency.ObserveExemplar(time.Since(start).Seconds(), trace) }()

	ctx := obs.WithTraceID(r.Context(), trace)
	var root *obs.Span
	if p.traces != nil {
		ctx, root = obs.StartAlways(ctx, r.URL.Path)
	}
	r = r.WithContext(ctx)

	body, err := p.readBody(w, r)
	if err != nil {
		if root != nil {
			root.SetMetric("status", http.StatusBadRequest)
			p.traces.Offer(root.EndData(), http.StatusBadRequest)
		}
		return // readBody already answered
	}
	key := routeKey(body, r.URL.Query().Get("arch"))
	res, info, ferr := p.forward(r, body, key, true)
	status := res.status
	if ferr != nil {
		p.errors.Inc()
		status = http.StatusBadGateway
		writeJSON(w, status, errorBody{Error: "fleet: " + ferr.Error()})
	} else {
		if res.status >= 500 {
			p.errors.Inc()
		}
		// Remember which replica answered, so a later /v1/feedback
		// carrying this X-Request-ID lands on the replica holding the
		// pending entry.
		if id := res.header.Get("X-Request-ID"); id != "" && res.status == http.StatusOK {
			p.routes.put(id, res.addr)
		}
		p.copyResponse(w, res)
	}
	if root != nil {
		root.SetMetric("status", float64(status))
		if sd := root.EndData(); sd != nil {
			var forced []string
			if info.hedged {
				forced = append(forced, obs.KeepHedged)
			}
			if info.failover {
				forced = append(forced, obs.KeepFailover)
			}
			if r.Header.Get(obs.TraceKeepHeader) != "" {
				forced = append(forced, obs.KeepRequested)
			}
			p.traces.Offer(sd, status, forced...)
		}
	}
}

// handleByArch routes body-less endpoints (/v1/model) by arch: the
// same replica that owns the arch's keyspace fallback answers, so
// repeated fleet-status scripts see a stable view.
func (p *Proxy) handleByArch(w http.ResponseWriter, r *http.Request) {
	p.requests.Inc()
	key := "arch:" + r.URL.Query().Get("arch")
	res, _, ferr := p.forward(r, nil, key, true)
	if ferr != nil {
		p.errors.Inc()
		writeJSON(w, http.StatusBadGateway, errorBody{Error: "fleet: " + ferr.Error()})
		return
	}
	if res.status >= 500 {
		p.errors.Inc()
	}
	p.copyResponse(w, res)
}

// handleFeedback forwards one feedback report to the replica that
// served the prediction it references. Feedback is consume-once on the
// replica, so it is never hedged or retried — a duplicate delivery
// would burn the join key and 404.
func (p *Proxy) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "use POST"})
		return
	}
	p.requests.Inc()
	body, err := p.readBody(w, r)
	if err != nil {
		return
	}
	var ref struct {
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(body, &ref); err != nil || ref.RequestID == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "feedback needs a request_id"})
		return
	}
	addr, ok := p.routes.get(ref.RequestID)
	if !ok {
		writeJSON(w, http.StatusNotFound,
			errorBody{Error: "unknown request_id (prediction not served through this proxy, or evicted)"})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), p.cfg.Timeout)
	defer cancel()
	res := p.attempt(ctx, r, addr, body, false)
	if res.err != nil {
		p.errors.Inc()
		writeJSON(w, http.StatusBadGateway, errorBody{Error: res.err.Error()})
		return
	}
	if res.status >= 500 {
		p.errors.Inc()
	}
	p.copyResponse(w, res.proxied)
}

// forwardInfo reports how a forward was answered — whether a hedge
// was launched and whether any failover retry happened — the facts the
// trace store force-keeps traces for.
type forwardInfo struct {
	hedged   bool
	failover bool
}

// forward answers one request through the ring with hedging and
// failover: launch the owner, race a hedge after HedgeAfter, fail over
// to the next distinct replica on a dead attempt, first success wins.
// A non-nil error means no attempt produced an HTTP response at all —
// a returned proxied may still carry a 5xx every replica agreed on,
// which forwards to the client as-is.
//
// When r's context carries a root span, every attempt gets a child
// span named attempt/<addr>; attempts still in flight when a winner
// returns are marked abandoned and closed, so the trace records the
// whole race, not just the winning leg.
func (p *Proxy) forward(r *http.Request, body []byte, key string, allowHedge bool) (proxied, forwardInfo, error) {
	var info forwardInfo
	targets := p.ring.LookupN(key, 2)
	if len(targets) == 0 {
		return proxied{}, info, fmt.Errorf("no healthy replicas (fleet of %d, all ejected)", len(p.order))
	}
	ctx, cancel := context.WithTimeout(r.Context(), p.cfg.Timeout)
	defer cancel()

	open := map[string]*obs.Span{}
	defer func() {
		for _, sp := range open {
			sp.SetMetric("abandoned", 1)
			sp.End()
		}
	}()
	closeSpan := func(res attemptResult) {
		sp := open[res.addr]
		if sp == nil {
			return
		}
		delete(open, res.addr)
		if res.err != nil {
			sp.SetMetric("transport_error", 1)
		} else {
			sp.SetMetric("status", float64(res.status))
		}
		sp.End()
	}

	resc := make(chan attemptResult, len(targets))
	launched := 0
	launch := func(hedged bool) {
		addr := targets[launched]
		launched++
		_, sp := obs.StartChild(ctx, "attempt/"+addr)
		if hedged {
			sp.SetMetric("hedged", 1)
		}
		if sp != nil {
			open[addr] = sp
		}
		go func() {
			resc <- p.attempt(ctx, r, addr, body, hedged)
		}()
	}
	launch(false)

	var hedgeC <-chan time.Time
	if allowHedge && len(targets) > 1 {
		timer := time.NewTimer(p.cfg.HedgeAfter)
		defer timer.Stop()
		hedgeC = timer.C
	}

	outstanding := 1
	var lastBad *proxied
	var lastErr error
	for {
		select {
		case <-ctx.Done():
			return proxied{}, info, fmt.Errorf("fleet timeout after %s: %w", p.cfg.Timeout, ctx.Err())
		case <-hedgeC:
			hedgeC = nil
			if launched < len(targets) {
				p.hedges.Inc()
				info.hedged = true
				launch(true)
				outstanding++
			}
		case res := <-resc:
			outstanding--
			closeSpan(res)
			switch {
			case res.err != nil:
				// Transport-level death: eject now so the ring stops
				// offering this replica before the next health tick.
				p.noteTransportFailure(res.addr, res.err)
				lastErr = res.err
			case retryable(res.status):
				lastBad = &res.proxied
			default:
				if res.hedged {
					p.hedgeWins.Inc()
				}
				return res.proxied, info, nil
			}
			// The attempt failed. Fail over to the next untried replica;
			// once every target has been tried and answered, surface the
			// least-bad outcome.
			if launched < len(targets) {
				p.retries.Inc()
				info.failover = true
				launch(false)
				outstanding++
			} else if outstanding == 0 {
				if lastBad != nil {
					return *lastBad, info, nil
				}
				return proxied{}, info, lastErr
			}
		}
	}
}

// retryable marks upstream statuses worth another replica: transient
// server-side failures. 501 (static backend, by design) and every 4xx
// (the request itself is wrong — another replica hosting the same
// artifacts answers identically) forward as-is.
func retryable(status int) bool {
	return status >= 500 && status != http.StatusNotImplemented
}

// attempt forwards the request to one replica and buffers the answer.
func (p *Proxy) attempt(ctx context.Context, r *http.Request, addr string, body []byte, hedged bool) attemptResult {
	p.replicaReqs.With(addr).Inc()
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, "http://"+addr+r.URL.RequestURI(), reader)
	if err != nil {
		p.replicaErrs.With(addr).Inc()
		return attemptResult{proxied: proxied{addr: addr, hedged: hedged}, err: err}
	}
	copyHeader(req.Header, r.Header, "Content-Type", "Authorization", "X-Request-ID", "Accept",
		obs.TraceKeepHeader)
	// Count this proxy as one hop, so replica root spans record their
	// depth behind the front door. Hedge attempts are force-kept on the
	// replica too: when the hedge loses the race its replica-side trace
	// is the only record of what the slow leg was doing.
	hop := 1
	if prev, err := strconv.Atoi(r.Header.Get(obs.TraceHopHeader)); err == nil && prev > 0 {
		hop = prev + 1
	}
	req.Header.Set(obs.TraceHopHeader, strconv.Itoa(hop))
	if hedged {
		req.Header.Set(obs.TraceKeepHeader, "hedged")
	}
	resp, err := p.client.Do(req)
	if err != nil {
		p.replicaErrs.With(addr).Inc()
		return attemptResult{proxied: proxied{addr: addr, hedged: hedged}, err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, p.cfg.MaxBodyBytes+1))
	if err != nil {
		p.replicaErrs.With(addr).Inc()
		return attemptResult{proxied: proxied{addr: addr, hedged: hedged}, err: err}
	}
	if resp.StatusCode >= 500 {
		p.replicaErrs.With(addr).Inc()
	}
	return attemptResult{proxied: proxied{
		status: resp.StatusCode,
		header: resp.Header.Clone(),
		body:   data,
		addr:   addr,
		hedged: hedged,
	}}
}

// copyResponse relays a buffered upstream answer to the client,
// stamping which replica won.
func (p *Proxy) copyResponse(w http.ResponseWriter, res proxied) {
	for _, k := range []string{"Content-Type", "X-Request-ID", "X-Model-Hash", "WWW-Authenticate", "Allow"} {
		if v := res.header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.Header().Set("X-Proxy-Replica", res.addr)
	w.WriteHeader(res.status)
	w.Write(res.body)
}

// readBody buffers the (bounded) request body; hedging needs a
// replayable copy. A nil return means the response is already written.
func (p *Proxy) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, p.cfg.MaxBodyBytes+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "reading request body: " + err.Error()})
		return nil, err
	}
	if int64(len(body)) > p.cfg.MaxBodyBytes {
		err := fmt.Errorf("request body exceeds %d bytes", p.cfg.MaxBodyBytes)
		writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{Error: err.Error()})
		return nil, err
	}
	return body, nil
}

// routeKey is the consistent-hash identity of one prediction request:
// the body's content hash — the same bytes serve keys its caches on —
// with the arch as the fallback for empty bodies.
func routeKey(body []byte, arch string) string {
	if len(body) == 0 {
		return "arch:" + arch
	}
	sum := sha256.Sum256(body)
	return hex.EncodeToString(sum[:16])
}

// ---------------------------------------------------------------------
// Trace admin API: the proxy's own retained traces, with replica span
// trees stitched in on fetch.

// adminOnly gates a proxy-admin handler behind the proxy's own token
// (the fan-out endpoints forward the client's Authorization to the
// replicas instead; traces are the proxy's own state, so the proxy
// holds the gate).
func (p *Proxy) adminOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "use GET"})
			return
		}
		if !p.authorized(r) {
			w.Header().Set("WWW-Authenticate", `Bearer realm="spmvselect proxy admin"`)
			msg := "invalid admin token"
			if p.cfg.AdminToken == "" {
				msg = "admin API disabled: start the proxy with -admin-token"
			}
			writeJSON(w, http.StatusUnauthorized, errorBody{Error: msg})
			return
		}
		h(w, r)
	}
}

// authorized reports whether r carries the proxy's admin token,
// constant-time over SHA-256 digests like the serve tier.
func (p *Proxy) authorized(r *http.Request) bool {
	if p.cfg.AdminToken == "" {
		return false
	}
	got := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
	a := sha256.Sum256([]byte(got))
	b := sha256.Sum256([]byte(p.cfg.AdminToken))
	return subtle.ConstantTimeCompare(a[:], b[:]) == 1
}

// traceListResponse is the /v1/admin/trace list answer.
type traceListResponse struct {
	Count  int                `json:"count"`
	Traces []obs.TraceSummary `json:"traces"`
}

func (p *Proxy) handleTraceList(w http.ResponseWriter, r *http.Request) {
	if p.traces == nil {
		writeJSON(w, http.StatusNotImplemented,
			errorBody{Error: "tracing disabled on this proxy (-trace -1)"})
		return
	}
	list := p.traces.List()
	if list == nil {
		list = []obs.TraceSummary{}
	}
	writeJSON(w, http.StatusOK, traceListResponse{Count: len(list), Traces: list})
}

// stitchedTrace is the /v1/admin/trace/<id> answer: the proxy's own
// span tree for the request with each replica's retained tree grafted
// under the attempt span that reached it. Field names match
// obs.TraceEntry, so clients decode either shape.
type stitchedTrace struct {
	TraceID string        `json:"trace_id"`
	Root    *obs.SpanData `json:"root"`
	Reasons []string      `json:"reasons"`
	Status  int           `json:"status"`
	At      time.Time     `json:"at"`
	// StitchedFrom lists the replicas whose span trees were grafted in;
	// an attempt absent here either kept no trace (sampled out on the
	// replica) or could not be reached.
	StitchedFrom []string `json:"stitched_from,omitempty"`
}

// handleTraceGet fetches one retained trace by request ID and stitches
// in the replica-side trees: for every attempt/<addr> child span the
// proxy asks that replica's /v1/admin/trace/<id>, forwarding the
// client's Authorization (the replicas hold their own admin tokens),
// and grafts the returned root under the attempt span. Cross-hop
// stitching is best-effort — a replica that sampled the trace out or
// is down just leaves its attempt span childless.
func (p *Proxy) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	if p.traces == nil {
		writeJSON(w, http.StatusNotImplemented,
			errorBody{Error: "tracing disabled on this proxy (-trace -1)"})
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/admin/trace/")
	if id == "" {
		p.handleTraceList(w, r)
		return
	}
	e := p.traces.Get(id)
	if e == nil {
		writeJSON(w, http.StatusNotFound,
			errorBody{Error: "no retained trace with ID " + id + " (evicted, sampled out, or never seen)"})
		return
	}
	root, from := p.stitch(r, e)
	writeJSON(w, http.StatusOK, stitchedTrace{
		TraceID:      e.TraceID,
		Root:         root,
		Reasons:      e.Reasons,
		Status:       e.Status,
		At:           e.At,
		StitchedFrom: from,
	})
}

// stitch returns a copy of e's tree with replica trees grafted under
// the attempt spans. The stored tree is never mutated — only the nodes
// on the modified path are cloned.
func (p *Proxy) stitch(r *http.Request, e *obs.TraceEntry) (*obs.SpanData, []string) {
	root := *e.Root
	root.Children = append([]*obs.SpanData(nil), e.Root.Children...)
	var from []string
	for i, c := range root.Children {
		addr, ok := strings.CutPrefix(c.Name, "attempt/")
		if !ok {
			continue
		}
		sub := p.fetchReplicaTrace(r, addr, e.TraceID)
		if sub == nil {
			continue
		}
		cc := *c
		cc.Children = append(append([]*obs.SpanData(nil), c.Children...), sub)
		root.Children[i] = &cc
		from = append(from, addr)
	}
	return &root, from
}

// fetchReplicaTrace asks one replica for its retained span tree of
// trace id. Nil on any failure — stitching is best-effort.
func (p *Proxy) fetchReplicaTrace(r *http.Request, addr, id string) *obs.SpanData {
	ctx, cancel := context.WithTimeout(r.Context(), p.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		"http://"+addr+"/v1/admin/trace/"+id, nil)
	if err != nil {
		return nil
	}
	copyHeader(req.Header, r.Header, "Authorization")
	resp, err := p.client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil
	}
	var e obs.TraceEntry
	if err := json.NewDecoder(io.LimitReader(resp.Body, p.cfg.MaxBodyBytes)).Decode(&e); err != nil {
		return nil
	}
	return e.Root
}

// ---------------------------------------------------------------------
// Admin fan-out.

// fanoutResponse is the aggregated admin answer: every replica's raw
// report side by side, transport failures called out, and a fleet
// summary where the path has a natural one.
type fanoutResponse struct {
	Path     string                     `json:"path"`
	Replicas map[string]json.RawMessage `json:"replicas"`
	Failed   map[string]string          `json:"failed,omitempty"`
	Fleet    any                        `json:"fleet,omitempty"`
}

// handleFanout GETs the same admin path from every configured replica
// in parallel (ejected ones included — telemetry about a sick replica
// is the interesting kind), forwarding the client's Authorization
// header verbatim, and aggregates the fleet view.
func (p *Proxy) handleFanout(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "use GET"})
		return
	}
	p.requests.Inc()
	ctx, cancel := context.WithTimeout(r.Context(), p.cfg.Timeout)
	defer cancel()

	type part struct {
		addr   string
		status int
		body   []byte
		err    error
	}
	parts := make([]part, len(p.order))
	var wg sync.WaitGroup
	for i, addr := range p.order {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			res := p.attempt(ctx, r, addr, nil, false)
			parts[i] = part{addr: addr, status: res.status, body: res.body, err: res.err}
		}(i, addr)
	}
	wg.Wait()

	out := fanoutResponse{Path: r.URL.Path, Replicas: map[string]json.RawMessage{}}
	worst := http.StatusOK
	for _, pt := range parts {
		if pt.err != nil {
			if out.Failed == nil {
				out.Failed = map[string]string{}
			}
			out.Failed[pt.addr] = pt.err.Error()
			continue
		}
		if json.Valid(pt.body) {
			out.Replicas[pt.addr] = json.RawMessage(pt.body)
		} else {
			raw, _ := json.Marshal(string(pt.body))
			out.Replicas[pt.addr] = raw
		}
		// A replica refusing auth fails the whole aggregate: partial
		// admin views hide exactly the replica you are debugging.
		if pt.status > worst {
			worst = pt.status
		}
	}
	if len(out.Replicas) == 0 && len(out.Failed) > 0 {
		writeJSON(w, http.StatusBadGateway, out)
		return
	}
	if worst == http.StatusOK {
		out.Fleet = p.summarize(r.URL.Path, out.Replicas)
	}
	writeJSON(w, worst, out)
}

// fleetSLOWindow is one aggregated SLO window: request and error
// totals across the fleet with the combined availability.
type fleetSLOWindow struct {
	Window       string  `json:"window"`
	Requests     int64   `json:"requests"`
	Errors       int64   `json:"errors"`
	Availability float64 `json:"availability"`
}

// fleetShadowSummary aggregates the shadow reports: totals plus the
// minimum per-replica agreement — the number a fleet rollout gates on,
// because promotion is only safe when the weakest replica agrees.
type fleetShadowSummary struct {
	Scored       int64   `json:"scored"`
	Disagree     int64   `json:"disagree"`
	MinAgreement float64 `json:"min_agreement"`
	Replicas     int     `json:"replicas"`
}

// fleetQualitySummary aggregates the measured-quality reports.
type fleetQualitySummary struct {
	Accepted   int64 `json:"accepted"`
	Samples    int64 `json:"samples"`
	ServedOnly int64 `json:"served_only"`
}

// summarize computes the per-path fleet rollup from the raw replica
// reports. Unknown paths (or undecodable reports) summarize to nil —
// the raw per-replica view is still there.
func (p *Proxy) summarize(path string, replicas map[string]json.RawMessage) any {
	addrs := make([]string, 0, len(replicas))
	for a := range replicas {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	switch path {
	case "/v1/admin/slo":
		byWindow := map[string]*fleetSLOWindow{}
		var order []string
		for _, a := range addrs {
			var rep obs.SLOReport
			if json.Unmarshal(replicas[a], &rep) != nil {
				return nil
			}
			for _, win := range rep.Windows {
				fw := byWindow[win.Window]
				if fw == nil {
					fw = &fleetSLOWindow{Window: win.Window}
					byWindow[win.Window] = fw
					order = append(order, win.Window)
				}
				fw.Requests += win.Requests
				fw.Errors += win.Errors
			}
		}
		out := make([]fleetSLOWindow, 0, len(order))
		for _, wname := range order {
			fw := byWindow[wname]
			fw.Availability = 1
			if fw.Requests > 0 {
				fw.Availability = 1 - float64(fw.Errors)/float64(fw.Requests)
			}
			out = append(out, *fw)
		}
		return map[string]any{"windows": out}
	case "/v1/admin/shadow":
		sum := fleetShadowSummary{MinAgreement: 1, Replicas: len(addrs)}
		sawPair := false
		for _, a := range addrs {
			var rep registry.ShadowReportData
			if json.Unmarshal(replicas[a], &rep) != nil {
				return nil
			}
			sum.Scored += rep.Scored
			sum.Disagree += rep.Disagree
			for _, ar := range rep.Arches {
				sawPair = true
				if ar.AgreementRate < sum.MinAgreement {
					sum.MinAgreement = ar.AgreementRate
				}
			}
		}
		if !sawPair {
			sum.MinAgreement = 0
		}
		return sum
	case "/v1/admin/quality":
		var sum fleetQualitySummary
		for _, a := range addrs {
			var rep registry.QualityReportData
			if json.Unmarshal(replicas[a], &rep) != nil {
				return nil
			}
			for _, ar := range rep.Arches {
				sum.Accepted += ar.Accepted
				sum.Samples += ar.Samples
				sum.ServedOnly += ar.ServedOnly
			}
		}
		return sum
	}
	return nil
}

// ---------------------------------------------------------------------
// Feedback route table.

// routeTable remembers which replica answered each request ID, bounded
// FIFO — old entries evict once capacity wraps, matching the replicas'
// own bounded pending-feedback tables.
type routeTable struct {
	mu    sync.Mutex
	cap   int
	m     map[string]string
	order []string
	next  int
}

func newRouteTable(capacity int) *routeTable {
	return &routeTable{cap: capacity, m: map[string]string{}, order: make([]string, capacity)}
}

func (t *routeTable) put(id, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, exists := t.m[id]; !exists {
		if old := t.order[t.next]; old != "" {
			delete(t.m, old)
		}
		t.order[t.next] = id
		t.next = (t.next + 1) % t.cap
	}
	t.m[id] = addr
}

func (t *routeTable) get(id string) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	addr, ok := t.m[id]
	return addr, ok
}

// copyHeader forwards the named headers from src to dst, dropping
// hop-by-hop noise the replicas should not see.
func copyHeader(dst, src http.Header, names ...string) {
	for _, k := range names {
		if v := src.Get(k); v != "" {
			dst.Set(k, v)
		}
	}
}

// errorBody mirrors serve's JSON error shape.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data, err := json.Marshal(v)
	if err != nil {
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
		return
	}
	w.Write(append(data, '\n'))
}
