package proxy

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// fakeReplica is an httptest stand-in for one serve instance: it
// honours the slice of the HTTP contract the proxy depends on (readyz
// JSON shape, request-ID minting, opaque prediction bodies) and
// records what it was asked, so tests can assert where requests landed
// without training real models.
type fakeReplica struct {
	id  string
	srv *httptest.Server

	delayMs atomic.Int64 // artificial prediction latency
	preds   atomic.Int64
	reqSeq  atomic.Int64

	mu       sync.Mutex
	feedback []string // request_ids received on /v1/feedback
	hops     []string // X-Trace-Hop values seen on predictions
	keeps    []string // X-Trace-Keep values seen on predictions
}

func newFakeReplica(id string) *fakeReplica {
	f := &fakeReplica{id: id}
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, serve.ReadyResponse{Ready: true, UptimeSeconds: 1})
	})
	predict := func(w http.ResponseWriter, r *http.Request) {
		if d := f.delayMs.Load(); d > 0 {
			time.Sleep(time.Duration(d) * time.Millisecond)
		}
		f.preds.Add(1)
		f.mu.Lock()
		f.hops = append(f.hops, r.Header.Get(obs.TraceHopHeader))
		f.keeps = append(f.keeps, r.Header.Get(obs.TraceKeepHeader))
		f.mu.Unlock()
		rid := r.Header.Get("X-Request-ID")
		if rid == "" {
			rid = fmt.Sprintf("%s-rid-%d", f.id, f.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-ID", rid)
		w.Header().Set("X-Model-Hash", "hash-"+f.id)
		writeJSON(w, http.StatusOK, map[string]string{"replica": f.id})
	}
	mux.HandleFunc("/v1/predict/matrix", predict)
	mux.HandleFunc("/v1/predict/batch", predict)
	mux.HandleFunc("/v1/feedback", func(w http.ResponseWriter, r *http.Request) {
		var ref struct {
			RequestID string `json:"request_id"`
		}
		json.NewDecoder(r.Body).Decode(&ref)
		f.mu.Lock()
		f.feedback = append(f.feedback, ref.RequestID)
		f.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]bool{"accepted": true})
	})
	mux.HandleFunc("/v1/admin/trace/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/v1/admin/trace/")
		writeJSON(w, http.StatusOK, obs.TraceEntry{
			TraceID: id,
			Status:  http.StatusOK,
			Reasons: []string{obs.KeepRequested},
			Root: &obs.SpanData{
				Name: "/v1/predict/matrix", TraceID: id, Root: true,
				Children: []*obs.SpanData{
					{Name: "parse", TraceID: id},
					{Name: "predict", TraceID: id},
				},
			},
		})
	})
	mux.HandleFunc("/v1/admin/slo", func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Authorization") != "Bearer tok" {
			writeJSON(w, http.StatusUnauthorized, errorBody{Error: "invalid admin token"})
			return
		}
		writeJSON(w, http.StatusOK, obs.SLOReport{
			Objective: 0.999,
			Windows:   []obs.SLOWindowReport{{Window: "1m", Requests: 10, Errors: 1, Availability: 0.9}},
		})
	})
	f.srv = httptest.NewServer(mux)
	return f
}

func (f *fakeReplica) addr() string { return strings.TrimPrefix(f.srv.URL, "http://") }

func (f *fakeReplica) feedbackIDs() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string{}, f.feedback...)
}

// testFleet builds N fakes plus a converged proxy over them.
func testFleet(t *testing.T, n int, cfg Config) ([]*fakeReplica, *Proxy) {
	t.Helper()
	fakes := make([]*fakeReplica, n)
	for i := range fakes {
		fakes[i] = newFakeReplica(fmt.Sprintf("r%d", i))
		t.Cleanup(fakes[i].srv.Close)
		cfg.Replicas = append(cfg.Replicas, fakes[i].addr())
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.CheckAll(context.Background())
	if got := p.ring.Size(); got != n {
		t.Fatalf("ring size %d after CheckAll over %d healthy replicas", got, n)
	}
	return fakes, p
}

func post(h http.Handler, path string, body []byte) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	h.ServeHTTP(rec, req)
	return rec
}

// TestProxyConsistentRouting: the same body always lands on the same
// replica (that is what keeps the per-replica caches hot), distinct
// bodies spread across the fleet, and the replica's headers
// (X-Model-Hash, X-Request-ID) survive the hop.
func TestProxyConsistentRouting(t *testing.T) {
	fakes, p := testFleet(t, 3, Config{HedgeAfter: time.Second})
	h := p.Handler()

	hit := map[string]bool{}
	for i := 0; i < 30; i++ {
		body := []byte(fmt.Sprintf("%%MatrixMarket fake %d", i))
		first := post(h, "/v1/predict/matrix", body)
		if first.Code != http.StatusOK {
			t.Fatalf("predict %d: %d %s", i, first.Code, first.Body.String())
		}
		owner := first.Header().Get("X-Proxy-Replica")
		if owner == "" {
			t.Fatal("no X-Proxy-Replica header")
		}
		if first.Header().Get("X-Model-Hash") == "" {
			t.Fatal("replica's X-Model-Hash did not survive the proxy hop")
		}
		hit[owner] = true
		for rep := 0; rep < 2; rep++ {
			again := post(h, "/v1/predict/matrix", body)
			if got := again.Header().Get("X-Proxy-Replica"); got != owner {
				t.Fatalf("body %d moved between replicas: %q then %q", i, owner, got)
			}
		}
	}
	if len(hit) < 2 {
		t.Fatalf("30 distinct bodies all landed on one replica of %d", len(fakes))
	}
}

// TestProxyHedgeSlowReplica: when the ring owner sits on a request
// past HedgeAfter, the hedge to the next replica answers and the
// client never notices.
func TestProxyHedgeSlowReplica(t *testing.T) {
	fakes, p := testFleet(t, 2, Config{HedgeAfter: 25 * time.Millisecond, Timeout: 5 * time.Second})
	h := p.Handler()

	// Find a body owned by fakes[0], then make fakes[0] slow.
	var body []byte
	for i := 0; ; i++ {
		cand := []byte(fmt.Sprintf("%%MatrixMarket slow %d", i))
		if owner, _ := p.ring.Lookup(routeKey(cand, "")); owner == fakes[0].addr() {
			body = cand
			break
		}
	}
	fakes[0].delayMs.Store(500)
	hedges0, wins0 := p.hedges.Value(), p.hedgeWins.Value()

	start := time.Now()
	rec := post(h, "/v1/predict/matrix", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("hedged predict: %d %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Proxy-Replica"); got != fakes[1].addr() {
		t.Fatalf("answer came from %q, want the hedge target %q", got, fakes[1].addr())
	}
	if d := time.Since(start); d > 400*time.Millisecond {
		t.Fatalf("hedged request took %s — the slow primary was awaited", d)
	}
	if p.hedges.Value() != hedges0+1 || p.hedgeWins.Value() != wins0+1 {
		t.Fatalf("hedges %d->%d wins %d->%d, want both +1",
			hedges0, p.hedges.Value(), wins0, p.hedgeWins.Value())
	}
}

// TestProxyFailoverDeadReplica: a replica that dies without
// deregistering costs zero client-visible errors — the transport
// failure fails over immediately and ejects the corpse from the ring.
func TestProxyFailoverDeadReplica(t *testing.T) {
	fakes, p := testFleet(t, 3, Config{HedgeAfter: time.Second, Timeout: 5 * time.Second})
	h := p.Handler()

	// Find a body owned by fakes[2], then kill fakes[2] outright.
	var body []byte
	for i := 0; ; i++ {
		cand := []byte(fmt.Sprintf("%%MatrixMarket dead %d", i))
		if owner, _ := p.ring.Lookup(routeKey(cand, "")); owner == fakes[2].addr() {
			body = cand
			break
		}
	}
	fakes[2].srv.Close()

	rec := post(h, "/v1/predict/matrix", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("predict against a dead owner: %d %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Proxy-Replica"); got == fakes[2].addr() {
		t.Fatal("answer attributed to the dead replica")
	}
	st := p.Fleet()
	if st.HealthyCount != 2 || st.RingSize != 2 {
		t.Fatalf("fleet after death: healthy %d ring %d, want 2/2", st.HealthyCount, st.RingSize)
	}
	if !st.Ready {
		t.Fatal("fleet not ready with 2 of 3 replicas healthy")
	}
	// The corpse's keys now route to survivors, consistently.
	again := post(h, "/v1/predict/matrix", body)
	if again.Code != http.StatusOK {
		t.Fatalf("re-predict after ejection: %d", again.Code)
	}
}

// TestProxyFeedbackRouting: feedback carrying a prediction's
// X-Request-ID goes to the replica that answered that prediction —
// outcomes are consume-once, so broadcast or rehash would lose them.
func TestProxyFeedbackRouting(t *testing.T) {
	fakes, p := testFleet(t, 3, Config{HedgeAfter: time.Second})
	h := p.Handler()

	body := []byte("%%MatrixMarket feedback probe")
	rec := post(h, "/v1/predict/matrix", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("predict: %d", rec.Code)
	}
	owner := rec.Header().Get("X-Proxy-Replica")
	rid := rec.Header().Get("X-Request-ID")
	if rid == "" {
		t.Fatal("no X-Request-ID on the proxied prediction")
	}

	fb := []byte(fmt.Sprintf(`{"request_id":%q,"format":"csr","ms":1.5}`, rid))
	rec = post(h, "/v1/feedback", fb)
	if rec.Code != http.StatusOK {
		t.Fatalf("feedback: %d %s", rec.Code, rec.Body.String())
	}
	for _, f := range fakes {
		got := f.feedbackIDs()
		if f.addr() == owner {
			if len(got) != 1 || got[0] != rid {
				t.Fatalf("owning replica saw feedback %v, want [%s]", got, rid)
			}
		} else if len(got) != 0 {
			t.Fatalf("replica %s saw feedback %v for a prediction it never served", f.id, got)
		}
	}

	// Unknown request IDs answer 404 without guessing a replica.
	rec = post(h, "/v1/feedback", []byte(`{"request_id":"never-issued"}`))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown request_id: %d, want 404", rec.Code)
	}
}

// TestProxyAdminFanout: /v1/admin/slo aggregates every replica's
// report under its address, sums the windows fleet-wide, and refuses
// to present a partial view when any replica rejects the token.
func TestProxyAdminFanout(t *testing.T) {
	_, p := testFleet(t, 3, Config{})
	h := p.Handler()

	req := httptest.NewRequest(http.MethodGet, "/v1/admin/slo", nil)
	req.Header.Set("Authorization", "Bearer tok")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("fanout: %d %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Replicas map[string]json.RawMessage `json:"replicas"`
		Fleet    struct {
			Windows []fleetSLOWindow `json:"windows"`
		} `json:"fleet"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Replicas) != 3 {
		t.Fatalf("fanout covered %d replicas, want 3", len(out.Replicas))
	}
	if len(out.Fleet.Windows) != 1 {
		t.Fatalf("fleet summary windows = %+v", out.Fleet.Windows)
	}
	w := out.Fleet.Windows[0]
	if w.Requests != 30 || w.Errors != 3 {
		t.Fatalf("fleet 1m window = %+v, want requests 30 errors 3", w)
	}
	if w.Availability < 0.899 || w.Availability > 0.901 {
		t.Fatalf("fleet availability = %v, want 0.9", w.Availability)
	}

	// Missing token: the replicas answer 401 and the aggregate refuses.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/admin/slo", nil))
	if rec.Code != http.StatusUnauthorized {
		t.Fatalf("tokenless fanout: %d, want 401", rec.Code)
	}
}

// TestProxyReadyzEmptyFleet: with every replica dead the proxy reports
// itself unready (503) and predictions answer 502, not a hang.
func TestProxyReadyzEmptyFleet(t *testing.T) {
	fakes, p := testFleet(t, 2, Config{Timeout: 2 * time.Second})
	for _, f := range fakes {
		f.srv.Close()
	}
	p.CheckAll(context.Background())
	h := p.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with a dead fleet: %d, want 503", rec.Code)
	}
	var st FleetStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Ready || st.HealthyCount != 0 || st.RingSize != 0 {
		t.Fatalf("dead-fleet status = %+v", st)
	}
	if rec := post(h, "/v1/predict/matrix", []byte("x")); rec.Code != http.StatusBadGateway {
		t.Fatalf("predict with a dead fleet: %d, want 502", rec.Code)
	}
}

// TestRouteTableEviction: the feedback table is bounded FIFO.
func TestRouteTableEviction(t *testing.T) {
	rt := newRouteTable(3)
	for i := 0; i < 5; i++ {
		rt.put(fmt.Sprintf("id%d", i), "addr")
	}
	for i, want := range []bool{false, false, true, true, true} {
		if _, ok := rt.get(fmt.Sprintf("id%d", i)); ok != want {
			t.Fatalf("id%d present=%v, want %v", i, ok, want)
		}
	}
}
