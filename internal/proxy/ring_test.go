package proxy

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func ringMembers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("127.0.0.1:%d", 9000+i)
	}
	return out
}

func ringKeys(n int) []string {
	out := make([]string, n)
	rng := rand.New(rand.NewSource(42))
	for i := range out {
		out[i] = fmt.Sprintf("key-%d-%d", i, rng.Int63())
	}
	return out
}

// TestRingDeterministicPlacement: placement is a pure function of the
// member set — independent of insertion order and stable across
// "process restarts" (a freshly built ring must agree point for point).
func TestRingDeterministicPlacement(t *testing.T) {
	members := ringMembers(7)
	keys := ringKeys(2000)

	a := NewRing(0)
	for _, m := range members {
		a.Add(m)
	}
	// Same members, reversed insertion order, separate ring instance.
	b := NewRing(0)
	for i := len(members) - 1; i >= 0; i-- {
		b.Add(members[i])
	}
	for _, k := range keys {
		ma, ok := a.Lookup(k)
		if !ok {
			t.Fatalf("Lookup(%q) on a populated ring returned !ok", k)
		}
		mb, _ := b.Lookup(k)
		if ma != mb {
			t.Fatalf("placement depends on insertion order: key %q -> %q vs %q", k, ma, mb)
		}
	}
	// Churn must not move keys that never lost their owner: remove and
	// re-add an unrelated member and re-check a stable key.
	stable := ""
	for _, k := range keys {
		if m, _ := a.Lookup(k); m != members[3] {
			stable = k
			break
		}
	}
	before, _ := a.Lookup(stable)
	a.Remove(members[3])
	a.Add(members[3])
	after, _ := a.Lookup(stable)
	if before != after {
		t.Fatalf("eject/readmit of an unrelated member moved key %q: %q -> %q", stable, before, after)
	}
}

// TestRingBoundedMovementOnEject: removing one of N members may move
// only the keys that member owned. The issue's bound is <= 2/N of the
// keyspace; with 64 vnodes the real share sits near 1/N.
func TestRingBoundedMovementOnEject(t *testing.T) {
	members := ringMembers(10)
	keys := ringKeys(10000)
	r := NewRing(0)
	for _, m := range members {
		r.Add(m)
	}
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k], _ = r.Lookup(k)
	}
	victim := members[4]
	r.Remove(victim)
	moved := 0
	for _, k := range keys {
		after, ok := r.Lookup(k)
		if !ok {
			t.Fatal("ring empty after removing one of ten members")
		}
		if after == victim {
			t.Fatalf("key %q still routed to the removed member", k)
		}
		if after != before[k] {
			if before[k] != victim {
				t.Fatalf("key %q moved (%q -> %q) though its owner was not removed",
					k, before[k], after)
			}
			moved++
		}
	}
	bound := 2 * len(keys) / len(members)
	if moved > bound {
		t.Fatalf("removing 1 of %d members moved %d/%d keys, bound %d",
			len(members), moved, len(keys), bound)
	}
	if moved == 0 {
		t.Fatal("removing a member moved no keys at all; the victim owned nothing?")
	}
}

// TestRingLookupN: the fail-over list is distinct, starts with the
// primary, and never exceeds the member count.
func TestRingLookupN(t *testing.T) {
	r := NewRing(0)
	for _, m := range ringMembers(3) {
		r.Add(m)
	}
	for _, k := range ringKeys(200) {
		primary, _ := r.Lookup(k)
		got := r.LookupN(k, 5)
		if len(got) != 3 {
			t.Fatalf("LookupN(%q, 5) over 3 members returned %d entries", k, len(got))
		}
		if got[0] != primary {
			t.Fatalf("LookupN(%q)[0] = %q, Lookup = %q", k, got[0], primary)
		}
		seen := map[string]bool{}
		for _, m := range got {
			if seen[m] {
				t.Fatalf("LookupN(%q) repeated member %q", k, m)
			}
			seen[m] = true
		}
	}
	if got := NewRing(0).LookupN("x", 2); got != nil {
		t.Fatalf("LookupN on an empty ring = %v, want nil", got)
	}
}

// TestRingStressRouteEjectReadmit hammers concurrent lookups against
// eject/readmit churn under -race. Routing must never return a member
// outside the configured set or fail while at least one member is
// guaranteed present.
func TestRingStressRouteEjectReadmit(t *testing.T) {
	members := ringMembers(5)
	valid := map[string]bool{}
	for _, m := range members {
		valid[m] = true
	}
	r := NewRing(0)
	for _, m := range members {
		r.Add(m)
	}
	keys := ringKeys(64)
	var lookups, churners sync.WaitGroup
	stop := make(chan struct{})
	// Churners eject and readmit members[1..4]; members[0] stays put so
	// lookups always have somewhere to land.
	for c := 1; c < len(members); c++ {
		churners.Add(1)
		go func(m string) {
			defer churners.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.Remove(m)
				r.Add(m)
			}
		}(members[c])
	}
	for g := 0; g < 4; g++ {
		lookups.Add(1)
		go func(seed int64) {
			defer lookups.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				k := keys[rng.Intn(len(keys))]
				m, ok := r.Lookup(k)
				if !ok {
					t.Error("Lookup failed with a permanent member present")
					return
				}
				if !valid[m] {
					t.Errorf("Lookup returned unknown member %q", m)
					return
				}
				for _, fm := range r.LookupN(k, 2) {
					if !valid[fm] {
						t.Errorf("LookupN returned unknown member %q", fm)
						return
					}
				}
				if n := r.Size(); n < 1 || n > len(members) {
					t.Errorf("Size = %d outside [1,%d]", n, len(members))
					return
				}
			}
		}(int64(g))
	}
	lookups.Wait()
	close(stop)
	churners.Wait()
}
