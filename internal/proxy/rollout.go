package proxy

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/registry"
	"repro/internal/serve"
)

// Fleet-wide rollout: push a candidate artifact to every replica over
// the authenticated shadow-install path, watch each replica's own
// ShadowStats until every one of them clears the agreement threshold,
// then promote everywhere. The state machine is deliberately
// all-or-nothing at each phase edge — a fleet where half the replicas
// serve the new hash answers the same matrix differently depending on
// ring position, which is exactly the inconsistency the consistent
// hash exists to prevent.

// RolloutConfig describes one fleet rollout.
type RolloutConfig struct {
	// Replicas to roll out to (host:port). The rollout talks to
	// replicas directly, not through the proxy: admin state is
	// per-replica.
	Replicas []string
	// Arch selects the live/candidate pair ("" = each replica's
	// default arch).
	Arch string
	// ArtifactPath is the candidate artifact file to push.
	ArtifactPath string
	// Token authenticates against every replica's admin API.
	Token string
	// Threshold is the minimum per-replica shadow agreement rate
	// required to promote (default 0.99).
	Threshold float64
	// MinScored is the minimum number of shadow-scored requests each
	// replica must accumulate before its agreement rate counts
	// (default 10).
	MinScored int64
	// DriveDir, when set, names a directory of .mtx files the
	// controller posts to every replica during the observe phase, so a
	// quiet fleet still accumulates shadow evidence.
	DriveDir string
	// Timeout bounds the whole rollout (default 2m); Poll spaces the
	// observe-phase checks (default 500ms).
	Timeout time.Duration
	Poll    time.Duration
	// Client overrides the HTTP client (tests).
	Client *http.Client
	// Log, when non-nil, receives one line per state transition.
	Log func(format string, args ...any)
}

func (c RolloutConfig) withDefaults() RolloutConfig {
	if c.Threshold <= 0 {
		c.Threshold = 0.99
	}
	if c.MinScored <= 0 {
		c.MinScored = 10
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Minute
	}
	if c.Poll <= 0 {
		c.Poll = 500 * time.Millisecond
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return c
}

func (c RolloutConfig) logf(format string, args ...any) {
	if c.Log != nil {
		c.Log(format, args...)
	}
}

// RolloutResult reports a completed rollout.
type RolloutResult struct {
	Arch string `json:"arch"`
	// Hash is the candidate artifact's content hash, live on every
	// replica once the rollout returns without error.
	Hash string `json:"hash"`
	// Scored and Agreement record each replica's shadow evidence at
	// promotion time, keyed by replica address.
	Scored    map[string]int64   `json:"scored"`
	Agreement map[string]float64 `json:"agreement"`
	// Driven counts matrices posted from DriveDir per replica.
	Driven int `json:"driven,omitempty"`
}

// Rollout runs the full push -> observe -> promote sequence and
// returns only when every replica serves the candidate hash (or an
// error leaves the fleet unchanged: the candidate stays in shadow,
// live traffic untouched).
func Rollout(ctx context.Context, cfg RolloutConfig) (*RolloutResult, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("rollout: no replicas")
	}
	data, err := os.ReadFile(cfg.ArtifactPath)
	if err != nil {
		return nil, fmt.Errorf("rollout: reading candidate: %w", err)
	}
	wantHash := serve.HashBytes(data)
	ctx, cancel := context.WithTimeout(ctx, cfg.Timeout)
	defer cancel()

	// Phase 1: push. Install the candidate as every replica's shadow.
	// Each replica hashes what it received and answers with that hash —
	// a mismatch means a corrupt or partial transfer, and the rollout
	// stops before any replica starts scoring garbage.
	cfg.logf("rollout: pushing %s (hash %s) to %d replicas",
		filepath.Base(cfg.ArtifactPath), wantHash, len(cfg.Replicas))
	for _, addr := range cfg.Replicas {
		gotHash, err := installShadow(ctx, cfg, addr, data)
		if err != nil {
			return nil, fmt.Errorf("rollout: push to %s: %w", addr, err)
		}
		if gotHash != wantHash {
			return nil, fmt.Errorf("rollout: %s installed hash %s, pushed %s (corrupt transfer?)",
				addr, gotHash, wantHash)
		}
	}

	// Phase 2: observe. Every replica scores live traffic against the
	// candidate with its own ShadowStats; promotion waits until each
	// one independently clears the bar. DriveDir supplies traffic when
	// the fleet is quiet.
	res := &RolloutResult{Hash: wantHash, Scored: map[string]int64{}, Agreement: map[string]float64{}}
	if cfg.DriveDir != "" {
		n, err := driveMatrices(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("rollout: driving shadow traffic: %w", err)
		}
		res.Driven = n
		cfg.logf("rollout: drove %d matrices through each replica", n)
	}
	for {
		pending, err := observeOnce(ctx, cfg, wantHash, res)
		if err != nil {
			return nil, err
		}
		if len(pending) == 0 {
			break
		}
		cfg.logf("rollout: waiting on %d/%d replicas: %s",
			len(pending), len(cfg.Replicas), pending[0])
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("rollout: timed out observing; still pending: %v", pending)
		case <-time.After(cfg.Poll):
		}
	}
	cfg.logf("rollout: every replica cleared agreement >= %.3f on >= %d scored; promoting",
		cfg.Threshold, cfg.MinScored)

	// Phase 3: promote. Flip every replica, then verify the served
	// hash actually changed everywhere — the promotion answer alone
	// could mask an arch mismatch.
	for _, addr := range cfg.Replicas {
		hash, arch, err := promoteReplica(ctx, cfg, addr)
		if err != nil {
			return nil, fmt.Errorf("rollout: promote on %s: %w (fleet now MIXED — re-run or roll back)", addr, err)
		}
		if hash != wantHash {
			return nil, fmt.Errorf("rollout: %s promoted hash %s, want %s (fleet now MIXED)", addr, hash, wantHash)
		}
		res.Arch = arch
	}
	for _, addr := range cfg.Replicas {
		live, err := liveHash(ctx, cfg, addr)
		if err != nil {
			return nil, fmt.Errorf("rollout: verifying %s: %w", addr, err)
		}
		if live != wantHash {
			return nil, fmt.Errorf("rollout: %s serves hash %s after promote, want %s", addr, live, wantHash)
		}
	}
	cfg.logf("rollout: fleet serves %s", wantHash)
	return res, nil
}

// observeOnce polls every replica's shadow report and returns the
// replicas still short of the bar (with the reason on the first one).
func observeOnce(ctx context.Context, cfg RolloutConfig, wantHash string, res *RolloutResult) ([]string, error) {
	var pending []string
	for _, addr := range cfg.Replicas {
		rep, err := shadowReport(ctx, cfg, addr)
		if err != nil {
			return nil, fmt.Errorf("rollout: shadow report from %s: %w", addr, err)
		}
		ar := findPair(rep, cfg.Arch, wantHash)
		switch {
		case ar == nil:
			pending = append(pending, fmt.Sprintf("%s: candidate %s not in shadow report", addr, wantHash))
		case ar.Scored < cfg.MinScored:
			pending = append(pending, fmt.Sprintf("%s: scored %d < %d", addr, ar.Scored, cfg.MinScored))
		case ar.AgreementRate < cfg.Threshold:
			// A disagreeing candidate never converges by waiting longer;
			// surfacing it as pending (not fatal) still lets a slow
			// trickle of agreeing traffic rescue a borderline start, and
			// the rollout timeout bounds the wait either way.
			pending = append(pending, fmt.Sprintf("%s: agreement %.4f < %.4f (scored %d, disagree %d)",
				addr, ar.AgreementRate, cfg.Threshold, ar.Scored, ar.Disagree))
		default:
			res.Scored[addr] = ar.Scored
			res.Agreement[addr] = ar.AgreementRate
		}
	}
	return pending, nil
}

// findPair locates the live/candidate pair this rollout owns inside
// one replica's shadow report: matched by candidate hash, and by arch
// when the rollout pinned one.
func findPair(rep *registry.ShadowReportData, arch, wantHash string) *registry.ArchShadowReport {
	for i := range rep.Arches {
		ar := &rep.Arches[i]
		if ar.CandidateHash != wantHash {
			continue
		}
		if arch != "" && ar.Arch != serve.NormalizeArch(arch) {
			continue
		}
		return ar
	}
	return nil
}

// installShadow POSTs the candidate bytes to one replica's
// shadow-install endpoint and returns the hash the replica computed.
func installShadow(ctx context.Context, cfg RolloutConfig, addr string, data []byte) (string, error) {
	u := "http://" + addr + "/v1/admin/shadow/install"
	if cfg.Arch != "" {
		u += "?arch=" + url.QueryEscape(cfg.Arch)
	}
	var out struct {
		Hash string `json:"hash"`
	}
	if err := adminJSON(ctx, cfg, http.MethodPost, u, data, &out); err != nil {
		return "", err
	}
	return out.Hash, nil
}

// shadowReport fetches one replica's shadow evaluation state.
func shadowReport(ctx context.Context, cfg RolloutConfig, addr string) (*registry.ShadowReportData, error) {
	var rep registry.ShadowReportData
	if err := adminJSON(ctx, cfg, http.MethodGet, "http://"+addr+"/v1/admin/shadow", nil, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// promoteReplica flips one replica's candidate to live.
func promoteReplica(ctx context.Context, cfg RolloutConfig, addr string) (hash, arch string, err error) {
	u := "http://" + addr + "/v1/admin/promote"
	if cfg.Arch != "" {
		u += "?arch=" + url.QueryEscape(cfg.Arch)
	}
	var out struct {
		Arch string `json:"arch"`
		Hash string `json:"hash"`
	}
	if err := adminJSON(ctx, cfg, http.MethodPost, u, nil, &out); err != nil {
		return "", "", err
	}
	return out.Hash, out.Arch, nil
}

// liveHash reads the hash one replica currently serves for the arch.
func liveHash(ctx context.Context, cfg RolloutConfig, addr string) (string, error) {
	u := "http://" + addr + "/v1/model"
	if cfg.Arch != "" {
		u += "?arch=" + url.QueryEscape(cfg.Arch)
	}
	var out struct {
		Hash string `json:"hash"`
	}
	if err := adminJSON(ctx, cfg, http.MethodGet, u, nil, &out); err != nil {
		return "", err
	}
	return out.Hash, nil
}

// driveMatrices posts every .mtx file under DriveDir to every replica
// directly (bypassing the ring — each replica must score its own
// shadow samples) and returns the per-replica count.
func driveMatrices(ctx context.Context, cfg RolloutConfig) (int, error) {
	entries, err := os.ReadDir(cfg.DriveDir)
	if err != nil {
		return 0, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".mtx" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return 0, fmt.Errorf("no .mtx files in %s", cfg.DriveDir)
	}
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(cfg.DriveDir, name))
		if err != nil {
			return 0, err
		}
		for _, addr := range cfg.Replicas {
			u := "http://" + addr + "/v1/predict/matrix"
			if cfg.Arch != "" {
				u += "?arch=" + url.QueryEscape(cfg.Arch)
			}
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(data))
			if err != nil {
				return 0, err
			}
			resp, err := cfg.Client.Do(req)
			if err != nil {
				return 0, fmt.Errorf("posting %s to %s: %w", name, addr, err)
			}
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return 0, fmt.Errorf("posting %s to %s: status %d", name, addr, resp.StatusCode)
			}
		}
	}
	return len(names), nil
}

// adminJSON performs one authenticated request and decodes the JSON
// answer; non-2xx statuses surface the replica's error body.
func adminJSON(ctx context.Context, cfg RolloutConfig, method, u string, body []byte, out any) error {
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, reader)
	if err != nil {
		return err
	}
	if cfg.Token != "" {
		req.Header.Set("Authorization", "Bearer "+cfg.Token)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/octet-stream")
	}
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var eb struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			return fmt.Errorf("status %d: %s", resp.StatusCode, eb.Error)
		}
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.Unmarshal(data, out)
}
