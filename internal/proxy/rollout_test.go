package proxy

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/registry"
	"repro/internal/serve"
)

// fakeAdminReplica models one replica's admin surface for the rollout
// controller: install stores the pushed hash, the shadow report serves
// preset tallies for it, promote flips it live. agree/disagree are set
// per test to steer the controller's observe phase.
type fakeAdminReplica struct {
	srv *httptest.Server

	mu         sync.Mutex
	shadowHash string
	liveHash   string
	promotes   int
	agree      int64
	disagree   int64
}

func newFakeAdminReplica(agree, disagree int64) *fakeAdminReplica {
	f := &fakeAdminReplica{liveHash: "old-live", agree: agree, disagree: disagree}
	auth := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if r.Header.Get("Authorization") != "Bearer tok" {
				writeJSON(w, http.StatusUnauthorized, errorBody{Error: "invalid admin token"})
				return
			}
			h(w, r)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/admin/shadow/install", auth(func(w http.ResponseWriter, r *http.Request) {
		data, _ := io.ReadAll(r.Body)
		f.mu.Lock()
		f.shadowHash = serve.HashBytes(data)
		hash := f.shadowHash
		f.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]string{"arch": "turing", "hash": hash})
	}))
	mux.HandleFunc("/v1/admin/shadow", auth(func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		rep := registry.ShadowReportData{Arches: []registry.ArchShadowReport{}}
		if f.shadowHash != "" {
			scored := f.agree + f.disagree
			ar := registry.ArchShadowReport{
				Arch: "turing", LiveHash: f.liveHash, CandidateHash: f.shadowHash,
				Scored: scored, Agree: f.agree, Disagree: f.disagree,
			}
			if scored > 0 {
				ar.AgreementRate = float64(f.agree) / float64(scored)
			}
			rep.Arches = append(rep.Arches, ar)
			rep.Scored, rep.Disagree = scored, f.disagree
		}
		writeJSON(w, http.StatusOK, rep)
	}))
	mux.HandleFunc("/v1/admin/promote", auth(func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.shadowHash == "" {
			writeJSON(w, http.StatusConflict, errorBody{Error: "no shadow candidate"})
			return
		}
		f.liveHash = f.shadowHash
		f.shadowHash = ""
		f.promotes++
		writeJSON(w, http.StatusOK, map[string]string{"arch": "turing", "hash": f.liveHash})
	}))
	mux.HandleFunc("/v1/model", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]string{"hash": f.liveHash})
	})
	f.srv = httptest.NewServer(mux)
	return f
}

func (f *fakeAdminReplica) addr() string { return strings.TrimPrefix(f.srv.URL, "http://") }

func (f *fakeAdminReplica) state() (live string, promotes int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.liveHash, f.promotes
}

func writeCandidate(t *testing.T) (path, hash string) {
	t.Helper()
	path = filepath.Join(t.TempDir(), "cand.model")
	data := []byte("candidate artifact bytes")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path, serve.HashBytes(data)
}

// TestRolloutPromotesWhenAllClear: every replica clears the bar, the
// fleet promotes together, and the result carries each replica's
// evidence.
func TestRolloutPromotesWhenAllClear(t *testing.T) {
	var fleet []*fakeAdminReplica
	var addrs []string
	for i := 0; i < 3; i++ {
		f := newFakeAdminReplica(20, 0)
		t.Cleanup(f.srv.Close)
		fleet = append(fleet, f)
		addrs = append(addrs, f.addr())
	}
	path, wantHash := writeCandidate(t)

	res, err := Rollout(context.Background(), RolloutConfig{
		Replicas: addrs, ArtifactPath: path, Token: "tok",
		Threshold: 0.99, MinScored: 10, Timeout: 5 * time.Second, Poll: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hash != wantHash {
		t.Fatalf("result hash %s, want %s", res.Hash, wantHash)
	}
	for i, f := range fleet {
		live, promotes := f.state()
		if live != wantHash || promotes != 1 {
			t.Fatalf("replica %d: live %s promotes %d, want %s/1", i, live, promotes, wantHash)
		}
		if res.Scored[f.addr()] != 20 || res.Agreement[f.addr()] != 1 {
			t.Fatalf("replica %d evidence missing from result: %+v", i, res)
		}
	}
}

// TestRolloutBlocksOnDisagreeingReplica: one replica below the
// agreement threshold holds the WHOLE fleet — nobody promotes, live
// hashes stay put.
func TestRolloutBlocksOnDisagreeingReplica(t *testing.T) {
	fleet := []*fakeAdminReplica{
		newFakeAdminReplica(20, 0),
		newFakeAdminReplica(15, 5), // 0.75 agreement
		newFakeAdminReplica(20, 0),
	}
	var addrs []string
	for _, f := range fleet {
		t.Cleanup(f.srv.Close)
		addrs = append(addrs, f.addr())
	}
	path, _ := writeCandidate(t)

	_, err := Rollout(context.Background(), RolloutConfig{
		Replicas: addrs, ArtifactPath: path, Token: "tok",
		Threshold: 0.99, MinScored: 10, Timeout: 400 * time.Millisecond, Poll: 20 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("rollout promoted past a disagreeing replica")
	}
	if !strings.Contains(err.Error(), "agreement") {
		t.Fatalf("error does not name the agreement gap: %v", err)
	}
	for i, f := range fleet {
		live, promotes := f.state()
		if live != "old-live" || promotes != 0 {
			t.Fatalf("replica %d changed during a blocked rollout: live %s promotes %d", i, live, promotes)
		}
	}
}

// TestRolloutDetectsCorruptPush: a replica whose install answer hashes
// differently from the pushed bytes stops the rollout at the push
// phase.
func TestRolloutDetectsCorruptPush(t *testing.T) {
	good := newFakeAdminReplica(20, 0)
	t.Cleanup(good.srv.Close)
	liar := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"arch": "turing", "hash": "0000000000000000"})
	}))
	t.Cleanup(liar.Close)
	path, _ := writeCandidate(t)

	_, err := Rollout(context.Background(), RolloutConfig{
		Replicas:     []string{good.addr(), strings.TrimPrefix(liar.URL, "http://")},
		ArtifactPath: path, Token: "tok", Timeout: 2 * time.Second,
	})
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt push not detected: %v", err)
	}
	if _, promotes := good.state(); promotes != 0 {
		t.Fatal("good replica promoted despite a failed push phase")
	}
}

// TestFindPair pins the report-matching rules: hash must match, arch
// filters when set (normalized).
func TestFindPair(t *testing.T) {
	rep := &registry.ShadowReportData{Arches: []registry.ArchShadowReport{
		{Arch: "pascal", CandidateHash: "aaa"},
		{Arch: "turing", CandidateHash: "bbb"},
	}}
	if ar := findPair(rep, "", "bbb"); ar == nil || ar.Arch != "turing" {
		t.Fatalf("findPair by hash = %+v", ar)
	}
	if ar := findPair(rep, "Turing", "bbb"); ar == nil {
		t.Fatal("findPair did not normalize the arch filter")
	}
	if ar := findPair(rep, "pascal", "bbb"); ar != nil {
		t.Fatalf("findPair matched the wrong arch: %+v", ar)
	}
	if ar := findPair(rep, "", "zzz"); ar != nil {
		t.Fatalf("findPair matched a missing hash: %+v", ar)
	}
}
