package proxy

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// adminGet fetches a proxy-admin path with an optional bearer token.
func adminGet(h http.Handler, path, token string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	h.ServeHTTP(rec, req)
	return rec
}

// TestProxyHedgedTraceStitched is the tentpole's end-to-end check at
// unit scale: a hedged request leaves one retained trace whose root
// holds both attempt spans, and fetching it by ID stitches each
// replica's own span tree under the attempt that reached it.
func TestProxyHedgedTraceStitched(t *testing.T) {
	defer obs.Default.Reset()
	fakes, p := testFleet(t, 2, Config{
		HedgeAfter:  25 * time.Millisecond,
		Timeout:     5 * time.Second,
		AdminToken:  "ptok",
		TraceSample: -1,
	})
	h := p.Handler()

	// Find a body owned by fakes[0], then make fakes[0] slow so the
	// hedge to fakes[1] wins.
	var body []byte
	for i := 0; ; i++ {
		cand := []byte(fmt.Sprintf("%%MatrixMarket stitch %d", i))
		if owner, _ := p.ring.Lookup(routeKey(cand, "")); owner == fakes[0].addr() {
			body = cand
			break
		}
	}
	fakes[0].delayMs.Store(500)

	req := httptest.NewRequest(http.MethodPost, "/v1/predict/matrix", strings.NewReader(string(body)))
	req.Header.Set("X-Request-ID", "stitch-me")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("hedged predict: %d %s", rec.Code, rec.Body.String())
	}

	// Hedged requests are force-kept — no sampling, no slow threshold
	// needed.
	e := p.traces.Get("stitch-me")
	if e == nil {
		t.Fatal("hedged request not retained")
	}
	found := false
	for _, reason := range e.Reasons {
		if reason == obs.KeepHedged {
			found = true
		}
	}
	if !found {
		t.Fatalf("reasons = %v, want %q", e.Reasons, obs.KeepHedged)
	}

	rec = adminGet(h, "/v1/admin/trace/stitch-me", "ptok")
	if rec.Code != http.StatusOK {
		t.Fatalf("trace get: %d %s", rec.Code, rec.Body.String())
	}
	var st stitchedTrace
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.TraceID != "stitch-me" || st.Root == nil {
		t.Fatalf("stitched trace = %+v", st)
	}
	if len(st.StitchedFrom) != 2 {
		t.Fatalf("stitched from %v, want both replicas", st.StitchedFrom)
	}
	// Both attempts under the root: the abandoned owner and the winning
	// hedge, each carrying the replica's own parse/predict spans.
	attempts := 0
	hedgedAttempts := 0
	for _, c := range st.Root.Children {
		if !strings.HasPrefix(c.Name, "attempt/") {
			continue
		}
		attempts++
		if c.Metrics["hedged"] == 1 {
			hedgedAttempts++
		}
		stageNames := map[string]bool{}
		for _, g := range c.Children {
			if g.Root { // the grafted replica tree
				for _, stage := range g.Children {
					stageNames[stage.Name] = true
				}
			}
		}
		if !stageNames["parse"] || !stageNames["predict"] {
			t.Errorf("attempt %s missing replica stage spans: %v", c.Name, stageNames)
		}
	}
	if attempts != 2 || hedgedAttempts != 1 {
		t.Fatalf("root has %d attempt spans (%d hedged), want 2 (1 hedged)", attempts, hedgedAttempts)
	}

	// The winning attempt carried hop 1 and the hedged keep marker to
	// the replica.
	keeps := func() []string {
		fakes[1].mu.Lock()
		defer fakes[1].mu.Unlock()
		return append([]string{}, fakes[1].keeps...)
	}()
	hops := func() []string {
		fakes[1].mu.Lock()
		defer fakes[1].mu.Unlock()
		return append([]string{}, fakes[1].hops...)
	}()
	if len(hops) != 1 || hops[0] != "1" {
		t.Fatalf("hedge target saw hops %v, want [1]", hops)
	}
	if len(keeps) != 1 || keeps[0] != "hedged" {
		t.Fatalf("hedge target saw keeps %v, want [hedged]", keeps)
	}

	// The list view includes the entry.
	rec = adminGet(h, "/v1/admin/trace", "ptok")
	var list traceListResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if list.Count != 1 || list.Traces[0].TraceID != "stitch-me" {
		t.Fatalf("trace list = %+v", list)
	}
}

// TestProxyTraceRequestedKeep: a client's X-Trace-Keep forces retention
// at the proxy and propagates to the replica, so every hop of the
// request keeps its trace fetchable.
func TestProxyTraceRequestedKeep(t *testing.T) {
	defer obs.Default.Reset()
	fakes, p := testFleet(t, 2, Config{
		HedgeAfter:  time.Second,
		AdminToken:  "ptok",
		TraceSample: -1,
	})
	h := p.Handler()

	req := httptest.NewRequest(http.MethodPost, "/v1/predict/matrix",
		strings.NewReader("%%MatrixMarket keep"))
	req.Header.Set("X-Request-ID", "keep-hop")
	req.Header.Set(obs.TraceKeepHeader, "1")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("predict: %d %s", rec.Code, rec.Body.String())
	}

	e := p.traces.Get("keep-hop")
	if e == nil {
		t.Fatal("requested trace not retained")
	}
	if len(e.Reasons) != 1 || e.Reasons[0] != obs.KeepRequested {
		t.Fatalf("reasons = %v, want [%s]", e.Reasons, obs.KeepRequested)
	}
	var keeps []string
	for _, f := range fakes {
		f.mu.Lock()
		keeps = append(keeps, f.keeps...)
		f.mu.Unlock()
	}
	if len(keeps) != 1 || keeps[0] != "1" {
		t.Fatalf("replicas saw keep headers %v, want the client's [1]", keeps)
	}
}

// TestProxyTraceAdminAuth: the trace API is gated on the proxy's own
// token — absent configuration disables it outright.
func TestProxyTraceAdminAuth(t *testing.T) {
	defer obs.Default.Reset()
	_, open := testFleet(t, 1, Config{HedgeAfter: time.Second})
	if rec := adminGet(open.Handler(), "/v1/admin/trace", "anything"); rec.Code != http.StatusUnauthorized {
		t.Fatalf("tokenless proxy trace list: %d, want 401", rec.Code)
	}

	_, p := testFleet(t, 1, Config{HedgeAfter: time.Second, AdminToken: "ptok"})
	h := p.Handler()
	for _, token := range []string{"", "wrong"} {
		if rec := adminGet(h, "/v1/admin/trace", token); rec.Code != http.StatusUnauthorized {
			t.Fatalf("trace list with token %q: %d, want 401", token, rec.Code)
		}
	}
	if rec := adminGet(h, "/v1/admin/trace", "ptok"); rec.Code != http.StatusOK {
		t.Fatalf("authorized trace list: %d", rec.Code)
	}
	if rec := adminGet(h, "/v1/admin/trace/none-such", "ptok"); rec.Code != http.StatusNotFound {
		t.Fatalf("missing trace: %d, want 404", rec.Code)
	}
}
