// Package proxy is the fleet tier in front of N serve replicas: an
// HTTP front door that consistent-hashes prediction requests by matrix
// content hash (so each replica's prediction LRU and feature memo stay
// hot on their own slice of the keyspace), health-checks replicas via
// /readyz with eject/readmit backoff, hedges slow shards onto the next
// ring replica, and aggregates the fleet's telemetry (/metrics,
// /v1/admin/slo, /v1/admin/quality) behind one address. The rollout
// controller in rollout.go pushes a candidate artifact to every
// replica over the authenticated shadow path and promotes fleet-wide
// only when every replica's own shadow tallies clear the agreement
// threshold.
package proxy

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// defaultVnodes is the virtual-node count per member. 64 points per
// replica keeps the keyspace split within a few percent of even for
// small fleets while the ring stays tiny (N*64 entries).
const defaultVnodes = 64

// ringPoint is one virtual node: a position on the hash circle owned
// by a member.
type ringPoint struct {
	hash   uint64
	member string
}

// Ring is a consistent-hash ring over named members (replica
// addresses). Placement is a pure function of the member set — member
// insertion order, process restarts and lookup history never move a
// key — and removing one member moves only the keys that member owned
// (≈ 1/N of the keyspace). Safe for concurrent Lookup/Add/Remove.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	points []ringPoint // sorted by hash
	member map[string]bool
}

// NewRing returns an empty ring with the given virtual-node count per
// member (<= 0 selects the default).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	return &Ring{vnodes: vnodes, member: map[string]bool{}}
}

// hashKey positions a routing key (or a member#vnode name) on the
// circle. FNV-1a over the raw bytes: fast, allocation-free, and stable
// across processes — determinism across restarts is part of the ring's
// contract, so a seeded or randomized hash would be a bug.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// Add inserts member's virtual nodes. Adding a present member is a
// no-op, so eject/readmit cycles cannot double-insert.
func (r *Ring) Add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.member[member] {
		return
	}
	r.member[member] = true
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{
			hash:   hashKey(member + "#" + strconv.Itoa(v)),
			member: member,
		})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes member's virtual nodes; keys it owned redistribute to
// their clockwise successors. Removing an absent member is a no-op.
func (r *Ring) Remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.member[member] {
		return
	}
	delete(r.member, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Lookup returns the member owning key: the first virtual node
// clockwise from the key's position. ok is false on an empty ring.
func (r *Ring) Lookup(key string) (member string, ok bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return "", false
	}
	return r.points[r.searchLocked(hashKey(key))].member, true
}

// LookupN returns up to n distinct members clockwise from key's
// position: the primary first, then the hedge/retry targets in the
// order keys would fail over if the primary were ejected.
func (r *Ring) LookupN(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.member) {
		n = len(r.member)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i, start := 0, r.searchLocked(hashKey(key)); i < len(r.points) && len(out) < n; i++ {
		m := r.points[(start+i)%len(r.points)].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// searchLocked finds the index of the first point at or clockwise from
// h, wrapping past the top of the circle.
func (r *Ring) searchLocked(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Members lists the current members, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.member))
	for m := range r.member {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Size is the current member count.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.member)
}
