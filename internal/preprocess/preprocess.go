// Package preprocess implements the feature-space transformations of the
// paper's Section 4, in the order the paper applies them:
//
//  1. a log (or square-root) transform on features with sparse,
//     power-law-like distributions, which is the paper's key insight for
//     making Euclidean distance meaningful between sparse matrices;
//  2. min-max scaling of every feature to [0, 1];
//  3. PCA projection to 8 components.
//
// Transformations are fitted on training data and then applied to both
// training and test data, exactly as a scikit-learn Pipeline would be.
package preprocess

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Transformer is a fitted feature-space transformation.
type Transformer interface {
	// Transform maps one raw feature vector to the transformed space,
	// returning a new slice. Implementations must be total: an input
	// whose length differs from the fitted dimension is truncated or
	// zero-padded (never a panic), because serving paths hand these
	// untrusted client vectors. Callers that want a hard failure on
	// mismatched input use TransformChecked.
	Transform(x []float64) []float64
	// InDim is the input dimensionality the transformer was fitted on.
	InDim() int
	// OutDim is the dimensionality of the transformed space.
	OutDim() int
}

// TransformChecked applies t after validating the input dimension,
// returning a descriptive error instead of silently padding/truncating.
func TransformChecked(t Transformer, x []float64) ([]float64, error) {
	if d := t.InDim(); len(x) != d {
		return nil, fmt.Errorf("preprocess: %T expects %d features, got %d", t, d, len(x))
	}
	return t.Transform(x), nil
}

// Apply transforms every row through t.
func Apply(t Transformer, rows [][]float64) [][]float64 {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = t.Transform(r)
	}
	return out
}

// Chain composes transformers left to right.
type Chain []Transformer

// Transform runs x through every stage.
func (c Chain) Transform(x []float64) []float64 {
	// Copy so later stages may mutate freely without aliasing the input.
	y := append([]float64(nil), x...)
	for _, t := range c {
		y = t.Transform(y)
	}
	return y
}

// TransformChecked runs x through every stage, validating the input
// dimension of each against the vector it receives. This is the entry
// point for untrusted feature vectors (e.g. the prediction service).
func (c Chain) TransformChecked(x []float64) ([]float64, error) {
	y := append([]float64(nil), x...)
	for i, t := range c {
		var err error
		if y, err = TransformChecked(t, y); err != nil {
			return nil, fmt.Errorf("stage %d: %w", i, err)
		}
	}
	return y, nil
}

// InDim is the input dimension of the first stage (0 for an empty
// chain, meaning any).
func (c Chain) InDim() int {
	if len(c) == 0 {
		return 0
	}
	return c[0].InDim()
}

// OutDim is the output dimension of the last stage.
func (c Chain) OutDim() int {
	if len(c) == 0 {
		return 0
	}
	return c[len(c)-1].OutDim()
}

// SkewTransform applies log1p to features whose training distribution is
// heavy-tailed ("sparse" in the paper's terms) and sqrt to moderately
// skewed ones, leaving well-behaved features alone. The decision is made
// per feature from the skewness of the training sample.
type SkewTransform struct {
	// Mode[j] is 0 (identity), 1 (sqrt) or 2 (log1p) for feature j.
	Mode []int
}

// Skewness thresholds above which sqrt and log transforms are applied.
const (
	sqrtSkewThreshold = 1.0
	logSkewThreshold  = 3.0
)

// FitSkew inspects the training rows and decides per feature between
// identity, sqrt and log1p. Features can be negative in principle
// (max_mu, mu_min differences); those are shifted implicitly by using
// sign-preserving transforms.
func FitSkew(rows [][]float64) (*SkewTransform, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("preprocess: FitSkew on empty sample")
	}
	d := len(rows[0])
	t := &SkewTransform{Mode: make([]int, d)}
	for j := 0; j < d; j++ {
		g := skewness(rows, j)
		switch {
		case g > logSkewThreshold:
			t.Mode[j] = 2
		case g > sqrtSkewThreshold:
			t.Mode[j] = 1
		}
	}
	return t, nil
}

// skewness returns the adjusted Fisher-Pearson sample skewness of
// feature j: G1 = sqrt(n(n-1))/(n-2) * m3/m2^1.5, the bias-corrected
// estimator scipy's skew(bias=False) computes. Samples with fewer than
// three rows have no defined correction and return the biased value.
func skewness(rows [][]float64, j int) float64 {
	n := float64(len(rows))
	mu := 0.0
	for _, r := range rows {
		mu += r[j]
	}
	mu /= n
	var m2, m3 float64
	for _, r := range rows {
		d := r[j] - mu
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	g1 := m3 / math.Pow(m2, 1.5)
	if len(rows) < 3 {
		return g1
	}
	return g1 * math.Sqrt(n*(n-1)) / (n - 2)
}

// Transform applies the fitted per-feature transforms.
func (t *SkewTransform) Transform(x []float64) []float64 {
	y := make([]float64, len(x))
	for j, v := range x {
		mode := 0
		if j < len(t.Mode) {
			mode = t.Mode[j]
		}
		switch mode {
		case 1:
			y[j] = math.Copysign(math.Sqrt(math.Abs(v)), v)
		case 2:
			y[j] = math.Copysign(math.Log1p(math.Abs(v)), v)
		default:
			y[j] = v
		}
	}
	return y
}

// InDim returns the fitted dimensionality.
func (t *SkewTransform) InDim() int { return len(t.Mode) }

// OutDim returns the (unchanged) dimensionality.
func (t *SkewTransform) OutDim() int { return len(t.Mode) }

// MinMaxScaler scales each feature to [0, 1] using training minima and
// maxima; constant features map to 0. Values outside the training range
// are clamped, so novel test matrices cannot blow up distances.
type MinMaxScaler struct {
	Min, Max []float64
}

// FitMinMax computes per-feature minima and maxima.
func FitMinMax(rows [][]float64) (*MinMaxScaler, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("preprocess: FitMinMax on empty sample")
	}
	d := len(rows[0])
	s := &MinMaxScaler{Min: make([]float64, d), Max: make([]float64, d)}
	copy(s.Min, rows[0])
	copy(s.Max, rows[0])
	for _, r := range rows[1:] {
		for j, v := range r {
			if v < s.Min[j] {
				s.Min[j] = v
			}
			if v > s.Max[j] {
				s.Max[j] = v
			}
		}
	}
	return s, nil
}

// Transform scales x into [0, 1] per feature with clamping. The output
// always has the fitted dimension: extra input features are dropped and
// missing ones read as zero (which then clamps), so a wrong-length
// vector from an untrusted client can never panic on s.Min/s.Max.
func (s *MinMaxScaler) Transform(x []float64) []float64 {
	y := make([]float64, len(s.Min))
	for j := range y {
		span := s.Max[j] - s.Min[j]
		if span <= 0 {
			continue
		}
		v := 0.0
		if j < len(x) {
			v = x[j]
		}
		u := (v - s.Min[j]) / span
		if u < 0 {
			u = 0
		} else if u > 1 {
			u = 1
		}
		y[j] = u
	}
	return y
}

// InDim returns the fitted dimensionality.
func (s *MinMaxScaler) InDim() int { return len(s.Min) }

// OutDim returns the (unchanged) dimensionality.
func (s *MinMaxScaler) OutDim() int { return len(s.Min) }

// PCA projects onto the leading principal components of the training
// sample.
type PCA struct {
	// Mean is subtracted before projection.
	Mean []float64
	// Components is k x d: row i is the i-th principal axis.
	Components *linalg.Dense
	// ExplainedVariance holds the eigenvalues of the kept components.
	ExplainedVariance []float64
}

// PaperComponents is the PCA output dimension the paper uses.
const PaperComponents = 8

// FitPCA computes the top-k principal components with the Jacobi
// eigensolver on the covariance matrix. k is capped at the feature
// dimension.
func FitPCA(rows [][]float64, k int) (*PCA, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("preprocess: FitPCA on empty sample")
	}
	if k <= 0 {
		return nil, fmt.Errorf("preprocess: FitPCA with k = %d", k)
	}
	d := len(rows[0])
	if k > d {
		k = d
	}
	sample := linalg.FromRows(rows)
	cov, mean := linalg.Covariance(sample)
	vals, vecs, err := linalg.SymEigen(cov)
	if err != nil {
		return nil, fmt.Errorf("preprocess: FitPCA eigensolve: %w", err)
	}
	p := &PCA{
		Mean:              mean,
		Components:        linalg.NewDense(k, d),
		ExplainedVariance: make([]float64, k),
	}
	for i := 0; i < k; i++ {
		p.ExplainedVariance[i] = vals[i]
		for j := 0; j < d; j++ {
			p.Components.Set(i, j, vecs.At(j, i))
		}
	}
	return p, nil
}

// Transform centres x and projects it onto the kept components. Like
// MinMaxScaler.Transform it is total: the centred vector always has the
// fitted dimension, with extra input features dropped and missing ones
// read as zero.
func (p *PCA) Transform(x []float64) []float64 {
	centered := make([]float64, len(p.Mean))
	for j := range centered {
		v := 0.0
		if j < len(x) {
			v = x[j]
		}
		centered[j] = v - p.Mean[j]
	}
	return linalg.MulVec(p.Components, centered)
}

// InDim returns the fitted dimensionality.
func (p *PCA) InDim() int { return len(p.Mean) }

// OutDim returns the number of kept components.
func (p *PCA) OutDim() int { return p.Components.Rows }

// Options configures FitPipeline.
type Options struct {
	// SkipSkew disables the log/sqrt stage (the paper's "naive"
	// baseline that clusters poorly).
	SkipSkew bool
	// SkipPCA disables the projection stage.
	SkipPCA bool
	// Components is the PCA output size; 0 means PaperComponents.
	Components int
}

// FitPipeline fits the paper's full preprocessing chain — skew transform,
// min-max scaling, PCA(8) — on the training rows.
func FitPipeline(rows [][]float64, opt Options) (Chain, error) {
	var chain Chain
	work := rows
	if !opt.SkipSkew {
		sk, err := FitSkew(work)
		if err != nil {
			return nil, err
		}
		chain = append(chain, sk)
		work = Apply(sk, work)
	}
	mm, err := FitMinMax(work)
	if err != nil {
		return nil, err
	}
	chain = append(chain, mm)
	work = Apply(mm, work)
	if !opt.SkipPCA {
		k := opt.Components
		if k == 0 {
			k = PaperComponents
		}
		pca, err := FitPCA(work, k)
		if err != nil {
			return nil, err
		}
		chain = append(chain, pca)
	}
	return chain, nil
}
