package preprocess

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

func TestFitSkewModes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows := make([][]float64, 400)
	for i := range rows {
		rows[i] = []float64{
			rng.NormFloat64(),               // symmetric: identity
			math.Pow(rng.Float64(), -0.6),   // heavy tail: log
			math.Abs(rng.NormFloat64()) * 2, // mild skew
		}
	}
	sk, err := FitSkew(rows)
	if err != nil {
		t.Fatal(err)
	}
	if sk.Mode[0] != 0 {
		t.Errorf("symmetric feature got mode %d, want 0", sk.Mode[0])
	}
	if sk.Mode[1] != 2 {
		t.Errorf("power-law feature got mode %d, want 2 (log)", sk.Mode[1])
	}
}

func TestSkewTransformValues(t *testing.T) {
	sk := &SkewTransform{Mode: []int{0, 1, 2}}
	y := sk.Transform([]float64{3, 16, math.E - 1})
	if y[0] != 3 {
		t.Errorf("identity: %v", y[0])
	}
	if y[1] != 4 {
		t.Errorf("sqrt: %v", y[1])
	}
	if math.Abs(y[2]-1) > 1e-12 {
		t.Errorf("log1p: %v", y[2])
	}
	// Sign preservation for the difference features.
	y2 := sk.Transform([]float64{-3, -16, -(math.E - 1)})
	if y2[1] != -4 || math.Abs(y2[2]+1) > 1e-12 {
		t.Errorf("negative values lose sign: %v", y2)
	}
	if sk.OutDim() != 3 {
		t.Error("OutDim wrong")
	}
}

func TestMinMaxScaler(t *testing.T) {
	rows := [][]float64{{0, 10, 5}, {10, 20, 5}, {5, 15, 5}}
	mm, err := FitMinMax(rows)
	if err != nil {
		t.Fatal(err)
	}
	y := mm.Transform([]float64{5, 10, 5})
	if y[0] != 0.5 || y[1] != 0 {
		t.Errorf("scaling wrong: %v", y)
	}
	// Constant feature maps to 0.
	if y[2] != 0 {
		t.Errorf("constant feature should map to 0, got %v", y[2])
	}
	// Out-of-range values clamp.
	y = mm.Transform([]float64{-100, 100, 0})
	if y[0] != 0 || y[1] != 1 {
		t.Errorf("clamping wrong: %v", y)
	}
}

func TestFitEmptyErrors(t *testing.T) {
	if _, err := FitSkew(nil); err == nil {
		t.Error("FitSkew(nil) accepted")
	}
	if _, err := FitMinMax(nil); err == nil {
		t.Error("FitMinMax(nil) accepted")
	}
	if _, err := FitPCA(nil, 2); err == nil {
		t.Error("FitPCA(nil) accepted")
	}
	if _, err := FitPCA([][]float64{{1, 2}}, 0); err == nil {
		t.Error("FitPCA(k=0) accepted")
	}
}

func TestPCARecoversDominantDirection(t *testing.T) {
	// Points spread along (1, 1)/sqrt(2) with small noise: the first
	// component must align with it and capture most variance.
	rng := rand.New(rand.NewSource(2))
	rows := make([][]float64, 500)
	for i := range rows {
		s := rng.NormFloat64() * 10
		rows[i] = []float64{s + rng.NormFloat64()*0.1, s + rng.NormFloat64()*0.1}
	}
	p, err := FitPCA(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	c0 := []float64{p.Components.At(0, 0), p.Components.At(0, 1)}
	if math.Abs(math.Abs(c0[0])-math.Sqrt(0.5)) > 0.02 ||
		math.Abs(math.Abs(c0[1])-math.Sqrt(0.5)) > 0.02 {
		t.Errorf("first component %v not aligned with (1,1)", c0)
	}
	if p.ExplainedVariance[0] < 50*p.ExplainedVariance[1] {
		t.Errorf("variance not concentrated: %v", p.ExplainedVariance)
	}
}

func TestPCACapsComponents(t *testing.T) {
	rows := [][]float64{{1, 2}, {3, 4}, {5, 7}}
	p, err := FitPCA(rows, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.OutDim() != 2 {
		t.Errorf("OutDim = %d, want capped 2", p.OutDim())
	}
}

func TestPipelineShapesAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := make([][]float64, 300)
	for i := range rows {
		r := make([]float64, 21)
		for j := range r {
			r[j] = math.Pow(rng.Float64(), -0.4) * float64(j+1)
		}
		rows[i] = r
	}
	chain, err := FitPipeline(rows, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if chain.OutDim() != PaperComponents {
		t.Fatalf("pipeline OutDim = %d, want %d", chain.OutDim(), PaperComponents)
	}
	y := chain.Transform(rows[0])
	if len(y) != PaperComponents {
		t.Fatalf("transformed length %d", len(y))
	}
	// Without PCA the output is min-max scaled: all in [0, 1].
	chain2, err := FitPipeline(rows, Options{SkipPCA: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		for _, v := range chain2.Transform(r) {
			if v < 0 || v > 1 {
				t.Fatalf("scaled value %v outside [0,1]", v)
			}
		}
	}
	// Empty chain degenerates gracefully.
	if (Chain{}).OutDim() != 0 {
		t.Error("empty chain OutDim != 0")
	}
}

func TestPipelineSkipSkew(t *testing.T) {
	rows := [][]float64{{1, 10}, {2, 100}, {3, 1000}, {4, 10000}}
	with, err := FitPipeline(rows, Options{SkipPCA: true})
	if err != nil {
		t.Fatal(err)
	}
	without, err := FitPipeline(rows, Options{SkipSkew: true, SkipPCA: true})
	if err != nil {
		t.Fatal(err)
	}
	// The log transform must change the scaled value of mid-range points
	// on the heavy-tailed second feature.
	a := with.Transform([]float64{2, 100})[1]
	b := without.Transform([]float64{2, 100})[1]
	if math.Abs(a-b) < 1e-6 {
		t.Error("skew stage has no effect")
	}
}

// TestQuickPipelineDeterministicAndFinite property-tests that fitted
// pipelines transform arbitrary in-range inputs to finite values,
// deterministically.
func TestQuickPipelineDeterministicAndFinite(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d := 20+rng.Intn(60), 3+rng.Intn(10)
		rows := make([][]float64, n)
		for i := range rows {
			r := make([]float64, d)
			for j := range r {
				r[j] = rng.ExpFloat64() * math.Pow(10, float64(j%4))
			}
			rows[i] = r
		}
		chain, err := FitPipeline(rows, Options{Components: 3})
		if err != nil {
			return false
		}
		for _, r := range rows {
			y1 := chain.Transform(r)
			y2 := chain.Transform(r)
			for k := range y1 {
				if y1[k] != y2[k] || math.IsNaN(y1[k]) || math.IsInf(y1[k], 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPCAOrthonormalComponents checks the projection rows are
// orthonormal, which SymEigen guarantees.
func TestPCAOrthonormalComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rows := make([][]float64, 200)
	for i := range rows {
		r := make([]float64, 6)
		for j := range r {
			r[j] = rng.NormFloat64() * float64(j+1)
		}
		rows[i] = r
	}
	p, err := FitPCA(rows, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := i; j < 4; j++ {
			dot := linalg.Dot(p.Components.Row(i), p.Components.Row(j))
			want := 0.0
			if i == j {
				want = 1.0
			}
			if math.Abs(dot-want) > 1e-8 {
				t.Errorf("components %d,%d dot = %v, want %v", i, j, dot, want)
			}
		}
	}
}
