package preprocess

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

func TestFitSkewModes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows := make([][]float64, 400)
	for i := range rows {
		rows[i] = []float64{
			rng.NormFloat64(),               // symmetric: identity
			math.Pow(rng.Float64(), -0.6),   // heavy tail: log
			math.Abs(rng.NormFloat64()) * 2, // mild skew
		}
	}
	sk, err := FitSkew(rows)
	if err != nil {
		t.Fatal(err)
	}
	if sk.Mode[0] != 0 {
		t.Errorf("symmetric feature got mode %d, want 0", sk.Mode[0])
	}
	if sk.Mode[1] != 2 {
		t.Errorf("power-law feature got mode %d, want 2 (log)", sk.Mode[1])
	}
}

func TestSkewTransformValues(t *testing.T) {
	sk := &SkewTransform{Mode: []int{0, 1, 2}}
	y := sk.Transform([]float64{3, 16, math.E - 1})
	if y[0] != 3 {
		t.Errorf("identity: %v", y[0])
	}
	if y[1] != 4 {
		t.Errorf("sqrt: %v", y[1])
	}
	if math.Abs(y[2]-1) > 1e-12 {
		t.Errorf("log1p: %v", y[2])
	}
	// Sign preservation for the difference features.
	y2 := sk.Transform([]float64{-3, -16, -(math.E - 1)})
	if y2[1] != -4 || math.Abs(y2[2]+1) > 1e-12 {
		t.Errorf("negative values lose sign: %v", y2)
	}
	if sk.OutDim() != 3 {
		t.Error("OutDim wrong")
	}
}

func TestMinMaxScaler(t *testing.T) {
	rows := [][]float64{{0, 10, 5}, {10, 20, 5}, {5, 15, 5}}
	mm, err := FitMinMax(rows)
	if err != nil {
		t.Fatal(err)
	}
	y := mm.Transform([]float64{5, 10, 5})
	if y[0] != 0.5 || y[1] != 0 {
		t.Errorf("scaling wrong: %v", y)
	}
	// Constant feature maps to 0.
	if y[2] != 0 {
		t.Errorf("constant feature should map to 0, got %v", y[2])
	}
	// Out-of-range values clamp.
	y = mm.Transform([]float64{-100, 100, 0})
	if y[0] != 0 || y[1] != 1 {
		t.Errorf("clamping wrong: %v", y)
	}
}

func TestFitEmptyErrors(t *testing.T) {
	if _, err := FitSkew(nil); err == nil {
		t.Error("FitSkew(nil) accepted")
	}
	if _, err := FitMinMax(nil); err == nil {
		t.Error("FitMinMax(nil) accepted")
	}
	if _, err := FitPCA(nil, 2); err == nil {
		t.Error("FitPCA(nil) accepted")
	}
	if _, err := FitPCA([][]float64{{1, 2}}, 0); err == nil {
		t.Error("FitPCA(k=0) accepted")
	}
}

func TestPCARecoversDominantDirection(t *testing.T) {
	// Points spread along (1, 1)/sqrt(2) with small noise: the first
	// component must align with it and capture most variance.
	rng := rand.New(rand.NewSource(2))
	rows := make([][]float64, 500)
	for i := range rows {
		s := rng.NormFloat64() * 10
		rows[i] = []float64{s + rng.NormFloat64()*0.1, s + rng.NormFloat64()*0.1}
	}
	p, err := FitPCA(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	c0 := []float64{p.Components.At(0, 0), p.Components.At(0, 1)}
	if math.Abs(math.Abs(c0[0])-math.Sqrt(0.5)) > 0.02 ||
		math.Abs(math.Abs(c0[1])-math.Sqrt(0.5)) > 0.02 {
		t.Errorf("first component %v not aligned with (1,1)", c0)
	}
	if p.ExplainedVariance[0] < 50*p.ExplainedVariance[1] {
		t.Errorf("variance not concentrated: %v", p.ExplainedVariance)
	}
}

func TestPCACapsComponents(t *testing.T) {
	rows := [][]float64{{1, 2}, {3, 4}, {5, 7}}
	p, err := FitPCA(rows, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.OutDim() != 2 {
		t.Errorf("OutDim = %d, want capped 2", p.OutDim())
	}
}

func TestPipelineShapesAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := make([][]float64, 300)
	for i := range rows {
		r := make([]float64, 21)
		for j := range r {
			r[j] = math.Pow(rng.Float64(), -0.4) * float64(j+1)
		}
		rows[i] = r
	}
	chain, err := FitPipeline(rows, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if chain.OutDim() != PaperComponents {
		t.Fatalf("pipeline OutDim = %d, want %d", chain.OutDim(), PaperComponents)
	}
	y := chain.Transform(rows[0])
	if len(y) != PaperComponents {
		t.Fatalf("transformed length %d", len(y))
	}
	// Without PCA the output is min-max scaled: all in [0, 1].
	chain2, err := FitPipeline(rows, Options{SkipPCA: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		for _, v := range chain2.Transform(r) {
			if v < 0 || v > 1 {
				t.Fatalf("scaled value %v outside [0,1]", v)
			}
		}
	}
	// Empty chain degenerates gracefully.
	if (Chain{}).OutDim() != 0 {
		t.Error("empty chain OutDim != 0")
	}
}

func TestPipelineSkipSkew(t *testing.T) {
	rows := [][]float64{{1, 10}, {2, 100}, {3, 1000}, {4, 10000}}
	with, err := FitPipeline(rows, Options{SkipPCA: true})
	if err != nil {
		t.Fatal(err)
	}
	without, err := FitPipeline(rows, Options{SkipSkew: true, SkipPCA: true})
	if err != nil {
		t.Fatal(err)
	}
	// The log transform must change the scaled value of mid-range points
	// on the heavy-tailed second feature.
	a := with.Transform([]float64{2, 100})[1]
	b := without.Transform([]float64{2, 100})[1]
	if math.Abs(a-b) < 1e-6 {
		t.Error("skew stage has no effect")
	}
}

// TestQuickPipelineDeterministicAndFinite property-tests that fitted
// pipelines transform arbitrary in-range inputs to finite values,
// deterministically.
func TestQuickPipelineDeterministicAndFinite(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d := 20+rng.Intn(60), 3+rng.Intn(10)
		rows := make([][]float64, n)
		for i := range rows {
			r := make([]float64, d)
			for j := range r {
				r[j] = rng.ExpFloat64() * math.Pow(10, float64(j%4))
			}
			rows[i] = r
		}
		chain, err := FitPipeline(rows, Options{Components: 3})
		if err != nil {
			return false
		}
		for _, r := range rows {
			y1 := chain.Transform(r)
			y2 := chain.Transform(r)
			for k := range y1 {
				if y1[k] != y2[k] || math.IsNaN(y1[k]) || math.IsInf(y1[k], 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPCAOrthonormalComponents checks the projection rows are
// orthonormal, which SymEigen guarantees.
func TestPCAOrthonormalComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rows := make([][]float64, 200)
	for i := range rows {
		r := make([]float64, 6)
		for j := range r {
			r[j] = rng.NormFloat64() * float64(j+1)
		}
		rows[i] = r
	}
	p, err := FitPCA(rows, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := i; j < 4; j++ {
			dot := linalg.Dot(p.Components.Row(i), p.Components.Row(j))
			want := 0.0
			if i == j {
				want = 1.0
			}
			if math.Abs(dot-want) > 1e-8 {
				t.Errorf("components %d,%d dot = %v, want %v", i, j, dot, want)
			}
		}
	}
}

// TestSkewnessAdjustedEstimator pins the adjusted Fisher-Pearson value
// G1 = sqrt(n(n-1))/(n-2) * m3/m2^1.5 on samples with a closed-form
// skewness, matching scipy.stats.skew(..., bias=False).
func TestSkewnessAdjustedEstimator(t *testing.T) {
	cases := []struct {
		name string
		col  []float64
		want float64
	}{
		// {0, 0, 1}: biased g1 = 1/sqrt(2), adjusted G1 = sqrt(3).
		{"three-point", []float64{0, 0, 1}, math.Sqrt(3)},
		// Bernoulli(p = 1/10) sample: biased g1 = (1-2p)/sqrt(p(1-p)) =
		// 8/3, adjusted G1 = 8/3 * sqrt(90)/8 = sqrt(10).
		{"bernoulli-tenth", []float64{0, 0, 0, 0, 0, 0, 0, 0, 0, 1}, math.Sqrt(10)},
		// Symmetric samples stay at zero under the correction.
		{"symmetric", []float64{-2, -1, 0, 1, 2}, 0},
	}
	for _, tc := range cases {
		rows := make([][]float64, len(tc.col))
		for i, v := range tc.col {
			rows[i] = []float64{v}
		}
		if got := skewness(rows, 0); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: skewness = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestSkewnessSmallSampleFallsBack checks that n < 3 returns the biased
// estimator (the adjustment divides by n-2).
func TestSkewnessSmallSampleFallsBack(t *testing.T) {
	rows := [][]float64{{0}, {1}}
	if got := skewness(rows, 0); got != 0 {
		t.Errorf("two-point sample skewness = %v, want 0", got)
	}
	if got := skewness([][]float64{{5}}, 0); got != 0 {
		t.Errorf("one-point sample skewness = %v, want 0", got)
	}
}

// TestFitSkewAdjustmentFlipsMode places samples where the biased
// estimator sits below a threshold but the adjusted one sits above it,
// so the correction changes the chosen transform mode.
func TestFitSkewAdjustmentFlipsMode(t *testing.T) {
	// {0, 0, 1}: biased 0.707 < sqrtSkewThreshold, adjusted 1.732 > it
	// (and < logSkewThreshold) -> sqrt instead of identity.
	sqrtRows := [][]float64{{0}, {0}, {1}}
	sk, err := FitSkew(sqrtRows)
	if err != nil {
		t.Fatal(err)
	}
	if sk.Mode[0] != 1 {
		t.Errorf("adjusted skewness 1.732 got mode %d, want 1 (sqrt)", sk.Mode[0])
	}

	// Bernoulli(1/10): biased 2.667 < logSkewThreshold, adjusted
	// 3.162 > it -> log instead of sqrt.
	logRows := make([][]float64, 10)
	for i := range logRows {
		logRows[i] = []float64{0}
	}
	logRows[9][0] = 1
	sk, err = FitSkew(logRows)
	if err != nil {
		t.Fatal(err)
	}
	if sk.Mode[0] != 2 {
		t.Errorf("adjusted skewness 3.162 got mode %d, want 2 (log)", sk.Mode[0])
	}
}

// TestTransformWrongDimensionNoPanic feeds fitted transformers vectors
// of the wrong length — the serve path's untrusted input — and checks
// for deterministic, panic-free behaviour.
func TestTransformWrongDimensionNoPanic(t *testing.T) {
	rows := [][]float64{{0, 0, 0}, {1, 2, 3}, {2, 4, 6}, {3, 9, 1}}
	chain, err := FitPipeline(rows, Options{Components: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range chain {
		if got := tr.InDim(); got != 3 {
			t.Fatalf("%T.InDim() = %d, want 3", tr, got)
		}
	}
	long := []float64{1, 2, 3, 4, 5, 6}
	short := []float64{1}
	for _, in := range [][]float64{long, short, nil} {
		out := chain.Transform(in) // must not panic
		if len(out) != chain.OutDim() {
			t.Errorf("Transform(len %d) returned %d dims, want %d", len(in), len(out), chain.OutDim())
		}
	}
	// The checked path reports the mismatch instead.
	if _, err := chain.TransformChecked(long); err == nil {
		t.Error("TransformChecked accepted a 6-vector on a 3-feature chain")
	}
	if _, err := chain.TransformChecked(short); err == nil {
		t.Error("TransformChecked accepted a 1-vector on a 3-feature chain")
	}
	ok := []float64{1, 2, 3}
	checked, err := chain.TransformChecked(ok)
	if err != nil {
		t.Fatal(err)
	}
	plain := chain.Transform(ok)
	for j := range plain {
		if checked[j] != plain[j] {
			t.Errorf("checked and plain transforms diverge at %d: %v != %v", j, checked[j], plain[j])
		}
	}
}

// TestMinMaxScalerDimensionGuard pins the documented truncate/zero-pad
// behaviour of the standalone scaler.
func TestMinMaxScalerDimensionGuard(t *testing.T) {
	s, err := FitMinMax([][]float64{{0, 10}, {4, 20}})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Transform([]float64{2, 15, 99}); len(got) != 2 || got[0] != 0.5 || got[1] != 0.5 {
		t.Errorf("long input: %v, want [0.5 0.5]", got)
	}
	// Missing features read as zero and clamp to the training minimum.
	if got := s.Transform([]float64{4}); len(got) != 2 || got[0] != 1 || got[1] != 0 {
		t.Errorf("short input: %v, want [1 0]", got)
	}
}
