package semisup

import (
	"fmt"
	"math"
)

// Expected-accuracy arithmetic from the paper's Section 4 worked
// example: a cluster with purity p (fraction of members preferring the
// dominant format) is labelled by majority vote over k benchmarked
// members, each independently preferring the dominant format with
// probability p. The paper walks through p=0.9, k=1 (accuracy 0.82),
// p=0.8, k=1 (0.68) and p=0.8, k=2 (label correct with probability
// 0.96, accuracy 0.78); these functions generalise that calculation and
// the unit tests reproduce the paper's numbers.

// VoteLabelProbability returns the probability that a majority vote over
// k sampled members picks the cluster's dominant format, treating the
// cluster as two-sided (dominant format vs everything else, the paper's
// simplification). Ties split in the dominant format's favour half the
// time. It returns an error for non-sensical inputs.
func VoteLabelProbability(purity float64, k int) (float64, error) {
	if purity < 0 || purity > 1 {
		return 0, fmt.Errorf("semisup: purity %v outside [0, 1]", purity)
	}
	if k < 1 {
		return 0, fmt.Errorf("semisup: vote over %d samples", k)
	}
	win, tie := 0.0, 0.0
	for d := 0; d <= k; d++ { // d = votes for the dominant format
		p := binomialPMF(k, d, purity)
		switch {
		case 2*d > k:
			win += p
		case 2*d == k:
			tie += p
		}
	}
	return win + tie/2, nil
}

// ExpectedVoteAccuracy returns the expected classification accuracy of
// the cluster once labelled by a k-sample majority vote: purity when the
// vote picks the dominant format, 1-purity when it does not — exactly
// the paper's example arithmetic.
func ExpectedVoteAccuracy(purity float64, k int) (float64, error) {
	q, err := VoteLabelProbability(purity, k)
	if err != nil {
		return 0, err
	}
	return q*purity + (1-q)*(1-purity), nil
}

// binomialPMF returns C(n, k) p^k (1-p)^(n-k) computed in log space for
// stability.
func binomialPMF(n, k int, p float64) float64 {
	if p == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p == 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lg := lchoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	return math.Exp(lg)
}

// lchoose returns log C(n, k) via the log-gamma function.
func lchoose(n, k int) float64 {
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}
