package semisup

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/preprocess"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := clusteredTask(rng, 400, 8, 4)
	m, err := Train(x, y, 4, Config{NumClusters: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumClusters() != m.NumClusters() {
		t.Fatalf("clusters %d != %d", loaded.NumClusters(), m.NumClusters())
	}
	for i, row := range x {
		if m.Predict(row) != loaded.Predict(row) {
			t.Fatalf("prediction diverges at row %d", i)
		}
		if m.ClusterOf(row) != loaded.ClusterOf(row) {
			t.Fatalf("cluster assignment diverges at row %d", i)
		}
	}
	for c := 0; c < m.NumClusters(); c++ {
		if m.ClusterLabel(c) != loaded.ClusterLabel(c) || m.ClusterSize(c) != loaded.ClusterSize(c) {
			t.Fatalf("cluster %d metadata diverges", c)
		}
	}
}

func TestLoadedModelRelabels(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := clusteredTask(rng, 400, 8, 4)
	yFlip := make([]int, len(y))
	for i, l := range y {
		yFlip[i] = (l + 2) % 4
	}
	m, err := Train(x, y, 4, Config{NumClusters: 16, Seed: 4,
		Preprocess: preprocess.Options{SkipPCA: true}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Port the loaded model to the "new architecture".
	if err := loaded.Relabel(x, yFlip); err != nil {
		t.Fatal(err)
	}
	hit := 0
	for i, row := range x {
		if loaded.Predict(row) == yFlip[i] {
			hit++
		}
	}
	if acc := float64(hit) / float64(len(x)); acc < 0.9 {
		t.Errorf("relabelled loaded model accuracy %.3f", acc)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob stream")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestSaveLoadAllRulesAndAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := clusteredTask(rng, 300, 4, 3)
	for _, algo := range []Algorithm{AlgoKMeans, AlgoBirch, AlgoMeanShift} {
		for _, rule := range []Rule{RuleVote, RuleLR, RuleRF} {
			m, err := Train(x, y, 3, Config{Algorithm: algo, Rule: rule,
				NumClusters: 8, Seed: 1})
			if err != nil {
				t.Fatalf("%s/%s: %v", algo, rule, err)
			}
			var buf bytes.Buffer
			if err := m.Save(&buf); err != nil {
				t.Fatalf("%s/%s save: %v", algo, rule, err)
			}
			loaded, err := Load(&buf)
			if err != nil {
				t.Fatalf("%s/%s load: %v", algo, rule, err)
			}
			for i := 0; i < 30; i++ {
				row := x[rng.Intn(len(x))]
				if m.Predict(row) != loaded.Predict(row) {
					t.Fatalf("%s/%s: prediction diverges", algo, rule)
				}
			}
		}
	}
}
