package semisup

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/preprocess"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := clusteredTask(rng, 400, 8, 4)
	m, err := Train(x, y, 4, Config{NumClusters: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumClusters() != m.NumClusters() {
		t.Fatalf("clusters %d != %d", loaded.NumClusters(), m.NumClusters())
	}
	for i, row := range x {
		if m.Predict(row) != loaded.Predict(row) {
			t.Fatalf("prediction diverges at row %d", i)
		}
		if m.ClusterOf(row) != loaded.ClusterOf(row) {
			t.Fatalf("cluster assignment diverges at row %d", i)
		}
	}
	for c := 0; c < m.NumClusters(); c++ {
		if m.ClusterLabel(c) != loaded.ClusterLabel(c) || m.ClusterSize(c) != loaded.ClusterSize(c) {
			t.Fatalf("cluster %d metadata diverges", c)
		}
	}
}

func TestLoadedModelRelabels(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := clusteredTask(rng, 400, 8, 4)
	yFlip := make([]int, len(y))
	for i, l := range y {
		yFlip[i] = (l + 2) % 4
	}
	m, err := Train(x, y, 4, Config{NumClusters: 16, Seed: 4,
		Preprocess: preprocess.Options{SkipPCA: true}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Port the loaded model to the "new architecture".
	if err := loaded.Relabel(x, yFlip); err != nil {
		t.Fatal(err)
	}
	hit := 0
	for i, row := range x {
		if loaded.Predict(row) == yFlip[i] {
			hit++
		}
	}
	if acc := float64(hit) / float64(len(x)); acc < 0.9 {
		t.Errorf("relabelled loaded model accuracy %.3f", acc)
	}
}

// TestRoundTripPreservesFittedChain checks the fitted preprocessing
// chain itself — skew thresholds, scaler bounds, PCA basis — survives
// serialization bit for bit, not merely "close enough": every
// transformed coordinate must be identical, and the strict
// TransformChecked path must behave the same on the loaded model.
func TestRoundTripPreservesFittedChain(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, y := clusteredTask(rng, 400, 8, 4)
	m, err := Train(x, y, 4, Config{NumClusters: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.InDim() != m.InDim() || loaded.Classes() != m.Classes() {
		t.Fatalf("metadata diverges: InDim %d/%d Classes %d/%d",
			loaded.InDim(), m.InDim(), loaded.Classes(), m.Classes())
	}
	if len(loaded.pipeline) != len(m.pipeline) {
		t.Fatalf("chain length %d != %d", len(loaded.pipeline), len(m.pipeline))
	}
	for i, row := range x {
		want := m.pipeline.Transform(row)
		got := loaded.pipeline.Transform(row)
		if len(got) != len(want) {
			t.Fatalf("row %d: transformed dim %d != %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("row %d coord %d: %v != %v after round-trip", i, j, got[j], want[j])
			}
		}
		wantP, errW := m.PredictChecked(row)
		gotP, errG := loaded.PredictChecked(row)
		if errW != nil || errG != nil || wantP != gotP {
			t.Fatalf("row %d: PredictChecked %d,%v != %d,%v", i, gotP, errG, wantP, errW)
		}
	}
	// The strict path still rejects bad dimensions after loading.
	if _, err := loaded.PredictChecked([]float64{1, 2}); err == nil {
		t.Error("loaded model accepted a 2-vector")
	}
}

// TestModelGobValue exercises the GobEncoder/GobDecoder hooks that let
// a *Model travel as a field of a larger gob message (the serve
// artifact does exactly this).
func TestModelGobValue(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, y := clusteredTask(rng, 300, 4, 3)
	m, err := Train(x, y, 3, Config{NumClusters: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	type carrier struct {
		Name  string
		Model *Model
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(carrier{Name: "m", Model: m}); err != nil {
		t.Fatal(err)
	}
	var out carrier
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Model == nil {
		t.Fatal("model field decoded to nil")
	}
	for i, row := range x {
		if m.Predict(row) != out.Model.Predict(row) {
			t.Fatalf("embedded round-trip diverges at row %d", i)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob stream")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestSaveLoadAllRulesAndAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := clusteredTask(rng, 300, 4, 3)
	for _, algo := range []Algorithm{AlgoKMeans, AlgoBirch, AlgoMeanShift} {
		for _, rule := range []Rule{RuleVote, RuleLR, RuleRF} {
			m, err := Train(x, y, 3, Config{Algorithm: algo, Rule: rule,
				NumClusters: 8, Seed: 1})
			if err != nil {
				t.Fatalf("%s/%s: %v", algo, rule, err)
			}
			var buf bytes.Buffer
			if err := m.Save(&buf); err != nil {
				t.Fatalf("%s/%s save: %v", algo, rule, err)
			}
			loaded, err := Load(&buf)
			if err != nil {
				t.Fatalf("%s/%s load: %v", algo, rule, err)
			}
			for i := 0; i < 30; i++ {
				row := x[rng.Intn(len(x))]
				if m.Predict(row) != loaded.Predict(row) {
					t.Fatalf("%s/%s: prediction diverges", algo, rule)
				}
			}
		}
	}
}
