// Package semisup implements the paper's contribution: semi-supervised
// sparse-format selection by clustering matrices in a preprocessed
// feature space and assigning each cluster an optimal format.
//
// The pipeline (Section 4 of the paper):
//
//  1. fit the preprocessing chain (log/sqrt transform, min-max scaling,
//     PCA to 8 components) on the training features;
//  2. cluster the transformed training set with K-Means, Mean-Shift or
//     Birch;
//  3. assign each cluster a format label with one of three rules —
//     majority VOTE over the benchmarked members, Logistic Regression,
//     or Random Forest — using only the members whose ground truth has
//     actually been benchmarked (the semi-supervised part: a fraction of
//     the members suffices);
//  4. classify a new matrix by the label of the cluster whose centroid
//     is nearest to it.
//
// Because the features and therefore the clusters are architecture
// invariant, porting to a new GPU only requires re-running step 3 with a
// few benchmarked matrices per cluster (Relabel), which is the paper's
// transfer-learning story.
package semisup

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/classify"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/preprocess"
)

// Algorithm selects the clustering algorithm.
type Algorithm string

// The clustering algorithms of the paper's Section 4.
const (
	AlgoKMeans    Algorithm = "kmeans"
	AlgoMeanShift Algorithm = "meanshift"
	AlgoBirch     Algorithm = "birch"
)

// Rule selects the cluster-labelling rule.
type Rule string

// The labelling rules of the paper's Section 4: majority vote, logistic
// regression and random forest.
const (
	RuleVote Rule = "vote"
	RuleLR   Rule = "lr"
	RuleRF   Rule = "rf"
)

// Config configures Train.
type Config struct {
	// Algorithm is the clustering algorithm (default AlgoKMeans).
	Algorithm Algorithm
	// Rule is the cluster-labelling rule (default RuleVote).
	Rule Rule
	// NumClusters is K for K-Means and Birch; Mean-Shift ignores it and
	// discovers its own cluster count. Default 100.
	NumClusters int
	// BenchmarkFraction in (0, 1] is the fraction of training matrices
	// whose ground-truth label is revealed to the labelling rule — the
	// paper's "benchmark only a few matrices per cluster". Default 1.
	BenchmarkFraction float64
	// Preprocess configures the feature pipeline (defaults to the
	// paper's full chain).
	Preprocess preprocess.Options
	// Seed drives clustering and the benchmark sample.
	Seed int64
}

// Model is a trained semi-supervised format selector.
type Model struct {
	cfg      Config
	pipeline preprocess.Chain
	clust    cluster.Clusterer
	// labels[c] is the format assigned to cluster c; -1 when the rule
	// had no data for the cluster (falls back to majority class).
	labels   []int
	fallback int // global majority class among revealed labels
	classes  int
	// memberCount[c] tracks training cluster sizes for explainability.
	memberCount []int
}

// Train fits the full pipeline on raw feature rows x with ground-truth
// format labels y in [0, classes).
func Train(x [][]float64, y []int, classes int, cfg Config) (*Model, error) {
	return TrainCtx(context.Background(), x, y, classes, cfg)
}

// TrainCtx is Train with a context parenting the obs spans of the three
// pipeline stages ("semisup/train" with children "preprocess",
// "cluster/<algo>" and "label/<rule>").
func TrainCtx(ctx context.Context, x [][]float64, y []int, classes int, cfg Config) (*Model, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("semisup: bad training input: %d rows, %d labels", len(x), len(y))
	}
	if classes < 2 {
		return nil, fmt.Errorf("semisup: need >= 2 classes, got %d", classes)
	}
	if cfg.Algorithm == "" {
		cfg.Algorithm = AlgoKMeans
	}
	if cfg.Rule == "" {
		cfg.Rule = RuleVote
	}
	if cfg.NumClusters <= 0 {
		cfg.NumClusters = 100
	}
	if cfg.BenchmarkFraction <= 0 || cfg.BenchmarkFraction > 1 {
		cfg.BenchmarkFraction = 1
	}
	ctx, span := obs.Start(ctx, "semisup/train")
	defer span.End()
	span.SetMetric("rows", float64(len(x)))

	_, psp := obs.Start(ctx, "preprocess")
	pipeline, err := preprocess.FitPipeline(x, cfg.Preprocess)
	if err != nil {
		psp.End()
		return nil, fmt.Errorf("semisup: fitting preprocessing: %w", err)
	}
	tx := preprocess.Apply(pipeline, x)
	psp.End()

	var cl cluster.Clusterer
	switch cfg.Algorithm {
	case AlgoKMeans:
		cl = cluster.NewKMeans(cfg.NumClusters, cfg.Seed)
	case AlgoMeanShift:
		cl = cluster.NewMeanShift(cfg.Seed)
	case AlgoBirch:
		cl = cluster.NewBirch(cfg.NumClusters, cfg.Seed)
	default:
		return nil, fmt.Errorf("semisup: unknown clustering algorithm %q", cfg.Algorithm)
	}
	_, csp := obs.Start(ctx, "cluster/"+string(cfg.Algorithm))
	if err := cl.Fit(tx); err != nil {
		csp.End()
		return nil, fmt.Errorf("semisup: clustering: %w", err)
	}
	csp.SetMetric("clusters", float64(cl.NumClusters()))
	if km, ok := cl.(*cluster.KMeans); ok {
		csp.SetMetric("iterations", float64(km.Iterations()))
	}
	csp.End()

	m := &Model{
		cfg:      cfg,
		pipeline: pipeline,
		clust:    cl,
		classes:  classes,
	}
	m.memberCount = make([]int, cl.NumClusters())
	for _, c := range cl.Labels() {
		m.memberCount[c]++
	}

	// Reveal the benchmarked subset and label the clusters.
	_, lsp := obs.Start(ctx, "label/"+string(cfg.Rule))
	revealed := m.sampleRevealed(len(x))
	if err := m.labelClusters(tx, y, cl.Labels(), revealed); err != nil {
		lsp.End()
		return nil, err
	}
	lsp.End()
	return m, nil
}

// sampleRevealed picks the benchmarked subset deterministically.
func (m *Model) sampleRevealed(n int) []bool {
	revealed := make([]bool, n)
	if m.cfg.BenchmarkFraction >= 1 {
		for i := range revealed {
			revealed[i] = true
		}
		return revealed
	}
	rng := rand.New(rand.NewSource(m.cfg.Seed + 101))
	count := int(m.cfg.BenchmarkFraction * float64(n))
	if count < 1 {
		count = 1
	}
	for _, idx := range rng.Perm(n)[:count] {
		revealed[idx] = true
	}
	return revealed
}

// labelClusters assigns a format to every cluster from the revealed
// members, applying the configured rule.
func (m *Model) labelClusters(tx [][]float64, y []int, assign []int, revealed []bool) error {
	k := m.clust.NumClusters()
	m.labels = make([]int, k)
	for c := range m.labels {
		m.labels[c] = -1
	}

	// Global fallback: majority among revealed labels.
	global := make([]int, m.classes)
	var rx [][]float64
	var ry []int
	for i, ok := range revealed {
		if !ok {
			continue
		}
		global[y[i]]++
		rx = append(rx, tx[i])
		ry = append(ry, y[i])
	}
	if len(ry) == 0 {
		return fmt.Errorf("semisup: no revealed labels to assign clusters")
	}
	m.fallback = argmax(global)

	switch m.cfg.Rule {
	case RuleVote:
		counts := make([][]int, k)
		for c := range counts {
			counts[c] = make([]int, m.classes)
		}
		for i, ok := range revealed {
			if ok {
				counts[assign[i]][y[i]]++
			}
		}
		for c := range m.labels {
			if sum(counts[c]) > 0 {
				m.labels[c] = argmax(counts[c])
			}
		}
	case RuleLR, RuleRF:
		var clf classify.Classifier
		if m.cfg.Rule == RuleLR {
			clf = classify.NewLogReg()
		} else {
			clf = classify.NewForest(m.cfg.Seed + 7)
		}
		if err := clf.Fit(rx, ry, m.classes); err != nil {
			return fmt.Errorf("semisup: fitting %s labelling rule: %w", m.cfg.Rule, err)
		}
		// Each cluster is labelled by the rule's vote over its members
		// (all members, labelled or not — the classifier generalises).
		votes := make([][]int, k)
		for c := range votes {
			votes[c] = make([]int, m.classes)
		}
		for i, p := range tx {
			votes[assign[i]][clf.Predict(p)]++
		}
		for c := range m.labels {
			if sum(votes[c]) > 0 {
				m.labels[c] = argmax(votes[c])
			}
		}
	default:
		return fmt.Errorf("semisup: unknown labelling rule %q", m.cfg.Rule)
	}
	return nil
}

func sum(v []int) int {
	s := 0
	for _, x := range v {
		s += x
	}
	return s
}

func argmax(v []int) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// NumClusters returns the number of clusters in the fitted model.
func (m *Model) NumClusters() int { return m.clust.NumClusters() }

// ClusterOf returns the cluster a raw feature vector falls into.
func (m *Model) ClusterOf(x []float64) int {
	return m.clust.Assign(m.pipeline.Transform(x))
}

// ClusterLabel returns the format label of cluster c (the fallback class
// when the cluster received no benchmarked data).
func (m *Model) ClusterLabel(c int) int {
	if l := m.labels[c]; l >= 0 {
		return l
	}
	return m.fallback
}

// ClusterSize returns the training membership count of cluster c.
func (m *Model) ClusterSize(c int) int { return m.memberCount[c] }

// Predict returns the format label for a raw feature vector: the label
// of its nearest cluster.
func (m *Model) Predict(x []float64) int {
	return m.ClusterLabel(m.ClusterOf(x))
}

// InDim returns the raw feature dimension the model was fitted on (0
// when the preprocessing chain is empty, meaning any).
func (m *Model) InDim() int { return m.pipeline.InDim() }

// Classes returns the number of format classes the model labels.
func (m *Model) Classes() int { return m.classes }

// PredictChecked is Predict with input validation: it rejects feature
// vectors whose dimension does not match the fitted pipeline instead of
// silently truncating or padding them. Serving paths that accept
// untrusted client vectors must use this entry point.
func (m *Model) PredictChecked(x []float64) (int, error) {
	tx, err := m.pipeline.TransformChecked(x)
	if err != nil {
		return 0, fmt.Errorf("semisup: %w", err)
	}
	return m.ClusterLabel(m.clust.Assign(tx)), nil
}

// PredictAll classifies every row, fanning the rows out over the shared
// obs worker pool. The fitted pipeline and clusterer are read-only
// during prediction (Transform copies its input), so row-parallelism is
// safe; the positional output keeps the result identical to a
// sequential loop.
func (m *Model) PredictAll(x [][]float64) []int {
	out := make([]int, len(x))
	obs.ParallelFor(len(x), func(i int) {
		out[i] = m.Predict(x[i])
	})
	return out
}

// Relabel re-assigns cluster labels from a new set of benchmarked
// matrices — the transfer-learning step when porting to a different
// architecture. Clusters that receive no new data keep their current
// label, so Relabel with a small sample ports the model cheaply. The
// rows must be raw (untransformed) features.
func (m *Model) Relabel(x [][]float64, y []int) error {
	if len(x) == 0 || len(x) != len(y) {
		return fmt.Errorf("semisup: bad relabel input: %d rows, %d labels", len(x), len(y))
	}
	tx := preprocess.Apply(m.pipeline, x)
	assign := make([]int, len(tx))
	for i, p := range tx {
		assign[i] = m.clust.Assign(p)
	}
	old := m.labels
	revealed := make([]bool, len(x))
	for i := range revealed {
		revealed[i] = true
	}
	if err := m.labelClusters(tx, y, assign, revealed); err != nil {
		m.labels = old
		return err
	}
	// Keep the previous label where the new data said nothing.
	for c, l := range m.labels {
		if l < 0 {
			m.labels[c] = old[c]
		}
	}
	if obs.Enabled() {
		obs.Default.Counter("semisup/relabels").Inc()
	}
	return nil
}

// Purity returns the per-cluster purity of a labelled sample (the
// paper's purity definition: the share of the cluster's dominant format)
// together with each cluster's sample count. Clusters the sample never
// touches have purity 0 and count 0.
func (m *Model) Purity(x [][]float64, y []int) (purity []float64, count []int, err error) {
	if len(x) != len(y) {
		return nil, nil, fmt.Errorf("semisup: purity input mismatch: %d rows, %d labels", len(x), len(y))
	}
	k := m.clust.NumClusters()
	hist := make([][]int, k)
	for c := range hist {
		hist[c] = make([]int, m.classes)
	}
	for i, row := range x {
		c := m.ClusterOf(row)
		if y[i] < 0 || y[i] >= m.classes {
			return nil, nil, fmt.Errorf("semisup: label %d out of range", y[i])
		}
		hist[c][y[i]]++
	}
	purity = make([]float64, k)
	count = make([]int, k)
	for c := range hist {
		n := sum(hist[c])
		count[c] = n
		if n > 0 {
			purity[c] = float64(hist[c][argmax(hist[c])]) / float64(n)
		}
	}
	return purity, count, nil
}
