package semisup

import (
	"fmt"

	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/preprocess"
)

// Online-selector drift metrics. A spawn is the drift event: a matrix
// landed farther than the spawn radius from every centroid, so the
// selector opened a cluster for a sparsity pattern it had not seen.
var (
	onlineObservations = obs.Default.Counter("semisup/online/observations")
	onlineLabels       = obs.Default.Counter("semisup/online/labels")
	onlineSpawns       = obs.Default.Counter("semisup/online/spawns")
)

// Online is the incremental counterpart of Model, implementing the
// paper's stated future work: "an online classification system ... able
// to learn from SpMV operations while they are being performed".
//
// It maintains sequential (MacQueen-style) K-Means centroids in a fixed
// preprocessed feature space together with per-cluster label histograms:
//
//   - Observe(x) assigns a matrix to its nearest centroid, nudges the
//     centroid toward it, and — when the matrix is farther than the
//     spawn radius from every centroid and capacity remains — opens a
//     new cluster for the new sparsity pattern;
//   - Record(x, label) additionally files the observed best format (for
//     example, measured opportunistically during a real SpMV run);
//   - Predict(x) returns the majority format of the nearest cluster,
//     falling back to the globally most-seen format for unlabelled
//     clusters.
//
// The preprocessing chain is fitted once on a seed sample; the paper
// notes that the statistical features are architecture-invariant and so
// is the feature space, which is what makes freezing it sound.
type Online struct {
	pipeline preprocess.Chain
	classes  int
	// SpawnRadius is the squared distance beyond which a new cluster is
	// opened rather than stretching an existing one.
	spawnRadius float64
	maxClusters int

	centroids [][]float64
	counts    []int   // observations per cluster
	hist      [][]int // label histogram per cluster
	global    []int   // global label histogram
	seen      int
}

// OnlineConfig configures NewOnline.
type OnlineConfig struct {
	// MaxClusters caps the cluster count (default 256).
	MaxClusters int
	// SpawnRadius is the Euclidean distance beyond which a new cluster
	// is spawned (default 0.15, calibrated to min-max/PCA feature
	// scales).
	SpawnRadius float64
	// Preprocess configures the frozen feature pipeline.
	Preprocess preprocess.Options
}

// NewOnline fits the frozen preprocessing on the seed sample and seeds
// the model with one cluster per distinct seed label.
func NewOnline(seed [][]float64, classes int, cfg OnlineConfig) (*Online, error) {
	if len(seed) == 0 {
		return nil, fmt.Errorf("semisup: online model needs a non-empty seed sample")
	}
	if classes < 2 {
		return nil, fmt.Errorf("semisup: need >= 2 classes, got %d", classes)
	}
	if cfg.MaxClusters <= 0 {
		cfg.MaxClusters = 256
	}
	if cfg.SpawnRadius <= 0 {
		cfg.SpawnRadius = 0.15
	}
	pipeline, err := preprocess.FitPipeline(seed, cfg.Preprocess)
	if err != nil {
		return nil, fmt.Errorf("semisup: fitting online preprocessing: %w", err)
	}
	return &Online{
		pipeline:    pipeline,
		classes:     classes,
		spawnRadius: cfg.SpawnRadius * cfg.SpawnRadius,
		maxClusters: cfg.MaxClusters,
		global:      make([]int, classes),
	}, nil
}

// nearest returns the closest centroid and squared distance (-1 when no
// clusters exist yet).
func (o *Online) nearest(p []float64) (int, float64) {
	best, bestD := -1, 0.0
	for c, cen := range o.centroids {
		d := linalg.SqDist(cen, p)
		if best < 0 || d < bestD {
			best, bestD = c, d
		}
	}
	return best, bestD
}

// Observe folds one unlabelled matrix into the clustering and returns
// its cluster index.
func (o *Online) Observe(x []float64) int {
	p := o.pipeline.Transform(x)
	o.seen++
	if obs.Enabled() {
		onlineObservations.Inc()
	}
	c, d := o.nearest(p)
	if c < 0 || (d > o.spawnRadius && len(o.centroids) < o.maxClusters) {
		if obs.Enabled() {
			onlineSpawns.Inc()
		}
		o.centroids = append(o.centroids, append([]float64(nil), p...))
		o.counts = append(o.counts, 1)
		o.hist = append(o.hist, make([]int, o.classes))
		return len(o.centroids) - 1
	}
	// MacQueen update: the centroid is the running mean of its members.
	o.counts[c]++
	eta := 1 / float64(o.counts[c])
	for j := range o.centroids[c] {
		o.centroids[c][j] += eta * (p[j] - o.centroids[c][j])
	}
	return c
}

// Record folds one labelled observation (a matrix whose best format was
// measured) into the model and returns its cluster.
func (o *Online) Record(x []float64, label int) (int, error) {
	if label < 0 || label >= o.classes {
		return 0, fmt.Errorf("semisup: online label %d outside [0, %d)", label, o.classes)
	}
	c := o.Observe(x)
	o.hist[c][label]++
	o.global[label]++
	if obs.Enabled() {
		onlineLabels.Inc()
	}
	return c, nil
}

// Predict returns the majority format of the nearest cluster, falling
// back to the global majority when the cluster has no labels yet, and 0
// before any label has been recorded.
func (o *Online) Predict(x []float64) int {
	if len(o.centroids) == 0 {
		return argmax(o.global)
	}
	c, _ := o.nearest(o.pipeline.Transform(x))
	if sum(o.hist[c]) > 0 {
		return argmax(o.hist[c])
	}
	return argmax(o.global)
}

// NumClusters returns the current cluster count.
func (o *Online) NumClusters() int { return len(o.centroids) }

// Seen returns how many matrices have been observed.
func (o *Online) Seen() int { return o.seen }

// LabelledFraction returns the share of observations that carried labels.
func (o *Online) LabelledFraction() float64 {
	if o.seen == 0 {
		return 0
	}
	return float64(sum(o.global)) / float64(o.seen)
}
