package semisup

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/preprocess"
)

// clusteredTask builds raw features whose ground-truth format is a
// deterministic function of which blob a point belongs to, so a
// cluster-then-label model can score highly.
func clusteredTask(rng *rand.Rand, n, blobCount, classes int) (x [][]float64, y []int) {
	centres := make([][]float64, blobCount)
	for b := range centres {
		centres[b] = []float64{
			float64(b%4) * 20, float64(b/4) * 20, rng.Float64(),
		}
	}
	for i := 0; i < n; i++ {
		b := rng.Intn(blobCount)
		p := make([]float64, 3)
		for j := range p {
			p[j] = centres[b][j] + rng.NormFloat64()*0.5
		}
		x = append(x, p)
		y = append(y, b%classes)
	}
	return x, y
}

func accuracy(pred, want []int) float64 {
	hit := 0
	for i := range pred {
		if pred[i] == want[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(pred))
}

func TestTrainPredictAllAlgorithmsAndRules(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := clusteredTask(rng, 500, 8, 4)
	cut := 350
	var msAcc, kmAcc float64
	for _, algo := range []Algorithm{AlgoKMeans, AlgoBirch, AlgoMeanShift} {
		for _, rule := range []Rule{RuleVote, RuleLR, RuleRF} {
			cfg := Config{
				Algorithm: algo, Rule: rule, NumClusters: 16, Seed: 3,
				Preprocess: preprocess.Options{SkipPCA: true},
			}
			m, err := Train(x[:cut], y[:cut], 4, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", algo, rule, err)
			}
			pred := m.PredictAll(x[cut:])
			for _, p := range pred {
				if p < 0 || p >= 4 {
					t.Fatalf("%s/%s: out-of-range prediction %d", algo, rule, p)
				}
			}
			acc := accuracy(pred, y[cut:])
			// Mean-Shift's automatic bandwidth controls its granularity,
			// so it gets a lower bar than the K-driven algorithms; the
			// Table 4 comparison (Mean-Shift trailing on the real corpus)
			// is asserted in the eval package.
			bar := 0.9
			if algo == AlgoMeanShift {
				bar = 0.5
			}
			if acc < bar {
				t.Errorf("%s/%s: accuracy %.3f on blob task", algo, rule, acc)
			}
			if algo == AlgoMeanShift && rule == RuleVote {
				msAcc = acc
			}
			if algo == AlgoKMeans && rule == RuleVote {
				kmAcc = acc
			}
		}
	}
	if msAcc == 0 || kmAcc == 0 {
		t.Error("expected both Mean-Shift and K-Means accuracies to be recorded")
	}
}

func TestTrainValidation(t *testing.T) {
	x := [][]float64{{1, 2}, {3, 4}}
	y := []int{0, 1}
	if _, err := Train(nil, nil, 2, Config{}); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Train(x, []int{0}, 2, Config{}); err == nil {
		t.Error("mismatched labels accepted")
	}
	if _, err := Train(x, y, 1, Config{}); err == nil {
		t.Error("single class accepted")
	}
	if _, err := Train(x, y, 2, Config{Algorithm: "dbscan"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := Train(x, y, 2, Config{Rule: "oracle"}); err == nil {
		t.Error("unknown rule accepted")
	}
}

func TestBenchmarkFractionStillWorks(t *testing.T) {
	// The semi-supervised promise: revealing only 20% of the labels
	// barely hurts on well-clustered data.
	rng := rand.New(rand.NewSource(2))
	x, y := clusteredTask(rng, 600, 8, 4)
	cut := 450
	cfg := Config{
		NumClusters: 16, Seed: 5, BenchmarkFraction: 0.2,
		Preprocess: preprocess.Options{SkipPCA: true},
	}
	m, err := Train(x[:cut], y[:cut], 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(m.PredictAll(x[cut:]), y[cut:]); acc < 0.85 {
		t.Errorf("accuracy %.3f with 20%% benchmarking", acc)
	}
}

func TestClusterIntrospection(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := clusteredTask(rng, 300, 4, 2)
	m, err := Train(x, y, 2, Config{NumClusters: 8, Seed: 1,
		Preprocess: preprocess.Options{SkipPCA: true}})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumClusters() < 2 {
		t.Fatalf("NumClusters = %d", m.NumClusters())
	}
	total := 0
	for c := 0; c < m.NumClusters(); c++ {
		total += m.ClusterSize(c)
		if l := m.ClusterLabel(c); l < 0 || l >= 2 {
			t.Errorf("cluster %d label %d out of range", c, l)
		}
	}
	if total != 300 {
		t.Errorf("cluster sizes sum to %d, want 300", total)
	}
	// Predict must equal the label of the assigned cluster.
	for i := 0; i < 20; i++ {
		p := x[rng.Intn(len(x))]
		if m.Predict(p) != m.ClusterLabel(m.ClusterOf(p)) {
			t.Fatal("Predict disagrees with ClusterLabel(ClusterOf)")
		}
	}
}

func TestPurity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := clusteredTask(rng, 400, 4, 4) // blob b -> class b: pure clusters
	m, err := Train(x, y, 4, Config{NumClusters: 4, Seed: 2,
		Preprocess: preprocess.Options{SkipPCA: true}})
	if err != nil {
		t.Fatal(err)
	}
	purity, count, err := m.Purity(x, y)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for c := range purity {
		n += count[c]
		if count[c] > 0 && purity[c] < 0.9 {
			t.Errorf("cluster %d purity %.3f on perfectly separable data", c, purity[c])
		}
	}
	if n != 400 {
		t.Errorf("purity counts sum to %d", n)
	}
	if _, _, err := m.Purity(x[:3], y[:2]); err == nil {
		t.Error("mismatched purity input accepted")
	}
	if _, _, err := m.Purity([][]float64{x[0]}, []int{9}); err == nil {
		t.Error("out-of-range purity label accepted")
	}
}

func TestRelabelTransfersToFlippedLabels(t *testing.T) {
	// Train on "architecture A", then port to "architecture B" whose
	// optimal formats are a permutation of A's. After Relabel with B
	// data, predictions must match B's ground truth.
	rng := rand.New(rand.NewSource(5))
	x, yA := clusteredTask(rng, 500, 8, 4)
	yB := make([]int, len(yA))
	for i, l := range yA {
		yB[i] = (l + 1) % 4 // B prefers a different format everywhere
	}
	cut := 350
	m, err := Train(x[:cut], yA[:cut], 4, Config{NumClusters: 16, Seed: 6,
		Preprocess: preprocess.Options{SkipPCA: true}})
	if err != nil {
		t.Fatal(err)
	}
	accA := accuracy(m.PredictAll(x[cut:]), yB[cut:])
	// Relabel with only a quarter of B's training data.
	quarter := cut / 4
	if err := m.Relabel(x[:quarter], yB[:quarter]); err != nil {
		t.Fatal(err)
	}
	accB := accuracy(m.PredictAll(x[cut:]), yB[cut:])
	if accB < 0.8 {
		t.Errorf("post-relabel accuracy %.3f", accB)
	}
	if accB <= accA {
		t.Errorf("relabelling did not help: %.3f -> %.3f", accA, accB)
	}
	if err := m.Relabel(nil, nil); err == nil {
		t.Error("empty relabel accepted")
	}
}

func TestFallbackLabelForEmptyClusters(t *testing.T) {
	// With BenchmarkFraction tiny, most clusters get no revealed member
	// and must fall back to the global majority rather than panicking.
	rng := rand.New(rand.NewSource(7))
	x, y := clusteredTask(rng, 300, 8, 4)
	m, err := Train(x, y, 4, Config{NumClusters: 64, Seed: 3, BenchmarkFraction: 0.02,
		Preprocess: preprocess.Options{SkipPCA: true}})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < m.NumClusters(); c++ {
		if l := m.ClusterLabel(c); l < 0 || l >= 4 {
			t.Fatalf("cluster %d fallback label %d invalid", c, l)
		}
	}
}

func TestPaperPipelineEndToEnd(t *testing.T) {
	// Full paper preprocessing (skew + min-max + PCA) over 21-feature
	// vectors with power-law columns must still train and predict.
	rng := rand.New(rand.NewSource(8))
	n := 400
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		r := make([]float64, 21)
		base := math.Pow(10, float64(rng.Intn(4)))
		for j := range r {
			r[j] = base * (1 + rng.Float64()) * float64(j+1)
		}
		x[i] = r
		// Scale determines the preferred format, with 10% label noise —
		// the shape of the real format-selection signal.
		y[i] = 0
		if base > 100 {
			y[i] = 1
		}
		if rng.Float64() < 0.1 {
			y[i] = 1 - y[i]
		}
	}
	m, err := Train(x, y, 2, Config{NumClusters: 20, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(m.PredictAll(x), y); acc < 0.8 {
		t.Errorf("in-sample accuracy %.3f", acc)
	}
}
