package semisup

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/preprocess"
)

// maintCount records one cluster-maintenance action ("relabel", "merge",
// "split") under semisup/maintain/<op>.
func maintCount(op string) {
	if obs.Enabled() {
		obs.Default.Counter("semisup/maintain/" + op).Inc()
	}
}

// Cluster maintenance: the paper argues that a clustering-based model is
// cheap to keep current because "it is more efficient to merge and split
// clusters or change their optimal format when new sparse matrices are
// added to the dataset, especially compared to retraining large DL
// models". These methods implement exactly those operations on a fitted
// (or loaded) model without touching the rest of the clustering.

// freeze replaces the model's clusterer with a mutable centroid list,
// preserving assignment behaviour; maintenance operations edit it in
// place.
func (m *Model) freeze() *cluster.Frozen {
	if f, ok := m.clust.(*cluster.Frozen); ok {
		return f
	}
	f := cluster.NewFrozen(m.clust)
	m.clust = f
	return f
}

// SetClusterLabel overrides one cluster's format label — the cheapest
// maintenance action: new benchmarks showed the cluster prefers a
// different format.
func (m *Model) SetClusterLabel(c, label int) error {
	if c < 0 || c >= m.clust.NumClusters() {
		return fmt.Errorf("semisup: cluster %d out of range", c)
	}
	if label < 0 || label >= m.classes {
		return fmt.Errorf("semisup: label %d outside [0, %d)", label, m.classes)
	}
	m.labels[c] = label
	maintCount("relabel")
	return nil
}

// MergeClusters merges cluster b into cluster a: the centroid becomes
// the membership-weighted mean, the label stays a's when the sizes tie
// and otherwise follows the larger cluster. Cluster b's slot is filled
// by the last cluster, whose index therefore changes to b; the method
// returns nothing else, so callers holding cluster ids should re-derive
// them with ClusterOf.
func (m *Model) MergeClusters(a, b int) error {
	k := m.clust.NumClusters()
	if a < 0 || a >= k || b < 0 || b >= k || a == b {
		return fmt.Errorf("semisup: cannot merge clusters %d and %d of %d", a, b, k)
	}
	f := m.freeze()
	wa, wb := float64(m.memberCount[a]), float64(m.memberCount[b])
	if wa+wb == 0 {
		wa, wb = 1, 1
	}
	ca, cb := f.Centroids[a], f.Centroids[b]
	merged := make([]float64, len(ca))
	for j := range merged {
		merged[j] = (wa*ca[j] + wb*cb[j]) / (wa + wb)
	}
	f.Centroids[a] = merged
	if m.memberCount[b] > m.memberCount[a] {
		m.labels[a] = m.labels[b]
	}
	m.memberCount[a] += m.memberCount[b]

	// Remove slot b by moving the last cluster into it.
	last := k - 1
	f.Centroids[b] = f.Centroids[last]
	m.labels[b] = m.labels[last]
	m.memberCount[b] = m.memberCount[last]
	f.Centroids = f.Centroids[:last]
	m.labels = m.labels[:last]
	m.memberCount = m.memberCount[:last]
	maintCount("merge")
	return nil
}

// SplitCluster splits cluster c in two using a labelled sample of raw
// feature vectors: the sample members falling into c are 2-means
// re-clustered, c's centroid is replaced by one half and a new cluster
// is appended for the other, and both halves are re-voted from the
// sample labels (keeping c's old label where a half has no labelled
// members). It returns the new cluster's index.
//
// This is the impure-cluster repair the paper's example motivates: a
// cluster whose members split 80/20 between two formats caps accuracy at
// its purity; splitting it lifts the cap.
func (m *Model) SplitCluster(c int, x [][]float64, y []int) (int, error) {
	k := m.clust.NumClusters()
	if c < 0 || c >= k {
		return 0, fmt.Errorf("semisup: cluster %d out of range", c)
	}
	if len(x) == 0 || len(x) != len(y) {
		return 0, fmt.Errorf("semisup: bad split sample: %d rows, %d labels", len(x), len(y))
	}
	tx := preprocess.Apply(m.pipeline, x)
	var members [][]float64
	var memberY []int
	for i, p := range tx {
		if m.clust.Assign(p) == c {
			if y[i] < 0 || y[i] >= m.classes {
				return 0, fmt.Errorf("semisup: split label %d outside [0, %d)", y[i], m.classes)
			}
			members = append(members, p)
			memberY = append(memberY, y[i])
		}
	}
	if len(members) < 2 {
		return 0, fmt.Errorf("semisup: cluster %d has %d sampled members; need >= 2 to split", c, len(members))
	}
	km := cluster.NewKMeans(2, m.cfg.Seed+int64(c))
	if err := km.Fit(members); err != nil {
		return 0, fmt.Errorf("semisup: splitting cluster %d: %w", c, err)
	}
	if km.NumClusters() < 2 {
		return 0, fmt.Errorf("semisup: cluster %d members are identical; nothing to split", c)
	}

	f := m.freeze()
	oldLabel := m.labels[c]
	oldCount := m.memberCount[c]

	// Vote each half from the sample.
	votes := [2][]int{make([]int, m.classes), make([]int, m.classes)}
	halves := [2]int{}
	for i, p := range members {
		h := km.Assign(p)
		votes[h][memberY[i]]++
		halves[h]++
	}
	label := func(h int) int {
		if sum(votes[h]) == 0 {
			return oldLabel
		}
		return argmax(votes[h])
	}

	f.Centroids[c] = append([]float64(nil), km.Centroid(0)...)
	m.labels[c] = label(0)
	f.Centroids = append(f.Centroids, append([]float64(nil), km.Centroid(1)...))
	m.labels = append(m.labels, label(1))
	// Apportion the recorded membership by the sample proportions.
	c0 := oldCount * halves[0] / (halves[0] + halves[1])
	m.memberCount[c] = c0
	m.memberCount = append(m.memberCount, oldCount-c0)
	maintCount("split")
	return len(f.Centroids) - 1, nil
}
