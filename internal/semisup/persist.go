package semisup

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/preprocess"
)

// modelGob is the wire form of a Model: the fitted preprocessing chain,
// the cluster centroids (all clustering algorithms here predict by
// nearest centroid, so centroids suffice), and the cluster labels. A
// loaded model predicts and relabels (ports) exactly like the original;
// only retraining from scratch requires the original data.
type modelGob struct {
	Cfg         Config
	Pipeline    preprocess.Chain
	Centroids   [][]float64
	Labels      []int
	Fallback    int
	Classes     int
	MemberCount []int
}

func init() {
	// The pipeline is a slice of Transformer interfaces; gob needs the
	// concrete types registered.
	gob.Register(&preprocess.SkewTransform{})
	gob.Register(&preprocess.MinMaxScaler{})
	gob.Register(&preprocess.PCA{})
}

// Save serialises the model with encoding/gob.
func (m *Model) Save(w io.Writer) error {
	frozen := cluster.NewFrozen(m.clust)
	payload := modelGob{
		Cfg:         m.cfg,
		Pipeline:    m.pipeline,
		Centroids:   frozen.Centroids,
		Labels:      m.labels,
		Fallback:    m.fallback,
		Classes:     m.classes,
		MemberCount: m.memberCount,
	}
	if err := gob.NewEncoder(w).Encode(payload); err != nil {
		return fmt.Errorf("semisup: encoding model: %w", err)
	}
	return nil
}

// GobEncode lets a *Model be embedded directly in a larger gob payload
// (the serve package's model artifact); it delegates to Save.
func (m *Model) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode is the inverse of GobEncode, delegating to Load.
func (m *Model) GobDecode(data []byte) error {
	loaded, err := Load(bytes.NewReader(data))
	if err != nil {
		return err
	}
	*m = *loaded
	return nil
}

// Load deserialises a model written by Save. The result predicts,
// explains and relabels like the original.
func Load(r io.Reader) (*Model, error) {
	var payload modelGob
	if err := gob.NewDecoder(r).Decode(&payload); err != nil {
		return nil, fmt.Errorf("semisup: decoding model: %w", err)
	}
	if len(payload.Centroids) == 0 {
		return nil, fmt.Errorf("semisup: decoded model has no clusters")
	}
	if len(payload.Labels) != len(payload.Centroids) ||
		len(payload.MemberCount) != len(payload.Centroids) {
		return nil, fmt.Errorf("semisup: decoded model is inconsistent: %d clusters, %d labels, %d sizes",
			len(payload.Centroids), len(payload.Labels), len(payload.MemberCount))
	}
	if payload.Classes < 2 {
		return nil, fmt.Errorf("semisup: decoded model has %d classes", payload.Classes)
	}
	return &Model{
		cfg:         payload.Cfg,
		pipeline:    payload.Pipeline,
		clust:       &cluster.Frozen{Centroids: payload.Centroids},
		labels:      payload.Labels,
		fallback:    payload.Fallback,
		classes:     payload.Classes,
		memberCount: payload.MemberCount,
	}, nil
}
