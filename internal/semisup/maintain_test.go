package semisup

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/preprocess"
)

// bimodalCluster builds data where one K-Means cluster is forced to hold
// two sub-populations with different labels: two tight blobs close
// together (relative to the other blobs) labelled differently.
func bimodalTask(rng *rand.Rand) (x [][]float64, y []int) {
	add := func(cx, cy float64, n, label int) {
		for i := 0; i < n; i++ {
			x = append(x, []float64{cx + rng.NormFloat64()*0.2, cy + rng.NormFloat64()*0.2})
			y = append(y, label)
		}
	}
	add(0, 0, 80, 0)  // far blob, class 0
	add(50, 0, 60, 1) // the bimodal pair: two nearby sub-blobs...
	add(53, 3, 40, 2) // ...with different optimal formats
	return x, y
}

func TestSetClusterLabel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := clusteredTask(rng, 200, 4, 4)
	m, err := Train(x, y, 4, Config{NumClusters: 4, Seed: 1,
		Preprocess: preprocess.Options{SkipPCA: true}})
	if err != nil {
		t.Fatal(err)
	}
	c := m.ClusterOf(x[0])
	want := (m.ClusterLabel(c) + 1) % 4
	if err := m.SetClusterLabel(c, want); err != nil {
		t.Fatal(err)
	}
	if m.Predict(x[0]) != want {
		t.Error("label override did not take effect")
	}
	if err := m.SetClusterLabel(-1, 0); err == nil {
		t.Error("negative cluster accepted")
	}
	if err := m.SetClusterLabel(c, 9); err == nil {
		t.Error("out-of-range label accepted")
	}
}

func TestMergeClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := clusteredTask(rng, 300, 6, 3)
	m, err := Train(x, y, 3, Config{NumClusters: 12, Seed: 2,
		Preprocess: preprocess.Options{SkipPCA: true}})
	if err != nil {
		t.Fatal(err)
	}
	before := m.NumClusters()
	// Merge the clusters of two specific points.
	a := m.ClusterOf(x[0])
	b := (a + 1) % before
	sizeA, sizeB := m.ClusterSize(a), m.ClusterSize(b)
	if err := m.MergeClusters(a, b); err != nil {
		t.Fatal(err)
	}
	if m.NumClusters() != before-1 {
		t.Fatalf("clusters %d, want %d", m.NumClusters(), before-1)
	}
	if m.ClusterSize(a) != sizeA+sizeB {
		t.Errorf("merged size %d, want %d", m.ClusterSize(a), sizeA+sizeB)
	}
	// Model still predicts in range everywhere.
	for i := range x {
		if p := m.Predict(x[i]); p < 0 || p >= 3 {
			t.Fatalf("prediction %d out of range after merge", p)
		}
	}
	if err := m.MergeClusters(0, 0); err == nil {
		t.Error("self-merge accepted")
	}
	if err := m.MergeClusters(0, 99); err == nil {
		t.Error("out-of-range merge accepted")
	}
}

func TestSplitClusterImprovesImpureCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := bimodalTask(rng)
	// K=2: the two nearby sub-blobs land in one impure cluster.
	m, err := Train(x, y, 3, Config{NumClusters: 2, Seed: 3,
		Preprocess: preprocess.Options{SkipPCA: true}})
	if err != nil {
		t.Fatal(err)
	}
	impure := m.ClusterOf(x[100]) // a point from the bimodal pair
	purity, _, err := m.Purity(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if purity[impure] > 0.95 {
		t.Skipf("cluster unexpectedly pure (%.2f); geometry changed", purity[impure])
	}
	accBefore := accuracy(m.PredictAll(x), y)

	newC, err := m.SplitCluster(impure, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if newC != m.NumClusters()-1 {
		t.Errorf("new cluster id %d, want %d", newC, m.NumClusters()-1)
	}
	accAfter := accuracy(m.PredictAll(x), y)
	if accAfter <= accBefore {
		t.Errorf("split did not improve accuracy: %.3f -> %.3f", accBefore, accAfter)
	}
	// The two halves should now carry the two sub-population labels.
	l1 := m.ClusterLabel(impure)
	l2 := m.ClusterLabel(newC)
	if l1 == l2 {
		t.Errorf("split halves share label %d; expected the sub-populations to separate", l1)
	}
}

func TestSplitClusterValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := clusteredTask(rng, 100, 4, 2)
	m, err := Train(x, y, 2, Config{NumClusters: 4, Seed: 4,
		Preprocess: preprocess.Options{SkipPCA: true}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.SplitCluster(-1, x, y); err == nil {
		t.Error("negative cluster accepted")
	}
	if _, err := m.SplitCluster(0, nil, nil); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := m.SplitCluster(0, x[:2], []int{0, 9}); err == nil {
		t.Error("out-of-range split label accepted")
	}
}

func TestMaintenanceWorksOnLoadedModel(t *testing.T) {
	// The maintenance operations must work after Save/Load (the frozen
	// clusterer path).
	rng := rand.New(rand.NewSource(5))
	x, y := clusteredTask(rng, 200, 4, 2)
	m, err := Train(x, y, 2, Config{NumClusters: 6, Seed: 5,
		Preprocess: preprocess.Options{SkipPCA: true}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.MergeClusters(0, 1); err != nil {
		t.Fatalf("merge on loaded model: %v", err)
	}
	if loaded.NumClusters() != 5 {
		t.Errorf("clusters %d after merge", loaded.NumClusters())
	}
}
