package semisup

import (
	"math"
	"testing"
	"testing/quick"
)

// TestPaperSection4Example reproduces the worked example in the paper's
// Section 4 verbatim: a 10-matrix cluster where 9 prefer ELL on Turing
// (purity 0.9) and 8 prefer CSR on Pascal (purity 0.8).
func TestPaperSection4Example(t *testing.T) {
	// Turing: one benchmarked matrix votes ELL with 90% likelihood;
	// expected accuracy 0.9*0.9 + 0.1*0.1 = 0.82.
	acc, err := ExpectedVoteAccuracy(0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc-0.82) > 1e-12 {
		t.Errorf("Turing example: accuracy %v, want 0.82", acc)
	}
	// Pascal: purity 0.8, one sample -> 0.8*0.8 + 0.2*0.2 = 0.68.
	acc, err = ExpectedVoteAccuracy(0.8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc-0.68) > 1e-12 {
		t.Errorf("Pascal 1-sample example: accuracy %v, want 0.68", acc)
	}
	// Pascal with two benchmarked matrices: the paper says the correct
	// label is picked with probability 0.96 and accuracy rises to ~0.78.
	// (0.96 = p^2 + 2p(1-p)*[tie splits toward the majority]: the paper
	// counts a 1-1 tie as resolved correctly, i.e. 0.64 + 0.32 = 0.96.)
	q, err := VoteLabelProbability(0.8, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Our tie rule splits 50/50, giving 0.64 + 0.16 = 0.80; the paper's
	// optimistic tie handling gives 0.96. Check both the conservative
	// value and the paper's with an explicit tie-in-favour adjustment.
	if math.Abs(q-0.80) > 1e-12 {
		t.Errorf("two-sample label probability %v, want 0.80 under 50/50 ties", q)
	}
	paperQ := 0.8*0.8 + 2*0.8*0.2 // ties resolved toward the dominant format
	if math.Abs(paperQ-0.96) > 1e-12 {
		t.Errorf("paper tie rule gives %v, want 0.96", paperQ)
	}
	paperAcc := paperQ*0.8 + (1-paperQ)*0.2
	if math.Abs(paperAcc-0.776) > 1e-12 {
		t.Errorf("paper example accuracy %v, want 0.776 (the paper rounds to 0.78)", paperAcc)
	}
}

func TestVoteAccuracyBoundsAndMonotonicity(t *testing.T) {
	// More samples never hurt (for purity > 0.5), and accuracy is capped
	// by purity.
	for _, p := range []float64{0.6, 0.75, 0.9, 0.99} {
		prev := 0.0
		for k := 1; k <= 9; k += 2 { // odd k avoids tie plateaus
			acc, err := ExpectedVoteAccuracy(p, k)
			if err != nil {
				t.Fatal(err)
			}
			if acc > p+1e-12 {
				t.Errorf("p=%v k=%d: accuracy %v exceeds the purity bound", p, k, acc)
			}
			if acc < prev-1e-12 {
				t.Errorf("p=%v k=%d: accuracy %v decreased from %v", p, k, acc, prev)
			}
			prev = acc
		}
		// With many samples the label is essentially certain.
		acc, err := ExpectedVoteAccuracy(p, 99)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(acc-p) > 5e-3 {
			t.Errorf("p=%v k=99: accuracy %v should approach purity", p, acc)
		}
	}
}

func TestVoteAccuracyValidation(t *testing.T) {
	if _, err := ExpectedVoteAccuracy(-0.1, 1); err == nil {
		t.Error("negative purity accepted")
	}
	if _, err := ExpectedVoteAccuracy(1.1, 1); err == nil {
		t.Error("purity > 1 accepted")
	}
	if _, err := ExpectedVoteAccuracy(0.5, 0); err == nil {
		t.Error("zero samples accepted")
	}
}

// TestQuickVoteProbabilityIsProbability property-tests the binomial
// machinery: outputs stay in [0, 1] and pure clusters always label
// correctly.
func TestQuickVoteProbabilityIsProbability(t *testing.T) {
	f := func(p float64, k uint8) bool {
		purity := math.Abs(p)
		purity -= math.Floor(purity) // wrap into [0, 1)
		n := int(k%20) + 1
		q, err := VoteLabelProbability(purity, n)
		if err != nil {
			return false
		}
		if q < 0 || q > 1 || math.IsNaN(q) {
			return false
		}
		one, err := VoteLabelProbability(1, n)
		if err != nil || one != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
