package semisup

import (
	"math/rand"
	"testing"

	"repro/internal/preprocess"
)

func TestOnlineLearnsStreaming(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := clusteredTask(rng, 800, 8, 4)
	// Seed the pipeline on the first slice only.
	o, err := NewOnline(x[:100], 4, OnlineConfig{
		Preprocess: preprocess.Options{SkipPCA: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Stream: label every third observation.
	for i := 0; i < 600; i++ {
		if i%3 == 0 {
			if _, err := o.Record(x[i], y[i]); err != nil {
				t.Fatal(err)
			}
		} else {
			o.Observe(x[i])
		}
	}
	if o.Seen() != 600 {
		t.Errorf("Seen = %d", o.Seen())
	}
	if f := o.LabelledFraction(); f < 0.3 || f > 0.37 {
		t.Errorf("LabelledFraction = %v", f)
	}
	if o.NumClusters() < 4 {
		t.Errorf("only %d clusters after streaming 8 blobs", o.NumClusters())
	}
	hit := 0
	for i := 600; i < 800; i++ {
		if o.Predict(x[i]) == y[i] {
			hit++
		}
	}
	if acc := float64(hit) / 200; acc < 0.85 {
		t.Errorf("online accuracy %.3f", acc)
	}
}

func TestOnlineValidation(t *testing.T) {
	if _, err := NewOnline(nil, 4, OnlineConfig{}); err == nil {
		t.Error("empty seed accepted")
	}
	if _, err := NewOnline([][]float64{{1, 2}}, 1, OnlineConfig{}); err == nil {
		t.Error("single class accepted")
	}
	o, err := NewOnline([][]float64{{1, 2}, {3, 4}}, 3, OnlineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Record([]float64{1, 2}, 7); err == nil {
		t.Error("out-of-range label accepted")
	}
}

func TestOnlineClusterCap(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	seed := make([][]float64, 20)
	for i := range seed {
		seed[i] = []float64{rng.Float64() * 100, rng.Float64() * 100}
	}
	o, err := NewOnline(seed, 2, OnlineConfig{MaxClusters: 5,
		Preprocess: preprocess.Options{SkipPCA: true}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		o.Observe([]float64{rng.Float64() * 100, rng.Float64() * 100})
	}
	if o.NumClusters() > 5 {
		t.Errorf("cluster cap violated: %d", o.NumClusters())
	}
}

func TestOnlinePredictBeforeAnyLabel(t *testing.T) {
	o, err := NewOnline([][]float64{{0, 0}, {1, 1}}, 4, OnlineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Must not panic and must return an in-range class.
	if p := o.Predict([]float64{0.5, 0.5}); p < 0 || p >= 4 {
		t.Errorf("prediction %d out of range", p)
	}
	o.Observe([]float64{0.2, 0.2})
	if p := o.Predict([]float64{0.5, 0.5}); p < 0 || p >= 4 {
		t.Errorf("prediction %d out of range after observe", p)
	}
}

func TestOnlineAdaptsToDrift(t *testing.T) {
	// A new sparsity-pattern regime appears mid-stream; the model must
	// open clusters for it and learn its (different) format.
	rng := rand.New(rand.NewSource(3))
	seed := make([][]float64, 50)
	for i := range seed {
		seed[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	// Widen the seed range so the later regime is not clamped away by
	// min-max scaling.
	seed = append(seed, []float64{60, 60}, []float64{-10, -10})
	o, err := NewOnline(seed, 2, OnlineConfig{
		Preprocess: preprocess.Options{SkipPCA: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := o.Record([]float64{rng.NormFloat64(), rng.NormFloat64()}, 0); err != nil {
			t.Fatal(err)
		}
	}
	// New regime far away, labelled class 1.
	for i := 0; i < 100; i++ {
		if _, err := o.Record([]float64{50 + rng.NormFloat64(), 50 + rng.NormFloat64()}, 1); err != nil {
			t.Fatal(err)
		}
	}
	if o.Predict([]float64{50, 50}) != 1 {
		t.Error("model did not learn the new regime")
	}
	if o.Predict([]float64{0, 0}) != 0 {
		t.Error("model forgot the old regime")
	}
}
