package features

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"repro/internal/sparse"
)

// diag5 builds a 5x5 diagonal matrix with an extra dense first row used
// by several hand-computed checks below.
func skewed(t *testing.T) *sparse.CSR {
	t.Helper()
	tr := sparse.NewTriplet(5, 5)
	add := func(i, j int, v float64) {
		t.Helper()
		if err := tr.Add(i, j, v); err != nil {
			t.Fatal(err)
		}
	}
	// Row 0 has 5 entries, rows 1-4 have 1 (the diagonal).
	for j := 0; j < 5; j++ {
		add(0, j, 1)
	}
	for i := 1; i < 5; i++ {
		add(i, i, 2)
	}
	return tr.ToCSR()
}

func TestExtractHandComputed(t *testing.T) {
	m := skewed(t)
	f := Extract(m)

	if f[NRows] != 5 || f[NCols] != 5 {
		t.Errorf("dims: %v x %v", f[NRows], f[NCols])
	}
	if f[NNZ] != 9 {
		t.Errorf("nnz = %v, want 9", f[NNZ])
	}
	if math.Abs(f[NNZFrac]-9.0/25) > 1e-15 {
		t.Errorf("nnz_frac = %v", f[NNZFrac])
	}
	if math.Abs(f[NNZMu]-1.8) > 1e-15 {
		t.Errorf("nnz_mu = %v, want 1.8", f[NNZMu])
	}
	if f[NNZMin] != 1 || f[NNZMax] != 5 {
		t.Errorf("min/max = %v/%v, want 1/5", f[NNZMin], f[NNZMax])
	}
	// sigma = sqrt(((5-1.8)^2 + 4*(1-1.8)^2)/5) = sqrt((10.24+2.56)/5)
	if math.Abs(f[NNZSig]-math.Sqrt(12.8/5)) > 1e-12 {
		t.Errorf("nnz_sig = %v", f[NNZSig])
	}
	if math.Abs(f[MaxMu]-3.2) > 1e-12 || math.Abs(f[MuMin]-0.8) > 1e-12 {
		t.Errorf("max_mu/mu_min = %v/%v", f[MaxMu], f[MuMin])
	}
	// 5 rows all fall in one warp; the warp's longest row has 5 entries.
	if f[CSRMax] != 5 {
		t.Errorf("csr_max = %v, want 5", f[CSRMax])
	}
	// sig_lower: rows below the mean are the 4 diagonal rows, each d=-0.8.
	if math.Abs(f[SigLower]-0.8) > 1e-12 {
		t.Errorf("sig_lower = %v, want 0.8", f[SigLower])
	}
	// sig_higher: only row 0 is above, d=3.2.
	if math.Abs(f[SigHigher]-3.2) > 1e-12 {
		t.Errorf("sig_higher = %v, want 3.2", f[SigHigher])
	}
	// ELL: width 5, slab 25, frac 9/25.
	if f[EllSize] != 25 || math.Abs(f[EllFrac]-9.0/25) > 1e-15 {
		t.Errorf("ell_size/frac = %v/%v", f[EllSize], f[EllFrac])
	}
	// HYB: widths with >=1 entries: all 5 rows, >=2: 1 row (<5/3). So w=1.
	// ELL part stores 5 entries, COO tail 4.
	if f[HybEllSize] != 5 || f[HybCoo] != 4 || math.Abs(f[HybEllFrac]-1) > 1e-15 {
		t.Errorf("hyb = size %v coo %v frac %v", f[HybEllSize], f[HybCoo], f[HybEllFrac])
	}
	// Diagonals: main diagonal plus offsets 1..4 from row 0: 5 total.
	if f[Diagonals] != 5 {
		t.Errorf("diagonals = %v, want 5", f[Diagonals])
	}
	if f[DiaSize] != 25 || math.Abs(f[DiaFrac]-9.0/25) > 1e-15 {
		t.Errorf("dia = size %v frac %v", f[DiaSize], f[DiaFrac])
	}
}

func TestUniformRowsDegenerateStats(t *testing.T) {
	// Every row has exactly 3 entries: sigma and one-sided RMS are zero,
	// ELL has no padding.
	tr := sparse.NewTriplet(40, 40)
	for i := 0; i < 40; i++ {
		for d := 0; d < 3; d++ {
			if err := tr.Add(i, (i+d*7)%40, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	f := Extract(tr.ToCSR())
	if f[NNZSig] != 0 || f[SigLower] != 0 || f[SigHigher] != 0 {
		t.Errorf("uniform rows: sig=%v lower=%v higher=%v, want zeros",
			f[NNZSig], f[SigLower], f[SigHigher])
	}
	if f[EllFrac] != 1 {
		t.Errorf("uniform rows: ell_frac = %v, want 1", f[EllFrac])
	}
	if f[CSRMax] != 3 {
		t.Errorf("csr_max = %v, want 3", f[CSRMax])
	}
	if f[HybCoo] != 0 {
		t.Errorf("hyb_coo = %v, want 0", f[HybCoo])
	}
}

func TestEmptyRowsAllowed(t *testing.T) {
	tr := sparse.NewTriplet(4, 4)
	if err := tr.Add(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	f := Extract(tr.ToCSR())
	if f[NNZMin] != 0 {
		t.Errorf("nnz_min = %v, want 0", f[NNZMin])
	}
	if f[NNZ] != 1 {
		t.Errorf("nnz = %v", f[NNZ])
	}
}

func TestExtractAllAndMatrix(t *testing.T) {
	m := skewed(t)
	vs := ExtractAll([]*sparse.CSR{m, m})
	if len(vs) != 2 || vs[0] != vs[1] {
		t.Fatal("ExtractAll inconsistent")
	}
	rows := Matrix(vs)
	if len(rows) != 2 || len(rows[0]) != Count {
		t.Fatal("Matrix shape wrong")
	}
	// Slice must be a copy.
	s := vs[0].Slice()
	s[0] = -99
	if vs[0][0] == -99 {
		t.Error("Slice aliases the vector")
	}
}

func TestNamesCount(t *testing.T) {
	if len(Names) != Count {
		t.Fatalf("Names has %d entries, want %d", len(Names), Count)
	}
	seen := map[string]bool{}
	for _, n := range Names {
		if seen[n] {
			t.Errorf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
	if got := (Vector{}).String(); got == "" {
		t.Error("String() empty")
	}
}

// TestQuickRowPermutationInvariance property-tests that features that
// depend only on the row-length histogram are invariant under row
// permutations — the foundation of the paper's augmentation strategy.
func TestQuickRowPermutationInvariance(t *testing.T) {
	invariant := []int{NRows, NCols, NNZ, NNZFrac, NNZMu, NNZMin, NNZMax,
		NNZSig, MaxMu, MuMin, SigLower, SigHigher, HybEllSize, HybCoo,
		HybEllFrac, EllFrac, EllSize}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 2+rng.Intn(30), 2+rng.Intn(30)
		tr := sparse.NewTriplet(rows, cols)
		for n := 0; n < rows*2; n++ {
			if tr.Add(rng.Intn(rows), rng.Intn(cols), 1) != nil {
				return false
			}
		}
		m := tr.ToCSR()
		if m.NNZ() == 0 {
			return true
		}
		p, err := m.Permute(rng.Perm(rows), nil)
		if err != nil {
			return false
		}
		fa, fb := Extract(m), Extract(p)
		for _, idx := range invariant {
			if math.Abs(fa[idx]-fb[idx]) > 1e-9*(1+math.Abs(fa[idx])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickFeatureSanity property-tests structural inequalities that must
// hold for any matrix: min <= mu <= max, fractions in [0,1], slab sizes
// at least nnz.
func TestQuickFeatureSanity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(40), 1+rng.Intn(40)
		tr := sparse.NewTriplet(rows, cols)
		for n := 0; n < 1+rng.Intn(rows*3); n++ {
			if tr.Add(rng.Intn(rows), rng.Intn(cols), 1+rng.Float64()) != nil {
				return false
			}
		}
		m := tr.ToCSR()
		v := Extract(m)
		if !(v[NNZMin] <= v[NNZMu] && v[NNZMu] <= v[NNZMax]) {
			return false
		}
		for _, idx := range []int{NNZFrac, EllFrac, DiaFrac} {
			if v[idx] < 0 || v[idx] > 1 {
				return false
			}
		}
		if v[EllSize] < v[NNZ] || v[DiaSize] < v[NNZ] {
			return false
		}
		if v[CSRMax] < v[NNZMu]/float64(32) || v[CSRMax] > v[NNZMax] {
			return false
		}
		if v[HybCoo] < 0 || v[HybEllFrac] < 0 || v[HybEllFrac] > 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestScratchReuseMatchesFreshExtract feeds one Scratch a sequence of
// matrices of very different shapes (so every buffer must grow, shrink
// and be re-zeroed) and checks each vector against a fresh extraction.
func TestScratchReuseMatchesFreshExtract(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var s Scratch
	for trial := 0; trial < 40; trial++ {
		rows := 1 + rng.Intn(200)
		cols := 1 + rng.Intn(200)
		tr := sparse.NewTriplet(rows, cols)
		for n := 0; n < 1+rng.Intn(rows*4); n++ {
			if err := tr.Add(rng.Intn(rows), rng.Intn(cols), 1+rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
		m := tr.ToCSR()
		got := s.Extract(m)
		want := Extract(m)
		if got != want {
			t.Fatalf("trial %d (%dx%d): reused scratch gave\n%v\nwant\n%v", trial, rows, cols, got, want)
		}
	}
}

// TestExtractAllMatchesSequential checks the parallel chunked path
// against per-matrix extraction.
func TestExtractAllMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var ms []*sparse.CSR
	for k := 0; k < 37; k++ {
		rows := 1 + rng.Intn(120)
		cols := 1 + rng.Intn(120)
		tr := sparse.NewTriplet(rows, cols)
		for n := 0; n < 1+rng.Intn(rows*3); n++ {
			if err := tr.Add(rng.Intn(rows), rng.Intn(cols), 1+rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
		ms = append(ms, tr.ToCSR())
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	all := ExtractAll(ms)
	if len(all) != len(ms) {
		t.Fatalf("ExtractAll returned %d vectors for %d matrices", len(all), len(ms))
	}
	for i, m := range ms {
		if want := Extract(m); all[i] != want {
			t.Fatalf("matrix %d: ExtractAll %v != Extract %v", i, all[i], want)
		}
	}
}

// BenchmarkExtractScratch compares the allocating and scratch-reusing
// extraction paths on a small matrix, where the three per-call buffer
// allocations dominate.
func BenchmarkExtractScratch(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	tr := sparse.NewTriplet(300, 300)
	for n := 0; n < 1500; n++ {
		if err := tr.Add(rng.Intn(300), rng.Intn(300), 1); err != nil {
			b.Fatal(err)
		}
	}
	m := tr.ToCSR()
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = Extract(m)
		}
	})
	b.Run("reused", func(b *testing.B) {
		b.ReportAllocs()
		var s Scratch
		for i := 0; i < b.N; i++ {
			_ = s.Extract(m)
		}
	})
}

// emptyCSR builds a rows x cols matrix with zero stored entries through
// the validating constructor.
func emptyCSR(t *testing.T, rows, cols int) *sparse.CSR {
	t.Helper()
	m, err := sparse.NewCSR(rows, cols, make([]int32, rows+1), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestExtractDegenerateMatrices checks that every feature of a
// degenerate matrix — zero rows, zero columns, or zero stored entries —
// is finite and zero-safe. Before the clamps, a 0-row matrix emitted
// NaN for nnz_frac/nnz_mu/nnz_sig and MaxInt64 (9.2e18) for nnz_min,
// and the DIA pass paniced sizing a negative occupancy bitmap; those
// values flowed into drift windows and the scaler unguarded.
func TestExtractDegenerateMatrices(t *testing.T) {
	cases := []struct {
		name    string
		m       *sparse.CSR
		allZero bool
	}{
		// The zero-value CSR is the "0 0 0" shape: no rows, no columns.
		{"zero-value 0x0", &sparse.CSR{}, true},
		{"empty 3x4", emptyCSR(t, 3, 4), false},
		{"empty 1x1", emptyCSR(t, 1, 1), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := Extract(tc.m)
			for i, v := range f {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					t.Errorf("%s = %v, want finite and non-negative", Names[i], v)
				}
				if tc.allZero && v != 0 {
					t.Errorf("%s = %v, want 0 on a 0x0 matrix", Names[i], v)
				}
			}
			// Every nnz-derived statistic is zero when there are no
			// stored entries (nnz_min used to report MaxInt64 here).
			for _, idx := range []int{NNZ, NNZFrac, NNZMu, NNZMin, NNZMax, NNZSig} {
				if f[idx] != 0 {
					t.Errorf("%s = %v, want 0 with nnz=0", Names[idx], f[idx])
				}
			}
			c := ExtractCheap(tc.m)
			for i, v := range c {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					t.Errorf("cheap[%d] = %v, want finite and non-negative", i, v)
				}
			}
		})
	}
}

// TestDegenerateMatrixMarketBody runs the smallest parseable 0-nnz
// MatrixMarket body through the same parse+extract path the serve
// handler uses.
func TestDegenerateMatrixMarketBody(t *testing.T) {
	body := "%%MatrixMarket matrix coordinate real general\n1 1 0\n"
	m, err := sparse.ReadMatrixMarketBytes([]byte(body))
	if err != nil {
		t.Fatalf("0-nnz body rejected: %v", err)
	}
	f := Extract(m)
	if f[NRows] != 1 || f[NCols] != 1 || f[NNZ] != 0 {
		t.Fatalf("dims/nnz = %v/%v/%v", f[NRows], f[NCols], f[NNZ])
	}
	for i, v := range f {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Errorf("%s = %v, want finite and non-negative", Names[i], v)
		}
	}
}

// TestSlabAdversarialDimensions is the regression test for the int
// overflow in the ELL/DIA/HYB size features: rows * width products like
// (1<<32) * (1<<31) wrap negative in int64 but must come out as large
// positive floats.
func TestSlabAdversarialDimensions(t *testing.T) {
	cases := []struct {
		a, b int
		want float64
	}{
		{0, 0, 0},
		{5, 7, 35},
		{1 << 32, 1 << 31, math.Ldexp(1, 63)}, // wraps to negative as int
		{1 << 62, 1 << 62, math.Ldexp(1, 124)},
		{math.MaxInt64, 2, 2 * float64(math.MaxInt64)},
	}
	for _, tc := range cases {
		got := slab(tc.a, tc.b)
		if got != tc.want {
			t.Errorf("slab(%d, %d) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got < 0 {
			t.Errorf("slab(%d, %d) = %v, negative size feature", tc.a, tc.b, got)
		}
	}
	// The wrapped int product really is negative — the thing the float64
	// promotion exists to avoid.
	a, b := 1<<32, 1<<31
	if p := a * b; p >= 0 {
		t.Skipf("int product unexpectedly non-negative (%d)", p)
	}
}

// TestExtractCheapMatchesFull checks bit-identity between the cheap
// pass and the matching entries of a full extraction across random
// shapes — the property that lets a cascade stage train on gathered
// full vectors and serve on ExtractCheap output.
func TestExtractCheapMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var s Scratch
	check := func(name string, m *sparse.CSR) {
		t.Helper()
		full := s.Extract(m).Slice()
		cheap := s.ExtractCheap(m)
		gathered := CheapSlice(full)
		for i := range cheap {
			if cheap[i] != gathered[i] {
				t.Fatalf("%s: cheap[%d] (%s) = %v, full has %v",
					name, i, Names[CheapIndices[i]], cheap[i], gathered[i])
			}
		}
		if got := cheap.Slice(); len(got) != CheapCount {
			t.Fatalf("CheapVector.Slice length %d", len(got))
		}
	}
	check("degenerate", &sparse.CSR{})
	check("empty", emptyCSR(t, 4, 9))
	for trial := 0; trial < 50; trial++ {
		rows := 1 + rng.Intn(150)
		cols := 1 + rng.Intn(150)
		tr := sparse.NewTriplet(rows, cols)
		for n := 0; n < 1+rng.Intn(rows*4); n++ {
			if err := tr.Add(rng.Intn(rows), rng.Intn(cols), 1+rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
		check("random", tr.ToCSR())
	}
}
