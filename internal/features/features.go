// Package features computes the 21 statistical sparse-matrix features of
// Table 1 in the paper, the inputs to every classifier and clustering
// model in this repository. All features are computed in a single O(nnz)
// pass over a CSR matrix (O(rows) once the row histogram is known, except
// the diagonal features which need the column indices), and they are
// architecture-invariant, so they are computed once per matrix.
package features

import (
	"fmt"
	"math"
	"time"

	"repro/internal/obs"
	"repro/internal/sparse"
)

// Count is the number of features in Vector, matching Table 1.
const Count = 21

// Names lists the feature names in Vector order, using the paper's
// spelling.
var Names = [Count]string{
	"nrows", "ncols", "nnz", "nnz_frac", "nnz_mu", "nnz_min", "nnz_max",
	"nnz_sig", "max_mu", "mu_min", "csr_max", "sig_lower", "sig_higher",
	"hyb_ell_size", "hyb_coo", "hyb_ell_frac", "diagonals", "dia_size",
	"dia_frac", "ell_frac", "ell_size",
}

// Vector holds one matrix's feature values in Names order.
type Vector [Count]float64

// Indices of the individual features within Vector.
const (
	NRows = iota
	NCols
	NNZ
	NNZFrac
	NNZMu
	NNZMin
	NNZMax
	NNZSig
	MaxMu
	MuMin
	CSRMax
	SigLower
	SigHigher
	HybEllSize
	HybCoo
	HybEllFrac
	Diagonals
	DiaSize
	DiaFrac
	EllFrac
	EllSize
)

// warpSize is the number of threads per GPU warp assumed by the csr_max
// feature (rows processed by one warp in the scalar CSR kernel).
const warpSize = 32

// CheapCount is the number of cheap features: the O(rows) subset that
// needs neither the column indices (DIA pass) nor the row-length
// histogram (HYB pass). These are the structural features the cascade's
// first stage classifies on.
const CheapCount = 8

// CheapIndices lists the Vector indices of the cheap features, in the
// order ExtractCheap emits them.
var CheapIndices = [CheapCount]int{
	NRows, NCols, NNZ, NNZFrac, NNZMu, NNZMin, NNZMax, NNZSig,
}

// CheapVector holds the cheap-feature values in CheapIndices order.
type CheapVector [CheapCount]float64

// Slice returns the cheap vector as a fresh []float64.
func (v CheapVector) Slice() []float64 {
	s := make([]float64, CheapCount)
	copy(s, v[:])
	return s
}

// CheapSlice gathers the cheap features out of a full feature row
// (Vector order). Extraction clamps both paths identically, so for any
// matrix CheapSlice(Extract(m).Slice()) == ExtractCheap(m).Slice().
func CheapSlice(full []float64) []float64 {
	out := make([]float64, CheapCount)
	for i, idx := range CheapIndices {
		if idx < len(full) {
			out[i] = full[idx]
		}
	}
	return out
}

// slab computes an a×b storage-size feature in float64. The operands are
// matrix dimensions and widths, so an int product can silently overflow
// negative on adversarial inputs (rows ~ 2^32 × width ~ 2^31); promoting
// each factor first keeps the feature finite and positive.
func slab(a, b int) float64 {
	return float64(a) * float64(b)
}

// Extraction metrics, recorded when an obs sink is registered:
// extractions performed, and the wall time per call.
var (
	extractCalls   = obs.Default.Counter("features/extractions")
	extractSeconds = obs.Default.Histogram("features/extract/seconds", obs.DurationBuckets)
	cheapCalls     = obs.Default.Counter("features/extractions_cheap")
	cheapSeconds   = obs.Default.Histogram("features/extract_cheap/seconds", obs.DurationBuckets)
)

// Scratch holds the reusable working buffers of the feature pass: the
// row-length vector, the row-length histogram and the diagonal-occupancy
// bitmap. A zero Scratch is ready to use; reusing one across matrices
// (as ExtractAll does per worker) drops the three per-call allocations
// that otherwise dominate extraction on small matrices.
type Scratch struct {
	rowLens []int
	hist    []int
	occ     []bool
}

// ints returns s.rowLens resized to n (contents undefined).
func (s *Scratch) ints(n int) []int {
	if cap(s.rowLens) < n {
		s.rowLens = make([]int, n)
	}
	s.rowLens = s.rowLens[:n]
	return s.rowLens
}

// zeroHist returns a zeroed histogram of length n.
func (s *Scratch) zeroHist(n int) []int {
	if cap(s.hist) < n {
		s.hist = make([]int, n)
		return s.hist
	}
	s.hist = s.hist[:n]
	clear(s.hist)
	return s.hist
}

// zeroOcc returns an all-false occupancy bitmap of length n.
func (s *Scratch) zeroOcc(n int) []bool {
	if cap(s.occ) < n {
		s.occ = make([]bool, n)
		return s.occ
	}
	s.occ = s.occ[:n]
	clear(s.occ)
	return s.occ
}

// Extract computes the feature vector for a matrix.
func Extract(m *sparse.CSR) Vector {
	var s Scratch
	return s.Extract(m)
}

// Extract computes the feature vector for a matrix, reusing the
// scratch's buffers. Equivalent to the package-level Extract; a Scratch
// must not be shared between goroutines.
func (s *Scratch) Extract(m *sparse.CSR) Vector {
	start := obs.Now()
	defer func() {
		if !start.IsZero() {
			extractCalls.Inc()
			extractSeconds.Observe(time.Since(start).Seconds())
		}
	}()
	var f Vector
	rows, cols := m.Dims()
	nnz := m.NNZ()

	f[NRows] = float64(rows)
	f[NCols] = float64(cols)
	f[NNZ] = float64(nnz)
	if rows > 0 && cols > 0 {
		f[NNZFrac] = float64(nnz) / (float64(rows) * float64(cols))
	}

	// Row statistics. minRow starts at 0, not MaxInt64, when there are no
	// rows to scan: every feature of a degenerate matrix must stay finite
	// and zero-safe (they flow into drift windows and the scaler).
	minRow, maxRow := 0, 0
	if rows > 0 {
		minRow = math.MaxInt64
	}
	rowLens := s.ints(rows)
	maxWarp := 0 // csr_max: max total rows-worth of work in one warp, measured
	// as the maximum row length within any aligned warp of rows: the scalar
	// CSR kernel's warp finishes only when its longest row does.
	for i := 0; i < rows; i++ {
		n := m.RowNNZ(i)
		rowLens[i] = n
		if n < minRow {
			minRow = n
		}
		if n > maxRow {
			maxRow = n
		}
	}
	for base := 0; base < rows; base += warpSize {
		w := 0
		for i := base; i < base+warpSize && i < rows; i++ {
			if rowLens[i] > w {
				w = rowLens[i]
			}
		}
		if w > maxWarp {
			maxWarp = w
		}
	}
	var mu float64
	if rows > 0 {
		mu = float64(nnz) / float64(rows)
	}
	f[NNZMu] = mu
	f[NNZMin] = float64(minRow)
	f[NNZMax] = float64(maxRow)
	f[MaxMu] = float64(maxRow) - mu
	f[MuMin] = mu - float64(minRow)
	f[CSRMax] = float64(maxWarp)

	// Standard deviation and the one-sided RMS deviations.
	var sq, lowSq, highSq float64
	var nLow, nHigh int
	for _, n := range rowLens {
		d := float64(n) - mu
		sq += d * d
		if d < 0 {
			lowSq += d * d
			nLow++
		} else if d > 0 {
			highSq += d * d
			nHigh++
		}
	}
	if rows > 0 {
		f[NNZSig] = math.Sqrt(sq / float64(rows))
	}
	if nLow > 0 {
		f[SigLower] = math.Sqrt(lowSq / float64(nLow))
	}
	if nHigh > 0 {
		f[SigHigher] = math.Sqrt(highSq / float64(nHigh))
	}

	// ELL structure.
	f[EllSize] = slab(rows, maxRow)
	if maxRow > 0 {
		f[EllFrac] = float64(nnz) / f[EllSize]
	}

	// HYB structure: slab width per CUSP's heuristic.
	hist := s.zeroHist(maxRow + 1)
	for _, n := range rowLens {
		hist[n]++
	}
	hybW := sparse.HybWidthFromHistogram(hist, rows)
	ellPart := 0
	for _, n := range rowLens {
		if n < hybW {
			ellPart += n
		} else {
			ellPart += hybW
		}
	}
	f[HybEllSize] = slab(rows, hybW)
	f[HybCoo] = float64(nnz - ellPart)
	if f[HybEllSize] > 0 {
		f[HybEllFrac] = float64(ellPart) / f[HybEllSize]
	}

	// DIA structure. A 0×0 matrix has no diagonals at all; clamp the
	// occupancy size so the bitmap never goes negative.
	nocc := rows + cols - 1
	if nocc < 0 {
		nocc = 0
	}
	occ := s.zeroOcc(nocc)
	ndiag := 0
	rowPtr, colIdx := m.RowPtr(), m.ColIdx()
	for i := 0; i < rows; i++ {
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			d := int(colIdx[k]) - i + rows - 1
			if !occ[d] {
				occ[d] = true
				ndiag++
			}
		}
	}
	f[Diagonals] = float64(ndiag)
	f[DiaSize] = slab(ndiag, rows)
	if f[DiaSize] > 0 {
		f[DiaFrac] = float64(nnz) / f[DiaSize]
	}

	return f
}

// ExtractCheap computes the cheap-feature subset for a matrix.
func ExtractCheap(m *sparse.CSR) CheapVector {
	var s Scratch
	return s.ExtractCheap(m)
}

// ExtractCheap computes the cheap-feature subset: two O(rows) passes
// over the row-pointer array, no histogram, no column-index walk, no
// scratch allocations. The values are bit-identical to the matching
// entries of a full Extract, including the degenerate-matrix clamps, so
// a cascade stage trained on gathered full vectors sees exactly the
// distribution this produces at serve time.
func (s *Scratch) ExtractCheap(m *sparse.CSR) CheapVector {
	start := obs.Now()
	defer func() {
		if !start.IsZero() {
			cheapCalls.Inc()
			cheapSeconds.Observe(time.Since(start).Seconds())
		}
	}()
	var f CheapVector
	rows, cols := m.Dims()
	nnz := m.NNZ()
	f[0] = float64(rows)
	f[1] = float64(cols)
	f[2] = float64(nnz)
	if rows > 0 && cols > 0 {
		f[3] = float64(nnz) / (float64(rows) * float64(cols))
	}
	minRow, maxRow := 0, 0
	if rows > 0 {
		minRow = math.MaxInt64
	}
	for i := 0; i < rows; i++ {
		n := m.RowNNZ(i)
		if n < minRow {
			minRow = n
		}
		if n > maxRow {
			maxRow = n
		}
	}
	var mu float64
	if rows > 0 {
		mu = float64(nnz) / float64(rows)
	}
	f[4] = mu
	f[5] = float64(minRow)
	f[6] = float64(maxRow)
	var sq float64
	for i := 0; i < rows; i++ {
		d := float64(m.RowNNZ(i)) - mu
		sq += d * d
	}
	if rows > 0 {
		f[7] = math.Sqrt(sq / float64(rows))
	}
	return f
}

// ExtractAll computes feature vectors for a slice of matrices, fanning
// the matrices out over contiguous per-worker chunks. Each worker reuses
// one Scratch across its chunk, so a corpus-sized extraction performs a
// handful of buffer allocations instead of three per matrix. The output
// is positional and extraction is pure, so the result is identical to a
// sequential loop.
func ExtractAll(ms []*sparse.CSR) []Vector {
	out := make([]Vector, len(ms))
	obs.ParallelChunks(len(ms), obs.Workers(len(ms)), func(w, lo, hi int) {
		var s Scratch
		for i := lo; i < hi; i++ {
			out[i] = s.Extract(ms[i])
		}
	})
	return out
}

// Slice returns the vector as a fresh []float64, the representation used
// by the preprocessing and learning packages.
func (v Vector) Slice() []float64 {
	s := make([]float64, Count)
	copy(s, v[:])
	return s
}

// Matrix converts feature vectors to the row-major sample matrix consumed
// by preprocessing pipelines.
func Matrix(vs []Vector) [][]float64 {
	out := make([][]float64, len(vs))
	for i, v := range vs {
		out[i] = v.Slice()
	}
	return out
}

// String renders a feature vector with names, for the explainability
// tooling.
func (v Vector) String() string {
	s := ""
	for i, n := range Names {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%.4g", n, v[i])
	}
	return s
}
