package linalg

import (
	"fmt"
	"math"
	"sort"
)

// SymEigen computes the eigendecomposition of a symmetric matrix with the
// cyclic Jacobi method. It returns the eigenvalues in descending order
// and the corresponding unit eigenvectors as the columns of V. The input
// must be square and symmetric to within a small tolerance.
//
// Jacobi is quadratically convergent and unconditionally stable for
// symmetric matrices; the feature covariance matrices it is used on here
// are at most ~21x21, so its O(n^3) sweeps are negligible.
func SymEigen(a *Dense) (values []float64, vectors *Dense, err error) {
	n := a.Rows
	if a.Cols != n {
		return nil, nil, fmt.Errorf("linalg: SymEigen on %dx%d non-square matrix", a.Rows, a.Cols)
	}
	const symTol = 1e-8
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			scale := math.Max(1, math.Max(math.Abs(a.At(i, j)), math.Abs(a.At(j, i))))
			if math.Abs(a.At(i, j)-a.At(j, i)) > symTol*scale {
				return nil, nil, fmt.Errorf("linalg: SymEigen on asymmetric matrix: a[%d,%d]=%g, a[%d,%d]=%g",
					i, j, a.At(i, j), j, i, a.At(j, i))
			}
		}
	}

	w := a.Clone()
	v := NewDense(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-22*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(w, v, p, q, c, s)
			}
		}
	}

	values = make([]float64, n)
	for i := range values {
		values[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool { return values[idx[x]] > values[idx[y]] })
	sortedVals := make([]float64, n)
	vectors = NewDense(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = values[oldCol]
		for r := 0; r < n; r++ {
			vectors.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, vectors, nil
}

// rotate applies the Jacobi rotation J(p,q,c,s) as w = J' w J and
// accumulates v = v J.
func rotate(w, v *Dense, p, q int, c, s float64) {
	n := w.Rows
	for i := 0; i < n; i++ {
		wip, wiq := w.At(i, p), w.At(i, q)
		w.Set(i, p, c*wip-s*wiq)
		w.Set(i, q, s*wip+c*wiq)
	}
	for i := 0; i < n; i++ {
		wpi, wqi := w.At(p, i), w.At(q, i)
		w.Set(p, i, c*wpi-s*wqi)
		w.Set(q, i, s*wpi+c*wqi)
	}
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}
