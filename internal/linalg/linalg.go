// Package linalg provides the small dense linear-algebra kernels shared
// by the preprocessing (PCA) and learning (logistic regression, SVM, CNN)
// packages: row-major dense matrices, basic BLAS-1/2/3 style operations
// and a Jacobi eigensolver for symmetric matrices.
//
// The package is deliberately minimal: it implements exactly what the
// reproduction needs, with clear semantics, rather than a general matrix
// library.
package linalg

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols
}

// NewDense allocates a zeroed rows x cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: NewDense(%d, %d)", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must be equal length.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	d := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != d.Cols {
			panic(fmt.Sprintf("linalg: FromRows ragged input: row %d has %d cols, want %d", i, len(r), d.Cols))
		}
		copy(d.Row(i), r)
	}
	return d
}

// At returns element (i, j).
func (d *Dense) At(i, j int) float64 { return d.Data[i*d.Cols+j] }

// Set assigns element (i, j).
func (d *Dense) Set(i, j int, v float64) { d.Data[i*d.Cols+j] = v }

// Row returns a mutable view of row i.
func (d *Dense) Row(i int) []float64 { return d.Data[i*d.Cols : (i+1)*d.Cols] }

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	c := NewDense(d.Rows, d.Cols)
	copy(c.Data, d.Data)
	return c
}

// T returns the transpose as a new matrix.
func (d *Dense) T() *Dense {
	t := NewDense(d.Cols, d.Rows)
	for i := 0; i < d.Rows; i++ {
		for j := 0; j < d.Cols; j++ {
			t.Data[j*d.Rows+i] = d.Data[i*d.Cols+j]
		}
	}
	return t
}

// Mul returns a*b. It panics on inner-dimension mismatch, which is a
// programming error rather than a data error.
func Mul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul %dx%d by %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// MulVec returns a*x as a new vector.
func MulVec(a *Dense, x []float64) []float64 {
	if a.Cols != len(x) {
		panic(fmt.Sprintf("linalg: MulVec %dx%d by vector of %d", a.Rows, a.Cols, len(x)))
	}
	y := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		y[i] = Dot(a.Row(i), x)
	}
	return y
}

// Dot returns the inner product of equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// SqDist returns the squared Euclidean distance between equal-length
// vectors; it is the inner loop of every clustering algorithm here.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: SqDist length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// ColumnMeans returns the per-column mean of a sample matrix.
func ColumnMeans(d *Dense) []float64 {
	mu := make([]float64, d.Cols)
	if d.Rows == 0 {
		return mu
	}
	for i := 0; i < d.Rows; i++ {
		Axpy(1, d.Row(i), mu)
	}
	Scale(1/float64(d.Rows), mu)
	return mu
}

// Covariance returns the (biased, 1/n) covariance matrix of the rows of d
// and the column means used for centring. The biased estimator matches
// scikit-learn's PCA up to an immaterial scale factor on the eigenvalues.
func Covariance(d *Dense) (cov *Dense, means []float64) {
	means = ColumnMeans(d)
	cov = NewDense(d.Cols, d.Cols)
	if d.Rows == 0 {
		return cov, means
	}
	row := make([]float64, d.Cols)
	for i := 0; i < d.Rows; i++ {
		copy(row, d.Row(i))
		Axpy(-1, means, row)
		for a := 0; a < d.Cols; a++ {
			if row[a] == 0 {
				continue
			}
			crow := cov.Row(a)
			for b := 0; b < d.Cols; b++ {
				crow[b] += row[a] * row[b]
			}
		}
	}
	Scale(1/float64(d.Rows), cov.Data)
	return cov, means
}
