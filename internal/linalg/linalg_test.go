package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDenseBasics(t *testing.T) {
	d := NewDense(2, 3)
	d.Set(0, 1, 5)
	d.Set(1, 2, -2)
	if d.At(0, 1) != 5 || d.At(1, 2) != -2 || d.At(0, 0) != 0 {
		t.Error("Set/At wrong")
	}
	r := d.Row(1)
	r[0] = 9
	if d.At(1, 0) != 9 {
		t.Error("Row is not a view")
	}
	c := d.Clone()
	c.Set(0, 0, 77)
	if d.At(0, 0) == 77 {
		t.Error("Clone shares storage")
	}
}

func TestFromRowsAndT(t *testing.T) {
	d := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tt := d.T()
	if tt.Rows != 3 || tt.Cols != 2 {
		t.Fatalf("T dims %dx%d", tt.Rows, tt.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if d.At(i, j) != tt.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1}, {1, 2}})
}

func TestMulAgainstHandComputed(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("c[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 0, 2}, {-1, 3, 1}})
	y := MulVec(a, []float64{3, 2, 1})
	if y[0] != 5 || y[1] != 4 {
		t.Errorf("MulVec = %v, want [5 4]", y)
	}
}

func TestVectorOps(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if Dot(x, y) != 32 {
		t.Error("Dot wrong")
	}
	z := append([]float64(nil), y...)
	Axpy(2, x, z)
	if z[0] != 6 || z[1] != 9 || z[2] != 12 {
		t.Errorf("Axpy = %v", z)
	}
	Scale(0.5, z)
	if z[0] != 3 {
		t.Errorf("Scale = %v", z)
	}
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-15 {
		t.Error("Norm2 wrong")
	}
	if SqDist(x, y) != 27 {
		t.Error("SqDist wrong")
	}
}

func TestCovarianceKnown(t *testing.T) {
	// Two perfectly correlated columns.
	d := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	cov, means := Covariance(d)
	if means[0] != 2 || means[1] != 4 {
		t.Fatalf("means = %v", means)
	}
	// var(col0) = 2/3, cov = 4/3, var(col1) = 8/3.
	if math.Abs(cov.At(0, 0)-2.0/3) > 1e-12 ||
		math.Abs(cov.At(0, 1)-4.0/3) > 1e-12 ||
		math.Abs(cov.At(1, 1)-8.0/3) > 1e-12 {
		t.Errorf("cov = %v", cov.Data)
	}
}

func TestSymEigenDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}})
	vals, vecs, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-10 {
			t.Errorf("eigenvalue %d = %v, want %v", i, vals[i], want[i])
		}
	}
	// First eigenvector must be +-e0.
	if math.Abs(math.Abs(vecs.At(0, 0))-1) > 1e-10 {
		t.Error("first eigenvector not aligned with axis 0")
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(10)
		// Random symmetric matrix.
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs, err := SymEigen(a)
		if err != nil {
			t.Fatal(err)
		}
		// Check A v_k = lambda_k v_k, orthonormality, and ordering.
		for k := 0; k < n; k++ {
			vk := make([]float64, n)
			for r := 0; r < n; r++ {
				vk[r] = vecs.At(r, k)
			}
			av := MulVec(a, vk)
			for r := 0; r < n; r++ {
				if math.Abs(av[r]-vals[k]*vk[r]) > 1e-8 {
					t.Fatalf("trial %d: A v != lambda v at eigenpair %d", trial, k)
				}
			}
			if math.Abs(Norm2(vk)-1) > 1e-8 {
				t.Fatalf("trial %d: eigenvector %d not unit", trial, k)
			}
			if k > 0 && vals[k] > vals[k-1]+1e-10 {
				t.Fatalf("trial %d: eigenvalues not descending", trial)
			}
		}
	}
}

func TestSymEigenRejectsAsymmetric(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 1}})
	if _, _, err := SymEigen(a); err == nil {
		t.Error("asymmetric input accepted")
	}
	b := FromRows([][]float64{{1, 2, 3}})
	if _, _, err := SymEigen(b); err == nil {
		t.Error("non-square input accepted")
	}
}

// TestQuickCovariancePSD property-tests that covariance matrices are
// positive semi-definite (all Jacobi eigenvalues >= -tol).
func TestQuickCovariancePSD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 3+rng.Intn(20), 2+rng.Intn(6)
		d := NewDense(n, m)
		for i := range d.Data {
			d.Data[i] = rng.NormFloat64() * 10
		}
		cov, _ := Covariance(d)
		vals, _, err := SymEigen(cov)
		if err != nil {
			return false
		}
		for _, v := range vals {
			if v < -1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPanicsOnMismatch(t *testing.T) {
	check := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	check("Mul", func() { Mul(NewDense(2, 3), NewDense(2, 3)) })
	check("MulVec", func() { MulVec(NewDense(2, 3), make([]float64, 2)) })
	check("Dot", func() { Dot([]float64{1}, []float64{1, 2}) })
	check("Axpy", func() { Axpy(1, []float64{1}, []float64{1, 2}) })
	check("SqDist", func() { SqDist([]float64{1}, []float64{1, 2}) })
}
