package sparse

import (
	"fmt"

	"repro/internal/obs"
)

// DIA is the diagonal format: values are stored along occupied diagonals.
// offsets[d] is the diagonal offset (j - i); vals is a rows x ndiags slab
// in diagonal-major order. DIA degenerates badly for unstructured
// matrices (up to O(n^2) space), so conversion enforces a size limit like
// ELL's. The paper does not benchmark the DIA kernel but uses the DIA
// structure sizes as classification features.
type DIA struct {
	rows, cols int
	nnz        int
	offsets    []int32
	vals       []float64 // len ndiags*rows, diagonal-major
}

// DefaultDIALimit caps the DIA slab at this multiple of the nonzero count.
const DefaultDIALimit = 16

// NewDIAFromCSR converts a CSR matrix to DIA. If the slab would exceed
// limit*nnz entries it returns ErrTooLarge (limit <= 0 selects
// DefaultDIALimit).
func NewDIAFromCSR(a *CSR, limit int) (*DIA, error) {
	if limit <= 0 {
		limit = DefaultDIALimit
	}
	// Mark occupied diagonals. Offset range is [-(rows-1), cols-1].
	occ := make([]bool, a.rows+a.cols-1)
	ndiags := 0
	for i := 0; i < a.rows; i++ {
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			d := int(a.colIdx[k]) - i + a.rows - 1
			if !occ[d] {
				occ[d] = true
				ndiags++
			}
		}
	}
	slab := ndiags * a.rows
	if nnz := a.NNZ(); nnz > 0 && slab > limit*nnz {
		return nil, fmt.Errorf("%w: DIA slab %d entries (%d diagonals) > %d * nnz %d",
			ErrTooLarge, slab, ndiags, limit, nnz)
	}
	m := &DIA{
		rows:    a.rows,
		cols:    a.cols,
		nnz:     a.NNZ(),
		offsets: make([]int32, 0, ndiags),
		vals:    make([]float64, slab),
	}
	// diagSlot[d] = index of diagonal d in the slab, or -1.
	diagSlot := make([]int32, len(occ))
	for d := range diagSlot {
		diagSlot[d] = -1
	}
	for d, used := range occ {
		if used {
			diagSlot[d] = int32(len(m.offsets))
			m.offsets = append(m.offsets, int32(d-(a.rows-1)))
		}
	}
	for i := 0; i < a.rows; i++ {
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			d := int(a.colIdx[k]) - i + a.rows - 1
			m.vals[int(diagSlot[d])*a.rows+i] = a.vals[k]
		}
	}
	return m, nil
}

// Dims returns the matrix dimensions.
func (m *DIA) Dims() (rows, cols int) { return m.rows, m.cols }

// NNZ returns the number of true nonzero entries.
func (m *DIA) NNZ() int { return m.nnz }

// Format returns FormatDIA.
func (m *DIA) Format() Format { return FormatDIA }

// NumDiagonals returns the number of occupied diagonals (the paper's
// "diagonals" feature).
func (m *DIA) NumDiagonals() int { return len(m.offsets) }

// SlabSize returns the total number of stored slots including padding
// (the paper's dia_size feature).
func (m *DIA) SlabSize() int { return len(m.vals) }

// SpMV computes y = A*x walking each stored diagonal.
func (m *DIA) SpMV(y, x []float64) error {
	if err := checkSpMVDims(m, y, x); err != nil {
		return err
	}
	start := obs.Now()
	for i := range y {
		y[i] = 0
	}
	for d, off := range m.offsets {
		base := d * m.rows
		lo, hi := 0, m.rows
		if off > 0 {
			if hi > m.cols-int(off) {
				hi = m.cols - int(off)
			}
		} else {
			lo = -int(off)
		}
		for i := lo; i < hi; i++ {
			if v := m.vals[base+i]; v != 0 {
				y[i] += v * x[i+int(off)]
			}
		}
	}
	observeKernel(FormatDIA, m.rows, m.nnz, start)
	return nil
}

// ToCSR converts the matrix back to canonical CSR. Padding slots hold
// exact zeros and are dropped by the Triplet assembly; a true stored zero
// would be dropped too, which matches the semantics of every other
// conversion in this package.
func (m *DIA) ToCSR() *CSR {
	t := NewTriplet(m.rows, m.cols)
	t.Reserve(m.nnz)
	for d, off := range m.offsets {
		base := d * m.rows
		for i := 0; i < m.rows; i++ {
			j := i + int(off)
			if j < 0 || j >= m.cols {
				continue
			}
			if v := m.vals[base+i]; v != 0 {
				_ = t.Add(i, j, v)
			}
		}
	}
	return t.ToCSR()
}
