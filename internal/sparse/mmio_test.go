package sparse

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	a := randomCSR(t, rng, 25, 19, 0.15)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, a); err != nil {
		t.Fatalf("write: %v", err)
	}
	b, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !Equal(a, b) {
		t.Error("MatrixMarket round trip changed the matrix")
	}
}

func TestMatrixMarketSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
% a comment line
3 3 4
1 1 2.0
2 1 -1.0
3 2 -1.0
3 3 2.0
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 6 {
		t.Fatalf("NNZ = %d, want 6 after symmetric expansion", m.NNZ())
	}
	if m.At(0, 1) != -1 || m.At(1, 0) != -1 {
		t.Error("symmetric mirror entry missing")
	}
	if m.At(0, 0) != 2 {
		t.Error("diagonal entry wrong")
	}
}

func TestMatrixMarketSkewSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 3.5
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3.5 || m.At(0, 1) != -3.5 {
		t.Errorf("skew expansion wrong: %v, %v", m.At(1, 0), m.At(0, 1))
	}
}

func TestMatrixMarketPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
2 3 2
1 1
2 3
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 1 || m.At(1, 2) != 1 {
		t.Error("pattern entries should read as 1.0")
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad header", "%%NotMM matrix coordinate real general\n1 1 0\n"},
		{"array container", "%%MatrixMarket matrix array real general\n1 1\n"},
		{"complex values", "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n"},
		{"hermitian", "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n"},
		{"missing size", "%%MatrixMarket matrix coordinate real general\n"},
		{"bad size", "%%MatrixMarket matrix coordinate real general\nx y z\n"},
		{"entry count mismatch", "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"},
		{"index out of range", "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n"},
		{"short entry", "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n"},
		{"bad value", "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc\n"},
	}
	for _, c := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: ReadMatrixMarket succeeded, want error", c.name)
		}
	}
}

func TestMatrixMarketDuplicatesSummed(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
2 2 2
1 1 1.5
1 1 2.5
`
	m, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 4.0 {
		t.Errorf("duplicates not summed: got %v, want 4.0", m.At(0, 0))
	}
}

func TestMatrixMarketFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randomCSR(t, rng, 12, 12, 0.3)
	dir := t.TempDir()
	for _, name := range []string{"plain.mtx", "packed.mtx.gz"} {
		path := filepath.Join(dir, name)
		if err := WriteMatrixMarketFile(path, a); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		b, err := ReadMatrixMarketFile(path)
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		if !Equal(a, b) {
			t.Errorf("%s: round trip changed the matrix", name)
		}
	}
	// The gzip variant must actually be gzip (magic bytes).
	raw, err := os.ReadFile(filepath.Join(dir, "packed.mtx.gz"))
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Error("gz file is not gzip-compressed")
	}
	if _, err := ReadMatrixMarketFile(filepath.Join(dir, "missing.mtx")); err == nil {
		t.Error("missing file accepted")
	}
	// A .gz path with non-gzip contents must fail cleanly.
	bad := filepath.Join(dir, "bad.mtx.gz")
	if err := os.WriteFile(bad, []byte("plain text"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMatrixMarketFile(bad); err == nil {
		t.Error("corrupt gzip accepted")
	}
}
