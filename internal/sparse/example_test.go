package sparse_test

import (
	"fmt"
	"strings"

	"repro/internal/sparse"
)

// Building a matrix with the Triplet accumulator and multiplying it.
func ExampleTriplet() {
	t := sparse.NewTriplet(2, 3)
	_ = t.Add(0, 0, 2)
	_ = t.Add(0, 2, -1)
	_ = t.Add(1, 1, 3)
	m := t.ToCSR()

	y := make([]float64, 2)
	_ = m.SpMV(y, []float64{1, 1, 1})
	fmt.Println(m.NNZ(), y)
	// Output: 3 [1 3]
}

// Converting a matrix between storage formats.
func ExampleConvert() {
	t := sparse.NewTriplet(3, 3)
	for i := 0; i < 3; i++ {
		_ = t.Add(i, i, 1)
	}
	m := t.ToCSR()

	ell, _ := sparse.Convert(m, sparse.FormatELL)
	hyb, _ := sparse.Convert(m, sparse.FormatHYB)
	fmt.Println(ell.Format(), hyb.Format(), sparse.Equal(ell, hyb))
	// Output: ELL HYB true
}

// Reading a MatrixMarket stream (the SuiteSparse on-disk format).
func ExampleReadMatrixMarket() {
	src := `%%MatrixMarket matrix coordinate real symmetric
2 2 2
1 1 4.0
2 1 -1.0
`
	m, err := sparse.ReadMatrixMarket(strings.NewReader(src))
	if err != nil {
		fmt.Println(err)
		return
	}
	// Symmetric storage expands to full: (1,2) mirrors (2,1).
	fmt.Println(m.NNZ(), m.At(0, 1))
	// Output: 3 -1
}

// Reordering a scattered matrix with reverse Cuthill-McKee.
func ExampleRCM() {
	// A 4-vertex path graph stored in a scrambled order.
	t := sparse.NewTriplet(4, 4)
	for _, e := range [][2]int{{0, 2}, {2, 3}, {3, 1}} {
		_ = t.Add(e[0], e[1], 1)
		_ = t.Add(e[1], e[0], 1)
	}
	m := t.ToCSR()

	perm, _ := sparse.RCM(m)
	reordered, _ := m.Permute(perm, perm)
	fmt.Println(sparse.Bandwidth(m), "->", sparse.Bandwidth(reordered))
	// Output: 2 -> 1
}
