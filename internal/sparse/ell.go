package sparse

import (
	"fmt"

	"repro/internal/obs"
)

// ELL is the ELLPACK format: a dense rows x width slab where width is the
// maximum nonzeros per row, with shorter rows padded. Entries are stored
// column-major (entry j of every row is contiguous) exactly as in CUSP,
// where that layout gives coalesced GPU loads. Padding positions carry
// column index -1 and value 0.
//
// The storage blow-up for skewed matrices is the reason the paper's
// datasets exclude matrices whose ELL structure exceeds a size limit.
type ELL struct {
	rows, cols int
	width      int
	nnz        int
	colIdx     []int32   // len rows*width, column-major, -1 for padding
	vals       []float64 // len rows*width, column-major
}

// PadIdx is the column index stored in ELL/HYB padding slots.
const PadIdx int32 = -1

// DefaultELLLimit caps the ELL slab at this multiple of the nonzero
// count. CUSP's ell_matrix conversion fails beyond a similar threshold
// ("restrictions on the size" noted by the paper and by Benatia et al.).
const DefaultELLLimit = 16

// NewELLFromCSR converts a CSR matrix to ELL. If the slab rows*width would
// exceed limit*nnz entries, it returns ErrTooLarge (pass limit <= 0 for
// DefaultELLLimit).
func NewELLFromCSR(a *CSR, limit int) (*ELL, error) {
	if limit <= 0 {
		limit = DefaultELLLimit
	}
	width := 0
	for i := 0; i < a.rows; i++ {
		if n := a.RowNNZ(i); n > width {
			width = n
		}
	}
	slab := a.rows * width
	if nnz := a.NNZ(); nnz > 0 && slab > limit*nnz {
		return nil, fmt.Errorf("%w: ELL slab %d entries > %d * nnz %d", ErrTooLarge, slab, limit, nnz)
	}
	m := &ELL{
		rows:   a.rows,
		cols:   a.cols,
		width:  width,
		nnz:    a.NNZ(),
		colIdx: make([]int32, slab),
		vals:   make([]float64, slab),
	}
	for i := range m.colIdx {
		m.colIdx[i] = PadIdx
	}
	for i := 0; i < a.rows; i++ {
		slot := 0
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			p := slot*a.rows + i // column-major
			m.colIdx[p] = a.colIdx[k]
			m.vals[p] = a.vals[k]
			slot++
		}
	}
	return m, nil
}

// Dims returns the matrix dimensions.
func (m *ELL) Dims() (rows, cols int) { return m.rows, m.cols }

// NNZ returns the number of true (non-padding) entries.
func (m *ELL) NNZ() int { return m.nnz }

// Format returns FormatELL.
func (m *ELL) Format() Format { return FormatELL }

// Width returns the slab width (maximum nonzeros in any row).
func (m *ELL) Width() int { return m.width }

// SlabSize returns rows*width, the total number of stored slots including
// padding; this is the paper's ell_size feature.
func (m *ELL) SlabSize() int { return m.rows * m.width }

// SpMV computes y = A*x walking the slab column-major so that the access
// pattern mirrors the coalesced GPU kernel.
func (m *ELL) SpMV(y, x []float64) error {
	if err := checkSpMVDims(m, y, x); err != nil {
		return err
	}
	start := obs.Now()
	m.spmvKernel(y, x)
	observeKernel(FormatELL, m.rows, m.nnz, start)
	return nil
}

// spmvKernel is the uninstrumented slab walk, shared with the HYB kernel
// (which must not record an ELL observation for its ELL part).
func (m *ELL) spmvKernel(y, x []float64) {
	for i := range y {
		y[i] = 0
	}
	for s := 0; s < m.width; s++ {
		base := s * m.rows
		for i := 0; i < m.rows; i++ {
			c := m.colIdx[base+i]
			if c != PadIdx {
				y[i] += m.vals[base+i] * x[c]
			}
		}
	}
}

// ToCSR converts the matrix back to canonical CSR.
func (m *ELL) ToCSR() *CSR {
	t := NewTriplet(m.rows, m.cols)
	t.Reserve(m.nnz)
	for s := 0; s < m.width; s++ {
		base := s * m.rows
		for i := 0; i < m.rows; i++ {
			if c := m.colIdx[base+i]; c != PadIdx {
				// Indices came from a valid matrix; Add cannot fail.
				_ = t.Add(i, int(c), m.vals[base+i])
			}
		}
	}
	return t.ToCSR()
}
