package sparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// MatrixMarket I/O for the "matrix coordinate" container, the on-disk
// format of the SuiteSparse collection the paper benchmarks. Supported
// qualifiers: real/integer/pattern values with general/symmetric/
// skew-symmetric storage. Pattern entries read as 1.0. Symmetric inputs
// are expanded to full storage, which is what every SpMV benchmark
// (including CUSP's) does before timing.

// maxStreamReserve caps how many entries the streaming reader
// pre-allocates on the declared count alone (1 MiB-scale buffers); the
// byte fast path instead clamps by the remaining body size.
const maxStreamReserve = 1 << 19

// ReadMatrixMarket parses a MatrixMarket coordinate stream into CSR.
// This is the general/streaming path; in-memory bodies should go
// through ReadMatrixMarketBytes (mmio_fast.go), which produces
// identical output without the scanner and tokenizing allocations.
func ReadMatrixMarket(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)

	if !sc.Scan() {
		return nil, fmt.Errorf("sparse: empty MatrixMarket stream")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) != 5 || header[0] != "%%matrixmarket" {
		return nil, fmt.Errorf("sparse: malformed MatrixMarket header %q", sc.Text())
	}
	object, container, valueType, symmetry := header[1], header[2], header[3], header[4]
	if object != "matrix" || container != "coordinate" {
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket object %q %q", object, container)
	}
	pattern := false
	switch valueType {
	case "real", "integer":
	case "pattern":
		pattern = true
	default:
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket value type %q", valueType)
	}
	var symSign float64
	switch symmetry {
	case "general":
		symSign = 0
	case "symmetric":
		symSign = 1
	case "skew-symmetric":
		symSign = -1
	default:
		return nil, fmt.Errorf("sparse: unsupported MatrixMarket symmetry %q", symmetry)
	}

	// Skip comments, read the size line: exactly three base-10 integers.
	// (fmt.Sscan would accept base prefixes and silently ignore trailing
	// garbage like "3 3 4 extra".)
	var rows, cols, declared int
	for {
		if !sc.Scan() {
			return nil, fmt.Errorf("sparse: MatrixMarket stream missing size line")
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 3 {
			return nil, fmt.Errorf("sparse: bad MatrixMarket size line %q", line)
		}
		var err error
		if rows, err = strconv.Atoi(f[0]); err == nil {
			if cols, err = strconv.Atoi(f[1]); err == nil {
				declared, err = strconv.Atoi(f[2])
			}
		}
		if err != nil {
			return nil, fmt.Errorf("sparse: bad MatrixMarket size line %q: %w", line, err)
		}
		break
	}
	if rows <= 0 || cols <= 0 || declared < 0 {
		return nil, fmt.Errorf("sparse: bad MatrixMarket sizes %d %d %d", rows, cols, declared)
	}

	t := NewTriplet(rows, cols)
	// Reserve for the declared entries (doubled for symmetric
	// expansion), but never trust the header beyond a bounded up-front
	// allocation: a stream's true size is unknown here, and an
	// adversarial size line ("1 1 4611686018427387903") must not force
	// gigabytes of allocation — or overflow the doubling — before a
	// single entry is read. Larger honest inputs just regrow by append.
	reserve := declared
	if reserve > maxStreamReserve {
		reserve = maxStreamReserve
	}
	t.Reserve(reserve * 2) // room for symmetric expansion
	read := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		want := 3
		if pattern {
			want = 2
		}
		if len(fields) < want {
			return nil, fmt.Errorf("sparse: short MatrixMarket entry %q", line)
		}
		i, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad MatrixMarket row index %q: %w", fields[0], err)
		}
		j, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("sparse: bad MatrixMarket column index %q: %w", fields[1], err)
		}
		v := 1.0
		if !pattern {
			v, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("sparse: bad MatrixMarket value %q: %w", fields[2], err)
			}
		}
		if err := t.Add(i-1, j-1, v); err != nil {
			return nil, err
		}
		if symSign != 0 && i != j {
			if err := t.Add(j-1, i-1, symSign*v); err != nil {
				return nil, err
			}
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sparse: reading MatrixMarket stream: %w", err)
	}
	if read != declared {
		return nil, fmt.Errorf("sparse: MatrixMarket declares %d entries, found %d", declared, read)
	}
	return t.ToCSR(), nil
}

// WriteMatrixMarket writes a matrix as a general real coordinate
// MatrixMarket stream with one-based indices.
func WriteMatrixMarket(w io.Writer, m Matrix) error {
	a, err := ToCSR(m)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	rows, cols := a.Dims()
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n%d %d %d\n",
		rows, cols, a.NNZ()); err != nil {
		return fmt.Errorf("sparse: writing MatrixMarket header: %w", err)
	}
	for i := 0; i < rows; i++ {
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, a.colIdx[k]+1, a.vals[k]); err != nil {
				return fmt.Errorf("sparse: writing MatrixMarket entry: %w", err)
			}
		}
	}
	return bw.Flush()
}
