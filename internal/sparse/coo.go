package sparse

import (
	"fmt"

	"repro/internal/obs"
)

// COO is the coordinate format: three parallel arrays of row indices,
// column indices and values, sorted by row then column. On GPUs the COO
// kernel is a segmented reduction whose work is perfectly balanced across
// threads, which is why it wins on extremely skewed matrices despite its
// higher per-entry traffic.
type COO struct {
	rows, cols int
	rowIdx     []int32
	colIdx     []int32
	vals       []float64
}

// NewCOO constructs a COO matrix from raw arrays (used directly, not
// copied). The entries must be sorted by row then column with no
// duplicates; Validate reports a descriptive error otherwise.
func NewCOO(rows, cols int, rowIdx, colIdx []int32, vals []float64) (*COO, error) {
	m := &COO{rows: rows, cols: cols, rowIdx: rowIdx, colIdx: colIdx, vals: vals}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Validate checks array lengths, index ranges and the sorted-no-duplicate
// ordering invariant.
func (m *COO) Validate() error {
	if m.rows <= 0 || m.cols <= 0 {
		return fmt.Errorf("sparse: COO with non-positive dims %dx%d", m.rows, m.cols)
	}
	if len(m.rowIdx) != len(m.vals) || len(m.colIdx) != len(m.vals) {
		return fmt.Errorf("sparse: COO array lengths differ: rows %d, cols %d, vals %d",
			len(m.rowIdx), len(m.colIdx), len(m.vals))
	}
	for k := range m.vals {
		r, c := m.rowIdx[k], m.colIdx[k]
		if r < 0 || int(r) >= m.rows || c < 0 || int(c) >= m.cols {
			return fmt.Errorf("%w: COO entry %d at (%d, %d) outside %dx%d",
				ErrIndexRange, k, r, c, m.rows, m.cols)
		}
		if k > 0 {
			pr, pc := m.rowIdx[k-1], m.colIdx[k-1]
			if pr > r || (pr == r && pc >= c) {
				return fmt.Errorf("sparse: COO entries not sorted/unique at position %d", k)
			}
		}
	}
	return nil
}

// Dims returns the matrix dimensions.
func (m *COO) Dims() (rows, cols int) { return m.rows, m.cols }

// NNZ returns the number of stored entries.
func (m *COO) NNZ() int { return len(m.vals) }

// Format returns FormatCOO.
func (m *COO) Format() Format { return FormatCOO }

// RowIdx exposes the row index array; callers must not modify it.
func (m *COO) RowIdx() []int32 { return m.rowIdx }

// ColIdx exposes the column index array; callers must not modify it.
func (m *COO) ColIdx() []int32 { return m.colIdx }

// Values exposes the value array; callers must not modify it.
func (m *COO) Values() []float64 { return m.vals }

// SpMV computes y = A*x by streaming the sorted entries, the CPU analogue
// of CUSP's segmented-reduction COO kernel.
func (m *COO) SpMV(y, x []float64) error {
	if err := checkSpMVDims(m, y, x); err != nil {
		return err
	}
	start := obs.Now()
	for i := range y {
		y[i] = 0
	}
	for k := range m.vals {
		y[m.rowIdx[k]] += m.vals[k] * x[m.colIdx[k]]
	}
	observeKernel(FormatCOO, m.rows, len(m.vals), start)
	return nil
}

// ToCSR converts the matrix to CSR. The entries are already sorted, so the
// conversion is a single counting pass plus copies.
func (m *COO) ToCSR() *CSR {
	rowPtr := make([]int32, m.rows+1)
	for _, r := range m.rowIdx {
		rowPtr[r+1]++
	}
	for i := 0; i < m.rows; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	colIdx := make([]int32, len(m.colIdx))
	copy(colIdx, m.colIdx)
	vals := make([]float64, len(m.vals))
	copy(vals, m.vals)
	return &CSR{rows: m.rows, cols: m.cols, rowPtr: rowPtr, colIdx: colIdx, vals: vals}
}
