package sparse

import (
	"fmt"

	"repro/internal/obs"
)

// CSR is the compressed sparse row format: rowPtr[i]..rowPtr[i+1] delimit
// the column indices and values of row i, with columns sorted ascending
// within each row. CSR is the canonical interchange format of this
// library, as it is for the CUSP-based benchmark in the paper.
type CSR struct {
	rows, cols int
	rowPtr     []int32 // length rows+1
	colIdx     []int32 // length nnz, sorted within each row
	vals       []float64
}

// NewCSR constructs a CSR matrix from raw arrays. The arrays are used
// directly (not copied) and must satisfy the CSR invariants; Validate
// reports a descriptive error if they do not.
func NewCSR(rows, cols int, rowPtr, colIdx []int32, vals []float64) (*CSR, error) {
	m := &CSR{rows: rows, cols: cols, rowPtr: rowPtr, colIdx: colIdx, vals: vals}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Validate checks the structural invariants: monotone rowPtr covering all
// of colIdx/vals, in-range sorted column indices, and matching lengths.
func (m *CSR) Validate() error {
	if m.rows <= 0 || m.cols <= 0 {
		return fmt.Errorf("sparse: CSR with non-positive dims %dx%d", m.rows, m.cols)
	}
	if len(m.rowPtr) != m.rows+1 {
		return fmt.Errorf("sparse: CSR rowPtr length %d, want %d", len(m.rowPtr), m.rows+1)
	}
	if m.rowPtr[0] != 0 {
		return fmt.Errorf("sparse: CSR rowPtr[0] = %d, want 0", m.rowPtr[0])
	}
	if len(m.colIdx) != len(m.vals) {
		return fmt.Errorf("sparse: CSR colIdx length %d != vals length %d", len(m.colIdx), len(m.vals))
	}
	if int(m.rowPtr[m.rows]) != len(m.vals) {
		return fmt.Errorf("sparse: CSR rowPtr[last] = %d, want nnz %d", m.rowPtr[m.rows], len(m.vals))
	}
	for i := 0; i < m.rows; i++ {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		if lo > hi {
			return fmt.Errorf("sparse: CSR rowPtr not monotone at row %d", i)
		}
		for k := lo; k < hi; k++ {
			c := m.colIdx[k]
			if c < 0 || int(c) >= m.cols {
				return fmt.Errorf("%w: CSR column %d at row %d (ncols %d)", ErrIndexRange, c, i, m.cols)
			}
			if k > lo && m.colIdx[k-1] >= c {
				return fmt.Errorf("sparse: CSR columns not strictly ascending in row %d", i)
			}
		}
	}
	return nil
}

// Dims returns the matrix dimensions.
func (m *CSR) Dims() (rows, cols int) { return m.rows, m.cols }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.vals) }

// Format returns FormatCSR.
func (m *CSR) Format() Format { return FormatCSR }

// RowPtr exposes the row pointer array; callers must not modify it.
func (m *CSR) RowPtr() []int32 { return m.rowPtr }

// ColIdx exposes the column index array; callers must not modify it.
func (m *CSR) ColIdx() []int32 { return m.colIdx }

// Values exposes the value array; callers must not modify it.
func (m *CSR) Values() []float64 { return m.vals }

// RowNNZ returns the number of stored entries in row i.
func (m *CSR) RowNNZ(i int) int { return int(m.rowPtr[i+1] - m.rowPtr[i]) }

// At returns the value at (i, j), or zero when the entry is not stored.
// Lookup is a binary search within the row, O(log nnz(row)).
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		return 0
	}
	lo, hi := int(m.rowPtr[i]), int(m.rowPtr[i+1])
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case int(m.colIdx[mid]) < j:
			lo = mid + 1
		case int(m.colIdx[mid]) > j:
			hi = mid
		default:
			return m.vals[mid]
		}
	}
	return 0
}

// SpMV computes y = A*x with the scalar row-wise kernel.
func (m *CSR) SpMV(y, x []float64) error {
	if err := checkSpMVDims(m, y, x); err != nil {
		return err
	}
	start := obs.Now()
	m.spmvRange(y, x, 0, m.rows)
	observeKernel(FormatCSR, m.rows, len(m.vals), start)
	return nil
}

func (m *CSR) spmvRange(y, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		sum := 0.0
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			sum += m.vals[k] * x[m.colIdx[k]]
		}
		y[i] = sum
	}
}

// SpMVParallel computes y = A*x with rows partitioned across
// GOMAXPROCS goroutines. Rows are split into contiguous chunks balanced
// by nonzero count so a few heavy rows do not serialise the computation —
// the CPU analogue of the warp-imbalance effect the paper's csr_max
// feature captures on GPUs.
func (m *CSR) SpMVParallel(y, x []float64) error {
	if err := checkSpMVDims(m, y, x); err != nil {
		return err
	}
	start := obs.Now()
	workers := obs.Workers(m.rows)
	if workers <= 1 || m.NNZ() < 1<<14 {
		m.spmvRange(y, x, 0, m.rows)
		observeKernel(FormatCSR, m.rows, len(m.vals), start)
		return nil
	}
	bounds := m.partitionByNNZ(workers)
	obs.ParallelWorkers(workers, func(w int) {
		if lo, hi := bounds[w], bounds[w+1]; lo < hi {
			m.spmvRange(y, x, lo, hi)
		}
	})
	observeKernel(FormatCSR, m.rows, len(m.vals), start)
	return nil
}

// partitionByNNZ splits the rows into n contiguous chunks of roughly
// equal nonzero count, returning n+1 row boundaries.
func (m *CSR) partitionByNNZ(n int) []int {
	bounds := make([]int, n+1)
	nnz := len(m.vals)
	row := 0
	for w := 1; w < n; w++ {
		target := int32(nnz * w / n)
		for row < m.rows && m.rowPtr[row] < target {
			row++
		}
		bounds[w] = row
	}
	bounds[n] = m.rows
	return bounds
}

// Transpose returns the transpose as a new CSR matrix (equivalently, the
// CSC view of the original). It is used by the permutation augmentation.
func (m *CSR) Transpose() *CSR {
	t := &CSR{
		rows:   m.cols,
		cols:   m.rows,
		rowPtr: make([]int32, m.cols+1),
		colIdx: make([]int32, len(m.colIdx)),
		vals:   make([]float64, len(m.vals)),
	}
	for _, c := range m.colIdx {
		t.rowPtr[c+1]++
	}
	for i := 0; i < m.cols; i++ {
		t.rowPtr[i+1] += t.rowPtr[i]
	}
	next := make([]int32, m.cols)
	copy(next, t.rowPtr[:m.cols])
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			c := m.colIdx[k]
			p := next[c]
			next[c]++
			t.colIdx[p] = int32(i)
			t.vals[p] = m.vals[k]
		}
	}
	return t
}

// Permute returns P_r * A * P_c' where rowPerm and colPerm map old indices
// to new: new row rowPerm[i] receives old row i. Either permutation may be
// nil to leave that side unchanged. It returns an error if a permutation
// has the wrong length or is not a bijection.
func (m *CSR) Permute(rowPerm, colPerm []int) (*CSR, error) {
	if rowPerm != nil {
		if err := checkPermutation(rowPerm, m.rows); err != nil {
			return nil, fmt.Errorf("sparse: row permutation: %w", err)
		}
	}
	if colPerm != nil {
		if err := checkPermutation(colPerm, m.cols); err != nil {
			return nil, fmt.Errorf("sparse: column permutation: %w", err)
		}
	}
	t := NewTriplet(m.rows, m.cols)
	t.Reserve(m.NNZ())
	for i := 0; i < m.rows; i++ {
		ni := i
		if rowPerm != nil {
			ni = rowPerm[i]
		}
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			nj := int(m.colIdx[k])
			if colPerm != nil {
				nj = colPerm[nj]
			}
			if err := t.Add(ni, nj, m.vals[k]); err != nil {
				return nil, err
			}
		}
	}
	return t.ToCSR(), nil
}

func checkPermutation(p []int, n int) error {
	if len(p) != n {
		return fmt.Errorf("length %d, want %d", len(p), n)
	}
	seen := make([]bool, n)
	for _, v := range p {
		if v < 0 || v >= n || seen[v] {
			return fmt.Errorf("not a bijection on [0, %d)", n)
		}
		seen[v] = true
	}
	return nil
}
