package sparse

import (
	"bytes"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
)

// csrIdentical is bitwise equality: same dims, same index arrays, same
// value bits (so -0 vs 0 and NaN payloads count). The fast path promises
// byte-identical output to the streaming reader, not just numerical
// closeness.
func csrIdentical(a, b *CSR) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	if len(a.rowPtr) != len(b.rowPtr) || len(a.colIdx) != len(b.colIdx) || len(a.vals) != len(b.vals) {
		return false
	}
	for i := range a.rowPtr {
		if a.rowPtr[i] != b.rowPtr[i] {
			return false
		}
	}
	for i := range a.colIdx {
		if a.colIdx[i] != b.colIdx[i] {
			return false
		}
	}
	for i := range a.vals {
		if math.Float64bits(a.vals[i]) != math.Float64bits(b.vals[i]) {
			return false
		}
	}
	return true
}

// checkParsersAgree runs both parsers over data and fails unless they
// reach the same verdict — and, on acceptance, the same matrix bit for
// bit.
func checkParsersAgree(t *testing.T, data string) {
	t.Helper()
	sm, serr := ReadMatrixMarket(strings.NewReader(data))
	fm, ferr := ReadMatrixMarketBytes([]byte(data))
	if (serr == nil) != (ferr == nil) {
		t.Fatalf("verdicts disagree on %q:\n  streaming: %v\n  bytes:     %v", data, serr, ferr)
	}
	if serr != nil {
		return
	}
	if !csrIdentical(sm, fm) {
		t.Fatalf("parsers disagree on %q:\n  streaming: %dx%d nnz %d\n  bytes:     %dx%d nnz %d",
			data, sm.rows, sm.cols, sm.NNZ(), fm.rows, fm.cols, fm.NNZ())
	}
}

// TestReadMatrixMarketDifferential pins the fast path to the streaming
// reader across valid, degenerate and malformed inputs, including the
// non-ASCII-whitespace cases where the fast path must fall back to keep
// identical verdicts.
func TestReadMatrixMarketDifferential(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"basic real", "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 3.5\n2 2 -1.25\n"},
		{"integer type", "%%MatrixMarket matrix coordinate integer general\n2 2 2\n1 2 7\n2 1 -3\n"},
		{"pattern", "%%MatrixMarket matrix coordinate pattern general\n2 3 2\n1 1\n2 3\n"},
		{"pattern extra fields", "%%MatrixMarket matrix coordinate pattern general\n2 3 1\n1 1 junk trailing\n"},
		{"symmetric", "%%MatrixMarket matrix coordinate real symmetric\n3 3 3\n1 1 1\n3 1 2\n2 2 4\n"},
		{"skew-symmetric", "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 4\n"},
		{"skew diagonal kept", "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 2\n2 1 4\n1 1 9\n"},
		{"zero nnz", "%%MatrixMarket matrix coordinate real general\n3 4 0\n"},
		{"uppercase header", "%%MATRIXMARKET MATRIX COORDINATE REAL GENERAL\n1 1 1\n1 1 2\n"},
		{"mixed case symmetry", "%%MatrixMarket matrix coordinate Real Symmetric\n2 2 1\n2 1 5\n"},
		{"crlf endings", "%%MatrixMarket matrix coordinate real general\r\n2 2 1\r\n1 2 8\r\n"},
		{"no trailing newline", "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 2.5"},
		{"comments and blanks", "%%MatrixMarket matrix coordinate real general\n% a comment\n\n  \n3 3 1\n% mid comment\n2 2 6\n\n"},
		{"tabs and extra spaces", "%%MatrixMarket matrix coordinate real general\n  2\t2  1 \n 1\t1\t 4.5  \n"},
		{"vertical tab separator", "%%MatrixMarket matrix coordinate real general\n2\v2\v1\n1\v1\v2\n"},
		{"carriage return separator", "%%MatrixMarket matrix coordinate real general\n2 2 1\n1\r1\r2\n"},
		{"duplicates summed", "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1\n1 1 2\n2 1 5\n"},
		{"duplicates cancel", "%%MatrixMarket matrix coordinate real general\n1 1 2\n1 1 1\n1 1 -1\n"},
		{"explicit zero dropped", "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 0\n2 2 3\n"},
		{"entry extra fields ignored", "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 2.5 these are ignored\n"},
		{"seventeen digit mantissas", "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 0.49671415301123271\n2 2 -1.7612069338999298e-12\n"},
		{"huge exponent", "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1e300\n"},
		{"tiny exponent", "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 4.9e-324\n"},
		{"overflow to inf", "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1e999\n"},
		{"negative zero value", "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 -0.0\n"},
		{"leading dot", "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 .5\n"},
		{"trailing dot", "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 5.\n"},
		{"plus signs", "%%MatrixMarket matrix coordinate real general\n1 1 1\n+1 +1 +2.5e+1\n"},
		{"nan value", "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 nan\n"},
		{"inf value", "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 +Inf\n"},
		{"underscored value rejected", "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1_0\n"},
		{"hex float without exponent", "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 0x10\n"},
		{"hex float with exponent", "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 0x1p-2\n"},
		{"leading zero indices", "%%MatrixMarket matrix coordinate real general\n2 2 1\n01 02 3\n"},

		{"empty", ""},
		{"newline only", "\n"},
		{"garbage header", "garbage\n1 1 1\n"},
		{"six field header", "%%MatrixMarket matrix coordinate real general extra\n1 1 1\n1 1 1\n"},
		{"four field header", "%%MatrixMarket matrix coordinate real\n1 1 1\n1 1 1\n"},
		{"array container", "%%MatrixMarket matrix array real general\n1 1\n1\n"},
		{"complex values", "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n"},
		{"hermitian", "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n"},
		{"header only", "%%MatrixMarket matrix coordinate real general\n"},
		{"comments then eof", "%%MatrixMarket matrix coordinate real general\n% only comments\n"},
		{"size line garbage", "%%MatrixMarket matrix coordinate real general\nx y z\n"},
		{"size line trailing garbage", "%%MatrixMarket matrix coordinate real general\n3 3 4 extra\n1 1 1\n1 2 1\n2 1 1\n2 2 1\n"},
		{"size line two fields", "%%MatrixMarket matrix coordinate real general\n3 3\n"},
		{"size line hex", "%%MatrixMarket matrix coordinate real general\n0x2 2 1\n1 1 1\n"},
		{"size line float", "%%MatrixMarket matrix coordinate real general\n2.0 2 1\n1 1 1\n"},
		{"negative rows", "%%MatrixMarket matrix coordinate real general\n-2 2 1\n1 1 1\n"},
		{"zero rows", "%%MatrixMarket matrix coordinate real general\n0 0 0\n"},
		{"negative declared", "%%MatrixMarket matrix coordinate real general\n2 2 -1\n"},
		{"adversarial declared", "%%MatrixMarket matrix coordinate real general\n1 1 4611686018427387903\n1 1 1\n"},
		{"declared overflow", "%%MatrixMarket matrix coordinate real symmetric\n2 2 9223372036854775807\n1 1 1\n"},
		{"index overflow", "%%MatrixMarket matrix coordinate real general\n2 2 1\n99999999999999999999 1 1\n"},
		{"index int64 min", "%%MatrixMarket matrix coordinate real general\n2 2 1\n-9223372036854775808 1 1\n"},
		{"out of range", "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 3 1\n"},
		{"zero index", "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1\n"},
		{"short entry", "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n"},
		{"short pattern entry", "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1\n"},
		{"bad row index", "%%MatrixMarket matrix coordinate real general\n2 2 1\nx 1 1\n"},
		{"bad value", "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc\n"},
		{"count mismatch low", "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n"},
		{"count mismatch high", "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1\n2 2 1\n"},
		{"asymmetric mirror out of range", "%%MatrixMarket matrix coordinate real symmetric\n2 3 1\n1 3 5\n"},

		{"nbsp separator", "%%MatrixMarket matrix coordinate real general\n2 2 1\n1\u00a01\u00a02.5\n"},
		{"nbsp in size line", "%%MatrixMarket matrix coordinate real general\n2\u00a02 1\n1 1 1\n"},
		{"nbsp before comment", "%%MatrixMarket matrix coordinate real general\n\u00a0% comment\n2 2 1\n1 1 1\n"},
		{"nbsp blank line", "%%MatrixMarket matrix coordinate real general\n\u00a0\n2 2 1\n1 1 1\n"},
		{"next line separator", "%%MatrixMarket matrix coordinate real general\n2 2 1\n1\u00851\u00852.5\n"},
		{"unicode in header", "%%MatrixMarket\u00a0matrix coordinate real general\n1 1 1\n1 1 1\n"},
		{"trailing nbsp after value", "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 2.5\u00a0x\n"},
		{"invalid utf8 byte", "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 2.5\xff\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { checkParsersAgree(t, tc.data) })
	}
}

// TestReadMatrixMarketBytesRandomised cross-checks the parsers over
// generated matrices with WriteMatrixMarket's own %.17g output — the
// mantissa shapes the serve path actually receives.
func TestReadMatrixMarketBytesRandomised(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		rows := 1 + rng.Intn(40)
		cols := 1 + rng.Intn(40)
		tr := NewTriplet(rows, cols)
		nnz := rng.Intn(200)
		for k := 0; k < nnz; k++ {
			tr.Add(rng.Intn(rows), rng.Intn(cols), rng.NormFloat64()*math.Pow(10, float64(rng.Intn(9)-4)))
		}
		var sb strings.Builder
		if err := WriteMatrixMarket(&sb, tr.ToCSR()); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		checkParsersAgree(t, sb.String())
	}
}

// TestAdversarialSizeLineDoesNotPreallocate would OOM (or panic on the
// overflowed doubling) before the reservation clamps landed; now both
// parsers just report the count mismatch.
func TestAdversarialSizeLineDoesNotPreallocate(t *testing.T) {
	for _, data := range []string{
		"%%MatrixMarket matrix coordinate real general\n1 1 4611686018427387903\n1 1 1\n",
		"%%MatrixMarket matrix coordinate real symmetric\n1 1 9223372036854775807\n1 1 1\n",
	} {
		if _, err := ReadMatrixMarket(strings.NewReader(data)); err == nil {
			t.Fatalf("streaming parser accepted %q", data)
		}
		if _, err := ReadMatrixMarketBytes([]byte(data)); err == nil {
			t.Fatalf("bytes parser accepted %q", data)
		}
	}
}

// TestSizeLineTrailingGarbageRejected pins the strictness fix: the old
// fmt.Sscan parse silently accepted extra tokens after the entry count.
func TestSizeLineTrailingGarbageRejected(t *testing.T) {
	data := "%%MatrixMarket matrix coordinate real general\n3 3 4 extra\n1 1 1\n1 2 1\n2 1 1\n2 2 1\n"
	if _, err := ReadMatrixMarket(strings.NewReader(data)); err == nil {
		t.Fatal("streaming parser accepted a size line with trailing garbage")
	}
	if _, err := ReadMatrixMarketBytes([]byte(data)); err == nil {
		t.Fatal("bytes parser accepted a size line with trailing garbage")
	}
}

// TestParseFloatBytesMatchesStrconv pins the hand-rolled float
// tokenizer (Clinger fast path + Eisel-Lemire + strconv fallback) to
// strconv.ParseFloat bit for bit across formatted corpora: uniform
// mantissa bits, every %.17g/%g/%e shape, denormals, huge exponents.
func TestParseFloatBytesMatchesStrconv(t *testing.T) {
	check := func(s string) {
		t.Helper()
		want, werr := strconv.ParseFloat(s, 64)
		got, gerr := parseFloatBytes([]byte(s))
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("verdicts differ on %q: strconv %v, parseFloatBytes %v", s, werr, gerr)
		}
		if werr == nil && math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("value differs on %q: strconv %x, parseFloatBytes %x",
				s, math.Float64bits(want), math.Float64bits(got))
		}
	}
	fixed := []string{
		"0", "-0", "0.0", "1", "-1", "1e0", "1e-0", "9007199254740992", "9007199254740993",
		"1.7976931348623157e308", "1.7976931348623159e308", "4.9e-324", "2.4e-324", "5e-324",
		"2.2250738585072014e-308", "2.2250738585072011e-308", "1e309", "-1e309", "1e-400",
		"0.3", "0.1", "0.2", "123456789012345678901234567890", "1e22", "1e23", "-1e22",
		"9999999999999999999", "99999999999999999999", "1.00000000000000011102230246251565404236316680908203125",
	}
	for _, s := range fixed {
		check(s)
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 50000; i++ {
		f := math.Float64frombits(rng.Uint64())
		if math.IsNaN(f) || math.IsInf(f, 0) {
			continue
		}
		check(strconv.FormatFloat(f, 'g', 17, 64))
		check(strconv.FormatFloat(f, 'g', -1, 64))
		check(strconv.FormatFloat(f, 'e', 16, 64))
	}
	for i := 0; i < 50000; i++ {
		f := rng.NormFloat64() * math.Pow(10, float64(rng.Intn(60)-30))
		check(strconv.FormatFloat(f, 'g', 17, 64))
	}
}

func buildParseBody(t testing.TB, entries int) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	rows, cols := 64, 64
	tr := NewTriplet(rows, cols)
	for k := 0; k < entries; k++ {
		tr.Add(rng.Intn(rows), rng.Intn(cols), rng.NormFloat64())
	}
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, tr.ToCSR()); err != nil {
		t.Fatalf("building bench body: %v", err)
	}
	return buf.Bytes()
}

// TestParseBytesScratchAllocs is the allocation-regression guard for the
// pooled fast path: a warmed scratch parse allocates only the returned
// CSR (struct + rowPtr + colIdx + vals), even with %.17g mantissas that
// take the strconv fallback.
func TestParseBytesScratchAllocs(t *testing.T) {
	if obs.RaceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	body := buildParseBody(t, 400)
	s := GetParseScratch()
	defer PutParseScratch(s)
	if _, err := ReadMatrixMarketBytesScratch(body, s); err != nil {
		t.Fatalf("warm parse: %v", err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := ReadMatrixMarketBytesScratch(body, s); err != nil {
			panic(err)
		}
	})
	if allocs > 6 {
		t.Fatalf("pooled parse allocates %.1f objects/op, want <= 6 (CSR struct + 3 arrays)", allocs)
	}
}

func BenchmarkReadMatrixMarketStream(b *testing.B) {
	body := buildParseBody(b, 4000)
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadMatrixMarket(bytes.NewReader(body)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadMatrixMarketBytes(b *testing.B) {
	body := buildParseBody(b, 4000)
	s := GetParseScratch()
	defer PutParseScratch(s)
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadMatrixMarketBytesScratch(body, s); err != nil {
			b.Fatal(err)
		}
	}
}
