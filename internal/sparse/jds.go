package sparse

import (
	"sort"

	"repro/internal/obs"
)

// JDS is jagged diagonal storage (Saad's SPARSKIT, the paper's reference
// for classic sparse kernels): rows are sorted by decreasing length and
// the k-th entries of all sufficiently long rows are stored contiguously
// as the k-th "jagged diagonal". Like ELL it streams coalesced columns,
// but with zero padding — at the price of a row permutation that must be
// undone on output, the reordering/locality trade-off the paper's
// related work discusses for sliced ELL.
//
// JDS is an extension format: it is not part of the paper's benchmarked
// set and does not participate in format selection by default.
type JDS struct {
	rows, cols int
	nnz        int
	perm       []int32 // perm[k] = original index of the k-th longest row
	jdPtr      []int32 // jagged diagonal j occupies [jdPtr[j], jdPtr[j+1])
	colIdx     []int32
	vals       []float64
}

// NewJDSFromCSR converts a CSR matrix to JDS.
func NewJDSFromCSR(a *CSR) *JDS {
	rows, cols := a.Dims()
	m := &JDS{rows: rows, cols: cols, nnz: a.NNZ()}

	m.perm = make([]int32, rows)
	for i := range m.perm {
		m.perm[i] = int32(i)
	}
	sort.SliceStable(m.perm, func(x, y int) bool {
		return a.RowNNZ(int(m.perm[x])) > a.RowNNZ(int(m.perm[y]))
	})

	maxRow := 0
	if rows > 0 {
		maxRow = a.RowNNZ(int(m.perm[0]))
	}
	m.jdPtr = make([]int32, maxRow+1)
	m.colIdx = make([]int32, m.nnz)
	m.vals = make([]float64, m.nnz)

	pos := int32(0)
	for j := 0; j < maxRow; j++ {
		m.jdPtr[j] = pos
		for k := 0; k < rows; k++ {
			orig := int(m.perm[k])
			if a.RowNNZ(orig) <= j {
				break // rows are sorted: nothing longer follows
			}
			src := a.rowPtr[orig] + int32(j)
			m.colIdx[pos] = a.colIdx[src]
			m.vals[pos] = a.vals[src]
			pos++
		}
	}
	if maxRow >= 0 {
		m.jdPtr[maxRow] = pos
	}
	return m
}

// Dims returns the matrix dimensions.
func (m *JDS) Dims() (rows, cols int) { return m.rows, m.cols }

// NNZ returns the number of stored entries (JDS never pads).
func (m *JDS) NNZ() int { return m.nnz }

// Format returns FormatJDS.
func (m *JDS) Format() Format { return FormatJDS }

// NumDiagonals returns the number of jagged diagonals (the maximum row
// length).
func (m *JDS) NumDiagonals() int { return len(m.jdPtr) - 1 }

// SpMV computes y = A*x walking each jagged diagonal.
func (m *JDS) SpMV(y, x []float64) error {
	if err := checkSpMVDims(m, y, x); err != nil {
		return err
	}
	start := obs.Now()
	for i := range y {
		y[i] = 0
	}
	for j := 0; j+1 < len(m.jdPtr); j++ {
		lo, hi := m.jdPtr[j], m.jdPtr[j+1]
		for k := lo; k < hi; k++ {
			row := m.perm[k-lo]
			y[row] += m.vals[k] * x[m.colIdx[k]]
		}
	}
	observeKernel(FormatJDS, m.rows, m.nnz, start)
	return nil
}

// ToCSR converts the matrix back to canonical CSR.
func (m *JDS) ToCSR() *CSR {
	t := NewTriplet(m.rows, m.cols)
	t.Reserve(m.nnz)
	for j := 0; j+1 < len(m.jdPtr); j++ {
		lo, hi := m.jdPtr[j], m.jdPtr[j+1]
		for k := lo; k < hi; k++ {
			_ = t.Add(int(m.perm[k-lo]), int(m.colIdx[k]), m.vals[k])
		}
	}
	return t.ToCSR()
}

var _ Matrix = (*JDS)(nil)
