package sparse

import (
	"time"

	"repro/internal/obs"
)

// Kernel instrumentation. Every SpMV kernel brackets its inner loops
// with
//
//	start := obs.Now()          // zero time when obs is disabled
//	...kernel...
//	observeKernel(f, rows, nnz, start)
//
// so the disabled cost is one atomic load per call. When a sink is
// registered, each call feeds the per-format metrics
//
//	spmv/<FMT>/calls       counter
//	spmv/<FMT>/rows_per_s  histogram, row throughput
//	spmv/<FMT>/nnz_per_s   histogram, nonzero throughput (≈ 2·FLOP/s / 2)
//	spmv/<FMT>/nnz         histogram, problem size per call
//
// The throughput histograms are the CPU-side analogue of the paper's GPU
// kernel timings: the run-report commits them as a host fingerprint so
// reports from different machines are comparable.
type kernelInstr struct {
	calls  *obs.Counter
	rowsPS *obs.Histogram
	nnzPS  *obs.Histogram
	nnz    *obs.Histogram
}

// kernelInstrs is indexed by Format; instruments are resolved once at
// init so the enabled path never touches the registry's map lock.
var kernelInstrs = func() []kernelInstr {
	formats := []Format{
		FormatCOO, FormatCSR, FormatELL, FormatHYB,
		FormatDIA, FormatSELL, FormatCSC, FormatJDS,
	}
	ki := make([]kernelInstr, len(formats))
	for _, f := range formats {
		name := "spmv/" + f.String()
		ki[f] = kernelInstr{
			calls:  obs.Default.Counter(name + "/calls"),
			rowsPS: obs.Default.Histogram(name+"/rows_per_s", obs.RateBuckets),
			nnzPS:  obs.Default.Histogram(name+"/nnz_per_s", obs.RateBuckets),
			nnz:    obs.Default.Histogram(name+"/nnz", obs.SizeBuckets),
		}
	}
	return ki
}()

// observeKernel records one kernel execution. A zero start time means
// observability was disabled when the kernel began; nothing is recorded.
func observeKernel(f Format, rows, nnz int, start time.Time) {
	if start.IsZero() {
		return
	}
	secs := time.Since(start).Seconds()
	ki := &kernelInstrs[f]
	ki.calls.Inc()
	ki.nnz.Observe(float64(nnz))
	if secs > 0 {
		ki.rowsPS.Observe(float64(rows) / secs)
		ki.nnzPS.Observe(float64(nnz) / secs)
	}
}
