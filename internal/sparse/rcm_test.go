package sparse

import (
	"math/rand"
	"testing"
)

func TestRCMRecoversBandedStructure(t *testing.T) {
	// Build a banded matrix, destroy its ordering with a random
	// symmetric permutation, then check RCM recovers a small bandwidth.
	rng := rand.New(rand.NewSource(1))
	n, band := 300, 4
	tr := NewTriplet(n, n)
	for i := 0; i < n; i++ {
		for j := i - band; j <= i+band; j++ {
			if j >= 0 && j < n {
				_ = tr.Add(i, j, 1)
			}
		}
	}
	banded := tr.ToCSR()
	origBW := Bandwidth(banded)

	shufflePerm := rng.Perm(n)
	shuffled, err := banded.Permute(shufflePerm, shufflePerm)
	if err != nil {
		t.Fatal(err)
	}
	if Bandwidth(shuffled) < n/4 {
		t.Fatalf("shuffle did not destroy locality (bw %d)", Bandwidth(shuffled))
	}

	perm, err := RCM(shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if err := checkPermutation(perm, n); err != nil {
		t.Fatalf("RCM output not a permutation: %v", err)
	}
	restored, err := shuffled.Permute(perm, perm)
	if err != nil {
		t.Fatal(err)
	}
	got := Bandwidth(restored)
	if got > 3*origBW {
		t.Errorf("RCM bandwidth %d, original %d, shuffled %d", got, origBW, Bandwidth(shuffled))
	}
}

func TestRCMHandlesDisconnectedComponents(t *testing.T) {
	// Two disjoint chains plus an isolated vertex.
	tr := NewTriplet(9, 9)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {4, 5}, {5, 6}} {
		_ = tr.Add(e[0], e[1], 1)
		_ = tr.Add(e[1], e[0], 1)
	}
	_ = tr.Add(8, 8, 1)
	m := tr.ToCSR()
	perm, err := RCM(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := checkPermutation(perm, 9); err != nil {
		t.Fatalf("not a permutation: %v", err)
	}
}

func TestRCMRejectsRectangular(t *testing.T) {
	tr := NewTriplet(3, 4)
	_ = tr.Add(0, 0, 1)
	if _, err := RCM(tr.ToCSR()); err == nil {
		t.Error("rectangular matrix accepted")
	}
}

func TestRCMAsymmetricPattern(t *testing.T) {
	// Strictly upper-triangular chain: symmetrisation must connect it.
	tr := NewTriplet(6, 6)
	for i := 0; i < 5; i++ {
		_ = tr.Add(i, i+1, 1)
	}
	m := tr.ToCSR()
	perm, err := RCM(m)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Permute(perm, perm)
	if err != nil {
		t.Fatal(err)
	}
	if bw := Bandwidth(p); bw != 1 {
		t.Errorf("chain bandwidth after RCM = %d, want 1", bw)
	}
}

func TestBandwidth(t *testing.T) {
	tr := NewTriplet(5, 5)
	_ = tr.Add(0, 0, 1)
	_ = tr.Add(4, 1, 1)
	if bw := Bandwidth(tr.ToCSR()); bw != 3 {
		t.Errorf("Bandwidth = %d, want 3", bw)
	}
	empty := NewTriplet(3, 3)
	_ = empty.Add(1, 1, 1)
	if bw := Bandwidth(empty.ToCSR()); bw != 0 {
		t.Errorf("diagonal Bandwidth = %d, want 0", bw)
	}
}
