package sparse

import (
	"compress/gzip"
	"fmt"
	"os"
	"strings"
)

// ReadMatrixMarketFile reads a MatrixMarket file from disk, transparently
// decompressing ".gz" files — the form in which the SuiteSparse
// collection distributes its matrices.
func ReadMatrixMarketFile(path string) (*CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("sparse: opening %s: %w", path, err)
	}
	defer f.Close()
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("sparse: decompressing %s: %w", path, err)
		}
		defer gz.Close()
		m, err := ReadMatrixMarket(gz)
		if err != nil {
			return nil, fmt.Errorf("sparse: reading %s: %w", path, err)
		}
		return m, nil
	}
	m, err := ReadMatrixMarket(f)
	if err != nil {
		return nil, fmt.Errorf("sparse: reading %s: %w", path, err)
	}
	return m, nil
}

// WriteMatrixMarketFile writes a matrix to disk, gzip-compressing when
// the path ends in ".gz".
func WriteMatrixMarketFile(path string, m Matrix) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("sparse: creating %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("sparse: closing %s: %w", path, cerr)
		}
	}()
	if strings.HasSuffix(path, ".gz") {
		gz := gzip.NewWriter(f)
		if err := WriteMatrixMarket(gz, m); err != nil {
			return fmt.Errorf("sparse: writing %s: %w", path, err)
		}
		if err := gz.Close(); err != nil {
			return fmt.Errorf("sparse: flushing %s: %w", path, err)
		}
		return nil
	}
	if err := WriteMatrixMarket(f, m); err != nil {
		return fmt.Errorf("sparse: writing %s: %w", path, err)
	}
	return nil
}
