package sparse

import "fmt"

// SpMM computes the sparse-times-dense-block product Y = A*X, where X
// holds k right-hand-side vectors column-major (X[j*cols : (j+1)*cols]
// is column j) and Y receives k result vectors laid out the same way.
// Multi-vector products are the workhorse of blocked Krylov methods and
// of the sparse-DNN workloads the paper's introduction motivates; over
// CSR the row structure is walked once per row for all k columns, which
// amortises the index traffic that dominates single-vector SpMV.
func (m *CSR) SpMM(y, x []float64, k int) error {
	if k <= 0 {
		return fmt.Errorf("sparse: SpMM with %d columns", k)
	}
	if len(x) != m.cols*k || len(y) != m.rows*k {
		return fmt.Errorf("%w: SpMM with %dx%d matrix, k=%d, len(x)=%d, len(y)=%d",
			ErrDimension, m.rows, m.cols, k, len(x), len(y))
	}
	for i := 0; i < m.rows; i++ {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		for j := 0; j < k; j++ {
			xcol := x[j*m.cols : (j+1)*m.cols]
			sum := 0.0
			for p := lo; p < hi; p++ {
				sum += m.vals[p] * xcol[m.colIdx[p]]
			}
			y[j*m.rows+i] = sum
		}
	}
	return nil
}

// MultiSpMV computes Y = A*X for any Matrix by running the format's SpMV
// kernel once per column; it is the generic fallback SpMM for formats
// without a fused kernel.
func MultiSpMV(m Matrix, y, x []float64, k int) error {
	rows, cols := m.Dims()
	if k <= 0 {
		return fmt.Errorf("sparse: MultiSpMV with %d columns", k)
	}
	if len(x) != cols*k || len(y) != rows*k {
		return fmt.Errorf("%w: MultiSpMV with %dx%d matrix, k=%d, len(x)=%d, len(y)=%d",
			ErrDimension, rows, cols, k, len(x), len(y))
	}
	for j := 0; j < k; j++ {
		if err := m.SpMV(y[j*rows:(j+1)*rows], x[j*cols:(j+1)*cols]); err != nil {
			return err
		}
	}
	return nil
}
