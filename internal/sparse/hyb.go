package sparse

import (
	"fmt"

	"repro/internal/obs"
)

// HYB is the hybrid format: an ELL slab of fixed width holding the
// "typical" prefix of each row, and a COO tail holding the overflow of
// rows with more nonzeros than the slab width. It keeps ELL's coalescing
// for the bulk of the matrix while bounding the padding blow-up.
type HYB struct {
	rows, cols int
	nnz        int
	ell        *ELL
	coo        *COO // nil when no row overflows
}

// hybRelativeSpeed mirrors CUSP's hyb conversion heuristic: the ELL slab
// width is the largest w such that at least rows/hybRelativeSpeed rows
// have w or more nonzeros, so padding stays profitable relative to the
// COO tail.
const hybRelativeSpeed = 3

// HybWidthFromHistogram computes the ELL slab width CUSP's heuristic
// would choose for the given row-length histogram (hist[k] = number of
// rows with exactly k nonzeros) and row count. Exposed so the feature
// extractor computes hyb_* features without materialising the format.
func HybWidthFromHistogram(hist []int, rows int) int {
	// atLeast[k] = rows with >= k nonzeros, computed by suffix summation.
	width := 0
	atLeast := 0
	for k := len(hist) - 1; k >= 1; k-- {
		atLeast += hist[k]
		if atLeast*hybRelativeSpeed >= rows {
			width = k
			break
		}
	}
	return width
}

// NewHYBFromCSR converts a CSR matrix to HYB using the CUSP width
// heuristic.
func NewHYBFromCSR(a *CSR) (*HYB, error) {
	maxRow := 0
	for i := 0; i < a.rows; i++ {
		if n := a.RowNNZ(i); n > maxRow {
			maxRow = n
		}
	}
	hist := make([]int, maxRow+1)
	for i := 0; i < a.rows; i++ {
		hist[a.RowNNZ(i)]++
	}
	width := HybWidthFromHistogram(hist, a.rows)
	return newHYBWithWidth(a, width)
}

func newHYBWithWidth(a *CSR, width int) (*HYB, error) {
	if width < 0 {
		return nil, fmt.Errorf("sparse: HYB with negative width %d", width)
	}
	slab := a.rows * width
	ell := &ELL{
		rows:   a.rows,
		cols:   a.cols,
		width:  width,
		colIdx: make([]int32, slab),
		vals:   make([]float64, slab),
	}
	for i := range ell.colIdx {
		ell.colIdx[i] = PadIdx
	}
	var cooR, cooC []int32
	var cooV []float64
	for i := 0; i < a.rows; i++ {
		slot := 0
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			if slot < width {
				p := slot*a.rows + i
				ell.colIdx[p] = a.colIdx[k]
				ell.vals[p] = a.vals[k]
				ell.nnz++
			} else {
				cooR = append(cooR, int32(i))
				cooC = append(cooC, a.colIdx[k])
				cooV = append(cooV, a.vals[k])
			}
			slot++
		}
	}
	h := &HYB{rows: a.rows, cols: a.cols, nnz: a.NNZ(), ell: ell}
	if len(cooV) > 0 {
		coo, err := NewCOO(a.rows, a.cols, cooR, cooC, cooV)
		if err != nil {
			return nil, fmt.Errorf("sparse: HYB COO tail: %w", err)
		}
		h.coo = coo
	}
	return h, nil
}

// Dims returns the matrix dimensions.
func (m *HYB) Dims() (rows, cols int) { return m.rows, m.cols }

// NNZ returns the number of true entries across both parts.
func (m *HYB) NNZ() int { return m.nnz }

// Format returns FormatHYB.
func (m *HYB) Format() Format { return FormatHYB }

// ELLWidth returns the width of the ELL part.
func (m *HYB) ELLWidth() int { return m.ell.width }

// ELLNNZ returns the number of true entries stored in the ELL part
// (the paper's hyb_ell_frac numerator).
func (m *HYB) ELLNNZ() int { return m.ell.nnz }

// COONNZ returns the number of entries in the COO tail (the paper's
// hyb_coo feature).
func (m *HYB) COONNZ() int {
	if m.coo == nil {
		return 0
	}
	return m.coo.NNZ()
}

// SlabSize returns the total ELL slot count including padding (the
// paper's hyb_ell_size feature).
func (m *HYB) SlabSize() int { return m.ell.SlabSize() }

// SpMV computes y = A*x: the ELL part writes y, then the COO tail
// accumulates into it.
func (m *HYB) SpMV(y, x []float64) error {
	if err := checkSpMVDims(m, y, x); err != nil {
		return err
	}
	start := obs.Now()
	m.ell.spmvKernel(y, x)
	if m.coo != nil {
		for k, v := range m.coo.vals {
			y[m.coo.rowIdx[k]] += v * x[m.coo.colIdx[k]]
		}
	}
	observeKernel(FormatHYB, m.rows, m.nnz, start)
	return nil
}

// ToCSR converts the matrix back to canonical CSR.
func (m *HYB) ToCSR() *CSR {
	t := NewTriplet(m.rows, m.cols)
	t.Reserve(m.nnz)
	for s := 0; s < m.ell.width; s++ {
		base := s * m.rows
		for i := 0; i < m.rows; i++ {
			if c := m.ell.colIdx[base+i]; c != PadIdx {
				_ = t.Add(i, int(c), m.ell.vals[base+i])
			}
		}
	}
	if m.coo != nil {
		for k, v := range m.coo.vals {
			_ = t.Add(int(m.coo.rowIdx[k]), int(m.coo.colIdx[k]), v)
		}
	}
	return t.ToCSR()
}
