package sparse

import (
	"fmt"

	"repro/internal/obs"
)

// SELL is the sliced ELLPACK format (Kreutzer et al., SIAM J. Sci.
// Comput. 2014, discussed in the paper's related work): rows are
// partitioned into slices of fixed height, and each slice is stored
// ELL-style with its own width — the maximum row length within the
// slice. Padding is bounded per slice instead of per matrix, which tames
// ELL's blow-up on moderately skewed matrices while keeping coalesced
// slice-column-major access.
//
// SELL is not one of the paper's four benchmarked formats; it powers
// this repository's five-format extension experiment (see
// BenchmarkExtensionFiveFormats).
type SELL struct {
	rows, cols int
	slice      int // slice height
	nnz        int
	sliceOff   []int32 // per-slice start offset into colIdx/vals
	sliceWidth []int32 // per-slice ELL width
	colIdx     []int32 // padded, slice-column-major; PadIdx for padding
	vals       []float64
}

// DefaultSliceHeight matches the warp size the GPU kernels schedule by.
const DefaultSliceHeight = 32

// NewSELLFromCSR converts a CSR matrix to SELL with the given slice
// height (<= 0 selects DefaultSliceHeight).
func NewSELLFromCSR(a *CSR, sliceHeight int) (*SELL, error) {
	if sliceHeight <= 0 {
		sliceHeight = DefaultSliceHeight
	}
	nSlices := (a.rows + sliceHeight - 1) / sliceHeight
	m := &SELL{
		rows: a.rows, cols: a.cols, slice: sliceHeight, nnz: a.NNZ(),
		sliceOff:   make([]int32, nSlices+1),
		sliceWidth: make([]int32, nSlices),
	}
	total := 0
	for s := 0; s < nSlices; s++ {
		lo := s * sliceHeight
		hi := lo + sliceHeight
		if hi > a.rows {
			hi = a.rows
		}
		w := 0
		for i := lo; i < hi; i++ {
			if n := a.RowNNZ(i); n > w {
				w = n
			}
		}
		m.sliceWidth[s] = int32(w)
		m.sliceOff[s] = int32(total)
		total += w * (hi - lo)
	}
	m.sliceOff[nSlices] = int32(total)

	m.colIdx = make([]int32, total)
	m.vals = make([]float64, total)
	for i := range m.colIdx {
		m.colIdx[i] = PadIdx
	}
	for s := 0; s < nSlices; s++ {
		lo := s * sliceHeight
		hi := lo + sliceHeight
		if hi > a.rows {
			hi = a.rows
		}
		height := hi - lo
		base := int(m.sliceOff[s])
		for i := lo; i < hi; i++ {
			slot := 0
			for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
				p := base + slot*height + (i - lo) // slice-column-major
				m.colIdx[p] = a.colIdx[k]
				m.vals[p] = a.vals[k]
				slot++
			}
		}
	}
	return m, nil
}

// Dims returns the matrix dimensions.
func (m *SELL) Dims() (rows, cols int) { return m.rows, m.cols }

// NNZ returns the number of true entries.
func (m *SELL) NNZ() int { return m.nnz }

// Format returns FormatSELL.
func (m *SELL) Format() Format { return FormatSELL }

// SliceHeight returns the slice height.
func (m *SELL) SliceHeight() int { return m.slice }

// SlabSize returns the total number of stored slots including padding;
// always between NNZ and the full-ELL slab size.
func (m *SELL) SlabSize() int { return len(m.vals) }

// NumSlices returns the number of row slices.
func (m *SELL) NumSlices() int { return len(m.sliceWidth) }

// SpMV computes y = A*x walking each slice column-major.
func (m *SELL) SpMV(y, x []float64) error {
	if err := checkSpMVDims(m, y, x); err != nil {
		return err
	}
	start := obs.Now()
	for i := range y {
		y[i] = 0
	}
	for s := 0; s < len(m.sliceWidth); s++ {
		lo := s * m.slice
		hi := lo + m.slice
		if hi > m.rows {
			hi = m.rows
		}
		height := hi - lo
		base := int(m.sliceOff[s])
		for slot := 0; slot < int(m.sliceWidth[s]); slot++ {
			col := base + slot*height
			for r := 0; r < height; r++ {
				if c := m.colIdx[col+r]; c != PadIdx {
					y[lo+r] += m.vals[col+r] * x[c]
				}
			}
		}
	}
	observeKernel(FormatSELL, m.rows, m.nnz, start)
	return nil
}

// ToCSR converts the matrix back to canonical CSR.
func (m *SELL) ToCSR() *CSR {
	t := NewTriplet(m.rows, m.cols)
	t.Reserve(m.nnz)
	for s := 0; s < len(m.sliceWidth); s++ {
		lo := s * m.slice
		hi := lo + m.slice
		if hi > m.rows {
			hi = m.rows
		}
		height := hi - lo
		base := int(m.sliceOff[s])
		for slot := 0; slot < int(m.sliceWidth[s]); slot++ {
			col := base + slot*height
			for r := 0; r < height; r++ {
				if c := m.colIdx[col+r]; c != PadIdx {
					_ = t.Add(lo+r, int(c), m.vals[col+r])
				}
			}
		}
	}
	return t.ToCSR()
}

var _ Matrix = (*SELL)(nil)

func init() {
	// Guard against the format enum and the conversion switch drifting
	// apart; Convert must know every format.
	if _, err := ParseFormat("SELL"); err != nil {
		panic(fmt.Sprintf("sparse: SELL not registered in ParseFormat: %v", err))
	}
}
