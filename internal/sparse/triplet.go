package sparse

import (
	"fmt"
	"sort"
)

// Triplet accumulates (row, col, value) entries in arbitrary order and
// produces a canonical CSR matrix. Duplicate coordinates are summed, and
// explicit zeros are dropped, matching the semantics of MatrixMarket
// assembly. The zero value is not usable; call NewTriplet.
type Triplet struct {
	rows, cols int
	r, c       []int32
	v          []float64
}

// NewTriplet returns an empty accumulator for a rows x cols matrix.
// It panics if either dimension is not positive, since a matrix with a
// zero dimension cannot participate in SpMV.
func NewTriplet(rows, cols int) *Triplet {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("sparse: NewTriplet(%d, %d): dimensions must be positive", rows, cols))
	}
	return &Triplet{rows: rows, cols: cols}
}

// Dims returns the logical dimensions of the matrix under construction.
func (t *Triplet) Dims() (rows, cols int) { return t.rows, t.cols }

// Len returns the number of accumulated entries, counting duplicates.
func (t *Triplet) Len() int { return len(t.v) }

// Add appends one entry. Entries may repeat; they are summed in ToCSR.
func (t *Triplet) Add(row, col int, v float64) error {
	if row < 0 || row >= t.rows || col < 0 || col >= t.cols {
		return fmt.Errorf("%w: (%d, %d) outside %dx%d", ErrIndexRange, row, col, t.rows, t.cols)
	}
	t.r = append(t.r, int32(row))
	t.c = append(t.c, int32(col))
	t.v = append(t.v, v)
	return nil
}

// Reserve pre-allocates capacity for n entries.
func (t *Triplet) Reserve(n int) {
	if cap(t.r) < n {
		r := make([]int32, len(t.r), n)
		copy(r, t.r)
		t.r = r
		c := make([]int32, len(t.c), n)
		copy(c, t.c)
		t.c = c
		v := make([]float64, len(t.v), n)
		copy(v, t.v)
		t.v = v
	}
}

// ToCSR sorts the accumulated entries, sums duplicates, drops explicit
// zeros and returns the canonical CSR matrix. The Triplet remains valid
// and may keep accumulating entries afterwards.
//
// Assembly is a counting sort by row (O(nnz + rows)) followed by a
// per-row column sort, rather than a global comparison sort, so building
// large collections stays cheap.
func (t *Triplet) ToCSR() *CSR {
	var s ParseScratch
	return assembleCSR(t.rows, t.cols, t.r, t.c, t.v, &s)
}

// sortRow sorts one row's columns (and values in lockstep): insertion
// sort for the short rows that dominate sparse matrices, sort.Sort above
// a threshold.
func sortRow(c []int32, v []float64) {
	if len(c) <= 24 {
		for i := 1; i < len(c); i++ {
			cc, vv := c[i], v[i]
			j := i - 1
			for j >= 0 && c[j] > cc {
				c[j+1], v[j+1] = c[j], v[j]
				j--
			}
			c[j+1], v[j+1] = cc, vv
		}
		return
	}
	sort.Sort(&rowSorter{c: c, v: v})
}

type rowSorter struct {
	c []int32
	v []float64
}

func (s *rowSorter) Len() int           { return len(s.c) }
func (s *rowSorter) Less(i, j int) bool { return s.c[i] < s.c[j] }
func (s *rowSorter) Swap(i, j int) {
	s.c[i], s.c[j] = s.c[j], s.c[i]
	s.v[i], s.v[j] = s.v[j], s.v[i]
}
