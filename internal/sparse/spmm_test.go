package sparse

import (
	"math/rand"
	"testing"
)

func TestSpMMMatchesRepeatedSpMV(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	const k = 4
	for _, sh := range []struct{ r, c int }{{5, 7}, {50, 40}, {1, 1}} {
		a := randomCSR(t, rng, sh.r, sh.c, 0.25)
		x := make([]float64, sh.c*k)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := make([]float64, sh.r*k)
		if err := a.SpMM(y, x, k); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < k; j++ {
			want := make([]float64, sh.r)
			if err := a.SpMV(want, x[j*sh.c:(j+1)*sh.c]); err != nil {
				t.Fatal(err)
			}
			if !almostEqual(y[j*sh.r:(j+1)*sh.r], want, 1e-12) {
				t.Errorf("%dx%d column %d: SpMM disagrees with SpMV", sh.r, sh.c, j)
			}
		}
		// The generic fallback must agree too, over every format.
		for _, f := range KernelFormats() {
			conv, err := Convert(a, f)
			if err != nil {
				continue
			}
			yg := make([]float64, sh.r*k)
			if err := MultiSpMV(conv, yg, x, k); err != nil {
				t.Fatal(err)
			}
			if !almostEqual(yg, y, 1e-12) {
				t.Errorf("%dx%d %v: MultiSpMV disagrees with SpMM", sh.r, sh.c, f)
			}
		}
	}
}

func TestSpMMValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	a := randomCSR(t, rng, 4, 5, 0.5)
	if err := a.SpMM(make([]float64, 8), make([]float64, 10), 0); err == nil {
		t.Error("k=0 accepted")
	}
	if err := a.SpMM(make([]float64, 8), make([]float64, 9), 2); err == nil {
		t.Error("short x accepted")
	}
	if err := a.SpMM(make([]float64, 7), make([]float64, 10), 2); err == nil {
		t.Error("short y accepted")
	}
	if err := MultiSpMV(a, make([]float64, 8), make([]float64, 9), 2); err == nil {
		t.Error("MultiSpMV short x accepted")
	}
	if err := MultiSpMV(a, make([]float64, 8), make([]float64, 10), 0); err == nil {
		t.Error("MultiSpMV k=0 accepted")
	}
}
