// Package sparse implements the sparse matrix storage formats and SpMV
// kernels evaluated by Dhandhania et al. (ICPP Workshops 2021): COO, CSR,
// ELL, HYB and DIA, together with conversions between them, MatrixMarket
// I/O, and serial as well as parallel matrix-vector multiplication.
//
// All formats store float64 values with zero-based int32 indices (matching
// the 32-bit index arrays used by CUSP on the GPU). A matrix is built
// either from a Triplet accumulator or converted from another format.
//
// The canonical interchange format is CSR: every other format converts
// to and from it, mirroring the benchmarking workflow of the paper where
// matrices are read into CSR and then converted per kernel.
package sparse

import (
	"errors"
	"fmt"
)

// Format enumerates the sparse storage formats known to this library.
type Format int

// The storage formats evaluated in the paper. DIA is implemented because
// several Table 1 features (diagonals, dia_size, dia_frac) describe the
// DIA structure even though the paper's GPU benchmark uses only the first
// four formats.
const (
	FormatCOO Format = iota
	FormatCSR
	FormatELL
	FormatHYB
	FormatDIA
	// FormatSELL is sliced ELLPACK, an extension format beyond the
	// paper's benchmark set (see the SELL type).
	FormatSELL
	// FormatCSC is compressed sparse column, a library-completeness
	// format (see the CSC type).
	FormatCSC
	// FormatJDS is jagged diagonal storage, an extension format (see the
	// JDS type).
	FormatJDS
)

// NumKernelFormats is the number of formats benchmarked for format
// selection (CSR, COO, ELL, HYB); DIA is excluded, as in the paper.
const NumKernelFormats = 4

// KernelFormats lists the formats that participate in format selection,
// in the order used by label vectors throughout the repository.
func KernelFormats() []Format {
	return []Format{FormatCOO, FormatCSR, FormatELL, FormatHYB}
}

// String returns the conventional upper-case name of the format.
func (f Format) String() string {
	switch f {
	case FormatCOO:
		return "COO"
	case FormatCSR:
		return "CSR"
	case FormatELL:
		return "ELL"
	case FormatHYB:
		return "HYB"
	case FormatDIA:
		return "DIA"
	case FormatSELL:
		return "SELL"
	case FormatCSC:
		return "CSC"
	case FormatJDS:
		return "JDS"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// ParseFormat converts a format name such as "CSR" (case-sensitive) to a
// Format value.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "COO":
		return FormatCOO, nil
	case "CSR":
		return FormatCSR, nil
	case "ELL":
		return FormatELL, nil
	case "HYB":
		return FormatHYB, nil
	case "DIA":
		return FormatDIA, nil
	case "SELL":
		return FormatSELL, nil
	case "CSC":
		return FormatCSC, nil
	case "JDS":
		return FormatJDS, nil
	default:
		return 0, fmt.Errorf("sparse: unknown format %q", s)
	}
}

// Matrix is the interface satisfied by every storage format. SpMV computes
// y = A*x; implementations must not retain x or y.
type Matrix interface {
	// Dims returns the number of rows and columns.
	Dims() (rows, cols int)
	// NNZ returns the number of explicitly stored nonzero entries.
	NNZ() int
	// Format identifies the storage format.
	Format() Format
	// SpMV computes y = A*x. len(x) must equal the column count and
	// len(y) the row count.
	SpMV(y, x []float64) error
}

// Errors shared by the format implementations.
var (
	// ErrDimension reports an SpMV vector length mismatch.
	ErrDimension = errors.New("sparse: dimension mismatch")
	// ErrIndexRange reports an out-of-range row or column index.
	ErrIndexRange = errors.New("sparse: index out of range")
	// ErrTooLarge reports that a format's dense-ish structure (ELL, DIA)
	// would exceed the configured size limit; CUSP raises the analogous
	// format_conversion_exception, and the paper drops such matrices.
	ErrTooLarge = errors.New("sparse: format structure exceeds size limit")
)

func checkSpMVDims(m Matrix, y, x []float64) error {
	r, c := m.Dims()
	if len(x) != c || len(y) != r {
		return fmt.Errorf("%w: %s SpMV with %dx%d matrix, len(x)=%d, len(y)=%d",
			ErrDimension, m.Format(), r, c, len(x), len(y))
	}
	return nil
}
