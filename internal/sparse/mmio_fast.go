package sparse

import (
	"bytes"
	"fmt"
	"math"
	"math/big"
	"math/bits"
	"strconv"
	"sync"
	"unicode/utf8"
	"unsafe"
)

// The byte-level MatrixMarket fast path. ReadMatrixMarketBytes parses
// the in-memory body directly — no bufio.Scanner, no strings.Fields, no
// fmt.Sscan — with hand-rolled integer/float tokenizers and pooled
// triplet/CSR scratch, producing byte-identical CSR output to the
// streaming reader (same assembly algorithm, same float rounding, same
// accept/reject verdicts). Inputs the byte parser cannot model
// bit-for-bit (non-ASCII whitespace, lines past the streaming scanner's
// token limit) fall back to ReadMatrixMarket transparently, so the two
// entry points can never disagree.

// ParseScratch holds the reusable buffers one MatrixMarket parse needs:
// the triplet accumulator and the CSR-assembly staging arrays. The zero
// value is ready to use; a scratch amortises parse allocations to the
// (rare) regrowth of these buffers, mirroring features.Scratch on the
// extraction side. A ParseScratch must not be shared concurrently.
type ParseScratch struct {
	// Triplet accumulator (row, col, value per entry).
	r, c []int32
	v    []float64
	// CSR assembly: counting-sort offsets and per-row staging.
	start, pos []int32
	cs         []int32
	vs         []float64
}

var parseScratchPool = sync.Pool{New: func() any { return new(ParseScratch) }}

// GetParseScratch returns a pooled scratch. Return it with
// PutParseScratch when the parse (and any use of the returned CSR's
// construction) is done; the CSR itself never aliases scratch memory.
func GetParseScratch() *ParseScratch {
	return parseScratchPool.Get().(*ParseScratch)
}

// PutParseScratch returns a scratch to the pool. nil is a no-op.
func PutParseScratch(s *ParseScratch) {
	if s != nil {
		parseScratchPool.Put(s)
	}
}

func grow32(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growF64(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// assembleCSR builds the canonical CSR from unordered triplets: counting
// sort by row, per-row column sort, duplicate summing, explicit-zero
// dropping. It is the single assembly used by both Triplet.ToCSR and the
// byte fast path, so the two produce bit-identical values (the per-row
// sort is not stable, and duplicate-sum order depends on it). Staging
// buffers come from s; the returned CSR owns fresh memory.
func assembleCSR(rows, cols int, r, c []int32, v []float64, s *ParseScratch) *CSR {
	n := len(v)
	start := grow32(&s.start, rows+1)
	clear(start)
	for _, ri := range r {
		start[ri+1]++
	}
	for i := 0; i < rows; i++ {
		start[i+1] += start[i]
	}
	pos := grow32(&s.pos, rows)
	copy(pos, start[:rows])
	cScratch := grow32(&s.cs, n)
	vScratch := growF64(&s.vs, n)
	for k := 0; k < n; k++ {
		p := pos[r[k]]
		pos[r[k]]++
		cScratch[p] = c[k]
		vScratch[p] = v[k]
	}

	rowPtr := make([]int32, rows+1)
	colIdx := make([]int32, 0, n)
	vals := make([]float64, 0, n)
	for i := 0; i < rows; i++ {
		lo, hi := int(start[i]), int(start[i+1])
		seg := cScratch[lo:hi]
		vseg := vScratch[lo:hi]
		sortRow(seg, vseg)
		// Merge duplicates and drop zeros.
		for k := 0; k < len(seg); {
			j := k + 1
			sum := vseg[k]
			for j < len(seg) && seg[j] == seg[k] {
				sum += vseg[j]
				j++
			}
			if sum != 0 {
				colIdx = append(colIdx, seg[k])
				vals = append(vals, sum)
				rowPtr[i+1]++
			}
			k = j
		}
	}
	for i := 0; i < rows; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	return &CSR{rows: rows, cols: cols, rowPtr: rowPtr, colIdx: colIdx, vals: vals}
}

// ReadMatrixMarketBytes parses an in-memory MatrixMarket coordinate
// body into CSR — the entry point for request bodies that were already
// read (and size-bounded) by a network handler. It runs the byte-level
// fast path over a pooled scratch; output and verdicts are identical to
// ReadMatrixMarket over the same bytes.
func ReadMatrixMarketBytes(data []byte) (*CSR, error) {
	s := GetParseScratch()
	defer PutParseScratch(s)
	return ReadMatrixMarketBytesScratch(data, s)
}

// ReadMatrixMarketBytesScratch is ReadMatrixMarketBytes over an
// explicit scratch, for callers (batch workers, benchmarks) that hold
// one scratch across many parses.
func ReadMatrixMarketBytesScratch(data []byte, s *ParseScratch) (*CSR, error) {
	m, handled, err := readMatrixMarketFast(data, s)
	if !handled {
		return ReadMatrixMarket(bytes.NewReader(data))
	}
	return m, err
}

// maxLineLen mirrors the streaming reader's bufio.Scanner token cap;
// lines near it fall back to the streaming path so over-long-line
// verdicts stay identical.
const maxLineLen = 1 << 24

// byteLines iterates '\n'-separated lines of an in-memory buffer with
// bufio.ScanLines semantics: the terminator and one trailing '\r' are
// stripped, and a final unterminated line is returned.
type byteLines struct {
	data []byte
	pos  int
}

func (b *byteLines) next() (line []byte, ok bool) {
	if b.pos >= len(b.data) {
		return nil, false
	}
	rest := b.data[b.pos:]
	if i := bytes.IndexByte(rest, '\n'); i >= 0 {
		line = rest[:i]
		b.pos += i + 1
	} else {
		line = rest
		b.pos = len(b.data)
	}
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, true
}

// isSpaceASCII matches unicode.IsSpace restricted to single-byte runes —
// the separator set strings.Fields uses on pure-ASCII input.
func isSpaceASCII(b byte) bool {
	switch b {
	case ' ', '\t', '\n', '\v', '\f', '\r':
		return true
	}
	return false
}

// nextTok returns the next ASCII-whitespace-separated token of line
// starting at *i. ok is false when the line is exhausted. fallback is
// true when a byte >= 0x80 is seen before the token ends: Unicode
// whitespace could split the line differently than the ASCII rules, so
// the caller must re-parse with the streaming reader.
func nextTok(line []byte, i *int) (tok []byte, ok, fallback bool) {
	j := *i
	for j < len(line) {
		b := line[j]
		if b >= utf8.RuneSelf {
			return nil, false, true
		}
		if !isSpaceASCII(b) {
			break
		}
		j++
	}
	if j >= len(line) {
		*i = j
		return nil, false, false
	}
	k := j
	for k < len(line) {
		b := line[k]
		if b >= utf8.RuneSelf {
			return nil, false, true
		}
		if isSpaceASCII(b) {
			break
		}
		k++
	}
	*i = k
	return line[j:k], true, false
}

type lineKind int

const (
	lineData lineKind = iota
	lineSkip
	lineFallback
)

// classifyLine decides blank/comment/data by the streaming reader's
// rules (TrimSpace + "%" prefix) using ASCII whitespace only; a high
// byte seen before the decision is settled forces a fallback, since
// Unicode trimming could reclassify the line.
func classifyLine(line []byte) lineKind {
	for _, b := range line {
		if b >= utf8.RuneSelf {
			return lineFallback
		}
		if isSpaceASCII(b) {
			continue
		}
		if b == '%' {
			return lineSkip
		}
		return lineData
	}
	return lineSkip
}

// asciiLowerEq reports tok == want after ASCII lowercasing of tok
// (callers have already established tok is pure ASCII).
func asciiLowerEq(tok []byte, want string) bool {
	if len(tok) != len(want) {
		return false
	}
	for i := 0; i < len(tok); i++ {
		b := tok[i]
		if 'A' <= b && b <= 'Z' {
			b += 'a' - 'A'
		}
		if b != want[i] {
			return false
		}
	}
	return true
}

// asciiLower allocates a lowercased copy — error paths only.
func asciiLower(tok []byte) string {
	out := make([]byte, len(tok))
	for i, b := range tok {
		if 'A' <= b && b <= 'Z' {
			b += 'a' - 'A'
		}
		out[i] = b
	}
	return string(out)
}

// parseIntBytes is strconv.Atoi over bytes: optional sign, at least one
// decimal digit, nothing else. Overflowing int64 reports !ok, matching
// Atoi's ErrRange rejection in the streaming reader.
func parseIntBytes(tok []byte) (int, bool) {
	if len(tok) == 0 {
		return 0, false
	}
	i := 0
	neg := false
	if tok[0] == '+' || tok[0] == '-' {
		neg = tok[0] == '-'
		i++
		if i == len(tok) {
			return 0, false
		}
	}
	for i < len(tok) && tok[i] == '0' {
		i++
	}
	var n uint64
	digits := 0
	for ; i < len(tok); i++ {
		b := tok[i]
		if b < '0' || b > '9' {
			return 0, false
		}
		digits++
		if digits > 19 { // past int64 range, no wraparound possible below
			return 0, false
		}
		n = n*10 + uint64(b-'0')
	}
	if neg {
		if n > 1<<63 {
			return 0, false
		}
		return -int(n), true
	}
	if n > math.MaxInt64 {
		return 0, false
	}
	return int(n), true
}

// pow10tab holds the exactly-representable powers of ten.
var pow10tab = [...]float64{
	1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
	1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// parseFloatFastPath converts tokens whose mantissa fits in 53 bits and
// whose decimal exponent is within ±22: float64(mant) and the power of
// ten are then both exact, so the single multiply/divide is correctly
// rounded (Clinger's fast path) — bit-identical to strconv.ParseFloat.
// Anything else (long mantissas, huge exponents, hex floats, inf/nan,
// underscores) reports !ok and goes to strconv itself.
func parseFloatFastPath(tok []byte) (float64, bool) {
	i, n := 0, len(tok)
	if n == 0 {
		return 0, false
	}
	neg := false
	if tok[0] == '+' || tok[0] == '-' {
		neg = tok[0] == '-'
		i++
	}
	// Integer digits, then an optional '.' and fraction digits. mant
	// accumulates the raw digit string; leading zeros multiply into it
	// harmlessly, and a total of <= 19 digits cannot overflow uint64.
	var mant uint64
	is := i
	for i < n {
		c := tok[i] - '0'
		if c > 9 {
			break
		}
		mant = mant*10 + uint64(c)
		i++
	}
	digits := i - is
	exp := 0 // decimal exponent of mant
	if i < n && tok[i] == '.' {
		i++
		fs := i
		for i < n {
			c := tok[i] - '0'
			if c > 9 {
				break
			}
			mant = mant*10 + uint64(c)
			i++
		}
		exp = fs - i
		digits += i - fs
	}
	if digits == 0 || digits > 19 {
		return 0, false
	}
	if i < n {
		if b := tok[i]; b != 'e' && b != 'E' {
			return 0, false
		}
		i++
		eneg := false
		if i < n && (tok[i] == '+' || tok[i] == '-') {
			eneg = tok[i] == '-'
			i++
		}
		if i >= n {
			return 0, false
		}
		ev := 0
		for ; i < n; i++ {
			b := tok[i]
			if b < '0' || b > '9' {
				return 0, false
			}
			ev = ev*10 + int(b-'0')
			if ev > 400 {
				return 0, false
			}
		}
		if eneg {
			ev = -ev
		}
		exp += ev
	}
	if mant == 0 {
		if neg {
			return math.Copysign(0, -1), true
		}
		return 0, true
	}
	if mant < 1<<53 && exp >= -22 && exp <= 22 {
		f := float64(mant)
		if exp > 0 {
			f *= pow10tab[exp]
		} else if exp < 0 {
			f /= pow10tab[-exp]
		}
		if neg {
			f = -f
		}
		return f, true
	}
	return elParse(mant, exp, neg)
}

// Eisel-Lemire decimal→binary conversion for the mantissa/exponent
// shapes Clinger's single-multiply path cannot handle exactly — in
// particular WriteMatrixMarket's own %.17g output, whose 17 significant
// digits exceed 2^53. The product of the exact decimal mantissa with a
// 128-bit rounded-up approximation of 10^q determines the correctly
// rounded float64 except in provably ambiguous cases, which report !ok
// and fall back to strconv's slow path.

const (
	elMinExp10 = -348
	elMaxExp10 = 347
)

// elPow10[q-elMinExp10] is the normalized 128-bit mantissa {lo, hi} of
// 10^q, rounded up. Generated at init from exact big-integer arithmetic
// (10^q and 5^q share mantissa bits) instead of an embedded table.
var elPow10 [elMaxExp10 - elMinExp10 + 1][2]uint64

func init() {
	one := big.NewInt(1)
	five := big.NewInt(5)
	mask64 := new(big.Int).Sub(new(big.Int).Lsh(one, 64), one)
	var m big.Int
	for q := elMinExp10; q <= elMaxExp10; q++ {
		if q >= 0 {
			m.Exp(five, big.NewInt(int64(q)), nil)
			if l := m.BitLen(); l <= 128 {
				m.Lsh(&m, uint(128-l))
			} else {
				shift := uint(l - 128)
				adj := new(big.Int).Sub(new(big.Int).Lsh(one, shift), one)
				m.Add(&m, adj)
				m.Rsh(&m, shift) // ceil(5^q / 2^shift)
			}
		} else {
			d := new(big.Int).Exp(five, big.NewInt(int64(-q)), nil)
			num := new(big.Int).Lsh(one, uint(127+d.BitLen()))
			num.Add(num, d)
			num.Sub(num, one)
			m.Div(num, d) // ceil(2^(127+bits(d)) / 5^-q)
		}
		if m.BitLen() != 128 {
			panic("sparse: power-of-ten table entry not normalized")
		}
		elPow10[q-elMinExp10][0] = new(big.Int).And(&m, mask64).Uint64()
		elPow10[q-elMinExp10][1] = new(big.Int).Rsh(&m, 64).Uint64()
	}
}

// elParse converts man × 10^exp10 (man ≠ 0, exactly the decimal digits
// — no truncation) to the correctly rounded float64. ok=false means the
// rounding is ambiguous at this precision, or the result is subnormal
// or out of range; the caller then defers to strconv.
func elParse(man uint64, exp10 int, neg bool) (float64, bool) {
	if exp10 < -307 || exp10 > 288 {
		return 0, false // may be subnormal or infinite: strconv decides
	}
	pow := &elPow10[exp10-elMinExp10]
	clz := bits.LeadingZeros64(man)
	w := man << uint(clz)
	exp2 := (217706*exp10)>>16 + 64 + 1023 - clz // 217706/2^16 ≈ log2(10)

	xHi, xLo := bits.Mul64(w, pow[1])
	if xHi&0x1FF == 0x1FF && xLo+w < w {
		// The truncated product is too close to a rounding boundary:
		// refine with the low word of the 128-bit power.
		yHi, yLo := bits.Mul64(w, pow[0])
		mergedHi, mergedLo := xHi, xLo+yHi
		if mergedLo < xLo {
			mergedHi++
		}
		if mergedHi&0x1FF == 0x1FF && mergedLo+1 == 0 && yLo+w < w {
			return 0, false // still ambiguous at 128 bits
		}
		xHi, xLo = mergedHi, mergedLo
	}

	msb := int(xHi >> 63)
	mantissa := xHi >> (uint(msb) + 9)
	exp2 -= 1 ^ msb

	if xLo == 0 && xHi&0x1FF == 0 && mantissa&3 == 1 {
		return 0, false // exactly half-way: round-to-even needs the full product
	}
	mantissa += mantissa & 1 // round up
	mantissa >>= 1
	if mantissa>>53 > 0 {
		mantissa >>= 1
		exp2++
	}
	if exp2 <= 0 || exp2 >= 0x7FF {
		return 0, false // subnormal or overflow: strconv decides
	}
	bits64 := uint64(exp2)<<52 | mantissa&0x000FFFFFFFFFFFFF
	if neg {
		bits64 |= 1 << 63
	}
	return math.Float64frombits(bits64), true
}

// bytesString views b as a string without copying. The result must not
// be retained past b's lifetime; strconv.ParseFloat's success path does
// not retain its argument.
func bytesString(b []byte) string {
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// parseFloatBytes parses tok exactly like strconv.ParseFloat(string(tok), 64)
// without allocating on the success path.
func parseFloatBytes(tok []byte) (float64, error) {
	if f, ok := parseFloatFastPath(tok); ok {
		return f, nil
	}
	f, err := strconv.ParseFloat(bytesString(tok), 64)
	if err != nil {
		// The error retains its input string; rebuild it over a stable
		// copy, since tok aliases a caller-owned request buffer.
		return strconv.ParseFloat(string(tok), 64)
	}
	return f, nil
}

type scanStatus int

const (
	scanOK scanStatus = iota
	scanEOL
	scanFallback
)

// Byte classes for the entry-section scanner: one table load replaces
// the whitespace switch plus the non-ASCII comparison.
const (
	clTok   = 0 // ordinary token byte
	clSpace = 1 // intra-line ASCII whitespace
	clEOL   = 2 // '\n'
	clHigh  = 3 // >= utf8.RuneSelf: fall back to the streaming reader
)

var byteClass [256]uint8

func init() {
	for _, c := range []byte{' ', '\t', '\v', '\f', '\r'} {
		byteClass[c] = clSpace
	}
	byteClass['\n'] = clEOL
	for i := utf8.RuneSelf; i < 256; i++ {
		byteClass[i] = clHigh
	}
}

// scanInt skips intra-line whitespace, then scans one token and parses
// it as a decimal integer in the same pass. ok=false with st==scanOK
// means the token [ts,te) did not match the inline grammar; the caller
// re-parses it with parseIntBytes, which delivers the final verdict.
func scanInt(data []byte, pos int) (v int, ts, te, newPos int, st scanStatus, ok bool) {
	n := len(data)
	for pos < n {
		c := byteClass[data[pos]]
		if c != clSpace {
			if c == clEOL {
				return 0, 0, 0, pos, scanEOL, false
			}
			if c == clHigh {
				return 0, 0, 0, pos, scanFallback, false
			}
			break
		}
		pos++
	}
	if pos == n {
		return 0, 0, 0, pos, scanEOL, false
	}
	ts = pos
	neg := false
	if b := data[pos]; b == '+' || b == '-' {
		neg = b == '-'
		pos++
	}
	ds := pos
	for pos < n && data[pos] == '0' {
		pos++
	}
	sig := pos
	var u uint64
	for pos < n {
		c := data[pos] - '0'
		if c > 9 {
			break
		}
		u = u*10 + uint64(c)
		pos++
	}
	nd := pos - sig
	hasDigits := pos > ds
	numEnd := pos
	// Scan to the actual token end; trailing junk or a non-ASCII byte
	// decides between slow-path reparse and streaming fallback.
	for pos < n {
		c := byteClass[data[pos]]
		if c != clTok {
			if c == clHigh {
				return 0, 0, 0, pos, scanFallback, false
			}
			break
		}
		pos++
	}
	te = pos
	if numEnd != te || !hasDigits || nd > 19 {
		return 0, ts, te, pos, scanOK, false
	}
	if neg {
		if u > 1<<63 {
			return 0, ts, te, pos, scanOK, false
		}
		return -int(u), ts, te, pos, scanOK, true
	}
	if u > math.MaxInt64 {
		return 0, ts, te, pos, scanOK, false
	}
	return int(u), ts, te, pos, scanOK, true
}

// scanFloat is scanInt's real-valued counterpart: token scan and float
// conversion fused into one pass over the bytes. ok=false with
// st==scanOK means [ts,te) needs parseFloatBytes (inf/nan/hex forms,
// >19 digits, or a provably ambiguous rounding).
func scanFloat(data []byte, pos int) (v float64, ts, te, newPos int, st scanStatus, ok bool) {
	n := len(data)
	for pos < n {
		c := byteClass[data[pos]]
		if c != clSpace {
			if c == clEOL {
				return 0, 0, 0, pos, scanEOL, false
			}
			if c == clHigh {
				return 0, 0, 0, pos, scanFallback, false
			}
			break
		}
		pos++
	}
	if pos == n {
		return 0, 0, 0, pos, scanEOL, false
	}
	ts = pos
	neg := false
	if b := data[pos]; b == '+' || b == '-' {
		neg = b == '-'
		pos++
	}
	var mant uint64
	is := pos
	for pos < n {
		c := data[pos] - '0'
		if c > 9 {
			break
		}
		mant = mant*10 + uint64(c)
		pos++
	}
	digits := pos - is
	exp := 0
	if pos < n && data[pos] == '.' {
		pos++
		fs := pos
		for pos < n {
			c := data[pos] - '0'
			if c > 9 {
				break
			}
			mant = mant*10 + uint64(c)
			pos++
		}
		exp = fs - pos
		digits += pos - fs
	}
	if digits > 0 && pos < n {
		if b := data[pos]; b == 'e' || b == 'E' {
			p := pos + 1
			eneg := false
			if p < n {
				if b := data[p]; b == '+' || b == '-' {
					eneg = b == '-'
					p++
				}
			}
			es := p
			ev := 0
			for p < n {
				c := data[p] - '0'
				if c > 9 {
					break
				}
				if ev < 10000 {
					ev = ev*10 + int(c)
				}
				p++
			}
			if p > es {
				// At least one exponent digit: part of the number. A
				// bare "e"/"e+" stays unconsumed and forces slow path.
				if eneg {
					ev = -ev
				}
				exp += ev
				pos = p
			}
		}
	}
	numEnd := pos
	for pos < n {
		c := byteClass[data[pos]]
		if c != clTok {
			if c == clHigh {
				return 0, 0, 0, pos, scanFallback, false
			}
			break
		}
		pos++
	}
	te = pos
	if numEnd != te || digits == 0 || digits > 19 {
		return 0, ts, te, pos, scanOK, false
	}
	if mant == 0 {
		if neg {
			return math.Copysign(0, -1), ts, te, pos, scanOK, true
		}
		return 0, ts, te, pos, scanOK, true
	}
	if mant < 1<<53 && exp >= -22 && exp <= 22 {
		f := float64(mant)
		if exp > 0 {
			f *= pow10tab[exp]
		} else if exp < 0 {
			f /= pow10tab[-exp]
		}
		if neg {
			f = -f
		}
		return f, ts, te, pos, scanOK, true
	}
	v, ok = elParse(mant, exp, neg)
	return v, ts, te, pos, scanOK, ok
}

// lineAt recovers the line starting at start for error messages,
// mirroring the scanner's trailing-\r strip.
func lineAt(data []byte, start int) []byte {
	l := data[start:]
	if j := bytes.IndexByte(l, '\n'); j >= 0 {
		l = l[:j]
	}
	if len(l) > 0 && l[len(l)-1] == '\r' {
		l = l[:len(l)-1]
	}
	return l
}

// readMatrixMarketFast is the byte-level parser. handled=false means
// the input needs the streaming reader (non-ASCII whitespace in a
// tokenized position, or a line at the scanner's token cap) — never an
// error, just "cannot promise identical verdicts".
func readMatrixMarketFast(data []byte, s *ParseScratch) (m *CSR, handled bool, err error) {
	const maxSafeLine = maxLineLen - 2
	bl := byteLines{data: data}

	line, ok := bl.next()
	if !ok {
		return nil, true, fmt.Errorf("sparse: empty MatrixMarket stream")
	}
	if len(line) > maxSafeLine {
		return nil, false, nil
	}
	var hdr [5][]byte
	nh := 0
	for i := 0; ; {
		tok, ok, fb := nextTok(line, &i)
		if fb {
			return nil, false, nil
		}
		if !ok {
			break
		}
		if nh == 5 {
			nh = 6 // a sixth field: malformed
			break
		}
		hdr[nh] = tok
		nh++
	}
	if nh != 5 || !asciiLowerEq(hdr[0], "%%matrixmarket") {
		return nil, true, fmt.Errorf("sparse: malformed MatrixMarket header %q", string(line))
	}
	if !asciiLowerEq(hdr[1], "matrix") || !asciiLowerEq(hdr[2], "coordinate") {
		return nil, true, fmt.Errorf("sparse: unsupported MatrixMarket object %q %q",
			asciiLower(hdr[1]), asciiLower(hdr[2]))
	}
	pattern := false
	switch {
	case asciiLowerEq(hdr[3], "real"), asciiLowerEq(hdr[3], "integer"):
	case asciiLowerEq(hdr[3], "pattern"):
		pattern = true
	default:
		return nil, true, fmt.Errorf("sparse: unsupported MatrixMarket value type %q", asciiLower(hdr[3]))
	}
	var symSign float64
	switch {
	case asciiLowerEq(hdr[4], "general"):
		symSign = 0
	case asciiLowerEq(hdr[4], "symmetric"):
		symSign = 1
	case asciiLowerEq(hdr[4], "skew-symmetric"):
		symSign = -1
	default:
		return nil, true, fmt.Errorf("sparse: unsupported MatrixMarket symmetry %q", asciiLower(hdr[4]))
	}

	// Skip comments, read the size line: exactly three integers, no
	// trailing garbage.
	var rows, cols, declared int
	for {
		line, ok = bl.next()
		if !ok {
			return nil, true, fmt.Errorf("sparse: MatrixMarket stream missing size line")
		}
		if len(line) > maxSafeLine {
			return nil, false, nil
		}
		switch classifyLine(line) {
		case lineSkip:
			continue
		case lineFallback:
			return nil, false, nil
		}
		var nums [3]int
		nt := 0
		bad := false
		for i := 0; ; {
			tok, ok, fb := nextTok(line, &i)
			if fb {
				return nil, false, nil
			}
			if !ok {
				break
			}
			if nt == 3 {
				bad = true // trailing garbage
				break
			}
			v, okInt := parseIntBytes(tok)
			if !okInt {
				bad = true
				break
			}
			nums[nt] = v
			nt++
		}
		if bad || nt != 3 {
			return nil, true, fmt.Errorf("sparse: bad MatrixMarket size line %q", string(line))
		}
		rows, cols, declared = nums[0], nums[1], nums[2]
		break
	}
	if rows <= 0 || cols <= 0 || declared < 0 {
		return nil, true, fmt.Errorf("sparse: bad MatrixMarket sizes %d %d %d", rows, cols, declared)
	}

	// Reserve for the declared entries, but never trust the header for
	// more than the remaining bytes could actually encode (the shortest
	// entry is "1 1 1\n", or "1 1\n" for pattern): an adversarial size
	// line must not force a huge allocation before any entry is read.
	remaining := len(data) - bl.pos
	minEntry := 6
	if pattern {
		minEntry = 4
	}
	maxFromBody := remaining/minEntry + 1
	res := declared
	if res > maxFromBody {
		res = maxFromBody
	}
	if symSign != 0 {
		res *= 2 // symmetric expansion; res <= len(data), no overflow
	}
	if cap(s.r) < res {
		s.r = make([]int32, 0, res)
	}
	if cap(s.c) < res {
		s.c = make([]int32, 0, res)
	}
	if cap(s.v) < res {
		s.v = make([]float64, 0, res)
	}
	rr, cc, vv := s.r[:0], s.c[:0], s.v[:0]

	// The entry section is scanned as one flat byte stream rather than
	// line by line: newlines terminate entries, but there is no separate
	// line-splitting pass. Every accepted line is still length-checked
	// against the scanner cap before its entry counts, so verdicts match
	// the streaming reader even on pathological input.
	read := 0
	pos := bl.pos
	end := len(data)
	for pos < end {
		lineStart := pos
		// Leading whitespace, then classify: blank, comment, or entry.
		var b byte
		for pos < end {
			b = data[pos]
			if b == '\n' || !isSpaceASCII(b) {
				break
			}
			pos++
		}
		if pos == end {
			if end-lineStart > maxSafeLine {
				return nil, false, nil
			}
			break // trailing whitespace only
		}
		if b == '\n' {
			if pos-lineStart > maxSafeLine {
				return nil, false, nil
			}
			pos++
			continue
		}
		if b >= utf8.RuneSelf {
			return nil, false, nil
		}
		if b == '%' {
			j := bytes.IndexByte(data[pos:], '\n')
			if j < 0 {
				if end-lineStart > maxSafeLine {
					return nil, false, nil
				}
				break
			}
			if pos+j-lineStart > maxSafeLine {
				return nil, false, nil
			}
			pos += j + 1
			continue
		}

		iv, t1s, t1e, p1, st1, ok1 := scanInt(data, pos)
		if st1 != scanOK {
			return nil, false, nil // high byte; EOL is impossible here
		}
		if !ok1 {
			return nil, true, fmt.Errorf("sparse: bad MatrixMarket row index %q", string(data[t1s:t1e]))
		}
		jv, t2s, t2e, p2, st2, ok2 := scanInt(data, p1)
		if st2 != scanOK {
			if st2 == scanFallback {
				return nil, false, nil
			}
			return nil, true, fmt.Errorf("sparse: short MatrixMarket entry %q", string(lineAt(data, lineStart)))
		}
		if !ok2 {
			return nil, true, fmt.Errorf("sparse: bad MatrixMarket column index %q", string(data[t2s:t2e]))
		}
		pos = p2
		v := 1.0
		if !pattern {
			var t3s, t3e int
			var st3 scanStatus
			var ok3 bool
			v, t3s, t3e, pos, st3, ok3 = scanFloat(data, pos)
			if st3 != scanOK {
				if st3 == scanFallback {
					return nil, false, nil
				}
				return nil, true, fmt.Errorf("sparse: short MatrixMarket entry %q", string(lineAt(data, lineStart)))
			}
			if !ok3 {
				var errV error
				v, errV = parseFloatBytes(data[t3s:t3e])
				if errV != nil {
					return nil, true, fmt.Errorf("sparse: bad MatrixMarket value %q: %w", string(data[t3s:t3e]), errV)
				}
			}
		}
		// Ignored trailing fields: skip to end of line, still bounded by
		// the scanner cap so an accept here implies a streaming accept.
		if j := bytes.IndexByte(data[pos:], '\n'); j < 0 {
			if end-lineStart > maxSafeLine {
				return nil, false, nil
			}
			pos = end
		} else {
			if pos+j-lineStart > maxSafeLine {
				return nil, false, nil
			}
			pos += j + 1
		}
		row, col := iv-1, jv-1
		if row < 0 || row >= rows || col < 0 || col >= cols {
			return nil, true, fmt.Errorf("%w: (%d, %d) outside %dx%d", ErrIndexRange, row, col, rows, cols)
		}
		rr = append(rr, int32(row))
		cc = append(cc, int32(col))
		vv = append(vv, v)
		if symSign != 0 && iv != jv {
			// The mirrored entry re-checks bounds, exactly like the
			// second Triplet.Add in the streaming reader (a non-square
			// "symmetric" input can put the mirror out of range).
			if col >= rows || row >= cols {
				return nil, true, fmt.Errorf("%w: (%d, %d) outside %dx%d", ErrIndexRange, col, row, rows, cols)
			}
			rr = append(rr, int32(col))
			cc = append(cc, int32(row))
			vv = append(vv, symSign*v)
		}
		read++
	}
	s.r, s.c, s.v = rr, cc, vv
	if read != declared {
		return nil, true, fmt.Errorf("sparse: MatrixMarket declares %d entries, found %d", declared, read)
	}
	return assembleCSR(rows, cols, rr, cc, vv, s), true, nil
}
