package sparse

import "sort"

// RCM computes a reverse Cuthill-McKee ordering of a square matrix,
// returning a permutation p where p[old] = new. Applying it to both rows
// and columns (m.Permute(p, p)) concentrates the nonzeros near the
// diagonal, which shrinks the matrix bandwidth and improves x-vector
// cache reuse during SpMV — the reordering/locality trade-off the
// paper's related-work section discusses (Langguth et al.; sliced-ELL
// row sorting).
//
// The ordering is computed on the symmetrised pattern of the matrix
// (an edge exists if either A[i][j] or A[j][i] is stored). Disconnected
// components are each started from a minimum-degree vertex, so the
// permutation always covers every row.
func RCM(m *CSR) ([]int, error) {
	rows, cols := m.Dims()
	if rows != cols {
		return nil, errNonSquare(rows, cols)
	}
	n := rows
	adj := symmetricAdjacency(m)

	degree := make([]int, n)
	for i := range adj {
		degree[i] = len(adj[i])
	}

	visited := make([]bool, n)
	order := make([]int, 0, n)
	queue := make([]int, 0, n)

	// Vertices sorted by degree: component starts pick the smallest
	// unvisited degree, the classical Cuthill-McKee heuristic.
	byDegree := make([]int, n)
	for i := range byDegree {
		byDegree[i] = i
	}
	sort.Slice(byDegree, func(a, b int) bool {
		if degree[byDegree[a]] != degree[byDegree[b]] {
			return degree[byDegree[a]] < degree[byDegree[b]]
		}
		return byDegree[a] < byDegree[b]
	})

	for _, start := range byDegree {
		if visited[start] {
			continue
		}
		visited[start] = true
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			nbrs := make([]int, 0, len(adj[v]))
			for _, u := range adj[v] {
				if !visited[u] {
					visited[u] = true
					nbrs = append(nbrs, int(u))
				}
			}
			sort.Slice(nbrs, func(a, b int) bool {
				if degree[nbrs[a]] != degree[nbrs[b]] {
					return degree[nbrs[a]] < degree[nbrs[b]]
				}
				return nbrs[a] < nbrs[b]
			})
			queue = append(queue, nbrs...)
		}
	}

	// Reverse (the R in RCM) and invert into old->new form.
	perm := make([]int, n)
	for pos, v := range order {
		perm[v] = n - 1 - pos
	}
	return perm, nil
}

func errNonSquare(rows, cols int) error {
	return &nonSquareError{rows: rows, cols: cols}
}

// nonSquareError reports an RCM request on a rectangular matrix.
type nonSquareError struct{ rows, cols int }

func (e *nonSquareError) Error() string {
	return "sparse: RCM requires a square matrix, got " +
		itoa(e.rows) + "x" + itoa(e.cols)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// symmetricAdjacency builds the undirected adjacency lists of the
// matrix pattern (self-loops dropped).
func symmetricAdjacency(m *CSR) [][]int32 {
	n := m.rows
	adj := make([][]int32, n)
	add := func(a, b int32) {
		adj[a] = append(adj[a], b)
	}
	for i := 0; i < n; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			j := m.colIdx[k]
			if int(j) == i {
				continue
			}
			add(int32(i), j)
			add(j, int32(i))
		}
	}
	// Dedupe each list.
	for i := range adj {
		l := adj[i]
		sort.Slice(l, func(a, b int) bool { return l[a] < l[b] })
		out := l[:0]
		for k, v := range l {
			if k == 0 || v != l[k-1] {
				out = append(out, v)
			}
		}
		adj[i] = out
	}
	return adj
}

// Bandwidth returns the matrix bandwidth: the maximum |i - j| over the
// stored entries (0 for diagonal or empty matrices).
func Bandwidth(m *CSR) int {
	rows, _ := m.Dims()
	bw := 0
	for i := 0; i < rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			d := int(m.colIdx[k]) - i
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}
