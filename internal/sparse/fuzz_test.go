package sparse

import (
	"strings"
	"testing"
)

// FuzzReadMatrixMarket checks the parser's safety contract on arbitrary
// input: it either rejects the stream with an error or produces a matrix
// that passes structural validation and survives a write/read round
// trip. `go test` exercises the seed corpus; `go test -fuzz=Fuzz` keeps
// exploring.
func FuzzReadMatrixMarket(f *testing.F) {
	seeds := []string{
		"",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 3.5\n",
		"%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 1 1\n3 1 2\n",
		"%%MatrixMarket matrix coordinate pattern general\n2 3 2\n1 1\n2 3\n",
		"%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 4\n",
		"%%MatrixMarket matrix coordinate real general\n% comment\n1 1 1\n1 1 1e300\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1\n1 2 2\n2 2 -1\n",
		"%%MatrixMarket matrix coordinate real general\n0 0 0\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n3 3 1\n",
		"%%MatrixMarket matrix coordinate real general\n1 1 2\n1 1 1\n1 1 -1\n",
		"%%MatrixMarket matrix array real general\n1 1\n1\n",
		"garbage\n1 1 1\n",
		"%%MatrixMarket matrix coordinate real general\n3 3 4 extra\n1 1 1\n",
		"%%MatrixMarket matrix coordinate real general\n1 1 4611686018427387903\n1 1 1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 2.5\n",
		"%%MatrixMarket matrix coordinate real general\r\n2 2 1\r\n1 2 8\r\n",
		"%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 0.49671415301123271\n",
		"%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 0x1p-2\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data string) {
		m, err := ReadMatrixMarket(strings.NewReader(data))
		// The byte fast path must reach the same verdict as the
		// streaming reader on every input — and the same matrix, bit
		// for bit, on acceptance.
		fm, ferr := ReadMatrixMarketBytes([]byte(data))
		if (err == nil) != (ferr == nil) {
			t.Fatalf("parser verdicts disagree:\n  streaming: %v\n  bytes:     %v", err, ferr)
		}
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if !csrIdentical(m, fm) {
			t.Fatal("bytes parser produced a different matrix than the streaming parser")
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("parser produced an invalid matrix: %v", err)
		}
		var sb strings.Builder
		if err := WriteMatrixMarket(&sb, m); err != nil {
			t.Fatalf("cannot re-serialise parsed matrix: %v", err)
		}
		again, err := ReadMatrixMarket(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("cannot re-parse serialised matrix: %v", err)
		}
		if !Equal(m, again) {
			t.Fatal("write/read round trip changed the matrix")
		}
	})
}
