package sparse

import (
	"fmt"

	"repro/internal/obs"
)

// CSC is the compressed sparse column format, CSR's transpose-dual:
// colPtr[j]..colPtr[j+1] delimit column j's row indices and values. CSC
// is not an SpMV-selection candidate in the paper (its y-scatter kernel
// is rarely competitive for y = A*x), but a sparse library without it
// would be incomplete: it gives O(1) column slicing and transpose-free
// A^T operations.
type CSC struct {
	rows, cols int
	colPtr     []int32
	rowIdx     []int32
	vals       []float64
}

// NewCSCFromCSR converts a CSR matrix to CSC (a transpose of the
// compressed structure).
func NewCSCFromCSR(a *CSR) *CSC {
	t := a.Transpose() // CSR of A^T: its rows are A's columns
	return &CSC{
		rows:   a.rows,
		cols:   a.cols,
		colPtr: t.rowPtr,
		rowIdx: t.colIdx,
		vals:   t.vals,
	}
}

// Dims returns the matrix dimensions.
func (m *CSC) Dims() (rows, cols int) { return m.rows, m.cols }

// NNZ returns the number of stored entries.
func (m *CSC) NNZ() int { return len(m.vals) }

// Format returns FormatCSC.
func (m *CSC) Format() Format { return FormatCSC }

// ColPtr exposes the column pointer array; callers must not modify it.
func (m *CSC) ColPtr() []int32 { return m.colPtr }

// RowIdx exposes the row index array; callers must not modify it.
func (m *CSC) RowIdx() []int32 { return m.rowIdx }

// Values exposes the value array; callers must not modify it.
func (m *CSC) Values() []float64 { return m.vals }

// ColNNZ returns the number of stored entries in column j.
func (m *CSC) ColNNZ(j int) int { return int(m.colPtr[j+1] - m.colPtr[j]) }

// SpMV computes y = A*x with the column-major scatter kernel.
func (m *CSC) SpMV(y, x []float64) error {
	if err := checkSpMVDims(m, y, x); err != nil {
		return err
	}
	start := obs.Now()
	for i := range y {
		y[i] = 0
	}
	for j := 0; j < m.cols; j++ {
		xv := x[j]
		if xv == 0 {
			continue
		}
		for k := m.colPtr[j]; k < m.colPtr[j+1]; k++ {
			y[m.rowIdx[k]] += m.vals[k] * xv
		}
	}
	observeKernel(FormatCSC, m.rows, len(m.vals), start)
	return nil
}

// SpMVT computes y = A^T * x without materialising the transpose: over
// CSC this is the gather (CSR-style) kernel, the operation CSC makes
// cheap.
func (m *CSC) SpMVT(y, x []float64) error {
	if len(x) != m.rows || len(y) != m.cols {
		return fmt.Errorf("%w: CSC SpMVT with %dx%d matrix, len(x)=%d, len(y)=%d",
			ErrDimension, m.rows, m.cols, len(x), len(y))
	}
	for j := 0; j < m.cols; j++ {
		sum := 0.0
		for k := m.colPtr[j]; k < m.colPtr[j+1]; k++ {
			sum += m.vals[k] * x[m.rowIdx[k]]
		}
		y[j] = sum
	}
	return nil
}

// ToCSR converts the matrix back to canonical CSR.
func (m *CSC) ToCSR() *CSR {
	// The stored structure is CSR of A^T; transposing it back yields A.
	t := &CSR{rows: m.cols, cols: m.rows, rowPtr: m.colPtr, colIdx: m.rowIdx, vals: m.vals}
	return t.Transpose()
}

var _ Matrix = (*CSC)(nil)
