package sparse

import "fmt"

// Convert converts a CSR matrix to the requested format. CSR returns the
// input unchanged. ELL and DIA conversions may fail with ErrTooLarge; the
// benchmark driver treats that like CUSP's conversion exception and drops
// the matrix, as the paper does.
func Convert(a *CSR, f Format) (Matrix, error) {
	switch f {
	case FormatCSR:
		return a, nil
	case FormatCOO:
		return NewCOOFromCSR(a), nil
	case FormatELL:
		return NewELLFromCSR(a, 0)
	case FormatHYB:
		return NewHYBFromCSR(a)
	case FormatDIA:
		return NewDIAFromCSR(a, 0)
	case FormatSELL:
		return NewSELLFromCSR(a, 0)
	case FormatCSC:
		return NewCSCFromCSR(a), nil
	case FormatJDS:
		return NewJDSFromCSR(a), nil
	default:
		return nil, fmt.Errorf("sparse: convert to unknown format %v", f)
	}
}

// NewCOOFromCSR expands a CSR matrix to coordinate form; entries stay
// sorted by row then column.
func NewCOOFromCSR(a *CSR) *COO {
	rowIdx := make([]int32, a.NNZ())
	for i := 0; i < a.rows; i++ {
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			rowIdx[k] = int32(i)
		}
	}
	colIdx := make([]int32, len(a.colIdx))
	copy(colIdx, a.colIdx)
	vals := make([]float64, len(a.vals))
	copy(vals, a.vals)
	return &COO{rows: a.rows, cols: a.cols, rowIdx: rowIdx, colIdx: colIdx, vals: vals}
}

// Equal reports whether two matrices have identical dimensions and
// identical stored entries, compared through their canonical CSR forms.
func Equal(a, b Matrix) bool {
	ca, err := ToCSR(a)
	if err != nil {
		return false
	}
	cb, err := ToCSR(b)
	if err != nil {
		return false
	}
	if ca.rows != cb.rows || ca.cols != cb.cols || len(ca.vals) != len(cb.vals) {
		return false
	}
	for i := range ca.rowPtr {
		if ca.rowPtr[i] != cb.rowPtr[i] {
			return false
		}
	}
	for k := range ca.vals {
		if ca.colIdx[k] != cb.colIdx[k] || ca.vals[k] != cb.vals[k] {
			return false
		}
	}
	return true
}

// ToCSR converts any Matrix to canonical CSR.
func ToCSR(m Matrix) (*CSR, error) {
	switch t := m.(type) {
	case *CSR:
		return t, nil
	case *COO:
		return t.ToCSR(), nil
	case *ELL:
		return t.ToCSR(), nil
	case *HYB:
		return t.ToCSR(), nil
	case *DIA:
		return t.ToCSR(), nil
	case *SELL:
		return t.ToCSR(), nil
	case *CSC:
		return t.ToCSR(), nil
	case *JDS:
		return t.ToCSR(), nil
	default:
		return nil, fmt.Errorf("sparse: cannot convert %T to CSR", m)
	}
}
