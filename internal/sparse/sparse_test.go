package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomCSR builds a random rows x cols matrix with the given fill
// density, deterministic in seed.
func randomCSR(tb testing.TB, rng *rand.Rand, rows, cols int, density float64) *CSR {
	tb.Helper()
	t := NewTriplet(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				if err := t.Add(i, j, rng.NormFloat64()); err != nil {
					tb.Fatalf("Add: %v", err)
				}
			}
		}
	}
	m := t.ToCSR()
	if m.NNZ() == 0 {
		// Guarantee at least one entry so SpMV tests are non-trivial.
		if err := t.Add(rng.Intn(rows), rng.Intn(cols), 1); err != nil {
			tb.Fatalf("Add: %v", err)
		}
		m = t.ToCSR()
	}
	return m
}

// dense expands a matrix for reference computations.
func dense(tb testing.TB, m Matrix) [][]float64 {
	tb.Helper()
	a, err := ToCSR(m)
	if err != nil {
		tb.Fatalf("ToCSR: %v", err)
	}
	rows, cols := a.Dims()
	d := make([][]float64, rows)
	for i := range d {
		d[i] = make([]float64, cols)
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			d[i][a.colIdx[k]] = a.vals[k]
		}
	}
	return d
}

func refSpMV(d [][]float64, x []float64) []float64 {
	y := make([]float64, len(d))
	for i, row := range d {
		for j, v := range row {
			y[i] += v * x[j]
		}
	}
	return y
}

func almostEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol*(1+math.Abs(b[i])) {
			return false
		}
	}
	return true
}

func TestFormatString(t *testing.T) {
	cases := map[Format]string{
		FormatCOO: "COO", FormatCSR: "CSR", FormatELL: "ELL",
		FormatHYB: "HYB", FormatDIA: "DIA", Format(99): "Format(99)",
	}
	for f, want := range cases {
		if got := f.String(); got != want {
			t.Errorf("Format(%d).String() = %q, want %q", int(f), got, want)
		}
	}
}

func TestParseFormat(t *testing.T) {
	for _, f := range []Format{FormatCOO, FormatCSR, FormatELL, FormatHYB, FormatDIA} {
		got, err := ParseFormat(f.String())
		if err != nil || got != f {
			t.Errorf("ParseFormat(%q) = %v, %v; want %v", f.String(), got, err, f)
		}
	}
	if _, err := ParseFormat("BOGUS"); err == nil {
		t.Error("ParseFormat(BOGUS) succeeded, want error")
	}
}

func TestKernelFormats(t *testing.T) {
	fs := KernelFormats()
	if len(fs) != NumKernelFormats {
		t.Fatalf("KernelFormats returned %d formats, want %d", len(fs), NumKernelFormats)
	}
	seen := map[Format]bool{}
	for _, f := range fs {
		if f == FormatDIA {
			t.Error("DIA must not be a kernel format")
		}
		if seen[f] {
			t.Errorf("duplicate kernel format %v", f)
		}
		seen[f] = true
	}
}

func TestTripletDuplicatesAndZeros(t *testing.T) {
	tr := NewTriplet(3, 3)
	mustAdd := func(i, j int, v float64) {
		t.Helper()
		if err := tr.Add(i, j, v); err != nil {
			t.Fatalf("Add(%d,%d): %v", i, j, err)
		}
	}
	mustAdd(0, 0, 1)
	mustAdd(0, 0, 2)  // duplicate: sums to 3
	mustAdd(1, 1, 5)  //
	mustAdd(1, 1, -5) // cancels to zero: dropped
	mustAdd(2, 0, 0)  // explicit zero: dropped
	mustAdd(2, 2, 4)  //
	m := tr.ToCSR()
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", m.NNZ())
	}
	if got := m.At(0, 0); got != 3 {
		t.Errorf("At(0,0) = %v, want 3", got)
	}
	if got := m.At(1, 1); got != 0 {
		t.Errorf("At(1,1) = %v, want 0 (cancelled)", got)
	}
	if got := m.At(2, 2); got != 4 {
		t.Errorf("At(2,2) = %v, want 4", got)
	}
}

func TestTripletOutOfRange(t *testing.T) {
	tr := NewTriplet(2, 2)
	for _, c := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		if err := tr.Add(c[0], c[1], 1); err == nil {
			t.Errorf("Add(%d,%d) succeeded, want error", c[0], c[1])
		}
	}
}

func TestNewTripletPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTriplet(0, 5) did not panic")
		}
	}()
	NewTriplet(0, 5)
}

func TestCSRValidate(t *testing.T) {
	cases := []struct {
		name   string
		rows   int
		cols   int
		rowPtr []int32
		colIdx []int32
		vals   []float64
	}{
		{"short rowPtr", 2, 2, []int32{0, 1}, []int32{0}, []float64{1}},
		{"rowPtr[0] nonzero", 1, 2, []int32{1, 1}, []int32{0}, []float64{1}},
		{"length mismatch", 1, 2, []int32{0, 1}, []int32{0, 1}, []float64{1}},
		{"rowPtr tail mismatch", 1, 2, []int32{0, 2}, []int32{0}, []float64{1}},
		{"non-monotone", 2, 2, []int32{0, 1, 0}, []int32{0}, []float64{1}},
		{"column out of range", 1, 2, []int32{0, 1}, []int32{5}, []float64{1}},
		{"unsorted columns", 1, 3, []int32{0, 2}, []int32{2, 0}, []float64{1, 2}},
		{"zero dims", 0, 0, []int32{0}, nil, nil},
	}
	for _, c := range cases {
		if _, err := NewCSR(c.rows, c.cols, c.rowPtr, c.colIdx, c.vals); err == nil {
			t.Errorf("%s: NewCSR succeeded, want error", c.name)
		}
	}
	if _, err := NewCSR(2, 2, []int32{0, 1, 2}, []int32{0, 1}, []float64{1, 2}); err != nil {
		t.Errorf("valid CSR rejected: %v", err)
	}
}

func TestCSRAt(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomCSR(t, rng, 17, 23, 0.2)
	d := dense(t, m)
	for i := 0; i < 17; i++ {
		for j := 0; j < 23; j++ {
			if got := m.At(i, j); got != d[i][j] {
				t.Fatalf("At(%d,%d) = %v, want %v", i, j, got, d[i][j])
			}
		}
	}
	if m.At(-1, 0) != 0 || m.At(0, -1) != 0 || m.At(17, 0) != 0 || m.At(0, 23) != 0 {
		t.Error("out-of-range At should return 0")
	}
}

func TestSpMVAllFormatsAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	shapes := []struct{ r, c int }{{1, 1}, {5, 7}, {64, 64}, {100, 30}, {30, 100}}
	for _, sh := range shapes {
		a := randomCSR(t, rng, sh.r, sh.c, 0.15)
		d := dense(t, a)
		x := make([]float64, sh.c)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := refSpMV(d, x)
		for _, f := range []Format{FormatCOO, FormatCSR, FormatELL, FormatHYB, FormatDIA} {
			var m Matrix
			var err error
			if f == FormatDIA {
				// Random matrices touch many diagonals; lift the slab
				// limit since this test is about kernel correctness.
				m, err = NewDIAFromCSR(a, 1<<20)
			} else {
				m, err = Convert(a, f)
			}
			if err != nil {
				t.Fatalf("%dx%d Convert(%v): %v", sh.r, sh.c, f, err)
			}
			y := make([]float64, sh.r)
			if err := m.SpMV(y, x); err != nil {
				t.Fatalf("%v SpMV: %v", f, err)
			}
			if !almostEqual(y, want, 1e-12) {
				t.Errorf("%dx%d %v SpMV disagrees with dense reference", sh.r, sh.c, f)
			}
		}
	}
}

func TestSpMVDimensionErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomCSR(t, rng, 8, 9, 0.3)
	for _, f := range []Format{FormatCOO, FormatCSR, FormatELL, FormatHYB, FormatDIA} {
		m, err := Convert(a, f)
		if err != nil {
			t.Fatalf("Convert(%v): %v", f, err)
		}
		if err := m.SpMV(make([]float64, 8), make([]float64, 8)); err == nil {
			t.Errorf("%v SpMV accepted short x", f)
		}
		if err := m.SpMV(make([]float64, 9), make([]float64, 9)); err == nil {
			t.Errorf("%v SpMV accepted short y", f)
		}
	}
}

func TestSpMVParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Skewed matrix: one huge row to stress nnz-balanced partitioning.
	tr := NewTriplet(500, 400)
	for j := 0; j < 400; j++ {
		_ = tr.Add(0, j, rng.NormFloat64())
	}
	for n := 0; n < 30000; n++ {
		_ = tr.Add(rng.Intn(500), rng.Intn(400), rng.NormFloat64())
	}
	m := tr.ToCSR()
	x := make([]float64, 400)
	for i := range x {
		x[i] = rng.Float64()
	}
	ys := make([]float64, 500)
	yp := make([]float64, 500)
	if err := m.SpMV(ys, x); err != nil {
		t.Fatal(err)
	}
	if err := m.SpMVParallel(yp, x); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(yp, ys, 1e-12) {
		t.Error("parallel SpMV disagrees with serial")
	}
}

func TestConversionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(40), 1+rng.Intn(40)
		a := randomCSR(t, rng, rows, cols, 0.25)
		for _, f := range []Format{FormatCOO, FormatELL, FormatHYB, FormatDIA} {
			m, err := Convert(a, f)
			if err != nil {
				t.Fatalf("Convert(%v): %v", f, err)
			}
			if !Equal(a, m) {
				t.Errorf("trial %d: %v round-trip lost entries", trial, f)
			}
			if m.NNZ() != a.NNZ() {
				t.Errorf("trial %d: %v NNZ = %d, want %d", trial, f, m.NNZ(), a.NNZ())
			}
		}
	}
}

func TestELLTooLarge(t *testing.T) {
	// One dense row in an otherwise nearly empty tall matrix: width =
	// cols, slab = rows*cols >> limit*nnz.
	tr := NewTriplet(2000, 200)
	for j := 0; j < 200; j++ {
		_ = tr.Add(0, j, 1)
	}
	_ = tr.Add(1999, 0, 1)
	a := tr.ToCSR()
	if _, err := NewELLFromCSR(a, DefaultELLLimit); err == nil {
		t.Fatal("expected ErrTooLarge for skewed ELL conversion")
	}
	// HYB must succeed on the same matrix: the dense row overflows to COO.
	h, err := NewHYBFromCSR(a)
	if err != nil {
		t.Fatalf("HYB conversion failed: %v", err)
	}
	if h.COONNZ() == 0 {
		t.Error("HYB COO tail empty for a matrix with one dense row")
	}
}

func TestDIATooLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// Random scatter touches many diagonals.
	tr := NewTriplet(300, 300)
	for n := 0; n < 300; n++ {
		_ = tr.Add(rng.Intn(300), rng.Intn(300), 1)
	}
	a := tr.ToCSR()
	if _, err := NewDIAFromCSR(a, 2); err == nil {
		t.Fatal("expected ErrTooLarge for scattered DIA conversion")
	}
}

func TestDIADiagonalCount(t *testing.T) {
	tr := NewTriplet(10, 10)
	for i := 0; i < 10; i++ {
		_ = tr.Add(i, i, 2)
		if i+1 < 10 {
			_ = tr.Add(i, i+1, -1)
			_ = tr.Add(i+1, i, -1)
		}
	}
	d, err := NewDIAFromCSR(tr.ToCSR(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumDiagonals() != 3 {
		t.Errorf("tridiagonal matrix has %d DIA diagonals, want 3", d.NumDiagonals())
	}
	if d.SlabSize() != 30 {
		t.Errorf("SlabSize = %d, want 30", d.SlabSize())
	}
}

func TestHybWidthFromHistogram(t *testing.T) {
	// 10 rows: 9 rows with 2 nnz, 1 row with 100 nnz. The width should be
	// 2: 10 rows have >=2 entries (>= 10/3), only 1 has >=3.
	hist := make([]int, 101)
	hist[2] = 9
	hist[100] = 1
	if w := HybWidthFromHistogram(hist, 10); w != 2 {
		t.Errorf("width = %d, want 2", w)
	}
	// Uniform rows: width equals the row length.
	hist2 := make([]int, 6)
	hist2[5] = 8
	if w := HybWidthFromHistogram(hist2, 8); w != 5 {
		t.Errorf("uniform width = %d, want 5", w)
	}
	// Empty matrix.
	if w := HybWidthFromHistogram([]int{4}, 4); w != 0 {
		t.Errorf("empty width = %d, want 0", w)
	}
}

func TestHYBPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomCSR(t, rng, 60, 60, 0.1)
	h, err := NewHYBFromCSR(a)
	if err != nil {
		t.Fatal(err)
	}
	if h.ELLNNZ()+h.COONNZ() != a.NNZ() {
		t.Errorf("ELL %d + COO %d != total %d", h.ELLNNZ(), h.COONNZ(), a.NNZ())
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randomCSR(t, rng, 15, 27, 0.2)
	tt := a.Transpose()
	r, c := tt.Dims()
	if r != 27 || c != 15 {
		t.Fatalf("transpose dims %dx%d, want 27x15", r, c)
	}
	if err := tt.Validate(); err != nil {
		t.Fatalf("transpose invalid: %v", err)
	}
	for i := 0; i < 15; i++ {
		for j := 0; j < 27; j++ {
			if a.At(i, j) != tt.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	// Double transpose is identity.
	if !Equal(a, tt.Transpose()) {
		t.Error("double transpose != original")
	}
}

func TestPermute(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomCSR(t, rng, 12, 9, 0.3)
	rp := rng.Perm(12)
	cp := rng.Perm(9)
	p, err := a.Permute(rp, cp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		for j := 0; j < 9; j++ {
			if a.At(i, j) != p.At(rp[i], cp[j]) {
				t.Fatalf("permute mismatch at (%d,%d)", i, j)
			}
		}
	}
	if p.NNZ() != a.NNZ() {
		t.Errorf("permutation changed NNZ: %d -> %d", a.NNZ(), p.NNZ())
	}
	// nil permutations are identity on that axis.
	id, err := a.Permute(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(a, id) {
		t.Error("nil permutation is not identity")
	}
	// Invalid permutations are rejected.
	if _, err := a.Permute([]int{0}, nil); err == nil {
		t.Error("short row permutation accepted")
	}
	if _, err := a.Permute(nil, []int{0, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("non-bijective column permutation accepted")
	}
}

func TestPermutePreservesRowNNZMultiset(t *testing.T) {
	// Property: row permutation permutes the per-row nonzero counts, a
	// fact the paper's augmentation relies on (features that depend only
	// on the row histogram are invariant).
	rng := rand.New(rand.NewSource(10))
	a := randomCSR(t, rng, 20, 20, 0.15)
	rp := rng.Perm(20)
	p, err := a.Permute(rp, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if a.RowNNZ(i) != p.RowNNZ(rp[i]) {
			t.Fatalf("row %d nnz changed under permutation", i)
		}
	}
}

// TestQuickTripletCSRConsistency property-tests that matrices assembled
// from arbitrary entry lists agree entry-wise with a map-based reference.
func TestQuickTripletCSRConsistency(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(20), 1+rng.Intn(20)
		tr := NewTriplet(rows, cols)
		ref := map[[2]int]float64{}
		for e := 0; e < int(n); e++ {
			i, j := rng.Intn(rows), rng.Intn(cols)
			v := float64(rng.Intn(7) - 3)
			if tr.Add(i, j, v) != nil {
				return false
			}
			ref[[2]int{i, j}] += v
		}
		m := tr.ToCSR()
		if m.Validate() != nil {
			return false
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if m.At(i, j) != ref[[2]int{i, j}] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickSpMVLinearity property-tests A(ax + bz) = a*Ax + b*Az for all
// formats.
func TestQuickSpMVLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(30), 1+rng.Intn(30)
		a := randomCSR(t, rng, rows, cols, 0.2)
		x := make([]float64, cols)
		z := make([]float64, cols)
		for i := range x {
			x[i], z[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		alpha, beta := rng.Float64(), rng.Float64()
		comb := make([]float64, cols)
		for i := range comb {
			comb[i] = alpha*x[i] + beta*z[i]
		}
		for _, fm := range []Format{FormatCOO, FormatCSR, FormatELL, FormatHYB} {
			m, err := Convert(a, fm)
			if err != nil {
				return false
			}
			yx := make([]float64, rows)
			yz := make([]float64, rows)
			yc := make([]float64, rows)
			if m.SpMV(yx, x) != nil || m.SpMV(yz, z) != nil || m.SpMV(yc, comb) != nil {
				return false
			}
			for i := range yc {
				want := alpha*yx[i] + beta*yz[i]
				if math.Abs(yc[i]-want) > 1e-9*(1+math.Abs(want)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCOOValidate(t *testing.T) {
	if _, err := NewCOO(2, 2, []int32{0, 0}, []int32{1, 0}, []float64{1, 2}); err == nil {
		t.Error("unsorted COO accepted")
	}
	if _, err := NewCOO(2, 2, []int32{0, 0}, []int32{0, 0}, []float64{1, 2}); err == nil {
		t.Error("duplicate COO accepted")
	}
	if _, err := NewCOO(2, 2, []int32{0}, []int32{0, 1}, []float64{1, 2}); err == nil {
		t.Error("length-mismatched COO accepted")
	}
	if _, err := NewCOO(2, 2, []int32{0, 5}, []int32{0, 0}, []float64{1, 2}); err == nil {
		t.Error("out-of-range COO accepted")
	}
	if _, err := NewCOO(2, 2, []int32{0, 1}, []int32{1, 0}, []float64{1, 2}); err != nil {
		t.Errorf("valid COO rejected: %v", err)
	}
}

func TestPartitionByNNZCoversAllRows(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomCSR(t, rng, 97, 13, 0.2)
	for _, n := range []int{1, 2, 3, 8, 97} {
		b := a.partitionByNNZ(n)
		if b[0] != 0 || b[n] != 97 {
			t.Fatalf("n=%d: bounds do not span rows: %v", n, b)
		}
		for i := 0; i < n; i++ {
			if b[i] > b[i+1] {
				t.Fatalf("n=%d: bounds not monotone: %v", n, b)
			}
		}
	}
}

func TestSELLAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, sh := range []struct{ r, c, slice int }{
		{5, 7, 4}, {64, 64, 32}, {100, 30, 32}, {33, 33, 32}, {1, 1, 32},
	} {
		a := randomCSR(t, rng, sh.r, sh.c, 0.2)
		m, err := NewSELLFromCSR(a, sh.slice)
		if err != nil {
			t.Fatalf("%dx%d: %v", sh.r, sh.c, err)
		}
		d := dense(t, a)
		x := make([]float64, sh.c)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := refSpMV(d, x)
		y := make([]float64, sh.r)
		if err := m.SpMV(y, x); err != nil {
			t.Fatal(err)
		}
		if !almostEqual(y, want, 1e-12) {
			t.Errorf("%dx%d slice %d: SELL SpMV wrong", sh.r, sh.c, sh.slice)
		}
		if !Equal(a, m) {
			t.Errorf("%dx%d: SELL round trip lost entries", sh.r, sh.c)
		}
	}
}

func TestSELLPaddingBoundedBySlices(t *testing.T) {
	// One dense row: full ELL pads every row to the max, SELL pads only
	// the slice containing the dense row.
	tr := NewTriplet(256, 256)
	for j := 0; j < 256; j++ {
		_ = tr.Add(0, j, 1)
	}
	for i := 1; i < 256; i++ {
		_ = tr.Add(i, i, 1)
	}
	a := tr.ToCSR()
	m, err := NewSELLFromCSR(a, 32)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSlices() != 8 {
		t.Fatalf("NumSlices = %d", m.NumSlices())
	}
	// Full ELL slab would be 256*256 = 65536; SELL: slice 0 is 32*256,
	// slices 1-7 are 32*1.
	want := 32*256 + 7*32
	if m.SlabSize() != want {
		t.Errorf("SlabSize = %d, want %d", m.SlabSize(), want)
	}
	if m.SliceHeight() != 32 {
		t.Errorf("SliceHeight = %d", m.SliceHeight())
	}
}

func TestSELLViaConvert(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := randomCSR(t, rng, 40, 40, 0.2)
	m, err := Convert(a, FormatSELL)
	if err != nil {
		t.Fatal(err)
	}
	if m.Format() != FormatSELL {
		t.Errorf("Format = %v", m.Format())
	}
	if !Equal(a, m) {
		t.Error("Convert(SELL) lost entries")
	}
	if m.NNZ() != a.NNZ() {
		t.Errorf("NNZ %d != %d", m.NNZ(), a.NNZ())
	}
}

func TestCSCAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, sh := range []struct{ r, c int }{{1, 1}, {7, 5}, {40, 60}, {60, 40}} {
		a := randomCSR(t, rng, sh.r, sh.c, 0.2)
		m := NewCSCFromCSR(a)
		d := dense(t, a)
		x := make([]float64, sh.c)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := refSpMV(d, x)
		y := make([]float64, sh.r)
		if err := m.SpMV(y, x); err != nil {
			t.Fatal(err)
		}
		if !almostEqual(y, want, 1e-12) {
			t.Errorf("%dx%d: CSC SpMV wrong", sh.r, sh.c)
		}
		if !Equal(a, m) {
			t.Errorf("%dx%d: CSC round trip lost entries", sh.r, sh.c)
		}
		// SpMVT must equal the transpose's SpMV.
		xt := make([]float64, sh.r)
		for i := range xt {
			xt[i] = rng.NormFloat64()
		}
		yt := make([]float64, sh.c)
		if err := m.SpMVT(yt, xt); err != nil {
			t.Fatal(err)
		}
		wantT := make([]float64, sh.c)
		if err := a.Transpose().SpMV(wantT, xt); err != nil {
			t.Fatal(err)
		}
		if !almostEqual(yt, wantT, 1e-12) {
			t.Errorf("%dx%d: CSC SpMVT wrong", sh.r, sh.c)
		}
		if sh.c != 1 {
			if err := m.SpMVT(make([]float64, 1), xt); err == nil {
				t.Error("SpMVT accepted short y")
			}
		}
	}
}

func TestCSCColumnAccess(t *testing.T) {
	tr := NewTriplet(4, 3)
	_ = tr.Add(0, 1, 5)
	_ = tr.Add(2, 1, 7)
	_ = tr.Add(3, 0, 2)
	m := NewCSCFromCSR(tr.ToCSR())
	if m.ColNNZ(0) != 1 || m.ColNNZ(1) != 2 || m.ColNNZ(2) != 0 {
		t.Errorf("column counts wrong: %d %d %d", m.ColNNZ(0), m.ColNNZ(1), m.ColNNZ(2))
	}
	if m.Format() != FormatCSC {
		t.Error("Format wrong")
	}
	if got, _ := ParseFormat("CSC"); got != FormatCSC {
		t.Error("ParseFormat(CSC) wrong")
	}
	via, err := Convert(tr.ToCSR(), FormatCSC)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(via, tr.ToCSR()) {
		t.Error("Convert(CSC) lost entries")
	}
}

func TestJDSAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, sh := range []struct{ r, c int }{{1, 1}, {9, 6}, {50, 50}, {30, 80}} {
		a := randomCSR(t, rng, sh.r, sh.c, 0.2)
		m := NewJDSFromCSR(a)
		d := dense(t, a)
		x := make([]float64, sh.c)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := refSpMV(d, x)
		y := make([]float64, sh.r)
		if err := m.SpMV(y, x); err != nil {
			t.Fatal(err)
		}
		if !almostEqual(y, want, 1e-12) {
			t.Errorf("%dx%d: JDS SpMV wrong", sh.r, sh.c)
		}
		if !Equal(a, m) {
			t.Errorf("%dx%d: JDS round trip lost entries", sh.r, sh.c)
		}
	}
}

func TestJDSNoPaddingAndDiagonals(t *testing.T) {
	// Row lengths 3, 1, 2: three jagged diagonals of sizes 3, 2, 1;
	// storage exactly nnz with no padding.
	tr := NewTriplet(3, 4)
	_ = tr.Add(0, 0, 1)
	_ = tr.Add(0, 1, 2)
	_ = tr.Add(0, 3, 3)
	_ = tr.Add(1, 2, 4)
	_ = tr.Add(2, 0, 5)
	_ = tr.Add(2, 2, 6)
	m := NewJDSFromCSR(tr.ToCSR())
	if m.NNZ() != 6 {
		t.Errorf("NNZ = %d", m.NNZ())
	}
	if m.NumDiagonals() != 3 {
		t.Errorf("NumDiagonals = %d, want 3", m.NumDiagonals())
	}
	if m.Format() != FormatJDS {
		t.Error("Format wrong")
	}
	via, err := Convert(tr.ToCSR(), FormatJDS)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(via, tr.ToCSR()) {
		t.Error("Convert(JDS) lost entries")
	}
}

func TestJDSEmptyRows(t *testing.T) {
	tr := NewTriplet(5, 5)
	_ = tr.Add(2, 2, 7)
	m := NewJDSFromCSR(tr.ToCSR())
	y := make([]float64, 5)
	if err := m.SpMV(y, []float64{1, 1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if y[2] != 7 {
		t.Errorf("y = %v", y)
	}
}
