package cluster

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/obs"
)

// Birch builds a CF-tree (Zhang, Ramakrishnan & Livny, SIGMOD 1996) in
// one pass over the data and then runs a global K-Means over the leaf
// entries' centroids (weighted by their counts) to produce the requested
// number of clusters, matching scikit-learn's Birch(n_clusters=k).
type Birch struct {
	// K is the number of global clusters extracted from the CF-tree.
	K int
	// Threshold is the maximum radius of a leaf entry before it splits
	// (default 0.1; the feature spaces here are min-max-scaled or PCA
	// projections of them, so entries must stay well under the typical
	// inter-cluster distances of a unit-scaled space).
	Threshold float64
	// Branching is the maximum entries per tree node (default 50,
	// scikit-learn's default).
	Branching int
	// Seed drives the global K-Means.
	Seed int64

	centroids [][]float64
	labels    []int
	leaves    int
	fitted    bool
}

// NewBirch returns a Birch model with scikit-learn-style defaults.
func NewBirch(k int, seed int64) *Birch {
	return &Birch{K: k, Threshold: 0.1, Branching: 50, Seed: seed}
}

// cfEntry is a clustering feature: count, linear sum and squared norm
// sum, enough to compute centroids and radii incrementally.
type cfEntry struct {
	n     int
	ls    []float64
	ss    float64
	child *cfNode // nil at leaves
}

type cfNode struct {
	entries []*cfEntry
	leaf    bool
}

func newEntry(x []float64) *cfEntry {
	ls := append([]float64(nil), x...)
	return &cfEntry{n: 1, ls: ls, ss: linalg.Dot(x, x)}
}

func (e *cfEntry) centroid() []float64 {
	c := make([]float64, len(e.ls))
	for i, v := range e.ls {
		c[i] = v / float64(e.n)
	}
	return c
}

// radiusAfterAdding returns the RMS radius of the entry once x joins it.
func (e *cfEntry) radiusAfterAdding(x []float64) float64 {
	n := float64(e.n + 1)
	ss := e.ss + linalg.Dot(x, x)
	var cc float64
	for i, v := range e.ls {
		c := (v + x[i]) / n
		cc += c * c
	}
	r2 := ss/n - cc
	if r2 < 0 {
		r2 = 0
	}
	return math.Sqrt(r2)
}

func (e *cfEntry) add(x []float64) {
	e.n++
	linalg.Axpy(1, x, e.ls)
	e.ss += linalg.Dot(x, x)
}

func (e *cfEntry) merge(o *cfEntry) {
	e.n += o.n
	linalg.Axpy(1, o.ls, e.ls)
	e.ss += o.ss
}

func (e *cfEntry) sqDistTo(x []float64) float64 {
	d := 0.0
	inv := 1 / float64(e.n)
	for i, v := range e.ls {
		diff := v*inv - x[i]
		d += diff * diff
	}
	return d
}

// Fit builds the CF-tree and extracts K global clusters.
func (b *Birch) Fit(points [][]float64) error {
	if b.fitted {
		return fmt.Errorf("cluster: Birch already fitted")
	}
	if err := checkInput(points); err != nil {
		return err
	}
	if b.K <= 0 {
		return fmt.Errorf("cluster: Birch with K = %d", b.K)
	}
	if b.Threshold <= 0 {
		b.Threshold = 0.1
	}
	if b.Branching < 2 {
		b.Branching = 50
	}

	root := &cfNode{leaf: true}
	for _, p := range points {
		root = b.insert(root, p)
	}

	// Collect leaf entries.
	var leafEntries []*cfEntry
	var collect func(n *cfNode)
	collect = func(n *cfNode) {
		if n.leaf {
			leafEntries = append(leafEntries, n.entries...)
			return
		}
		for _, e := range n.entries {
			collect(e.child)
		}
	}
	collect(root)
	b.leaves = len(leafEntries)

	// Global clustering: weighted K-Means over leaf centroids. Weights
	// are applied by centroid replication in proportion, which keeps the
	// implementation simple and is adequate at CF-tree granularity.
	cents := make([][]float64, len(leafEntries))
	weights := make([]float64, len(leafEntries))
	for i, e := range leafEntries {
		cents[i] = e.centroid()
		weights[i] = float64(e.n)
	}
	k := b.K
	if k > len(cents) {
		k = len(cents)
	}
	global, err := weightedKMeans(cents, weights, k, b.Seed)
	if err != nil {
		return fmt.Errorf("cluster: Birch global clustering: %w", err)
	}
	b.centroids = global
	b.labels = make([]int, len(points))
	assignParallel(points, b.centroids, b.labels)
	b.fitted = true
	observeFit("birch", len(points), 0)
	if obs.Enabled() {
		obs.Default.Histogram("cluster/birch/leaf_entries", obs.CountBuckets).
			Observe(float64(b.leaves))
	}
	return nil
}

// insert adds x to the subtree rooted at n, splitting nodes that exceed
// the branching factor; it returns the (possibly new) root.
func (b *Birch) insert(root *cfNode, x []float64) *cfNode {
	split := b.insertRec(root, x)
	if split == nil {
		return root
	}
	// Root split: grow a new root one level up.
	newRoot := &cfNode{leaf: false}
	for _, half := range []*cfNode{root, split} {
		sum := summarize(half)
		sum.child = half
		newRoot.entries = append(newRoot.entries, sum)
	}
	return newRoot
}

// insertRec descends to the closest leaf; a non-nil return is the new
// sibling produced by splitting the child.
func (b *Birch) insertRec(n *cfNode, x []float64) *cfNode {
	if n.leaf {
		// Closest entry that can absorb x within the threshold.
		best, bestD := -1, math.Inf(1)
		for i, e := range n.entries {
			if d := e.sqDistTo(x); d < bestD {
				best, bestD = i, d
			}
		}
		if best >= 0 && n.entries[best].radiusAfterAdding(x) <= b.Threshold {
			n.entries[best].add(x)
			return nil
		}
		n.entries = append(n.entries, newEntry(x))
		if len(n.entries) <= b.Branching {
			return nil
		}
		return splitNode(n)
	}
	// Internal node: descend into the closest child.
	best, bestD := -1, math.Inf(1)
	for i, e := range n.entries {
		if d := e.sqDistTo(x); d < bestD {
			best, bestD = i, d
		}
	}
	child := n.entries[best]
	split := b.insertRec(child.child, x)
	// Refresh the summary of the descended child.
	*child = *summarizeKeep(child.child)
	if split != nil {
		sum := summarize(split)
		sum.child = split
		n.entries = append(n.entries, sum)
		if len(n.entries) > b.Branching {
			return splitNode(n)
		}
	}
	return nil
}

// summarize builds a CF entry describing all of n's contents.
func summarize(n *cfNode) *cfEntry {
	var total *cfEntry
	for _, e := range n.entries {
		if total == nil {
			total = &cfEntry{n: e.n, ls: append([]float64(nil), e.ls...), ss: e.ss}
		} else {
			total.merge(e)
		}
	}
	if total == nil {
		total = &cfEntry{ls: []float64{}}
	}
	return total
}

// summarizeKeep is summarize but preserves the child pointer.
func summarizeKeep(n *cfNode) *cfEntry {
	s := summarize(n)
	s.child = n
	return s
}

// splitNode divides n's entries between n and a new sibling using the
// two farthest entries as seeds, returning the sibling.
func splitNode(n *cfNode) *cfNode {
	entries := n.entries
	// Farthest pair by centroid distance.
	var si, sj int
	worst := -1.0
	for i := range entries {
		ci := entries[i].centroid()
		for j := i + 1; j < len(entries); j++ {
			if d := entries[j].sqDistTo(ci); d > worst {
				worst, si, sj = d, i, j
			}
		}
	}
	a := &cfNode{leaf: n.leaf}
	bn := &cfNode{leaf: n.leaf}
	ca, cb := entries[si].centroid(), entries[sj].centroid()
	for idx, e := range entries {
		switch {
		case idx == si:
			a.entries = append(a.entries, e)
		case idx == sj:
			bn.entries = append(bn.entries, e)
		case e.sqDistTo(ca) <= e.sqDistTo(cb):
			a.entries = append(a.entries, e)
		default:
			bn.entries = append(bn.entries, e)
		}
	}
	*n = *a
	return bn
}

// weightedKMeans clusters weighted points with k-means++ seeding.
func weightedKMeans(points [][]float64, w []float64, k int, seed int64) ([][]float64, error) {
	km := NewKMeans(k, seed)
	if err := km.Fit(points); err != nil {
		return nil, err
	}
	// One weighted refinement pass: recompute centroids with weights.
	d := len(points[0])
	for iter := 0; iter < 20; iter++ {
		sums := make([][]float64, km.NumClusters())
		counts := make([]float64, km.NumClusters())
		for c := range sums {
			sums[c] = make([]float64, d)
		}
		for i, p := range points {
			c := km.Assign(p)
			linalg.Axpy(w[i], p, sums[c])
			counts[c] += w[i]
		}
		moved := 0.0
		for c := range sums {
			if counts[c] == 0 {
				continue
			}
			linalg.Scale(1/counts[c], sums[c])
			moved += linalg.SqDist(sums[c], km.centroids[c])
			km.centroids[c] = sums[c]
		}
		if moved < 1e-10 {
			break
		}
	}
	return km.centroids, nil
}

// NumClusters returns the number of global clusters.
func (b *Birch) NumClusters() int { return len(b.centroids) }

// NumLeafEntries returns the CF-tree leaf entry count before global
// clustering, exposed for the explainability tooling.
func (b *Birch) NumLeafEntries() int { return b.leaves }

// Labels returns the training assignments.
func (b *Birch) Labels() []int { return b.labels }

// Centroid returns global centroid c.
func (b *Birch) Centroid(c int) []float64 { return b.centroids[c] }

// Assign returns the nearest global centroid's index.
func (b *Birch) Assign(x []float64) int {
	c, _ := nearestCentroid(b.centroids, x)
	return c
}

var _ Clusterer = (*Birch)(nil)
