package cluster

import (
	"fmt"
	"math/rand"

	"repro/internal/linalg"
	"repro/internal/obs"
)

// KMeans is Lloyd's algorithm with k-means++ seeding. Point-to-centroid
// assignment is parallelised across GOMAXPROCS goroutines, which matters
// at the paper's cluster counts (hundreds to thousands of centroids).
type KMeans struct {
	// K is the requested number of clusters; the fitted model may hold
	// fewer if the input has fewer distinct points.
	K int
	// MaxIter bounds the Lloyd iterations (default 100).
	MaxIter int
	// Tol stops iteration when no centroid moves more than Tol in
	// squared distance (default 1e-8).
	Tol float64
	// Seed makes the k-means++ initialisation reproducible.
	Seed int64

	centroids [][]float64
	labels    []int
	inertia   float64
	iters     int
	fitted    bool
}

// NewKMeans returns a K-Means model with the paper-style defaults.
func NewKMeans(k int, seed int64) *KMeans {
	return &KMeans{K: k, MaxIter: 100, Tol: 1e-8, Seed: seed}
}

// Fit runs k-means++ seeding followed by Lloyd iterations.
func (m *KMeans) Fit(points [][]float64) error {
	if m.fitted {
		return fmt.Errorf("cluster: KMeans already fitted")
	}
	if err := checkInput(points); err != nil {
		return err
	}
	if m.K <= 0 {
		return fmt.Errorf("cluster: KMeans with K = %d", m.K)
	}
	k := m.K
	if k > len(points) {
		k = len(points)
	}
	if m.MaxIter <= 0 {
		m.MaxIter = 100
	}
	if m.Tol <= 0 {
		m.Tol = 1e-8
	}
	rng := rand.New(rand.NewSource(m.Seed))
	m.centroids = kmeansPlusPlus(rng, points, k)
	m.labels = make([]int, len(points))

	d := len(points[0])
	for iter := 0; iter < m.MaxIter; iter++ {
		m.iters = iter + 1
		m.inertia = assignParallel(points, m.centroids, m.labels)

		// Recompute centroids.
		sums := make([][]float64, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = make([]float64, d)
		}
		for i, p := range points {
			c := m.labels[i]
			linalg.Axpy(1, p, sums[c])
			counts[c]++
		}
		// Re-seed empty clusters with the point farthest from its
		// centroid, the standard fix that keeps K effective clusters.
		for c := range sums {
			if counts[c] > 0 {
				continue
			}
			far, farD := 0, -1.0
			for i, p := range points {
				if counts[m.labels[i]] <= 1 {
					continue
				}
				if dd := linalg.SqDist(p, m.centroids[m.labels[i]]); dd > farD {
					far, farD = i, dd
				}
			}
			old := m.labels[far]
			counts[old]--
			linalg.Axpy(-1, points[far], sums[old])
			m.labels[far] = c
			counts[c] = 1
			copy(sums[c], points[far])
		}

		moved := 0.0
		for c := range sums {
			if counts[c] == 0 {
				continue
			}
			linalg.Scale(1/float64(counts[c]), sums[c])
			moved += linalg.SqDist(sums[c], m.centroids[c])
			m.centroids[c] = sums[c]
		}
		if moved <= m.Tol {
			break
		}
	}
	m.inertia = assignParallel(points, m.centroids, m.labels)
	m.fitted = true
	observeFit("kmeans", len(points), m.iters)
	return nil
}

// kmeansPlusPlus picks k seeds with D^2 weighting.
func kmeansPlusPlus(rng *rand.Rand, points [][]float64, k int) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := append([]float64(nil), points[rng.Intn(len(points))]...)
	centroids = append(centroids, first)

	d2 := make([]float64, len(points))
	for i, p := range points {
		d2[i] = linalg.SqDist(p, first)
	}
	for len(centroids) < k {
		total := 0.0
		for _, v := range d2 {
			total += v
		}
		var next []float64
		if total == 0 {
			next = points[rng.Intn(len(points))]
		} else {
			r := rng.Float64() * total
			idx := len(points) - 1
			acc := 0.0
			for i, v := range d2 {
				acc += v
				if acc >= r {
					idx = i
					break
				}
			}
			next = points[idx]
		}
		c := append([]float64(nil), next...)
		centroids = append(centroids, c)
		for i, p := range points {
			if dd := linalg.SqDist(p, c); dd < d2[i] {
				d2[i] = dd
			}
		}
	}
	return centroids
}

// assignParallel writes the nearest-centroid index of every point into
// labels and returns the total inertia (sum of squared distances).
func assignParallel(points [][]float64, centroids [][]float64, labels []int) float64 {
	workers := obs.Workers(len(points))
	if len(points) < 256 || workers <= 1 {
		total := 0.0
		for i, p := range points {
			c, dd := nearestCentroid(centroids, p)
			labels[i] = c
			total += dd
		}
		return total
	}
	partial := make([]float64, workers)
	obs.ParallelChunks(len(points), workers, func(w, lo, hi int) {
		sum := 0.0
		for i := lo; i < hi; i++ {
			c, dd := nearestCentroid(centroids, points[i])
			labels[i] = c
			sum += dd
		}
		partial[w] = sum
	})
	total := 0.0
	for _, v := range partial {
		total += v
	}
	return total
}

// NumClusters returns the number of centroids.
func (m *KMeans) NumClusters() int { return len(m.centroids) }

// Labels returns the training assignments.
func (m *KMeans) Labels() []int { return m.labels }

// Centroid returns centroid c.
func (m *KMeans) Centroid(c int) []float64 { return m.centroids[c] }

// Inertia returns the final sum of squared distances to assigned
// centroids, the K-Means objective value.
func (m *KMeans) Inertia() float64 { return m.inertia }

// Iterations returns the number of Lloyd iterations the last Fit ran
// (iterations to convergence, or MaxIter if the tolerance was not hit).
func (m *KMeans) Iterations() int { return m.iters }

// Assign returns the nearest centroid's index.
func (m *KMeans) Assign(x []float64) int {
	c, _ := nearestCentroid(m.centroids, x)
	return c
}

var _ Clusterer = (*KMeans)(nil)
