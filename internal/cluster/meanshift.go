package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/linalg"
	"repro/internal/obs"
)

// MeanShift is flat-kernel mean-shift clustering: every seed climbs to
// the mode of the local density, and converged modes closer than the
// bandwidth merge into one cluster. Unlike K-Means and Birch it discovers
// the cluster count itself — and, as the paper observes, on this problem
// it finds too few meaningful clusters, which is why all Mean-Shift
// variants trail in Tables 4 and 5.
type MeanShift struct {
	// Bandwidth is the flat-kernel radius; 0 estimates it from the data
	// with the quantile rule below.
	Bandwidth float64
	// Quantile tunes the bandwidth estimate: the mean over points of the
	// distance to their (Quantile * n)-th nearest neighbour. The default
	// is 0.1: scikit-learn's 0.3 makes the bandwidth span most of the
	// preprocessed feature space once the collection grows past a few
	// hundred matrices, collapsing everything into one cluster.
	Quantile float64
	// MaxSeeds caps the number of seeds that climb (seeds are a
	// deterministic subsample when the input is larger). Default 512.
	MaxSeeds int
	// MaxIter bounds the hill-climbing iterations per seed (default 200).
	MaxIter int
	// Seed drives the deterministic seed subsample.
	Seed int64

	centroids [][]float64
	labels    []int
	fitted    bool
}

// NewMeanShift returns a Mean-Shift model with automatic bandwidth.
func NewMeanShift(seed int64) *MeanShift {
	return &MeanShift{Quantile: 0.1, MaxSeeds: 512, MaxIter: 200, Seed: seed}
}

// Fit estimates the bandwidth if needed, climbs each seed to its mode,
// merges nearby modes and assigns every point to the nearest mode.
func (m *MeanShift) Fit(points [][]float64) error {
	if m.fitted {
		return fmt.Errorf("cluster: MeanShift already fitted")
	}
	if err := checkInput(points); err != nil {
		return err
	}
	if m.Quantile <= 0 || m.Quantile > 1 {
		m.Quantile = 0.1
	}
	if m.MaxSeeds <= 0 {
		m.MaxSeeds = 512
	}
	if m.MaxIter <= 0 {
		m.MaxIter = 200
	}
	bw := m.Bandwidth
	if bw <= 0 {
		bw = estimateBandwidth(points, m.Quantile, m.Seed)
	}
	if bw <= 0 {
		// Degenerate data (all points identical): one cluster.
		m.centroids = [][]float64{append([]float64(nil), points[0]...)}
		m.labels = make([]int, len(points))
		m.fitted = true
		return nil
	}

	// Deterministic seed subsample.
	seeds := points
	if len(points) > m.MaxSeeds {
		rng := rand.New(rand.NewSource(m.Seed))
		perm := rng.Perm(len(points))[:m.MaxSeeds]
		sort.Ints(perm)
		seeds = make([][]float64, m.MaxSeeds)
		for i, idx := range perm {
			seeds[i] = points[idx]
		}
	}

	bw2 := bw * bw
	modes := make([][]float64, len(seeds))
	weights := make([]int, len(seeds))
	obs.ParallelFor(len(seeds), func(s int) {
		mode := append([]float64(nil), seeds[s]...)
		next := make([]float64, len(mode))
		for iter := 0; iter < m.MaxIter; iter++ {
			for j := range next {
				next[j] = 0
			}
			inWindow := 0
			for _, p := range points {
				if linalg.SqDist(p, mode) <= bw2 {
					linalg.Axpy(1, p, next)
					inWindow++
				}
			}
			if inWindow == 0 {
				break
			}
			linalg.Scale(1/float64(inWindow), next)
			if linalg.SqDist(next, mode) < 1e-6*bw2 {
				copy(mode, next)
				weights[s] = inWindow
				break
			}
			copy(mode, next)
			weights[s] = inWindow
		}
		modes[s] = mode
	})

	// Merge modes within one bandwidth, keeping the denser mode, as
	// scikit-learn does.
	order := make([]int, len(modes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if weights[order[a]] != weights[order[b]] {
			return weights[order[a]] > weights[order[b]]
		}
		return order[a] < order[b]
	})
	var kept [][]float64
	for _, idx := range order {
		mode := modes[idx]
		dup := false
		for _, c := range kept {
			if linalg.SqDist(mode, c) <= bw2 {
				dup = true
				break
			}
		}
		if !dup {
			kept = append(kept, mode)
		}
	}
	m.centroids = kept
	m.labels = make([]int, len(points))
	assignParallel(points, m.centroids, m.labels)
	m.fitted = true
	observeFit("meanshift", len(points), 0)
	if obs.Enabled() {
		obs.Default.Histogram("cluster/meanshift/modes", obs.CountBuckets).
			Observe(float64(len(kept)))
	}
	return nil
}

// estimateBandwidth returns the mean distance from each of a sample of
// points to its (quantile * n)-th nearest neighbour, scikit-learn's
// estimate_bandwidth.
func estimateBandwidth(points [][]float64, quantile float64, seed int64) float64 {
	sample := points
	const maxSample = 500
	if len(points) > maxSample {
		rng := rand.New(rand.NewSource(seed + 1))
		perm := rng.Perm(len(points))[:maxSample]
		sample = make([][]float64, maxSample)
		for i, idx := range perm {
			sample[i] = points[idx]
		}
	}
	kth := int(quantile * float64(len(points)))
	if kth < 1 {
		kth = 1
	}
	total := 0.0
	d2 := make([]float64, len(points))
	for _, s := range sample {
		for j, p := range points {
			d2[j] = linalg.SqDist(s, p)
		}
		sort.Float64s(d2)
		k := kth
		if k >= len(d2) {
			k = len(d2) - 1
		}
		total += math.Sqrt(d2[k])
	}
	return total / float64(len(sample))
}

// NumClusters returns the number of merged modes.
func (m *MeanShift) NumClusters() int { return len(m.centroids) }

// Labels returns the training assignments.
func (m *MeanShift) Labels() []int { return m.labels }

// Centroid returns mode c.
func (m *MeanShift) Centroid(c int) []float64 { return m.centroids[c] }

// Assign returns the nearest mode's index.
func (m *MeanShift) Assign(x []float64) int {
	c, _ := nearestCentroid(m.centroids, x)
	return c
}

var _ Clusterer = (*MeanShift)(nil)
