package cluster

import "repro/internal/obs"

// observeFit records one completed clustering fit under
//
//	cluster/<algo>/fits        counter
//	cluster/<algo>/points      histogram, training-set size
//	cluster/<algo>/iterations  histogram, iterations to convergence
//
// iters <= 0 means the algorithm has no iteration notion (or it is not
// meaningful for this fit) and the iteration histogram is skipped.
func observeFit(algo string, points, iters int) {
	if !obs.Enabled() {
		return
	}
	obs.Default.Counter("cluster/" + algo + "/fits").Inc()
	obs.Default.Histogram("cluster/"+algo+"/points", obs.SizeBuckets).Observe(float64(points))
	if iters > 0 {
		obs.Default.Histogram("cluster/"+algo+"/iterations", obs.CountBuckets).Observe(float64(iters))
	}
}
