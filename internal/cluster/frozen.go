package cluster

import "fmt"

// Frozen is a deserialised, predict-only clustering: just the centroids.
// Every algorithm in this package classifies new points by nearest
// centroid, so a Frozen model reproduces the inference behaviour of any
// of them. It is the on-disk representation used by model persistence.
type Frozen struct {
	// Centroids are the cluster centres, indexable by cluster id.
	Centroids [][]float64
}

// NewFrozen captures the centroids of a fitted clusterer.
func NewFrozen(c Clusterer) *Frozen {
	f := &Frozen{Centroids: make([][]float64, c.NumClusters())}
	for i := range f.Centroids {
		f.Centroids[i] = append([]float64(nil), c.Centroid(i)...)
	}
	return f
}

// Fit is not supported: a Frozen clustering is inference-only.
func (f *Frozen) Fit([][]float64) error {
	return fmt.Errorf("cluster: Frozen clustering cannot be refitted")
}

// NumClusters returns the number of stored centroids.
func (f *Frozen) NumClusters() int { return len(f.Centroids) }

// Labels returns nil: training assignments are not persisted.
func (f *Frozen) Labels() []int { return nil }

// Centroid returns centroid c.
func (f *Frozen) Centroid(c int) []float64 { return f.Centroids[c] }

// Assign returns the nearest centroid's index.
func (f *Frozen) Assign(x []float64) int {
	c, _ := nearestCentroid(f.Centroids, x)
	return c
}

var _ Clusterer = (*Frozen)(nil)
