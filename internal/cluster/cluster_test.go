package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

// blobs generates n points around k well-separated centres and returns
// points plus their true centre index.
func blobs(rng *rand.Rand, n, k, dim int, spread float64) (points [][]float64, truth []int, centres [][]float64) {
	centres = make([][]float64, k)
	for c := range centres {
		centres[c] = make([]float64, dim)
		for j := range centres[c] {
			centres[c][j] = float64(c*10) + rng.Float64()
		}
	}
	points = make([][]float64, n)
	truth = make([]int, n)
	for i := range points {
		c := rng.Intn(k)
		truth[i] = c
		p := make([]float64, dim)
		for j := range p {
			p[j] = centres[c][j] + rng.NormFloat64()*spread
		}
		points[i] = p
	}
	return points, truth, centres
}

// agreement returns the fraction of point pairs on which two labelings
// agree about co-membership (Rand index), a permutation-invariant way to
// compare clusterings.
func agreement(a, b []int) float64 {
	same, total := 0, 0
	for i := 0; i < len(a); i++ {
		for j := i + 1; j < len(a); j++ {
			total++
			if (a[i] == a[j]) == (b[i] == b[j]) {
				same++
			}
		}
	}
	return float64(same) / float64(total)
}

func TestKMeansRecoverBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	points, truth, _ := blobs(rng, 300, 3, 4, 0.3)
	km := NewKMeans(3, 7)
	if err := km.Fit(points); err != nil {
		t.Fatal(err)
	}
	if km.NumClusters() != 3 {
		t.Fatalf("NumClusters = %d", km.NumClusters())
	}
	if r := agreement(km.Labels(), truth); r < 0.99 {
		t.Errorf("Rand index %v on separated blobs", r)
	}
	if km.Inertia() <= 0 {
		t.Errorf("Inertia = %v", km.Inertia())
	}
}

func TestKMeansAssignConsistentWithLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	points, _, _ := blobs(rng, 200, 4, 3, 0.5)
	km := NewKMeans(4, 3)
	if err := km.Fit(points); err != nil {
		t.Fatal(err)
	}
	for i, p := range points {
		if km.Assign(p) != km.Labels()[i] {
			t.Fatalf("Assign(points[%d]) != Labels()[%d]", i, i)
		}
	}
}

func TestKMeansKLargerThanN(t *testing.T) {
	points := [][]float64{{0, 0}, {1, 1}, {2, 2}}
	km := NewKMeans(10, 1)
	if err := km.Fit(points); err != nil {
		t.Fatal(err)
	}
	if km.NumClusters() != 3 {
		t.Errorf("NumClusters = %d, want capped 3", km.NumClusters())
	}
}

func TestKMeansErrors(t *testing.T) {
	if err := NewKMeans(3, 1).Fit(nil); err == nil {
		t.Error("empty input accepted")
	}
	if err := NewKMeans(0, 1).Fit([][]float64{{1}}); err == nil {
		t.Error("K=0 accepted")
	}
	if err := NewKMeans(2, 1).Fit([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged input accepted")
	}
	km := NewKMeans(1, 1)
	if err := km.Fit([][]float64{{1}}); err != nil {
		t.Fatal(err)
	}
	if err := km.Fit([][]float64{{1}}); err == nil {
		t.Error("double Fit accepted")
	}
}

func TestKMeansDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	points, _, _ := blobs(rng, 150, 3, 5, 1.0)
	a := NewKMeans(5, 42)
	b := NewKMeans(5, 42)
	if err := a.Fit(points); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(points); err != nil {
		t.Fatal(err)
	}
	for i := range points {
		if a.Labels()[i] != b.Labels()[i] {
			t.Fatal("same seed produced different labelings")
		}
	}
}

func TestKMeansEmptyClusterReseeding(t *testing.T) {
	// Many duplicate points and large K force empty clusters during
	// iteration; the model must still deliver K clusters over distinct
	// points without panicking.
	points := make([][]float64, 0, 40)
	for i := 0; i < 10; i++ {
		points = append(points, []float64{0, 0}, []float64{10, 10}, []float64{20, 0}, []float64{0, 20})
	}
	km := NewKMeans(4, 5)
	if err := km.Fit(points); err != nil {
		t.Fatal(err)
	}
	if km.NumClusters() != 4 {
		t.Fatalf("NumClusters = %d", km.NumClusters())
	}
	counts := make([]int, 4)
	for _, l := range km.Labels() {
		counts[l]++
	}
	for c, n := range counts {
		if n == 0 {
			t.Errorf("cluster %d empty after reseeding", c)
		}
	}
}

func TestMeanShiftFindsSeparatedModes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	points, truth, _ := blobs(rng, 240, 3, 3, 0.4)
	ms := NewMeanShift(11)
	if err := ms.Fit(points); err != nil {
		t.Fatal(err)
	}
	if ms.NumClusters() < 2 {
		t.Fatalf("found %d clusters, want >= 2", ms.NumClusters())
	}
	if r := agreement(ms.Labels(), truth); r < 0.9 {
		t.Errorf("Rand index %v on separated blobs", r)
	}
}

func TestMeanShiftDegenerateInput(t *testing.T) {
	points := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	ms := NewMeanShift(1)
	if err := ms.Fit(points); err != nil {
		t.Fatal(err)
	}
	if ms.NumClusters() != 1 {
		t.Errorf("identical points gave %d clusters", ms.NumClusters())
	}
	for _, l := range ms.Labels() {
		if l != 0 {
			t.Error("labels not all zero")
		}
	}
}

func TestMeanShiftFixedBandwidth(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	points, _, _ := blobs(rng, 150, 2, 2, 0.3)
	ms := NewMeanShift(2)
	ms.Bandwidth = 2.0
	if err := ms.Fit(points); err != nil {
		t.Fatal(err)
	}
	if ms.NumClusters() != 2 {
		t.Errorf("bandwidth 2.0: %d clusters, want 2", ms.NumClusters())
	}
}

func TestBirchRecoverBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	points, truth, _ := blobs(rng, 400, 4, 3, 0.3)
	b := NewBirch(4, 9)
	if err := b.Fit(points); err != nil {
		t.Fatal(err)
	}
	if b.NumClusters() != 4 {
		t.Fatalf("NumClusters = %d", b.NumClusters())
	}
	if b.NumLeafEntries() < 4 {
		t.Errorf("CF-tree has only %d leaf entries", b.NumLeafEntries())
	}
	if r := agreement(b.Labels(), truth); r < 0.98 {
		t.Errorf("Rand index %v on separated blobs", r)
	}
}

func TestBirchTreeScalesEntries(t *testing.T) {
	// With a tiny threshold every distinct point is its own leaf entry,
	// forcing many node splits; the tree must stay consistent.
	rng := rand.New(rand.NewSource(7))
	points := make([][]float64, 500)
	for i := range points {
		points[i] = []float64{rng.Float64() * 100, rng.Float64() * 100}
	}
	b := NewBirch(10, 1)
	b.Threshold = 1e-9
	b.Branching = 4
	if err := b.Fit(points); err != nil {
		t.Fatal(err)
	}
	if b.NumLeafEntries() != 500 {
		t.Errorf("leaf entries = %d, want 500 distinct", b.NumLeafEntries())
	}
	if b.NumClusters() != 10 {
		t.Errorf("NumClusters = %d", b.NumClusters())
	}
}

func TestBirchErrors(t *testing.T) {
	if err := NewBirch(3, 1).Fit(nil); err == nil {
		t.Error("empty input accepted")
	}
	if err := NewBirch(0, 1).Fit([][]float64{{1}}); err == nil {
		t.Error("K=0 accepted")
	}
	b := NewBirch(1, 1)
	if err := b.Fit([][]float64{{1}, {2}}); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit([][]float64{{1}}); err == nil {
		t.Error("double Fit accepted")
	}
}

// TestQuickAssignReturnsNearest property-tests the shared contract: for
// any fitted model, Assign(x) is the argmin over centroids of the
// distance to x.
func TestQuickAssignReturnsNearest(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		points, _, _ := blobs(rng, 60+rng.Intn(60), 2+rng.Intn(3), 2+rng.Intn(3), 0.8)
		models := []Clusterer{
			NewKMeans(3, seed),
			NewBirch(3, seed),
		}
		for _, m := range models {
			if err := m.Fit(points); err != nil {
				return false
			}
			for trial := 0; trial < 10; trial++ {
				x := points[rng.Intn(len(points))]
				got := m.Assign(x)
				want, wantD := -1, math.Inf(1)
				for c := 0; c < m.NumClusters(); c++ {
					if d := linalg.SqDist(m.Centroid(c), x); d < wantD {
						want, wantD = c, d
					}
				}
				// Equal distances may tie; accept either argmin.
				if got != want && linalg.SqDist(m.Centroid(got), x) > wantD+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestMeanShiftFindsFewerClustersThanKMeans reproduces the qualitative
// observation behind Table 4: on overlapping data Mean-Shift finds few
// coarse clusters while K-Means can be driven to a fine granularity.
func TestMeanShiftFindsFewerClustersThanKMeans(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	points := make([][]float64, 600)
	for i := range points {
		points[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	ms := NewMeanShift(3)
	if err := ms.Fit(points); err != nil {
		t.Fatal(err)
	}
	km := NewKMeans(100, 3)
	if err := km.Fit(points); err != nil {
		t.Fatal(err)
	}
	if ms.NumClusters() >= km.NumClusters() {
		t.Errorf("Mean-Shift %d clusters >= K-Means %d on diffuse data",
			ms.NumClusters(), km.NumClusters())
	}
}
