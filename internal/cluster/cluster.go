// Package cluster implements the three clustering algorithms the paper
// evaluates for semi-supervised format selection: K-Means (with
// k-means++ seeding), Mean-Shift with a flat kernel, and Birch (a CF-tree
// followed by a global clustering of leaf entries).
//
// All algorithms work on Euclidean feature vectors — the paper's
// preprocessed (log/sqrt + min-max + PCA) feature space — and expose
// their cluster centroids, so that a new matrix is classified by the
// label of the nearest centroid.
package cluster

import (
	"errors"
	"fmt"

	"repro/internal/linalg"
)

// Clusterer is a fitted clustering model.
type Clusterer interface {
	// Fit clusters the points. It must be called exactly once.
	Fit(points [][]float64) error
	// NumClusters returns the number of clusters found.
	NumClusters() int
	// Labels returns the training points' cluster indices, aligned with
	// the Fit input. Callers must not modify the slice.
	Labels() []int
	// Centroid returns cluster c's centre. Callers must not modify it.
	Centroid(c int) []float64
	// Assign returns the cluster whose centroid is nearest to x.
	Assign(x []float64) int
}

// ErrNotFitted is returned by operations requiring a fitted model.
var ErrNotFitted = errors.New("cluster: model not fitted")

// ErrEmptyInput reports a Fit call without points.
var ErrEmptyInput = errors.New("cluster: empty input")

// nearestCentroid returns the index of the closest centroid and the
// squared distance to it.
func nearestCentroid(centroids [][]float64, x []float64) (int, float64) {
	best, bestD := -1, 0.0
	for c, cen := range centroids {
		d := linalg.SqDist(cen, x)
		if best < 0 || d < bestD {
			best, bestD = c, d
		}
	}
	return best, bestD
}

func checkInput(points [][]float64) error {
	if len(points) == 0 {
		return ErrEmptyInput
	}
	d := len(points[0])
	if d == 0 {
		return fmt.Errorf("cluster: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != d {
			return fmt.Errorf("cluster: point %d has dimension %d, want %d", i, len(p), d)
		}
	}
	return nil
}
