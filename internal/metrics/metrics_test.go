package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestConfusionBasics(t *testing.T) {
	truth := []int{0, 0, 1, 1, 2, 2}
	pred := []int{0, 1, 1, 1, 2, 0}
	c, err := NewConfusion(truth, pred, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Total() != 6 {
		t.Errorf("Total = %d", c.Total())
	}
	if got := c.Accuracy(); math.Abs(got-4.0/6) > 1e-15 {
		t.Errorf("Accuracy = %v", got)
	}
	if c.Counts[0][1] != 1 || c.Counts[2][0] != 1 || c.Counts[1][1] != 2 {
		t.Errorf("counts wrong: %v", c.Counts)
	}
}

func TestConfusionErrors(t *testing.T) {
	if _, err := NewConfusion([]int{0}, []int{0, 1}, 2); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewConfusion([]int{0}, []int{5}, 2); err == nil {
		t.Error("out-of-range prediction accepted")
	}
	if _, err := NewConfusion([]int{0}, []int{0}, 1); err == nil {
		t.Error("single class accepted")
	}
}

func TestPerfectPrediction(t *testing.T) {
	truth := []int{0, 1, 2, 3, 0, 1}
	c, err := NewConfusion(truth, truth, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Accuracy() != 1 || c.F1Macro() != 1 || c.F1Weighted() != 1 {
		t.Error("perfect prediction should score 1 everywhere")
	}
	if math.Abs(c.MCC()-1) > 1e-12 {
		t.Errorf("MCC = %v, want 1", c.MCC())
	}
}

func TestMCCDegenerateMajorityPredictor(t *testing.T) {
	// Always predicting the majority class: high accuracy, zero MCC —
	// the exact pathology the paper adopts MCC to expose.
	truth := make([]int, 100)
	pred := make([]int, 100)
	for i := 90; i < 100; i++ {
		truth[i] = 1
	}
	c, err := NewConfusion(truth, pred, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Accuracy() != 0.9 {
		t.Errorf("Accuracy = %v", c.Accuracy())
	}
	if c.MCC() != 0 {
		t.Errorf("MCC = %v, want 0 for a constant predictor", c.MCC())
	}
	// Weighted F1 stays high while macro F1 is dragged down by the
	// missed minority class.
	if c.F1Weighted() <= c.F1Macro() {
		t.Errorf("weighted F1 %v <= macro F1 %v on unbalanced data",
			c.F1Weighted(), c.F1Macro())
	}
}

func TestMCCHandComputedBinary(t *testing.T) {
	// TP=4, TN=3, FP=1, FN=2 -> MCC = (4*3-1*2)/sqrt(6*5*4*5).
	truth := []int{1, 1, 1, 1, 1, 1, 0, 0, 0, 0}
	pred := []int{1, 1, 1, 1, 0, 0, 0, 0, 0, 1}
	c, err := NewConfusion(truth, pred, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := (4.0*3 - 1*2) / math.Sqrt(6*5*4*5)
	if got := c.MCC(); math.Abs(got-want) > 1e-12 {
		t.Errorf("MCC = %v, want %v", got, want)
	}
}

func TestF1HandComputed(t *testing.T) {
	// Class 0: tp=2, fp=1, fn=0 -> F1 = 4/5. Class 1: tp=1, fp=0, fn=1
	// -> F1 = 2/3.
	truth := []int{0, 0, 1, 1}
	pred := []int{0, 0, 1, 0}
	c, err := NewConfusion(truth, pred, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.F1Macro(); math.Abs(got-(0.8+2.0/3)/2) > 1e-12 {
		t.Errorf("macro F1 = %v", got)
	}
	if got := c.F1Weighted(); math.Abs(got-(0.8*2+2.0/3*2)/4) > 1e-12 {
		t.Errorf("weighted F1 = %v", got)
	}
}

func TestSpeedups(t *testing.T) {
	// Rows: [COO, CSR, ELL, HYB] times.
	times := [][]float64{
		{4, 1, 2, 8}, // best CSR
		{4, 2, 1, 8}, // best ELL
		{4, 2, 4, 8}, // best CSR
	}
	// Predictions: CSR (optimal), CSR (2x worse than ELL), ELL (2x worse
	// than CSR -> threshold event).
	pred := []int{1, 1, 2}
	r, err := Speedups(times, pred)
	if err != nil {
		t.Fatal(err)
	}
	// GT: (1/1 * 1/2 * 2/4)^(1/3) = (0.25)^(1/3)
	if math.Abs(r.GT-math.Cbrt(0.25)) > 1e-12 {
		t.Errorf("GT = %v", r.GT)
	}
	// CSR: (1/1 * 2/2 * 2/4)^(1/3) = (0.5)^(1/3)
	if math.Abs(r.CSR-math.Cbrt(0.5)) > 1e-12 {
		t.Errorf("CSR = %v", r.CSR)
	}
	if r.Threshold != 1 {
		t.Errorf("Threshold = %d, want 1", r.Threshold)
	}
}

func TestSpeedupsOracleIsOne(t *testing.T) {
	times := [][]float64{{3, 1, 2, 4}, {1, 2, 3, 4}}
	pred := []int{1, 0} // the true best each time
	r, err := Speedups(times, pred)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.GT-1) > 1e-12 {
		t.Errorf("oracle GT = %v, want 1", r.GT)
	}
	if r.CSR < 1 {
		t.Errorf("oracle CSR speedup %v < 1", r.CSR)
	}
	if r.Threshold != 0 {
		t.Errorf("oracle Threshold = %d", r.Threshold)
	}
}

func TestSpeedupsErrors(t *testing.T) {
	if _, err := Speedups(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Speedups([][]float64{{1, 2}}, []int{5}); err == nil {
		t.Error("out-of-range prediction accepted")
	}
	if _, err := Speedups([][]float64{{1, 2}}, []int{0, 1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestMaxSlowdown(t *testing.T) {
	times := [][]float64{
		{1, 2, 4, 8},  // CSR/best = 2
		{1, 10, 4, 8}, // CSR/best = 10
		{2, 1, 4, 8},  // CSR optimal
	}
	ratio, row := MaxSlowdown(times)
	if ratio != 10 || row != 1 {
		t.Errorf("MaxSlowdown = %v at %d", ratio, row)
	}
}

// TestQuickMCCBounds property-tests that MCC stays in [-1, 1] and that
// accuracy/F1 stay in [0, 1] for random confusion inputs.
func TestQuickMCCBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, k := 5+rng.Intn(200), 2+rng.Intn(4)
		truth := make([]int, n)
		pred := make([]int, n)
		for i := range truth {
			truth[i] = rng.Intn(k)
			pred[i] = rng.Intn(k)
		}
		c, err := NewConfusion(truth, pred, k)
		if err != nil {
			return false
		}
		m := c.MCC()
		if m < -1-1e-12 || m > 1+1e-12 || math.IsNaN(m) {
			return false
		}
		for _, v := range []float64{c.Accuracy(), c.F1Macro(), c.F1Weighted()} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickSpeedupGTAtMostOne property-tests GT <= 1: no predictor can
// beat the oracle.
func TestQuickSpeedupGTAtMostOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		times := make([][]float64, n)
		pred := make([]int, n)
		for i := range times {
			row := make([]float64, 4)
			for j := range row {
				row[j] = 1e-6 + rng.Float64()
			}
			times[i] = row
			pred[i] = rng.Intn(4)
		}
		r, err := Speedups(times, pred)
		if err != nil {
			return false
		}
		return r.GT <= 1+1e-9 && r.Threshold >= 0 && r.Threshold <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestClassReport(t *testing.T) {
	truth := []int{0, 0, 0, 1, 1, 2}
	pred := []int{0, 0, 1, 1, 1, 0}
	c, err := NewConfusion(truth, pred, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := c.ClassReport()
	if len(r) != 3 {
		t.Fatalf("%d classes", len(r))
	}
	// Class 0: tp=2, fp=1, fn=1 -> precision 2/3, recall 2/3.
	if math.Abs(r[0].Precision-2.0/3) > 1e-12 || math.Abs(r[0].Recall-2.0/3) > 1e-12 {
		t.Errorf("class 0: %+v", r[0])
	}
	// Class 2: never predicted -> precision 0, recall 0, support 1.
	if r[2].Precision != 0 || r[2].Recall != 0 || r[2].Support != 1 {
		t.Errorf("class 2: %+v", r[2])
	}
	if r[1].Support != 2 {
		t.Errorf("class 1 support %d", r[1].Support)
	}
	if c.String() == "" {
		t.Error("empty confusion render")
	}
}

// TestSpeedupsRejectsNonPositiveTimes checks that a zero, negative or
// non-finite kernel time is reported as an error naming the offending
// row instead of sending the geomeans to ±Inf/NaN through math.Log.
func TestSpeedupsRejectsNonPositiveTimes(t *testing.T) {
	base := func() [][]float64 {
		return [][]float64{
			{4, 2, 3, 5},
			{1, 2, 8, 4},
			{6, 3, 2, 9},
		}
	}
	for _, tc := range []struct {
		name string
		bad  float64
	}{
		{"zero", 0},
		{"negative", -1e-9},
		{"posinf", math.Inf(1)},
		{"nan", math.NaN()},
	} {
		times := base()
		times[1][2] = tc.bad
		_, err := Speedups(times, []int{1, 1, 1})
		if err == nil {
			t.Errorf("%s kernel time accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), "row 1") {
			t.Errorf("%s: error %q does not name the offending row", tc.name, err)
		}
	}
	// The clean baseline still computes.
	if _, err := Speedups(base(), []int{1, 1, 1}); err != nil {
		t.Errorf("clean input rejected: %v", err)
	}
	// A row too short to contain the CSR baseline errors instead of
	// panicking.
	if _, err := Speedups([][]float64{{3}}, []int{0}); err == nil {
		t.Error("1-entry row accepted despite missing CSR baseline")
	}
}
