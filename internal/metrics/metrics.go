// Package metrics implements the evaluation measures of the paper's
// Section 5: accuracy, F1 (weighted and macro), the multiclass Matthews
// correlation coefficient that the paper argues is the right metric for
// this highly unbalanced problem, and the SpMV-specific measures — the
// geometric-mean speedup against the ground-truth oracle (GT), against
// the always-CSR baseline (CSR), and the count of predictions causing a
// >= 1.5X slowdown (Threshold).
package metrics

import (
	"fmt"
	"math"
)

// Confusion is a square confusion matrix: Counts[t][p] is the number of
// samples of true class t predicted as p.
type Confusion struct {
	Counts [][]int
}

// NewConfusion tabulates predictions against truth for the given number
// of classes. It returns an error on length mismatch or out-of-range
// labels.
func NewConfusion(truth, pred []int, classes int) (*Confusion, error) {
	if len(truth) != len(pred) {
		return nil, fmt.Errorf("metrics: %d truths but %d predictions", len(truth), len(pred))
	}
	if classes < 2 {
		return nil, fmt.Errorf("metrics: need >= 2 classes, got %d", classes)
	}
	c := &Confusion{Counts: make([][]int, classes)}
	for i := range c.Counts {
		c.Counts[i] = make([]int, classes)
	}
	for i := range truth {
		t, p := truth[i], pred[i]
		if t < 0 || t >= classes || p < 0 || p >= classes {
			return nil, fmt.Errorf("metrics: labels (%d, %d) at row %d outside [0, %d)", t, p, i, classes)
		}
		c.Counts[t][p]++
	}
	return c, nil
}

// Total returns the number of tabulated samples.
func (c *Confusion) Total() int {
	n := 0
	for _, row := range c.Counts {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// Accuracy returns the fraction of correct predictions.
func (c *Confusion) Accuracy() float64 {
	n := c.Total()
	if n == 0 {
		return 0
	}
	hit := 0
	for i := range c.Counts {
		hit += c.Counts[i][i]
	}
	return float64(hit) / float64(n)
}

// perClass returns per-class true positives, false positives and false
// negatives.
func (c *Confusion) perClass() (tp, fp, fn []int) {
	k := len(c.Counts)
	tp = make([]int, k)
	fp = make([]int, k)
	fn = make([]int, k)
	for t := 0; t < k; t++ {
		for p := 0; p < k; p++ {
			n := c.Counts[t][p]
			if t == p {
				tp[t] += n
			} else {
				fn[t] += n
				fp[p] += n
			}
		}
	}
	return tp, fp, fn
}

// F1Macro returns the unweighted mean of per-class F1 scores. Classes
// absent from both truth and prediction contribute zero, the
// scikit-learn convention.
func (c *Confusion) F1Macro() float64 {
	tp, fp, fn := c.perClass()
	sum := 0.0
	for i := range tp {
		sum += f1(tp[i], fp[i], fn[i])
	}
	return sum / float64(len(tp))
}

// F1Weighted returns per-class F1 weighted by class support. The paper's
// F1 columns track accuracy closely on these unbalanced datasets, which
// is the signature of support weighting.
func (c *Confusion) F1Weighted() float64 {
	tp, fp, fn := c.perClass()
	total := c.Total()
	if total == 0 {
		return 0
	}
	sum := 0.0
	for i := range tp {
		support := tp[i] + fn[i]
		sum += float64(support) * f1(tp[i], fp[i], fn[i])
	}
	return sum / float64(total)
}

func f1(tp, fp, fn int) float64 {
	den := 2*tp + fp + fn
	if den == 0 {
		return 0
	}
	return 2 * float64(tp) / float64(den)
}

// MCC returns the multiclass Matthews correlation coefficient (the R_K
// statistic of Gorodkin 2004), the paper's headline metric. It is zero
// when either marginal is degenerate (e.g. the model predicts one class
// for everything), which is exactly the behaviour that makes it
// informative on unbalanced data.
func (c *Confusion) MCC() float64 {
	k := len(c.Counts)
	n := float64(c.Total())
	if n == 0 {
		return 0
	}
	// c = total correct, s = n; t_k = truth marginals, p_k = prediction
	// marginals.
	correct := 0.0
	tSum := make([]float64, k)
	pSum := make([]float64, k)
	for t := 0; t < k; t++ {
		for p := 0; p < k; p++ {
			v := float64(c.Counts[t][p])
			if t == p {
				correct += v
			}
			tSum[t] += v
			pSum[p] += v
		}
	}
	var tp, tt, pp float64
	for i := 0; i < k; i++ {
		tp += tSum[i] * pSum[i]
		tt += tSum[i] * tSum[i]
		pp += pSum[i] * pSum[i]
	}
	num := correct*n - tp
	den := math.Sqrt(n*n-pp) * math.Sqrt(n*n-tt)
	if den == 0 {
		return 0
	}
	return num / den
}

// SpeedupReport holds the SpMV-outcome measures of Tables 6 and 7.
type SpeedupReport struct {
	// GT is the geometric-mean speedup relative to the oracle that
	// always picks the fastest format (<= 1 by construction).
	GT float64
	// CSR is the geometric-mean speedup relative to always using CSR.
	CSR float64
	// Threshold is the number of matrices whose predicted format is
	// >= SlowdownThreshold slower than CSR.
	Threshold int
}

// SlowdownThreshold is the slowdown ratio above which a misprediction
// counts in the Threshold column (1.5X in the paper).
const SlowdownThreshold = 1.5

// CSRIndex is the position of CSR within sparse.KernelFormats() order
// (COO, CSR, ELL, HYB), duplicated here to keep this package dependency
// free.
const CSRIndex = 1

// Speedups computes the report from per-matrix kernel times (rows of
// per-format seconds in KernelFormats order) and predicted labels.
func Speedups(times [][]float64, pred []int) (SpeedupReport, error) {
	if len(times) != len(pred) {
		return SpeedupReport{}, fmt.Errorf("metrics: %d time rows but %d predictions", len(times), len(pred))
	}
	if len(times) == 0 {
		return SpeedupReport{}, fmt.Errorf("metrics: empty speedup input")
	}
	var logGT, logCSR float64
	thresh := 0
	for i, row := range times {
		p := pred[i]
		if p < 0 || p >= len(row) {
			return SpeedupReport{}, fmt.Errorf("metrics: prediction %d out of range at row %d", p, i)
		}
		if len(row) <= CSRIndex {
			return SpeedupReport{}, fmt.Errorf("metrics: row %d has %d kernel times, need > %d for the CSR baseline", i, len(row), CSRIndex)
		}
		best := math.Inf(1)
		for k, t := range row {
			// A zero or negative kernel time would send math.Log to
			// ±Inf/NaN and silently poison both geomeans; reject it with
			// the offending row instead.
			if t <= 0 || math.IsInf(t, 0) || math.IsNaN(t) {
				return SpeedupReport{}, fmt.Errorf("metrics: non-positive kernel time %v for format %d at row %d", t, k, i)
			}
			if t < best {
				best = t
			}
		}
		tPred := row[p]
		tCSR := row[CSRIndex]
		logGT += math.Log(best / tPred)
		logCSR += math.Log(tCSR / tPred)
		if tPred/tCSR >= SlowdownThreshold {
			thresh++
		}
	}
	n := float64(len(times))
	return SpeedupReport{
		GT:        math.Exp(logGT / n),
		CSR:       math.Exp(logCSR / n),
		Threshold: thresh,
	}, nil
}

// MaxSlowdown returns the largest ratio between a row's CSR time and its
// best time, and the row index where it occurs — the paper's
// "mawi on an RTX 8000" anecdote generator.
func MaxSlowdown(times [][]float64) (ratio float64, row int) {
	ratio = 1
	for i, r := range times {
		best := math.Inf(1)
		for _, t := range r {
			if t < best {
				best = t
			}
		}
		if s := r[CSRIndex] / best; s > ratio {
			ratio, row = s, i
		}
	}
	return ratio, row
}

// ClassStats holds one class's precision, recall, F1 and support.
type ClassStats struct {
	Class     int
	Precision float64
	Recall    float64
	F1        float64
	Support   int
}

// ClassReport returns per-class statistics, the breakdown behind the
// paper's observation that transfer mispredictions concentrate in the
// small COO and HYB classes.
func (c *Confusion) ClassReport() []ClassStats {
	tp, fp, fn := c.perClass()
	out := make([]ClassStats, len(tp))
	for i := range out {
		s := ClassStats{Class: i, Support: tp[i] + fn[i], F1: f1(tp[i], fp[i], fn[i])}
		if tp[i]+fp[i] > 0 {
			s.Precision = float64(tp[i]) / float64(tp[i]+fp[i])
		}
		if tp[i]+fn[i] > 0 {
			s.Recall = float64(tp[i]) / float64(tp[i]+fn[i])
		}
		out[i] = s
	}
	return out
}

// String renders the confusion matrix with row/column totals.
func (c *Confusion) String() string {
	var b []byte
	b = append(b, "true\\pred"...)
	for p := range c.Counts {
		b = append(b, fmt.Sprintf("%8d", p)...)
	}
	b = append(b, '\n')
	for t, row := range c.Counts {
		b = append(b, fmt.Sprintf("%9d", t)...)
		for _, v := range row {
			b = append(b, fmt.Sprintf("%8d", v)...)
		}
		b = append(b, '\n')
	}
	return string(b)
}
