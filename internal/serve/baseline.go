package serve

import (
	"fmt"
	"sort"

	"repro/internal/features"
)

// Training baselines for drift monitoring. An artifact trained by
// `spmvselect train` records the distribution of its training data —
// the label (format) histogram plus decile-bucketed histograms of a
// few load-bearing features — so a serving registry can compare the
// traffic a model actually receives against what it was fitted on.
// The baseline travels inside the gob artifact; artifacts saved before
// baselines existed decode with a nil Baseline and simply opt out of
// drift monitoring (gob tolerates the missing field in both
// directions, so ArtifactVersion is unchanged).

// baselineFeatureIdx are the features the baseline histograms track:
// the size/shape signals (rows, nonzeros, density), the row-length
// moments that drive format choice in the paper's Table 1, and the ELL
// efficiency fraction. Six signals keep the artifact small while
// covering the axes along which production traffic typically departs
// from a training corpus.
var baselineFeatureIdx = []int{
	features.NRows, features.NNZ, features.NNZFrac,
	features.NNZMu, features.NNZSig, features.EllFrac,
}

// FeatureBaseline is the training histogram of one tracked feature.
type FeatureBaseline struct {
	// Index is the feature's position in the raw vector; Name is its
	// Table 1 spelling.
	Index int
	Name  string
	// Bounds are interior cut points (deciles of the training sample,
	// deduplicated, strictly increasing); Counts has len(Bounds)+1
	// buckets, bucket i counting training values v with
	// Bounds[i-1] < v <= Bounds[i] (last bucket is overflow).
	Bounds []float64
	Counts []int64
}

// Baseline is the training-distribution record of one artifact.
type Baseline struct {
	// FormatCounts is the training label histogram in Formats order.
	FormatCounts []int64
	// Features are the tracked feature histograms.
	Features []FeatureBaseline
}

// BucketIndex returns the baseline bucket of value v: the first i with
// v <= bounds[i], or len(bounds) for overflow.
func BucketIndex(bounds []float64, v float64) int {
	return sort.SearchFloat64s(bounds, v)
}

// ComputeBaseline summarises a training set: raw feature rows x with
// labels y (in the artifact's Formats order, numClasses wide). Rows
// shorter than the tracked indices are skipped defensively.
func ComputeBaseline(x [][]float64, y []int, numClasses int) *Baseline {
	b := &Baseline{FormatCounts: make([]int64, numClasses)}
	for _, label := range y {
		if label >= 0 && label < numClasses {
			b.FormatCounts[label]++
		}
	}
	for _, idx := range baselineFeatureIdx {
		vals := make([]float64, 0, len(x))
		for _, row := range x {
			if idx < len(row) {
				vals = append(vals, row[idx])
			}
		}
		fb := FeatureBaseline{Index: idx, Name: features.Names[idx], Bounds: decileBounds(vals)}
		fb.Counts = make([]int64, len(fb.Bounds)+1)
		for _, v := range vals {
			fb.Counts[BucketIndex(fb.Bounds, v)]++
		}
		b.Features = append(b.Features, fb)
	}
	return b
}

// decileBounds returns the 9 interior deciles of vals, deduplicated to
// a strictly increasing sequence (heavily tied features — a corpus of
// equal-sized matrices — yield fewer, possibly zero, cut points).
func decileBounds(vals []float64) []float64 {
	if len(vals) == 0 {
		return nil
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	var bounds []float64
	for k := 1; k <= 9; k++ {
		q := sorted[(k*len(sorted))/10]
		if len(bounds) == 0 || q > bounds[len(bounds)-1] {
			bounds = append(bounds, q)
		}
	}
	// Drop a final cut equal to the maximum: it would leave a permanently
	// empty overflow bucket.
	if n := len(bounds); n > 0 && bounds[n-1] >= sorted[len(sorted)-1] {
		bounds = bounds[:n-1]
	}
	return bounds
}

// Validate checks internal consistency (called from Artifact.Validate
// when a baseline is present).
func (b *Baseline) Validate() error {
	if len(b.FormatCounts) == 0 {
		return fmt.Errorf("serve: baseline has no format counts")
	}
	for _, fb := range b.Features {
		if len(fb.Counts) != len(fb.Bounds)+1 {
			return fmt.Errorf("serve: baseline feature %q has %d buckets for %d bounds",
				fb.Name, len(fb.Counts), len(fb.Bounds))
		}
		for i := 1; i < len(fb.Bounds); i++ {
			if fb.Bounds[i] <= fb.Bounds[i-1] {
				return fmt.Errorf("serve: baseline feature %q bounds not increasing", fb.Name)
			}
		}
	}
	return nil
}
