package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestTraceIDHeaderFlow: an incoming X-Request-ID is honoured and
// echoed; a request without one gets a minted ID; the access log line
// carries the same ID plus the resolved arch, model hash and cache
// disposition.
func TestTraceIDHeaderFlow(t *testing.T) {
	defer obs.Default.Reset()
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))

	srv, _, _, mm := testServer(t, Config{})
	srv.accessLog = logger
	h := srv.Handler()

	req := httptest.NewRequest(http.MethodPost, "/v1/predict/matrix", bytes.NewReader(mm))
	req.Header.Set("X-Request-ID", "trace-test-42")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("predict: %d %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Request-ID"); got != "trace-test-42" {
		t.Errorf("X-Request-ID echo = %q", got)
	}

	// No incoming ID: one is minted (16 hex chars) and echoed.
	req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-ID"); len(got) != 16 {
		t.Errorf("minted trace ID = %q, want 16 hex chars", got)
	}

	// Parse the access log: one line per request, JSON, trace IDs intact.
	var lines []map[string]any
	sc := bufio.NewScanner(&logBuf)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("access log line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("access log has %d lines, want 2", len(lines))
	}
	first := lines[0]
	if first["trace_id"] != "trace-test-42" {
		t.Errorf("logged trace_id = %v", first["trace_id"])
	}
	if first["path"] != "/v1/predict/matrix" || first["method"] != "POST" {
		t.Errorf("logged path/method = %v/%v", first["path"], first["method"])
	}
	if first["status"].(float64) != 200 {
		t.Errorf("logged status = %v", first["status"])
	}
	if first["arch"] != "turing" {
		t.Errorf("logged arch = %v", first["arch"])
	}
	if hash, _ := first["model_hash"].(string); len(hash) == 0 {
		t.Errorf("logged model_hash empty")
	}
	if first["cached"] != false {
		t.Errorf("logged cached = %v", first["cached"])
	}
	if _, ok := first["duration_ms"].(float64); !ok {
		t.Errorf("logged duration_ms = %v", first["duration_ms"])
	}
}

// TestServerMetricsEndpoint: the in-process /metrics route serves a
// parseable exposition carrying the labeled request metrics, the
// per-arch prediction counts and the SLO gauges.
func TestServerMetricsEndpoint(t *testing.T) {
	defer obs.Default.Reset()
	srv, _, _, mm := testServer(t, Config{})
	h := srv.Handler()

	// Generate traffic: two predictions (second is a cache hit).
	for i := 0; i < 2; i++ {
		rec, _ := postJSON(t, h, "/v1/predict/matrix", mm)
		if rec.Code != http.StatusOK {
			t.Fatalf("predict %d: %d", i, rec.Code)
		}
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	m, err := obs.ParsePrometheus(rec.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	// Both predictions (including the cache hit) count, labeled by arch.
	if got := m.Sum("spmvselect_serve_predictions_total", "arch", "turing"); got != 2 {
		t.Errorf("predictions{arch=turing} = %v, want 2", got)
	}
	if v, ok := m.Value("spmvselect_serve_http_requests_total",
		"endpoint", "/v1/predict/matrix", "status", "200"); !ok || v != 2 {
		t.Errorf("http_requests{matrix,200} = %v %v", v, ok)
	}
	if v, ok := m.Value("spmvselect_serve_http_seconds_count",
		"endpoint", "/v1/predict/matrix", "arch", "turing"); !ok || v != 2 {
		t.Errorf("http_seconds_count = %v %v", v, ok)
	}
	if v, ok := m.Value("spmvselect_serve_cache_hits_total"); !ok || v < 1 {
		t.Errorf("cache hits = %v %v", v, ok)
	}
	// SLO gauges are refreshed by the scrape itself.
	if v, ok := m.Value("spmvselect_slo_requests", "window", "1m"); !ok || v != 2 {
		t.Errorf("slo_requests{1m} = %v %v (scrapes must not count)", v, ok)
	}
	if v, ok := m.Value("spmvselect_slo_availability", "window", "1m"); !ok || v != 1 {
		t.Errorf("slo_availability{1m} = %v %v", v, ok)
	}
}

// TestAdminSLOEndpoint: token-gated, works without an AdminBackend
// (static server), reports the request just made.
func TestAdminSLOEndpoint(t *testing.T) {
	defer obs.Default.Reset()
	srv, _, _, mm := testServer(t, Config{AdminToken: "sekrit"})
	h := srv.Handler()
	if rec, _ := postJSON(t, h, "/v1/predict/matrix", mm); rec.Code != http.StatusOK {
		t.Fatalf("predict: %d", rec.Code)
	}

	// No token: 401.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/admin/slo", nil))
	if rec.Code != http.StatusUnauthorized {
		t.Fatalf("tokenless /v1/admin/slo: %d, want 401", rec.Code)
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/admin/slo", nil)
	req.Header.Set("Authorization", "Bearer sekrit")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/admin/slo: %d %s", rec.Code, rec.Body.String())
	}
	var rep obs.SLOReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Objective != 0.999 {
		t.Errorf("objective = %v", rep.Objective)
	}
	if len(rep.Windows) != 3 || rep.Windows[0].Requests < 1 {
		t.Errorf("windows = %+v", rep.Windows)
	}

	// Drift on a static backend: 501, clearly explained.
	req = httptest.NewRequest(http.MethodGet, "/v1/admin/drift", nil)
	req.Header.Set("Authorization", "Bearer sekrit")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotImplemented {
		t.Errorf("/v1/admin/drift on static backend: %d, want 501", rec.Code)
	}
}
