package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/obs"
)

// Traffic recording. With Config.Capture set (the CLI's `serve
// -record DIR`), every successfully answered prediction request is
// appended to the capture log: a JSON metadata header — endpoint,
// resolved arch, trace ID, model hash, content type, the served
// predictions — followed by the verbatim request body, framed by
// obs.CaptureWriter's length-prefixed rotating files. `spmvselect
// replay` resends the bodies against a live server and diffs its
// answers against the recorded predictions, which is both a load
// generator with real traffic shapes and a model-regression check.

// CaptureRecord is the metadata header of one recorded request. The
// raw request body follows the header's newline verbatim.
type CaptureRecord struct {
	// UnixNano is the capture time.
	UnixNano int64 `json:"ts_unix_ns"`
	// Endpoint is the route that answered ("/v1/predict/matrix",
	// "/v1/predict/features" or "/v1/predict/batch").
	Endpoint string `json:"endpoint"`
	// Arch is the resolved architecture that answered (not the raw
	// request parameter), so replay can pin the same routing.
	Arch string `json:"arch"`
	// TraceID is the request's X-Request-ID.
	TraceID string `json:"trace_id"`
	// ModelHash identifies the artifact that produced the answers.
	ModelHash string `json:"model_hash"`
	// ContentType is the request's Content-Type header (replay must
	// resend JSON bodies as JSON).
	ContentType string `json:"content_type,omitempty"`
	// Predictions are the served format names — one entry for a single
	// prediction, one per item for a batch ("" for failed items).
	Predictions []string `json:"predictions"`
}

// EncodeCaptureRecord frames one request as a capture-log record:
// the JSON header, a newline, then the raw body.
func EncodeCaptureRecord(rec CaptureRecord, body []byte) ([]byte, error) {
	header, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("serve: encoding capture header: %w", err)
	}
	out := make([]byte, 0, len(header)+1+len(body))
	out = append(out, header...)
	out = append(out, '\n')
	out = append(out, body...)
	return out, nil
}

// DecodeCaptureRecord splits one capture-log record back into its
// metadata header and raw request body.
func DecodeCaptureRecord(raw []byte) (CaptureRecord, []byte, error) {
	i := bytes.IndexByte(raw, '\n')
	if i < 0 {
		return CaptureRecord{}, nil, fmt.Errorf("serve: capture record has no header line")
	}
	var rec CaptureRecord
	if err := json.Unmarshal(raw[:i], &rec); err != nil {
		return CaptureRecord{}, nil, fmt.Errorf("serve: decoding capture header: %w", err)
	}
	if rec.Endpoint == "" {
		return CaptureRecord{}, nil, fmt.Errorf("serve: capture record names no endpoint")
	}
	return rec, raw[i+1:], nil
}

// captureRequest appends one answered request to the capture log.
// Recording failures never fail the request — they are counted and the
// answer already went out.
func (s *Server) captureRequest(ctx context.Context, endpoint string, lm LiveModel, contentType string, body []byte, preds []string) {
	if s.capture == nil {
		return
	}
	rec := CaptureRecord{
		UnixNano:    time.Now().UnixNano(),
		Endpoint:    endpoint,
		Arch:        lm.Arch,
		TraceID:     obs.TraceID(ctx),
		ModelHash:   lm.Hash,
		ContentType: contentType,
		Predictions: preds,
	}
	data, err := EncodeCaptureRecord(rec, body)
	if err == nil {
		err = s.capture.Append(data)
	}
	if err != nil {
		s.captureErrors.Inc()
		return
	}
	s.captureRecords.Inc()
}
