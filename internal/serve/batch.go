package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/features"
	"repro/internal/obs"
	"repro/internal/sparse"
)

// The batch prediction endpoint: one request carrying many MatrixMarket
// bodies, fanned out over the shared obs worker pool so parsing,
// feature extraction and inference parallelise across items. The whole
// batch is answered by one resolved model (a hot-swap mid-request
// never splits a batch across two model versions), holds one
// concurrency slot (the obs pool's global worker cap bounds the actual
// CPU fan-out), and each item hits the same content-hash LRU as the
// single-matrix endpoint.

// batchRequest is the JSON body of /v1/predict/batch. The endpoint
// also accepts a text/plain body: concatenated MatrixMarket files,
// split on their "%%MatrixMarket" banner lines. The text form skips
// JSON string decoding of the (large) matrix payloads entirely, which
// is what makes batching pay even for megabyte-scale matrices; arch
// routing then comes from the ?arch= query parameter.
type batchRequest struct {
	// Arch routes the whole batch; empty selects the default.
	Arch string `json:"arch,omitempty"`
	// Matrices are MatrixMarket texts, answered positionally.
	Matrices []string `json:"matrices"`
}

// splitMatrixMarket splits a concatenation of MatrixMarket files on
// their "%%MatrixMarket" banner lines (every well-formed file starts
// with one). The returned items alias body — no copies of the matrix
// payloads are made.
func splitMatrixMarket(body []byte) [][]byte {
	marker := []byte("%%MatrixMarket")
	var starts []int
	for i := 0; i < len(body); {
		if bytes.HasPrefix(body[i:], marker) {
			starts = append(starts, i)
		}
		j := bytes.IndexByte(body[i:], '\n')
		if j < 0 {
			break
		}
		i += j + 1
	}
	parts := make([][]byte, len(starts))
	for k, s := range starts {
		end := len(body)
		if k+1 < len(starts) {
			end = starts[k+1]
		}
		parts[k] = body[s:end]
	}
	return parts
}

// batchItem is one positional answer. Error is set (and the prediction
// fields zero) when that item failed; other items are unaffected.
type batchItem struct {
	Prediction
	Cached bool   `json:"cached"`
	Error  string `json:"error,omitempty"`
}

// batchResponse is the JSON answer of /v1/predict/batch.
type batchResponse struct {
	Arch      string      `json:"arch"`
	ModelHash string      `json:"model_hash"`
	Count     int         `json:"count"`
	Errors    int         `json:"errors"`
	Results   []batchItem `json:"results"`
}

// predictBatchItem answers one batch position: the shared predictBody
// path plus the per-item feedback registration (batch item i of
// request ID reports as "ID#i").
func (s *Server) predictBatchItem(ctx context.Context, lm, cand LiveModel, shadowed bool, scratch *features.Scratch, ps *sparse.ParseScratch, item []byte, i int) batchItem {
	if err := ctx.Err(); err != nil {
		return batchItem{Error: "request cancelled: " + err.Error()}
	}
	if len(item) == 0 {
		return batchItem{Error: "empty matrix body"}
	}
	ans, err := s.predictBody(ctx, lm, cand, shadowed, scratch, ps, item)
	if err != nil {
		return batchItem{Error: err.Error()}
	}
	s.notePending(ctx, "#"+strconv.Itoa(i), lm, ans.pred, ans.cand, ans.candOK)
	return batchItem{Prediction: ans.pred, Cached: ans.cached}
}

// predictBatch answers a bounded batch of MatrixMarket bodies.
func (s *Server) predictBatch(ctx context.Context, r *http.Request) (any, error) {
	body, err := s.readBody(r)
	if err != nil {
		return nil, err
	}
	var items [][]byte
	var reqArch string
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/json") ||
		(ct == "" && bytes.HasPrefix(bytes.TrimLeft(body, " \t\r\n"), []byte("{"))) {
		var req batchRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return nil, badRequest("parsing JSON body: %v", err)
		}
		reqArch = req.Arch
		items = make([][]byte, len(req.Matrices))
		for i, m := range req.Matrices {
			items[i] = []byte(m)
		}
	} else {
		items = splitMatrixMarket(body)
		if len(items) == 0 {
			return nil, badRequest("text batch: no %%%%MatrixMarket banner lines in the body")
		}
	}
	arch := reqArch
	if arch == "" {
		arch = r.URL.Query().Get("arch")
	}
	lm, err := s.live(arch)
	if err != nil {
		return nil, err
	}
	noteModel(ctx, lm)
	n := len(items)
	if n == 0 {
		return nil, badRequest("empty batch: provide at least one matrix")
	}
	if n > s.cfg.MaxBatchItems {
		return nil, &httpError{status: http.StatusRequestEntityTooLarge,
			err: badRequest("batch of %d matrices exceeds the per-request limit of %d", n, s.cfg.MaxBatchItems)}
	}
	s.batchReqs.Inc()
	s.batchItems.Add(int64(n))

	cand, shadowed := s.backend.Shadow(lm.Arch)
	results := make([]batchItem, n)
	var itemErrs atomic.Int64
	obs.ParallelChunks(n, obs.Workers(n), func(w, lo, hi int) {
		// One feature-extraction scratch and one pooled parse scratch
		// per worker: a batch performs a handful of buffer allocations
		// instead of several per matrix.
		var scratch features.Scratch
		ps := sparse.GetParseScratch()
		defer sparse.PutParseScratch(ps)
		for i := lo; i < hi; i++ {
			// Each item gets its own span; ctx carries the request's
			// trace ID, so every item in the fan-out is attributable to
			// the parent X-Request-ID.
			ictx, span := obs.StartChild(ctx, "serve/batch/item")
			span.SetMetric("index", float64(i))
			results[i] = s.predictBatchItem(ictx, lm, cand, shadowed, &scratch, ps, items[i], i)
			if results[i].Error != "" {
				itemErrs.Add(1)
			}
			span.End()
		}
	})
	errs := int(itemErrs.Load())
	s.batchErrors.Add(int64(errs))
	preds := make([]string, n)
	for i := range results {
		preds[i] = results[i].Format // "" for failed items
	}
	s.captureRequest(ctx, "/v1/predict/batch", lm, ct, body, preds)
	return batchResponse{
		Arch:      lm.Arch,
		ModelHash: lm.Hash,
		Count:     n,
		Errors:    errs,
		Results:   results,
	}, nil
}
