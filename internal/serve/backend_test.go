package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/sparse"
)

// fakeBackend is a swappable in-memory Backend + AdminBackend for
// exercising the server's routing, shadow scoring, readiness and admin
// plumbing without the registry (which has its own tests).
type fakeBackend struct {
	mu       sync.Mutex
	def      string
	models   map[string]LiveModel
	shadows  map[string]LiveModel
	records  []string // "arch live->cand" per RecordShadow
	notReady error
	reloadCh []string
}

func newFakeBackend(def string) *fakeBackend {
	return &fakeBackend{def: def, models: map[string]LiveModel{}, shadows: map[string]LiveModel{}}
}

func (f *fakeBackend) set(arch string, art *Artifact, hash string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.models[arch] = LiveModel{Arch: arch, Hash: hash, Source: "memory", Artifact: art}
}

func (f *fakeBackend) setShadow(arch string, art *Artifact, hash string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.shadows[arch] = LiveModel{Arch: arch, Hash: hash, Source: "memory", Artifact: art}
}

func (f *fakeBackend) DefaultArch() string { return f.def }

func (f *fakeBackend) Live(arch string) (LiveModel, error) {
	a := NormalizeArch(arch)
	if a == "" {
		a = f.def
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	lm, ok := f.models[a]
	if !ok {
		return LiveModel{}, fmt.Errorf("%w %q", ErrUnknownArch, arch)
	}
	if lm.Artifact == nil {
		return LiveModel{}, fmt.Errorf("%w for %q", ErrNotLoaded, a)
	}
	return lm, nil
}

func (f *fakeBackend) Shadow(arch string) (LiveModel, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	lm, ok := f.shadows[NormalizeArch(arch)]
	return lm, ok
}

func (f *fakeBackend) RecordShadow(arch string, live, cand Prediction) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.records = append(f.records, fmt.Sprintf("%s %d->%d", arch, live.Label, cand.Label))
}

func (f *fakeBackend) Ready() error { f.mu.Lock(); defer f.mu.Unlock(); return f.notReady }

func (f *fakeBackend) Status() []ArchStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []ArchStatus
	for a, lm := range f.models {
		out = append(out, ArchStatus{Arch: a, Default: a == f.def, Loaded: lm.Artifact != nil, Hash: lm.Hash})
	}
	return out
}

func (f *fakeBackend) Reload() ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.reloadCh, nil
}

func (f *fakeBackend) Promote(arch string) (string, error) {
	a := NormalizeArch(arch)
	f.mu.Lock()
	defer f.mu.Unlock()
	cand, ok := f.shadows[a]
	if !ok {
		return "", fmt.Errorf("no shadow for %q", a)
	}
	f.models[a] = cand
	delete(f.shadows, a)
	return cand.Hash, nil
}

func (f *fakeBackend) ShadowReport() any {
	return map[string]any{"fake": true}
}

// trainArtifact fits a small semisup artifact over the shared corpus;
// seed/clusters vary so tests can mint genuinely different models.
func trainArtifact(t *testing.T, ms []*sparse.CSR, best []sparse.Format, clusters int, seed int64) *Artifact {
	t.Helper()
	sel, err := core.TrainSelector(ms, best, core.Options{NumClusters: clusters, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return NewSemisupArtifact(sel.Model(), "Turing")
}

func mmBytes(t *testing.T, m *sparse.CSR) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sparse.WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCacheKeyIncludesModelHash is the regression test for the
// stale-cache bug: a cached answer for one model version must be
// unreachable after the backend swaps to a different artifact, even
// when nobody flushed the cache.
func TestCacheKeyIncludesModelHash(t *testing.T) {
	ms, best := labelledCorpus(t, "Turing")
	artA := trainArtifact(t, ms, best, 10, 7)
	fb := newFakeBackend("turing")
	fb.set("turing", artA, "hash-a")
	srv, err := NewBackendServer(fb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	mm := mmBytes(t, ms[0])

	rec, out := postJSON(t, h, "/v1/predict/matrix", mm)
	if rec.Code != http.StatusOK || out["cached"] != false {
		t.Fatalf("first request: %d %v", rec.Code, out)
	}
	rec, out = postJSON(t, h, "/v1/predict/matrix", mm)
	if rec.Code != http.StatusOK || out["cached"] != true || out["model_hash"] != "hash-a" {
		t.Fatalf("repeat request: %d %v, want cached hash-a", rec.Code, out)
	}

	// Hot-swap WITHOUT flushing: the hash in the key must force a miss.
	artB := trainArtifact(t, ms, best, 6, 99)
	fb.set("turing", artB, "hash-b")
	rec, out = postJSON(t, h, "/v1/predict/matrix", mm)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-swap request: %d %v", rec.Code, out)
	}
	if out["cached"] != false || out["model_hash"] != "hash-b" {
		t.Fatalf("post-swap request served stale cache: %v", out)
	}

	// And the flush hook empties the cache outright.
	if srv.cache.Len() == 0 {
		t.Fatal("expected cached entries before flush")
	}
	srv.FlushCache()
	if got := srv.cache.Len(); got != 0 {
		t.Fatalf("cache has %d entries after FlushCache", got)
	}
}

// TestBatchEndpoint covers the happy path, per-item errors, positional
// answers, cache interplay with the single endpoint, and the batch
// size bound.
func TestBatchEndpoint(t *testing.T) {
	srv, art, m, mm := testServer(t, Config{MaxBatchItems: 3})
	h := srv.Handler()
	ms, _ := labelledCorpus(t, "Turing")
	mm2 := mmBytes(t, ms[1])
	want := art.MustPredict(t, m)
	want2 := art.MustPredict(t, ms[1])

	body, _ := json.Marshal(batchRequest{Matrices: []string{string(mm), string(mm2), "%%MatrixMarket nope"}})
	rec, _ := postJSON(t, h, "/v1/predict/batch", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch: %d %s", rec.Code, rec.Body.String())
	}
	var resp batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 3 || resp.Errors != 1 || len(resp.Results) != 3 {
		t.Fatalf("batch response = %+v", resp)
	}
	if resp.Results[0].Format != want.Format || resp.Results[1].Format != want2.Format {
		t.Errorf("batch predictions = %q %q, want %q %q",
			resp.Results[0].Format, resp.Results[1].Format, want.Format, want2.Format)
	}
	if resp.Results[2].Error == "" {
		t.Error("bad item produced no error")
	}
	if resp.ModelHash == "" || resp.Arch == "" {
		t.Errorf("batch response missing identity: %+v", resp)
	}

	// A single request for the same matrix hits the batch-populated cache.
	rec, out := postJSON(t, h, "/v1/predict/matrix", mm)
	if rec.Code != http.StatusOK || out["cached"] != true {
		t.Errorf("single request after batch: %d %v, want cache hit", rec.Code, out)
	}

	// The text form: concatenated MatrixMarket files split on their
	// banner lines, answered identically to the JSON form.
	concat := append(append([]byte{}, mm...), mm2...)
	req := httptest.NewRequest(http.MethodPost, "/v1/predict/batch", bytes.NewReader(concat))
	req.Header.Set("Content-Type", "text/plain")
	trec := httptest.NewRecorder()
	h.ServeHTTP(trec, req)
	if trec.Code != http.StatusOK {
		t.Fatalf("text batch: %d %s", trec.Code, trec.Body.String())
	}
	var tresp batchResponse
	if err := json.Unmarshal(trec.Body.Bytes(), &tresp); err != nil {
		t.Fatal(err)
	}
	if tresp.Count != 2 || tresp.Errors != 0 ||
		tresp.Results[0].Format != want.Format || tresp.Results[1].Format != want2.Format {
		t.Fatalf("text batch response = %+v, want formats %q %q", tresp, want.Format, want2.Format)
	}

	// A text body with no banner lines cannot be split.
	req = httptest.NewRequest(http.MethodPost, "/v1/predict/batch", strings.NewReader("not a matrix\n"))
	req.Header.Set("Content-Type", "text/plain")
	trec = httptest.NewRecorder()
	h.ServeHTTP(trec, req)
	if trec.Code != http.StatusBadRequest {
		t.Errorf("unsplittable text batch: %d, want 400", trec.Code)
	}

	// Over the per-request bound.
	big, _ := json.Marshal(batchRequest{Matrices: []string{string(mm), string(mm), string(mm), string(mm)}})
	rec, out = postJSON(t, h, "/v1/predict/batch", big)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: %d %v, want 413", rec.Code, out)
	}

	// Empty batch.
	empty, _ := json.Marshal(batchRequest{})
	rec, _ = postJSON(t, h, "/v1/predict/batch", empty)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("empty batch: %d, want 400", rec.Code)
	}
}

// TestArchRouting checks multi-arch resolution: default, explicit,
// unknown (404) and unloaded (503).
func TestArchRouting(t *testing.T) {
	ms, best := labelledCorpus(t, "Turing")
	fb := newFakeBackend("turing")
	fb.set("turing", trainArtifact(t, ms, best, 10, 7), "hash-t")
	fb.set("pascal", trainArtifact(t, ms, best, 8, 3), "hash-p")
	fb.models["volta"] = LiveModel{Arch: "volta"} // configured, unloaded
	srv, err := NewBackendServer(fb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	mm := mmBytes(t, ms[0])

	rec, out := postJSON(t, h, "/v1/predict/matrix", mm)
	if rec.Code != http.StatusOK || out["arch"] != "turing" || out["model_hash"] != "hash-t" {
		t.Fatalf("default arch: %d %v", rec.Code, out)
	}
	rec, out = postJSON(t, h, "/v1/predict/matrix?arch=Pascal", mm)
	if rec.Code != http.StatusOK || out["arch"] != "pascal" || out["model_hash"] != "hash-p" {
		t.Fatalf("explicit arch (case-folded): %d %v", rec.Code, out)
	}
	rec, out = postJSON(t, h, "/v1/predict/matrix?arch=ampere", mm)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown arch: %d %v, want 404", rec.Code, out)
	}
	rec, out = postJSON(t, h, "/v1/predict/matrix?arch=volta", mm)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("unloaded arch: %d %v, want 503", rec.Code, out)
	}

	// /v1/model routes the same way.
	recM := httptest.NewRecorder()
	h.ServeHTTP(recM, httptest.NewRequest(http.MethodGet, "/v1/model?arch=pascal", nil))
	var meta modelResponse
	if err := json.Unmarshal(recM.Body.Bytes(), &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Arch != "pascal" || meta.Hash != "hash-p" || meta.Default {
		t.Fatalf("/v1/model?arch=pascal = %+v", meta)
	}
}

// TestReadyz checks the readiness endpoint flips 503 -> 200 with the
// backend's load state.
func TestReadyz(t *testing.T) {
	ms, best := labelledCorpus(t, "Turing")
	fb := newFakeBackend("turing")
	fb.set("turing", trainArtifact(t, ms, best, 10, 7), "hash-t")
	fb.notReady = fmt.Errorf("pascal not loaded yet")
	srv, err := NewBackendServer(fb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while loading: %d, want 503", rec.Code)
	}
	var resp ReadyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Ready || !strings.Contains(resp.Error, "pascal") || len(resp.Arches) == 0 {
		t.Fatalf("/readyz body = %+v", resp)
	}

	fb.notReady = nil
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/readyz when ready: %d", rec.Code)
	}
	// Liveness stays 200 throughout.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz: %d", rec.Code)
	}
}

// TestShadowScoringBypassesCache: with a candidate registered, every
// request is computed (no cache hits) and every request records one
// live-vs-candidate comparison.
func TestShadowScoringBypassesCache(t *testing.T) {
	ms, best := labelledCorpus(t, "Turing")
	fb := newFakeBackend("turing")
	fb.set("turing", trainArtifact(t, ms, best, 10, 7), "hash-live")
	fb.setShadow("turing", trainArtifact(t, ms, best, 6, 99), "hash-cand")
	srv, err := NewBackendServer(fb, Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	mm := mmBytes(t, ms[0])

	for i := 0; i < 3; i++ {
		rec, out := postJSON(t, h, "/v1/predict/matrix", mm)
		if rec.Code != http.StatusOK || out["cached"] != false {
			t.Fatalf("shadowed request %d: %d %v, want uncached", i, rec.Code, out)
		}
	}
	if got := len(fb.records); got != 3 {
		t.Fatalf("recorded %d shadow comparisons, want 3", got)
	}

	// Batch items score too.
	body, _ := json.Marshal(batchRequest{Matrices: []string{string(mm), string(mmBytes(t, ms[1]))}})
	rec, _ := postJSON(t, h, "/v1/predict/batch", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("shadowed batch: %d", rec.Code)
	}
	if got := len(fb.records); got != 5 {
		t.Fatalf("recorded %d shadow comparisons after batch, want 5", got)
	}
}

func adminReq(t *testing.T, h http.Handler, method, path, token string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, nil)
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestAdminAuth: the admin surface refuses unauthenticated mutation by
// default (no token configured -> 401 for everyone), enforces the
// configured token, and still answers 501 for static backends.
func TestAdminAuth(t *testing.T) {
	ms, best := labelledCorpus(t, "Turing")
	art := trainArtifact(t, ms, best, 10, 7)

	// No token configured: every admin request is refused.
	srvNoToken, err := NewServer(art, Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := srvNoToken.Handler()
	for _, p := range []struct{ method, path string }{
		{http.MethodPost, "/v1/admin/reload"},
		{http.MethodPost, "/v1/admin/promote"},
		{http.MethodGet, "/v1/admin/shadow"},
	} {
		rec := adminReq(t, h, p.method, p.path, "")
		if rec.Code != http.StatusUnauthorized {
			t.Errorf("%s with no token configured: %d, want 401", p.path, rec.Code)
		}
		// Even a guessed token cannot authenticate against an unset one.
		rec = adminReq(t, h, p.method, p.path, "")
		if rec.Code != http.StatusUnauthorized {
			t.Errorf("%s empty bearer: %d, want 401", p.path, rec.Code)
		}
	}

	// Token configured: wrong token 401 (with WWW-Authenticate), right
	// token reaches the handler (501 on a static backend).
	srv, err := NewServer(art, Config{AdminToken: "s3cret"})
	if err != nil {
		t.Fatal(err)
	}
	h = srv.Handler()
	rec := adminReq(t, h, http.MethodPost, "/v1/admin/reload", "wrong")
	if rec.Code != http.StatusUnauthorized || rec.Header().Get("WWW-Authenticate") == "" {
		t.Errorf("wrong token: %d %q, want 401 + WWW-Authenticate", rec.Code, rec.Header().Get("WWW-Authenticate"))
	}
	rec = adminReq(t, h, http.MethodPost, "/v1/admin/reload", "s3cret")
	if rec.Code != http.StatusNotImplemented {
		t.Errorf("static backend admin: %d, want 501", rec.Code)
	}
	rec = adminReq(t, h, http.MethodGet, "/v1/admin/reload", "s3cret")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET reload: %d, want 405", rec.Code)
	}
}

// TestAdminEndpointsWithBackend drives reload/promote/shadow against
// the fake admin backend and checks the cache flushes on mutation.
func TestAdminEndpointsWithBackend(t *testing.T) {
	ms, best := labelledCorpus(t, "Turing")
	fb := newFakeBackend("turing")
	fb.set("turing", trainArtifact(t, ms, best, 10, 7), "hash-live")
	fb.setShadow("turing", trainArtifact(t, ms, best, 6, 99), "hash-cand")
	srv, err := NewBackendServer(fb, Config{AdminToken: "s3cret"})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	// Populate the cache with a non-shadowed arch... turing is
	// shadowed, so use the features endpoint pre-promote? Shadowed
	// arches bypass the cache; promote first clears the shadow.
	rec := adminReq(t, h, http.MethodGet, "/v1/admin/shadow", "s3cret")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "fake") {
		t.Fatalf("shadow report: %d %s", rec.Code, rec.Body.String())
	}

	rec = adminReq(t, h, http.MethodPost, "/v1/admin/promote?arch=turing", "s3cret")
	if rec.Code != http.StatusOK {
		t.Fatalf("promote: %d %s", rec.Code, rec.Body.String())
	}
	var pr promoteResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Arch != "turing" || pr.Hash != "hash-cand" {
		t.Fatalf("promote response = %+v", pr)
	}
	// The promoted candidate now answers with its hash.
	mm := mmBytes(t, ms[0])
	recP, out := postJSON(t, h, "/v1/predict/matrix", mm)
	if recP.Code != http.StatusOK || out["model_hash"] != "hash-cand" {
		t.Fatalf("post-promote predict: %d %v", recP.Code, out)
	}
	// Cache now live (no shadow); fill it, then reload-with-changes must flush.
	if _, out = postJSON(t, h, "/v1/predict/matrix", mm); out["cached"] != true {
		t.Fatalf("expected cache hit, got %v", out)
	}
	fb.reloadCh = []string{"turing"}
	rec = adminReq(t, h, http.MethodPost, "/v1/admin/reload", "s3cret")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"turing"`) {
		t.Fatalf("reload: %d %s", rec.Code, rec.Body.String())
	}
	if got := srv.cache.Len(); got != 0 {
		t.Fatalf("cache has %d entries after a reload that swapped", got)
	}
	// A no-op reload leaves the cache alone.
	if _, out = postJSON(t, h, "/v1/predict/matrix", mm); out["cached"] != false {
		t.Fatalf("expected miss after flush, got %v", out)
	}
	fb.reloadCh = nil
	rec = adminReq(t, h, http.MethodPost, "/v1/admin/reload", "s3cret")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"changed":[]`) {
		t.Fatalf("idempotent reload: %d %s", rec.Code, rec.Body.String())
	}
	if got := srv.cache.Len(); got != 1 {
		t.Fatalf("no-op reload flushed the cache (len %d)", got)
	}
	// Promoting again fails: no candidate left.
	rec = adminReq(t, h, http.MethodPost, "/v1/admin/promote?arch=turing", "s3cret")
	if rec.Code != http.StatusConflict {
		t.Fatalf("re-promote: %d, want 409", rec.Code)
	}
}
