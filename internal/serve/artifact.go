// Package serve turns a fitted format selector into a deployable
// artifact and an HTTP prediction service: the step from "reproduction
// script" to "system". An Artifact bundles everything prediction needs
// — the fitted preprocessing chain, the model (semi-supervised
// cluster→label or a supervised classifier), and the label→format
// mapping — behind versioned gob serialization, so `spmvselect train
// -save` fits once and `spmvselect serve` / `predict -model` answer
// from the saved file without retraining.
package serve

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/classify"
	"repro/internal/features"
	"repro/internal/obs"
	"repro/internal/preprocess"
	"repro/internal/semisup"
	"repro/internal/sparse"
)

// Artifact kinds.
const (
	// KindSemisup is the paper's cluster→label pipeline (the fitted
	// preprocessing chain travels inside the semisup model).
	KindSemisup = "semisup"
	// KindClassifier is a supervised classifier over the fitted
	// preprocessing chain.
	KindClassifier = "classifier"
)

// ArtifactVersion is the current wire version written by Save. Load
// accepts any version up to this one. Version 2 added the optional
// cheap-first Cascade stage; version-1 artifacts decode with a nil
// Cascade (gob tolerates the absent field both ways) and serve through
// the full path.
const ArtifactVersion = 2

// artifactMagic prefixes every saved artifact, so mistaking an
// arbitrary gob stream (or an arbitrary file) for a model fails fast
// with a clear message.
const artifactMagic = "spmvselect-model\n"

// Artifact is the full fitted prediction pipeline: everything needed to
// map a raw matrix (or its 21-feature vector) to a storage format.
type Artifact struct {
	// Kind is KindSemisup or KindClassifier.
	Kind string
	// Classifier names the supervised model ("knn", "tree", "forest",
	// "logreg") when Kind is KindClassifier.
	Classifier string
	// Arch records the architecture the training labels were
	// benchmarked on (informational).
	Arch string
	// Formats maps label index to format name, in the
	// sparse.KernelFormats order the model was trained with.
	Formats []string
	// Semisup is the fitted cluster→label model (KindSemisup).
	Semisup *semisup.Model
	// Pipeline and Clf are the fitted preprocessing chain and
	// classifier (KindClassifier).
	Pipeline preprocess.Chain
	Clf      classify.Classifier
	// Baseline records the training-data distribution for drift
	// monitoring. Nil for artifacts saved before baselines existed (gob
	// tolerates the absent field both ways, so the wire version is
	// unchanged); such artifacts opt out of drift monitoring.
	Baseline *Baseline
	// Cascade is the optional cheap-first stage (wire version 2): a tiny
	// classifier over the O(rows) features plus a confidence threshold
	// calibrated on held-out data at train time. Nil (every v1 artifact)
	// means every prediction takes the full path.
	Cascade *Cascade
}

// artifactEnvelope is what Save gob-encodes after the magic string. The
// version travels in the same struct, decoded before anything is
// interpreted, so future versions can change Payload freely.
type artifactEnvelope struct {
	Version int
	Payload Artifact
}

func init() {
	// The preprocessing transformers inside Pipeline are interface
	// values; registration mirrors internal/semisup/persist.go (gob
	// tolerates the duplicate registration of identical name/type
	// pairs). The classify models register themselves in their own
	// package init.
	gob.Register(&preprocess.SkewTransform{})
	gob.Register(&preprocess.MinMaxScaler{})
	gob.Register(&preprocess.PCA{})
}

// KernelFormatNames returns the format names in label order, the
// Formats mapping every artifact trained in this repository uses.
func KernelFormatNames() []string {
	names := make([]string, 0, sparse.NumKernelFormats)
	for _, f := range sparse.KernelFormats() {
		names = append(names, f.String())
	}
	return names
}

// NewSemisupArtifact wraps a fitted semi-supervised model.
func NewSemisupArtifact(m *semisup.Model, arch string) *Artifact {
	return &Artifact{
		Kind:    KindSemisup,
		Arch:    arch,
		Formats: KernelFormatNames(),
		Semisup: m,
	}
}

// TrainClassifierArtifact fits the paper's preprocessing chain and a
// supervised classifier on raw feature rows x with format labels y in
// KernelFormats order. name selects the model: "knn", "tree", "forest"
// or "logreg" (the gob-persistable classifiers).
func TrainClassifierArtifact(name, arch string, x [][]float64, y []int, seed int64) (*Artifact, error) {
	var clf classify.Classifier
	switch name {
	case "knn":
		clf = classify.NewKNN(5)
	case "tree":
		clf = classify.NewTree(10)
	case "forest":
		clf = classify.NewForest(seed)
	case "logreg":
		clf = classify.NewLogReg()
	default:
		return nil, fmt.Errorf("serve: unknown classifier %q (want knn, tree, forest or logreg)", name)
	}
	pipeline, err := preprocess.FitPipeline(x, preprocess.Options{})
	if err != nil {
		return nil, fmt.Errorf("serve: fitting preprocessing: %w", err)
	}
	if err := clf.Fit(preprocess.Apply(pipeline, x), y, sparse.NumKernelFormats); err != nil {
		return nil, fmt.Errorf("serve: fitting %s: %w", name, err)
	}
	return &Artifact{
		Kind:       KindClassifier,
		Classifier: name,
		Arch:       arch,
		Formats:    KernelFormatNames(),
		Pipeline:   pipeline,
		Clf:        clf,
	}, nil
}

// Validate checks the artifact is internally consistent and usable for
// prediction.
func (a *Artifact) Validate() error {
	if len(a.Formats) < 2 {
		return fmt.Errorf("serve: artifact maps only %d formats", len(a.Formats))
	}
	switch a.Kind {
	case KindSemisup:
		if a.Semisup == nil {
			return fmt.Errorf("serve: semisup artifact has no model")
		}
		if c := a.Semisup.Classes(); c > len(a.Formats) {
			return fmt.Errorf("serve: model labels %d classes but artifact maps %d formats", c, len(a.Formats))
		}
	case KindClassifier:
		if a.Clf == nil {
			return fmt.Errorf("serve: classifier artifact has no model")
		}
		if !classify.Persistable(a.Clf) {
			return fmt.Errorf("serve: classifier %T is not persistable", a.Clf)
		}
	default:
		return fmt.Errorf("serve: unknown artifact kind %q", a.Kind)
	}
	if a.Baseline != nil {
		if err := a.Baseline.Validate(); err != nil {
			return err
		}
	}
	if a.Cascade != nil {
		if err := a.Cascade.Validate(len(a.Formats)); err != nil {
			return err
		}
	}
	return nil
}

// InDim returns the raw feature dimension the artifact expects
// (features.Count for every artifact trained in this repository).
func (a *Artifact) InDim() int {
	if a.Kind == KindSemisup && a.Semisup != nil {
		return a.Semisup.InDim()
	}
	return a.Pipeline.InDim()
}

// Prediction stages, reported when the artifact carries a cascade.
const (
	// StageCheap marks an answer from the cascade's cheap-feature
	// classifier (confident at or above the calibrated threshold).
	StageCheap = "cheap"
	// StageFull marks an answer from the full pipeline, either because
	// the artifact has no cascade (Stage is then empty) or because the
	// cheap stage's confidence fell below the threshold.
	StageFull = "full"
)

// Prediction is one answer from the artifact.
type Prediction struct {
	// Format is the recommended storage format name.
	Format string `json:"format"`
	// Label is the class index behind Format.
	Label int `json:"label"`
	// Cluster and ClusterSize explain a semi-supervised prediction
	// (Cluster is -1 for classifier artifacts).
	Cluster     int `json:"cluster"`
	ClusterSize int `json:"cluster_size,omitempty"`
	// Stage and Confidence explain a cascade artifact's answer: which
	// stage produced it and the cheap stage's top-class probability.
	// Both are zero for artifacts without a cascade.
	Stage      string  `json:"stage,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
}

// Predict maps a raw Table 1 feature vector to a format, validating the
// input dimension — the artifact's single entry point for untrusted
// vectors. When the artifact carries a cascade the cheap columns are
// gathered out of x and tried first; the full model only runs below the
// confidence threshold, and the final answer is whichever stage fired.
func (a *Artifact) Predict(x []float64) (Prediction, error) {
	c := a.Cascade
	if c == nil {
		return a.predictFull(x)
	}
	cheap, ok := c.gather(x)
	if !ok {
		return a.predictFull(x)
	}
	label, conf, err := c.decide(cheap)
	if err != nil {
		return Prediction{}, err
	}
	if conf >= c.Threshold && label >= 0 && label < len(a.Formats) {
		return Prediction{
			Format:     a.Formats[label],
			Label:      label,
			Cluster:    -1,
			Stage:      StageCheap,
			Confidence: conf,
		}, nil
	}
	pred, err := a.predictFull(x)
	if err != nil {
		return Prediction{}, err
	}
	pred.Stage = StageFull
	pred.Confidence = conf
	return pred, nil
}

// predictFull runs the full pipeline: dimension check, preprocessing
// chain (or semisup cluster lookup), model.
func (a *Artifact) predictFull(x []float64) (Prediction, error) {
	var label, clusterID, clusterSize int
	clusterID = -1
	switch a.Kind {
	case KindSemisup:
		if d := a.Semisup.InDim(); d != 0 && len(x) != d {
			return Prediction{}, fmt.Errorf("serve: model expects %d features, got %d", d, len(x))
		}
		clusterID = a.Semisup.ClusterOf(x)
		label = a.Semisup.ClusterLabel(clusterID)
		clusterSize = a.Semisup.ClusterSize(clusterID)
	case KindClassifier:
		tx, err := a.Pipeline.TransformChecked(x)
		if err != nil {
			return Prediction{}, fmt.Errorf("serve: %w", err)
		}
		label = a.Clf.Predict(tx)
	default:
		return Prediction{}, fmt.Errorf("serve: unknown artifact kind %q", a.Kind)
	}
	if label < 0 || label >= len(a.Formats) {
		return Prediction{}, fmt.Errorf("serve: model produced label %d outside the %d-format mapping", label, len(a.Formats))
	}
	return Prediction{
		Format:      a.Formats[label],
		Label:       label,
		Cluster:     clusterID,
		ClusterSize: clusterSize,
	}, nil
}

// PredictMatrix extracts the features of a matrix and predicts. With a
// cascade artifact the full 21-feature extraction only happens when the
// cheap stage is not confident.
func (a *Artifact) PredictMatrix(m *sparse.CSR) (Prediction, error) {
	var s features.Scratch
	pred, _, err := a.PredictMatrixScratch(m, &s)
	return pred, err
}

// PredictMatrixScratch is the serve hot path's entry point: it extracts
// only the cheap features first when the artifact carries a cascade,
// paying for full extraction solely on fall-through. The returned
// vector is the full 21-feature row when it was computed, nil when the
// cheap stage answered (callers that need the full vector anyway —
// shadow scoring — extract it themselves).
func (a *Artifact) PredictMatrixScratch(m *sparse.CSR, s *features.Scratch) (Prediction, []float64, error) {
	return a.PredictMatrixScratchCtx(context.Background(), m, s)
}

// PredictMatrixScratchCtx is PredictMatrixScratch under a request
// context: each stage (cheap extraction, cascade decision, full
// extraction, model predict) becomes a child span of the request's
// span tree, so per-request traces show exactly where matrix time
// went. With no span in ctx and observability disabled, the spans cost
// one context lookup each.
func (a *Artifact) PredictMatrixScratchCtx(ctx context.Context, m *sparse.CSR, s *features.Scratch) (Prediction, []float64, error) {
	c := a.Cascade
	if c == nil || !c.usesCheapOrder() {
		// No cascade (or one trained on a foreign feature ordering):
		// extract everything and let Predict route.
		_, fsp := obs.StartChild(ctx, "features/full")
		vec := s.Extract(m).Slice()
		fsp.End()
		_, psp := obs.StartChild(ctx, "predict")
		pred, err := a.Predict(vec)
		psp.End()
		return pred, vec, err
	}
	_, csp := obs.StartChild(ctx, "features/cheap")
	cheap := s.ExtractCheap(m)
	csp.End()
	_, dsp := obs.StartChild(ctx, "cascade")
	label, conf, err := c.decide(cheap[:])
	dsp.SetMetric("confidence", conf)
	if err != nil {
		dsp.End()
		return Prediction{}, nil, err
	}
	if conf >= c.Threshold && label >= 0 && label < len(a.Formats) {
		dsp.SetMetric("hit", 1)
		dsp.End()
		return Prediction{
			Format:     a.Formats[label],
			Label:      label,
			Cluster:    -1,
			Stage:      StageCheap,
			Confidence: conf,
		}, nil, nil
	}
	dsp.SetMetric("hit", 0)
	dsp.End()
	_, fsp := obs.StartChild(ctx, "features/full")
	vec := s.Extract(m).Slice()
	fsp.End()
	_, psp := obs.StartChild(ctx, "predict")
	pred, err := a.predictFull(vec)
	psp.End()
	if err != nil {
		return Prediction{}, nil, err
	}
	pred.Stage = StageFull
	pred.Confidence = conf
	return pred, vec, nil
}

// Save writes the artifact: the magic prefix, then the gob-encoded
// versioned envelope.
func (a *Artifact) Save(w io.Writer) error {
	if err := a.Validate(); err != nil {
		return err
	}
	if _, err := io.WriteString(w, artifactMagic); err != nil {
		return fmt.Errorf("serve: writing artifact magic: %w", err)
	}
	env := artifactEnvelope{Version: ArtifactVersion, Payload: *a}
	if err := gob.NewEncoder(w).Encode(env); err != nil {
		return fmt.Errorf("serve: encoding artifact: %w", err)
	}
	return nil
}

// Load reads an artifact written by Save, rejecting foreign streams and
// newer wire versions with descriptive errors.
func Load(r io.Reader) (*Artifact, error) {
	magic := make([]byte, len(artifactMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("serve: reading artifact magic: %w", err)
	}
	if string(magic) != artifactMagic {
		return nil, fmt.Errorf("serve: not a spmvselect model artifact (bad magic)")
	}
	var env artifactEnvelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("serve: decoding artifact: %w", err)
	}
	if env.Version < 1 || env.Version > ArtifactVersion {
		return nil, fmt.Errorf("serve: artifact version %d not supported (this build reads <= %d)", env.Version, ArtifactVersion)
	}
	a := env.Payload
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return &a, nil
}

// SaveFile writes the artifact to path (atomically via a temp file in
// the same directory, so a crashed save never leaves a truncated
// model).
func SaveFile(path string, a *Artifact) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".spmvselect-model-*")
	if err != nil {
		return fmt.Errorf("serve: creating temp model file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := a.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: closing temp model file: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("serve: installing model file: %w", err)
	}
	return nil
}

// LoadFile reads an artifact from path.
func LoadFile(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("serve: opening model file: %w", err)
	}
	defer f.Close()
	return Load(f)
}
