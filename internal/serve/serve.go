package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"time"

	"repro/internal/obs"
	"repro/internal/sparse"
)

// Config tunes the prediction service. The zero value selects sensible
// production defaults.
type Config struct {
	// MaxConcurrent bounds in-flight predictions; excess requests wait
	// (up to the request timeout) for a slot. Default: obs.Workers of
	// GOMAXPROCS — the same bound the repository's parallel helpers
	// use, since prediction is CPU-bound.
	MaxConcurrent int
	// CacheSize is the content-hash LRU capacity in entries (default
	// 512; negative disables caching).
	CacheSize int
	// Timeout bounds one request end to end, including time spent
	// queueing for a concurrency slot (default 30s).
	Timeout time.Duration
	// MaxBodyBytes bounds the request body (default 64 MiB — a
	// MatrixMarket body of several million nonzeros).
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = obs.Workers(runtime.GOMAXPROCS(0))
	}
	if c.CacheSize == 0 {
		c.CacheSize = 512
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	return c
}

// Server answers format predictions over HTTP from a loaded Artifact:
//
//	GET  /healthz              liveness probe
//	GET  /v1/model             artifact metadata
//	POST /v1/predict/matrix    MatrixMarket body -> prediction
//	POST /v1/predict/features  {"features": [... 21 floats ...]} -> prediction
//
// Requests are bounded-concurrency (CPU-bound inference), cached by
// request content hash, and instrumented in the obs.Default metrics
// registry:
//
//	serve/requests          counter    requests accepted per endpoint path
//	serve/errors            counter    requests answered with an error status
//	serve/rejected          counter    requests shed (queue wait exceeded the timeout)
//	serve/cache/hits        counter    predictions answered from the LRU
//	serve/cache/misses      counter    predictions computed
//	serve/inflight          gauge      predictions currently executing
//	serve/request/seconds   histogram  end-to-end request latency
type Server struct {
	art   *Artifact
	cfg   Config
	sem   chan struct{}
	cache *lruCache

	requests    *obs.Counter
	errors      *obs.Counter
	rejected    *obs.Counter
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	inflight    *obs.Gauge
	latency     *obs.Histogram
}

// NewServer wraps a validated artifact.
func NewServer(art *Artifact, cfg Config) (*Server, error) {
	if err := art.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &Server{
		art:         art,
		cfg:         cfg,
		sem:         make(chan struct{}, cfg.MaxConcurrent),
		cache:       newLRUCache(cfg.CacheSize),
		requests:    obs.Default.Counter("serve/requests"),
		errors:      obs.Default.Counter("serve/errors"),
		rejected:    obs.Default.Counter("serve/rejected"),
		cacheHits:   obs.Default.Counter("serve/cache/hits"),
		cacheMisses: obs.Default.Counter("serve/cache/misses"),
		inflight:    obs.Default.Gauge("serve/inflight"),
		latency:     obs.Default.Histogram("serve/request/seconds", obs.DurationBuckets),
	}, nil
}

// predictResponse is the JSON answer of both prediction endpoints.
type predictResponse struct {
	Prediction
	// Cached reports whether the answer came from the content-hash LRU.
	Cached bool `json:"cached"`
}

// modelResponse describes the loaded artifact.
type modelResponse struct {
	Kind       string   `json:"kind"`
	Classifier string   `json:"classifier,omitempty"`
	Arch       string   `json:"arch,omitempty"`
	Formats    []string `json:"formats"`
	Features   int      `json:"features"`
	Clusters   int      `json:"clusters,omitempty"`
	Version    int      `json:"version"`
}

// errorResponse is the JSON error body.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP handler (its own mux, so tests can
// drive it without a listener).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/v1/model", func(w http.ResponseWriter, r *http.Request) {
		resp := modelResponse{
			Kind:       s.art.Kind,
			Classifier: s.art.Classifier,
			Arch:       s.art.Arch,
			Formats:    s.art.Formats,
			Features:   s.art.InDim(),
			Version:    ArtifactVersion,
		}
		if s.art.Kind == KindSemisup {
			resp.Clusters = s.art.Semisup.NumClusters()
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("/v1/predict/matrix", s.limited(s.predictMatrix))
	mux.HandleFunc("/v1/predict/features", s.limited(s.predictFeatures))
	return mux
}

// httpError carries a status code with the error.
type httpError struct {
	status int
	err    error
}

func (e *httpError) Error() string { return e.err.Error() }

func badRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, err: fmt.Errorf(format, args...)}
}

// limited wraps a prediction handler with the request method check, the
// per-request timeout, the concurrency bound and the metrics.
func (s *Server) limited(h func(ctx context.Context, r *http.Request) (Prediction, bool, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST"})
			return
		}
		s.requests.Inc()
		start := time.Now()
		defer func() { s.latency.Observe(time.Since(start).Seconds()) }()

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
		defer cancel()

		// Bounded concurrency: wait for a slot, but never longer than
		// the request timeout — shed load instead of queueing without
		// bound.
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			s.rejected.Inc()
			s.errors.Inc()
			writeJSON(w, http.StatusServiceUnavailable,
				errorResponse{Error: "server at capacity, retry later"})
			return
		}
		s.inflight.Add(1)
		defer func() {
			s.inflight.Add(-1)
			<-s.sem
		}()

		pred, cached, err := h(ctx, r)
		if err != nil {
			s.errors.Inc()
			status := http.StatusInternalServerError
			var he *httpError
			if errors.As(err, &he) {
				status = he.status
			}
			writeJSON(w, status, errorResponse{Error: err.Error()})
			return
		}
		if cached {
			s.cacheHits.Inc()
		} else {
			s.cacheMisses.Inc()
		}
		writeJSON(w, http.StatusOK, predictResponse{Prediction: pred, Cached: cached})
	}
}

// readBody reads the (size-bounded) request body.
func (s *Server) readBody(r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1))
	if err != nil {
		return nil, badRequest("reading request body: %v", err)
	}
	if int64(len(body)) > s.cfg.MaxBodyBytes {
		return nil, &httpError{status: http.StatusRequestEntityTooLarge,
			err: fmt.Errorf("request body exceeds %d bytes", s.cfg.MaxBodyBytes)}
	}
	if len(body) == 0 {
		return nil, badRequest("empty request body")
	}
	return body, nil
}

// predictMatrix answers a MatrixMarket body.
func (s *Server) predictMatrix(ctx context.Context, r *http.Request) (Prediction, bool, error) {
	body, err := s.readBody(r)
	if err != nil {
		return Prediction{}, false, err
	}
	key := contentKey("matrix", body)
	if pred, ok := s.cache.Get(key); ok {
		return pred, true, nil
	}
	if err := ctx.Err(); err != nil {
		return Prediction{}, false, &httpError{status: http.StatusServiceUnavailable, err: err}
	}
	m, err := sparse.ReadMatrixMarketBytes(body)
	if err != nil {
		return Prediction{}, false, badRequest("parsing MatrixMarket body: %v", err)
	}
	pred, err := s.art.PredictMatrix(m)
	if err != nil {
		return Prediction{}, false, badRequest("%v", err)
	}
	s.cache.Put(key, pred)
	return pred, false, nil
}

// featuresRequest is the JSON body of /v1/predict/features.
type featuresRequest struct {
	Features []float64 `json:"features"`
}

// predictFeatures answers a raw feature vector.
func (s *Server) predictFeatures(ctx context.Context, r *http.Request) (Prediction, bool, error) {
	body, err := s.readBody(r)
	if err != nil {
		return Prediction{}, false, err
	}
	key := contentKey("features", body)
	if pred, ok := s.cache.Get(key); ok {
		return pred, true, nil
	}
	if err := ctx.Err(); err != nil {
		return Prediction{}, false, &httpError{status: http.StatusServiceUnavailable, err: err}
	}
	var req featuresRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return Prediction{}, false, badRequest("parsing JSON body: %v", err)
	}
	pred, err := s.art.Predict(req.Features)
	if err != nil {
		return Prediction{}, false, badRequest("%v", err)
	}
	s.cache.Put(key, pred)
	return pred, false, nil
}

// Run serves on addr until ctx is cancelled (SIGTERM in the CLI), then
// shuts down gracefully, draining in-flight requests for up to 5
// seconds. ready, when non-nil, receives the bound address once the
// listener is up — how callers learn the port of ":0".
func (s *Server) Run(ctx context.Context, addr string, ready func(bound string)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listening on %s: %w", addr, err)
	}
	if ready != nil {
		ready(ln.Addr().String())
	}
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       s.cfg.Timeout,
		WriteTimeout:      s.cfg.Timeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	return nil
}

// contentKey hashes an endpoint-qualified request body.
func contentKey(endpoint string, body []byte) string {
	h := sha256.New()
	io.WriteString(h, endpoint)
	h.Write([]byte{0})
	h.Write(body)
	return hex.EncodeToString(h.Sum(nil))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data, err := json.Marshal(v)
	if err != nil {
		// v is always one of our own response structs; this cannot
		// happen for valid predictions, but never crash the handler.
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
		return
	}
	w.Write(append(data, '\n'))
}
