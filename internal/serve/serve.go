package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/features"
	"repro/internal/obs"
	"repro/internal/sparse"
)

// Config tunes the prediction service. The zero value selects sensible
// production defaults.
type Config struct {
	// MaxConcurrent bounds in-flight predictions; excess requests wait
	// (up to the request timeout) for a slot. Default: obs.Workers of
	// GOMAXPROCS — the same bound the repository's parallel helpers
	// use, since prediction is CPU-bound.
	MaxConcurrent int
	// CacheSize is the content-hash LRU capacity in entries (default
	// 512; negative disables caching).
	CacheSize int
	// FeatMemoSize is the feature-vector memo capacity in entries
	// (default 4096; negative disables). The memo fronts MatrixMarket
	// parsing and feature extraction: it is keyed by body content alone
	// and — feature vectors being model-independent — survives
	// hot-swaps, promotions and arch routing, unlike the prediction
	// cache.
	FeatMemoSize int
	// Timeout bounds one request end to end, including time spent
	// queueing for a concurrency slot (default 30s).
	Timeout time.Duration
	// MaxBodyBytes bounds the request body (default 64 MiB — a
	// MatrixMarket body of several million nonzeros).
	MaxBodyBytes int64
	// MaxBatchItems bounds the matrix count of one /v1/predict/batch
	// request (default 64).
	MaxBatchItems int
	// AdminToken guards /v1/admin/*: requests must carry it as a
	// bearer token. Empty (the default) refuses every admin request —
	// mutation is opt-in, never accidentally open.
	AdminToken string
	// AccessLog, when non-nil, receives one structured line per HTTP
	// request (trace ID, method, path, status, latency, arch, model
	// hash, cache disposition). Nil disables access logging.
	AccessLog *slog.Logger
	// SLOObjective is the availability target the SLO windows report
	// burn rates against (default 0.999).
	SLOObjective float64
	// AccessLogSample logs one in N requests when > 1 (errors and
	// /v1/feedback are always logged), bounding log volume under
	// replay/load-test traffic. 0 or 1 logs everything.
	AccessLogSample int
	// Capture, when non-nil, records every successfully answered
	// prediction request (metadata header + verbatim body) for
	// `spmvselect replay`.
	Capture *obs.CaptureWriter
	// PendingFeedback is the capacity of the consume-once table joining
	// /v1/feedback reports to served predictions (default 4096). Only
	// used when the backend implements QualityBackend.
	PendingFeedback int
	// TraceCapacity bounds the tail-sampled trace store behind
	// /v1/admin/trace (default 128 retained traces; negative disables
	// request tracing entirely).
	TraceCapacity int
	// SlowRequest is the latency above which a request is always traced
	// and always access-logged regardless of sampling (default 250ms;
	// negative disables the static threshold — the SLO-window p99 still
	// applies to the trace store).
	SlowRequest time.Duration
	// TraceSample keeps one in N otherwise-uninteresting traces
	// (default 100; negative disables random sampling).
	TraceSample int
	// DebugDir, when set together with BurnThreshold, receives
	// burn-triggered debug captures: a CPU profile plus a trace-store
	// snapshot whenever the 5m SLO burn rate stays above the threshold.
	DebugDir string
	// BurnThreshold is the sustained 5m burn rate that triggers a debug
	// capture (0 disables; 1.0 = spending error budget exactly on
	// schedule).
	BurnThreshold float64
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = obs.Workers(runtime.GOMAXPROCS(0))
	}
	if c.CacheSize == 0 {
		c.CacheSize = 512
	}
	if c.FeatMemoSize == 0 {
		c.FeatMemoSize = 4096
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 64
	}
	if c.SlowRequest == 0 {
		c.SlowRequest = 250 * time.Millisecond
	}
	return c
}

// Server answers format predictions over HTTP from a model Backend —
// a single static artifact or the multi-architecture registry:
//
//	GET  /healthz              liveness probe
//	GET  /readyz               per-arch load state; 503 until every
//	                           configured artifact has loaded
//	GET  /v1/model[?arch=X]    artifact metadata for one arch
//	POST /v1/predict/matrix    MatrixMarket body -> prediction
//	POST /v1/predict/features  {"features": [...], "arch": "..."} -> prediction
//	POST /v1/predict/batch     {"matrices": [...], "arch": "..."} -> predictions
//	POST /v1/feedback          measured kernel times for a served
//	                           prediction, keyed by X-Request-ID
//	GET  /metrics              Prometheus text exposition (obs.Default,
//	                           SLO windows, drift and quality gauges
//	                           refreshed per scrape)
//	POST /v1/admin/reload      hot-swap changed artifacts from disk
//	POST /v1/admin/promote     flip a shadow candidate to live
//	GET  /v1/admin/shadow      shadow evaluation report
//	GET  /v1/admin/slo         rolling-window SLO report (1m/5m/1h)
//	GET  /v1/admin/drift       served-prediction drift report
//	GET  /v1/admin/quality     measured prediction-quality report
//
// Predictions route by the request's arch (query parameter, or body
// field on the JSON endpoints); an empty arch selects the backend's
// default. Requests are bounded-concurrency (CPU-bound inference),
// cached by request content hash together with the live artifact hash
// (so a hot-swap structurally invalidates old entries), and
// instrumented in the obs.Default metrics registry:
//
//	serve/requests            counter    requests accepted per endpoint path
//	serve/errors              counter    requests answered with an error status
//	serve/rejected            counter    requests shed (queue wait exceeded the timeout)
//	serve/cache/hits          counter    predictions answered from the LRU
//	serve/cache/misses        counter    predictions computed
//	serve/cache/flushes       counter    whole-cache invalidations (swap/promote)
//	serve/featmemo/hits       counter    matrix predictions answered from memoized features (parse + extract skipped)
//	serve/featmemo/misses     counter    matrix predictions computed without a usable feature-memo entry
//	serve/featmemo/entries    gauge      feature-memo entries resident
//	serve/featmemo/bytes      gauge      approximate feature-memo heap footprint
//	serve/batch/requests      counter    batch requests accepted
//	serve/batch/items         counter    matrices received in batches
//	serve/batch/item_errors   counter    batch items answered with a per-item error
//	serve/shadow/errors       counter    shadow candidate predictions that failed
//	serve/cascade/hits        counter    answers served by the cheap cascade stage
//	serve/cascade/fallthroughs counter   cascade requests that paid the full path
//	serve/cascade/confidence  histogram  cheap-stage top-class probability per computed answer
//	serve/capture/records     counter    requests appended to the capture log
//	serve/capture/errors      counter    capture appends that failed
//	serve/feedback/accepted   counter    feedback reports joined to a prediction
//	serve/feedback/rejected   counter    feedback reports refused
//	serve/admin/requests      counter    admin endpoint hits
//	serve/admin/unauthorized  counter    admin requests refused for a bad/missing token
//	serve/inflight            gauge      predictions currently executing
//	serve/request/seconds     histogram  end-to-end request latency
//
// and in labeled vectors (rendered with full label sets on /metrics):
//
//	serve/http/seconds{endpoint,arch}   histogram  per-route request latency
//	serve/http/requests{endpoint,status} counter   per-route answers by status
//	serve/predictions{arch,format}      counter    served answers by format
//
// Every request is traced: an X-Request-ID header is honoured (or a
// random ID minted), echoed back, stamped on the request's span tree
// and emitted in the access log. Requests to /v1/* also feed the
// rolling SLO windows behind /v1/admin/slo.
type Server struct {
	backend   Backend
	admin     AdminBackend    // nil when the backend has no admin surface
	drift     DriftBackend    // nil when the backend has no drift monitor
	quality   QualityBackend  // nil when the backend keeps no quality windows
	installer ShadowInstaller // nil when the backend cannot accept pushed candidates
	cfg       Config
	sem       chan struct{}
	cache     *lruCache
	featMemo  *featMemo
	capture   *obs.CaptureWriter // nil unless recording traffic
	pending   *pendingStore      // nil unless quality != nil
	started   time.Time

	slo       *obs.SLOWindows
	accessLog *slog.Logger
	logSeq    atomic.Int64 // access-log sampling counter
	traces    *obs.TraceStore
	burn      *burnProfiler // nil unless DebugDir + BurnThreshold configured

	requests     *obs.Counter
	errors       *obs.Counter
	rejected     *obs.Counter
	cacheHits    *obs.Counter
	cacheMisses  *obs.Counter
	cacheFlushes *obs.Counter
	memoHits     *obs.Counter
	memoMisses   *obs.Counter
	batchReqs    *obs.Counter
	batchItems   *obs.Counter
	batchErrors  *obs.Counter
	shadowErrors *obs.Counter
	cascadeHits  *obs.Counter
	cascadeFalls *obs.Counter
	cascadeConf  *obs.Histogram
	adminReqs    *obs.Counter
	adminDenied  *obs.Counter
	inflight     *obs.Gauge
	latency      *obs.Histogram
	httpLatency  *obs.HistogramVec
	httpRequests *obs.CounterVec
	predictions  *obs.CounterVec

	captureRecords   *obs.Counter
	captureErrors    *obs.Counter
	feedbackAccepted *obs.Counter
	feedbackRejected *obs.Counter
}

// NewServer wraps a single validated artifact — the original
// one-model deployment, kept as a convenience over NewBackendServer.
func NewServer(art *Artifact, cfg Config) (*Server, error) {
	b, err := NewStaticBackend(art, "")
	if err != nil {
		return nil, err
	}
	return NewBackendServer(b, cfg)
}

// NewBackendServer builds the HTTP service over any model backend.
// When the backend also implements AdminBackend the /v1/admin/*
// endpoints are live (still gated by Config.AdminToken).
func NewBackendServer(b Backend, cfg Config) (*Server, error) {
	if b == nil {
		return nil, fmt.Errorf("serve: nil backend")
	}
	cfg = cfg.withDefaults()
	admin, _ := b.(AdminBackend)
	drift, _ := b.(DriftBackend)
	quality, _ := b.(QualityBackend)
	installer, _ := b.(ShadowInstaller)
	var pending *pendingStore
	if quality != nil {
		pending = newPendingStore(cfg.PendingFeedback)
	}
	s := &Server{
		backend:      b,
		admin:        admin,
		drift:        drift,
		quality:      quality,
		installer:    installer,
		cfg:          cfg,
		sem:          make(chan struct{}, cfg.MaxConcurrent),
		cache:        newLRUCache(cfg.CacheSize),
		featMemo:     newFeatMemo(cfg.FeatMemoSize),
		capture:      cfg.Capture,
		pending:      pending,
		started:      time.Now(),
		slo:          obs.NewSLOWindows(obs.SLOConfig{Objective: cfg.SLOObjective}),
		accessLog:    cfg.AccessLog,
		requests:     obs.Default.Counter("serve/requests"),
		errors:       obs.Default.Counter("serve/errors"),
		rejected:     obs.Default.Counter("serve/rejected"),
		cacheHits:    obs.Default.Counter("serve/cache/hits"),
		cacheMisses:  obs.Default.Counter("serve/cache/misses"),
		cacheFlushes: obs.Default.Counter("serve/cache/flushes"),
		memoHits:     obs.Default.Counter("serve/featmemo/hits"),
		memoMisses:   obs.Default.Counter("serve/featmemo/misses"),
		batchReqs:    obs.Default.Counter("serve/batch/requests"),
		batchItems:   obs.Default.Counter("serve/batch/items"),
		batchErrors:  obs.Default.Counter("serve/batch/item_errors"),
		shadowErrors: obs.Default.Counter("serve/shadow/errors"),
		cascadeHits:  obs.Default.Counter("serve/cascade/hits"),
		cascadeFalls: obs.Default.Counter("serve/cascade/fallthroughs"),
		cascadeConf:  obs.Default.Histogram("serve/cascade/confidence", confidenceBuckets),
		adminReqs:    obs.Default.Counter("serve/admin/requests"),
		adminDenied:  obs.Default.Counter("serve/admin/unauthorized"),
		inflight:     obs.Default.Gauge("serve/inflight"),
		latency:      obs.Default.Histogram("serve/request/seconds", obs.DurationBuckets),
		httpLatency:  obs.Default.HistogramVec("serve/http/seconds", obs.DurationBuckets, "endpoint", "arch"),
		httpRequests: obs.Default.CounterVec("serve/http/requests", "endpoint", "status"),
		predictions:  obs.Default.CounterVec("serve/predictions", "arch", "format"),

		captureRecords:   obs.Default.Counter("serve/capture/records"),
		captureErrors:    obs.Default.Counter("serve/capture/errors"),
		feedbackAccepted: obs.Default.Counter("serve/feedback/accepted"),
		feedbackRejected: obs.Default.Counter("serve/feedback/rejected"),
	}
	if cfg.TraceCapacity >= 0 {
		// The dynamic slow threshold tracks the exported 5m p99 gauge,
		// which refreshDerived keeps current on every /metrics scrape —
		// reading a gauge per request instead of recomputing the window.
		p99 := obs.Default.GaugeVec("slo/latency/seconds", "window", "quantile").With("5m", "p99")
		s.traces = obs.NewTraceStore(obs.TraceConfig{
			Capacity:      cfg.TraceCapacity,
			SlowThreshold: cfg.SlowRequest,
			SampleEvery:   cfg.TraceSample,
			DynamicSlow: func() time.Duration {
				return time.Duration(p99.Value() * float64(time.Second))
			},
			Metrics: obs.Default,
			Prefix:  "serve/trace",
		})
	}
	if cfg.DebugDir != "" && cfg.BurnThreshold > 0 {
		s.burn = newBurnProfiler(burnConfig{
			Dir:       cfg.DebugDir,
			Threshold: cfg.BurnThreshold,
			BurnRate:  s.burnRate5m,
			Traces:    s.traces.Snapshot,
			Log:       cfg.AccessLog,
		})
	}
	return s, nil
}

// burnRate5m reads the 5-minute SLO window's current burn rate, the
// signal the burn profiler watches.
func (s *Server) burnRate5m() float64 {
	for _, w := range s.slo.Report().Windows {
		if w.Window == "5m" {
			return w.BurnRate
		}
	}
	return 0
}

// FlushCache empties the prediction LRU. The registry calls it (via its
// OnSwap hook) on every hot-swap and promotion, and the admin handlers
// call it directly, so stale answers for a replaced model are
// unreachable — on top of the artifact hash already being part of
// every cache key. The feature memo is deliberately NOT flushed here:
// body→features is model-independent, so memoized vectors stay valid
// across swaps — that persistence is the memo's whole point.
func (s *Server) FlushCache() {
	s.cache.Flush()
	s.cacheFlushes.Inc()
}

// FeatMemoStats reports the feature-memo hit/miss tallies (the
// process-wide serve/featmemo/* counters), for tests and diagnostics.
func (s *Server) FeatMemoStats() (hits, misses int64) {
	return s.memoHits.Value(), s.memoMisses.Value()
}

// predictResponse is the JSON answer of the prediction endpoints.
type predictResponse struct {
	Prediction
	// Arch is the resolved architecture that answered.
	Arch string `json:"arch"`
	// ModelHash identifies the artifact that produced the answer; it
	// changes on every hot-swap or promotion.
	ModelHash string `json:"model_hash"`
	// Cached reports whether the answer came from the content-hash LRU.
	Cached bool `json:"cached"`
}

// modelResponse describes one hosted artifact.
type modelResponse struct {
	Kind       string   `json:"kind"`
	Classifier string   `json:"classifier,omitempty"`
	Arch       string   `json:"arch,omitempty"`
	Default    bool     `json:"default,omitempty"`
	Formats    []string `json:"formats"`
	Features   int      `json:"features"`
	Clusters   int      `json:"clusters,omitempty"`
	Version    int      `json:"version"`
	Hash       string   `json:"hash"`
	Source     string   `json:"source,omitempty"`
	ShadowHash string   `json:"shadow_hash,omitempty"`
	// Cascade calibration, present when the artifact carries a
	// cheap-first stage.
	Cascade           bool    `json:"cascade,omitempty"`
	CascadeClassifier string  `json:"cascade_classifier,omitempty"`
	CascadeThreshold  float64 `json:"cascade_threshold,omitempty"`
	CascadeAgreement  float64 `json:"cascade_heldout_agreement,omitempty"`
	CascadeTarget     float64 `json:"cascade_target_agreement,omitempty"`
	CascadeHitRate    float64 `json:"cascade_heldout_hit_rate,omitempty"`
}

// ReadyResponse is the /readyz body: readiness, process uptime and the
// per-arch live model hashes, so a fleet health check can both gate
// traffic (the status code) and detect stale artifacts (the hashes).
type ReadyResponse struct {
	Ready         bool         `json:"ready"`
	Error         string       `json:"error,omitempty"`
	UptimeSeconds float64      `json:"uptime_seconds"`
	Arches        []ArchStatus `json:"arches"`
}

// errorResponse is the JSON error body.
type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP handler (its own mux, so tests can
// drive it without a listener).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	route("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	route("/readyz", s.handleReady)
	route("/metrics", obs.PromHandler(obs.Default, s.refreshDerived).ServeHTTP)
	route("/v1/model", s.handleModel)
	route("/v1/predict/matrix", s.limited(s.predictMatrix))
	route("/v1/predict/features", s.limited(s.predictFeatures))
	route("/v1/predict/batch", s.limited(s.predictBatch))
	route("/v1/feedback", s.handleFeedback)
	route("/v1/admin/reload", s.adminEndpoint(http.MethodPost, true, s.adminReload))
	route("/v1/admin/promote", s.adminEndpoint(http.MethodPost, true, s.adminPromote))
	route("/v1/admin/shadow", s.adminEndpoint(http.MethodGet, true, s.adminShadow))
	route("/v1/admin/shadow/install", s.adminEndpoint(http.MethodPost, false, s.adminShadowInstall))
	route("/v1/admin/slo", s.adminEndpoint(http.MethodGet, false, s.adminSLO))
	route("/v1/admin/drift", s.adminEndpoint(http.MethodGet, false, s.adminDrift))
	route("/v1/admin/quality", s.adminEndpoint(http.MethodGet, false, s.adminQuality))
	route("/v1/admin/trace", s.adminEndpoint(http.MethodGet, false, s.adminTraceList))
	route("/v1/admin/trace/", s.adminEndpoint(http.MethodGet, false, s.adminTraceGet))
	return mux
}

// refreshDerived brings lazily computed gauges (SLO windows, drift
// scores) up to date; PromHandler runs it before every scrape.
func (s *Server) refreshDerived() {
	s.slo.Export(obs.Default)
	if s.drift != nil {
		s.drift.DriftReport() // updates the registry's drift gauges
	}
	if s.quality != nil {
		s.quality.QualityReport() // updates the registry's quality gauges
	}
}

// handleReady reports per-arch load state: 200 once every configured
// artifact is live, 503 (with the same body) while anything is still
// loading or failed — the signal orchestrators gate traffic on during
// startup and reload.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	resp := ReadyResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Arches:        s.backend.Status(),
	}
	if err := s.backend.Ready(); err != nil {
		resp.Error = err.Error()
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	resp.Ready = true
	writeJSON(w, http.StatusOK, resp)
}

// handleModel describes the artifact serving ?arch= (default arch when
// absent).
func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	lm, err := s.live(r.URL.Query().Get("arch"))
	if err != nil {
		writeError(w, err)
		return
	}
	art := lm.Artifact
	resp := modelResponse{
		Kind:       art.Kind,
		Classifier: art.Classifier,
		Arch:       lm.Arch,
		Default:    lm.Arch == s.backend.DefaultArch(),
		Formats:    art.Formats,
		Features:   art.InDim(),
		Version:    ArtifactVersion,
		Hash:       lm.Hash,
		Source:     lm.Source,
	}
	if art.Kind == KindSemisup {
		resp.Clusters = art.Semisup.NumClusters()
	}
	if c := art.Cascade; c != nil {
		resp.Cascade = true
		resp.CascadeClassifier = c.Classifier
		resp.CascadeThreshold = c.Threshold
		resp.CascadeAgreement = c.HeldoutAgreement
		resp.CascadeTarget = c.TargetAgreement
		resp.CascadeHitRate = c.HeldoutHitRate
	}
	if cand, ok := s.backend.Shadow(lm.Arch); ok {
		resp.ShadowHash = cand.Hash
	}
	writeJSON(w, http.StatusOK, resp)
}

// httpError carries a status code with the error.
type httpError struct {
	status int
	err    error
}

func (e *httpError) Error() string { return e.err.Error() }
func (e *httpError) Unwrap() error { return e.err }

func badRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, err: fmt.Errorf(format, args...)}
}

// live resolves a request arch through the backend, mapping routing
// errors to HTTP statuses: unknown arch 404, not-yet-loaded 503.
func (s *Server) live(arch string) (LiveModel, error) {
	lm, err := s.backend.Live(arch)
	if err == nil {
		return lm, nil
	}
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrUnknownArch):
		status = http.StatusNotFound
	case errors.Is(err, ErrNotLoaded):
		status = http.StatusServiceUnavailable
	}
	return lm, &httpError{status: status, err: err}
}

// limited wraps a prediction handler with the request method check, the
// per-request timeout, the concurrency bound and the metrics. The
// handler returns the full response object (predictResponse or
// batchResponse).
func (s *Server) limited(h func(ctx context.Context, r *http.Request) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST"})
			return
		}
		s.requests.Inc()
		start := time.Now()
		defer func() {
			s.latency.ObserveExemplar(time.Since(start).Seconds(), obs.TraceID(r.Context()))
		}()

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
		defer cancel()

		// Bounded concurrency: wait for a slot, but never longer than
		// the request timeout — shed load instead of queueing without
		// bound.
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			s.rejected.Inc()
			s.errors.Inc()
			writeJSON(w, http.StatusServiceUnavailable,
				errorResponse{Error: "server at capacity, retry later"})
			return
		}
		s.inflight.Add(1)
		defer func() {
			s.inflight.Add(-1)
			<-s.sem
		}()

		resp, err := h(ctx, r)
		if err != nil {
			s.errors.Inc()
			writeError(w, err)
			return
		}
		// Stamp which artifact answered (single and batch: handlers note
		// the resolved model on the request info), so callers — the
		// fleet proxy, replay, rollout checks — can assert the serving
		// hash without a second /v1/model round-trip.
		if info := reqInfoFrom(ctx); info != nil && info.modelHash != "" {
			w.Header().Set("X-Model-Hash", info.modelHash)
		}
		writeJSON(w, http.StatusOK, resp)
	}
}

// readBody reads the (size-bounded) request body.
func (s *Server) readBody(r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxBodyBytes+1))
	if err != nil {
		return nil, badRequest("reading request body: %v", err)
	}
	if int64(len(body)) > s.cfg.MaxBodyBytes {
		return nil, &httpError{status: http.StatusRequestEntityTooLarge,
			err: fmt.Errorf("request body exceeds %d bytes", s.cfg.MaxBodyBytes)}
	}
	if len(body) == 0 {
		return nil, badRequest("empty request body")
	}
	return body, nil
}

// answered is one resolved prediction: the served answer, its cache
// disposition, and the shadow candidate's answer when one scored the
// same request — what feedback joins measured outcomes against.
type answered struct {
	pred   Prediction
	cached bool
	cand   Prediction
	candOK bool
}

// predictBody answers one MatrixMarket body against a resolved live
// model: cache lookup (keyed by body content and the live artifact
// hash), feature-memo lookup (keyed by body content alone), parse,
// extract (through the caller's scratches), predict, shadow score.
// Shared by the single-matrix endpoint and every batch item, so the two
// paths cannot drift.
//
// While a shadow candidate is registered for the arch the cache is
// bypassed entirely: shadow evaluation wants every request scored by
// both models, and serving the live answer from the LRU would silently
// shrink the comparison sample. The feature memo still serves shadowed
// requests when it holds the full vector — both models then score the
// memoized features, which is exactly what the parse path would feed
// them.
func (s *Server) predictBody(ctx context.Context, lm LiveModel, cand LiveModel, shadowed bool, scratch *features.Scratch, ps *sparse.ParseScratch, body []byte) (answered, error) {
	sum := sha256.Sum256(body)
	key := contentKeySum("matrix", lm.Hash, sum)
	if !shadowed {
		_, csp := obs.StartChild(ctx, "cache")
		pred, ok := s.cache.Get(key)
		csp.End()
		if ok {
			s.cacheHits.Inc()
			// Cache hits never parse the body, so the drift monitor only
			// sees the label stream (vec is nil).
			s.recordPrediction(ctx, lm.Arch, pred, nil)
			return answered{pred: pred, cached: true}, nil
		}
	}
	s.cacheMisses.Inc()
	// Feature memo: a repeat body skips parse + extract even when the
	// prediction cache missed (different model hash after a swap, cache
	// disabled, or a different arch).
	memoKey := ""
	if s.featMemo.Enabled() {
		memoKey = string(sum[:16])
		mctx, msp := obs.StartChild(ctx, "memo")
		if e, ok := s.featMemo.Get(memoKey); ok {
			// The prediction cache missed but the features were already
			// known — a model swapped, an arch changed, or caching is off.
			// That disposition is worth a trace, so flag it for the store.
			noteMemoThenMiss(ctx)
			if ans, served := s.answerFromMemo(mctx, lm, cand, shadowed, key, e); served {
				msp.SetMetric("hit", 1)
				msp.End()
				s.memoHits.Inc()
				return ans, nil
			}
		}
		msp.SetMetric("hit", 0)
		msp.End()
		s.memoMisses.Inc()
	}
	_, psp := obs.StartChild(ctx, "parse")
	psp.SetMetric("bytes", float64(len(body)))
	m, err := sparse.ReadMatrixMarketBytesScratch(body, ps)
	psp.End()
	if err != nil {
		return answered{}, badRequest("parsing MatrixMarket body: %v", err)
	}
	// Cheap-first: a cascade artifact answers from the O(rows) features
	// when confident and only pays full extraction on fall-through, so
	// vec is nil for cheap answers.
	pred, vec, err := lm.Artifact.PredictMatrixScratchCtx(ctx, m, scratch)
	if err != nil {
		return answered{}, badRequest("%v", err)
	}
	s.noteCascade(lm.Artifact, pred)
	ans := answered{pred: pred}
	if shadowed {
		// The candidate scores on the full feature vector regardless of
		// which stage answered, so shadow agreement still compares whole
		// models (shadowing temporarily forfeits the cascade's win).
		if vec == nil {
			_, fsp := obs.StartChild(ctx, "features/full")
			vec = scratch.Extract(m).Slice()
			fsp.End()
		}
		_, ssp := obs.StartChild(ctx, "shadow")
		ans.cand, ans.candOK = s.scoreShadow(lm.Arch, cand, pred, vec)
		ssp.End()
	} else {
		s.cache.Put(key, pred)
	}
	if memoKey != "" {
		// Memoize whatever this request actually extracted. The vectors
		// alias the caller's scratch, so copy before the next request
		// overwrites them; cheap-only entries upgrade to full later.
		if vec != nil {
			s.featMemo.Put(memoKey, featEntry{full: append([]float64(nil), vec...)})
		} else {
			cheap := scratch.ExtractCheap(m)
			s.featMemo.Put(memoKey, featEntry{cheap: append([]float64(nil), cheap[:]...)})
		}
	}
	// Cheap answers never computed the 21-feature vector; like a cache
	// hit, the drift monitor then advances only its label stream.
	s.recordPrediction(ctx, lm.Arch, pred, vec)
	return ans, nil
}

// answerFromMemo serves one cache-missed request from memoized feature
// vectors, skipping parse and extraction. served=false means the entry
// cannot answer this request (cheap-only entry but the cascade is not
// confident, a shadow needs the full vector, or the model rejected the
// vector) and the caller takes the parse path.
func (s *Server) answerFromMemo(ctx context.Context, lm LiveModel, cand LiveModel, shadowed bool, cacheKey string, e featEntry) (answered, bool) {
	if e.full != nil {
		// Artifact.Predict routes the full vector through the cascade
		// exactly like the parse path would, so stage, confidence and
		// label come out identical to a fresh computation.
		_, psp := obs.StartChild(ctx, "predict")
		pred, err := lm.Artifact.Predict(e.full)
		psp.End()
		if err != nil {
			return answered{}, false // let the parse path report it
		}
		s.noteCascade(lm.Artifact, pred)
		ans := answered{pred: pred}
		if shadowed {
			_, ssp := obs.StartChild(ctx, "shadow")
			ans.cand, ans.candOK = s.scoreShadow(lm.Arch, cand, pred, e.full)
			ssp.End()
		} else {
			s.cache.Put(cacheKey, pred)
		}
		s.recordPrediction(ctx, lm.Arch, pred, e.full)
		return ans, true
	}
	// Cheap-only entry: answer only in exactly the situation the parse
	// path would have answered from the cheap stage — an unshadowed
	// request against a standard-ordering cascade that clears its
	// threshold. Anything else needs the full vector, hence a parse.
	c := lm.Artifact.Cascade
	if shadowed || c == nil || !c.usesCheapOrder() || len(e.cheap) != features.CheapCount {
		return answered{}, false
	}
	_, dsp := obs.StartChild(ctx, "cascade")
	label, conf, err := c.decide(e.cheap)
	dsp.End()
	if err != nil || conf < c.Threshold || label < 0 || label >= len(lm.Artifact.Formats) {
		return answered{}, false
	}
	pred := Prediction{
		Format:     lm.Artifact.Formats[label],
		Label:      label,
		Cluster:    -1,
		Stage:      StageCheap,
		Confidence: conf,
	}
	s.noteCascade(lm.Artifact, pred)
	ans := answered{pred: pred}
	s.cache.Put(cacheKey, pred)
	// Like any cheap answer, the 21-feature vector was never computed:
	// the drift monitor advances only its label stream.
	s.recordPrediction(ctx, lm.Arch, pred, nil)
	return ans, true
}

// Cascade confidences are probabilities; bucket the interesting top end
// where thresholds live.
var confidenceBuckets = []float64{0.2, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1}

// noteCascade tallies which stage answered. Only computed answers from
// a cascade-carrying artifact count: cache hits never ran either stage.
func (s *Server) noteCascade(art *Artifact, pred Prediction) {
	if art.Cascade == nil {
		return
	}
	if pred.Stage == StageCheap {
		s.cascadeHits.Inc()
	} else {
		s.cascadeFalls.Inc()
	}
	s.cascadeConf.Observe(pred.Confidence)
}

// CascadeStats reports the server's cascade tallies since start:
// cheap-stage answers, full-path fall-throughs, and the hit rate over
// computed predictions. Surfaced in /v1/admin/quality.
type CascadeStats struct {
	Hits         int64   `json:"hits"`
	Fallthroughs int64   `json:"fallthroughs"`
	HitRate      float64 `json:"hit_rate"`
}

func (s *Server) cascadeStats() CascadeStats {
	st := CascadeStats{
		Hits:         s.cascadeHits.Value(),
		Fallthroughs: s.cascadeFalls.Value(),
	}
	if n := st.Hits + st.Fallthroughs; n > 0 {
		st.HitRate = float64(st.Hits) / float64(n)
	}
	return st
}

// recordPrediction tallies one served answer: the per-arch/format
// counter plus the drift monitor. vec may be nil when the request body
// was never parsed (a cache hit); the drift monitor then advances only
// its predicted-format stream.
func (s *Server) recordPrediction(ctx context.Context, arch string, pred Prediction, vec []float64) {
	s.predictions.With(arch, pred.Format).Inc()
	if s.drift != nil {
		_, sp := obs.StartChild(ctx, "drift")
		s.drift.RecordServed(arch, pred, vec)
		sp.End()
	}
}

// scoreShadow runs the candidate on the same feature vector, tallies
// the live-vs-candidate comparison in the backend, and returns the
// candidate's answer so feedback can score it on measured times too.
func (s *Server) scoreShadow(arch string, cand LiveModel, live Prediction, vec []float64) (Prediction, bool) {
	cp, err := cand.Artifact.Predict(vec)
	if err != nil {
		s.shadowErrors.Inc()
		return Prediction{}, false
	}
	s.backend.RecordShadow(arch, live, cp)
	return cp, true
}

// predictMatrix answers a MatrixMarket body, routed by ?arch=.
func (s *Server) predictMatrix(ctx context.Context, r *http.Request) (any, error) {
	lm, err := s.live(r.URL.Query().Get("arch"))
	if err != nil {
		return nil, err
	}
	noteModel(ctx, lm)
	body, err := s.readBody(r)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, &httpError{status: http.StatusServiceUnavailable, err: err}
	}
	cand, shadowed := s.backend.Shadow(lm.Arch)
	var scratch features.Scratch
	ps := sparse.GetParseScratch()
	defer sparse.PutParseScratch(ps)
	ans, err := s.predictBody(ctx, lm, cand, shadowed, &scratch, ps, body)
	if err != nil {
		return nil, err
	}
	noteCached(ctx, ans.cached)
	s.notePending(ctx, "", lm, ans.pred, ans.cand, ans.candOK)
	s.captureRequest(ctx, "/v1/predict/matrix", lm, r.Header.Get("Content-Type"), body, []string{ans.pred.Format})
	return predictResponse{Prediction: ans.pred, Arch: lm.Arch, ModelHash: lm.Hash, Cached: ans.cached}, nil
}

// featuresRequest is the JSON body of /v1/predict/features.
type featuresRequest struct {
	Features []float64 `json:"features"`
	// Arch routes the request; empty selects the default (a ?arch=
	// query parameter also works and the body field wins).
	Arch string `json:"arch,omitempty"`
}

// predictFeatures answers a raw feature vector.
func (s *Server) predictFeatures(ctx context.Context, r *http.Request) (any, error) {
	body, err := s.readBody(r)
	if err != nil {
		return nil, err
	}
	var req featuresRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, badRequest("parsing JSON body: %v", err)
	}
	arch := req.Arch
	if arch == "" {
		arch = r.URL.Query().Get("arch")
	}
	lm, err := s.live(arch)
	if err != nil {
		return nil, err
	}
	noteModel(ctx, lm)
	if err := ctx.Err(); err != nil {
		return nil, &httpError{status: http.StatusServiceUnavailable, err: err}
	}
	cand, shadowed := s.backend.Shadow(lm.Arch)
	key := contentKey("features", lm.Hash, body)
	if !shadowed {
		if pred, ok := s.cache.Get(key); ok {
			s.cacheHits.Inc()
			noteCached(ctx, true)
			// The feature vector is in hand even on a hit, so the drift
			// monitor sees the full observation.
			s.recordPrediction(ctx, lm.Arch, pred, req.Features)
			s.notePending(ctx, "", lm, pred, Prediction{}, false)
			s.captureRequest(ctx, "/v1/predict/features", lm, r.Header.Get("Content-Type"), body, []string{pred.Format})
			return predictResponse{Prediction: pred, Arch: lm.Arch, ModelHash: lm.Hash, Cached: true}, nil
		}
	}
	s.cacheMisses.Inc()
	_, psp := obs.StartChild(ctx, "predict")
	pred, err := lm.Artifact.Predict(req.Features)
	psp.End()
	if err != nil {
		return nil, badRequest("%v", err)
	}
	s.noteCascade(lm.Artifact, pred)
	var candPred Prediction
	var candOK bool
	if shadowed {
		_, ssp := obs.StartChild(ctx, "shadow")
		candPred, candOK = s.scoreShadow(lm.Arch, cand, pred, req.Features)
		ssp.End()
	} else {
		s.cache.Put(key, pred)
	}
	s.recordPrediction(ctx, lm.Arch, pred, req.Features)
	s.notePending(ctx, "", lm, pred, candPred, candOK)
	s.captureRequest(ctx, "/v1/predict/features", lm, r.Header.Get("Content-Type"), body, []string{pred.Format})
	return predictResponse{Prediction: pred, Arch: lm.Arch, ModelHash: lm.Hash, Cached: false}, nil
}

// Run serves on addr until ctx is cancelled (SIGTERM in the CLI), then
// shuts down gracefully, draining in-flight requests for up to 5
// seconds. ready, when non-nil, receives the bound address once the
// listener is up — how callers learn the port of ":0".
func (s *Server) Run(ctx context.Context, addr string, ready func(bound string)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listening on %s: %w", addr, err)
	}
	if ready != nil {
		ready(ln.Addr().String())
	}
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       s.cfg.Timeout,
		WriteTimeout:      s.cfg.Timeout,
	}
	if s.burn != nil {
		go s.burn.loop(ctx, 10*time.Second)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	return nil
}

// contentKey hashes an endpoint-qualified request body together with
// the live artifact hash, so entries cached under a replaced model can
// never answer a request served by its successor.
func contentKey(endpoint, modelHash string, body []byte) string {
	return contentKeySum(endpoint, modelHash, sha256.Sum256(body))
}

// contentKeySum is contentKey over a precomputed body digest: the
// matrix path hashes its body exactly once and reuses the digest for
// both the prediction cache key (which must also cover the artifact
// hash) and the feature-memo key (which must not).
func contentKeySum(endpoint, modelHash string, sum [sha256.Size]byte) string {
	h := sha256.New()
	io.WriteString(h, endpoint)
	h.Write([]byte{0})
	io.WriteString(h, modelHash)
	h.Write([]byte{0})
	h.Write(sum[:])
	return hex.EncodeToString(h.Sum(nil))
}

// writeError renders err as its JSON error body, honouring an embedded
// httpError status.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var he *httpError
	if errors.As(err, &he) {
		status = he.status
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data, err := json.Marshal(v)
	if err != nil {
		// v is always one of our own response structs; this cannot
		// happen for valid predictions, but never crash the handler.
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
		return
	}
	w.Write(append(data, '\n'))
}
