package serve

import (
	"crypto/sha256"
	"crypto/subtle"
	"net/http"
	"strings"

	"repro/internal/obs"
)

// The /v1/admin/* surface: reload, promote, shadow report. Admin
// requests mutate which model answers traffic, so they refuse
// unauthenticated callers by default — the server must be started with
// an admin token, and every request must present it as a bearer token.
// Comparison is constant-time over SHA-256 digests, so neither token
// length nor a matching prefix leaks through timing.

// authorized reports whether r carries the configured admin token. An
// empty configured token authorizes nothing.
func (s *Server) authorized(r *http.Request) bool {
	if s.cfg.AdminToken == "" {
		return false
	}
	got := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
	a := sha256.Sum256([]byte(got))
	b := sha256.Sum256([]byte(s.cfg.AdminToken))
	return subtle.ConstantTimeCompare(a[:], b[:]) == 1
}

// adminEndpoint wraps an admin handler with the method check, the
// token gate and the admin metrics. needBackend marks handlers that
// mutate or read the AdminBackend (reload, promote, shadow) — they
// answer 501 on a static server; read-only telemetry endpoints (SLO,
// drift) work on any backend and pass false.
func (s *Server) adminEndpoint(method string, needBackend bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.adminReqs.Inc()
		if r.Method != method {
			w.Header().Set("Allow", method)
			writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use " + method})
			return
		}
		if !s.authorized(r) {
			s.adminDenied.Inc()
			w.Header().Set("WWW-Authenticate", `Bearer realm="spmvselect admin"`)
			msg := "invalid admin token"
			if s.cfg.AdminToken == "" {
				msg = "admin API disabled: start the server with -admin-token"
			}
			writeJSON(w, http.StatusUnauthorized, errorResponse{Error: msg})
			return
		}
		if needBackend && s.admin == nil {
			writeJSON(w, http.StatusNotImplemented,
				errorResponse{Error: "this server hosts a static model; admin operations need the registry (-models)"})
			return
		}
		h(w, r)
	}
}

// reloadResponse is the /v1/admin/reload answer.
type reloadResponse struct {
	// Changed lists the hot-swapped entries ("arch", or "shadow:arch"
	// for candidates); empty when every artifact's content hash was
	// unchanged — reloads are idempotent.
	Changed []string `json:"changed"`
	Error   string   `json:"error,omitempty"`
}

// adminReload re-reads every artifact from disk, swapping only the
// changed ones, and flushes the prediction cache when anything swapped.
func (s *Server) adminReload(w http.ResponseWriter, r *http.Request) {
	changed, err := s.admin.Reload()
	if changed == nil {
		changed = []string{}
	}
	if len(changed) > 0 {
		s.FlushCache()
	}
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, reloadResponse{Changed: changed, Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, reloadResponse{Changed: changed})
}

// promoteResponse is the /v1/admin/promote answer.
type promoteResponse struct {
	Arch string `json:"arch"`
	// Hash is the new live artifact hash (the former shadow candidate).
	Hash string `json:"hash"`
}

// adminPromote flips ?arch='s shadow candidate to live (default arch
// when absent) and flushes the prediction cache.
func (s *Server) adminPromote(w http.ResponseWriter, r *http.Request) {
	arch := r.URL.Query().Get("arch")
	if arch == "" {
		arch = s.backend.DefaultArch()
	}
	hash, err := s.admin.Promote(arch)
	if err != nil {
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
		return
	}
	s.FlushCache()
	writeJSON(w, http.StatusOK, promoteResponse{Arch: NormalizeArch(arch), Hash: hash})
}

// adminShadow returns the shadow evaluation report.
func (s *Server) adminShadow(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.admin.ShadowReport())
}

// shadowInstallResponse is the /v1/admin/shadow/install answer.
type shadowInstallResponse struct {
	Arch string `json:"arch"`
	// Hash is the replica's own content hash of the received bytes;
	// rollout controllers compare it to what they sent.
	Hash string `json:"hash"`
}

// adminShadowInstall accepts a candidate artifact's raw bytes and
// installs it as ?arch='s shadow (default arch when absent) — the push
// phase of a fleet rollout, for replicas that do not share a
// filesystem with the controller. Scoring starts immediately;
// promotion stays a separate, explicit step.
func (s *Server) adminShadowInstall(w http.ResponseWriter, r *http.Request) {
	if s.installer == nil {
		writeJSON(w, http.StatusNotImplemented,
			errorResponse{Error: "this server cannot accept pushed candidates; serve from the registry (-models)"})
		return
	}
	data, err := s.readBody(r)
	if err != nil {
		writeError(w, err)
		return
	}
	arch := r.URL.Query().Get("arch")
	if arch == "" {
		arch = s.backend.DefaultArch()
	}
	hash, err := s.installer.InstallShadow(arch, data)
	if err != nil {
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, shadowInstallResponse{Arch: NormalizeArch(arch), Hash: hash})
}

// traceListResponse is the /v1/admin/trace list answer.
type traceListResponse struct {
	Count  int                `json:"count"`
	Traces []obs.TraceSummary `json:"traces"`
}

// adminTraceList returns summaries of every retained trace, newest
// first. 501 when the server was started with tracing disabled
// (-trace -1).
func (s *Server) adminTraceList(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		writeJSON(w, http.StatusNotImplemented,
			errorResponse{Error: "tracing disabled on this server (-trace -1)"})
		return
	}
	list := s.traces.List()
	if list == nil {
		list = []obs.TraceSummary{}
	}
	writeJSON(w, http.StatusOK, traceListResponse{Count: len(list), Traces: list})
}

// adminTraceGet returns one retained trace — the full span tree — by
// trace ID (the request's X-Request-ID). /v1/admin/trace/<id>.
func (s *Server) adminTraceGet(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		writeJSON(w, http.StatusNotImplemented,
			errorResponse{Error: "tracing disabled on this server (-trace -1)"})
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/admin/trace/")
	if id == "" {
		s.adminTraceList(w, r)
		return
	}
	e := s.traces.Get(id)
	if e == nil {
		writeJSON(w, http.StatusNotFound,
			errorResponse{Error: "no retained trace with ID " + id + " (evicted, sampled out, or never seen)"})
		return
	}
	writeJSON(w, http.StatusOK, e)
}

// adminSLO returns the rolling-window SLO report (latency quantiles,
// availability and burn rate over 1m/5m/1h).
func (s *Server) adminSLO(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.slo.Report())
}

// adminDrift returns the served-prediction drift report. 501 when the
// backend has no drift monitor (static servers, artifacts trained
// before baselines existed).
func (s *Server) adminDrift(w http.ResponseWriter, r *http.Request) {
	if s.drift == nil {
		writeJSON(w, http.StatusNotImplemented,
			errorResponse{Error: "this backend has no drift monitor; serve from the registry (-models)"})
		return
	}
	writeJSON(w, http.StatusOK, s.drift.DriftReport())
}
