package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/obs"
)

// Burn-triggered profiling: when the 5-minute SLO burn rate stays above
// a configured threshold for consecutive checks, the server captures a
// CPU profile and a trace-store snapshot into the debug directory —
// the evidence an operator needs is collected while the incident is
// happening, not after someone notices the pager. Captures are
// rate-limited to one per window so a long burn cannot fill the disk.

// burnConfig configures a burnProfiler.
type burnConfig struct {
	// Dir receives burn-<unixnano>-cpu.pprof and
	// burn-<unixnano>-traces.json capture pairs.
	Dir string
	// Threshold is the sustained 5m burn rate that triggers a capture.
	Threshold float64
	// Consecutive is how many successive over-threshold checks arm the
	// trigger (default 2) — one noisy reading must not burn a capture.
	Consecutive int
	// Window rate-limits captures: at most one per Window (default 5m).
	Window time.Duration
	// ProfileDuration is how long the CPU profile runs (default 2s).
	ProfileDuration time.Duration
	// BurnRate supplies the current 5m burn rate on each check.
	BurnRate func() float64
	// Traces supplies the trace-store snapshot written next to the
	// profile; nil writes an empty list.
	Traces func() []*obs.TraceEntry
	// Now is the clock (tests); nil means time.Now.
	Now func() time.Time
	// Log, when set, records captures and capture failures.
	Log *slog.Logger
}

// burnProfiler watches the burn rate and captures debug evidence.
type burnProfiler struct {
	cfg burnConfig

	mu          sync.Mutex
	streak      int
	lastCapture time.Time
	capturing   bool

	captures *obs.Counter
}

func newBurnProfiler(cfg burnConfig) *burnProfiler {
	if cfg.Consecutive <= 0 {
		cfg.Consecutive = 2
	}
	if cfg.Window <= 0 {
		cfg.Window = 5 * time.Minute
	}
	if cfg.ProfileDuration <= 0 {
		cfg.ProfileDuration = 2 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &burnProfiler{
		cfg:      cfg,
		captures: obs.Default.Counter("serve/burnprof/captures"),
	}
}

// loop ticks the burn check every interval until ctx is cancelled.
func (b *burnProfiler) loop(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			b.tick()
		}
	}
}

// tick takes one burn-rate reading; a sustained breach (Consecutive
// readings over Threshold) outside the rate-limit window launches a
// capture in the background. Returns whether a capture was started —
// for tests.
func (b *burnProfiler) tick() bool {
	rate := b.cfg.BurnRate()
	b.mu.Lock()
	if rate < b.cfg.Threshold {
		b.streak = 0
		b.mu.Unlock()
		return false
	}
	b.streak++
	now := b.cfg.Now()
	if b.streak < b.cfg.Consecutive || b.capturing ||
		(!b.lastCapture.IsZero() && now.Sub(b.lastCapture) < b.cfg.Window) {
		b.mu.Unlock()
		return false
	}
	b.capturing = true
	b.lastCapture = now
	b.mu.Unlock()

	go func() {
		err := b.capture(now, rate)
		b.mu.Lock()
		b.capturing = false
		b.mu.Unlock()
		if b.cfg.Log != nil {
			if err != nil {
				b.cfg.Log.Error("burn capture failed", slog.Any("error", err))
			} else {
				b.cfg.Log.Warn("burn capture written",
					slog.Float64("burn_rate", rate), slog.String("dir", b.cfg.Dir))
			}
		}
	}()
	return true
}

// burnSnapshot is the JSON written next to the CPU profile.
type burnSnapshot struct {
	At       time.Time         `json:"at"`
	BurnRate float64           `json:"burn_rate"`
	Traces   []*obs.TraceEntry `json:"traces"`
}

// capture writes the profile/trace pair for one burn event.
func (b *burnProfiler) capture(at time.Time, rate float64) error {
	if err := os.MkdirAll(b.cfg.Dir, 0o755); err != nil {
		return fmt.Errorf("burnprof: %w", err)
	}
	stamp := fmt.Sprintf("burn-%d", at.UnixNano())

	var traces []*obs.TraceEntry
	if b.cfg.Traces != nil {
		traces = b.cfg.Traces()
	}
	if traces == nil {
		traces = []*obs.TraceEntry{}
	}
	snap, err := json.MarshalIndent(burnSnapshot{At: at, BurnRate: rate, Traces: traces}, "", "  ")
	if err != nil {
		return fmt.Errorf("burnprof: encoding traces: %w", err)
	}
	if err := os.WriteFile(filepath.Join(b.cfg.Dir, stamp+"-traces.json"), snap, 0o644); err != nil {
		return fmt.Errorf("burnprof: %w", err)
	}

	f, err := os.Create(filepath.Join(b.cfg.Dir, stamp+"-cpu.pprof"))
	if err != nil {
		return fmt.Errorf("burnprof: %w", err)
	}
	defer f.Close()
	if err := pprof.StartCPUProfile(f); err != nil {
		// Another profiler (a burn capture racing a manual pprof fetch)
		// already owns CPU profiling; the trace snapshot still landed.
		return fmt.Errorf("burnprof: cpu profile: %w", err)
	}
	time.Sleep(b.cfg.ProfileDuration)
	pprof.StopCPUProfile()
	b.captures.Add(1)
	return nil
}
