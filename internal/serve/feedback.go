package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/obs"
)

// Outcome feedback: the half of the quality loop the client drives.
// A caller that went on to run (or simulate) the SpMV kernels reports
// the measured per-format times — or just the realized time of the
// format it was told to use — keyed by the X-Request-ID its prediction
// answered under. The server joins the report against the prediction
// it remembers serving (a bounded consume-once table), computes the
// outcome (was the prediction the measured-fastest format, and how
// much slower than the oracle pick was it), and feeds the backend's
// quality windows — the online analogue of the paper's accuracy and
// slowdown-versus-oracle columns, measured on production traffic.

// maxFeedbackBody bounds a /v1/feedback body. A report carries one ID
// and at most a handful of format times; anything bigger is abuse.
const maxFeedbackBody = 4 << 10

// defaultPendingFeedback is the consume-once table's capacity when
// Config.PendingFeedback is zero: how many recent predictions remain
// joinable against late-arriving feedback before the oldest fall out.
const defaultPendingFeedback = 4096

// pendingPred is what the server remembers about one served
// prediction while it waits for feedback.
type pendingPred struct {
	arch      string
	modelHash string
	live      Prediction
	// formats is the artifact's label->format mapping, the universe a
	// full per-format sweep must cover.
	formats []string
	// cand is the shadow candidate's answer to the same request, when
	// one was registered.
	cand   Prediction
	candOK bool
}

// pendingStore is a bounded consume-once map: predictions register
// under their feedback key, feedback takes them out, and when the
// table is full the oldest un-consumed entry is evicted (its feedback,
// if it ever arrives, answers 404 like any unknown ID).
type pendingStore struct {
	mu   sync.Mutex
	m    map[string]pendingPred
	ring []string // insertion order, for eviction
	head int
	n    int
}

func newPendingStore(capacity int) *pendingStore {
	if capacity <= 0 {
		capacity = defaultPendingFeedback
	}
	return &pendingStore{
		m:    make(map[string]pendingPred, capacity),
		ring: make([]string, capacity),
	}
}

// put registers one served prediction. Re-registering a key (a client
// reusing a request ID) replaces the entry in place.
func (p *pendingStore) put(key string, v pendingPred) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.m[key]; dup {
		p.m[key] = v
		return
	}
	if p.n == len(p.ring) {
		delete(p.m, p.ring[p.head])
	} else {
		p.n++
	}
	p.ring[p.head] = key
	p.head = (p.head + 1) % len(p.ring)
	p.m[key] = v
}

// peek returns the entry without consuming it (validation must not
// burn the entry on a malformed report the client will retry).
func (p *pendingStore) peek(key string) (pendingPred, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.m[key]
	return v, ok
}

// take consumes the entry. The ring keeps the dead key until eviction
// reaches it; put treats missing map entries as free slots already.
func (p *pendingStore) take(key string) (pendingPred, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.m[key]
	if ok {
		delete(p.m, key)
	}
	return v, ok
}

// notePending remembers one served prediction under its feedback key
// so a later /v1/feedback can be joined against it. No-op unless the
// backend has a quality surface (feedback answers 501 without one).
func (s *Server) notePending(ctx context.Context, itemSuffix string, lm LiveModel, live Prediction, cand Prediction, candOK bool) {
	if s.pending == nil {
		return
	}
	trace := obs.TraceID(ctx)
	if trace == "" {
		return
	}
	s.pending.put(trace+itemSuffix, pendingPred{
		arch:      lm.Arch,
		modelHash: lm.Hash,
		live:      live,
		formats:   lm.Artifact.Formats,
		cand:      cand,
		candOK:    candOK,
	})
}

// feedbackRequest is the JSON body of POST /v1/feedback.
type feedbackRequest struct {
	// RequestID is the X-Request-ID the prediction answered under.
	RequestID string `json:"request_id"`
	// Item addresses one matrix of a /v1/predict/batch request by its
	// position. Absent for single-prediction requests.
	Item *int `json:"item,omitempty"`
	// TimesMs are measured per-format kernel times in milliseconds. A
	// sweep covering every format the model maps makes the outcome
	// "full" (it feeds accuracy, regret and the confusion matrix); a
	// partial map must at least cover the served format.
	TimesMs map[string]float64 `json:"times_ms,omitempty"`
	// ServedMs is the realized time of the served format, for clients
	// that only ran what they were told to run. TimesMs wins when it
	// covers the served format.
	ServedMs float64 `json:"served_ms,omitempty"`
}

// feedbackResponse acknowledges one accepted outcome.
type feedbackResponse struct {
	RequestID string `json:"request_id"`
	Arch      string `json:"arch"`
	ModelHash string `json:"model_hash"`
	// Predicted echoes the format the feedback was joined against.
	Predicted string `json:"predicted"`
	// Full, Best and Regret report the computed outcome when the sweep
	// covered every format.
	Full   bool    `json:"full"`
	Best   string  `json:"best,omitempty"`
	Regret float64 `json:"regret,omitempty"`
}

// handleFeedback is POST /v1/feedback.
func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST"})
		return
	}
	if s.quality == nil {
		s.feedbackRejected.Inc()
		writeJSON(w, http.StatusNotImplemented,
			errorResponse{Error: "this backend keeps no quality windows; serve from the registry (-models)"})
		return
	}
	resp, err := s.feedback(r)
	if err != nil {
		s.feedbackRejected.Inc()
		s.errors.Inc()
		writeError(w, err)
		return
	}
	s.feedbackAccepted.Inc()
	writeJSON(w, http.StatusOK, resp)
}

// feedback validates one report, joins it against the pending
// prediction, and feeds the outcome to the quality backend.
func (s *Server) feedback(r *http.Request) (*feedbackResponse, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxFeedbackBody+1))
	if err != nil {
		return nil, badRequest("reading feedback body: %v", err)
	}
	if len(body) > maxFeedbackBody {
		return nil, &httpError{status: http.StatusRequestEntityTooLarge,
			err: fmt.Errorf("feedback body exceeds %d bytes", maxFeedbackBody)}
	}
	var req feedbackRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, badRequest("parsing feedback JSON: %v", err)
	}
	if req.RequestID == "" {
		return nil, badRequest("feedback names no request_id")
	}
	if len(req.RequestID) > maxTraceIDLen {
		return nil, badRequest("request_id exceeds %d characters", maxTraceIDLen)
	}
	if req.Item != nil && *req.Item < 0 {
		return nil, badRequest("feedback item %d is negative", *req.Item)
	}
	for f, ms := range req.TimesMs {
		if !(ms > 0) || math.IsInf(ms, 1) { // catches 0, negatives, NaN, +Inf
			return nil, badRequest("times_ms[%s] = %v is not a positive finite time", f, ms)
		}
	}
	if req.ServedMs < 0 || math.IsNaN(req.ServedMs) || math.IsInf(req.ServedMs, 0) {
		return nil, badRequest("served_ms = %v is not a non-negative finite time", req.ServedMs)
	}

	key := req.RequestID
	if req.Item != nil {
		key += "#" + strconv.Itoa(*req.Item)
	}
	pp, ok := s.pending.peek(key)
	if !ok {
		return nil, &httpError{status: http.StatusNotFound,
			err: fmt.Errorf("no pending prediction for request ID %q (unknown, already reported, or evicted)", key)}
	}
	for f := range req.TimesMs {
		if !containsFormat(pp.formats, f) {
			return nil, badRequest("times_ms names format %q the %s model does not map (formats: %v)", f, pp.arch, pp.formats)
		}
	}
	servedMs, servedMeasured := req.TimesMs[pp.live.Format]
	if !servedMeasured {
		if req.ServedMs == 0 {
			return nil, badRequest("feedback covers neither the served format %q in times_ms nor served_ms", pp.live.Format)
		}
		servedMs = req.ServedMs
	}

	o := Outcome{
		Predicted:  pp.live,
		BestLabel:  -1,
		ServedMs:   servedMs,
		Full:       len(req.TimesMs) == len(pp.formats),
		BestFormat: "",
	}
	if o.Full {
		bestMs := math.Inf(1)
		for label, f := range pp.formats {
			if ms := req.TimesMs[f]; ms < bestMs {
				bestMs = ms
				o.BestLabel = label
				o.BestFormat = f
			}
		}
		o.Regret = servedMs / bestMs
	}
	if pp.candOK {
		o.HasCandidate = true
		o.Candidate = pp.cand
		o.CandidateMs = req.TimesMs[pp.cand.Format] // 0 when not measured
	}

	// Consume only after full validation, so a malformed report can be
	// corrected and retried. A concurrent duplicate losing this race
	// answers 404 like any consumed ID.
	if _, ok := s.pending.take(key); !ok {
		return nil, &httpError{status: http.StatusNotFound,
			err: fmt.Errorf("request ID %q was already reported", key)}
	}
	s.quality.RecordOutcome(pp.arch, o)

	return &feedbackResponse{
		RequestID: req.RequestID,
		Arch:      pp.arch,
		ModelHash: pp.modelHash,
		Predicted: pp.live.Format,
		Full:      o.Full,
		Best:      o.BestFormat,
		Regret:    o.Regret,
	}, nil
}

func containsFormat(formats []string, f string) bool {
	for _, g := range formats {
		if g == f {
			return true
		}
	}
	return false
}

// adminQuality is GET /v1/admin/quality: the measured-quality report,
// plus the server's cascade tallies. 501 when the backend keeps no
// quality windows (static servers).
func (s *Server) adminQuality(w http.ResponseWriter, r *http.Request) {
	if s.quality == nil {
		writeJSON(w, http.StatusNotImplemented,
			errorResponse{Error: "this backend keeps no quality windows; serve from the registry (-models)"})
		return
	}
	report := s.quality.QualityReport()
	// Graft the cascade stats onto the backend's report without
	// changing its top-level shape — replay and the dashboards decode
	// the window_size/arches keys directly.
	raw, err := json.Marshal(report)
	if err != nil {
		writeJSON(w, http.StatusOK, report)
		return
	}
	var merged map[string]any
	if err := json.Unmarshal(raw, &merged); err != nil || merged == nil {
		writeJSON(w, http.StatusOK, report)
		return
	}
	merged["cascade"] = s.cascadeStats()
	writeJSON(w, http.StatusOK, merged)
}
