package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/obs"
	"repro/internal/sparse"
)

// testServer builds a server over a small semisup artifact plus one
// corpus matrix (as MatrixMarket bytes) to predict on.
func testServer(t *testing.T, cfg Config) (*Server, *Artifact, *sparse.CSR, []byte) {
	t.Helper()
	ms, best := labelledCorpus(t, "Turing")
	sel, err := core.TrainSelector(ms, best, core.Options{NumClusters: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	art := NewSemisupArtifact(sel.Model(), "Turing")
	srv, err := NewServer(art, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var mm bytes.Buffer
	if err := sparse.WriteMatrixMarket(&mm, ms[0]); err != nil {
		t.Fatal(err)
	}
	return srv, art, ms[0], mm.Bytes()
}

func postJSON(t *testing.T, h http.Handler, path string, body []byte) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var out map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("POST %s: non-JSON response %q: %v", path, rec.Body.String(), err)
	}
	return rec, out
}

func TestServeEndpoints(t *testing.T) {
	srv, art, m, mm := testServer(t, Config{})
	h := srv.Handler()

	// Liveness.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz: %d", rec.Code)
	}

	// Metadata.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/model", nil))
	var meta modelResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Kind != KindSemisup || meta.Features != features.Count || meta.Clusters != 10 {
		t.Fatalf("/v1/model = %+v", meta)
	}

	// Matrix prediction, then the same body again: second answer must be
	// the cache hit.
	want := art.MustPredict(t, m)
	rec, out := postJSON(t, h, "/v1/predict/matrix", mm)
	if rec.Code != http.StatusOK {
		t.Fatalf("matrix predict: %d %s", rec.Code, rec.Body.String())
	}
	if out["format"] != want.Format || out["cached"] != false {
		t.Fatalf("matrix predict = %v, want format %s uncached", out, want.Format)
	}
	rec, out = postJSON(t, h, "/v1/predict/matrix", mm)
	if rec.Code != http.StatusOK || out["format"] != want.Format || out["cached"] != true {
		t.Fatalf("repeat matrix predict = %d %v, want cached %s", rec.Code, out, want.Format)
	}

	// Feature-vector prediction agrees with the matrix path.
	body, _ := json.Marshal(featuresRequest{Features: features.Extract(m).Slice()})
	rec, out = postJSON(t, h, "/v1/predict/features", body)
	if rec.Code != http.StatusOK || out["format"] != want.Format {
		t.Fatalf("features predict = %d %v, want %s", rec.Code, out, want.Format)
	}

	// The obs registry saw the traffic.
	snap := obs.Default.Snapshot()
	if snap.Counters["serve/requests"] < 3 {
		t.Errorf("serve/requests = %d, want >= 3", snap.Counters["serve/requests"])
	}
	if snap.Counters["serve/cache/hits"] < 1 {
		t.Errorf("serve/cache/hits = %d, want >= 1", snap.Counters["serve/cache/hits"])
	}
	if h, ok := snap.Histograms["serve/request/seconds"]; !ok || h.Count < 3 {
		t.Errorf("serve/request/seconds histogram = %+v, want >= 3 observations", h)
	}
}

// MustPredict is a test helper: predict or fail.
func (a *Artifact) MustPredict(t *testing.T, m *sparse.CSR) Prediction {
	t.Helper()
	p, err := a.PredictMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestServeErrorPaths(t *testing.T) {
	srv, _, _, mm := testServer(t, Config{MaxBodyBytes: int64(len(mmHeaderOnly))})
	h := srv.Handler()

	// Wrong method.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/predict/matrix", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET predict: %d, want 405", rec.Code)
	}

	// Empty body.
	rec, _ = postJSON(t, h, "/v1/predict/matrix", nil)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("empty body: %d, want 400", rec.Code)
	}

	// Unparseable matrix (fits the size limit, is not MatrixMarket).
	rec, out := postJSON(t, h, "/v1/predict/matrix", []byte("%%MatrixMarket nope"))
	if rec.Code != http.StatusBadRequest || out["error"] == "" {
		t.Errorf("garbage matrix: %d %v, want 400 with error", rec.Code, out)
	}

	// Oversized body.
	rec, _ = postJSON(t, h, "/v1/predict/matrix", mm)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: %d, want 413", rec.Code)
	}

	// Wrong feature dimension: deterministic 400, not a panic.
	body, _ := json.Marshal(featuresRequest{Features: []float64{1, 2, 3}})
	rec, out = postJSON(t, h, "/v1/predict/features", body)
	if rec.Code != http.StatusBadRequest || !strings.Contains(out["error"].(string), "features") {
		t.Errorf("short vector: %d %v, want 400 naming features", rec.Code, out)
	}

	// Bad JSON.
	rec, _ = postJSON(t, h, "/v1/predict/features", []byte("{not json"))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad JSON: %d, want 400", rec.Code)
	}
}

// mmHeaderOnly sizes the MaxBodyBytes limit in TestServeErrorPaths:
// small enough to reject a real matrix body, large enough for the
// malformed-input probes.
var mmHeaderOnly = "%%MatrixMarket matrix coordinate real general\n1 1 1\n"

// TestServeShedsLoadWhenSaturated fills the concurrency semaphore and
// checks the next request is shed with 503 (and counted) instead of
// queueing forever.
func TestServeShedsLoadWhenSaturated(t *testing.T) {
	srv, _, _, mm := testServer(t, Config{MaxConcurrent: 1, Timeout: 50 * time.Millisecond})
	srv.sem <- struct{}{} // occupy the only slot
	defer func() { <-srv.sem }()

	before := obs.Default.Snapshot().Counters["serve/rejected"]
	rec, out := postJSON(t, srv.Handler(), "/v1/predict/matrix", mm)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated: %d %v, want 503", rec.Code, out)
	}
	if after := obs.Default.Snapshot().Counters["serve/rejected"]; after != before+1 {
		t.Errorf("serve/rejected = %d, want %d", after, before+1)
	}
}

// TestServeConcurrentRequests hammers the handler from many goroutines
// — meaningful under -race — and checks every answer is consistent.
func TestServeConcurrentRequests(t *testing.T) {
	srv, art, m, mm := testServer(t, Config{MaxConcurrent: 4, CacheSize: 2})
	h := srv.Handler()
	want := art.MustPredict(t, m)
	featBody, _ := json.Marshal(featuresRequest{Features: features.Extract(m).Slice()})

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path, body := "/v1/predict/matrix", mm
			if i%2 == 1 {
				path, body = "/v1/predict/features", featBody
			}
			req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			var out predictResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
				errs <- fmt.Errorf("request %d: %v", i, err)
				return
			}
			if rec.Code != http.StatusOK || out.Format != want.Format {
				errs <- fmt.Errorf("request %d: %d %+v", i, rec.Code, out)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := srv.cache.Len(); got > 2 {
		t.Errorf("cache grew past its capacity: %d entries", got)
	}
}

// TestServeRunGracefulShutdown starts a real listener, makes one
// request, cancels the context and expects a clean return.
func TestServeRunGracefulShutdown(t *testing.T) {
	srv, _, _, mm := testServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	bound := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx, "127.0.0.1:0", func(b string) { bound <- b }) }()

	var addr string
	select {
	case addr = <-bound:
	case err := <-done:
		t.Fatalf("Run exited before binding: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("listener never came up")
	}

	resp, err := http.Post("http://"+addr+"/v1/predict/matrix", "text/plain", bytes.NewReader(mm))
	if err != nil {
		t.Fatal(err)
	}
	var out predictResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || out.Format == "" {
		t.Fatalf("live request: %d %+v", resp.StatusCode, out)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v after cancel", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	c.Put("a", Prediction{Format: "COO"})
	c.Put("b", Prediction{Format: "CSR"})
	if _, ok := c.Get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", Prediction{Format: "ELL"})
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if p, ok := c.Get("a"); !ok || p.Format != "COO" {
		t.Errorf("a = %+v %v", p, ok)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
	// Disabled cache never stores.
	off := newLRUCache(0)
	off.Put("x", Prediction{})
	if _, ok := off.Get("x"); ok || off.Len() != 0 {
		t.Error("disabled cache stored an entry")
	}
}
