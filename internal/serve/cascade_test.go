package serve

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/sparse"
)

// cascadeArtifact trains a semisup artifact over the shared corpus and
// distils a cheap-first stage onto it. The modest agreement target
// keeps calibration attainable on the small synthetic corpus.
func cascadeArtifact(t *testing.T, target float64) (*Artifact, []*sparse.CSR) {
	t.Helper()
	ms, best := labelledCorpus(t, "Turing")
	sel, err := core.TrainSelector(ms, best, core.Options{NumClusters: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	art := NewSemisupArtifact(sel.Model(), "Turing")
	x := features.Matrix(features.ExtractAll(ms))
	c, err := TrainCascade(art, x, CascadeOptions{TargetAgreement: target, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	art.Cascade = c
	if err := art.Validate(); err != nil {
		t.Fatal(err)
	}
	return art, ms
}

// stripped returns a copy of the artifact with the cascade removed —
// the cascade-off reference model.
func stripped(a *Artifact) *Artifact {
	b := *a
	b.Cascade = nil
	return &b
}

func TestTrainCascadeCalibration(t *testing.T) {
	art, _ := cascadeArtifact(t, 0.6)
	c := art.Cascade
	if c.Threshold > 1 {
		t.Fatalf("calibration could not reach target 0.6 (threshold %v)", c.Threshold)
	}
	if c.HeldoutAgreement < c.TargetAgreement {
		t.Errorf("heldout agreement %v below target %v", c.HeldoutAgreement, c.TargetAgreement)
	}
	if c.HeldoutHitRate <= 0 || c.HeldoutHitRate > 1 {
		t.Errorf("heldout hit rate %v outside (0, 1]", c.HeldoutHitRate)
	}
	if c.HeldoutSize < 2 {
		t.Errorf("heldout size %d", c.HeldoutSize)
	}
	if !c.usesCheapOrder() {
		t.Error("trained cascade does not use the cheap feature order")
	}
}

func TestTrainCascadeUnattainableTargetDisablesStage(t *testing.T) {
	ms, best := labelledCorpus(t, "Turing")
	sel, err := core.TrainSelector(ms, best, core.Options{NumClusters: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	art := NewSemisupArtifact(sel.Model(), "Turing")
	x := features.Matrix(features.ExtractAll(ms))
	// An agreement target of exactly 1.0 on a noisy distillation is
	// normally unattainable; if this corpus happens to reach it the
	// threshold is simply <= 1 and the stage fires — both outcomes must
	// leave the artifact consistent.
	c, err := TrainCascade(art, x, CascadeOptions{TargetAgreement: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	art.Cascade = c
	if err := art.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Threshold > 1 {
		// Disabled stage: every prediction must take the full path.
		for _, m := range ms[:5] {
			pred := art.MustPredict(t, m)
			if pred.Stage != StageFull {
				t.Fatalf("disabled cascade answered from stage %q", pred.Stage)
			}
		}
	}
}

// TestCascadeDeterminism is the safety property: cascade-on and
// cascade-off answers differ only on requests the cheap stage answered
// (above threshold); every fall-through is bit-identical to the full
// path.
func TestCascadeDeterminism(t *testing.T) {
	art, ms := cascadeArtifact(t, 0.6)
	off := stripped(art)
	var s features.Scratch
	cheap, full := 0, 0
	for i, m := range ms {
		on, vec, err := art.PredictMatrixScratch(m, &s)
		if err != nil {
			t.Fatal(err)
		}
		want := off.MustPredict(t, m)
		switch on.Stage {
		case StageCheap:
			cheap++
			if on.Confidence < art.Cascade.Threshold {
				t.Fatalf("matrix %d: cheap answer below threshold (%v < %v)", i, on.Confidence, art.Cascade.Threshold)
			}
			if vec != nil {
				t.Fatalf("matrix %d: cheap answer returned a full feature vector", i)
			}
		case StageFull:
			full++
			if on.Format != want.Format || on.Label != want.Label || on.Cluster != want.Cluster {
				t.Fatalf("matrix %d: fall-through answer %+v differs from full path %+v", i, on, want)
			}
			if vec == nil {
				t.Fatalf("matrix %d: fall-through did not return the feature vector", i)
			}
		default:
			t.Fatalf("matrix %d: cascade artifact answered with stage %q", i, on.Stage)
		}
		// The features entry point must agree with the matrix entry
		// point on both stage and answer.
		viaVec, err := art.Predict(s.Extract(m).Slice())
		if err != nil {
			t.Fatal(err)
		}
		if viaVec.Stage != on.Stage || viaVec.Format != on.Format || viaVec.Confidence != on.Confidence {
			t.Fatalf("matrix %d: vector path %+v != matrix path %+v", i, viaVec, on)
		}
	}
	if cheap == 0 {
		t.Error("cheap stage never fired on the corpus")
	}
	t.Logf("corpus: %d cheap, %d fall-through", cheap, full)
}

func TestCascadeArtifactRoundTrip(t *testing.T) {
	art, ms := cascadeArtifact(t, 0.6)
	var buf bytes.Buffer
	if err := art.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Cascade == nil {
		t.Fatal("cascade lost in round trip")
	}
	if got.Cascade.Threshold != art.Cascade.Threshold ||
		got.Cascade.TargetAgreement != art.Cascade.TargetAgreement ||
		got.Cascade.HeldoutAgreement != art.Cascade.HeldoutAgreement {
		t.Fatalf("calibration drifted: %+v vs %+v", got.Cascade, art.Cascade)
	}
	for i, m := range ms {
		a, b := art.MustPredict(t, m), got.MustPredict(t, m)
		if a != b {
			t.Fatalf("matrix %d: loaded artifact predicts %+v, original %+v", i, b, a)
		}
	}
}

// TestV1ArtifactRoundTrip checks a version-1 envelope (no cascade)
// still loads and serves through the full path.
func TestV1ArtifactRoundTrip(t *testing.T) {
	art, ms := cascadeArtifact(t, 0.6)
	v1 := stripped(art)
	var buf bytes.Buffer
	if _, err := io.WriteString(&buf, artifactMagic); err != nil {
		t.Fatal(err)
	}
	if err := gob.NewEncoder(&buf).Encode(artifactEnvelope{Version: 1, Payload: *v1}); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("v1 artifact rejected: %v", err)
	}
	if got.Cascade != nil {
		t.Fatal("v1 artifact decoded with a cascade")
	}
	for i, m := range ms[:10] {
		pred := got.MustPredict(t, m)
		if pred.Stage != "" || pred.Confidence != 0 {
			t.Fatalf("matrix %d: v1 artifact answered with cascade fields %+v", i, pred)
		}
		if want := v1.MustPredict(t, m); pred != want {
			t.Fatalf("matrix %d: v1 round trip predicts %+v, want %+v", i, pred, want)
		}
	}
}

// TestCascadeServerPath drives the HTTP hot path: cascade answers are
// cached under the same content key (second request is a cache hit with
// the identical answer), the stage metrics advance, and a flush — what
// the registry's swap/promote hook calls — empties the cache.
func TestCascadeServerPath(t *testing.T) {
	art, ms := cascadeArtifact(t, 0.6)
	srv, err := NewServer(art, Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	// Pick a matrix the cheap stage answers so the test exercises the
	// cascade branch specifically (fall back to ms[0] if none).
	var s features.Scratch
	body := func(m *sparse.CSR) []byte {
		var mm bytes.Buffer
		if err := sparse.WriteMatrixMarket(&mm, m); err != nil {
			t.Fatal(err)
		}
		return mm.Bytes()
	}
	mm := body(ms[0])
	for _, m := range ms {
		if pred, _, err := art.PredictMatrixScratch(m, &s); err == nil && pred.Stage == StageCheap {
			mm = body(m)
			break
		}
	}

	hits0, falls0 := srv.cascadeHits.Value(), srv.cascadeFalls.Value()
	post := func() map[string]any {
		t.Helper()
		req := httptest.NewRequest(http.MethodPost, "/v1/predict/matrix", bytes.NewReader(mm))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("predict: %d %s", rec.Code, rec.Body.String())
		}
		var out map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	first := post()
	if first["stage"] == nil {
		t.Fatalf("cascade artifact answered without a stage: %v", first)
	}
	if d := srv.cascadeHits.Value() + srv.cascadeFalls.Value() - hits0 - falls0; d != 1 {
		t.Fatalf("cascade counters advanced by %d, want 1", d)
	}
	second := post()
	if second["cached"] != true {
		t.Fatalf("second identical request not cached: %v", second)
	}
	if second["format"] != first["format"] || second["stage"] != first["stage"] {
		t.Fatalf("cached answer %v differs from computed %v", second, first)
	}
	// Cache hits must not re-count cascade stages.
	if d := srv.cascadeHits.Value() + srv.cascadeFalls.Value() - hits0 - falls0; d != 1 {
		t.Fatalf("cache hit advanced cascade counters (delta %d)", d)
	}
	srv.FlushCache() // the registry's OnSwap/promote hook
	third := post()
	if third["cached"] == true {
		t.Fatal("request still cached after flush")
	}

	st := srv.cascadeStats()
	if st.Hits+st.Fallthroughs < 2 {
		t.Fatalf("cascade stats %+v after 2 computed answers", st)
	}
	if st.HitRate < 0 || st.HitRate > 1 {
		t.Fatalf("hit rate %v", st.HitRate)
	}
}
