package serve

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// The feature-vector memo fronts the serve hot path's parse + extract
// work: feature vectors depend only on the request body, never on the
// model, so they are keyed by body content hash alone and — unlike the
// prediction LRU — survive hot-swaps, promotions and arch routing. A
// repeat matrix therefore skips MatrixMarket parsing and feature
// extraction entirely even right after a reload, when the prediction
// cache is cold.
//
// Invalidation rules: there are none. An entry can only ever be
// superseded by a richer one for the same key (cheap-only upgraded to
// the full 21-feature vector); it is never flushed on model swap,
// because the mapping body→features is immutable. Capacity pressure is
// the only evictor (LRU).

// featEntry memoizes the extracted features of one request body. full
// is the 21-feature vector when the full path computed it; cheap is the
// O(rows) cheap-feature row when only the cascade's stage ran. Exactly
// one of the two is non-nil.
type featEntry struct {
	full  []float64
	cheap []float64
}

// featMemo is a goroutine-safe fixed-capacity LRU from body content
// hash to extracted features, instrumented with resident-entry and
// approximate-footprint gauges.
type featMemo struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recent
	items map[string]*list.Element
	bytes int64

	entries *obs.Gauge
	footpr  *obs.Gauge
}

type featMemoEntry struct {
	key string
	val featEntry
}

// featEntrySize approximates one entry's heap footprint: key bytes,
// vector payloads, and fixed list/map overhead.
func featEntrySize(key string, e featEntry) int64 {
	return int64(len(key) + 8*(len(e.full)+len(e.cheap)) + 96)
}

// newFeatMemo returns a memo holding up to capacity entries; a
// non-positive capacity disables it (Enabled reports false, every Get
// misses, Put is a no-op).
func newFeatMemo(capacity int) *featMemo {
	return &featMemo{
		cap:     capacity,
		ll:      list.New(),
		items:   make(map[string]*list.Element),
		entries: obs.Default.Gauge("serve/featmemo/entries"),
		footpr:  obs.Default.Gauge("serve/featmemo/bytes"),
	}
}

// Enabled reports whether the memo stores anything at all, so the hot
// path can skip key derivation when it is configured off.
func (c *featMemo) Enabled() bool { return c != nil && c.cap > 0 }

// Get returns the memoized features for key, marking it most recent.
func (c *featMemo) Get(key string) (featEntry, bool) {
	if !c.Enabled() {
		return featEntry{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return featEntry{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*featMemoEntry).val, true
}

// Put stores features for key, evicting the least recently used entry
// when full. Puts only ever upgrade: a full vector replaces a
// cheap-only entry, but a cheap-only row never downgrades an entry that
// already holds the full vector (both were derived from the same body,
// so the richer one stays).
func (c *featMemo) Put(key string, val featEntry) {
	if !c.Enabled() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		cur := el.Value.(*featMemoEntry)
		if cur.val.full == nil && val.full != nil {
			c.bytes += featEntrySize(key, val) - featEntrySize(key, cur.val)
			cur.val = val
		}
		c.ll.MoveToFront(el)
		c.export()
		return
	}
	c.items[key] = c.ll.PushFront(&featMemoEntry{key: key, val: val})
	c.bytes += featEntrySize(key, val)
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		ent := oldest.Value.(*featMemoEntry)
		c.bytes -= featEntrySize(ent.key, ent.val)
		delete(c.items, ent.key)
	}
	c.export()
}

// Len returns the number of memoized entries.
func (c *featMemo) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the approximate resident footprint.
func (c *featMemo) Bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// export refreshes the gauges; callers hold mu.
func (c *featMemo) export() {
	c.entries.Set(float64(c.ll.Len()))
	c.footpr.Set(float64(c.bytes))
}
