package serve

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/classify"
	"repro/internal/features"
	"repro/internal/preprocess"
)

// The cheap-first cascade: most matrices classify correctly from a
// handful of structural features (rows/cols/nnz/row-stats — Elafrou et
// al.'s lightweight selection observation), so a tiny classifier over
// features.CheapIndices answers a request whenever its top-class
// probability clears a threshold, and only the uncertain remainder pays
// full 21-feature extraction + preprocessing + model. The stage is
// distilled from the full artifact at train time — its labels are the
// full model's own predictions, not ground truth — so "agreement" below
// always means agreement with what the full path would have served, and
// the threshold is calibrated on held-out rows to hit a target
// agreement rate.

// ProbaClassifier is the slice of classify.Classifier the cascade
// needs: a per-class probability estimate to threshold on. LogReg and
// Forest implement it.
type ProbaClassifier interface {
	Proba(x []float64) []float64
}

// Cascade is the optional cheap-first stage of a version-2 artifact.
type Cascade struct {
	// Indices are the Vector indices of the cheap features, in the
	// order the stage's pipeline expects them (features.CheapIndices
	// for every cascade trained in this repository).
	Indices []int
	// Classifier names the cheap model ("logreg" or "forest").
	Classifier string
	// Pipeline and Clf are the fitted cheap-feature preprocessing chain
	// (skew + min-max, no PCA) and classifier.
	Pipeline preprocess.Chain
	Clf      classify.Classifier
	// Threshold is the calibrated confidence cutoff: the cheap answer
	// is served iff its top-class probability is >= Threshold. A value
	// above 1 means calibration could not reach the target agreement
	// and the stage never fires.
	Threshold float64
	// Calibration provenance, recorded for /v1/model and the bench
	// gates: the requested agreement target, and the agreement and
	// hit rate actually measured on the held-out split at Threshold.
	TargetAgreement  float64
	HeldoutAgreement float64
	HeldoutHitRate   float64
	HeldoutSize      int
}

// Validate checks the cascade is usable for prediction against an
// artifact mapping nFormats formats.
func (c *Cascade) Validate(nFormats int) error {
	if len(c.Indices) == 0 {
		return fmt.Errorf("serve: cascade has no feature indices")
	}
	for _, idx := range c.Indices {
		if idx < 0 || idx >= features.Count {
			return fmt.Errorf("serve: cascade feature index %d outside [0, %d)", idx, features.Count)
		}
	}
	if c.Clf == nil {
		return fmt.Errorf("serve: cascade has no classifier")
	}
	if !classify.Persistable(c.Clf) {
		return fmt.Errorf("serve: cascade classifier %T is not persistable", c.Clf)
	}
	if _, ok := c.Clf.(ProbaClassifier); !ok {
		return fmt.Errorf("serve: cascade classifier %T has no probability estimate", c.Clf)
	}
	if d := c.Pipeline.InDim(); d != 0 && d != len(c.Indices) {
		return fmt.Errorf("serve: cascade pipeline expects %d features, stage has %d", d, len(c.Indices))
	}
	if c.Threshold < 0 {
		return fmt.Errorf("serve: cascade threshold %v negative", c.Threshold)
	}
	if c.TargetAgreement < 0 || c.TargetAgreement > 1 {
		return fmt.Errorf("serve: cascade target agreement %v outside [0, 1]", c.TargetAgreement)
	}
	_ = nFormats // labels are re-checked against Formats at predict time
	return nil
}

// usesCheapOrder reports whether the stage's feature list is exactly
// features.CheapIndices, the precondition for feeding it ExtractCheap
// output directly.
func (c *Cascade) usesCheapOrder() bool {
	if len(c.Indices) != features.CheapCount {
		return false
	}
	for i, idx := range c.Indices {
		if idx != features.CheapIndices[i] {
			return false
		}
	}
	return true
}

// gather pulls the stage's features out of a full feature row. ok is
// false when the row is too short to cover every index (the full-path
// dimension check then produces the error).
func (c *Cascade) gather(full []float64) ([]float64, bool) {
	out := make([]float64, len(c.Indices))
	for i, idx := range c.Indices {
		if idx >= len(full) {
			return nil, false
		}
		out[i] = full[idx]
	}
	return out, true
}

// decide runs the cheap stage on a gathered cheap-feature row and
// returns the argmax label and its probability.
func (c *Cascade) decide(cheap []float64) (label int, conf float64, err error) {
	pc, ok := c.Clf.(ProbaClassifier)
	if !ok {
		return 0, 0, fmt.Errorf("serve: cascade classifier %T has no probability estimate", c.Clf)
	}
	p := pc.Proba(c.Pipeline.Transform(cheap))
	label = -1
	for k, v := range p {
		if label < 0 || v > conf {
			label, conf = k, v
		}
	}
	if label < 0 {
		return 0, 0, fmt.Errorf("serve: cascade produced an empty probability vector")
	}
	return label, conf, nil
}

// CascadeOptions tunes TrainCascade. The zero value selects defaults.
type CascadeOptions struct {
	// Model is the cheap classifier: "logreg" (default) or "forest".
	Model string
	// TargetAgreement is the agreement rate with the full model the
	// threshold must reach on the held-out answered subset (default
	// 0.95).
	TargetAgreement float64
	// Holdout is the calibration split fraction (default 0.25).
	Holdout float64
	// Seed drives the split shuffle and the forest.
	Seed int64
}

func (o CascadeOptions) withDefaults() CascadeOptions {
	if o.Model == "" {
		o.Model = "logreg"
	}
	if o.TargetAgreement == 0 {
		o.TargetAgreement = 0.95
	}
	if o.Holdout <= 0 || o.Holdout >= 1 {
		o.Holdout = 0.25
	}
	return o
}

// TrainCascade distils art into a cheap-first stage: it labels the raw
// training rows x with the full artifact's own predictions, fits a
// small classifier on the cheap feature columns of a shuffled training
// split, and calibrates the confidence threshold on the held-out
// remainder — the smallest cutoff whose answered subset agrees with
// the full model at rate >= TargetAgreement (maximising hit rate
// subject to the agreement constraint). When no cutoff reaches the
// target the returned stage carries Threshold > 1 and never fires.
func TrainCascade(art *Artifact, x [][]float64, opt CascadeOptions) (*Cascade, error) {
	opt = opt.withDefaults()
	if len(x) < 8 {
		return nil, fmt.Errorf("serve: cascade needs at least 8 training rows, got %d", len(x))
	}

	// Distillation labels: the full model's answers on the raw rows.
	labels := make([]int, len(x))
	for i, row := range x {
		pred, err := art.predictFull(row)
		if err != nil {
			return nil, fmt.Errorf("serve: labelling cascade row %d: %w", i, err)
		}
		labels[i] = pred.Label
	}

	// Shuffled split. The holdout rows calibrate the threshold, so they
	// must not have trained the stage.
	rng := rand.New(rand.NewSource(opt.Seed))
	perm := rng.Perm(len(x))
	nHold := int(opt.Holdout * float64(len(x)))
	if nHold < 2 {
		nHold = 2
	}
	hold, train := perm[:nHold], perm[nHold:]

	cheapAt := func(i int) []float64 { return features.CheapSlice(x[i]) }
	trainX := make([][]float64, len(train))
	trainY := make([]int, len(train))
	for k, i := range train {
		trainX[k] = cheapAt(i)
		trainY[k] = labels[i]
	}

	// Skew + min-max only: the stage has 8 inputs, a PCA would cost as
	// much as it saves on the hot path.
	pipeline, err := preprocess.FitPipeline(trainX, preprocess.Options{SkipPCA: true})
	if err != nil {
		return nil, fmt.Errorf("serve: fitting cascade preprocessing: %w", err)
	}
	var clf classify.Classifier
	switch opt.Model {
	case "logreg":
		clf = classify.NewLogReg()
	case "forest":
		clf = classify.NewForest(opt.Seed)
	default:
		return nil, fmt.Errorf("serve: cascade model %q has no probability estimate (want logreg or forest)", opt.Model)
	}
	if err := clf.Fit(preprocess.Apply(pipeline, trainX), trainY, len(art.Formats)); err != nil {
		return nil, fmt.Errorf("serve: fitting cascade %s: %w", opt.Model, err)
	}

	c := &Cascade{
		Indices:         append([]int(nil), features.CheapIndices[:]...),
		Classifier:      opt.Model,
		Pipeline:        pipeline,
		Clf:             clf,
		TargetAgreement: opt.TargetAgreement,
		HeldoutSize:     len(hold),
	}

	// Calibrate on the holdout: per row, the stage's confidence and
	// whether its answer matches the full model's.
	type calPoint struct {
		conf  float64
		agree bool
	}
	points := make([]calPoint, 0, len(hold))
	for _, i := range hold {
		label, conf, err := c.decide(cheapAt(i))
		if err != nil {
			return nil, err
		}
		points = append(points, calPoint{conf: conf, agree: label == labels[i]})
	}
	sort.Slice(points, func(a, b int) bool { return points[a].conf > points[b].conf })

	// Sweep thresholds from most to least confident; the prefix ending
	// at each distinct confidence is the answered subset at that
	// cutoff. Keep the largest prefix still meeting the target.
	best := -1 // points answered at the chosen threshold
	bestAgree := 0.0
	agreed := 0
	for k := 0; k < len(points); k++ {
		if points[k].agree {
			agreed++
		}
		// Only cut between distinct confidence values: a threshold
		// equal to points[k].conf answers every tied point too.
		if k+1 < len(points) && points[k+1].conf == points[k].conf {
			continue
		}
		if rate := float64(agreed) / float64(k+1); rate >= opt.TargetAgreement {
			best, bestAgree = k, rate
		}
	}
	if best < 0 {
		// Unattainable target: the stage ships disabled rather than
		// serving answers below the agreement bar.
		c.Threshold = 2
		return c, nil
	}
	c.Threshold = points[best].conf
	c.HeldoutAgreement = bestAgree
	c.HeldoutHitRate = float64(best+1) / float64(len(points))
	return c, nil
}
