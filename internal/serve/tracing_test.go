package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// collectNames flattens a span tree into its set of span names.
func collectNames(sd *obs.SpanData, into map[string]int) {
	into[sd.Name]++
	for _, c := range sd.Children {
		collectNames(c, into)
	}
}

// TestTraceAdminEndpoints: a traced prediction is retained when the
// client sets X-Trace-Keep, and the admin trace API serves both the
// list view and the full stage-span tree by request ID.
func TestTraceAdminEndpoints(t *testing.T) {
	defer obs.Default.Reset()
	srv, _, _, mm := testServer(t, Config{AdminToken: "tok", TraceSample: -1, CacheSize: -1})
	h := srv.Handler()

	req := httptest.NewRequest(http.MethodPost, "/v1/predict/matrix", strings.NewReader(string(mm)))
	req.Header.Set("X-Request-ID", "keep-me")
	req.Header.Set(obs.TraceKeepHeader, "1")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("predict: %d %s", rec.Code, rec.Body.String())
	}

	// The admin surface stays token-gated for traces too.
	if rec := adminReq(t, h, http.MethodGet, "/v1/admin/trace", ""); rec.Code != http.StatusUnauthorized {
		t.Fatalf("unauthenticated trace list: %d, want 401", rec.Code)
	}

	rec = adminReq(t, h, http.MethodGet, "/v1/admin/trace", "tok")
	if rec.Code != http.StatusOK {
		t.Fatalf("trace list: %d %s", rec.Code, rec.Body.String())
	}
	var list traceListResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if list.Count != 1 || list.Traces[0].TraceID != "keep-me" {
		t.Fatalf("trace list = %+v", list)
	}

	rec = adminReq(t, h, http.MethodGet, "/v1/admin/trace/keep-me", "tok")
	if rec.Code != http.StatusOK {
		t.Fatalf("trace get: %d %s", rec.Code, rec.Body.String())
	}
	var e obs.TraceEntry
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.TraceID != "keep-me" || e.Root == nil || e.Root.Name != "/v1/predict/matrix" {
		t.Fatalf("trace entry = %+v", e)
	}
	found := false
	for _, r := range e.Reasons {
		if r == obs.KeepRequested {
			found = true
		}
	}
	if !found {
		t.Fatalf("reasons = %v, want %q", e.Reasons, obs.KeepRequested)
	}
	// The retained tree must hold the hot-path stage spans — this is the
	// whole point of always-on tracing.
	names := map[string]int{}
	collectNames(e.Root, names)
	for _, want := range []string{"cache", "memo", "parse", "features/full", "predict"} {
		if names[want] == 0 {
			t.Errorf("stage span %q missing from retained tree; have %v", want, names)
		}
	}
	if e.Root.Metrics["status"] != 200 {
		t.Errorf("root status metric = %v, want 200", e.Root.Metrics["status"])
	}

	rec = adminReq(t, h, http.MethodGet, "/v1/admin/trace/absent", "tok")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("missing trace: %d, want 404", rec.Code)
	}
}

// TestTraceDisabled: -trace -1 turns the store off; the admin endpoints
// answer 501 rather than an empty list, so an operator can tell
// "nothing retained" from "not tracing".
func TestTraceDisabled(t *testing.T) {
	defer obs.Default.Reset()
	srv, _, _, mm := testServer(t, Config{AdminToken: "tok", TraceCapacity: -1})
	h := srv.Handler()
	predictWithID(t, h, "/v1/predict/matrix", "no-store", mm)
	for _, path := range []string{"/v1/admin/trace", "/v1/admin/trace/no-store"} {
		if rec := adminReq(t, h, http.MethodGet, path, "tok"); rec.Code != http.StatusNotImplemented {
			t.Fatalf("GET %s with tracing disabled: %d, want 501", path, rec.Code)
		}
	}
}

// TestTraceMemoThenMiss: with the prediction cache disabled, a repeat
// body hits the feature memo after the cache miss — the swap-shaped
// disposition the tail sampler force-keeps.
func TestTraceMemoThenMiss(t *testing.T) {
	defer obs.Default.Reset()
	srv, _, _, mm := testServer(t, Config{AdminToken: "tok", TraceSample: -1, CacheSize: -1})
	h := srv.Handler()
	predictWithID(t, h, "/v1/predict/matrix", "first", mm)
	predictWithID(t, h, "/v1/predict/matrix", "second", mm)

	if e := srv.traces.Get("first"); e != nil {
		t.Fatalf("first request (cold memo) unexpectedly retained: %v", e.Reasons)
	}
	e := srv.traces.Get("second")
	if e == nil {
		t.Fatal("memo-then-miss request not retained")
	}
	if len(e.Reasons) != 1 || e.Reasons[0] != obs.KeepMemoMiss {
		t.Fatalf("reasons = %v, want [%s]", e.Reasons, obs.KeepMemoMiss)
	}
}

// TestBurnProfilerTrigger drives the burn profiler with injected burn
// rates and clock: a single breach does not capture, a sustained one
// does, and the rate limit holds until the window passes.
func TestBurnProfilerTrigger(t *testing.T) {
	dir := t.TempDir()
	rate := 0.0
	now := time.Unix(1000, 0)
	b := newBurnProfiler(burnConfig{
		Dir:             dir,
		Threshold:       2,
		Consecutive:     2,
		Window:          5 * time.Minute,
		ProfileDuration: 10 * time.Millisecond,
		BurnRate:        func() float64 { return rate },
		Traces: func() []*obs.TraceEntry {
			return []*obs.TraceEntry{{TraceID: "t1", Reasons: []string{obs.KeepError}, Status: 500}}
		},
		Now: func() time.Time { return now },
	})

	if b.tick() {
		t.Fatal("captured with burn rate below threshold")
	}
	rate = 5
	if b.tick() {
		t.Fatal("captured on first over-threshold reading")
	}
	if !b.tick() {
		t.Fatal("no capture after sustained breach")
	}
	waitForCapture(t, dir, 1)

	// Rate-limited: still burning, inside the window.
	now = now.Add(time.Minute)
	if b.tick() {
		t.Fatal("captured inside the rate-limit window")
	}
	// Window passed, burn still sustained: one more capture.
	now = now.Add(5 * time.Minute)
	if !b.tick() {
		t.Fatal("no capture after the rate-limit window passed")
	}
	waitForCapture(t, dir, 2)

	// A dip resets the streak.
	rate = 0
	b.tick()
	rate = 5
	now = now.Add(6 * time.Minute)
	if b.tick() {
		t.Fatal("captured without a renewed consecutive streak")
	}

	// The snapshot next to the profile carries the trace store contents.
	snaps, _ := filepath.Glob(filepath.Join(dir, "burn-*-traces.json"))
	data, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		BurnRate float64           `json:"burn_rate"`
		Traces   []*obs.TraceEntry `json:"traces"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.BurnRate != 5 || len(snap.Traces) != 1 || snap.Traces[0].TraceID != "t1" {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// waitForCapture polls until dir holds n complete capture pairs.
func waitForCapture(t *testing.T, dir string, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		profs, _ := filepath.Glob(filepath.Join(dir, "burn-*-cpu.pprof"))
		snaps, _ := filepath.Glob(filepath.Join(dir, "burn-*-traces.json"))
		if len(profs) >= n && len(snaps) >= n {
			// The profile file appears before profiling stops; wait for
			// content so the test never reads a half-written file.
			if fi, err := os.Stat(profs[len(profs)-1]); err == nil && fi.Size() > 0 {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("capture %d never landed in %s", n, dir)
}

// TestLogThisSlowRequests: the access-log sampler must never drop a
// slow request, whatever the sample rate.
func TestLogThisSlowRequests(t *testing.T) {
	defer obs.Default.Reset()
	srv, _, _, _ := testServer(t, Config{AccessLogSample: 1000})
	srv.logSeq.Add(1) // burn the seq so plain requests stop matching %n==1
	if srv.logThis("/v1/predict/matrix", 200, false) {
		t.Fatal("sampled-out request logged")
	}
	if !srv.logThis("/v1/predict/matrix", 200, true) {
		t.Fatal("slow request dropped by the sampler")
	}
	if !srv.logThis("/v1/predict/matrix", 500, false) {
		t.Fatal("error response dropped by the sampler")
	}
}
