package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"net/http"
	"testing"

	"repro/internal/features"
	"repro/internal/obs"
	"repro/internal/sparse"
)

func TestFeatMemoLRUSemantics(t *testing.T) {
	c := newFeatMemo(2)
	if !c.Enabled() {
		t.Fatal("capacity-2 memo reports disabled")
	}
	full := []float64{1, 2, 3}
	cheap := []float64{9}

	c.Put("a", featEntry{cheap: cheap})
	e, ok := c.Get("a")
	if !ok || e.cheap == nil || e.full != nil {
		t.Fatalf("cheap entry = %+v ok=%v", e, ok)
	}
	before := c.Bytes()

	// Cheap-only entries upgrade to full…
	c.Put("a", featEntry{full: full})
	if e, _ = c.Get("a"); e.full == nil {
		t.Fatal("cheap entry did not upgrade to full")
	}
	if c.Bytes() <= before {
		t.Errorf("footprint did not grow on upgrade: %d -> %d", before, c.Bytes())
	}
	// …but never downgrade back.
	c.Put("a", featEntry{cheap: cheap})
	if e, _ = c.Get("a"); e.full == nil {
		t.Fatal("full entry downgraded to cheap")
	}

	// LRU eviction at capacity: touch "a", insert "b" then "c"; "b" is
	// the stalest and must go.
	c.Put("b", featEntry{full: full})
	if _, ok = c.Get("a"); !ok {
		t.Fatal("entry a missing")
	}
	c.Put("c", featEntry{full: full})
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if _, ok = c.Get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, ok = c.Get("a"); !ok {
		t.Fatal("recently used entry a was evicted")
	}
	if c.Bytes() <= 0 {
		t.Errorf("Bytes = %d after two resident entries", c.Bytes())
	}

	// Non-positive capacity disables; nil is safe.
	d := newFeatMemo(0)
	if d.Enabled() {
		t.Fatal("capacity-0 memo reports enabled")
	}
	d.Put("x", featEntry{full: full})
	if _, ok = d.Get("x"); ok {
		t.Fatal("disabled memo stored an entry")
	}
	var nilMemo *featMemo
	if nilMemo.Enabled() || nilMemo.Len() != 0 || nilMemo.Bytes() != 0 {
		t.Fatal("nil memo is not inert")
	}
}

// TestFeatMemoServesRepeatMatrix is the memo's core contract: with the
// prediction cache disabled, a repeat body is answered without parsing
// or extraction (the hit counter moves), with exactly the prediction
// the computed path produced — and the memo survives FlushCache, the
// hook every hot-swap and promotion fires.
func TestFeatMemoServesRepeatMatrix(t *testing.T) {
	srv, art, m, mm := testServer(t, Config{CacheSize: -1})
	h := srv.Handler()
	want := art.MustPredict(t, m)

	hits0, misses0 := srv.memoHits.Value(), srv.memoMisses.Value()
	rec, out := postJSON(t, h, "/v1/predict/matrix", mm)
	if rec.Code != http.StatusOK || out["format"] != want.Format {
		t.Fatalf("first predict = %d %v, want %s", rec.Code, out, want.Format)
	}
	if d := srv.memoMisses.Value() - misses0; d != 1 {
		t.Fatalf("featmemo misses after first request = %d, want 1", d)
	}
	if srv.featMemo.Len() != 1 {
		t.Fatalf("memo entries = %d, want 1", srv.featMemo.Len())
	}

	rec, out = postJSON(t, h, "/v1/predict/matrix", mm)
	if rec.Code != http.StatusOK || out["format"] != want.Format {
		t.Fatalf("repeat predict = %d %v, want %s", rec.Code, out, want.Format)
	}
	if out["cached"] != false {
		t.Fatal("memo hit reported cached=true; it must count as a computed answer")
	}
	if d := srv.memoHits.Value() - hits0; d != 1 {
		t.Fatalf("featmemo hits after repeat = %d, want 1", d)
	}

	// The swap/promote invalidation hook flushes predictions, never
	// features.
	srv.FlushCache()
	if srv.featMemo.Len() != 1 {
		t.Fatalf("FlushCache emptied the feature memo (%d entries left)", srv.featMemo.Len())
	}
	rec, out = postJSON(t, h, "/v1/predict/matrix", mm)
	if rec.Code != http.StatusOK || out["format"] != want.Format {
		t.Fatalf("post-flush predict = %d %v", rec.Code, out)
	}
	if d := srv.memoHits.Value() - hits0; d != 2 {
		t.Fatalf("featmemo hits after flush = %d, want 2", d)
	}
}

func TestFeatMemoDisabledByConfig(t *testing.T) {
	srv, _, _, mm := testServer(t, Config{CacheSize: -1, FeatMemoSize: -1})
	h := srv.Handler()
	hits0, misses0 := srv.memoHits.Value(), srv.memoMisses.Value()
	for i := 0; i < 2; i++ {
		if rec, _ := postJSON(t, h, "/v1/predict/matrix", mm); rec.Code != http.StatusOK {
			t.Fatalf("predict %d: %d", i, rec.Code)
		}
	}
	if srv.memoHits.Value() != hits0 || srv.memoMisses.Value() != misses0 {
		t.Fatal("disabled memo still moved its counters")
	}
	if srv.featMemo.Len() != 0 {
		t.Fatalf("disabled memo holds %d entries", srv.featMemo.Len())
	}
}

// memoKeyOf derives the memo key the server uses for a body.
func memoKeyOf(body []byte) string {
	sum := sha256.Sum256(body)
	return string(sum[:16])
}

// TestFeatMemoCascadeEntries checks the memo's interaction with the
// cheap-first cascade: a cheap-stage answer memoizes only the cheap
// row, a fall-through memoizes the full vector, and repeats of either
// are served from the memo with an identical prediction (same stage
// included).
func TestFeatMemoCascadeEntries(t *testing.T) {
	art, ms := cascadeArtifact(t, 0.6)
	srv, err := NewServer(art, Config{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	var scratch features.Scratch
	var cheapM, fullM *sparse.CSR
	for _, m := range ms {
		pred, _, err := art.PredictMatrixScratch(m, &scratch)
		if err != nil {
			t.Fatal(err)
		}
		if pred.Stage == StageCheap && cheapM == nil {
			cheapM = m
		}
		if pred.Stage == StageFull && fullM == nil {
			fullM = m
		}
	}

	serve := func(m *sparse.CSR) (code int, out map[string]any, body []byte) {
		var mm bytes.Buffer
		if err := sparse.WriteMatrixMarket(&mm, m); err != nil {
			t.Fatal(err)
		}
		rec, out := postJSON(t, h, "/v1/predict/matrix", mm.Bytes())
		return rec.Code, out, mm.Bytes()
	}

	if cheapM != nil {
		hits0 := srv.memoHits.Value()
		code, first, body := serve(cheapM)
		if code != http.StatusOK || first["stage"] != StageCheap {
			t.Fatalf("cheap matrix served %d %v", code, first)
		}
		e, ok := srv.featMemo.Get(memoKeyOf(body))
		if !ok || e.cheap == nil || e.full != nil {
			t.Fatalf("cheap answer memoized %+v ok=%v, want cheap-only", e, ok)
		}
		code, again, _ := serve(cheapM)
		if code != http.StatusOK {
			t.Fatalf("cheap repeat: %d", code)
		}
		if again["format"] != first["format"] || again["stage"] != StageCheap {
			t.Fatalf("cheap memo repeat %v differs from computed %v", again, first)
		}
		if srv.memoHits.Value() != hits0+1 {
			t.Fatalf("cheap repeat did not hit the memo (hits %d -> %d)", hits0, srv.memoHits.Value())
		}
	} else {
		t.Log("corpus produced no cheap-stage answer; skipping cheap-entry checks")
	}

	if fullM != nil {
		hits0 := srv.memoHits.Value()
		code, first, body := serve(fullM)
		if code != http.StatusOK || first["stage"] != StageFull {
			t.Fatalf("fall-through matrix served %d %v", code, first)
		}
		e, ok := srv.featMemo.Get(memoKeyOf(body))
		if !ok || e.full == nil {
			t.Fatalf("fall-through answer memoized %+v ok=%v, want full vector", e, ok)
		}
		if len(e.full) != features.Count {
			t.Fatalf("memoized vector has %d features, want %d", len(e.full), features.Count)
		}
		code, again, _ := serve(fullM)
		if code != http.StatusOK {
			t.Fatalf("fall-through repeat: %d", code)
		}
		if again["format"] != first["format"] || again["stage"] != StageFull {
			t.Fatalf("full memo repeat %v differs from computed %v", again, first)
		}
		if srv.memoHits.Value() != hits0+1 {
			t.Fatalf("full repeat did not hit the memo (hits %d -> %d)", hits0, srv.memoHits.Value())
		}
	} else {
		t.Log("corpus produced no fall-through; skipping full-entry checks")
	}
}

// TestPredictBodyMemoHitAllocs pins the allocation cost of a memo hit:
// parsing and extraction (thousands of allocations for a real matrix)
// must stay off this path. The bound leaves room for the key hashing,
// the model inference and the metric labels, nothing more.
func TestPredictBodyMemoHitAllocs(t *testing.T) {
	if obs.RaceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	srv, _, _, mm := testServer(t, Config{CacheSize: -1})
	lm, err := srv.backend.Live("")
	if err != nil {
		t.Fatal(err)
	}
	var scratch features.Scratch
	ps := sparse.GetParseScratch()
	defer sparse.PutParseScratch(ps)
	if _, err := srv.predictBody(context.Background(), lm, LiveModel{}, false, &scratch, ps, mm); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := srv.predictBody(context.Background(), lm, LiveModel{}, false, &scratch, ps, mm); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 40 {
		t.Fatalf("memo-hit predictBody allocates %.0f objects per run; parse/extract has crept back in", allocs)
	}
}
