package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// qualityFake wraps fakeBackend with an outcome recorder, so the
// feedback endpoint joins against a real backend without pulling the
// registry into serve's tests.
type qualityFake struct {
	*fakeBackend
	mu       sync.Mutex
	outcomes []Outcome
	arches   []string
}

func (q *qualityFake) RecordOutcome(arch string, o Outcome) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.outcomes = append(q.outcomes, o)
	q.arches = append(q.arches, arch)
}

func (q *qualityFake) QualityReport() any {
	q.mu.Lock()
	defer q.mu.Unlock()
	return map[string]any{"outcomes": len(q.outcomes)}
}

// qualityServer builds a backend server whose backend records
// outcomes, plus one predictable matrix body.
func qualityServer(t *testing.T, cfg Config) (*Server, *qualityFake, []byte, Prediction) {
	t.Helper()
	ms, best := labelledCorpus(t, "Turing")
	art := trainArtifact(t, ms, best, 10, 7)
	qb := &qualityFake{fakeBackend: newFakeBackend("turing")}
	qb.set("turing", art, "hash-q")
	srv, err := NewBackendServer(qb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv, qb, mmBytes(t, ms[0]), art.MustPredict(t, ms[0])
}

// postFeedback sends one /v1/feedback body and returns the decoded
// answer.
func postFeedback(t *testing.T, h http.Handler, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	return postJSON(t, h, "/v1/feedback", []byte(body))
}

// predictWithID runs one matrix prediction under a chosen request ID.
func predictWithID(t *testing.T, h http.Handler, path, id string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	req.Header.Set("X-Request-ID", id)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST %s (%s): %d %s", path, id, rec.Code, rec.Body.String())
	}
	return rec
}

func TestFeedbackFullSweep(t *testing.T) {
	defer obs.Default.Reset()
	srv, qb, mm, want := qualityServer(t, Config{CacheSize: -1})
	h := srv.Handler()

	predictWithID(t, h, "/v1/predict/matrix", "fb-full", mm)

	// A full sweep where the served format is 2x slower than the best
	// non-served one.
	times := map[string]float64{}
	for _, f := range KernelFormatNames() {
		times[f] = 1.0
		if f == want.Format {
			times[f] = 2.0
		}
	}
	body, _ := json.Marshal(map[string]any{"request_id": "fb-full", "times_ms": times})
	rec, out := postFeedback(t, h, string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("feedback: %d %s", rec.Code, rec.Body.String())
	}
	if out["full"] != true || out["predicted"] != want.Format {
		t.Fatalf("feedback answer = %v, want full for %s", out, want.Format)
	}
	if got := out["regret"].(float64); got != 2.0 {
		t.Fatalf("regret = %v, want 2.0", got)
	}

	qb.mu.Lock()
	defer qb.mu.Unlock()
	if len(qb.outcomes) != 1 {
		t.Fatalf("recorded %d outcomes, want 1", len(qb.outcomes))
	}
	o := qb.outcomes[0]
	if !o.Full || o.Regret != 2.0 || o.ServedMs != 2.0 || o.Predicted.Format != want.Format {
		t.Fatalf("outcome = %+v", o)
	}
	if o.BestFormat == want.Format || o.BestLabel < 0 {
		t.Fatalf("best = %q (%d), want a different format than served", o.BestFormat, o.BestLabel)
	}
	if qb.arches[0] != "turing" {
		t.Fatalf("outcome arch = %q", qb.arches[0])
	}

	// The entry is consume-once: the same report again answers 404.
	rec, _ = postFeedback(t, h, string(body))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("duplicate feedback: %d, want 404", rec.Code)
	}
}

func TestFeedbackServedOnlyAndBatchItems(t *testing.T) {
	defer obs.Default.Reset()
	srv, qb, mm, want := qualityServer(t, Config{CacheSize: -1})
	h := srv.Handler()

	// served_ms alone is a partial outcome: volume and latency, no
	// accuracy.
	predictWithID(t, h, "/v1/predict/matrix", "fb-served", mm)
	rec, out := postFeedback(t, h, `{"request_id":"fb-served","served_ms":3.5}`)
	if rec.Code != http.StatusOK || out["full"] != false {
		t.Fatalf("served-only feedback = %d %v", rec.Code, out)
	}

	// Batch items report as ID#index via the "item" field.
	batch := bytes.Join([][]byte{mm, mm, mm}, nil)
	predictWithID(t, h, "/v1/predict/batch", "fb-batch", batch)
	for i := 0; i < 3; i++ {
		body := fmt.Sprintf(`{"request_id":"fb-batch","item":%d,"served_ms":1.5}`, i)
		rec, out := postFeedback(t, h, body)
		if rec.Code != http.StatusOK {
			t.Fatalf("batch item %d feedback: %d %s", i, rec.Code, rec.Body.String())
		}
		if out["predicted"] != want.Format {
			t.Fatalf("batch item %d predicted = %v, want %s", i, out["predicted"], want.Format)
		}
	}
	// Item index beyond the batch was never registered.
	rec, _ = postFeedback(t, h, `{"request_id":"fb-batch","item":3,"served_ms":1.5}`)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("out-of-range batch item: %d, want 404", rec.Code)
	}

	qb.mu.Lock()
	defer qb.mu.Unlock()
	if len(qb.outcomes) != 4 {
		t.Fatalf("recorded %d outcomes, want 4", len(qb.outcomes))
	}
	for _, o := range qb.outcomes {
		if o.Full {
			t.Fatalf("served-only outcome marked full: %+v", o)
		}
	}
}

func TestFeedbackValidation(t *testing.T) {
	defer obs.Default.Reset()
	srv, qb, mm, want := qualityServer(t, Config{CacheSize: -1})
	h := srv.Handler()
	predictWithID(t, h, "/v1/predict/matrix", "fb-valid", mm)

	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"unknown request ID", `{"request_id":"never-served","served_ms":1}`, http.StatusNotFound},
		{"empty request ID", `{"served_ms":1}`, http.StatusBadRequest},
		{"oversized request ID", `{"request_id":"` + strings.Repeat("x", maxTraceIDLen+1) + `","served_ms":1}`, http.StatusBadRequest},
		{"negative item", `{"request_id":"fb-valid","item":-1,"served_ms":1}`, http.StatusBadRequest},
		{"zero time", `{"request_id":"fb-valid","times_ms":{"` + want.Format + `":0}}`, http.StatusBadRequest},
		{"negative time", `{"request_id":"fb-valid","times_ms":{"` + want.Format + `":-2}}`, http.StatusBadRequest},
		{"negative served_ms", `{"request_id":"fb-valid","served_ms":-1}`, http.StatusBadRequest},
		{"unknown format", `{"request_id":"fb-valid","times_ms":{"DIA":1.0}}`, http.StatusBadRequest},
		{"covers nothing", `{"request_id":"fb-valid"}`, http.StatusBadRequest},
		{"not JSON", `{{{`, http.StatusBadRequest},
		{"oversized body", `{"request_id":"fb-valid","pad":"` + strings.Repeat("y", maxFeedbackBody) + `"}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		rec, _ := postFeedback(t, h, tc.body)
		if rec.Code != tc.status {
			t.Errorf("%s: %d, want %d (%s)", tc.name, rec.Code, tc.status, rec.Body.String())
		}
	}

	// GET is rejected.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/feedback", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/feedback: %d, want 405", rec.Code)
	}

	// None of the rejected reports consumed the entry or recorded an
	// outcome: a corrected retry still succeeds.
	qb.mu.Lock()
	n := len(qb.outcomes)
	qb.mu.Unlock()
	if n != 0 {
		t.Fatalf("rejected feedback recorded %d outcomes", n)
	}
	rec, _ = postFeedback(t, h, `{"request_id":"fb-valid","served_ms":1.0}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("retry after rejections: %d %s", rec.Code, rec.Body.String())
	}
}

func TestFeedbackWithoutQualityBackend(t *testing.T) {
	defer obs.Default.Reset()
	// A static single-artifact server has no quality surface: feedback
	// and the (authenticated) quality report answer 501.
	srv, _, _, _ := testServer(t, Config{AdminToken: "sekrit"})
	h := srv.Handler()
	rec, _ := postFeedback(t, h, `{"request_id":"x","served_ms":1}`)
	if rec.Code != http.StatusNotImplemented {
		t.Fatalf("feedback on static backend: %d, want 501", rec.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/admin/quality", nil)
	req.Header.Set("Authorization", "Bearer sekrit")
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusNotImplemented {
		t.Fatalf("quality report on static backend: %d, want 501", rec2.Code)
	}
}

func TestPendingStoreEviction(t *testing.T) {
	p := newPendingStore(2)
	p.put("a", pendingPred{arch: "a"})
	p.put("b", pendingPred{arch: "b"})
	p.put("c", pendingPred{arch: "c"}) // evicts a
	if _, ok := p.peek("a"); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if _, ok := p.peek("b"); !ok {
		t.Fatal("entry b missing")
	}
	// Re-registering replaces in place without burning a slot.
	p.put("b", pendingPred{arch: "b2"})
	if v, _ := p.peek("c"); v.arch != "c" {
		t.Fatal("duplicate put evicted a live entry")
	}
	if v, _ := p.take("b"); v.arch != "b2" {
		t.Fatalf("take(b) = %+v, want the replacement", v)
	}
	if _, ok := p.take("b"); ok {
		t.Fatal("take is not consume-once")
	}
}

func TestBatchTraceIDPropagation(t *testing.T) {
	defer obs.Default.Reset()
	col := obs.NewCollector()
	obs.SetSink(col)
	defer obs.SetSink(nil)

	srv, _, mm, _ := qualityServer(t, Config{CacheSize: -1})
	h := srv.Handler()
	const traceID = "batch-trace-test"
	batch := bytes.Join([][]byte{mm, mm, mm, mm}, nil)
	predictWithID(t, h, "/v1/predict/batch", traceID, batch)

	// Every per-item span of the fan-out must carry the parent request's
	// trace ID, or batch items are unattributable in the span store. The
	// items hang off the request's root span (the always-on trace tree),
	// so walk the whole forest.
	items := 0
	var walk func(sd *obs.SpanData)
	walk = func(sd *obs.SpanData) {
		if sd.Name == "serve/batch/item" {
			items++
			if sd.TraceID != traceID {
				t.Errorf("batch item span trace = %q, want %q", sd.TraceID, traceID)
			}
		}
		for _, c := range sd.Children {
			walk(c)
		}
	}
	for _, root := range col.Roots() {
		walk(root)
	}
	if items != 4 {
		t.Fatalf("saw %d serve/batch/item spans, want 4", items)
	}
}

func TestReadyzUptimeAndHashes(t *testing.T) {
	defer obs.Default.Reset()
	srv, _, _, _ := qualityServer(t, Config{})
	h := srv.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/readyz: %d %s", rec.Code, rec.Body.String())
	}
	var resp ReadyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Ready || resp.UptimeSeconds <= 0 {
		t.Fatalf("readyz = ready %v uptime %v, want ready with positive uptime", resp.Ready, resp.UptimeSeconds)
	}
	found := false
	for _, a := range resp.Arches {
		if a.Arch == "turing" && a.Hash == "hash-q" && a.Loaded {
			found = true
		}
	}
	if !found {
		t.Fatalf("readyz arches %+v missing the live turing hash", resp.Arches)
	}
}

func TestAccessLogSampling(t *testing.T) {
	defer obs.Default.Reset()
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(&lockedWriter{buf: &buf, mu: &mu}, nil))

	srv, _, mm, _ := qualityServer(t, Config{
		CacheSize:       -1,
		AccessLog:       logger,
		AccessLogSample: 5,
	})
	h := srv.Handler()

	countLines := func() int {
		mu.Lock()
		defer mu.Unlock()
		return strings.Count(buf.String(), "\n")
	}

	// 10 successful predictions at 1-in-5 → exactly 2 log lines.
	for i := 0; i < 10; i++ {
		predictWithID(t, h, "/v1/predict/matrix", fmt.Sprintf("sample-%d", i), mm)
	}
	if got := countLines(); got != 2 {
		t.Fatalf("sampled %d lines over 10 requests at 1-in-5, want 2", got)
	}

	// Errors are always logged, sampling or not.
	before := countLines()
	rec, _ := postJSON(t, h, "/v1/predict/matrix", []byte("not a matrix"))
	if rec.Code == http.StatusOK {
		t.Fatal("garbage body predicted successfully")
	}
	if got := countLines(); got != before+1 {
		t.Fatalf("error request not logged: %d lines, want %d", got, before+1)
	}

	// Feedback is always logged — it closes the quality loop.
	before = countLines()
	rec, _ = postFeedback(t, h, `{"request_id":"sample-0","served_ms":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("feedback: %d %s", rec.Code, rec.Body.String())
	}
	if got := countLines(); got != before+1 {
		t.Fatalf("feedback request not logged: %d lines, want %d", got, before+1)
	}
}

// lockedWriter serialises concurrent access-log writes into one
// buffer (handlers may log from request goroutines).
type lockedWriter struct {
	buf *bytes.Buffer
	mu  *sync.Mutex
}

func (w *lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func TestCaptureRoundTripThroughServer(t *testing.T) {
	defer obs.Default.Reset()
	dir := t.TempDir()
	cw, err := obs.NewCaptureWriter(dir, obs.DefaultCaptureFileBytes)
	if err != nil {
		t.Fatal(err)
	}
	srv, _, mm, want := qualityServer(t, Config{CacheSize: -1, Capture: cw})
	h := srv.Handler()

	predictWithID(t, h, "/v1/predict/matrix", "cap-1", mm)
	batch := bytes.Join([][]byte{mm, mm}, nil)
	predictWithID(t, h, "/v1/predict/batch", "cap-2", batch)
	if err := cw.Close(); err != nil {
		t.Fatal(err)
	}

	var recs []CaptureRecord
	var bodies [][]byte
	err = obs.ReadCaptureDir(dir, func(raw []byte) error {
		rec, body, err := DecodeCaptureRecord(raw)
		if err != nil {
			return err
		}
		recs = append(recs, rec)
		bodies = append(bodies, body)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("captured %d records, want 2", len(recs))
	}
	if recs[0].Endpoint != "/v1/predict/matrix" || recs[0].TraceID != "cap-1" ||
		len(recs[0].Predictions) != 1 || recs[0].Predictions[0] != want.Format {
		t.Fatalf("capture[0] = %+v", recs[0])
	}
	if !bytes.Equal(bodies[0], mm) {
		t.Fatal("capture[0] body is not the verbatim request body")
	}
	if recs[1].Endpoint != "/v1/predict/batch" || len(recs[1].Predictions) != 2 {
		t.Fatalf("capture[1] = %+v", recs[1])
	}
	if !bytes.Equal(bodies[1], batch) {
		t.Fatal("capture[1] body is not the verbatim batch body")
	}
	if recs[0].Arch != "turing" || recs[0].ModelHash != "hash-q" {
		t.Fatalf("capture[0] routing = %s/%s", recs[0].Arch, recs[0].ModelHash)
	}
}
