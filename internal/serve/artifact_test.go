package serve

import (
	"bytes"
	"encoding/gob"
	"io"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/features"
	"repro/internal/gpusim"
	"repro/internal/sparse"
)

// labelledCorpus generates a small synthetic collection labelled on the
// given simulated architecture, shared by the artifact and server
// tests.
func labelledCorpus(t *testing.T, archName string) (ms []*sparse.CSR, best []sparse.Format) {
	t.Helper()
	arch, ok := gpusim.ArchByName(archName)
	if !ok {
		t.Fatalf("unknown architecture %q", archName)
	}
	items, err := dataset.Generate(dataset.Config{
		Seed: 5, BaseCount: 40, Scale: 0.3, DropELLFailures: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		meas := arch.Measure(it.Name, gpusim.NewProfile(it.Matrix))
		if !meas.Feasible() {
			continue
		}
		bf, _ := meas.BestFormat()
		ms = append(ms, it.Matrix)
		best = append(best, bf)
	}
	if len(ms) < 20 {
		t.Fatalf("labelled corpus too small: %d matrices", len(ms))
	}
	return ms, best
}

func labelsOf(best []sparse.Format) []int {
	y := make([]int, len(best))
	for i, f := range best {
		for k, kf := range sparse.KernelFormats() {
			if kf == f {
				y[i] = k
			}
		}
	}
	return y
}

// TestSemisupArtifactRoundTrip checks save→load→predict matches the
// in-memory pipeline bit-for-bit, matrix by matrix.
func TestSemisupArtifactRoundTrip(t *testing.T) {
	ms, best := labelledCorpus(t, "Turing")
	sel, err := core.TrainSelector(ms, best, core.Options{NumClusters: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	art := NewSemisupArtifact(sel.Model(), "Turing")
	var buf bytes.Buffer
	if err := art.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Kind != KindSemisup || loaded.Arch != "Turing" {
		t.Fatalf("loaded metadata: kind %q arch %q", loaded.Kind, loaded.Arch)
	}
	for i, m := range ms {
		inMem := sel.Select(m).String()
		pred, err := loaded.PredictMatrix(m)
		if err != nil {
			t.Fatalf("matrix %d: %v", i, err)
		}
		if pred.Format != inMem {
			t.Fatalf("matrix %d: loaded artifact predicts %s, in-memory selector %s", i, pred.Format, inMem)
		}
		// The feature-vector path must agree with the matrix path.
		vecPred, err := loaded.Predict(features.Extract(m).Slice())
		if err != nil {
			t.Fatalf("matrix %d features: %v", i, err)
		}
		if vecPred != pred {
			t.Fatalf("matrix %d: vector path %+v != matrix path %+v", i, vecPred, pred)
		}
		if pred.Cluster < 0 {
			t.Fatalf("matrix %d: semisup prediction has no cluster", i)
		}
	}
}

// TestClassifierArtifactRoundTrip does the same for every supervised
// classifier the artifact supports, including the fitted preprocessing
// chain.
func TestClassifierArtifactRoundTrip(t *testing.T) {
	ms, best := labelledCorpus(t, "Pascal")
	x := features.Matrix(features.ExtractAll(ms))
	y := labelsOf(best)
	for _, name := range []string{"knn", "tree", "forest", "logreg"} {
		art, err := TrainClassifierArtifact(name, "Pascal", x, y, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var buf bytes.Buffer
		if err := art.Save(&buf); err != nil {
			t.Fatalf("%s save: %v", name, err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatalf("%s load: %v", name, err)
		}
		if loaded.Classifier != name {
			t.Fatalf("%s: loaded classifier name %q", name, loaded.Classifier)
		}
		for i, row := range x {
			want, err := art.Predict(row)
			if err != nil {
				t.Fatalf("%s row %d: %v", name, i, err)
			}
			got, err := loaded.Predict(row)
			if err != nil {
				t.Fatalf("%s row %d after load: %v", name, i, err)
			}
			if got != want {
				t.Fatalf("%s row %d: loaded %+v != in-memory %+v", name, i, got, want)
			}
		}
	}
}

// TestTrainClassifierArtifactRejectsUnknown covers the classifier-name
// validation.
func TestTrainClassifierArtifactRejectsUnknown(t *testing.T) {
	if _, err := TrainClassifierArtifact("cnn", "Turing", [][]float64{{1}}, []int{0}, 1); err == nil {
		t.Error("unknown classifier accepted")
	}
}

// TestArtifactPredictValidatesDimensions feeds wrong-length vectors —
// the untrusted serve input — through both artifact kinds.
func TestArtifactPredictValidatesDimensions(t *testing.T) {
	ms, best := labelledCorpus(t, "Turing")
	sel, err := core.TrainSelector(ms, best, core.Options{NumClusters: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	semi := NewSemisupArtifact(sel.Model(), "Turing")
	x := features.Matrix(features.ExtractAll(ms))
	clf, err := TrainClassifierArtifact("knn", "Turing", x, labelsOf(best), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, art := range []*Artifact{semi, clf} {
		if got := art.InDim(); got != features.Count {
			t.Errorf("%s InDim = %d, want %d", art.Kind, got, features.Count)
		}
		for _, bad := range [][]float64{nil, {1, 2, 3}, make([]float64, features.Count+4)} {
			if _, err := art.Predict(bad); err == nil {
				t.Errorf("%s accepted a %d-vector", art.Kind, len(bad))
			}
		}
	}
}

// TestLoadRejectsForeignStreams covers magic, truncation, version and
// consistency checks.
func TestLoadRejectsForeignStreams(t *testing.T) {
	if _, err := Load(strings.NewReader("not a model at all, not even close")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := Load(strings.NewReader(artifactMagic)); err == nil {
		t.Error("magic-only stream accepted")
	}
	// A version from the future must be refused, not misparsed.
	var buf bytes.Buffer
	io.WriteString(&buf, artifactMagic)
	if err := gob.NewEncoder(&buf).Encode(artifactEnvelope{
		Version: ArtifactVersion + 1,
		Payload: Artifact{Kind: KindSemisup, Formats: KernelFormatNames()},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future version error = %v", err)
	}
	// An artifact without a model is inconsistent.
	if err := (&Artifact{Kind: KindSemisup, Formats: KernelFormatNames()}).Validate(); err == nil {
		t.Error("model-less semisup artifact validated")
	}
	if err := (&Artifact{Kind: "mystery", Formats: KernelFormatNames()}).Validate(); err == nil {
		t.Error("unknown kind validated")
	}
}

// TestSaveFileAtomic checks the file round-trip (and that SaveFile
// installs the artifact under the final name).
func TestSaveFileAtomic(t *testing.T) {
	ms, best := labelledCorpus(t, "Volta")
	sel, err := core.TrainSelector(ms, best, core.Options{NumClusters: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.gob"
	if err := SaveFile(path, NewSemisupArtifact(sel.Model(), "Volta")); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms[:5] {
		pred, err := loaded.PredictMatrix(m)
		if err != nil {
			t.Fatal(err)
		}
		if pred.Format != sel.Select(m).String() {
			t.Fatalf("file round-trip diverges: %s != %s", pred.Format, sel.Select(m))
		}
	}
}
