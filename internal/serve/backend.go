package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
)

// The Backend abstraction decouples the HTTP server from where its
// models come from. A single static artifact (the original `serve
// -model` deployment) and the multi-architecture registry
// (internal/registry, `serve -models`) both satisfy it; the registry
// additionally implements AdminBackend, which unlocks the /v1/admin/*
// endpoints (reload, promote, shadow report).

// Routing errors a Backend returns from Live. The server maps them to
// HTTP statuses: unknown arch -> 404, configured-but-unloaded -> 503.
var (
	// ErrUnknownArch means the request named an architecture the
	// backend does not host.
	ErrUnknownArch = errors.New("unknown architecture")
	// ErrNotLoaded means the architecture is configured but its
	// artifact has not (yet) loaded — expected during startup and
	// surfaced on /readyz.
	ErrNotLoaded = errors.New("model not loaded")
)

// LiveModel is one resolved model: the artifact plus the identity the
// server stamps on every response (resolved arch and content hash) and
// uses in cache keys, so answers stay attributable across hot-swaps.
type LiveModel struct {
	// Arch is the resolved (normalized) architecture key.
	Arch string
	// Hash identifies the artifact contents; it changes on every swap.
	Hash string
	// Source is where the artifact came from (a file path, or "memory").
	Source string
	// Artifact is the fitted pipeline itself.
	Artifact *Artifact
}

// ArchStatus is the per-architecture load state reported on /readyz and
// by registry status listings.
type ArchStatus struct {
	Arch       string `json:"arch"`
	Default    bool   `json:"default,omitempty"`
	Loaded     bool   `json:"loaded"`
	Hash       string `json:"hash,omitempty"`
	Source     string `json:"source,omitempty"`
	Error      string `json:"error,omitempty"`
	Shadow     bool   `json:"shadow,omitempty"`
	ShadowHash string `json:"shadow_hash,omitempty"`
}

// Backend is the model source behind a Server: it resolves request
// architectures to live artifacts, exposes shadow candidates for
// side-by-side scoring, and reports readiness.
type Backend interface {
	// DefaultArch is the architecture serving requests that name none.
	DefaultArch() string
	// Live resolves arch ("" selects the default) to the model serving
	// it. Errors wrap ErrUnknownArch or ErrNotLoaded.
	Live(arch string) (LiveModel, error)
	// Shadow returns the candidate registered for the resolved arch.
	Shadow(arch string) (LiveModel, bool)
	// RecordShadow tallies one live-vs-candidate comparison for arch.
	RecordShadow(arch string, live, cand Prediction)
	// Ready returns nil once every configured artifact has loaded.
	Ready() error
	// Status lists the per-arch load state for /readyz.
	Status() []ArchStatus
}

// DriftBackend is the optional drift-monitoring surface: backends that
// implement it receive every served prediction and answer
// /v1/admin/drift. The registry implements it by comparing per-arch
// rolling windows of served predictions and features against the live
// artifact's training baseline.
type DriftBackend interface {
	// RecordServed feeds one served prediction into the monitor. vec is
	// the raw feature vector, or nil when the request was answered
	// without parsing the body (a cache hit).
	RecordServed(arch string, p Prediction, vec []float64)
	// DriftReport returns the JSON-serialisable drift report and
	// refreshes any derived gauges.
	DriftReport() any
}

// Outcome is one measured prediction outcome, assembled by the
// /v1/feedback handler from a client's reported kernel times and the
// prediction the server remembers serving under that request ID.
type Outcome struct {
	// Predicted is the answer the live model served.
	Predicted Prediction
	// BestLabel / BestFormat name the measured-fastest format when the
	// client reported a full per-format sweep (Full); -1 / "" otherwise.
	BestLabel  int
	BestFormat string
	// Regret is servedTime/bestTime (>= 1; 1 when the prediction was
	// the oracle pick). 0 when the sweep was not full.
	Regret float64
	// ServedMs is the measured time of the served format.
	ServedMs float64
	// Full marks a complete per-format sweep — only full outcomes feed
	// accuracy, regret and the confusion matrix; served-only outcomes
	// still count toward latency and volume.
	Full bool
	// HasCandidate marks requests a shadow candidate also answered;
	// Candidate is its prediction and CandidateMs its measured time
	// (0 when the client's sweep did not cover the candidate's format).
	HasCandidate bool
	Candidate    Prediction
	CandidateMs  float64
}

// QualityBackend is the optional measured-quality surface: backends
// that implement it receive every feedback outcome and answer
// /v1/admin/quality. The registry implements it with per-arch rolling
// windows of top-1 accuracy, regret quantiles and a predicted-vs-best
// confusion matrix, and routes shadow-candidate outcomes into the
// shadow report so promotions can weigh measured quality.
type QualityBackend interface {
	// RecordOutcome feeds one measured outcome for arch into the
	// quality windows.
	RecordOutcome(arch string, o Outcome)
	// QualityReport returns the JSON-serialisable quality report and
	// refreshes the derived quality gauges.
	QualityReport() any
}

// AdminBackend is the optional mutation surface behind /v1/admin/*.
type AdminBackend interface {
	// Reload re-reads every artifact from its source, swapping only the
	// ones whose content hash changed, and returns their names.
	Reload() (changed []string, err error)
	// Promote flips arch's shadow candidate to live and returns the new
	// live hash.
	Promote(arch string) (newHash string, err error)
	// ShadowReport returns the JSON-serialisable shadow evaluation
	// report.
	ShadowReport() any
}

// ShadowInstaller is the optional push-rollout surface: backends that
// implement it accept candidate artifact bytes over the wire (the
// fleet rollout controller's push phase) instead of requiring the
// candidate to pre-exist on every replica's disk. The returned hash is
// the backend's own content hash of what it received — the caller
// compares it against the hash of what it sent to detect corruption.
type ShadowInstaller interface {
	InstallShadow(arch string, data []byte) (hash string, err error)
}

// HashBytes is the content-hash identity used across the serving stack
// (artifact hashes, cache keys): a truncated hex SHA-256, short enough
// to read in transcripts, long enough that collisions are not a
// practical concern.
func HashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// ArtifactHash fingerprints an in-memory artifact via its serialized
// form, the identity a static backend stamps on responses.
func ArtifactHash(a *Artifact) (string, error) {
	h := sha256.New()
	if err := a.Save(h); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)[:8]), nil
}

// NormalizeArch canonicalizes an architecture key: lower-cased,
// trimmed. Empty stays empty (the caller's "use the default" signal).
func NormalizeArch(arch string) string {
	return strings.ToLower(strings.TrimSpace(arch))
}

// staticBackend hosts exactly one artifact — the `serve -model FILE`
// deployment. It has no shadow slot and no admin surface.
type staticBackend struct {
	m LiveModel
}

// NewStaticBackend wraps a validated artifact as a single-arch Backend.
// The arch key is the artifact's recorded training architecture
// (normalized), or "default" when the artifact records none.
func NewStaticBackend(art *Artifact, source string) (Backend, error) {
	if err := art.Validate(); err != nil {
		return nil, err
	}
	hash, err := ArtifactHash(art)
	if err != nil {
		return nil, err
	}
	arch := NormalizeArch(art.Arch)
	if arch == "" {
		arch = "default"
	}
	if source == "" {
		source = "memory"
	}
	return &staticBackend{m: LiveModel{Arch: arch, Hash: hash, Source: source, Artifact: art}}, nil
}

func (b *staticBackend) DefaultArch() string { return b.m.Arch }

func (b *staticBackend) Live(arch string) (LiveModel, error) {
	a := NormalizeArch(arch)
	if a == "" || a == b.m.Arch {
		return b.m, nil
	}
	return LiveModel{}, fmt.Errorf("%w %q (this server hosts only %q)", ErrUnknownArch, arch, b.m.Arch)
}

func (b *staticBackend) Shadow(string) (LiveModel, bool)             { return LiveModel{}, false }
func (b *staticBackend) RecordShadow(string, Prediction, Prediction) {}
func (b *staticBackend) Ready() error                                { return nil }

func (b *staticBackend) Status() []ArchStatus {
	return []ArchStatus{{
		Arch: b.m.Arch, Default: true, Loaded: true,
		Hash: b.m.Hash, Source: b.m.Source,
	}}
}
