package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// Request tracing. Every HTTP request gets a trace ID — honouring an
// incoming X-Request-ID header so a caller (or a proxy in front of the
// server) can stitch its own logs to ours, minting a random one
// otherwise. The ID is echoed in the X-Request-ID response header,
// carried through context into the span tree (obs.WithTraceID), and
// emitted in the structured JSON access log, so one grep connects a
// slow request's log line to its spans and its effect on the SLO
// windows.

// maxTraceIDLen bounds an attacker-supplied X-Request-ID so a huge
// header cannot bloat logs and span records.
const maxTraceIDLen = 128

// reqInfo is the per-request record the handlers fill in for the access
// log: which arch answered, with which artifact, and whether the LRU
// did. It travels by pointer in the request context.
type reqInfo struct {
	arch      string
	modelHash string
	cached    bool
	// memoThenMiss marks the trace-worthy disposition where the
	// prediction cache missed but the feature memo already held the
	// body's vector — a model swap, arch change, or disabled cache.
	memoThenMiss bool
}

type reqInfoKey struct{}

// reqInfoFrom returns the request's info record, or nil outside an
// instrumented request (direct handler tests).
func reqInfoFrom(ctx context.Context) *reqInfo {
	ri, _ := ctx.Value(reqInfoKey{}).(*reqInfo)
	return ri
}

// noteModel records the resolved model on the request, for the access
// log line.
func noteModel(ctx context.Context, lm LiveModel) {
	if ri := reqInfoFrom(ctx); ri != nil {
		ri.arch = lm.Arch
		ri.modelHash = lm.Hash
	}
}

// noteCached records whether the answer came from the LRU.
func noteCached(ctx context.Context, cached bool) {
	if ri := reqInfoFrom(ctx); ri != nil {
		ri.cached = cached
	}
}

// noteMemoThenMiss flags the request for tail-sampling: the feature
// memo hit after a prediction-cache miss, which usually means a model
// just swapped under live traffic — exactly the requests worth a trace.
func noteMemoThenMiss(ctx context.Context) {
	if ri := reqInfoFrom(ctx); ri != nil {
		ri.memoThenMiss = true
	}
}

// newTraceID mints a 16-hex-digit random trace ID. On the (never
// observed) chance the system randomness source fails, a constant
// sentinel keeps requests flowing — tracing is diagnostics, not
// authentication.
func newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "rand-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// logThis applies access-log sampling: with -access-log-sample N only
// every Nth request is logged, but error responses, feedback and slow
// requests are always logged — errors are what the log is for,
// feedback closes the quality loop so its trail must stay complete
// even under replay or load-test traffic, and a slow request that the
// sampler happened to skip is precisely the one an operator greps for.
// "Slow" is the trace store's static threshold, so the log and the
// tail sampler agree on the word.
func (s *Server) logThis(endpoint string, status int, slow bool) bool {
	n := int64(s.cfg.AccessLogSample)
	if n <= 1 || status >= 400 || slow || endpoint == "/v1/feedback" {
		return true
	}
	return s.logSeq.Add(1)%n == 1
}

// statusWriter captures the response status for metrics and logging.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// instrument wraps one route with the request-telemetry envelope:
// trace-ID assignment and propagation, the per-endpoint labeled
// latency/status metrics, the SLO window observation and the access
// log. endpoint is the route pattern (not the raw path), keeping label
// cardinality fixed. Probe and scrape routes (/healthz, /readyz,
// /metrics) are measured and logged but excluded from the SLO windows,
// which track served traffic, not monitoring overhead.
//
// Prediction endpoints additionally get an always-on root span: the
// handlers hang stage children (parse, memo, features, cascade,
// predict, shadow, drift) off the request context, and the completed
// tree is offered to the tail-sampling trace store when one is
// configured. The root is built with StartAlways — span cost on this
// path is bounded and the store decides after the fact whether the
// tree is worth keeping.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	inSLO := len(endpoint) >= 4 && endpoint[:4] == "/v1/"
	traced := s.traces != nil && len(endpoint) >= 12 && endpoint[:12] == "/v1/predict/"
	return func(w http.ResponseWriter, r *http.Request) {
		trace := r.Header.Get("X-Request-ID")
		if trace == "" {
			trace = newTraceID()
		} else if len(trace) > maxTraceIDLen {
			trace = trace[:maxTraceIDLen]
		}
		w.Header().Set("X-Request-ID", trace)

		info := &reqInfo{}
		ctx := obs.WithTraceID(r.Context(), trace)
		ctx = context.WithValue(ctx, reqInfoKey{}, info)
		var root *obs.Span
		if traced {
			ctx, root = obs.StartAlways(ctx, endpoint)
			if hop, err := strconv.Atoi(r.Header.Get(obs.TraceHopHeader)); err == nil && hop > 0 {
				root.SetMetric("hop", float64(hop))
			}
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}

		start := time.Now()
		h(sw, r.WithContext(ctx))
		dur := time.Since(start)

		arch := info.arch
		if arch == "" {
			arch = "none"
		}
		s.httpLatency.With(endpoint, arch).ObserveExemplar(dur.Seconds(), trace)
		s.httpRequests.With(endpoint, strconv.Itoa(sw.status)).Inc()
		if inSLO {
			s.slo.Observe(dur.Seconds(), sw.status >= 500)
		}
		slow := s.cfg.SlowRequest > 0 && dur >= s.cfg.SlowRequest
		if root != nil {
			root.SetMetric("status", float64(sw.status))
			if sd := root.EndData(); sd != nil {
				var forced []string
				if info.memoThenMiss {
					forced = append(forced, obs.KeepMemoMiss)
				}
				if r.Header.Get(obs.TraceKeepHeader) != "" {
					forced = append(forced, obs.KeepRequested)
				}
				s.traces.Offer(sd, sw.status, forced...)
			}
		}
		if s.accessLog != nil && s.logThis(endpoint, sw.status, slow) {
			s.accessLog.LogAttrs(context.Background(), slog.LevelInfo, "request",
				slog.String("trace_id", trace),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("endpoint", endpoint),
				slog.Int("status", sw.status),
				slog.Float64("duration_ms", float64(dur)/1e6),
				slog.String("arch", info.arch),
				slog.String("model_hash", info.modelHash),
				slog.Bool("cached", info.cached),
				slog.String("remote", r.RemoteAddr),
			)
		}
	}
}
