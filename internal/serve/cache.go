package serve

import (
	"container/list"
	"sync"
)

// lruCache is a goroutine-safe fixed-capacity LRU keyed by request
// content hash: repeated predictions for the same matrix (a common
// access pattern — the same hot matrices get re-submitted by different
// clients) skip parsing, feature extraction and model inference.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recent
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val Prediction
}

// newLRUCache returns a cache holding up to capacity entries; a
// non-positive capacity disables caching (every Get misses).
func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached prediction for key, marking it most recent.
func (c *lruCache) Get(key string) (Prediction, bool) {
	if c.cap <= 0 {
		return Prediction{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return Prediction{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put stores a prediction, evicting the least recently used entry when
// full.
func (c *lruCache) Put(key string, val Prediction) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// Flush drops every cached entry (hot-swap invalidation: the model the
// entries were computed by is gone).
func (c *lruCache) Flush() {
	c.mu.Lock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	c.mu.Unlock()
}

// Len returns the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
