package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestModelHashHeader: every prediction answer (single and batch)
// carries the serving artifact's hash in X-Model-Hash, and the header
// flips the moment the backend hot-swaps or a shadow candidate is
// promoted — the proxy and replay assert on it instead of pairing each
// prediction with a /v1/model round-trip.
func TestModelHashHeader(t *testing.T) {
	ms, best := labelledCorpus(t, "Turing")
	artA := trainArtifact(t, ms, best, 10, 7)
	artB := trainArtifact(t, ms, best, 6, 99)
	fb := newFakeBackend("turing")
	fb.set("turing", artA, "hash-a")
	srv, err := NewBackendServer(fb, Config{AdminToken: "tok"})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	mm := mmBytes(t, ms[0])

	header := func(path string, body []byte) string {
		t.Helper()
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: %d %s", path, rec.Code, rec.Body.String())
		}
		return rec.Header().Get("X-Model-Hash")
	}

	if got := header("/v1/predict/matrix", mm); got != "hash-a" {
		t.Fatalf("single X-Model-Hash = %q, want hash-a", got)
	}
	batch, err := json.Marshal(batchRequest{Matrices: []string{string(mm)}})
	if err != nil {
		t.Fatal(err)
	}
	if got := header("/v1/predict/batch", batch); got != "hash-a" {
		t.Fatalf("batch X-Model-Hash = %q, want hash-a", got)
	}

	// Hot-swap: the header must flip with the backend, cached or not.
	fb.set("turing", artB, "hash-b")
	if got := header("/v1/predict/matrix", mm); got != "hash-b" {
		t.Fatalf("post-swap X-Model-Hash = %q, want hash-b", got)
	}

	// Promotion: flip back to artA via the shadow path and the admin
	// endpoint, and the header follows.
	fb.setShadow("turing", artA, "hash-a2")
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/admin/promote", nil)
	req.Header.Set("Authorization", "Bearer tok")
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("promote: %d %s", rec.Code, rec.Body.String())
	}
	if got := header("/v1/predict/matrix", mm); got != "hash-a2" {
		t.Fatalf("post-promote X-Model-Hash = %q, want hash-a2", got)
	}
}
