package core_test

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/sparse"
)

// banded builds an n x n matrix with a tight diagonal band: the regular
// structure ELL likes.
func banded(n int) *sparse.CSR {
	t := sparse.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		for j := i - 1; j <= i+1; j++ {
			if j >= 0 && j < n {
				_ = t.Add(i, j, 1)
			}
		}
	}
	return t.ToCSR()
}

// scattered builds an n x n matrix with random skewed rows: the
// irregular structure where CSR is the safe choice.
func scattered(n int, seed int64) *sparse.CSR {
	rng := rand.New(rand.NewSource(seed))
	t := sparse.NewTriplet(n, n)
	for i := 0; i < n; i++ {
		deg := 1 + rng.Intn(8)
		for e := 0; e < deg; e++ {
			_ = t.Add(i, rng.Intn(n), 1)
		}
	}
	return t.ToCSR()
}

// Training a selector on benchmarked matrices and querying it.
func ExampleTrainSelector() {
	var ms []*sparse.CSR
	var best []sparse.Format
	for k := 0; k < 30; k++ {
		ms = append(ms, banded(100+k))
		best = append(best, sparse.FormatELL) // benchmarking said: ELL
		ms = append(ms, scattered(100+k, int64(k)))
		best = append(best, sparse.FormatCSR) // benchmarking said: CSR
	}
	sel, err := core.TrainSelector(ms, best, core.Options{NumClusters: 8, Seed: 1})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(sel.Select(banded(500)))
	fmt.Println(sel.Select(scattered(500, 99)))
	// Output:
	// ELL
	// CSR
}

// Porting a selector to an architecture with different preferences by
// re-benchmarking a few matrices there.
func ExampleSelector_Port() {
	var ms []*sparse.CSR
	var bestA, bestB []sparse.Format
	for k := 0; k < 30; k++ {
		ms = append(ms, banded(100+k))
		bestA = append(bestA, sparse.FormatELL) // GPU A prefers ELL here
		bestB = append(bestB, sparse.FormatCSR) // GPU B prefers CSR
	}
	sel, err := core.TrainSelector(ms, bestA, core.Options{NumClusters: 4, Seed: 1})
	if err != nil {
		fmt.Println(err)
		return
	}
	probe := banded(300)
	fmt.Println("on A:", sel.Select(probe))
	// Port with a sample of matrices re-benchmarked on B (enough to
	// touch every cluster).
	if err := sel.Port(ms, bestB); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("ported to B:", sel.Select(probe))
	// Output:
	// on A: ELL
	// ported to B: CSR
}
