package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/gpusim"
	"repro/internal/sparse"
)

// trainingSet builds a small labelled corpus on one architecture.
func trainingSet(t *testing.T, arch gpusim.Arch) (ms []*sparse.CSR, best []sparse.Format) {
	t.Helper()
	items, err := dataset.Generate(dataset.Config{
		Seed: 3, BaseCount: 63, AugmentPerBase: 0, Scale: 0.35,
		DropELLFailures: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		meas := arch.Measure(it.Name, gpusim.NewProfile(it.Matrix))
		if !meas.Feasible() {
			continue
		}
		f, _ := meas.BestFormat()
		ms = append(ms, it.Matrix)
		best = append(best, f)
	}
	return ms, best
}

func TestTrainSelectorAndSelect(t *testing.T) {
	ms, best := trainingSet(t, gpusim.Turing)
	sel, err := TrainSelector(ms, best, Options{NumClusters: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sel.NumClusters() <= 0 {
		t.Fatal("no clusters")
	}
	// In-sample recommendations should agree with ground truth much more
	// often than the majority-class rate.
	hit := 0
	for i, m := range ms {
		if sel.Select(m) == best[i] {
			hit++
		}
	}
	acc := float64(hit) / float64(len(ms))
	if acc < 0.6 {
		t.Errorf("in-sample agreement %.3f", acc)
	}
}

func TestSelectorValidation(t *testing.T) {
	if _, err := TrainSelector(nil, nil, Options{}); err == nil {
		t.Error("empty input accepted")
	}
	tr := sparse.NewTriplet(4, 4)
	if err := tr.Add(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	m := tr.ToCSR()
	if _, err := TrainSelector([]*sparse.CSR{m}, []sparse.Format{sparse.FormatDIA}, Options{}); err == nil {
		t.Error("DIA label accepted")
	}
	if _, err := TrainSelector([]*sparse.CSR{m}, nil, Options{}); err == nil {
		t.Error("label mismatch accepted")
	}
}

func TestSelectorConvert(t *testing.T) {
	ms, best := trainingSet(t, gpusim.Pascal)
	sel, err := TrainSelector(ms, best, Options{NumClusters: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sel.Convert(ms[0])
	if err != nil {
		// ELL conversion may legitimately fail; the fallback must be the
		// original matrix.
		if out != sparse.Matrix(ms[0]) {
			t.Fatal("failed Convert did not fall back to the input")
		}
		return
	}
	if !sparse.Equal(out, ms[0]) {
		t.Error("Convert changed the matrix contents")
	}
	if out.Format() != sel.Select(ms[0]) {
		t.Error("Convert used a different format than Select")
	}
}

func TestSelectorExplain(t *testing.T) {
	ms, best := trainingSet(t, gpusim.Turing)
	sel, err := TrainSelector(ms, best, Options{NumClusters: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	e := sel.Explain(ms[1])
	if e.Format != sel.Select(ms[1]) {
		t.Error("Explain format disagrees with Select")
	}
	if e.Cluster < 0 || e.Cluster >= sel.NumClusters() {
		t.Errorf("cluster %d out of range", e.Cluster)
	}
	if e.ClusterSize <= 0 {
		t.Errorf("cluster size %d", e.ClusterSize)
	}
	if e.String() == "" {
		t.Error("empty explanation")
	}
	if e.Features[0] <= 0 {
		t.Error("explanation lost the feature vector")
	}
}

func TestSelectorPortImprovesTransfer(t *testing.T) {
	items, err := dataset.Generate(dataset.Config{
		Seed: 11, BaseCount: 70, AugmentPerBase: 0, Scale: 0.35,
		DropELLFailures: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Keep the matrices feasible on both architectures, labelled by each.
	var common []*sparse.CSR
	var labP, labV []sparse.Format
	for _, it := range items {
		p := gpusim.NewProfile(it.Matrix)
		mp := gpusim.Pascal.Measure(it.Name, p)
		mv := gpusim.Volta.Measure(it.Name, p)
		if !mp.Feasible() || !mv.Feasible() {
			continue
		}
		fp, _ := mp.BestFormat()
		fv, _ := mv.BestFormat()
		common = append(common, it.Matrix)
		labP = append(labP, fp)
		labV = append(labV, fv)
	}
	if len(common) < 30 {
		t.Fatalf("only %d common matrices", len(common))
	}
	cut := len(common) * 2 / 3
	sel, err := TrainSelector(common[:cut], labP[:cut], Options{NumClusters: 16, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	score := func() float64 {
		hit := 0
		for i := cut; i < len(common); i++ {
			if sel.Select(common[i]) == labV[i] {
				hit++
			}
		}
		return float64(hit) / float64(len(common)-cut)
	}
	before := score()
	if err := sel.Port(common[:cut], labV[:cut]); err != nil {
		t.Fatal(err)
	}
	after := score()
	if after < before-0.05 {
		t.Errorf("porting hurt transfer accuracy: %.3f -> %.3f", before, after)
	}
	if err := sel.Port(nil, nil); err == nil {
		t.Error("empty port accepted")
	}
}

func TestSelectorPurity(t *testing.T) {
	ms, best := trainingSet(t, gpusim.Turing)
	sel, err := TrainSelector(ms, best, Options{NumClusters: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	purity, count, err := sel.Purity(ms, best)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for c := range purity {
		total += count[c]
		if purity[c] < 0 || purity[c] > 1 {
			t.Errorf("cluster %d purity %v", c, purity[c])
		}
	}
	if total != len(ms) {
		t.Errorf("purity counts %d != %d matrices", total, len(ms))
	}
	if _, _, err := sel.Purity(ms[:1], []sparse.Format{sparse.FormatDIA}); err == nil {
		t.Error("bad purity label accepted")
	}
}
