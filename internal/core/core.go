// Package core is the top-level API of the library: a sparse-matrix
// format Selector that wraps the paper's semi-supervised pipeline
// (feature extraction, preprocessing, clustering, cluster labelling)
// behind a matrix-in / format-out interface, with explainable
// predictions and cheap architecture porting.
//
// Typical use:
//
//	sel, err := core.TrainSelector(matrices, bestFormats, core.Options{})
//	f := sel.Select(newMatrix)         // the recommended storage format
//	m, err := sel.Convert(newMatrix)   // the matrix converted to it
//	why := sel.Explain(newMatrix)      // which cluster and why
//
// Porting to a new architecture needs only a small set of matrices
// benchmarked there:
//
//	err = sel.Port(fewMatrices, theirBestFormatsOnTheNewGPU)
package core

import (
	"fmt"
	"io"

	"repro/internal/features"
	"repro/internal/semisup"
	"repro/internal/sparse"
)

// Options configures TrainSelector. The zero value selects the paper's
// best configuration (K-Means + majority vote, 100 clusters, full
// preprocessing).
type Options struct {
	// Algorithm is the clustering algorithm ("kmeans", "meanshift",
	// "birch"); empty selects K-Means.
	Algorithm string
	// Rule is the cluster labelling rule ("vote", "lr", "rf"); empty
	// selects majority vote.
	Rule string
	// NumClusters is K for K-Means/Birch (default 100).
	NumClusters int
	// BenchmarkFraction in (0, 1] reveals only part of the labels to the
	// labelling rule (default 1).
	BenchmarkFraction float64
	// Seed makes training reproducible.
	Seed int64
}

// Selector recommends a storage format for a sparse matrix.
type Selector struct {
	model *semisup.Model
}

// TrainSelector fits a Selector on matrices with their benchmarked best
// formats. Labels must only use the four kernel formats (COO, CSR, ELL,
// HYB).
func TrainSelector(matrices []*sparse.CSR, best []sparse.Format, opt Options) (*Selector, error) {
	if len(matrices) == 0 || len(matrices) != len(best) {
		return nil, fmt.Errorf("core: bad training input: %d matrices, %d labels", len(matrices), len(best))
	}
	y := make([]int, len(best))
	for i, f := range best {
		idx := formatIndex(f)
		if idx < 0 {
			return nil, fmt.Errorf("core: label %v at %d is not a kernel format", f, i)
		}
		y[i] = idx
	}
	x := features.Matrix(features.ExtractAll(matrices))
	cfg := semisup.Config{
		Algorithm:         semisup.Algorithm(opt.Algorithm),
		Rule:              semisup.Rule(opt.Rule),
		NumClusters:       opt.NumClusters,
		BenchmarkFraction: opt.BenchmarkFraction,
		Seed:              opt.Seed,
	}
	m, err := semisup.Train(x, y, sparse.NumKernelFormats, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: training selector: %w", err)
	}
	return &Selector{model: m}, nil
}

func formatIndex(f sparse.Format) int {
	for i, kf := range sparse.KernelFormats() {
		if kf == f {
			return i
		}
	}
	return -1
}

// Select returns the recommended storage format for a matrix.
func (s *Selector) Select(m *sparse.CSR) sparse.Format {
	idx := s.model.Predict(features.Extract(m).Slice())
	return sparse.KernelFormats()[idx]
}

// SelectVector recommends a format from a raw Table 1 feature vector,
// validating its dimension — the entry point for callers (such as the
// prediction service) that receive feature vectors instead of matrices.
func (s *Selector) SelectVector(x []float64) (sparse.Format, error) {
	idx, err := s.model.PredictChecked(x)
	if err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	return sparse.KernelFormats()[idx], nil
}

// Model exposes the underlying semi-supervised model, e.g. for
// embedding in a serve artifact.
func (s *Selector) Model() *semisup.Model { return s.model }

// Convert returns the matrix converted to its recommended format.
func (s *Selector) Convert(m *sparse.CSR) (sparse.Matrix, error) {
	f := s.Select(m)
	out, err := sparse.Convert(m, f)
	if err != nil {
		// ELL may be infeasible for extreme shapes even when the cluster
		// label says ELL; fall back to the universal format.
		return m, fmt.Errorf("core: converting to recommended %v (matrix stays CSR): %w", f, err)
	}
	return out, nil
}

// Port re-labels the selector's clusters from matrices benchmarked on a
// different architecture — the paper's transfer-learning step. Only a
// few matrices per cluster are needed; clusters that receive no data
// keep their previous label.
func (s *Selector) Port(matrices []*sparse.CSR, best []sparse.Format) error {
	if len(matrices) == 0 || len(matrices) != len(best) {
		return fmt.Errorf("core: bad port input: %d matrices, %d labels", len(matrices), len(best))
	}
	y := make([]int, len(best))
	for i, f := range best {
		idx := formatIndex(f)
		if idx < 0 {
			return fmt.Errorf("core: label %v at %d is not a kernel format", f, i)
		}
		y[i] = idx
	}
	x := features.Matrix(features.ExtractAll(matrices))
	return s.model.Relabel(x, y)
}

// NumClusters exposes the model granularity.
func (s *Selector) NumClusters() int { return s.model.NumClusters() }

// Explanation describes why a matrix received its recommendation — the
// explainability the paper claims over black-box models.
type Explanation struct {
	// Format is the recommendation.
	Format sparse.Format
	// Cluster is the index of the matching cluster.
	Cluster int
	// ClusterSize is how many training matrices share the cluster.
	ClusterSize int
	// Features is the matrix's raw Table 1 feature vector.
	Features features.Vector
}

// String renders a one-line explanation.
func (e Explanation) String() string {
	return fmt.Sprintf("format %v via cluster %d (%d training matrices)",
		e.Format, e.Cluster, e.ClusterSize)
}

// Explain returns the cluster assignment behind Select.
func (s *Selector) Explain(m *sparse.CSR) Explanation {
	v := features.Extract(m)
	c := s.model.ClusterOf(v.Slice())
	return Explanation{
		Format:      sparse.KernelFormats()[s.model.ClusterLabel(c)],
		Cluster:     c,
		ClusterSize: s.model.ClusterSize(c),
		Features:    v,
	}
}

// Save serialises the selector with encoding/gob, so a trained model
// ships with an application and is later ported to new hardware with
// Port alone.
func (s *Selector) Save(w io.Writer) error {
	return s.model.Save(w)
}

// LoadSelector deserialises a selector written by Save.
func LoadSelector(r io.Reader) (*Selector, error) {
	m, err := semisup.Load(r)
	if err != nil {
		return nil, fmt.Errorf("core: loading selector: %w", err)
	}
	return &Selector{model: m}, nil
}

// Purity reports per-cluster purity on a labelled sample, the paper's
// cluster-quality measure.
func (s *Selector) Purity(matrices []*sparse.CSR, best []sparse.Format) (purity []float64, count []int, err error) {
	y := make([]int, len(best))
	for i, f := range best {
		idx := formatIndex(f)
		if idx < 0 {
			return nil, nil, fmt.Errorf("core: label %v at %d is not a kernel format", f, i)
		}
		y[i] = idx
	}
	x := features.Matrix(features.ExtractAll(matrices))
	return s.model.Purity(x, y)
}
