package eval

import (
	"bytes"
	"context"
	"runtime"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sparse"
)

// sharedEnv caches one quick environment across the tests of this
// package; building it is the expensive step.
var sharedEnv *Env

func getEnv(t *testing.T) *Env {
	t.Helper()
	if sharedEnv == nil {
		env, err := NewEnv(context.Background(), QuickOptions())
		if err != nil {
			t.Fatalf("NewEnv: %v", err)
		}
		sharedEnv = env
	}
	return sharedEnv
}

func TestStratifiedFolds(t *testing.T) {
	labels := make([]int, 100)
	for i := 60; i < 90; i++ {
		labels[i] = 1
	}
	for i := 90; i < 100; i++ {
		labels[i] = 2
	}
	folds := StratifiedFolds(labels, 5, 1)
	if len(folds) != 5 {
		t.Fatalf("%d folds", len(folds))
	}
	seen := map[int]int{}
	for _, f := range folds {
		counts := [3]int{}
		for _, i := range f {
			seen[i]++
			counts[labels[i]]++
		}
		// Every fold carries a proportional share of each class.
		if counts[0] != 12 || counts[1] != 6 || counts[2] != 2 {
			t.Errorf("fold distribution %v, want [12 6 2]", counts)
		}
	}
	if len(seen) != 100 {
		t.Fatalf("folds cover %d samples", len(seen))
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("sample %d appears %d times", i, n)
		}
	}
	train := trainTestSplit(100, folds[0])
	if len(train)+len(folds[0]) != 100 {
		t.Error("train/test split loses samples")
	}
}

func TestEnvConstruction(t *testing.T) {
	env := getEnv(t)
	if len(env.Images) != len(env.Corpus.Items) {
		t.Fatal("images not aligned with corpus")
	}
	for _, a := range env.Archs {
		if env.Common[a.Name] == nil || env.Common[a.Name].Len() == 0 {
			t.Fatalf("common subset missing for %s", a.Name)
		}
	}
	d := env.Corpus.PerArch["Pascal"]
	imgs := env.ImagesFor(d)
	if len(imgs) != d.Len() {
		t.Fatal("ImagesFor misaligned")
	}
}

func TestTable3ShapeAndRender(t *testing.T) {
	env := getEnv(t)
	rows := Table3(env)
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		sum := 0
		for _, c := range r.Counts {
			sum += c
		}
		if sum != r.Total {
			t.Errorf("%s: counts sum %d != total %d", r.Arch, sum, r.Total)
		}
		// CSR must be the plurality class (Table 3's shape).
		csr := r.Counts[1]
		for i, c := range r.Counts {
			if i != 1 && c > csr {
				t.Errorf("%s: class %v exceeds CSR", r.Arch, sparse.KernelFormats()[i])
			}
		}
		if r.MaxSlowdown < 1 {
			t.Errorf("%s: max slowdown %v < 1", r.Arch, r.MaxSlowdown)
		}
	}
	var buf bytes.Buffer
	if err := RenderTable3(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "worst CSR slowdown") {
		t.Error("render missing slowdown note")
	}
}

func TestTable4QuickRun(t *testing.T) {
	env := getEnv(t)
	opt := QuickOptions()
	// Restrict to one architecture's worth of work by reusing the env but
	// trimming the sweep for speed.
	opt.NCSweep = []int{16}
	rows, err := Table4(context.Background(), env, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*9 {
		t.Fatalf("%d rows, want 27", len(rows))
	}
	for _, r := range rows {
		if r.M.ACC <= 0 || r.M.ACC > 1 {
			t.Errorf("%s/%s: ACC %v out of range", r.Arch, r.Algo, r.M.ACC)
		}
		if r.M.MCC < -1 || r.M.MCC > 1 {
			t.Errorf("%s/%s: MCC %v out of range", r.Arch, r.Algo, r.M.MCC)
		}
		if r.NC <= 0 {
			t.Errorf("%s/%s: NC %d", r.Arch, r.Algo, r.NC)
		}
	}
	// The paper's headline comparison: K-Means at a controlled NC is at
	// least on par with Mean-Shift (at full scale Mean-Shift's automatic
	// bandwidth under-clusters badly; at this reduced scale a tie is
	// possible, so the assertion allows a small tolerance), and
	// Mean-Shift always finds fewer clusters than K-Means is given.
	for _, arch := range []string{"Pascal", "Volta", "Turing"} {
		bestKM, bestMS := -2.0, -2.0
		kmNC, msNC := 0, 0
		for _, r := range rows {
			if r.Arch != arch {
				continue
			}
			if strings.HasPrefix(r.Algo, "K-Means") && r.M.MCC > bestKM {
				bestKM = r.M.MCC
				kmNC = r.NC
			}
			if strings.HasPrefix(r.Algo, "Mean-Shift") && r.M.MCC > bestMS {
				bestMS = r.M.MCC
				msNC = r.NC
			}
		}
		if bestKM < bestMS-0.05 {
			t.Errorf("%s: best K-Means MCC %.3f well below best Mean-Shift %.3f", arch, bestKM, bestMS)
		}
		if msNC >= kmNC {
			t.Errorf("%s: Mean-Shift found %d clusters, not fewer than K-Means' %d", arch, msNC, kmNC)
		}
	}
	var buf bytes.Buffer
	if err := RenderTable4(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestTable5QuickRun(t *testing.T) {
	env := getEnv(t)
	opt := QuickOptions()
	opt.Folds = 2
	rows, err := Table5(context.Background(), env, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6*9 {
		t.Fatalf("%d rows, want 54", len(rows))
	}
	// Retraining should help on average (paper: moderate increase).
	var gain0, gain50 float64
	for _, r := range rows {
		gain0 += r.M[0].ACC
		gain50 += r.M[2].ACC
	}
	if gain50 < gain0-0.5 {
		t.Errorf("50%% retraining made things drastically worse: %.3f vs %.3f", gain50, gain0)
	}
	var buf bytes.Buffer
	if err := RenderTable5(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestTable6QuickRun(t *testing.T) {
	env := getEnv(t)
	opt := QuickOptions()
	rows, err := Table6(context.Background(), env, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*6 {
		t.Fatalf("%d rows, want 18", len(rows))
	}
	for _, r := range rows {
		if r.M.GT > 1+1e-9 {
			t.Errorf("%s/%s: GT %v exceeds the oracle", r.Arch, r.Model, r.M.GT)
		}
		if r.M.ACC < 0.3 {
			t.Errorf("%s/%s: ACC %.3f suspiciously low", r.Arch, r.Model, r.M.ACC)
		}
		if r.M.Threshold < 0 {
			t.Errorf("%s/%s: negative threshold", r.Arch, r.Model)
		}
	}
	var buf bytes.Buffer
	if err := RenderTable6(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestTable7QuickRun(t *testing.T) {
	env := getEnv(t)
	opt := QuickOptions()
	opt.Folds = 2
	rows, err := Table7(context.Background(), env, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5*5 {
		t.Fatalf("%d rows, want 25", len(rows))
	}
	// No Volta-to-Pascal pair, as in the paper.
	for _, r := range rows {
		if r.Pair == "Volta to Pascal" {
			t.Errorf("Table 7 must omit Volta to Pascal")
		}
		for _, m := range r.M {
			if m.GT > 1+1e-9 {
				t.Errorf("%s/%s: GT %v exceeds the oracle", r.Pair, r.Model, m.GT)
			}
		}
	}
	var buf bytes.Buffer
	if err := RenderTable7(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestTable8(t *testing.T) {
	env := getEnv(t)
	r := Table8(env)
	if r.ConversionCost["ELL"] != 102 || r.ConversionCost["HYB"] != 147 || r.ConversionCost["COO"] != 9 {
		t.Errorf("conversion costs %v", r.ConversionCost)
	}
	for _, a := range env.Archs {
		if r.Hours[a.Name] <= 0 {
			t.Errorf("%s: non-positive benchmarking hours", a.Name)
		}
	}
	var buf bytes.Buffer
	if err := RenderTable8(&buf, r); err != nil {
		t.Fatal(err)
	}
}

func TestTable9(t *testing.T) {
	env := getEnv(t)
	opt := QuickOptions()
	opt.CNNEpochs = 1
	rows, err := Table9(context.Background(), env, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows, want 9", len(rows))
	}
	byName := map[string][3]float64{}
	for _, r := range rows {
		byName[r.Model] = r.Secs
		for _, s := range r.Secs {
			if s < 0 {
				t.Errorf("%s: negative time", r.Model)
			}
		}
	}
	// The reproducible ordering claim: CNN is the costliest model even at
	// one epoch.
	cnn := byName["CNN"][0]
	km := byName["K-Means-VOTE"][0]
	if cnn <= km {
		t.Errorf("CNN (%.3fs) should cost more than K-Means-VOTE (%.3fs)", cnn, km)
	}
	var buf bytes.Buffer
	if err := RenderTable9(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestRenderStaticTables(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderTable1(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "csr_max") {
		t.Error("Table 1 render missing features")
	}
	buf.Reset()
	if err := RenderTable2(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"GTX 1080", "V100", "RTX 8000"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Table 2 render missing %q", want)
		}
	}
}

func TestCombosNaming(t *testing.T) {
	combos := Combos()
	if len(combos) != 9 {
		t.Fatalf("%d combos", len(combos))
	}
	names := map[string]bool{}
	for _, c := range combos {
		names[c.Name()] = true
	}
	for _, want := range []string{"K-Means-VOTE", "Mean-Shift-LR", "Birch-RF"} {
		if !names[want] {
			t.Errorf("missing combo %q", want)
		}
	}
}

func TestFamilyReport(t *testing.T) {
	env := getEnv(t)
	d := env.Corpus.PerArch["Turing"]
	// An oracle prediction vector gives 100% accuracy per family.
	stats, err := FamilyReport(d, d.Labels, sparse.NumKernelFormats)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) < 5 {
		t.Fatalf("only %d families reported", len(stats))
	}
	total := 0
	for _, s := range stats {
		total += s.Count
		if s.Accuracy != 1 {
			t.Errorf("%s: oracle accuracy %.3f", s.Family, s.Accuracy)
		}
		distSum := 0
		for _, v := range s.TrueDist {
			distSum += v
		}
		if distSum != s.Count {
			t.Errorf("%s: distribution sums to %d, count %d", s.Family, distSum, s.Count)
		}
	}
	if total != d.Len() {
		t.Errorf("family counts sum to %d, want %d", total, d.Len())
	}
	// A constant-CSR predictor scores each family at its CSR share.
	pred := make([]int, d.Len())
	for i := range pred {
		pred[i] = 1
	}
	stats, err = FamilyReport(d, pred, sparse.NumKernelFormats)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stats {
		want := float64(s.TrueDist[1]) / float64(s.Count)
		if diff := s.Accuracy - want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("%s: constant-CSR accuracy %.3f, want CSR share %.3f", s.Family, s.Accuracy, want)
		}
	}
	var buf bytes.Buffer
	if err := RenderFamilyReport(&buf, stats); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mesh") {
		t.Error("render missing a family")
	}
	// Validation.
	if _, err := FamilyReport(d, pred[:3], sparse.NumKernelFormats); err == nil {
		t.Error("short prediction vector accepted")
	}
	pred[0] = 99
	if _, err := FamilyReport(d, pred, sparse.NumKernelFormats); err == nil {
		t.Error("out-of-range prediction accepted")
	}
}

// renderComputedTables renders tables 3-8 into one buffer — everything
// the scheduler parallelises. Table 9 is excluded on purpose: its rows
// are wall-clock training timings, never byte-stable across runs.
func renderComputedTables(t *testing.T, env *Env, opt Options) string {
	t.Helper()
	ctx := context.Background()
	var buf bytes.Buffer
	if err := RenderTable3(&buf, Table3(env)); err != nil {
		t.Fatal(err)
	}
	rows4, err := Table4(ctx, env, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderTable4(&buf, rows4); err != nil {
		t.Fatal(err)
	}
	rows5, err := Table5(ctx, env, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderTable5(&buf, rows5); err != nil {
		t.Fatal(err)
	}
	rows6, err := Table6(ctx, env, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderTable6(&buf, rows6); err != nil {
		t.Fatal(err)
	}
	rows7, err := Table7(ctx, env, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := RenderTable7(&buf, rows7); err != nil {
		t.Fatal(err)
	}
	if err := RenderTable8(&buf, Table8(env)); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestTablesDeterministicAcrossWorkers is the scheduler's contract: the
// rendered tables are byte-identical whether the CV cells run strictly
// sequentially (worker cap 1), fanned out over 8 workers, or at the
// default worker count. GOMAXPROCS is raised so the 8-worker pass
// exercises real goroutine interleaving even on a single-CPU host.
func TestTablesDeterministicAcrossWorkers(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	env := getEnv(t)
	opt := QuickOptions()

	seq := func() string {
		prev := obs.SetMaxWorkers(1)
		defer obs.SetMaxWorkers(prev)
		o := opt
		o.Workers = 1
		return renderComputedTables(t, env, o)
	}()

	par := opt
	par.Workers = 8
	parOut := renderComputedTables(t, env, par)
	if seq != parOut {
		t.Fatalf("tables differ between workers=1 and workers=8:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, parOut)
	}

	defOut := renderComputedTables(t, env, opt) // Workers == 0: default
	if defOut != parOut {
		t.Fatalf("tables differ between default workers and workers=8:\n--- default ---\n%s\n--- parallel ---\n%s", defOut, parOut)
	}
}

// TestTablesHonourCancelledContext checks first-error/cancellation
// propagation through the scheduler for every scheduled table.
func TestTablesHonourCancelledContext(t *testing.T) {
	env := getEnv(t)
	opt := QuickOptions()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Table4(ctx, env, opt); err == nil {
		t.Fatal("Table4: no error from cancelled context")
	}
	if _, err := Table5(ctx, env, opt); err == nil {
		t.Fatal("Table5: no error from cancelled context")
	}
	if _, err := Table6(ctx, env, opt); err == nil {
		t.Fatal("Table6: no error from cancelled context")
	}
	if _, err := Table7(ctx, env, opt); err == nil {
		t.Fatal("Table7: no error from cancelled context")
	}
}
