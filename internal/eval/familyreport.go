package eval

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/dataset"
)

// FamilyStats summarises a model's behaviour on one generator family:
// how often it is right and what the family's dominant true format is.
type FamilyStats struct {
	Family   string
	Count    int
	Correct  int
	Accuracy float64
	// TrueDist[c] counts the family's ground-truth labels per class.
	TrueDist []int
}

// FamilyReport breaks a prediction vector down by generator family
// (recovered from the matrix naming convention "family_NNNN[_pK]").
// It answers the explainability question the tables aggregate away:
// *which kinds* of matrices a model gets wrong.
func FamilyReport(d *dataset.ArchData, pred []int, classes int) ([]FamilyStats, error) {
	if len(pred) != d.Len() {
		return nil, fmt.Errorf("eval: %d predictions for %d rows", len(pred), d.Len())
	}
	byFam := map[string]*FamilyStats{}
	for i, name := range d.Names {
		fam := strings.SplitN(name, "_", 2)[0]
		s := byFam[fam]
		if s == nil {
			s = &FamilyStats{Family: fam, TrueDist: make([]int, classes)}
			byFam[fam] = s
		}
		if d.Labels[i] < 0 || d.Labels[i] >= classes {
			return nil, fmt.Errorf("eval: label %d out of range at row %d", d.Labels[i], i)
		}
		if pred[i] < 0 || pred[i] >= classes {
			return nil, fmt.Errorf("eval: prediction %d out of range at row %d", pred[i], i)
		}
		s.Count++
		s.TrueDist[d.Labels[i]]++
		if pred[i] == d.Labels[i] {
			s.Correct++
		}
	}
	out := make([]FamilyStats, 0, len(byFam))
	for _, s := range byFam {
		s.Accuracy = float64(s.Correct) / float64(s.Count)
		out = append(out, *s)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Family < out[b].Family })
	return out, nil
}

// RenderFamilyReport prints the breakdown as a text table.
func RenderFamilyReport(w io.Writer, stats []FamilyStats) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "family\tn\taccuracy\ttrue-label distribution (COO/CSR/ELL/HYB)")
	for _, s := range stats {
		dist := make([]string, len(s.TrueDist))
		for i, v := range s.TrueDist {
			dist[i] = fmt.Sprintf("%d", v)
		}
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%s\n", s.Family, s.Count, s.Accuracy, strings.Join(dist, "/"))
	}
	return tw.Flush()
}
