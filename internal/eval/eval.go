// Package eval orchestrates the paper's experiments: it builds the
// benchmark corpus, runs the cross-validated local and transfer
// evaluations of the semi-supervised and supervised models, and renders
// each of the paper's Tables 1-9 as text.
package eval

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/gpusim"
	"repro/internal/obs"
)

// Options configures the experiment scale.
type Options struct {
	// Dataset configures collection generation.
	Dataset dataset.Config
	// Folds is the cross-validation fold count (the paper uses 5).
	Folds int
	// NCSweep lists the cluster counts tried for K-Means and Birch; the
	// best-MCC configuration is reported, as in the paper.
	NCSweep []int
	// TransferNC is the cluster count used in the transfer experiments.
	TransferNC int
	// CNNEpochs caps CNN training epochs (the full 30 is expensive).
	CNNEpochs int
	// Seed drives fold assignment and model seeds.
	Seed int64
	// Workers bounds the experiment scheduler's concurrent CV cells for
	// Tables 4-7; 0 uses the global obs budget (GOMAXPROCS, or the
	// -workers cap). The rendered tables are byte-identical for every
	// setting — see scheduler.go.
	Workers int
}

// PaperOptions is the full-scale configuration used by cmd/spmvselect.
func PaperOptions() Options {
	return Options{
		Dataset:    dataset.DefaultConfig(),
		Folds:      5,
		NCSweep:    []int{50, 100, 200, 400},
		TransferNC: 200,
		CNNEpochs:  8,
		Seed:       1,
	}
}

// QuickOptions is a reduced configuration for tests and benchmarks.
func QuickOptions() Options {
	return Options{
		Dataset: dataset.Config{
			Seed: 1, BaseCount: 84, AugmentPerBase: 1, Scale: 0.45,
			DropELLFailures: true,
		},
		Folds:      3,
		NCSweep:    []int{20, 40},
		TransferNC: 30,
		CNNEpochs:  3,
		Seed:       1,
	}
}

// Env is the shared experimental environment: the corpus, its
// per-architecture datasets, the aligned common subset and the density
// images for the CNN.
type Env struct {
	Corpus *dataset.Corpus
	Archs  []gpusim.Arch
	// Common maps architecture name to the aligned common-subset data.
	Common map[string]*dataset.ArchData
	// Images[i] is the CNN density image of Corpus.Items[i].
	Images [][]float64
}

// NewEnv generates the collection and simulates the benchmark on every
// architecture. The ctx parents the obs spans of the corpus stages; pass
// context.Background() when not tracing.
func NewEnv(ctx context.Context, opt Options) (*Env, error) {
	ctx, span := obs.Start(ctx, "corpus")
	defer span.End()
	_, gsp := obs.Start(ctx, "generate")
	items, err := dataset.Generate(opt.Dataset)
	gsp.SetMetric("items", float64(len(items)))
	gsp.End()
	if err != nil {
		return nil, fmt.Errorf("eval: generating collection: %w", err)
	}
	archs := gpusim.Archs()
	corpus := dataset.Build(ctx, items, archs)
	_, csp := obs.Start(ctx, "common")
	common, err := corpus.CommonSubset(archs)
	csp.End()
	if err != nil {
		return nil, fmt.Errorf("eval: common subset: %w", err)
	}
	_, isp := obs.Start(ctx, "images")
	images := make([][]float64, len(items))
	obs.ParallelFor(len(items), func(i int) {
		images[i] = classify.DensityImage(items[i].Matrix)
	})
	isp.End()
	return &Env{Corpus: corpus, Archs: archs, Common: common, Images: images}, nil
}

// ImagesFor returns the density images aligned with the rows of d.
func (e *Env) ImagesFor(d *dataset.ArchData) [][]float64 {
	out := make([][]float64, d.Len())
	for row, idx := range d.Index {
		out[row] = e.Images[idx]
	}
	return out
}

// StratifiedFolds splits sample indices into k folds, keeping each
// class's share roughly constant across folds. It returns, per fold, the
// list of test indices; the remaining indices form that fold's training
// set.
func StratifiedFolds(labels []int, k int, seed int64) [][]int {
	if k < 2 {
		k = 2
	}
	rng := rand.New(rand.NewSource(seed))
	byClass := map[int][]int{}
	for i, l := range labels {
		byClass[l] = append(byClass[l], i)
	}
	folds := make([][]int, k)
	// Deterministic class order.
	maxClass := 0
	for l := range byClass {
		if l > maxClass {
			maxClass = l
		}
	}
	for l := 0; l <= maxClass; l++ {
		idx := byClass[l]
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for j, i := range idx {
			folds[j%k] = append(folds[j%k], i)
		}
	}
	return folds
}

// trainTestSplit materialises the train rows for a fold given its test
// indices.
func trainTestSplit(n int, test []int) (train []int) {
	inTest := make([]bool, n)
	for _, i := range test {
		inTest[i] = true
	}
	for i := 0; i < n; i++ {
		if !inTest[i] {
			train = append(train, i)
		}
	}
	return train
}

// gather selects rows of a feature matrix.
func gather(x [][]float64, idx []int) [][]float64 {
	out := make([][]float64, len(idx))
	for k, i := range idx {
		out[k] = x[i]
	}
	return out
}

// gatherInts selects elements of an int slice.
func gatherInts(y []int, idx []int) []int {
	out := make([]int, len(idx))
	for k, i := range idx {
		out[k] = y[i]
	}
	return out
}
