package eval

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/features"
	"repro/internal/gpusim"
	"repro/internal/preprocess"
	"repro/internal/sparse"
)

// fitScaler fits the paper's skew + min-max stages (no PCA).
func fitScaler(rows [][]float64) (preprocess.Chain, error) {
	return preprocess.FitPipeline(rows, preprocess.Options{SkipPCA: true})
}

func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// RenderTable1 prints the Table 1 feature catalogue.
func RenderTable1(w io.Writer) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "Table 1: sparse matrix features used for automated format selection")
	fmt.Fprintln(tw, "feature\tindex")
	for i, n := range features.Names {
		fmt.Fprintf(tw, "%s\t%d\n", n, i)
	}
	return tw.Flush()
}

// RenderTable2 prints the GPU specifications.
func RenderTable2(w io.Writer) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "Table 2: NVIDIA GPUs modelled by gpusim")
	fmt.Fprintln(tw, "arch\tmodel\tSMs\tL1/SM KiB\tL2 KiB\tmem GB\tmem type\tBW GB/s")
	for _, a := range gpusim.Archs() {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%.0f\t%s\t%.0f\n",
			a.Name, a.Model, a.SMs, a.L1PerSMKiB, a.L2KiB, a.MemoryGB, a.MemoryType, a.BandwidthGBs)
	}
	return tw.Flush()
}

// RenderTable3 prints the label distributions.
func RenderTable3(w io.Writer, rows []Table3Row) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "Table 3: distribution of the best sparse formats across GPUs")
	fmt.Fprint(tw, "format")
	for _, r := range rows {
		fmt.Fprintf(tw, "\t%s", r.Arch)
	}
	for _, r := range rows {
		fmt.Fprintf(tw, "\t%s(common)", r.Arch)
	}
	fmt.Fprintln(tw)
	for i, f := range sparse.KernelFormats() {
		fmt.Fprint(tw, f)
		for _, r := range rows {
			fmt.Fprintf(tw, "\t%d", r.Counts[i])
		}
		for _, r := range rows {
			fmt.Fprintf(tw, "\t%d", r.Common[i])
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprint(tw, "Total")
	for _, r := range rows {
		fmt.Fprintf(tw, "\t%d", r.Total)
	}
	common := 0
	for _, c := range rows[0].Common {
		common += c
	}
	fmt.Fprintf(tw, "\t%d (common)\n", common)
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Fprintf(w, "worst CSR slowdown on %s: %.2fX (%s)\n", r.Arch, r.MaxSlowdown, r.MaxSlowdownName)
	}
	return nil
}

// RenderTable4 prints the semi-supervised local results.
func RenderTable4(w io.Writer, rows []Table4Row) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "Table 4: semi-supervised performance per clustering algorithm and GPU")
	fmt.Fprintln(tw, "arch\talgorithm\tNC\tMCC\tACC\tF1")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.3f\t%.3f\t%.3f\n",
			r.Arch, r.Algo, r.NC, r.M.MCC, r.M.ACC, r.M.F1)
	}
	return tw.Flush()
}

// RenderTable5 prints the semi-supervised transfer results.
func RenderTable5(w io.Writer, rows []Table5Row) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "Table 5: semi-supervised transfer across GPUs (0/25/50% retraining)")
	fmt.Fprintln(tw, "pair\talgorithm\tNC\tMCC0\tACC0\tF1_0\tMCC25\tACC25\tF1_25\tMCC50\tACC50\tF1_50")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d", r.Pair, r.Algo, r.NC)
		for _, m := range r.M {
			fmt.Fprintf(tw, "\t%.3f\t%.3f\t%.3f", m.MCC, m.ACC, m.F1)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// RenderTable6 prints the supervised local results.
func RenderTable6(w io.Writer, rows []Table6Row) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "Table 6: supervised models per GPU")
	fmt.Fprintln(tw, "arch\tmodel\tACC\tF1\tMCC\tGT\tCSR\tThresh")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%d\n",
			r.Arch, r.Model, 100*r.M.ACC, r.M.F1, r.M.MCC, r.M.GT, r.M.CSR, r.M.Threshold)
	}
	return tw.Flush()
}

// RenderTable7 prints the supervised transfer results.
func RenderTable7(w io.Writer, rows []Table7Row) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "Table 7: supervised transfer across GPUs (0/25/50% retraining)")
	fmt.Fprintln(tw, "pair\tmodel\tACC0\tF1_0\tMCC0\tGT0\tCSR0\tACC25\tF1_25\tMCC25\tGT25\tCSR25\tACC50\tF1_50\tMCC50\tGT50\tCSR50")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s", r.Pair, r.Model)
		for _, m := range r.M {
			fmt.Fprintf(tw, "\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f", 100*m.ACC, m.F1, m.MCC, m.GT, m.CSR)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// RenderTable8 prints the conversion and benchmarking costs.
func RenderTable8(w io.Writer, r Table8Result) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "Table 8: conversion cost (CSR-SpMV units) and modelled benchmarking time")
	fmt.Fprintln(tw, "format\tconversion cost")
	for _, f := range []string{"COO", "ELL", "HYB"} {
		fmt.Fprintf(tw, "%s\t%.0f\n", f, r.ConversionCost[f])
	}
	fmt.Fprintln(tw, "platform\ttime (hours)")
	for _, a := range gpusim.Archs() {
		fmt.Fprintf(tw, "%s\t%.0f\n", a.Name, r.Hours[a.Name])
	}
	return tw.Flush()
}

// RenderTable9 prints the measured training times.
func RenderTable9(w io.Writer, rows []Table9Row) error {
	tw := newTab(w)
	fmt.Fprintln(tw, "Table 9: training wall-clock seconds (0/25/50% transfer data)")
	fmt.Fprintln(tw, "model\t0%\t25%\t50%")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.3f\n", r.Model, r.Secs[0], r.Secs[1], r.Secs[2])
	}
	return tw.Flush()
}
