package eval

import (
	"fmt"

	"repro/internal/classify"
	"repro/internal/metrics"
	"repro/internal/sparse"
)

// SelectFeatures implements the per-model feature-subset optimisation
// the paper describes in Section 5.1 ("Each supervised algorithm uses an
// optimized subset of the features from Table 1. The input features are
// selected based on the best performance for that method."): greedy
// forward selection by cross-validated MCC.
//
// It returns the selected feature indices (in selection order) and the
// CV MCC the subset achieves. Selection stops when no remaining feature
// improves the score or maxFeatures is reached.
func SelectFeatures(feats [][]float64, labels []int, build func() classify.Classifier,
	maxFeatures, folds int, seed int64) ([]int, float64, error) {
	if len(feats) == 0 || len(feats) != len(labels) {
		return nil, 0, fmt.Errorf("eval: bad feature-selection input: %d rows, %d labels", len(feats), len(labels))
	}
	d := len(feats[0])
	if maxFeatures <= 0 || maxFeatures > d {
		maxFeatures = d
	}
	if folds < 2 {
		folds = 2
	}

	selected := []int{}
	used := make([]bool, d)
	bestScore := -2.0
	for len(selected) < maxFeatures {
		bestFeat := -1
		roundBest := bestScore
		for f := 0; f < d; f++ {
			if used[f] {
				continue
			}
			candidate := append(append([]int(nil), selected...), f)
			score, err := cvScoreSubset(feats, labels, candidate, build, folds, seed)
			if err != nil {
				return nil, 0, err
			}
			if score > roundBest+1e-9 {
				roundBest = score
				bestFeat = f
			}
		}
		if bestFeat < 0 {
			break
		}
		selected = append(selected, bestFeat)
		used[bestFeat] = true
		bestScore = roundBest
	}
	if len(selected) == 0 {
		return nil, 0, fmt.Errorf("eval: no feature improved on the empty model")
	}
	return selected, bestScore, nil
}

// cvScoreSubset cross-validates the model restricted to the feature
// subset and returns the MCC.
func cvScoreSubset(feats [][]float64, labels []int, subset []int,
	build func() classify.Classifier, folds int, seed int64) (float64, error) {
	proj := make([][]float64, len(feats))
	for i, row := range feats {
		p := make([]float64, len(subset))
		for k, f := range subset {
			p[k] = row[f]
		}
		proj[i] = p
	}
	var truth, pred []int
	for _, test := range StratifiedFolds(labels, folds, seed) {
		train := trainTestSplit(len(proj), test)
		clf := build()
		if err := clf.Fit(gather(proj, train), gatherInts(labels, train), sparse.NumKernelFormats); err != nil {
			return 0, err
		}
		for _, i := range test {
			truth = append(truth, labels[i])
			pred = append(pred, clf.Predict(proj[i]))
		}
	}
	c, err := metrics.NewConfusion(truth, pred, sparse.NumKernelFormats)
	if err != nil {
		return 0, err
	}
	return c.MCC(), nil
}
