package eval

import (
	"context"
	"fmt"

	"repro/internal/classify"
	"repro/internal/dataset"
	"repro/internal/gpusim"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/semisup"
	"repro/internal/sparse"
)

// Metrics is the (MCC, ACC, F1) triple reported throughout the paper.
type Metrics struct {
	MCC, ACC, F1 float64
}

// SupMetrics adds the SpMV-outcome columns of Tables 6 and 7.
type SupMetrics struct {
	ACC, F1, MCC, GT, CSR float64
	Threshold             int
}

// Combo names one semi-supervised configuration using the paper's
// naming ("K-Means-VOTE", ...).
type Combo struct {
	Algo semisup.Algorithm
	Rule semisup.Rule
}

// Name formats the combo as the paper does.
func (c Combo) Name() string {
	algo := map[semisup.Algorithm]string{
		semisup.AlgoKMeans:    "K-Means",
		semisup.AlgoMeanShift: "Mean-Shift",
		semisup.AlgoBirch:     "Birch",
	}[c.Algo]
	rule := map[semisup.Rule]string{
		semisup.RuleVote: "VOTE",
		semisup.RuleLR:   "LR",
		semisup.RuleRF:   "RF",
	}[c.Rule]
	return algo + "-" + rule
}

// Combos returns the nine clustering x labelling configurations of the
// paper's Section 4, in Table 4's order.
func Combos() []Combo {
	var out []Combo
	for _, a := range []semisup.Algorithm{semisup.AlgoKMeans, semisup.AlgoMeanShift, semisup.AlgoBirch} {
		for _, r := range []semisup.Rule{semisup.RuleVote, semisup.RuleLR, semisup.RuleRF} {
			out = append(out, Combo{a, r})
		}
	}
	return out
}

// evalMetrics computes the triple from truth and predictions.
func evalMetrics(truth, pred []int) (Metrics, error) {
	c, err := metrics.NewConfusion(truth, pred, sparse.NumKernelFormats)
	if err != nil {
		return Metrics{}, err
	}
	return Metrics{MCC: c.MCC(), ACC: c.Accuracy(), F1: c.F1Weighted()}, nil
}

// ---------------------------------------------------------------------
// Table 3: best-format distribution per GPU and the common subset.

// Table3Row is one architecture's class distribution.
type Table3Row struct {
	Arch   string
	Counts [sparse.NumKernelFormats]int
	Common [sparse.NumKernelFormats]int
	Total  int
	// MaxSlowdown is the worst CSR-vs-best ratio with the matrix name,
	// the paper's Section 2.2 anecdote.
	MaxSlowdown     float64
	MaxSlowdownName string
}

// Table3 computes the label distributions.
func Table3(env *Env) []Table3Row {
	rows := make([]Table3Row, 0, len(env.Archs))
	for _, a := range env.Archs {
		d := env.Corpus.PerArch[a.Name]
		var r Table3Row
		r.Arch = a.Name
		r.Counts = d.ClassCounts()
		r.Common = env.Common[a.Name].ClassCounts()
		r.Total = d.Len()
		ratio, row := metrics.MaxSlowdown(d.Times)
		r.MaxSlowdown = ratio
		r.MaxSlowdownName = d.Names[row]
		rows = append(rows, r)
	}
	return rows
}

// ---------------------------------------------------------------------
// Table 4: semi-supervised local evaluation.

// Table4Row is one (architecture, combo) result at its best NC.
type Table4Row struct {
	Arch string
	Algo string
	NC   int
	M    Metrics
}

// Table4 cross-validates all nine combos on each architecture, sweeping
// NC for the K-driven algorithms and reporting the best-MCC setting.
// Every (arch, combo, NC) triple is an independent CV run, so the grid
// goes through the scheduler; the best-NC reduction walks the sweep in
// its canonical order afterwards, exactly as the sequential loop did.
func Table4(ctx context.Context, env *Env, opt Options) ([]Table4Row, error) {
	type cell struct {
		arch  string
		d     *dataset.ArchData
		combo Combo
		nc    int
	}
	var cells []cell
	for _, a := range env.Archs {
		d := env.Corpus.PerArch[a.Name]
		for _, combo := range Combos() {
			sweep := opt.NCSweep
			if combo.Algo == semisup.AlgoMeanShift {
				sweep = []int{0} // Mean-Shift finds its own NC
			}
			for _, nc := range sweep {
				cells = append(cells, cell{a.Name, d, combo, nc})
			}
		}
	}
	type result struct {
		m     Metrics
		avgNC int
	}
	results := make([]result, len(cells))
	err := runCells(ctx, "table4", len(cells), opt, func(ctx context.Context, i int) error {
		c := cells[i]
		ctx, sp := obs.Start(ctx, "cell/"+c.arch+"/"+c.combo.Name())
		defer sp.End()
		m, avgNC, err := cvSemi(ctx, c.d, c.combo, c.nc, opt)
		if err != nil {
			return fmt.Errorf("eval: Table4 %s/%s: %w", c.arch, c.combo.Name(), err)
		}
		results[i] = result{m, avgNC}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Table4Row
	for i := 0; i < len(cells); {
		best := Table4Row{Arch: cells[i].arch, Algo: cells[i].combo.Name(), M: Metrics{MCC: -2}}
		for ; i < len(cells) && cells[i].arch == best.Arch && cells[i].combo.Name() == best.Algo; i++ {
			if results[i].m.MCC > best.M.MCC {
				best.M = results[i].m
				best.NC = results[i].avgNC
			}
		}
		rows = append(rows, best)
	}
	return rows, nil
}

// cvSemi cross-validates one combo at one NC on one architecture's data,
// returning mean metrics and the mean cluster count.
func cvSemi(ctx context.Context, d *dataset.ArchData, combo Combo, nc int, opt Options) (Metrics, int, error) {
	ctx, span := obs.Start(ctx, "cv/"+combo.Name())
	defer span.End()
	folds := StratifiedFolds(d.Labels, opt.Folds, opt.Seed)
	var truth, pred []int
	ncSum := 0
	for f, test := range folds {
		train := trainTestSplit(d.Len(), test)
		cfg := semisup.Config{
			Algorithm:   combo.Algo,
			Rule:        combo.Rule,
			NumClusters: nc,
			Seed:        opt.Seed + int64(f),
		}
		m, err := semisup.TrainCtx(ctx, gather(d.Feats, train), gatherInts(d.Labels, train),
			sparse.NumKernelFormats, cfg)
		if err != nil {
			return Metrics{}, 0, err
		}
		ncSum += m.NumClusters()
		truth = append(truth, gatherInts(d.Labels, test)...)
		pred = append(pred, m.PredictAll(gather(d.Feats, test))...)
	}
	m, err := evalMetrics(truth, pred)
	return m, ncSum / len(folds), err
}

// ---------------------------------------------------------------------
// Table 5: semi-supervised transfer across architecture pairs.

// Table5Row is one (source -> target, combo) result at the three
// retraining fractions 0%, 25%, 50%.
type Table5Row struct {
	Pair string
	Algo string
	NC   int
	M    [3]Metrics
}

// RetrainFractions are the retraining levels of Tables 5 and 7.
var RetrainFractions = [3]float64{0, 0.25, 0.50}

// TransferPairs returns the six ordered (source, target) architecture
// pairs in Table 5's order.
func TransferPairs(archs []gpusim.Arch) [][2]gpusim.Arch {
	var out [][2]gpusim.Arch
	for _, src := range archs {
		for _, tgt := range archs {
			if src.Name != tgt.Name {
				out = append(out, [2]gpusim.Arch{src, tgt})
			}
		}
	}
	return out
}

// Table5 evaluates all combos on every transfer pair over the common
// subset: the model is trained with source labels, then incrementally
// relabelled with growing fractions of target labels. The (pair, combo)
// cells run on the scheduler; each cell is one full CV and fills only
// its own row.
func Table5(ctx context.Context, env *Env, opt Options) ([]Table5Row, error) {
	type cell struct {
		pair  [2]gpusim.Arch
		combo Combo
	}
	var cells []cell
	for _, pair := range TransferPairs(env.Archs) {
		for _, combo := range Combos() {
			cells = append(cells, cell{pair, combo})
		}
	}
	rows := make([]Table5Row, len(cells))
	err := runCells(ctx, "table5", len(cells), opt, func(ctx context.Context, i int) error {
		c := cells[i]
		ctx, sp := obs.Start(ctx, fmt.Sprintf("cell/%s-%s/%s", c.pair[0].Name, c.pair[1].Name, c.combo.Name()))
		defer sp.End()
		row, err := transferSemiCell(ctx, env, c.pair, c.combo, opt)
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// transferSemiCell runs one (pair, combo) cell of Table 5.
func transferSemiCell(ctx context.Context, env *Env, pair [2]gpusim.Arch, combo Combo, opt Options) (Table5Row, error) {
	src := env.Common[pair[0].Name]
	tgt := env.Common[pair[1].Name]
	row := Table5Row{
		Pair: fmt.Sprintf("%s to %s", pair[0].Name, pair[1].Name),
		Algo: combo.Name(),
	}
	folds := StratifiedFolds(tgt.Labels, opt.Folds, opt.Seed)
	var truth [3][]int
	var pred [3][]int
	ncSum := 0
	for f, test := range folds {
		train := trainTestSplit(tgt.Len(), test)
		cfg := semisup.Config{
			Algorithm:   combo.Algo,
			Rule:        combo.Rule,
			NumClusters: opt.TransferNC,
			Seed:        opt.Seed + int64(f),
		}
		// Train with SOURCE labels: the portable model.
		m, err := semisup.TrainCtx(ctx, gather(src.Feats, train), gatherInts(src.Labels, train),
			sparse.NumKernelFormats, cfg)
		if err != nil {
			return Table5Row{}, fmt.Errorf("eval: Table5 %s/%s: %w", row.Pair, combo.Name(), err)
		}
		ncSum += m.NumClusters()
		testX := gather(tgt.Feats, test)
		testY := gatherInts(tgt.Labels, test)
		for fi, frac := range RetrainFractions {
			if frac > 0 {
				take := int(frac * float64(len(train)))
				if take < 1 {
					take = 1
				}
				sub := train[:take]
				if err := m.Relabel(gather(tgt.Feats, sub), gatherInts(tgt.Labels, sub)); err != nil {
					return Table5Row{}, err
				}
			}
			truth[fi] = append(truth[fi], testY...)
			pred[fi] = append(pred[fi], m.PredictAll(testX)...)
		}
	}
	row.NC = ncSum / len(folds)
	for fi := range RetrainFractions {
		m, err := evalMetrics(truth[fi], pred[fi])
		if err != nil {
			return Table5Row{}, err
		}
		row.M[fi] = m
	}
	return row, nil
}

// ---------------------------------------------------------------------
// Tables 6 and 7: supervised baselines, local and transfer.

// SupervisedModels returns the paper's supervised baselines, in Table
// 6's order. The CNN is built separately since it consumes images.
func SupervisedModels(seed int64) []struct {
	Name  string
	Build func() classify.Classifier
} {
	return []struct {
		Name  string
		Build func() classify.Classifier
	}{
		{"DT", func() classify.Classifier { return classify.NewTree(10) }},
		{"RF", func() classify.Classifier { return classify.NewForest(seed) }},
		{"SVM", func() classify.Classifier { return classify.NewSVM(seed) }},
		{"KNN", func() classify.Classifier { return classify.NewKNN(5) }},
		{"XGBoost", func() classify.Classifier { return classify.NewGBoost() }},
	}
}

// Table6Row is one (architecture, model) local result.
type Table6Row struct {
	Arch  string
	Model string
	M     SupMetrics
}

// Table6 cross-validates the supervised baselines (plus the CNN) on
// each architecture. A first scheduler pass fits the per-architecture
// feature scaling; a second runs the (arch, model) CV cells.
func Table6(ctx context.Context, env *Env, opt Options) ([]Table6Row, error) {
	type prep struct {
		d      *dataset.ArchData
		feats  [][]float64
		images [][]float64
	}
	preps := make([]prep, len(env.Archs))
	err := runCells(ctx, "table6/prep", len(env.Archs), opt, func(ctx context.Context, i int) error {
		d := env.Corpus.PerArch[env.Archs[i].Name]
		feats, err := scaledFeatures(d)
		if err != nil {
			return err
		}
		preps[i] = prep{d: d, feats: feats, images: env.ImagesFor(d)}
		return nil
	})
	if err != nil {
		return nil, err
	}

	specs := table6Models(opt)
	type cell struct {
		arch string
		prep prep
		spec supervisedSpec
	}
	var cells []cell
	for ai, a := range env.Archs {
		for _, spec := range specs {
			cells = append(cells, cell{a.Name, preps[ai], spec})
		}
	}
	rows := make([]Table6Row, len(cells))
	err = runCells(ctx, "table6", len(cells), opt, func(ctx context.Context, i int) error {
		c := cells[i]
		feats := c.prep.feats
		if c.spec.OnImages {
			feats = c.prep.images
		}
		m, err := cvSupervised(ctx, c.prep.d, feats, c.spec.Name, c.spec.Build, opt)
		if err != nil {
			return fmt.Errorf("eval: Table6 %s/%s: %w", c.arch, c.spec.Name, err)
		}
		rows[i] = Table6Row{Arch: c.arch, Model: c.spec.Name, M: m}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// supervisedSpec names one supervised model family of Tables 6, 7 and 9.
type supervisedSpec struct {
	Name     string
	Build    func() classify.Classifier
	OnImages bool
}

// table6Models returns the Table 6 model list: the five classical
// baselines plus the CNN over density images, in the paper's order.
func table6Models(opt Options) []supervisedSpec {
	var specs []supervisedSpec
	for _, s := range SupervisedModels(opt.Seed) {
		specs = append(specs, supervisedSpec{Name: s.Name, Build: s.Build})
	}
	specs = append(specs, supervisedSpec{
		Name: "CNN",
		Build: func() classify.Classifier {
			c := classify.NewCNN(opt.Seed)
			c.Epochs = opt.CNNEpochs
			return c
		},
		OnImages: true,
	})
	return specs
}

// scaledFeatures applies the paper's skew + min-max stages (no PCA, so
// tree models keep interpretable axes) fitted on the whole arch dataset.
// Fitting scaling on train folds only changes results negligibly and
// the paper normalises per dataset.
func scaledFeatures(d *dataset.ArchData) ([][]float64, error) {
	chain, err := fitScaler(d.Feats)
	if err != nil {
		return nil, err
	}
	out := make([][]float64, d.Len())
	for i, r := range d.Feats {
		out[i] = chain.Transform(r)
	}
	return out, nil
}

// cvSupervised cross-validates one model family over the rows of d using
// the supplied feature representation. One span covers the whole CV of
// the family; per-Fit wall times go to classify.Timed's histograms.
func cvSupervised(ctx context.Context, d *dataset.ArchData, feats [][]float64, name string, build func() classify.Classifier, opt Options) (SupMetrics, error) {
	_, span := obs.Start(ctx, "train/"+name)
	defer span.End()
	folds := StratifiedFolds(d.Labels, opt.Folds, opt.Seed)
	var truth, pred []int
	var times [][]float64
	for _, test := range folds {
		train := trainTestSplit(d.Len(), test)
		clf := classify.NewTimed(name, build())
		if err := clf.Fit(gather(feats, train), gatherInts(d.Labels, train), sparse.NumKernelFormats); err != nil {
			return SupMetrics{}, err
		}
		preds := classify.PredictAll(clf, gather(feats, test))
		for k, i := range test {
			truth = append(truth, d.Labels[i])
			pred = append(pred, preds[k])
			times = append(times, d.Times[i])
		}
	}
	return supMetrics(truth, pred, times)
}

func supMetrics(truth, pred []int, times [][]float64) (SupMetrics, error) {
	c, err := metrics.NewConfusion(truth, pred, sparse.NumKernelFormats)
	if err != nil {
		return SupMetrics{}, err
	}
	sp, err := metrics.Speedups(times, pred)
	if err != nil {
		return SupMetrics{}, err
	}
	return SupMetrics{
		ACC: c.Accuracy(), F1: c.F1Weighted(), MCC: c.MCC(),
		GT: sp.GT, CSR: sp.CSR, Threshold: sp.Threshold,
	}, nil
}

// Table7Row is one (pair, model) transfer result at the three
// retraining fractions.
type Table7Row struct {
	Pair  string
	Model string
	M     [3]SupMetrics
}

// Table7Pairs returns the five transfer pairs of Table 7 (the paper
// omits Volta to Pascal as near-identical to Turing to Pascal).
func Table7Pairs(archs []gpusim.Arch) [][2]gpusim.Arch {
	all := TransferPairs(archs)
	out := all[:0:0]
	for _, p := range all {
		if p[0].Name == "Volta" && p[1].Name == "Pascal" {
			continue
		}
		out = append(out, p)
	}
	return out
}

// Table7 evaluates the supervised baselines in the transfer setting:
// models are trained on source labels, with a fraction of the training
// matrices relabelled by target benchmarking. A scheduler pass fits the
// per-pair target feature scaling, then the (pair, model) CV cells fan
// out.
func Table7(ctx context.Context, env *Env, opt Options) ([]Table7Row, error) {
	pairs := Table7Pairs(env.Archs)
	feats := make([][][]float64, len(pairs))
	err := runCells(ctx, "table7/prep", len(pairs), opt, func(ctx context.Context, i int) error {
		// Identical features; scaling fit on the pair's common subset.
		f, err := scaledFeatures(env.Common[pairs[i][1].Name])
		if err != nil {
			return err
		}
		feats[i] = f
		return nil
	})
	if err != nil {
		return nil, err
	}

	type cell struct {
		pair  [2]gpusim.Arch
		feats [][]float64
		spec  supervisedSpec
	}
	var cells []cell
	for pi, pair := range pairs {
		for _, s := range SupervisedModels(opt.Seed) {
			cells = append(cells, cell{pair, feats[pi], supervisedSpec{Name: s.Name, Build: s.Build}})
		}
	}
	rows := make([]Table7Row, len(cells))
	err = runCells(ctx, "table7", len(cells), opt, func(ctx context.Context, i int) error {
		c := cells[i]
		row, err := transferSupervisedCell(ctx, env, c.pair, c.feats, c.spec, opt)
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// transferSupervisedCell runs one (pair, model) cell of Table 7.
func transferSupervisedCell(ctx context.Context, env *Env, pair [2]gpusim.Arch, feats [][]float64, spec supervisedSpec, opt Options) (Table7Row, error) {
	src := env.Common[pair[0].Name]
	tgt := env.Common[pair[1].Name]
	row := Table7Row{
		Pair:  fmt.Sprintf("%s to %s", pair[0].Name, pair[1].Name),
		Model: spec.Name,
	}
	_, msp := obs.Start(ctx, fmt.Sprintf("cell/%s-%s/%s", pair[0].Name, pair[1].Name, spec.Name))
	defer msp.End()
	folds := StratifiedFolds(tgt.Labels, opt.Folds, opt.Seed)
	var truth [3][]int
	var pred [3][]int
	var times [3][][]float64
	for _, test := range folds {
		train := trainTestSplit(tgt.Len(), test)
		for fi, frac := range RetrainFractions {
			// Labels: source, with the first frac of the training
			// rows re-benchmarked on the target.
			y := gatherInts(src.Labels, train)
			take := int(frac * float64(len(train)))
			for k := 0; k < take; k++ {
				y[k] = tgt.Labels[train[k]]
			}
			clf := classify.NewTimed(spec.Name, spec.Build())
			if err := clf.Fit(gather(feats, train), y, sparse.NumKernelFormats); err != nil {
				return Table7Row{}, fmt.Errorf("eval: Table7 %s/%s: %w", row.Pair, spec.Name, err)
			}
			preds := classify.PredictAll(clf, gather(feats, test))
			for k, i := range test {
				truth[fi] = append(truth[fi], tgt.Labels[i])
				pred[fi] = append(pred[fi], preds[k])
				times[fi] = append(times[fi], tgt.Times[i])
			}
		}
	}
	for fi := range RetrainFractions {
		m, err := supMetrics(truth[fi], pred[fi], times[fi])
		if err != nil {
			return Table7Row{}, err
		}
		row.M[fi] = m
	}
	return row, nil
}

// ---------------------------------------------------------------------
// Table 8: conversion cost and benchmarking time.

// Table8 summarises the format conversion costs and the modelled
// per-architecture benchmarking cost in hours.
type Table8Result struct {
	// ConversionCost[f] is the cost of converting to kernel format f in
	// CSR-SpMV units.
	ConversionCost map[string]float64
	// Hours[arch] is the modelled total benchmarking time.
	Hours map[string]float64
}

// Table8 computes the benchmark cost model over the corpus.
func Table8(env *Env) Table8Result {
	r := Table8Result{
		ConversionCost: map[string]float64{},
		Hours:          map[string]float64{},
	}
	for _, f := range sparse.KernelFormats() {
		if f == sparse.FormatCSR {
			continue
		}
		r.ConversionCost[f.String()] = gpusim.ConversionCost(f)
	}
	for _, a := range env.Archs {
		r.Hours[a.Name] = a.BenchmarkingCost(env.Corpus.Profiles) / 3600
	}
	return r
}

// ---------------------------------------------------------------------
// Table 9: training times.

// Table9Row is one model's wall-clock training time at the three
// transfer-data levels.
type Table9Row struct {
	Model string
	Secs  [3]float64
}

// Table9 measures actual training wall-clock on this machine for each
// model at dataset sizes n, 1.25n and 1.5n (the paper's 0/25/50%
// additional transfer data). Absolute values are hardware and
// implementation specific — the paper says the same — but the ordering
// (CNN >> classical >> K-Means labelling) is the reproducible claim.
// Table9 deliberately stays off the cell scheduler: its rows ARE
// wall-clock timings, and co-scheduling the fits would make each row
// measure contention instead of the model's training cost.
func Table9(ctx context.Context, env *Env, opt Options) ([]Table9Row, error) {
	d := env.Common[env.Archs[0].Name]
	feats, err := scaledFeatures(d)
	if err != nil {
		return nil, err
	}
	images := env.ImagesFor(d)
	n := d.Len()

	sizes := [3]int{n, n + n/4, n + n/2}
	// Build the enlarged sets by repeating rows deterministically.
	makeSet := func(base [][]float64, size int) ([][]float64, []int) {
		x := make([][]float64, size)
		y := make([]int, size)
		for i := 0; i < size; i++ {
			x[i] = base[i%n]
			y[i] = d.Labels[i%n]
		}
		return x, y
	}

	var rows []Table9Row
	for _, spec := range SupervisedModels(opt.Seed) {
		row := Table9Row{Model: spec.Name}
		_, msp := obs.Start(ctx, "train/"+spec.Name)
		for si, size := range sizes {
			x, y := makeSet(feats, size)
			clf := spec.Build()
			t := obs.StartTimer("train/" + spec.Name)
			if err := clf.Fit(x, y, sparse.NumKernelFormats); err != nil {
				msp.End()
				return nil, fmt.Errorf("eval: Table9 %s: %w", spec.Name, err)
			}
			row.Secs[si] = t.Stop().Seconds()
		}
		msp.End()
		rows = append(rows, row)
	}
	// CNN.
	{
		row := Table9Row{Model: "CNN"}
		_, msp := obs.Start(ctx, "train/CNN")
		for si, size := range sizes {
			x, y := makeSet(images, size)
			c := classify.NewCNN(opt.Seed)
			c.Epochs = opt.CNNEpochs
			t := obs.StartTimer("train/CNN")
			if err := c.Fit(x, y, sparse.NumKernelFormats); err != nil {
				msp.End()
				return nil, fmt.Errorf("eval: Table9 CNN: %w", err)
			}
			row.Secs[si] = t.Stop().Seconds()
		}
		msp.End()
		rows = append(rows, row)
	}
	// Semi-supervised variants: the transfer-time cost is clustering once
	// plus relabelling, so we time Train at the base size and Relabel for
	// the increments.
	for _, rule := range []semisup.Rule{semisup.RuleVote, semisup.RuleLR, semisup.RuleRF} {
		row := Table9Row{Model: "K-Means-" + map[semisup.Rule]string{
			semisup.RuleVote: "VOTE", semisup.RuleLR: "LR", semisup.RuleRF: "RF"}[rule]}
		mctx, msp := obs.Start(ctx, "train/"+row.Model)
		for si, size := range sizes {
			x, y := makeSet(d.Feats, size)
			cfg := semisup.Config{Algorithm: semisup.AlgoKMeans, Rule: rule,
				NumClusters: opt.TransferNC, Seed: opt.Seed}
			t := obs.StartTimer("train/" + row.Model)
			if _, err := semisup.TrainCtx(mctx, x, y, sparse.NumKernelFormats, cfg); err != nil {
				msp.End()
				return nil, fmt.Errorf("eval: Table9 %s: %w", row.Model, err)
			}
			row.Secs[si] = t.Stop().Seconds()
		}
		msp.End()
		rows = append(rows, row)
	}
	return rows, nil
}
