package eval

import (
	"math/rand"
	"testing"

	"repro/internal/classify"
)

func TestSelectFeaturesFindsInformativeSubset(t *testing.T) {
	// 8 features; only 1 and 5 carry signal (together they determine the
	// class), the rest are noise. Forward selection must pick both and
	// mostly ignore the noise.
	rng := rand.New(rand.NewSource(1))
	n := 400
	feats := make([][]float64, n)
	labels := make([]int, n)
	for i := range feats {
		row := make([]float64, 8)
		for j := range row {
			row[j] = rng.Float64()
		}
		cls := 0
		if row[1] > 0.5 {
			cls++
		}
		if row[5] > 0.5 {
			cls += 2
		}
		feats[i] = row
		labels[i] = cls
	}
	build := func() classify.Classifier { return classify.NewTree(6) }
	sel, score, err := SelectFeatures(feats, labels, build, 4, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	has := map[int]bool{}
	for _, f := range sel {
		has[f] = true
	}
	if !has[1] || !has[5] {
		t.Errorf("selection %v missed an informative feature", sel)
	}
	if score < 0.9 {
		t.Errorf("selected-subset MCC %.3f", score)
	}
	if len(sel) > 4 {
		t.Errorf("selection exceeded maxFeatures: %v", sel)
	}
}

func TestSelectFeaturesValidation(t *testing.T) {
	build := func() classify.Classifier { return classify.NewKNN(3) }
	if _, _, err := SelectFeatures(nil, nil, build, 2, 2, 1); err == nil {
		t.Error("empty input accepted")
	}
	if _, _, err := SelectFeatures([][]float64{{1}}, []int{0, 1}, build, 2, 2, 1); err == nil {
		t.Error("mismatched labels accepted")
	}
}

func TestSelectFeaturesOnCorpus(t *testing.T) {
	// On the real corpus, a small selected subset should reach a
	// meaningful MCC for KNN (the paper's point: a tuned subset per
	// model is enough).
	env := getEnv(t)
	d := env.Corpus.PerArch["Turing"]
	feats, err := scaledFeatures(d)
	if err != nil {
		t.Fatal(err)
	}
	build := func() classify.Classifier { return classify.NewKNN(5) }
	sel, score, err := SelectFeatures(feats, d.Labels, build, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) == 0 || score < 0.2 {
		t.Errorf("corpus selection %v scored %.3f", sel, score)
	}
	t.Logf("KNN subset %v, MCC %.3f", sel, score)
}
