package eval

import (
	"context"
	"strings"
	"testing"
)

// TestPaperHeadlineClaims checks, at reduced scale, the qualitative
// claims the reproduction must preserve (see DESIGN.md section 4):
//
//  1. the best semi-supervised configuration is competitive with the
//     supervised models in the local setting;
//  2. in the transfer setting at 0% retraining, K-Means is comparable
//     to the supervised classifiers;
//  3. supervised models gain more from retraining than the
//     semi-supervised ones (they "depend more on retraining").
func TestPaperHeadlineClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("integration comparison in -short mode")
	}
	env := getEnv(t)
	opt := QuickOptions()
	opt.NCSweep = []int{24, 48}

	// Claim 1: local parity.
	t4, err := Table4(context.Background(), env, opt)
	if err != nil {
		t.Fatal(err)
	}
	t6, err := Table6(context.Background(), env, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, arch := range []string{"Pascal", "Volta", "Turing"} {
		semiBest, supBest := -2.0, -2.0
		for _, r := range t4 {
			if r.Arch == arch && r.M.MCC > semiBest {
				semiBest = r.M.MCC
			}
		}
		for _, r := range t6 {
			if r.Arch == arch && r.Model != "CNN" && r.M.MCC > supBest {
				supBest = r.M.MCC
			}
		}
		if semiBest < 0.5*supBest {
			t.Errorf("%s: best semi-supervised MCC %.3f not competitive with supervised %.3f",
				arch, semiBest, supBest)
		}
	}

	// Claims 2 and 3: transfer behaviour.
	opt.Folds = 2
	t5, err := Table5(context.Background(), env, opt)
	if err != nil {
		t.Fatal(err)
	}
	t7, err := Table7(context.Background(), env, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Mean ACC at 0% and the retraining gain, per approach.
	semi0, semi50, nSemi := 0.0, 0.0, 0
	for _, r := range t5 {
		if !strings.HasPrefix(r.Algo, "K-Means") {
			continue
		}
		semi0 += r.M[0].ACC
		semi50 += r.M[2].ACC
		nSemi++
	}
	sup0, sup50, nSup := 0.0, 0.0, 0
	for _, r := range t7 {
		sup0 += r.M[0].ACC
		sup50 += r.M[2].ACC
		nSup++
	}
	semi0 /= float64(nSemi)
	semi50 /= float64(nSemi)
	sup0 /= float64(nSup)
	sup50 /= float64(nSup)

	if semi0 < sup0-0.12 {
		t.Errorf("claim 2: K-Means at 0%% retraining (ACC %.3f) far below supervised (%.3f)",
			semi0, sup0)
	}
	semiGain := semi50 - semi0
	supGain := sup50 - sup0
	if supGain < semiGain-0.05 {
		t.Errorf("claim 3: supervised retraining gain %.3f not larger than semi-supervised %.3f",
			supGain, semiGain)
	}
	t.Logf("local parity checked; transfer: semi 0%%=%.3f gain=%.3f, sup 0%%=%.3f gain=%.3f",
		semi0, semiGain, sup0, supGain)
}
