// The parallel experiment scheduler. The cross-validated grids behind
// Tables 4-7 are embarrassingly parallel: every (architecture x model x
// NC x fold) evaluation depends only on the immutable Env and on seeds
// derived from opt.Seed, never on a sibling cell. Each table therefore
// enumerates its independent cells as explicit job values in canonical
// (render) order, fans them out over a bounded obs-instrumented worker
// pool, and reduces the results back positionally.
//
// Determinism: cells write results only into their own index of a
// pre-sized slice, per-fold seeds are opt.Seed + fold exactly as in the
// sequential code, and the reduction walks cells in the enumeration
// order, so the rendered tables are byte-identical whatever the worker
// count or goroutine interleaving ("-workers 8" equals "-workers 1"
// equals the pre-scheduler sequential output; TestTablesDeterministic
// holds this). On failure the scheduler cancels the remaining cells and
// reports the lowest-indexed completed failure, which again does not
// depend on the interleaving for deterministic cell errors.
package eval

import (
	"context"

	"repro/internal/obs"
)

// workerCount resolves the scheduler's worker budget: Options.Workers
// when set, otherwise the global obs budget (GOMAXPROCS, or the
// -workers cap installed via obs.SetMaxWorkers).
func (o Options) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return obs.MaxWorkers()
}

// runCells runs the n independent cells of one table's grid on the
// scheduler. Each cell must confine its writes to its own result slot;
// runCells provides the fan-out, bounded workers, obs span + metrics,
// context cancellation and first-error propagation.
func runCells(ctx context.Context, table string, n int, opt Options, cell func(ctx context.Context, i int) error) error {
	workers := opt.workerCount()
	if workers > n {
		workers = n
	}
	ctx, span := obs.Start(ctx, "sched/"+table)
	defer span.End()
	span.SetMetric("cells", float64(n))
	span.SetMetric("workers", float64(workers))
	return obs.ParallelForErr(ctx, n, workers, cell)
}
