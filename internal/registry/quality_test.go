package registry

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/serve"
)

// loadedRegistry builds a one-arch registry with a live artifact, the
// precondition for a quality window to exist.
func loadedRegistry(t *testing.T) *Registry {
	t.Helper()
	dir := t.TempDir()
	path := saveArtifact(t, dir, "live.gob", 8, 1)
	r := New()
	if err := r.Configure("turing", path); err != nil {
		t.Fatal(err)
	}
	if err := r.LoadAll(); err != nil {
		t.Fatal(err)
	}
	return r
}

// fullOutcome builds a full-sweep outcome: predicted label pred,
// measured best label best, with the served format regret x slower
// than the best.
func fullOutcome(pred, best int, regret float64) serve.Outcome {
	return serve.Outcome{
		Predicted:  serve.Prediction{Label: pred, Format: serve.KernelFormatNames()[pred]},
		BestLabel:  best,
		BestFormat: serve.KernelFormatNames()[best],
		Regret:     regret,
		ServedMs:   regret, // bestMs = 1
		Full:       true,
	}
}

func TestQualityWindowAccuracyRegretConfusion(t *testing.T) {
	r := loadedRegistry(t)

	// Three hits at the oracle pick, one miss 2x slower, one
	// served-only outcome.
	for i := 0; i < 3; i++ {
		r.RecordOutcome("turing", fullOutcome(1, 1, 1.0))
	}
	r.RecordOutcome("turing", fullOutcome(2, 1, 2.0))
	r.RecordOutcome("turing", serve.Outcome{
		Predicted: serve.Prediction{Label: 1, Format: "CSR"},
		BestLabel: -1, ServedMs: 5,
	})

	report := r.QualityReport().(QualityReportData)
	if len(report.Arches) != 1 {
		t.Fatalf("report arches = %d, want 1", len(report.Arches))
	}
	ar := report.Arches[0]
	if ar.Arch != "turing" || ar.ModelHash == "" {
		t.Fatalf("report identity = %s/%s", ar.Arch, ar.ModelHash)
	}
	if ar.Accepted != 5 || ar.Samples != 4 || ar.ServedOnly != 1 {
		t.Fatalf("counts = accepted %d samples %d servedOnly %d", ar.Accepted, ar.Samples, ar.ServedOnly)
	}
	if ar.Accuracy != 0.75 {
		t.Fatalf("accuracy = %v, want 0.75", ar.Accuracy)
	}
	if ar.RegretP50 != 1.0 || ar.RegretP99 != 2.0 {
		t.Fatalf("regret p50 %v p99 %v, want 1.0 / 2.0", ar.RegretP50, ar.RegretP99)
	}
	wantGM := math.Exp(math.Log(2.0) / 4)
	if math.Abs(ar.RegretGM-wantGM) > 1e-12 {
		t.Fatalf("regret GM = %v, want %v", ar.RegretGM, wantGM)
	}
	if ar.Confusion[1][1] != 3 || ar.Confusion[2][1] != 1 {
		t.Fatalf("confusion = %v", ar.Confusion)
	}
	wantMean := (1.0 + 1.0 + 1.0 + 2.0 + 5.0) / 5
	if math.Abs(ar.MeanServedMs-wantMean) > 1e-12 {
		t.Fatalf("mean served = %v, want %v", ar.MeanServedMs, wantMean)
	}

	// Unknown arches drop silently; the default arch absorbs "".
	r.RecordOutcome("volta", fullOutcome(0, 0, 1.0))
	r.RecordOutcome("", fullOutcome(0, 0, 1.0))
	ar = r.QualityReport().(QualityReportData).Arches[0]
	if ar.Accepted != 6 {
		t.Fatalf("accepted after default-arch outcome = %d, want 6", ar.Accepted)
	}
}

func TestQualityWindowEvictionAndSwapReset(t *testing.T) {
	r := loadedRegistry(t)
	r.SetQualityOptions(QualityOptions{WindowSize: 4})
	// Options apply on the next install — force one by promoting a
	// shadow onto the arch.
	dir := t.TempDir()
	cand := saveArtifact(t, dir, "cand.gob", 6, 2)
	if err := r.ConfigureShadow("turing", cand); err != nil {
		t.Fatal(err)
	}
	if err := r.LoadAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Promote("turing"); err != nil {
		t.Fatal(err)
	}

	// Fill past the window: 6 outcomes into 4 slots. The two oldest
	// (misses) evict, leaving 4 hits → accuracy 1.0.
	for i := 0; i < 2; i++ {
		r.RecordOutcome("turing", fullOutcome(0, 1, 3.0))
	}
	for i := 0; i < 4; i++ {
		r.RecordOutcome("turing", fullOutcome(1, 1, 1.0))
	}
	ar := r.QualityReport().(QualityReportData).Arches[0]
	if ar.Samples != 4 || ar.Accuracy != 1.0 {
		t.Fatalf("windowed samples %d accuracy %v, want 4 / 1.0", ar.Samples, ar.Accuracy)
	}
	if ar.Accepted != 6 {
		t.Fatalf("accepted = %d, want 6 (eviction must not shrink the cumulative count)", ar.Accepted)
	}
	if ar.Confusion[0][1] != 0 {
		t.Fatalf("evicted outcomes still in the confusion grid: %v", ar.Confusion)
	}

	// A live swap rebuilds the window empty.
	rewriteArtifact(t, r, "turing")
	ar = r.QualityReport().(QualityReportData).Arches[0]
	if ar.Accepted != 0 || ar.Samples != 0 {
		t.Fatalf("window survived a live swap: %+v", ar)
	}
}

// rewriteArtifact replaces arch's live artifact file with a different
// model and reloads, forcing a hash-change swap.
func rewriteArtifact(t *testing.T, r *Registry, arch string) {
	t.Helper()
	var path string
	for _, st := range r.Status() {
		if st.Arch == arch {
			path = st.Source
		}
	}
	if path == "" {
		t.Fatalf("no source path for %s", arch)
	}
	saveArtifact(t, filepath.Dir(path), filepath.Base(path), 5, 9)
	if _, err := r.Reload(); err != nil {
		t.Fatal(err)
	}
}

func TestShadowMeasuredTallies(t *testing.T) {
	dir := t.TempDir()
	live := saveArtifact(t, dir, "live.gob", 8, 1)
	cand := saveArtifact(t, dir, "cand.gob", 6, 2)
	r := New()
	if err := r.Configure("turing", live); err != nil {
		t.Fatal(err)
	}
	if err := r.ConfigureShadow("turing", cand); err != nil {
		t.Fatal(err)
	}
	if err := r.LoadAll(); err != nil {
		t.Fatal(err)
	}

	// Candidate measured faster twice, slower once, plus one outcome
	// with no candidate time (ignored by the measured tallies).
	mk := func(servedMs, candMs float64) serve.Outcome {
		o := fullOutcome(1, 1, servedMs) // bestMs = 1
		o.ServedMs = servedMs
		o.Regret = servedMs
		o.HasCandidate = true
		o.Candidate = serve.Prediction{Label: 2, Format: "ELL"}
		o.CandidateMs = candMs
		return o
	}
	r.RecordOutcome("turing", mk(2.0, 1.0))
	r.RecordOutcome("turing", mk(2.0, 1.0))
	r.RecordOutcome("turing", mk(1.0, 4.0))
	r.RecordOutcome("turing", mk(2.0, 0)) // candidate pick not timed

	report := r.ShadowReport().(ShadowReportData)
	if len(report.Arches) != 1 {
		t.Fatalf("shadow arches = %d, want 1", len(report.Arches))
	}
	ar := report.Arches[0]
	if ar.MeasuredScored != 3 || ar.CandidateWins != 2 || ar.LiveWins != 1 || ar.Ties != 0 {
		t.Fatalf("measured tallies = %+v", ar)
	}
	// live regrets: 2, 2, 1 → GM = (2*2*1)^(1/3); cand: 1, 1, 4 → same.
	wantGM := math.Pow(4.0, 1.0/3.0)
	if math.Abs(ar.LiveRegretGM-wantGM) > 1e-12 || math.Abs(ar.CandidateRegretGM-wantGM) > 1e-12 {
		t.Fatalf("regret GMs = %v / %v, want %v", ar.LiveRegretGM, ar.CandidateRegretGM, wantGM)
	}

	// Promotion clears the pair and with it the measured tallies.
	if _, err := r.Promote("turing"); err != nil {
		t.Fatal(err)
	}
	report = r.ShadowReport().(ShadowReportData)
	if len(report.Arches) != 0 {
		t.Fatalf("shadow report survived promotion: %+v", report.Arches)
	}
}
