package registry

import (
	"os"
	"strings"
	"testing"

	"repro/internal/serve"
)

// TestInstallShadow covers the push-rollout receiving end: pushed
// bytes become the arch's shadow candidate (spooled to a real path so
// reloads stay coherent), re-pushing is idempotent, corrupt bytes and
// unknown arches change nothing, and promotion flips the pushed
// candidate live.
func TestInstallShadow(t *testing.T) {
	dir := t.TempDir()
	live := saveArtifact(t, dir, "live.gob", 10, 7)
	candPath := saveArtifact(t, dir, "cand.gob", 6, 99)
	candBytes, err := os.ReadFile(candPath)
	if err != nil {
		t.Fatal(err)
	}
	wantHash := serve.HashBytes(candBytes)

	r := New()
	if err := r.Configure("Turing", live); err != nil {
		t.Fatal(err)
	}
	if err := r.LoadAll(); err != nil {
		t.Fatal(err)
	}

	// Unknown arch: refused, nothing installed.
	if _, err := r.InstallShadow("ampere", candBytes); err == nil {
		t.Error("InstallShadow accepted an unconfigured arch")
	}
	// Corrupt bytes: refused before anything is replaced.
	if _, err := r.InstallShadow("turing", []byte("not an artifact")); err == nil {
		t.Error("InstallShadow accepted undecodable bytes")
	}
	if _, ok := r.Shadow("turing"); ok {
		t.Fatal("failed installs left a shadow behind")
	}

	hash, err := r.InstallShadow("", candBytes) // "" = default arch
	if err != nil {
		t.Fatal(err)
	}
	if hash != wantHash {
		t.Fatalf("InstallShadow hash %s, want %s", hash, wantHash)
	}
	cand, ok := r.Shadow("turing")
	if !ok || cand.Hash != wantHash {
		t.Fatalf("Shadow after install = %+v ok=%v", cand, ok)
	}
	// The spool file is a real, reload-coherent path.
	if cand.Source == candPath || cand.Source == "" {
		t.Fatalf("candidate source %q should be a spool file, not the pushed path", cand.Source)
	}
	if _, err := os.Stat(cand.Source); err != nil {
		t.Fatalf("spool file missing: %v", err)
	}
	t.Cleanup(func() { os.Remove(cand.Source) })

	// Re-push of identical bytes: same hash, still one candidate.
	if again, err := r.InstallShadow("turing", candBytes); err != nil || again != wantHash {
		t.Fatalf("idempotent re-push = %s, %v", again, err)
	}

	// A reload sweep must keep the pushed candidate (content unchanged).
	changed, err := r.Reload()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range changed {
		if strings.HasPrefix(c, "shadow:") {
			t.Fatalf("reload churned the pushed candidate: %v", changed)
		}
	}

	// Shadow scoring and promotion work exactly as for disk-configured
	// candidates.
	if err := r.Ready(); err != nil {
		t.Fatalf("Ready with a pushed candidate: %v", err)
	}
	newHash, err := r.Promote("turing")
	if err != nil {
		t.Fatal(err)
	}
	if newHash != wantHash {
		t.Fatalf("Promote returned %s, want %s", newHash, wantHash)
	}
	lm, err := r.Live("turing")
	if err != nil || lm.Hash != wantHash {
		t.Fatalf("Live after promote = %+v, %v", lm, err)
	}
	if _, ok := r.Shadow("turing"); ok {
		t.Fatal("shadow slot survived promotion")
	}

	// Replacing an existing candidate: push different bytes over it.
	otherPath := saveArtifact(t, dir, "cand2.gob", 8, 5)
	otherBytes, err := os.ReadFile(otherPath)
	if err != nil {
		t.Fatal(err)
	}
	if serve.HashBytes(otherBytes) == wantHash {
		t.Fatal("test artifacts collided; vary clusters/seed")
	}
	if _, err := r.InstallShadow("turing", otherBytes); err != nil {
		t.Fatal(err)
	}
	cand2, ok := r.Shadow("turing")
	if !ok || cand2.Hash != serve.HashBytes(otherBytes) {
		t.Fatalf("replacement candidate = %+v ok=%v", cand2, ok)
	}
	t.Cleanup(func() { os.Remove(cand2.Source) })
}
