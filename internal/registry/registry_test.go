package registry

import (
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/gpusim"
	"repro/internal/serve"
	"repro/internal/sparse"
)

// corpus generates the shared labelled training set once per test
// binary (training dominates test time otherwise).
var corpus struct {
	ms   []*sparse.CSR
	best []sparse.Format
}

func labelledCorpus(t *testing.T) ([]*sparse.CSR, []sparse.Format) {
	t.Helper()
	if corpus.ms != nil {
		return corpus.ms, corpus.best
	}
	arch, _ := gpusim.ArchByName("Turing")
	items, err := dataset.Generate(dataset.Config{
		Seed: 5, BaseCount: 40, Scale: 0.3, DropELLFailures: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		meas := arch.Measure(it.Name, gpusim.NewProfile(it.Matrix))
		if !meas.Feasible() {
			continue
		}
		bf, _ := meas.BestFormat()
		corpus.ms = append(corpus.ms, it.Matrix)
		corpus.best = append(corpus.best, bf)
	}
	if len(corpus.ms) < 20 {
		t.Fatalf("labelled corpus too small: %d matrices", len(corpus.ms))
	}
	return corpus.ms, corpus.best
}

// saveArtifact trains a small semisup artifact (clusters/seed vary the
// model, and therefore the file hash) and writes it to dir/name.
func saveArtifact(t *testing.T, dir, name string, clusters int, seed int64) string {
	t.Helper()
	ms, best := labelledCorpus(t)
	sel, err := core.TrainSelector(ms, best, core.Options{NumClusters: clusters, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := serve.SaveFile(path, serve.NewSemisupArtifact(sel.Model(), "Turing")); err != nil {
		t.Fatal(err)
	}
	return path
}

func fileHash(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return serve.HashBytes(data)
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestConfigureAndLoad(t *testing.T) {
	dir := t.TempDir()
	pT := saveArtifact(t, dir, "turing.gob", 10, 7)
	pP := saveArtifact(t, dir, "pascal.gob", 8, 3)

	r := New()
	if err := r.Configure("Turing", pT); err != nil {
		t.Fatal(err)
	}
	if err := r.Configure("pascal", pP); err != nil {
		t.Fatal(err)
	}
	if err := r.Configure("turing", pT); err == nil {
		t.Error("duplicate Configure accepted")
	}
	if err := r.ConfigureShadow("ampere", pT); err == nil {
		t.Error("shadow for unconfigured arch accepted")
	}
	if r.DefaultArch() != "turing" {
		t.Errorf("default = %q, want first configured", r.DefaultArch())
	}
	if err := r.SetDefault("pascal"); err != nil {
		t.Fatal(err)
	}
	if err := r.SetDefault("ampere"); err == nil {
		t.Error("SetDefault accepted an unconfigured arch")
	}

	// Nothing loaded yet: not ready, Live fails with ErrNotLoaded.
	if err := r.Ready(); err == nil {
		t.Error("Ready before LoadAll")
	}
	if _, err := r.Live("turing"); err == nil || !strings.Contains(err.Error(), "not loaded") {
		t.Errorf("Live before load = %v", err)
	}

	if err := r.LoadAll(); err != nil {
		t.Fatal(err)
	}
	if err := r.Ready(); err != nil {
		t.Errorf("Ready after LoadAll: %v", err)
	}

	// Routing: default, explicit (case-folded), unknown.
	lm, err := r.Live("")
	if err != nil || lm.Arch != "pascal" || lm.Hash != fileHash(t, pP) {
		t.Errorf("Live(default) = %+v, %v", lm, err)
	}
	lm, err = r.Live("TURING")
	if err != nil || lm.Arch != "turing" || lm.Artifact == nil {
		t.Errorf("Live(TURING) = %+v, %v", lm, err)
	}
	if _, err := r.Live("ampere"); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("Live(ampere) = %v, want unknown-arch error naming arches", err)
	}

	st := r.Status()
	if len(st) != 2 || !st[0].Loaded || !st[1].Loaded {
		t.Errorf("Status = %+v", st)
	}
	if got := r.Arches(); len(got) != 2 || got[0] != "pascal" || got[1] != "turing" {
		t.Errorf("Arches = %v", got)
	}
}

func TestReloadHashDetectionAndHooks(t *testing.T) {
	dir := t.TempDir()
	live := filepath.Join(dir, "live.gob")
	vA := saveArtifact(t, dir, "a.gob", 10, 7)
	vB := saveArtifact(t, dir, "b.gob", 6, 2)
	copyFile(t, vA, live)

	r := New()
	if err := r.Configure("turing", live); err != nil {
		t.Fatal(err)
	}
	var swaps atomic.Int64
	r.OnSwap(func() { swaps.Add(1) })
	if err := r.LoadAll(); err != nil {
		t.Fatal(err)
	}
	if swaps.Load() != 1 {
		t.Fatalf("initial load fired %d swap hooks, want 1", swaps.Load())
	}
	hashA, _ := r.Live("")
	if hashA.Hash != fileHash(t, vA) {
		t.Fatalf("live hash = %s, want file hash of A", hashA.Hash)
	}

	// Idempotent: same bytes, nothing changes, no hook.
	changed, err := r.Reload()
	if err != nil || len(changed) != 0 {
		t.Fatalf("no-op reload = %v, %v", changed, err)
	}
	copyFile(t, vA, live) // rewrite identical content: still a no-op
	if changed, _ := r.Reload(); len(changed) != 0 {
		t.Fatalf("identical-content reload swapped %v", changed)
	}
	if swaps.Load() != 1 {
		t.Fatalf("no-op reloads fired hooks (%d)", swaps.Load())
	}

	// Changed content hot-swaps exactly that entry.
	copyFile(t, vB, live)
	changed, err = r.Reload()
	if err != nil || len(changed) != 1 || changed[0] != "turing" {
		t.Fatalf("reload after change = %v, %v", changed, err)
	}
	if swaps.Load() != 2 {
		t.Fatalf("swap hook count = %d, want 2", swaps.Load())
	}
	lm, _ := r.Live("")
	if lm.Hash != fileHash(t, vB) {
		t.Fatalf("post-swap hash = %s, want B's", lm.Hash)
	}
}

func TestReloadFailureKeepsServing(t *testing.T) {
	dir := t.TempDir()
	live := filepath.Join(dir, "live.gob")
	vA := saveArtifact(t, dir, "a.gob", 10, 7)
	copyFile(t, vA, live)

	r := New()
	if err := r.Configure("turing", live); err != nil {
		t.Fatal(err)
	}
	if err := r.LoadAll(); err != nil {
		t.Fatal(err)
	}
	before, _ := r.Live("")

	// Corrupt the file: reload errors but the old model keeps serving.
	if err := os.WriteFile(live, []byte("not a model"), 0o644); err != nil {
		t.Fatal(err)
	}
	changed, err := r.Reload()
	if err == nil || len(changed) != 0 {
		t.Fatalf("reload of corrupt file = %v, %v; want error, no swaps", changed, err)
	}
	after, lerr := r.Live("")
	if lerr != nil || after.Hash != before.Hash {
		t.Fatalf("corrupt reload disturbed the live entry: %+v, %v", after, lerr)
	}
	// The failure is visible in status; the entry stays loaded so the
	// registry stays ready.
	st := r.Status()
	if len(st) != 1 || st[0].Error == "" || !st[0].Loaded {
		t.Fatalf("Status after failed reload = %+v", st)
	}
	if err := r.Ready(); err != nil {
		t.Fatalf("Ready after failed reload = %v (old model still serves)", err)
	}

	// A registry whose artifact never loaded is unready and names the arch.
	r2 := New()
	if err := r2.Configure("volta", filepath.Join(dir, "missing.gob")); err != nil {
		t.Fatal(err)
	}
	if err := r2.LoadAll(); err == nil {
		t.Fatal("LoadAll of a missing file succeeded")
	}
	if err := r2.Ready(); err == nil || !strings.Contains(err.Error(), "volta") {
		t.Fatalf("Ready = %v, want failure naming volta", err)
	}
}

func TestPromote(t *testing.T) {
	dir := t.TempDir()
	pLive := saveArtifact(t, dir, "live.gob", 10, 7)
	pCand := saveArtifact(t, dir, "cand.gob", 6, 2)

	r := New()
	if err := r.Configure("turing", pLive); err != nil {
		t.Fatal(err)
	}
	if err := r.ConfigureShadow("turing", pCand); err != nil {
		t.Fatal(err)
	}
	if err := r.LoadAll(); err != nil {
		t.Fatal(err)
	}
	cand, ok := r.Shadow("turing")
	if !ok || cand.Hash != fileHash(t, pCand) {
		t.Fatalf("Shadow = %+v, %v", cand, ok)
	}

	// Tally a few comparisons, then promote.
	r.RecordShadow("turing", serve.Prediction{Label: 1}, serve.Prediction{Label: 1})
	r.RecordShadow("turing", serve.Prediction{Label: 1}, serve.Prediction{Label: 2})
	rep := r.ShadowReport().(ShadowReportData)
	if rep.Scored != 2 || rep.Disagree != 1 {
		t.Fatalf("pre-promote report = %+v", rep)
	}

	var swaps atomic.Int64
	r.OnSwap(func() { swaps.Add(1) })
	hash, err := r.Promote("Turing")
	if err != nil {
		t.Fatal(err)
	}
	if hash != fileHash(t, pCand) {
		t.Fatalf("promoted hash = %s, want candidate's", hash)
	}
	if swaps.Load() != 1 {
		t.Fatalf("promote fired %d hooks, want 1", swaps.Load())
	}
	lm, _ := r.Live("turing")
	if lm.Hash != hash || lm.Source != pCand {
		t.Fatalf("post-promote live = %+v", lm)
	}
	if _, ok := r.Shadow("turing"); ok {
		t.Error("shadow slot survived promotion")
	}
	rep = r.ShadowReport().(ShadowReportData)
	if len(rep.Arches) != 0 || rep.Scored != 0 {
		t.Errorf("post-promote report = %+v, want empty", rep)
	}
	if _, err := r.Promote("turing"); err == nil {
		t.Error("second promote succeeded without a candidate")
	}
	if _, err := r.Promote("ampere"); err == nil {
		t.Error("promote of unknown arch succeeded")
	}

	// After promotion the live slot reloads from the candidate's path:
	// rewriting it hot-swaps.
	copyFile(t, saveArtifact(t, dir, "cand2.gob", 12, 9), pCand)
	changed, err := r.Reload()
	if err != nil || len(changed) != 1 || changed[0] != "turing" {
		t.Fatalf("reload after promote = %v, %v", changed, err)
	}
}

func TestShadowStatsTallies(t *testing.T) {
	dir := t.TempDir()
	r := New()
	if err := r.Configure("turing", saveArtifact(t, dir, "live.gob", 10, 7)); err != nil {
		t.Fatal(err)
	}
	if err := r.ConfigureShadow("turing", saveArtifact(t, dir, "cand.gob", 6, 2)); err != nil {
		t.Fatal(err)
	}
	if err := r.LoadAll(); err != nil {
		t.Fatal(err)
	}

	// 3 agreements on label 1, 2 disagreements 0->2, 1 out-of-grid.
	for i := 0; i < 3; i++ {
		r.RecordShadow("turing", serve.Prediction{Label: 1}, serve.Prediction{Label: 1})
	}
	for i := 0; i < 2; i++ {
		r.RecordShadow("turing", serve.Prediction{Label: 0}, serve.Prediction{Label: 2})
	}
	r.RecordShadow("turing", serve.Prediction{Label: 7}, serve.Prediction{Label: 0})
	// Unknown arch: dropped silently.
	r.RecordShadow("ampere", serve.Prediction{Label: 0}, serve.Prediction{Label: 0})

	rep := r.ShadowReport().(ShadowReportData)
	if len(rep.Arches) != 1 {
		t.Fatalf("report arches = %d", len(rep.Arches))
	}
	ar := rep.Arches[0]
	if ar.Scored != 6 || ar.Agree != 3 || ar.Disagree != 3 {
		t.Fatalf("tallies = %+v", ar)
	}
	if ar.Agree+ar.Disagree != ar.Scored {
		t.Fatalf("agree+disagree != scored: %+v", ar)
	}
	if got := ar.AgreementRate; got != 0.5 {
		t.Errorf("agreement rate = %v", got)
	}
	if ar.Confusion[1][1] != 3 || ar.Confusion[0][2] != 2 || ar.OutOfRange != 1 {
		t.Errorf("confusion = %v out_of_range=%d", ar.Confusion, ar.OutOfRange)
	}
	var gridSum int64
	for _, row := range ar.Confusion {
		for _, c := range row {
			gridSum += c
		}
	}
	if gridSum+ar.OutOfRange != ar.Scored {
		t.Errorf("confusion grid sums to %d (+%d out of range), scored %d", gridSum, ar.OutOfRange, ar.Scored)
	}
	if ar.LiveHash == "" || ar.CandidateHash == "" || ar.LiveHash == ar.CandidateHash {
		t.Errorf("report hashes = %q / %q", ar.LiveHash, ar.CandidateHash)
	}
}
